package bat

import (
	"math/rand"
	"reflect"
	"testing"
)

// --- property propagation -------------------------------------------------

func TestSelectPropagatesProperties(t *testing.T) {
	// Unsorted tail: head stays sorted (dense input head), tail does not.
	b := MakeInts("x", []int64{5, 1, 9, 3})
	got := b.Select(&Bound{Value: int64(2), Inclusive: true}, nil)
	if !got.Head().Sorted() {
		t.Error("select should keep a sorted head sorted")
	}
	if got.Tail().Sorted() {
		t.Error("unsorted tail must not be marked sorted after select")
	}

	// Sorted tail: result is a view, still sorted, head still dense.
	s := b.SortT(false).MarkH(0)
	sel := s.Select(&Bound{Value: int64(2), Inclusive: true}, &Bound{Value: int64(8), Inclusive: true})
	if !sel.Tail().Sorted() {
		t.Error("sorted tail must stay sorted after range select")
	}
	if !sel.Head().Dense() {
		t.Error("range select over a sorted tail should keep a dense head dense (O(1) view)")
	}
	if want := []int64{3, 5}; !reflect.DeepEqual(intsOf(sel), want) {
		t.Errorf("sorted select = %v, want %v", intsOf(sel), want)
	}
}

func TestSelectEqConstantTailSorted(t *testing.T) {
	b := MakeInts("x", []int64{2, 1, 2, 3, 2})
	got := b.SelectEq(int64(2))
	if got.Len() != 3 || !got.Tail().Sorted() {
		t.Errorf("point select result (len %d) should have a (constant) sorted tail", got.Len())
	}
}

func TestSortTPropagatesAndShortcuts(t *testing.T) {
	b := MakeInts("x", []int64{3, 1, 2})
	s := b.SortT(false)
	if !s.Tail().Sorted() {
		t.Fatal("SortT must set sorted")
	}
	// Sorting an already-sorted BAT is an O(1) view.
	allocs := testing.AllocsPerRun(100, func() { _ = s.SortT(false) })
	if allocs > 3 {
		t.Errorf("SortT on sorted input allocated %v objects; want a view", allocs)
	}
}

func TestReverseAndMarkPreserveProperties(t *testing.T) {
	b := MakeInts("x", []int64{1, 2, 3})
	b.Tail().SetSorted(true)
	r := b.Reverse()
	if !r.Head().Sorted() || !r.Tail().Dense() {
		t.Error("reverse must carry properties with the swapped columns")
	}
	m := b.MarkT(7)
	if !m.Tail().Dense() || m.Tail().Base() != 7 || !m.Tail().Sorted() {
		t.Error("MarkT tail must be dense (hence sorted)")
	}
	mh := b.MarkH(3)
	if !mh.Head().Dense() || !mh.Tail().Sorted() {
		t.Error("MarkH must keep the tail's properties and produce a dense head")
	}
}

func TestSliceIsZeroCopyView(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	b := MakeInts("x", vals)
	b.Tail().SetSorted(true)
	allocs := testing.AllocsPerRun(100, func() { _ = b.Slice(10, 900) })
	if allocs > 3 {
		t.Errorf("Slice allocated %v objects; want an O(1) view (<= 3 structs)", allocs)
	}
	s := b.Slice(10, 20)
	if !s.Head().Dense() || s.Head().Base() != 10 {
		t.Error("slice of a dense head should stay dense with shifted base")
	}
	if !s.Tail().Sorted() {
		t.Error("slice must preserve tail sortedness")
	}
	// Views share payload: the parent's value shows through.
	if s.Tail().Int(0) != 10 {
		t.Errorf("view value = %d, want 10", s.Tail().Int(0))
	}
}

func TestUnionPropertiesAndDenseFusion(t *testing.T) {
	a := MakeInts("a", []int64{1, 2})
	b := New("b", DenseColumn(2, 2), IntColumn([]int64{3, 4})) // head continues a's 0..1
	a.Tail().SetSorted(true)
	b.Tail().SetSorted(true)
	u := a.Union(b)
	if !u.Head().Dense() || u.Head().Base() != 0 || u.Head().Len() != 4 {
		t.Error("union of adjacent dense heads should fuse into one dense head")
	}
	if !u.Tail().Sorted() {
		t.Error("union with ordered boundary should stay sorted")
	}
	// Unordered boundary: sortedness must NOT survive.
	c := MakeInts("c", []int64{0})
	c.Tail().SetSorted(true)
	u2 := a.Union(c)
	if u2.Tail().Sorted() {
		t.Error("union with descending boundary must clear sorted")
	}
	if want := []int64{1, 2, 0}; !reflect.DeepEqual(intsOf(u2), want) {
		t.Errorf("union = %v, want %v", intsOf(u2), want)
	}
}

func TestUnionDoesNotAliasInputs(t *testing.T) {
	a := MakeInts("a", []int64{1, 2})
	b := MakeInts("b", []int64{3})
	u := a.Union(b)
	u.Tail().Append(int64(99)) // must not clobber a or b
	if a.Len() != 2 || b.Len() != 1 || a.Tail().Int(1) != 2 || b.Tail().Int(0) != 3 {
		t.Fatal("Union result aliases its inputs")
	}
}

func TestJoinPropagatesHeadSortedness(t *testing.T) {
	// Hash join: probe order preserved, so a sorted probe head stays sorted.
	l := MakeInts("l", []int64{1, 2, 2, 3})
	r := MakeInts("r", []int64{2, 3})
	j := l.Join(r.Reverse())
	if !j.Head().Sorted() {
		t.Error("hash join must keep the probe side's sorted head sorted")
	}
}

func TestJoinDenseDenseIsView(t *testing.T) {
	// [dense|dense] ⋈ [dense|vals] — the overlap is one contiguous run.
	pos := New("pos", DenseColumn(0, 10), DenseColumn(5, 10)) // tail oids 5..14
	vals := MakeInts("vals", []int64{0, 1, 2, 3, 4, 5, 6, 7})  // head oids 0..7
	j := pos.Join(vals)
	if j.Len() != 3 { // overlap of [5,15) and [0,8) = [5,8)
		t.Fatalf("dense-dense join = %d rows, want 3", j.Len())
	}
	if want := []int64{5, 6, 7}; !reflect.DeepEqual(intsOf(j), want) {
		t.Fatalf("dense-dense join = %v, want %v", intsOf(j), want)
	}
	if !j.Head().Dense() {
		t.Error("dense-dense join head should stay dense")
	}
	allocs := testing.AllocsPerRun(100, func() { _ = pos.Join(vals) })
	if allocs > 3 {
		t.Errorf("dense-dense join allocated %v objects; want O(1) views", allocs)
	}
}

func TestFetchJoinFullMatchSharesHead(t *testing.T) {
	pos := MakeOids("pos", []Oid{2, 0, 1})
	vals := MakeInts("vals", []int64{10, 20, 30})
	j := pos.Join(vals)
	if j.Head() != pos.Head() {
		t.Error("full-match fetch join should pass the head through zero-copy")
	}
}

func TestGroupIDsSharesHeadAndSortedFastPath(t *testing.T) {
	b := MakeInts("k", []int64{1, 1, 2, 2, 2, 3})
	b.Tail().SetSorted(true)
	groups, reps := b.GroupIDs()
	if groups.Head() != b.Head() {
		t.Error("GroupIDs must share the input head zero-copy")
	}
	if !groups.Tail().Sorted() {
		t.Error("group ids over a sorted key are non-decreasing")
	}
	if reps.Len() != 3 {
		t.Fatalf("reps = %d, want 3", reps.Len())
	}
	wantIDs := []Oid{0, 0, 1, 1, 1, 2}
	for i, w := range wantIDs {
		if groups.Tail().Oid(i) != w {
			t.Fatalf("sorted grouping ids wrong at %d: %s", i, groups.Dump(10))
		}
	}
}

func TestUniqueTSortedAndDense(t *testing.T) {
	b := MakeInts("x", []int64{1, 1, 2, 3, 3})
	b.Tail().SetSorted(true)
	u := b.UniqueT()
	if want := []int64{1, 2, 3}; !reflect.DeepEqual(intsOf(u), want) {
		t.Fatalf("sorted unique = %v, want %v", intsOf(u), want)
	}
	d := New("d", DenseColumn(0, 4), DenseColumn(10, 4))
	if du := d.UniqueT(); du.Len() != 4 {
		t.Fatalf("dense unique = %d rows, want 4 (all distinct)", du.Len())
	}
}

func TestSemijoinDiffPropagation(t *testing.T) {
	a := New("a", OidColumn([]Oid{1, 2, 3, 4}), IntColumn([]int64{10, 20, 30, 40}))
	a.Head().SetSorted(true)
	a.Tail().SetSorted(true)
	b := New("b", OidColumn([]Oid{2, 4}), IntColumn([]int64{0, 0}))
	semi := a.Semijoin(b)
	if !semi.Head().Sorted() || !semi.Tail().Sorted() {
		t.Error("semijoin preserves row order, so sortedness must survive")
	}
	diff := a.Diff(b)
	if !diff.Head().Sorted() || !diff.Tail().Sorted() {
		t.Error("diff preserves row order, so sortedness must survive")
	}
}

func TestSemijoinDenseDenseView(t *testing.T) {
	a := New("a", DenseColumn(3, 5), IntColumn([]int64{1, 2, 3, 4, 5})) // heads 3..7
	b := New("b", DenseColumn(5, 10), IntColumn(make([]int64, 10)))    // heads 5..14
	got := a.Semijoin(b)
	if want := []int64{3, 4, 5}; !reflect.DeepEqual(intsOf(got), want) { // heads 5,6,7
		t.Fatalf("dense-dense semijoin = %v, want %v", intsOf(got), want)
	}
	if !got.Head().Dense() || got.Head().Base() != 5 {
		t.Error("dense-dense semijoin should return a dense view")
	}
}

func TestDiffDenseRange(t *testing.T) {
	a := New("a", OidColumn([]Oid{0, 5, 9, 12}), IntColumn([]int64{1, 2, 3, 4}))
	b := New("b", DenseColumn(5, 5), IntColumn(make([]int64, 5))) // excludes 5..9
	got := a.Diff(b)
	if want := []int64{1, 4}; !reflect.DeepEqual(intsOf(got), want) {
		t.Fatalf("diff vs dense range = %v, want %v", intsOf(got), want)
	}
}

func TestSelectDenseTailArithmetic(t *testing.T) {
	b := New("x", IntColumn([]int64{10, 20, 30, 40, 50}), DenseColumn(100, 5))
	got := b.Select(&Bound{Value: Oid(101), Inclusive: true}, &Bound{Value: Oid(103), Inclusive: false})
	if got.Len() != 2 || got.Tail().Oid(0) != 101 || got.Tail().Oid(1) != 102 {
		t.Fatalf("dense tail select = %s", got.Dump(10))
	}
	if !got.Tail().Dense() {
		t.Error("dense tail select should stay dense")
	}
	if got.Head().Int(0) != 20 {
		t.Errorf("head = %d, want 20", got.Head().Int(0))
	}
	// Out-of-range bounds.
	if b.Select(&Bound{Value: Oid(200), Inclusive: true}, nil).Len() != 0 {
		t.Error("lo above range must be empty")
	}
	if b.Select(nil, &Bound{Value: Oid(99), Inclusive: true}).Len() != 0 {
		t.Error("hi below range must be empty")
	}
}

// --- typed vs generic equivalence ----------------------------------------

func randomIntBAT(rng *rand.Rand, n, domain int) *BAT {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(domain))
	}
	return MakeInts("x", vals)
}

func sameBAT(t *testing.T, op string, a, b *BAT) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: len %d != %d", op, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Head().Value(i) != b.Head().Value(i) || a.Tail().Value(i) != b.Tail().Value(i) {
			t.Fatalf("%s: row %d: (%v,%v) != (%v,%v)", op, i,
				a.Head().Value(i), a.Tail().Value(i), b.Head().Value(i), b.Tail().Value(i))
		}
	}
}

func TestSelectTypedMatchesGenericRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		b := randomIntBAT(rng, rng.Intn(60), 40)
		if rng.Intn(2) == 0 {
			b = b.SortT(false) // exercise the span path half the time
		}
		mkBound := func() *Bound {
			if rng.Intn(4) == 0 {
				return nil
			}
			bd := &Bound{Inclusive: rng.Intn(2) == 0}
			if rng.Intn(2) == 0 {
				bd.Value = int64(rng.Intn(50) - 5)
			} else {
				// Mixed literal: float bound over the int column,
				// integral or fractional.
				bd.Value = float64(rng.Intn(100)-10) / 2
			}
			return bd
		}
		lo, hi := mkBound(), mkBound()
		sameBAT(t, "select", b.Select(lo, hi), b.selectGeneric(lo, hi))
	}
}

func TestSelectFloatAndStringEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		fv := make([]float64, rng.Intn(40))
		for i := range fv {
			fv[i] = float64(rng.Intn(40)) / 4
		}
		fb := MakeFloats("f", fv)
		lo := &Bound{Value: float64(rng.Intn(20)) / 2, Inclusive: rng.Intn(2) == 0}
		hi := &Bound{Value: int64(rng.Intn(10)), Inclusive: rng.Intn(2) == 0} // int literal on float column
		sameBAT(t, "fselect", fb.Select(lo, hi), fb.selectGeneric(lo, hi))

		words := []string{"a", "b", "c", "d", "e"}
		sv := make([]string, rng.Intn(40))
		for i := range sv {
			sv[i] = words[rng.Intn(len(words))]
		}
		sb := MakeStrs("s", sv)
		slo := &Bound{Value: words[rng.Intn(len(words))], Inclusive: rng.Intn(2) == 0}
		shi := &Bound{Value: words[rng.Intn(len(words))], Inclusive: rng.Intn(2) == 0}
		sameBAT(t, "sselect", sb.Select(slo, shi), sb.selectGeneric(slo, shi))
	}
}

func TestSelectNeTypedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		b := randomIntBAT(rng, rng.Intn(40), 10)
		var v any
		switch rng.Intn(3) {
		case 0:
			v = int64(rng.Intn(12))
		case 1:
			v = float64(rng.Intn(12)) // integral float
		default:
			v = float64(rng.Intn(24)) / 2 // possibly fractional
		}
		sameBAT(t, "selectNe", b.SelectNe(v), b.selectNeGeneric(v))
	}
}

func TestJoinTypedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		l := randomIntBAT(rng, rng.Intn(50), 20)
		r := randomIntBAT(rng, rng.Intn(50), 20)
		sameBAT(t, "join", l.Join(r.Reverse()), l.joinGeneric(r.Reverse()))
	}
	// String keys too.
	words := []string{"x", "y", "z", "w"}
	for trial := 0; trial < 50; trial++ {
		mk := func(n int) *BAT {
			v := make([]string, n)
			for i := range v {
				v[i] = words[rng.Intn(len(words))]
			}
			return MakeStrs("s", v)
		}
		l, r := mk(rng.Intn(30)), mk(rng.Intn(30))
		sameBAT(t, "strjoin", l.Join(r.Reverse()), l.joinGeneric(r.Reverse()))
	}
}

func TestEqRowsMixedKindsFallsBack(t *testing.T) {
	a := MakeInts("a", []int64{1, 2, 3})
	f := MakeFloats("f", []float64{1.0, 2.5, 3.0})
	got := a.EqRows(f)
	if want := []int64{1, 3}; !reflect.DeepEqual(intsOf(got), want) {
		t.Fatalf("mixed EqRows = %v, want %v", intsOf(got), want)
	}
}

func TestSelectFloatBoundAtInt64Extremes(t *testing.T) {
	b := MakeInts("x", []int64{-1 << 63, 0, 1<<63 - 1})
	cases := []struct {
		lo, hi *Bound
	}{
		{nil, &Bound{Value: -float64(1 << 63), Inclusive: true}},  // hi == MinInt64: keeps row 0
		{&Bound{Value: -float64(1 << 63), Inclusive: true}, nil},  // lo == MinInt64: keeps all
		{&Bound{Value: float64(1 << 62), Inclusive: true}, nil},   // huge lo: keeps MaxInt64 row
		{nil, &Bound{Value: -float64(1 << 63), Inclusive: false}}, // hi < MinInt64 range: empty
	}
	for _, c := range cases {
		sameBAT(t, "extreme-bounds", b.Select(c.lo, c.hi), b.selectGeneric(c.lo, c.hi))
	}
	// At exactly 2^63 the boxed reference is lossy (converting MaxInt64
	// to float64 rounds it up to 2^63), so the typed path is held to the
	// arithmetically exact answer instead of boxed parity.
	if got := b.Select(nil, &Bound{Value: float64(1 << 63), Inclusive: false}); got.Len() != 3 {
		t.Errorf("hi < 2^63 must keep every int64, got %d rows", got.Len())
	}
	if got := b.Select(&Bound{Value: float64(1 << 63), Inclusive: true}, nil); got.Len() != 0 {
		t.Errorf("lo >= 2^63 must be empty, got %d rows", got.Len())
	}
}

func TestSelectOidBoundLiterals(t *testing.T) {
	b := MakeOids("o", []Oid{5, 1, 9, 3}).Reverse().Reverse() // materialized oid tail
	// int literal bounds on an OID column.
	got := b.Select(&Bound{Value: int64(3), Inclusive: true}, &Bound{Value: int64(8), Inclusive: true})
	if got.Len() != 2 {
		t.Fatalf("oid select = %d rows, want 2", got.Len())
	}
	// Negative lower bound: everything qualifies.
	if b.Select(&Bound{Value: int64(-1), Inclusive: true}, nil).Len() != 4 {
		t.Error("negative lo on oid column should match all")
	}
	// Negative upper bound: nothing qualifies.
	if b.Select(nil, &Bound{Value: int64(-1), Inclusive: true}).Len() != 0 {
		t.Error("negative hi on oid column should match none")
	}
}
