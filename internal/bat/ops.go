package bat

import (
	"cmp"
	"fmt"
	"math"
	"sort"
)

// The operators in this file are devirtualized: each call dispatches on
// the column kind ONCE, then runs a monomorphic loop over the typed
// payload slice (the generic functions below instantiate per kind).
// Sorted tails take a binary-search span and return an O(1) zero-copy
// view; unsorted scans count qualifying rows first and allocate the
// index buffer at its exact size. The boxed row-at-a-time path lives in
// generic.go and is reached only for literals that cannot be normalized
// to the column kind.

// Predicate bounds for Select. Nil means unbounded on that side.
type Bound struct {
	Value     any
	Inclusive bool
}

// emptyLike returns a zero-row BAT with b's column kinds and density.
func (b *BAT) emptyLike() *BAT {
	return &BAT{Name: b.Name, h: b.h.view(0, 0), t: b.t.view(0, 0)}
}

// viewAll returns the whole BAT as a zero-copy view.
func (b *BAT) viewAll() *BAT {
	return &BAT{Name: b.Name, h: b.h, t: b.t}
}

// inRange is the typed range predicate; it inlines into the scan loops.
func inRange[T cmp.Ordered](v T, lo *T, loIncl bool, hi *T, hiIncl bool) bool {
	if lo != nil && (v < *lo || (v == *lo && !loIncl)) {
		return false
	}
	if hi != nil && (v > *hi || (v == *hi && !hiIncl)) {
		return false
	}
	return true
}

// rangeIdx scans an unsorted payload and returns the qualifying row
// positions. It counts first and fills second: the exact-size
// allocation replaces append-growth, and the counting pass is a cheap,
// branch-predictable read-only sweep.
func rangeIdx[T cmp.Ordered](vals []T, lo *T, loIncl bool, hi *T, hiIncl bool) []int32 {
	n := 0
	for _, v := range vals {
		if inRange(v, lo, loIncl, hi, hiIncl) {
			n++
		}
	}
	idx := make([]int32, 0, n)
	for i, v := range vals {
		if inRange(v, lo, loIncl, hi, hiIncl) {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// rangeSpan binary-searches a sorted payload for the qualifying
// half-open row range [from, to): O(log n).
func rangeSpan[T cmp.Ordered](vals []T, lo *T, loIncl bool, hi *T, hiIncl bool) (from, to int) {
	from, to = 0, len(vals)
	if lo != nil {
		l := *lo
		if loIncl {
			from = sort.Search(len(vals), func(i int) bool { return vals[i] >= l })
		} else {
			from = sort.Search(len(vals), func(i int) bool { return vals[i] > l })
		}
	}
	if hi != nil {
		h := *hi
		if hiIncl {
			to = sort.Search(len(vals), func(i int) bool { return vals[i] > h })
		} else {
			to = sort.Search(len(vals), func(i int) bool { return vals[i] >= h })
		}
	}
	if to < from {
		to = from
	}
	return from, to
}

// selectTyped runs the monomorphic select kernel over one typed payload:
// sorted tails get the O(log n + k) span path and come back as zero-copy
// views, unsorted tails get the count-then-fill scan.
func selectTyped[T cmp.Ordered](b *BAT, vals []T, lo *T, loIncl bool, hi *T, hiIncl bool) *BAT {
	if b.t.Sorted() {
		from, to := rangeSpan(vals, lo, loIncl, hi, hiIncl)
		return b.Slice(from, to)
	}
	idx := rangeIdx(vals, lo, loIncl, hi, hiIncl)
	nb := &BAT{Name: b.Name, h: b.h.take32(idx), t: b.t.take32(idx)}
	// Row order is preserved, so a sorted head stays sorted.
	nb.h.sorted = b.h.Sorted()
	// A point predicate yields a constant — hence sorted — tail.
	if lo != nil && hi != nil && *lo == *hi && loIncl && hiIncl {
		nb.t.sorted = true
	}
	return nb
}

const (
	maxI64f = float64(1 << 63)  // 2^63, exact in float64
	minI64f = -float64(1 << 63) // -2^63, exact in float64
	maxU64f = float64(1 << 64)  // 2^64, exact in float64
)

// normIntBound turns a Bound over an int column into an inclusive int64
// limit. Float literals round toward the inside of the range, so mixed
// int/float predicates stay on the typed path. has=false: unbounded.
// empty=true: unsatisfiable. ok=false: fall back to the generic path.
func normIntBound(bd *Bound, isLo bool) (v int64, has, empty, ok bool) {
	if bd == nil {
		return 0, false, false, true
	}
	switch x := bd.Value.(type) {
	case int64:
		v = x
	case int:
		v = int64(x)
	case Oid:
		v = int64(x)
	case float64:
		if math.IsNaN(x) {
			return 0, false, false, false
		}
		if isLo {
			if x >= maxI64f {
				return 0, false, true, true
			}
			if x < minI64f {
				return 0, false, false, true
			}
			if c := math.Ceil(x); c != x {
				if c >= maxI64f {
					return 0, false, true, true
				}
				return int64(c), true, false, true // fractional: inclusiveness moot
			}
		} else {
			if x < minI64f {
				return 0, false, true, true
			}
			if x >= maxI64f {
				return 0, false, false, true
			}
			if f := math.Floor(x); f != x {
				return int64(f), true, false, true
			}
		}
		v = int64(x)
	default:
		return 0, false, false, false
	}
	if !bd.Inclusive {
		if isLo {
			if v == math.MaxInt64 {
				return 0, false, true, true
			}
			v++
		} else {
			if v == math.MinInt64 {
				return 0, false, true, true
			}
			v--
		}
	}
	return v, true, false, true
}

// normOidBound is normIntBound for OID (unsigned) columns.
func normOidBound(bd *Bound, isLo bool) (v Oid, has, empty, ok bool) {
	if bd == nil {
		return 0, false, false, true
	}
	switch x := bd.Value.(type) {
	case Oid:
		v = x
	case int64:
		if x < 0 {
			if isLo {
				return 0, false, false, true // every OID exceeds it
			}
			return 0, false, true, true
		}
		v = Oid(x)
	case int:
		if x < 0 {
			if isLo {
				return 0, false, false, true
			}
			return 0, false, true, true
		}
		v = Oid(x)
	case float64:
		if math.IsNaN(x) {
			return 0, false, false, false
		}
		if x < 0 {
			if isLo {
				return 0, false, false, true
			}
			return 0, false, true, true
		}
		if x >= maxU64f {
			if isLo {
				return 0, false, true, true
			}
			return 0, false, false, true
		}
		if isLo {
			if c := math.Ceil(x); c != x {
				if c >= maxU64f {
					return 0, false, true, true
				}
				return Oid(c), true, false, true
			}
		} else if f := math.Floor(x); f != x {
			return Oid(f), true, false, true
		}
		v = Oid(x)
	default:
		return 0, false, false, false
	}
	if !bd.Inclusive {
		if isLo {
			if v == ^Oid(0) {
				return 0, false, true, true
			}
			v++
		} else {
			if v == 0 {
				return 0, false, true, true
			}
			v--
		}
	}
	return v, true, false, true
}

// normFloatBound turns a Bound over a float column into a typed limit;
// int literals widen to float64 exactly like the boxed comparator did.
func normFloatBound(bd *Bound) (v float64, has, ok bool) {
	if bd == nil {
		return 0, false, true
	}
	switch x := bd.Value.(type) {
	case float64:
		if math.IsNaN(x) {
			return 0, false, false
		}
		return x, true, true
	case int64:
		return float64(x), true, true
	case int:
		return float64(x), true, true
	}
	return 0, false, false
}

func ptrIf[T any](v T, has bool) *T {
	if !has {
		return nil
	}
	return &v
}

// Select returns the BUNs whose tail value lies within [lo, hi]
// (respecting inclusiveness; nil bounds are open). The result preserves
// head values and tail values of the qualifying rows, like MAL's
// algebra.select. Sorted (and dense) tails are answered with a binary
// search and an O(1) slice view instead of a scan.
func (b *BAT) Select(lo, hi *Bound) *BAT {
	if lo == nil && hi == nil {
		return b.viewAll()
	}
	switch b.t.kind {
	case KInt:
		loV, hasLo, emptyLo, ok1 := normIntBound(lo, true)
		hiV, hasHi, emptyHi, ok2 := normIntBound(hi, false)
		if !ok1 || !ok2 {
			return b.selectGeneric(lo, hi)
		}
		if emptyLo || emptyHi {
			return b.emptyLike()
		}
		return selectTyped(b, b.t.ints, ptrIf(loV, hasLo), true, ptrIf(hiV, hasHi), true)
	case KFloat:
		loV, hasLo, ok1 := normFloatBound(lo)
		hiV, hasHi, ok2 := normFloatBound(hi)
		if !ok1 || !ok2 {
			return b.selectGeneric(lo, hi)
		}
		loIncl := lo == nil || lo.Inclusive
		hiIncl := hi == nil || hi.Inclusive
		return selectTyped(b, b.t.floats, ptrIf(loV, hasLo), loIncl, ptrIf(hiV, hasHi), hiIncl)
	case KOid:
		loV, hasLo, emptyLo, ok1 := normOidBound(lo, true)
		hiV, hasHi, emptyHi, ok2 := normOidBound(hi, false)
		if !ok1 || !ok2 {
			return b.selectGeneric(lo, hi)
		}
		if emptyLo || emptyHi {
			return b.emptyLike()
		}
		if b.t.dense {
			return b.selectDenseTail(loV, hasLo, hiV, hasHi)
		}
		return selectTyped(b, b.t.oids, ptrIf(loV, hasLo), true, ptrIf(hiV, hasHi), true)
	case KStr:
		loV, hasLo, ok1 := normStrBound(lo)
		hiV, hasHi, ok2 := normStrBound(hi)
		if !ok1 || !ok2 {
			return b.selectGeneric(lo, hi)
		}
		loIncl := lo == nil || lo.Inclusive
		hiIncl := hi == nil || hi.Inclusive
		return selectTyped(b, b.t.strs, ptrIf(loV, hasLo), loIncl, ptrIf(hiV, hasHi), hiIncl)
	case KBool:
		return b.selectBool(lo, hi)
	}
	return b.selectGeneric(lo, hi)
}

func normStrBound(bd *Bound) (v string, has, ok bool) {
	if bd == nil {
		return "", false, true
	}
	if s, isStr := bd.Value.(string); isStr {
		return s, true, true
	}
	return "", false, false
}

// selectDenseTail answers a range select over a dense OID tail with
// pure arithmetic: O(1), returning a view.
func (b *BAT) selectDenseTail(lo Oid, hasLo bool, hi Oid, hasHi bool) *BAT {
	n := b.t.n
	base := b.t.base
	from, to := 0, n
	if hasLo {
		if n == 0 || lo > base+Oid(n-1) {
			return b.emptyLike()
		}
		if lo > base {
			from = int(lo - base)
		}
	}
	if hasHi {
		if hi < base {
			return b.emptyLike()
		}
		if n > 0 && hi < base+Oid(n-1) {
			to = int(hi-base) + 1
		}
	}
	if to < from {
		to = from
	}
	return b.Slice(from, to)
}

// selectBool evaluates the bounds against the two possible values once,
// then runs a monomorphic equality scan (or returns a view when both or
// neither value qualifies).
func (b *BAT) selectBool(lo, hi *Bound) *BAT {
	qualifies := func(v bool) bool {
		if lo != nil {
			lv, isBool := lo.Value.(bool)
			if !isBool {
				return false
			}
			if boolLess(v, lv) || (v == lv && !lo.Inclusive) {
				return false
			}
		}
		if hi != nil {
			hv, isBool := hi.Value.(bool)
			if !isBool {
				return false
			}
			if boolLess(hv, v) || (v == hv && !hi.Inclusive) {
				return false
			}
		}
		return true
	}
	if (lo != nil && !isBoolVal(lo.Value)) || (hi != nil && !isBoolVal(hi.Value)) {
		return b.selectGeneric(lo, hi) // non-bool literal: boxed path panics as before
	}
	allowF, allowT := qualifies(false), qualifies(true)
	switch {
	case allowF && allowT:
		return b.viewAll()
	case !allowF && !allowT:
		return b.emptyLike()
	}
	idx := eqScan(b.t.bools, allowT, true)
	nb := &BAT{Name: b.Name, h: b.h.take32(idx), t: b.t.take32(idx)}
	nb.h.sorted = b.h.Sorted()
	nb.t.sorted = true // constant tail
	return nb
}

func isBoolVal(v any) bool { _, ok := v.(bool); return ok }

func boolLess(a, b bool) bool { return !a && b }

// eqScan returns the positions whose value equals (keep=true) or
// differs from (keep=false) x, count-then-fill.
func eqScan[T comparable](vals []T, x T, keep bool) []int32 {
	n := 0
	for _, v := range vals {
		if (v == x) == keep {
			n++
		}
	}
	idx := make([]int32, 0, n)
	for i, v := range vals {
		if (v == x) == keep {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// SelectEq returns the BUNs whose tail equals v.
func (b *BAT) SelectEq(v any) *BAT {
	bd := &Bound{Value: v, Inclusive: true}
	return b.Select(bd, bd)
}

// SelectNe returns the BUNs whose tail differs from v.
func (b *BAT) SelectNe(v any) *BAT {
	switch b.t.kind {
	case KInt:
		switch x := v.(type) {
		case int64:
			return b.selectNeTyped(eqScan(b.t.ints, x, false))
		case int:
			return b.selectNeTyped(eqScan(b.t.ints, int64(x), false))
		case Oid:
			return b.selectNeTyped(eqScan(b.t.ints, int64(x), false))
		case float64:
			if x != math.Trunc(x) || x >= maxI64f || x < minI64f {
				return b.viewAll() // no int equals a fractional/out-of-range float
			}
			return b.selectNeTyped(eqScan(b.t.ints, int64(x), false))
		}
	case KFloat:
		switch x := v.(type) {
		case float64:
			return b.selectNeTyped(eqScan(b.t.floats, x, false))
		case int64:
			return b.selectNeTyped(eqScan(b.t.floats, float64(x), false))
		case int:
			return b.selectNeTyped(eqScan(b.t.floats, float64(x), false))
		}
	case KOid:
		switch x := v.(type) {
		case Oid:
			return b.selectNeTyped(eqScan(b.t.oidValues(), x, false))
		case int64:
			if x < 0 {
				return b.viewAll()
			}
			return b.selectNeTyped(eqScan(b.t.oidValues(), Oid(x), false))
		case int:
			if x < 0 {
				return b.viewAll()
			}
			return b.selectNeTyped(eqScan(b.t.oidValues(), Oid(x), false))
		}
	case KStr:
		if x, isStr := v.(string); isStr {
			return b.selectNeTyped(eqScan(b.t.strs, x, false))
		}
	case KBool:
		if x, isBool := v.(bool); isBool {
			return b.selectNeTyped(eqScan(b.t.bools, x, false))
		}
	}
	return b.selectNeGeneric(v)
}

func (b *BAT) selectNeTyped(idx []int32) *BAT {
	nb := &BAT{Name: b.Name, h: b.h.take32(idx), t: b.t.take32(idx)}
	nb.h.sorted = b.h.Sorted()
	nb.t.sorted = b.t.Sorted()
	return nb
}

// SelectFunc filters rows by an arbitrary tail predicate (used for LIKE
// and other non-range predicates). Inherently boxed: the predicate
// itself takes an any.
func (b *BAT) SelectFunc(pred func(v any) bool) *BAT {
	var idx []int
	for i := 0; i < b.Len(); i++ {
		if pred(b.t.Value(i)) {
			idx = append(idx, i)
		}
	}
	nb := &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
	nb.h.sorted = b.h.Sorted()
	return nb
}

// eqIdx returns the positions where the two aligned payloads agree.
func eqIdx[T comparable](a, b []T) []int32 {
	n := 0
	for i, v := range a {
		if v == b[i] {
			n++
		}
	}
	idx := make([]int32, 0, n)
	for i, v := range a {
		if v == b[i] {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// EqRows returns the rows of b whose tail value equals r's tail at the
// same position (a positional equality filter, used for cyclic join
// predicates).
func (b *BAT) EqRows(r *BAT) *BAT {
	if b.Len() != r.Len() {
		panic("bat: EqRows length mismatch")
	}
	if b.t.kind != r.t.kind {
		return b.eqRowsGeneric(r) // mixed numeric kinds compare boxed
	}
	var idx []int32
	switch b.t.kind {
	case KOid:
		idx = eqIdx(b.t.oidValues(), r.t.oidValues())
	case KInt:
		idx = eqIdx(b.t.ints, r.t.ints)
	case KFloat:
		idx = eqIdx(b.t.floats, r.t.floats)
	case KStr:
		idx = eqIdx(b.t.strs, r.t.strs)
	case KBool:
		idx = eqIdx(b.t.bools, r.t.bools)
	default:
		return b.eqRowsGeneric(r)
	}
	nb := &BAT{Name: b.Name, h: b.h.take32(idx), t: b.t.take32(idx)}
	nb.h.sorted = b.h.Sorted()
	return nb
}

// hashJoinTyped builds a typed hash table on the right payload and
// probes it with the left: one map instantiation per column kind, no
// boxing. Duplicate build keys chain through one flat next array
// (head[v] = first row, next[j] = following row with the same value),
// so the build side does exactly two allocations regardless of key
// skew. capHint sizes the output buffers; MAL plans mostly run
// foreign-key joins that match ~1:1, so the probe-side length is the
// estimate.
func hashJoinTyped[T comparable](lvals, rvals []T, capHint int) (li, ri []int32) {
	head := make(map[T]int32, len(rvals))
	next := make([]int32, len(rvals))
	// Build backwards so chains run in ascending row order.
	for j := len(rvals) - 1; j >= 0; j-- {
		if first, dup := head[rvals[j]]; dup {
			next[j] = first
		} else {
			next[j] = -1
		}
		head[rvals[j]] = int32(j)
	}
	li = make([]int32, 0, capHint)
	ri = make([]int32, 0, capHint)
	for i, v := range lvals {
		if j, ok := head[v]; ok {
			for ; j >= 0; j = next[j] {
				li = append(li, int32(i))
				ri = append(ri, j)
			}
		}
	}
	return li, ri
}

// Join computes the natural join of b and r on b.tail == r.head,
// returning [b.head | r.tail], MAL's algebra.join. When r's head is a
// dense OID column the join degenerates to positional fetch
// (leftfetchjoin); when BOTH sides are dense the overlap is contiguous
// and the join is an O(1) pair of views.
func (b *BAT) Join(r *BAT) *BAT {
	if b.t.kind != r.h.kind {
		panic(fmt.Sprintf("bat: join type mismatch %s != %s", b.t.kind, r.h.kind))
	}
	if r.h.dense {
		rbase, rn := r.h.base, r.h.Len()
		rend := rbase + Oid(rn)
		if b.t.dense {
			// Dense ∩ dense: the matching OIDs form one contiguous run.
			lo, hi := b.t.base, b.t.base+Oid(b.t.n)
			if rbase > lo {
				lo = rbase
			}
			if rend < hi {
				hi = rend
			}
			if hi <= lo {
				return &BAT{Name: b.Name, h: b.h.view(0, 0), t: r.t.view(0, 0)}
			}
			i0, cnt := int(lo-b.t.base), int(hi-lo)
			j0 := int(lo - rbase)
			return &BAT{Name: b.Name, h: b.h.view(i0, i0+cnt), t: r.t.view(j0, j0+cnt)}
		}
		// Typed positional fetch.
		oids := b.t.oids
		cnt := 0
		for _, o := range oids {
			if o >= rbase && o < rend {
				cnt++
			}
		}
		if cnt == len(oids) {
			// Every position lands: the head passes through zero-copy.
			ri := make([]int32, cnt)
			for i, o := range oids {
				ri[i] = int32(o - rbase)
			}
			return &BAT{Name: b.Name, h: b.h, t: r.t.take32(ri)}
		}
		li := make([]int32, 0, cnt)
		ri := make([]int32, 0, cnt)
		for i, o := range oids {
			if o >= rbase && o < rend {
				li = append(li, int32(i))
				ri = append(ri, int32(o-rbase))
			}
		}
		nb := &BAT{Name: b.Name, h: b.h.take32(li), t: r.t.take32(ri)}
		nb.h.sorted = b.h.Sorted()
		return nb
	}
	// Typed hash join, one instantiation per kind.
	var li, ri []int32
	switch b.t.kind {
	case KOid:
		li, ri = hashJoinTyped(b.t.oidValues(), r.h.oidValues(), b.Len())
	case KInt:
		li, ri = hashJoinTyped(b.t.ints, r.h.ints, b.Len())
	case KFloat:
		li, ri = hashJoinTyped(b.t.floats, r.h.floats, b.Len())
	case KStr:
		li, ri = hashJoinTyped(b.t.strs, r.h.strs, b.Len())
	case KBool:
		li, ri = hashJoinTyped(b.t.bools, r.h.bools, b.Len())
	default:
		return b.joinGeneric(r)
	}
	nb := &BAT{Name: b.Name, h: b.h.take32(li), t: r.t.take32(ri)}
	nb.h.sorted = b.h.Sorted() // probe order is preserved
	return nb
}

// Project is leftfetchjoin with explicit naming: positions in b's tail
// (OIDs) fetch values from r (whose head must cover them). Equivalent to
// b.Join(r) but requires r's head to be dense.
func (b *BAT) Project(r *BAT) *BAT {
	if !r.h.dense {
		panic("bat: Project requires dense head on the value BAT")
	}
	return b.Join(r)
}

// makeSet builds a typed membership set over one payload.
func makeSet[T comparable](vals []T) map[T]struct{} {
	set := make(map[T]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	return set
}

// memberIdx returns the positions whose value is (keep=true) or is not
// (keep=false) in the set.
func memberIdx[T comparable](vals []T, set map[T]struct{}, keep bool) []int32 {
	n := 0
	for _, v := range vals {
		if _, in := set[v]; in == keep {
			n++
		}
	}
	idx := make([]int32, 0, n)
	for i, v := range vals {
		if _, in := set[v]; in == keep {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// rangeMemberIdx filters positions by membership in the dense OID range
// [base, end) — the set is implicit, no hash table at all.
func rangeMemberIdx(vals []Oid, base, end Oid, keep bool) []int32 {
	n := 0
	for _, o := range vals {
		if (o >= base && o < end) == keep {
			n++
		}
	}
	idx := make([]int32, 0, n)
	for i, o := range vals {
		if (o >= base && o < end) == keep {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// headFilterIdx computes the row positions of b whose head value
// does (keep) or does not (!keep) appear among r's head values, using
// typed sets — or plain range arithmetic when r's head is dense.
func headFilterIdx(b, r *BAT, keep bool) []int32 {
	if r.h.dense {
		base, end := r.h.base, r.h.base+Oid(r.h.Len())
		return rangeMemberIdx(b.h.oidValues(), base, end, keep)
	}
	switch b.h.kind {
	case KOid:
		return memberIdx(b.h.oidValues(), makeSet(r.h.oidValues()), keep)
	case KInt:
		return memberIdx(b.h.ints, makeSet(r.h.ints), keep)
	case KFloat:
		return memberIdx(b.h.floats, makeSet(r.h.floats), keep)
	case KStr:
		return memberIdx(b.h.strs, makeSet(r.h.strs), keep)
	case KBool:
		return memberIdx(b.h.bools, makeSet(r.h.bools), keep)
	}
	return nil
}

// takeRows gathers the given rows of both columns, propagating head and
// tail sortedness (row order is preserved by all int32 index kernels).
func (b *BAT) takeRows(idx []int32) *BAT {
	nb := &BAT{Name: b.Name, h: b.h.take32(idx), t: b.t.take32(idx)}
	nb.h.sorted = b.h.Sorted()
	nb.t.sorted = b.t.Sorted()
	return nb
}

// Semijoin returns the rows of b whose head value appears among r's head
// values (MAL's algebra.semijoin).
func (b *BAT) Semijoin(r *BAT) *BAT {
	if b.h.kind != r.h.kind {
		panic(fmt.Sprintf("bat: semijoin type mismatch %s != %s", b.h.kind, r.h.kind))
	}
	if r.h.dense && b.h.dense {
		// Dense ∩ dense range: contiguous O(1) view.
		lo, hi := b.h.base, b.h.base+Oid(b.h.n)
		rbase, rend := r.h.base, r.h.base+Oid(r.h.Len())
		if rbase > lo {
			lo = rbase
		}
		if rend < hi {
			hi = rend
		}
		if hi <= lo {
			return b.emptyLike()
		}
		i0 := int(lo - b.h.base)
		return b.Slice(i0, i0+int(hi-lo))
	}
	return b.takeRows(headFilterIdx(b, r, true))
}

// Diff returns the rows of b whose head value does NOT appear among r's
// head values (MAL's kdiff).
func (b *BAT) Diff(r *BAT) *BAT {
	if b.h.kind != r.h.kind {
		// Different key kinds can never match; kdiff keeps everything.
		return b.viewAll()
	}
	return b.takeRows(headFilterIdx(b, r, false))
}

// concatCol concatenates two columns of the same kind: the binary case
// of concatCols (concat.go), which owns the dense-fusion and
// sorted-boundary property rules.
func concatCol(a, c *Column) *Column {
	return concatCols([]*Column{a, c})
}

// boundaryOrdered reports last(a) <= first(c); kinds match.
func boundaryOrdered(a, c *Column) bool {
	i, j := a.Len()-1, 0
	switch a.kind {
	case KOid:
		return a.Oid(i) <= c.Oid(j)
	case KInt:
		return a.ints[i] <= c.ints[j]
	case KFloat:
		return a.floats[i] <= c.floats[j]
	case KStr:
		return a.strs[i] <= c.strs[j]
	case KBool:
		return !a.bools[i] || c.bools[j]
	}
	return false
}

// Union appends r's rows to b's (kunion without duplicate elimination):
// one exact-size allocation per column, no index indirection.
func (b *BAT) Union(r *BAT) *BAT {
	if b.h.kind != r.h.kind || b.t.kind != r.t.kind {
		panic("bat: union kind mismatch")
	}
	return &BAT{Name: b.Name, h: concatCol(b.h, r.h), t: concatCol(b.t, r.t)}
}

// uniqueIdx returns the first position of each distinct value, in
// first-appearance order, via a typed seen-set.
func uniqueIdx[T comparable](vals []T) []int32 {
	seen := make(map[T]struct{}, len(vals))
	var idx []int32
	for i, v := range vals {
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// uniqueSortedIdx dedups a sorted payload with adjacent comparison — no
// hash table at all.
func uniqueSortedIdx[T comparable](vals []T) []int32 {
	var idx []int32
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// UniqueT returns the first row for each distinct tail value, in first-
// appearance order. Dense tails are trivially unique (zero-copy view);
// sorted tails dedup by adjacent comparison.
func (b *BAT) UniqueT() *BAT {
	if b.t.dense {
		return b.viewAll()
	}
	var idx []int32
	sorted := b.t.Sorted()
	switch b.t.kind {
	case KOid:
		if sorted {
			idx = uniqueSortedIdx(b.t.oids)
		} else {
			idx = uniqueIdx(b.t.oids)
		}
	case KInt:
		if sorted {
			idx = uniqueSortedIdx(b.t.ints)
		} else {
			idx = uniqueIdx(b.t.ints)
		}
	case KFloat:
		if sorted {
			idx = uniqueSortedIdx(b.t.floats)
		} else {
			idx = uniqueIdx(b.t.floats)
		}
	case KStr:
		if sorted {
			idx = uniqueSortedIdx(b.t.strs)
		} else {
			idx = uniqueIdx(b.t.strs)
		}
	case KBool:
		idx = uniqueIdx(b.t.bools)
	}
	return b.takeRows(idx)
}

// TopN returns the first n rows of b ordered by tail (desc if desc).
func (b *BAT) TopN(n int, desc bool) *BAT {
	s := b.SortT(desc)
	if n > s.Len() {
		n = s.Len()
	}
	return s.Slice(0, n)
}
