package bat

import "fmt"

// Predicate bounds for Select. Nil means unbounded on that side.
type Bound struct {
	Value     any
	Inclusive bool
}

func cmpValues(kind Kind, a, b any) int {
	switch kind {
	case KOid:
		x, y := a.(Oid), b.(Oid)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case KInt:
		// Mixed int/float comparisons (e.g. an int column against a
		// float literal) are compared as floats.
		if isFloat(a) || isFloat(b) {
			x, y := toFloat64(a), toFloat64(b)
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
		x, y := toInt64(a), toInt64(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case KFloat:
		x, y := toFloat64(a), toFloat64(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case KStr:
		x, y := a.(string), b.(string)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case KBool:
		x, y := a.(bool), b.(bool)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
	}
	return 0
}

func isFloat(v any) bool {
	_, ok := v.(float64)
	return ok
}

func toInt64(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case Oid:
		return int64(x)
	}
	panic(fmt.Sprintf("bat: cannot convert %T to int64", v))
}

func toFloat64(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	case int:
		return float64(x)
	}
	panic(fmt.Sprintf("bat: cannot convert %T to float64", v))
}

// Select returns the BUNs whose tail value lies within [lo, hi]
// (respecting inclusiveness; nil bounds are open). The result preserves
// head values and tail values of the qualifying rows, like MAL's
// algebra.select.
func (b *BAT) Select(lo, hi *Bound) *BAT {
	var idx []int
	n := b.Len()
	for i := 0; i < n; i++ {
		v := b.t.Value(i)
		if lo != nil {
			c := cmpValues(b.t.kind, v, lo.Value)
			if c < 0 || (c == 0 && !lo.Inclusive) {
				continue
			}
		}
		if hi != nil {
			c := cmpValues(b.t.kind, v, hi.Value)
			if c > 0 || (c == 0 && !hi.Inclusive) {
				continue
			}
		}
		idx = append(idx, i)
	}
	nb := &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
	nb.h.sorted = b.h.Sorted()
	nb.t.sorted = b.t.Sorted()
	return nb
}

// SelectEq returns the BUNs whose tail equals v.
func (b *BAT) SelectEq(v any) *BAT {
	bd := &Bound{Value: v, Inclusive: true}
	return b.Select(bd, bd)
}

// SelectNe returns the BUNs whose tail differs from v.
func (b *BAT) SelectNe(v any) *BAT {
	var idx []int
	for i := 0; i < b.Len(); i++ {
		if cmpValues(b.t.kind, b.t.Value(i), v) != 0 {
			idx = append(idx, i)
		}
	}
	return &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
}

// SelectFunc filters rows by an arbitrary tail predicate (used for LIKE
// and other non-range predicates).
func (b *BAT) SelectFunc(pred func(v any) bool) *BAT {
	var idx []int
	for i := 0; i < b.Len(); i++ {
		if pred(b.t.Value(i)) {
			idx = append(idx, i)
		}
	}
	return &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
}

// EqRows returns the rows of a whose tail equals b's tail at the same
// position (a positional equality filter, used for cyclic join
// predicates).
func (b *BAT) EqRows(r *BAT) *BAT {
	if b.Len() != r.Len() {
		panic("bat: EqRows length mismatch")
	}
	var idx []int
	for i := 0; i < b.Len(); i++ {
		if cmpValues(b.t.kind, b.t.Value(i), r.t.Value(i)) == 0 {
			idx = append(idx, i)
		}
	}
	return &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
}

// hashKey normalizes a value for map lookup across numeric kinds.
func hashKey(kind Kind, v any) any {
	switch kind {
	case KOid:
		return v.(Oid)
	default:
		return v
	}
}

// buildHash indexes column c: value -> row positions.
func buildHash(c *Column) map[any][]int {
	m := make(map[any][]int, c.Len())
	for i := 0; i < c.Len(); i++ {
		k := c.Value(i)
		m[k] = append(m[k], i)
	}
	return m
}

// Join computes the natural join of b and r on b.tail == r.head,
// returning [b.head | r.tail], MAL's algebra.join. When r's head is a
// dense OID column the join degenerates to positional fetch
// (leftfetchjoin), the fast path MonetDB uses for projections.
func (b *BAT) Join(r *BAT) *BAT {
	if b.t.kind != r.h.kind {
		panic(fmt.Sprintf("bat: join type mismatch %s != %s", b.t.kind, r.h.kind))
	}
	// Fast path: positional fetch against a dense head.
	if r.h.dense {
		var li, ri []int
		base, n := r.h.base, r.h.Len()
		for i := 0; i < b.Len(); i++ {
			o := b.t.Oid(i)
			if o >= base && o < base+Oid(n) {
				li = append(li, i)
				ri = append(ri, int(o-base))
			}
		}
		return &BAT{Name: b.Name, h: b.h.take(li), t: r.t.take(ri)}
	}
	// Hash join: build on the smaller side when possible.
	hash := buildHash(r.h)
	var li, ri []int
	for i := 0; i < b.Len(); i++ {
		for _, j := range hash[b.t.Value(i)] {
			li = append(li, i)
			ri = append(ri, j)
		}
	}
	return &BAT{Name: b.Name, h: b.h.take(li), t: r.t.take(ri)}
}

// Project is leftfetchjoin with explicit naming: positions in b's tail
// (OIDs) fetch values from r (whose head must cover them). Equivalent to
// b.Join(r) but requires r's head to be dense.
func (b *BAT) Project(r *BAT) *BAT {
	if !r.h.dense {
		panic("bat: Project requires dense head on the value BAT")
	}
	return b.Join(r)
}

// Semijoin returns the rows of b whose head value appears among r's head
// values (MAL's algebra.semijoin).
func (b *BAT) Semijoin(r *BAT) *BAT {
	if b.h.kind != r.h.kind {
		panic(fmt.Sprintf("bat: semijoin type mismatch %s != %s", b.h.kind, r.h.kind))
	}
	if r.h.dense {
		var idx []int
		base, n := r.h.base, r.h.Len()
		for i := 0; i < b.Len(); i++ {
			o := b.h.Oid(i)
			if o >= base && o < base+Oid(n) {
				idx = append(idx, i)
			}
		}
		return &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
	}
	set := make(map[any]bool, r.Len())
	for i := 0; i < r.Len(); i++ {
		set[r.h.Value(i)] = true
	}
	var idx []int
	for i := 0; i < b.Len(); i++ {
		if set[b.h.Value(i)] {
			idx = append(idx, i)
		}
	}
	return &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
}

// Diff returns the rows of b whose head value does NOT appear among r's
// head values (MAL's kdiff).
func (b *BAT) Diff(r *BAT) *BAT {
	set := make(map[any]bool, r.Len())
	for i := 0; i < r.Len(); i++ {
		set[r.h.Value(i)] = true
	}
	var idx []int
	for i := 0; i < b.Len(); i++ {
		if !set[b.h.Value(i)] {
			idx = append(idx, i)
		}
	}
	return &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
}

// Union appends r's rows to b's (kunion without duplicate elimination).
func (b *BAT) Union(r *BAT) *BAT {
	if b.h.kind != r.h.kind || b.t.kind != r.t.kind {
		panic("bat: union kind mismatch")
	}
	bi := make([]int, b.Len())
	for i := range bi {
		bi[i] = i
	}
	ri := make([]int, r.Len())
	for i := range ri {
		ri[i] = i
	}
	h := b.h.take(bi)
	t := b.t.take(bi)
	rh := r.h.take(ri)
	rt := r.t.take(ri)
	switch h.kind {
	case KOid:
		h.oids = append(h.oids, rh.oids...)
	case KInt:
		h.ints = append(h.ints, rh.ints...)
	case KFloat:
		h.floats = append(h.floats, rh.floats...)
	case KStr:
		h.strs = append(h.strs, rh.strs...)
	case KBool:
		h.bools = append(h.bools, rh.bools...)
	}
	switch t.kind {
	case KOid:
		t.oids = append(t.oids, rt.oids...)
	case KInt:
		t.ints = append(t.ints, rt.ints...)
	case KFloat:
		t.floats = append(t.floats, rt.floats...)
	case KStr:
		t.strs = append(t.strs, rt.strs...)
	case KBool:
		t.bools = append(t.bools, rt.bools...)
	}
	return &BAT{Name: b.Name, h: h, t: t}
}

// UniqueT returns the first row for each distinct tail value, in first-
// appearance order.
func (b *BAT) UniqueT() *BAT {
	seen := make(map[any]bool, b.Len())
	var idx []int
	for i := 0; i < b.Len(); i++ {
		k := b.t.Value(i)
		if !seen[k] {
			seen[k] = true
			idx = append(idx, i)
		}
	}
	return &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
}

// TopN returns the first n rows of b ordered by tail (desc if desc).
func (b *BAT) TopN(n int, desc bool) *BAT {
	s := b.SortT(desc)
	if n > s.Len() {
		n = s.Len()
	}
	return s.Slice(0, n)
}
