package bat

import (
	"math/rand"
	"testing"
)

// BenchmarkBAT* is the kernel microbenchmark suite the CI smoke-runs
// with -benchtime=1x. The "generic" sub-benchmarks exercise the boxed
// fallback path in generic.go so the typed/boxed gap stays measurable:
//
//	go test ./internal/bat -bench=BenchmarkBAT -benchmem
//
// Acceptance targets: typed unsorted Select and hash Join >= 2x the
// boxed baseline at 1M rows; sorted Select is O(log n + k), i.e. nearly
// size-independent for a fixed k (compare the /1M and /4M sorted subs).

const benchRows = 1 << 20 // ~1M

func benchIntBAT(n, domain int) *BAT {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(domain))
	}
	return MakeInts("bench", vals)
}

func BenchmarkBATSelect1M(b *testing.B) {
	bb := benchIntBAT(benchRows, 1000)
	lo := &Bound{Value: int64(100), Inclusive: true}
	hi := &Bound{Value: int64(199), Inclusive: true} // ~10% selectivity
	b.Run("typed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bb.Select(lo, hi)
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bb.selectGeneric(lo, hi)
		}
	})
}

// BenchmarkBATSelectSorted verifies the O(log n + k) claim: k is pinned
// at ~1000 rows while n quadruples, so ns/op should stay nearly flat.
func BenchmarkBATSelectSorted(b *testing.B) {
	for _, size := range []struct {
		name string
		n    int
	}{{"1M", 1 << 20}, {"4M", 1 << 22}} {
		sorted := benchIntBAT(size.n, size.n).SortT(false)
		lo := &Bound{Value: int64(size.n / 2), Inclusive: true}
		hi := &Bound{Value: int64(size.n/2 + 1000), Inclusive: false}
		b.Run(size.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := sorted.Select(lo, hi); got.Len() > 1100 {
					b.Fatal("unexpected selectivity")
				}
			}
		})
	}
}

// BenchmarkBATSelectDense compares a dense OID tail (pure arithmetic)
// against the same range materialized.
func BenchmarkBATSelectDense(b *testing.B) {
	dense := New("dense", DenseColumn(0, benchRows), DenseColumn(0, benchRows))
	oids := make([]Oid, benchRows)
	for i := range oids {
		oids[i] = Oid(i)
	}
	mat := New("mat", DenseColumn(0, benchRows), OidColumn(oids))
	mat.Tail().SetSorted(true)
	lo := &Bound{Value: Oid(benchRows / 2), Inclusive: true}
	hi := &Bound{Value: Oid(benchRows/2 + 1000), Inclusive: false}
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dense.Select(lo, hi)
		}
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mat.Select(lo, hi)
		}
	})
}

func BenchmarkBATJoin1M(b *testing.B) {
	l := benchIntBAT(benchRows, 100_000)
	r := benchIntBAT(100_000, 100_000)
	rr := r.Reverse()
	b.Run("typed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Join(rr)
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.joinGeneric(rr)
		}
	})
}

func BenchmarkBATFetchJoin1M(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	vals := benchIntBAT(benchRows, 1000)
	pos := make([]Oid, benchRows)
	for i := range pos {
		pos[i] = Oid(rng.Intn(benchRows))
	}
	pb := MakeOids("pos", pos)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb.Join(vals)
	}
}

func BenchmarkBATGroupedSum1M(b *testing.B) {
	keys := benchIntBAT(benchRows, 100)
	vals := benchIntBAT(benchRows, 1000)
	b.Run("unsorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			groups, _ := keys.GroupIDs()
			GroupedSum(groups, vals)
		}
	})
	sortedKeys := keys.SortT(false)
	b.Run("sorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			groups, _ := sortedKeys.GroupIDs()
			GroupedSum(groups, vals)
		}
	})
}

func BenchmarkBATUnion1M(b *testing.B) {
	l := benchIntBAT(benchRows/2, 1000)
	r := benchIntBAT(benchRows/2, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Union(r)
	}
}

func BenchmarkBATSlice(b *testing.B) {
	bb := benchIntBAT(benchRows, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Slice(1000, benchRows-1000)
	}
}
