package bat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func intsOf(b *BAT) []int64 {
	out := make([]int64, b.Len())
	for i := range out {
		out[i] = b.Tail().Int(i)
	}
	return out
}

func headOids(b *BAT) []Oid {
	out := make([]Oid, b.Len())
	for i := range out {
		out[i] = b.Head().Oid(i)
	}
	return out
}

func TestMakeAndAccess(t *testing.T) {
	b := MakeInts("x", []int64{10, 20, 30})
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if !b.Head().Dense() || b.Head().Base() != 0 {
		t.Fatal("head should be dense from 0")
	}
	if b.Tail().Int(1) != 20 {
		t.Fatalf("Tail(1) = %d, want 20", b.Tail().Int(1))
	}
	if b.Head().Oid(2) != 2 {
		t.Fatalf("Head(2) = %d, want 2", b.Head().Oid(2))
	}
}

func TestNewPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", DenseColumn(0, 2), IntColumn([]int64{1}))
}

func TestReverseIsView(t *testing.T) {
	b := MakeInts("x", []int64{1, 2, 3})
	r := b.Reverse()
	if r.Head().Kind() != KInt || r.Tail().Kind() != KOid {
		t.Fatal("reverse did not swap kinds")
	}
	rr := r.Reverse()
	if rr.Head() != b.Head() || rr.Tail() != b.Tail() {
		t.Fatal("double reverse is not identity (columns should be shared)")
	}
}

func TestMirror(t *testing.T) {
	b := MakeInts("x", []int64{5, 6})
	m := b.Mirror()
	if m.Head() != m.Tail() {
		t.Fatal("mirror should share head as tail")
	}
}

func TestMarkT(t *testing.T) {
	b := MakeInts("x", []int64{7, 8, 9})
	m := b.MarkT(100)
	if !m.Tail().Dense() || m.Tail().Base() != 100 {
		t.Fatal("MarkT should produce dense tail from base")
	}
	if m.Tail().Oid(2) != 102 {
		t.Fatalf("MarkT tail(2) = %d, want 102", m.Tail().Oid(2))
	}
}

func TestSelectRange(t *testing.T) {
	b := MakeInts("x", []int64{5, 15, 25, 35, 45})
	got := b.Select(&Bound{Value: int64(15), Inclusive: true}, &Bound{Value: int64(35), Inclusive: false})
	if want := []int64{15, 25}; !reflect.DeepEqual(intsOf(got), want) {
		t.Fatalf("Select = %v, want %v", intsOf(got), want)
	}
	// Heads are preserved.
	if want := []Oid{1, 2}; !reflect.DeepEqual(headOids(got), want) {
		t.Fatalf("Select heads = %v, want %v", headOids(got), want)
	}
}

func TestSelectOpenBounds(t *testing.T) {
	b := MakeInts("x", []int64{1, 2, 3})
	if got := b.Select(nil, nil); got.Len() != 3 {
		t.Fatalf("unbounded select = %d rows, want 3", got.Len())
	}
	if got := b.Select(&Bound{Value: int64(2), Inclusive: true}, nil); got.Len() != 2 {
		t.Fatalf("lo-only select = %d rows, want 2", got.Len())
	}
	if got := b.Select(nil, &Bound{Value: int64(2), Inclusive: false}); got.Len() != 1 {
		t.Fatalf("hi-only select = %d rows, want 1", got.Len())
	}
}

func TestSelectEqStrings(t *testing.T) {
	b := MakeStrs("s", []string{"a", "b", "a", "c"})
	got := b.SelectEq("a")
	if got.Len() != 2 {
		t.Fatalf("SelectEq = %d rows, want 2", got.Len())
	}
	if want := []Oid{0, 2}; !reflect.DeepEqual(headOids(got), want) {
		t.Fatalf("heads = %v, want %v", headOids(got), want)
	}
}

func TestSelectNe(t *testing.T) {
	b := MakeInts("x", []int64{1, 2, 1})
	if got := b.SelectNe(int64(1)); got.Len() != 1 || got.Tail().Int(0) != 2 {
		t.Fatalf("SelectNe failed: %v", got.Dump(10))
	}
}

func TestSelectFunc(t *testing.T) {
	b := MakeStrs("s", []string{"apple", "banana", "avocado"})
	got := b.SelectFunc(func(v any) bool { return v.(string)[0] == 'a' })
	if got.Len() != 2 {
		t.Fatalf("SelectFunc = %d rows, want 2", got.Len())
	}
}

func TestJoinFetchPath(t *testing.T) {
	// positions (oid tail) join values (dense head): leftfetchjoin.
	pos := MakeOids("pos", []Oid{2, 0})
	vals := MakeInts("vals", []int64{10, 20, 30})
	got := pos.Join(vals)
	if want := []int64{30, 10}; !reflect.DeepEqual(intsOf(got), want) {
		t.Fatalf("fetch join = %v, want %v", intsOf(got), want)
	}
}

func TestJoinFetchOutOfRangeSkipped(t *testing.T) {
	pos := MakeOids("pos", []Oid{5, 1})
	vals := MakeInts("vals", []int64{10, 20})
	got := pos.Join(vals)
	if got.Len() != 1 || got.Tail().Int(0) != 20 {
		t.Fatalf("out-of-range oid should be skipped: %s", got.Dump(10))
	}
}

func TestJoinHashPath(t *testing.T) {
	// The paper's running example: t.id join (c.t_id reversed).
	tid := MakeInts("t.id", []int64{1, 2, 3})
	ctid := MakeInts("c.t_id", []int64{2, 2, 3, 9})
	joined := tid.Join(ctid.Reverse()) // [t oid | c oid] for matches
	if joined.Len() != 3 {
		t.Fatalf("join = %d rows, want 3", joined.Len())
	}
	// t oid 1 (id=2) matches c oids 0,1; t oid 2 (id=3) matches c oid 2.
	gotPairs := map[[2]Oid]bool{}
	for i := 0; i < joined.Len(); i++ {
		gotPairs[[2]Oid{joined.Head().Oid(i), joined.Tail().Oid(i)}] = true
	}
	for _, want := range [][2]Oid{{1, 0}, {1, 1}, {2, 2}} {
		if !gotPairs[want] {
			t.Fatalf("missing pair %v in %v", want, gotPairs)
		}
	}
}

func TestJoinKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakeInts("a", []int64{1}).Join(MakeInts("b", []int64{1}))
}

func TestSemijoinAndDiff(t *testing.T) {
	a := New("a", OidColumn([]Oid{1, 2, 3, 4}), IntColumn([]int64{10, 20, 30, 40}))
	b := New("b", OidColumn([]Oid{2, 4, 9}), IntColumn([]int64{0, 0, 0}))
	semi := a.Semijoin(b)
	if want := []int64{20, 40}; !reflect.DeepEqual(intsOf(semi), want) {
		t.Fatalf("semijoin = %v, want %v", intsOf(semi), want)
	}
	diff := a.Diff(b)
	if want := []int64{10, 30}; !reflect.DeepEqual(intsOf(diff), want) {
		t.Fatalf("diff = %v, want %v", intsOf(diff), want)
	}
	// semijoin + diff partitions a.
	if semi.Len()+diff.Len() != a.Len() {
		t.Fatal("semijoin and diff do not partition")
	}
}

func TestSemijoinDenseFastPath(t *testing.T) {
	a := New("a", OidColumn([]Oid{0, 5, 2}), IntColumn([]int64{1, 2, 3}))
	b := New("b", DenseColumn(0, 3), IntColumn([]int64{0, 0, 0}))
	got := a.Semijoin(b)
	if want := []int64{1, 3}; !reflect.DeepEqual(intsOf(got), want) {
		t.Fatalf("dense semijoin = %v, want %v", intsOf(got), want)
	}
}

func TestUnion(t *testing.T) {
	a := MakeInts("a", []int64{1, 2})
	b := MakeInts("b", []int64{3})
	u := a.Union(b)
	if want := []int64{1, 2, 3}; !reflect.DeepEqual(intsOf(u), want) {
		t.Fatalf("union = %v, want %v", intsOf(u), want)
	}
}

func TestUniqueT(t *testing.T) {
	b := MakeInts("x", []int64{1, 2, 1, 3, 2})
	u := b.UniqueT()
	if want := []int64{1, 2, 3}; !reflect.DeepEqual(intsOf(u), want) {
		t.Fatalf("unique = %v, want %v", intsOf(u), want)
	}
}

func TestSortAndTopN(t *testing.T) {
	b := MakeInts("x", []int64{3, 1, 2})
	s := b.SortT(false)
	if want := []int64{1, 2, 3}; !reflect.DeepEqual(intsOf(s), want) {
		t.Fatalf("sort = %v, want %v", intsOf(s), want)
	}
	if !s.Tail().Sorted() {
		t.Fatal("sorted property not set")
	}
	top := b.TopN(2, true)
	if want := []int64{3, 2}; !reflect.DeepEqual(intsOf(top), want) {
		t.Fatalf("topN = %v, want %v", intsOf(top), want)
	}
	if got := b.TopN(99, false); got.Len() != 3 {
		t.Fatalf("topN clamp failed: %d", got.Len())
	}
}

func TestSliceAndCopy(t *testing.T) {
	b := MakeInts("x", []int64{1, 2, 3, 4})
	s := b.Slice(1, 3)
	if want := []int64{2, 3}; !reflect.DeepEqual(intsOf(s), want) {
		t.Fatalf("slice = %v, want %v", intsOf(s), want)
	}
	c := b.Copy()
	if !reflect.DeepEqual(intsOf(c), intsOf(b)) {
		t.Fatal("copy mismatch")
	}
}

func TestAggregates(t *testing.T) {
	b := MakeInts("x", []int64{4, 1, 3})
	if got := b.Sum().(int64); got != 8 {
		t.Errorf("Sum = %d, want 8", got)
	}
	if got := b.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := b.Min().(int64); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := b.Max().(int64); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := b.Avg(); got != 8.0/3.0 {
		t.Errorf("Avg = %v", got)
	}
	f := MakeFloats("f", []float64{1.5, 2.5})
	if got := f.Sum().(float64); got != 4.0 {
		t.Errorf("float Sum = %v, want 4.0", got)
	}
	empty := MakeInts("e", nil)
	if empty.Min() != nil || empty.Max() != nil || empty.Avg() != 0 {
		t.Error("empty aggregates should be nil/0")
	}
}

func TestGrouping(t *testing.T) {
	vals := MakeStrs("k", []string{"a", "b", "a", "c", "b"})
	groups, reps := vals.GroupIDs()
	if reps.Len() != 3 {
		t.Fatalf("reps = %d, want 3", reps.Len())
	}
	if reps.Tail().Str(0) != "a" || reps.Tail().Str(1) != "b" || reps.Tail().Str(2) != "c" {
		t.Fatalf("rep order wrong: %s", reps.Dump(10))
	}
	nums := MakeInts("v", []int64{1, 10, 2, 100, 20})
	sums := GroupedSum(groups, nums)
	if want := []int64{3, 30, 100}; !reflect.DeepEqual(intsOf(sums), want) {
		t.Fatalf("grouped sums = %v, want %v", intsOf(sums), want)
	}
	counts := GroupedCount(groups)
	if want := []int64{2, 2, 1}; !reflect.DeepEqual(intsOf(counts), want) {
		t.Fatalf("grouped counts = %v, want %v", intsOf(counts), want)
	}
	avgs := GroupedAvg(groups, nums)
	if avgs.Tail().Float(0) != 1.5 || avgs.Tail().Float(2) != 100 {
		t.Fatalf("grouped avgs wrong: %s", avgs.Dump(10))
	}
	mins := GroupedMin(groups, nums)
	maxs := GroupedMax(groups, nums)
	if mins.Tail().Int(1) != 10 || maxs.Tail().Int(1) != 20 {
		t.Fatalf("grouped min/max wrong: %s %s", mins.Dump(10), maxs.Dump(10))
	}
}

func TestArithmetic(t *testing.T) {
	price := MakeFloats("p", []float64{100, 200})
	disc := MakeFloats("d", []float64{0.1, 0.25})
	rev := MulIF(price, ConstMinusF(1, disc))
	if rev.Tail().Float(0) != 90 || rev.Tail().Float(1) != 150 {
		t.Fatalf("revenue wrong: %s", rev.Dump(10))
	}
	sum := AddF(price, disc)
	if sum.Tail().Float(0) != 100.1 {
		t.Fatalf("AddF wrong: %s", sum.Dump(10))
	}
	tax := ConstPlusF(1, disc)
	if tax.Tail().Float(1) != 1.25 {
		t.Fatalf("ConstPlusF wrong: %s", tax.Dump(10))
	}
}

func TestBytes(t *testing.T) {
	b := MakeInts("x", make([]int64, 100))
	// dense head 16 + 100*8 tail
	if got := b.Bytes(); got != 16+800 {
		t.Fatalf("Bytes = %d, want 816", got)
	}
	s := MakeStrs("s", []string{"ab", "cde"})
	if got := s.Bytes(); got != 16+(2+8)+(3+8) {
		t.Fatalf("str Bytes = %d", got)
	}
}

func TestDumpAndString(t *testing.T) {
	b := MakeInts("x", []int64{1, 2, 3})
	if got := b.String(); got != "BAT(x)[oid|int]#3" {
		t.Fatalf("String = %q", got)
	}
	if got := b.Dump(2); got == "" || got == b.String() {
		t.Fatalf("Dump = %q", got)
	}
}

// --- property-based tests ---

func genInts(rng *rand.Rand, n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(rng.Intn(50))
	}
	return v
}

// Property: reverse twice is the identity view.
func TestPropertyReverseReverse(t *testing.T) {
	f := func(vals []int64) bool {
		b := MakeInts("x", vals)
		rr := b.Reverse().Reverse()
		return rr.Head() == b.Head() && rr.Tail() == b.Tail()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Select(lo,hi) rows all satisfy the predicate and the
// complement rows all violate it.
func TestPropertySelectPartition(t *testing.T) {
	f := func(vals []int64, lo, hi int64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		b := MakeInts("x", vals)
		sel := b.Select(&Bound{Value: lo, Inclusive: true}, &Bound{Value: hi, Inclusive: true})
		inRange := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				inRange++
			}
		}
		if sel.Len() != inRange {
			return false
		}
		for i := 0; i < sel.Len(); i++ {
			v := sel.Tail().Int(i)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: joining positions with a value BAT equals direct indexing.
func TestPropertyFetchJoinIsIndexing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		vals := genInts(rng, n)
		m := rng.Intn(40)
		pos := make([]Oid, m)
		for i := range pos {
			pos[i] = Oid(rng.Intn(n))
		}
		got := MakeOids("pos", pos).Join(MakeInts("vals", vals))
		if got.Len() != m {
			t.Fatalf("fetch join lost rows: %d != %d", got.Len(), m)
		}
		for i := 0; i < m; i++ {
			if got.Tail().Int(i) != vals[pos[i]] {
				t.Fatalf("fetch join wrong at %d", i)
			}
		}
	}
}

// Property: hash join cardinality equals the sum over L of match counts
// in R, and every output pair actually matches.
func TestPropertyJoinCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		l := MakeInts("l", genInts(rng, rng.Intn(30)))
		r := MakeInts("r", genInts(rng, rng.Intn(30)))
		got := l.Join(r.Reverse()) // [l oid | r oid] on value match
		want := 0
		for i := 0; i < l.Len(); i++ {
			for j := 0; j < r.Len(); j++ {
				if l.Tail().Int(i) == r.Tail().Int(j) {
					want++
				}
			}
		}
		if got.Len() != want {
			t.Fatalf("join cardinality %d, want %d", got.Len(), want)
		}
		for k := 0; k < got.Len(); k++ {
			li := int(got.Head().Oid(k))
			rj := int(got.Tail().Oid(k))
			if l.Tail().Int(li) != r.Tail().Int(rj) {
				t.Fatalf("join pair (%d,%d) does not match", li, rj)
			}
		}
	}
}

// Property: SortT output is a permutation and is sorted.
func TestPropertySort(t *testing.T) {
	f := func(vals []int64) bool {
		b := MakeInts("x", vals)
		s := b.SortT(false)
		if s.Len() != b.Len() {
			return false
		}
		for i := 1; i < s.Len(); i++ {
			if s.Tail().Int(i-1) > s.Tail().Int(i) {
				return false
			}
		}
		// permutation check via multiset count
		count := map[int64]int{}
		for _, v := range vals {
			count[v]++
		}
		for i := 0; i < s.Len(); i++ {
			count[s.Tail().Int(i)]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: GroupedSum over groups equals total Sum.
func TestPropertyGroupSumConservation(t *testing.T) {
	f := func(keys []uint8, seed int64) bool {
		if len(keys) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		vals := genInts(rng, len(keys))
		keyInts := make([]int64, len(keys))
		for i, k := range keys {
			keyInts[i] = int64(k % 5)
		}
		kb := MakeInts("k", keyInts)
		vb := MakeInts("v", vals)
		groups, _ := kb.GroupIDs()
		sums := GroupedSum(groups, vb)
		var total int64
		for i := 0; i < sums.Len(); i++ {
			total += sums.Tail().Int(i)
		}
		return total == vb.Sum().(int64)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHashJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := MakeInts("l", genInts(rng, 10000))
	r := MakeInts("r", genInts(rng, 10000))
	rr := r.Reverse()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Join(rr)
	}
}

func BenchmarkFetchJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	vals := MakeInts("vals", genInts(rng, 100000))
	pos := make([]Oid, 100000)
	for i := range pos {
		pos[i] = Oid(rng.Intn(100000))
	}
	pb := MakeOids("pos", pos)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb.Join(vals)
	}
}

func BenchmarkSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	bb := MakeInts("x", genInts(rng, 100000))
	lo := &Bound{Value: int64(10), Inclusive: true}
	hi := &Bound{Value: int64(20), Inclusive: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Select(lo, hi)
	}
}
