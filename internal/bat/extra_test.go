package bat

import (
	"reflect"
	"testing"
)

func TestEqRows(t *testing.T) {
	a := MakeInts("a", []int64{1, 2, 3, 4})
	b := MakeInts("b", []int64{1, 9, 3, 9})
	got := a.EqRows(b)
	if want := []int64{1, 3}; !reflect.DeepEqual(intsOf(got), want) {
		t.Fatalf("EqRows = %v, want %v", intsOf(got), want)
	}
	// Heads preserved from a.
	if want := []Oid{0, 2}; !reflect.DeepEqual(headOids(got), want) {
		t.Fatalf("heads = %v, want %v", headOids(got), want)
	}
}

func TestEqRowsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakeInts("a", []int64{1}).EqRows(MakeInts("b", []int64{1, 2}))
}

func TestGroupDerive(t *testing.T) {
	// Rows: (A,1) (A,2) (B,1) (A,1) -> refined groups: {A,1}:0 {A,2}:1 {B,1}:2 {A,1}:0
	k1 := MakeStrs("k1", []string{"A", "A", "B", "A"})
	k2 := MakeInts("k2", []int64{1, 2, 1, 1})
	g1, _ := k1.GroupIDs()
	refined, reps := GroupDerive(g1, k2)
	if refined.Len() != 4 {
		t.Fatalf("refined len = %d", refined.Len())
	}
	wantIDs := []Oid{0, 1, 2, 0}
	for i, w := range wantIDs {
		if refined.Tail().Oid(i) != w {
			t.Fatalf("refined ids = %s, want %v", refined.Dump(10), wantIDs)
		}
	}
	// reps maps group id -> representative row position.
	if reps.Len() != 3 {
		t.Fatalf("reps = %d groups", reps.Len())
	}
	if reps.Tail().Oid(0) != 0 || reps.Tail().Oid(1) != 1 || reps.Tail().Oid(2) != 2 {
		t.Fatalf("rep positions wrong: %s", reps.Dump(10))
	}
}

func TestGroupIDsPos(t *testing.T) {
	b := MakeStrs("k", []string{"x", "y", "x"})
	groups, reps := b.GroupIDsPos()
	if groups.Len() != 3 || reps.Len() != 2 {
		t.Fatalf("groups=%d reps=%d", groups.Len(), reps.Len())
	}
	// Representative positions: group 0 -> row 0 ("x"), group 1 -> row 1.
	if reps.Tail().Oid(0) != 0 || reps.Tail().Oid(1) != 1 {
		t.Fatalf("reps = %s", reps.Dump(10))
	}
}

func TestMixedIntFloatComparison(t *testing.T) {
	b := MakeInts("x", []int64{1, 2, 3})
	got := b.Select(&Bound{Value: 1.5, Inclusive: true}, &Bound{Value: 2.5, Inclusive: true})
	if got.Len() != 1 || got.Tail().Int(0) != 2 {
		t.Fatalf("mixed-kind select = %s", got.Dump(10))
	}
}

func TestColumnValueAllKinds(t *testing.T) {
	cases := []*Column{
		DenseColumn(5, 3),
		OidColumn([]Oid{7}),
		IntColumn([]int64{-1}),
		FloatColumn([]float64{2.5}),
		StrColumn([]string{"s"}),
		BoolColumn([]bool{true}),
	}
	want := []any{Oid(5), Oid(7), int64(-1), 2.5, "s", true}
	for i, c := range cases {
		if got := c.Value(0); got != want[i] {
			t.Errorf("case %d: Value = %v, want %v", i, got, want[i])
		}
	}
}

func TestColumnAppendAllKinds(t *testing.T) {
	for _, k := range []Kind{KOid, KInt, KFloat, KStr, KBool} {
		c := NewColumn(k)
		switch k {
		case KOid:
			c.Append(Oid(1))
		case KInt:
			c.Append(int64(1))
		case KFloat:
			c.Append(1.0)
		case KStr:
			c.Append("1")
		case KBool:
			c.Append(true)
		}
		if c.Len() != 1 {
			t.Errorf("kind %v: Len = %d", k, c.Len())
		}
	}
}

func TestAppendToDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DenseColumn(0, 1).Append(Oid(1))
}

func TestKindStringsAndWidths(t *testing.T) {
	if KInt.String() != "int" || KStr.String() != "str" || KOid.String() != "oid" {
		t.Fatal("kind strings wrong")
	}
	if KInt.Width() != 8 || KStr.Width() != 0 || KBool.Width() != 1 {
		t.Fatal("widths wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestSortStringsAndBools(t *testing.T) {
	s := MakeStrs("s", []string{"b", "a", "c"}).SortT(false)
	if s.Tail().Str(0) != "a" || s.Tail().Str(2) != "c" {
		t.Fatalf("string sort = %s", s.Dump(5))
	}
	b := New("b", DenseColumn(0, 3), BoolColumn([]bool{true, false, true})).SortT(false)
	if b.Tail().Bool(0) != false || b.Tail().Bool(2) != true {
		t.Fatalf("bool sort = %s", b.Dump(5))
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakeInts("x", []int64{1}).Slice(0, 2)
}

func TestJoinOnStringKeys(t *testing.T) {
	l := MakeStrs("l", []string{"a", "b"})
	r := MakeStrs("r", []string{"b", "c", "b"})
	got := l.Join(r.Reverse())
	if got.Len() != 2 { // "b" matches rows 0 and 2 of r
		t.Fatalf("string join = %d rows", got.Len())
	}
}
