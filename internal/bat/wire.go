package bat

// This file is the BAT's native wire format: a versioned, little-endian,
// columnar layout that replaces gob on every hot data path (ring hops,
// result frames). The design goals, in order:
//
//  1. Decode without copying: fixed-width vectors (oid/int/float) land
//     in the message 8-byte aligned, so UnmarshalView can alias them
//     straight out of the receive buffer. Only the string heap is
//     copied (one blob allocation shared by all its strings).
//  2. Encode without intermediate buffers: AppendMarshal appends into a
//     caller-provided (typically pooled, or NIC-registered) buffer and
//     MarshalSize is exact, so callers can size envelopes and memory
//     regions without slack.
//  3. Never trust the bytes: UnmarshalView validates every length and
//     offset and returns an error instead of panicking on corrupt or
//     truncated input (see FuzzUnmarshal).
//
// Layout (all integers little-endian, every section padded to 8 bytes
// relative to the start of the message):
//
//	message  := hdr name-bytes pad8 column(head) column(tail)
//	hdr      := magic 'D' 'C' | version u8 | reserved u8 | nameLen u32
//	column   := kind u8 | flags u8 | reserved[6] | base u64 | n u64 | payload
//	payload  := dense: (empty)
//	          | oid/int/float: n * u64            (8-aligned, aliasable)
//	          | bool: ceil(n/8) packed bits, pad8
//	          | str: blobLen u64, n * u32 end-offsets, pad8, blob, pad8
//
// Versioning rule: the version byte is bumped on any layout change and
// decoders reject versions they do not know — ring nodes and clients
// are deployed together, so there is no cross-version negotiation.
//
// Zero-copy aliasing contract: the BAT returned by UnmarshalView shares
// its fixed-width payloads with the input buffer. This is safe because
// fragments are immutable per version (updates install a fresh *BAT and
// the wire cache keys on the payload pointer); callers must treat the
// buffer as frozen once decoded. Appending to a decoded column is still
// safe: views are handed out at full capacity, so append reallocates.
//
// The gob-based Marshal/Unmarshal in serial.go remain as the test-only
// baseline the equivalence and speedup tests compare against.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// Wire format constants.
const (
	wireMagic0 = 'D'
	wireMagic1 = 'C'
	// WireVersion is the current layout version; UnmarshalView rejects
	// anything else.
	WireVersion = 1

	wireHdrSize = 8  // magic(2) + version(1) + reserved(1) + nameLen(4)
	colHdrSize  = 24 // kind(1) + flags(1) + reserved(6) + base(8) + n(8)

	colFlagDense  = 1 << 0
	colFlagSorted = 1 << 1
)

// ErrWireVersion is returned when the version byte is unknown.
var ErrWireVersion = errors.New("bat: unsupported wire version")

// hostLittle reports whether this machine is little-endian; the
// zero-copy alias paths require it, everything else falls back to
// per-element conversion.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func pad8(n int) int { return (n + 7) &^ 7 }

// colWireSize reports the exact encoded size of one column.
func colWireSize(c *Column) int {
	if c.dense {
		return colHdrSize
	}
	n := c.Len()
	switch c.kind {
	case KStr:
		blob := 0
		for _, s := range c.strs {
			blob += len(s)
		}
		return colHdrSize + pad8(8+4*n) + pad8(blob)
	case KBool:
		return colHdrSize + pad8((n+7)/8)
	default:
		return colHdrSize + 8*n
	}
}

// MarshalSize reports the exact number of bytes AppendMarshal will
// append for b. Callers use it to size envelopes, pooled buffers, and
// RDMA memory regions without slack.
func MarshalSize(b *BAT) int {
	return wireHdrSize + pad8(len(b.Name)) + colWireSize(b.h) + colWireSize(b.t)
}

// AppendMarshal appends the wire form of b to dst and returns the
// extended slice. It performs no intermediate allocation: with a dst of
// sufficient capacity (see MarshalSize) the encode is copy-only.
// Padding is relative to the start of the message (len(dst) at entry),
// so a message decoded from an 8-aligned buffer aliases its vectors.
func AppendMarshal(dst []byte, b *BAT) []byte {
	start := len(dst)
	var hdr [wireHdrSize]byte
	hdr[0], hdr[1], hdr[2] = wireMagic0, wireMagic1, WireVersion
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(b.Name)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, b.Name...)
	dst = appendPad(dst, start)
	dst = appendColumn(dst, start, b.h)
	dst = appendColumn(dst, start, b.t)
	return dst
}

// appendPad pads dst with zeros to an 8-byte boundary relative to
// message start.
func appendPad(dst []byte, start int) []byte {
	var zeros [8]byte
	return append(dst, zeros[:pad8(len(dst)-start)-(len(dst)-start)]...)
}

func appendColumn(dst []byte, start int, c *Column) []byte {
	var hdr [colHdrSize]byte
	hdr[0] = byte(c.kind)
	if c.dense {
		hdr[1] |= colFlagDense
	}
	if c.sorted {
		hdr[1] |= colFlagSorted
	}
	n := c.Len()
	binary.LittleEndian.PutUint64(hdr[8:], uint64(c.base))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	dst = append(dst, hdr[:]...)
	if c.dense {
		return dst
	}
	switch c.kind {
	case KOid:
		dst = appendU64s(dst, oidsToU64(c.oids))
	case KInt:
		dst = appendU64s(dst, intsToU64(c.ints))
	case KFloat:
		dst = appendFloats(dst, c.floats)
	case KBool:
		word := byte(0)
		for i, v := range c.bools {
			if v {
				word |= 1 << (i & 7)
			}
			if i&7 == 7 {
				dst = append(dst, word)
				word = 0
			}
		}
		if n&7 != 0 {
			dst = append(dst, word)
		}
		dst = appendPad(dst, start)
	case KStr:
		blob := 0
		for _, s := range c.strs {
			blob += len(s)
		}
		// The offset vector is u32; a heap at or past 4 GiB would wrap
		// silently and be dropped as corrupt by every receiver. Fail
		// loudly at the sender instead — no sane fragment gets here.
		if uint64(blob) > math.MaxUint32 {
			panic(fmt.Sprintf("bat: string heap of %d bytes exceeds the 4 GiB wire format limit", blob))
		}
		var b8 [8]byte
		binary.LittleEndian.PutUint64(b8[:], uint64(blob))
		dst = append(dst, b8[:]...)
		end := uint32(0)
		var b4 [4]byte
		for _, s := range c.strs {
			end += uint32(len(s))
			binary.LittleEndian.PutUint32(b4[:], end)
			dst = append(dst, b4[:]...)
		}
		dst = appendPad(dst, start)
		for _, s := range c.strs {
			dst = append(dst, s...)
		}
		dst = appendPad(dst, start)
	}
	return dst
}

// appendU64s appends the raw little-endian bytes of v: a single memmove
// on little-endian hosts, a conversion loop elsewhere.
func appendU64s(dst []byte, v []uint64) []byte {
	if len(v) == 0 {
		return dst
	}
	if hostLittle {
		raw := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), 8*len(v))
		return append(dst, raw...)
	}
	var b8 [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(b8[:], x)
		dst = append(dst, b8[:]...)
	}
	return dst
}

func appendFloats(dst []byte, v []float64) []byte {
	if len(v) == 0 {
		return dst
	}
	if hostLittle {
		raw := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), 8*len(v))
		return append(dst, raw...)
	}
	var b8 [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(x))
		dst = append(dst, b8[:]...)
	}
	return dst
}

// oidsToU64 and intsToU64 reinterpret element types of identical width;
// both are O(1).
func oidsToU64(v []Oid) []uint64 {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(v))), len(v))
}

func intsToU64(v []int64) []uint64 {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(v))), len(v))
}

// wireReader is a bounds-checked cursor over an untrusted message.
type wireReader struct {
	data []byte
	off  int
	err  error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("bat: unmarshal: "+format, args...)
	}
}

// take returns the next n bytes, or nil after recording an error.
func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.fail("truncated at offset %d (need %d of %d bytes)", r.off, n, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *wireReader) skipPad() {
	want := pad8(r.off)
	r.take(want - r.off)
}

// UnmarshalView decodes a message produced by AppendMarshal. Fixed-width
// vectors are zero-copy views over data (see the aliasing contract at
// the top of this file); the string heap and bool vectors are copied.
// It never panics on corrupt input.
func UnmarshalView(data []byte) (*BAT, error) {
	r := &wireReader{data: data}
	hdr := r.take(wireHdrSize)
	if r.err != nil {
		return nil, r.err
	}
	if hdr[0] != wireMagic0 || hdr[1] != wireMagic1 {
		return nil, fmt.Errorf("bat: unmarshal: bad magic %q", hdr[:2])
	}
	if hdr[2] != WireVersion {
		return nil, fmt.Errorf("%w %d (want %d)", ErrWireVersion, hdr[2], WireVersion)
	}
	nameLen := int(binary.LittleEndian.Uint32(hdr[4:]))
	name := string(r.take(nameLen))
	r.skipPad()
	h := readColumn(r)
	t := readColumn(r)
	if r.err != nil {
		return nil, r.err
	}
	if h.Len() != t.Len() {
		return nil, fmt.Errorf("bat: unmarshal: head/tail length mismatch %d != %d", h.Len(), t.Len())
	}
	return &BAT{Name: name, h: h, t: t}, nil
}

func readColumn(r *wireReader) *Column {
	hdr := r.take(colHdrSize)
	if r.err != nil {
		return &Column{}
	}
	kind := Kind(hdr[0])
	if kind < KOid || kind > KBool {
		r.fail("bad column kind %d", hdr[0])
		return &Column{}
	}
	flags := hdr[1]
	base := Oid(binary.LittleEndian.Uint64(hdr[8:]))
	n64 := binary.LittleEndian.Uint64(hdr[16:])
	c := &Column{kind: kind, sorted: flags&colFlagSorted != 0}
	if flags&colFlagDense != 0 {
		// Dense columns carry no payload, so n is unrelated to the
		// message size — a 1M-row dense×dense BAT encodes to 64 bytes.
		// Only guard against counts that would overflow int arithmetic.
		if kind != KOid {
			r.fail("dense column of kind %s", kind)
			return c
		}
		if n64 > 1<<56 {
			r.fail("implausible dense column length %d", n64)
			return c
		}
		c.dense, c.base, c.n = true, base, int(n64)
		return c
	}
	// Materialized columns do pay at least one bit per element, so a
	// length that cannot fit in the remaining bytes is corrupt; this
	// bound also keeps n*8 from overflowing int below.
	if n64 > uint64(len(r.data))*8 {
		r.fail("implausible column length %d", n64)
		return &Column{}
	}
	n := int(n64)
	switch kind {
	case KOid:
		c.oids = viewOids(r, n)
	case KInt:
		c.ints = viewInts(r, n)
	case KFloat:
		c.floats = viewFloats(r, n)
	case KBool:
		packed := r.take((n + 7) / 8)
		r.skipPad()
		if r.err != nil {
			return c
		}
		if n > 0 {
			c.bools = make([]bool, n)
			for i := range c.bools {
				c.bools[i] = packed[i>>3]&(1<<(i&7)) != 0
			}
		}
	case KStr:
		lenBytes := r.take(8)
		if r.err != nil {
			return c
		}
		blobLen64 := binary.LittleEndian.Uint64(lenBytes)
		if blobLen64 > uint64(len(r.data)) {
			r.fail("implausible string heap size %d", blobLen64)
			return c
		}
		blobLen := int(blobLen64)
		offBytes := r.take(4 * n)
		r.skipPad()
		blob := r.take(blobLen)
		r.skipPad()
		if r.err != nil {
			return c
		}
		// One copy for the whole heap; the strings share its backing.
		heap := string(blob)
		if n > 0 {
			c.strs = make([]string, n)
			prev := uint32(0)
			for i := range c.strs {
				end := binary.LittleEndian.Uint32(offBytes[4*i:])
				if end < prev || end > uint32(blobLen) {
					r.fail("string offset %d out of order (prev %d, heap %d)", end, prev, blobLen)
					return c
				}
				c.strs[i] = heap[prev:end]
				prev = end
			}
		}
	}
	return c
}

// viewU64Payload returns the n*8-byte payload for a fixed-width vector
// and whether it may be aliased in place (little-endian host and
// 8-aligned in memory — guaranteed by the layout when the message
// starts an allocation, re-checked here so arbitrary subslices stay
// correct).
func viewU64Payload(r *wireReader, n int) ([]byte, bool) {
	raw := r.take(8 * n)
	if r.err != nil || n == 0 {
		return nil, false
	}
	alias := hostLittle && uintptr(unsafe.Pointer(unsafe.SliceData(raw)))%8 == 0
	return raw, alias
}

func viewOids(r *wireReader, n int) []Oid {
	raw, alias := viewU64Payload(r, n)
	if raw == nil {
		return nil
	}
	if alias {
		return unsafe.Slice((*Oid)(unsafe.Pointer(unsafe.SliceData(raw))), n)
	}
	out := make([]Oid, n)
	for i := range out {
		out[i] = Oid(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

func viewInts(r *wireReader, n int) []int64 {
	raw, alias := viewU64Payload(r, n)
	if raw == nil {
		return nil
	}
	if alias {
		return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(raw))), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

func viewFloats(r *wireReader, n int) []float64 {
	raw, alias := viewU64Payload(r, n)
	if raw == nil {
		return nil
	}
	if alias {
		return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(raw))), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}
