package bat

import (
	"bytes"
	"math/rand"
	"testing"
)

// randColumn builds a random materialized column of the given kind.
// sorted asks for genuinely sorted data plus the flag.
func randColumn(rng *rand.Rand, kind Kind, n int, sorted bool) *Column {
	c := &Column{kind: kind}
	switch kind {
	case KOid:
		v := make([]Oid, n)
		for i := range v {
			v[i] = Oid(rng.Intn(1000))
		}
		if sorted {
			for i := 1; i < n; i++ {
				if v[i] < v[i-1] {
					v[i] = v[i-1]
				}
			}
		}
		c.oids = v
	case KInt:
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(rng.Intn(2000) - 1000)
		}
		if sorted {
			for i := 1; i < n; i++ {
				if v[i] < v[i-1] {
					v[i] = v[i-1]
				}
			}
		}
		c.ints = v
	case KFloat:
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		if sorted {
			for i := 1; i < n; i++ {
				if v[i] < v[i-1] {
					v[i] = v[i-1]
				}
			}
		}
		c.floats = v
	case KStr:
		v := make([]string, n)
		for i := range v {
			v[i] = string(rune('a' + rng.Intn(26)))
			if rng.Intn(4) == 0 {
				v[i] += "xyz"
			}
		}
		if sorted {
			for i := 1; i < n; i++ {
				if v[i] < v[i-1] {
					v[i] = v[i-1]
				}
			}
		}
		c.strs = v
	case KBool:
		v := make([]bool, n)
		for i := range v {
			v[i] = rng.Intn(2) == 0
		}
		if sorted {
			for i := 1; i < n; i++ {
				if v[i-1] && !v[i] {
					v[i] = true
				}
			}
		}
		c.bools = v
	}
	c.sorted = sorted
	return c
}

// randBAT builds a random BAT: dense or materialized OID head, any tail
// kind, optionally sorted tail.
func randBAT(rng *rand.Rand, n int) *BAT {
	var h *Column
	if rng.Intn(2) == 0 {
		h = DenseColumn(Oid(rng.Intn(100)), n)
	} else {
		h = randColumn(rng, KOid, n, false)
	}
	kinds := []Kind{KOid, KInt, KFloat, KStr, KBool}
	t := randColumn(rng, kinds[rng.Intn(len(kinds))], n, rng.Intn(2) == 0)
	return New("prop", h, t)
}

// randSplit cuts [0,n) at random boundaries, allowing empty and
// single-row fragments.
func randSplit(rng *rand.Rand, b *BAT) []*BAT {
	n := b.Len()
	cuts := []int{0}
	for k := rng.Intn(6); k > 0; k-- {
		cuts = append(cuts, rng.Intn(n+1))
	}
	cuts = append(cuts, n)
	// insertion-sort the few cut points
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	var frags []*BAT
	for i := 1; i < len(cuts); i++ {
		frags = append(frags, b.Slice(cuts[i-1], cuts[i]))
	}
	return frags
}

func colsEqual(t *testing.T, what string, a, c *Column) {
	t.Helper()
	if a.Kind() != c.Kind() {
		t.Fatalf("%s: kind %s != %s", what, a.Kind(), c.Kind())
	}
	if a.Len() != c.Len() {
		t.Fatalf("%s: len %d != %d", what, a.Len(), c.Len())
	}
	if a.Dense() != c.Dense() {
		t.Fatalf("%s: dense %v != %v", what, a.Dense(), c.Dense())
	}
	if a.Dense() && a.Base() != c.Base() {
		t.Fatalf("%s: base %d != %d", what, a.Base(), c.Base())
	}
	if a.Sorted() != c.Sorted() {
		t.Fatalf("%s: sorted %v != %v", what, a.Sorted(), c.Sorted())
	}
	for i := 0; i < a.Len(); i++ {
		if !a.equalAt(i, c, i) {
			t.Fatalf("%s: row %d: %v != %v", what, i, a.Value(i), c.Value(i))
		}
	}
}

// TestConcatRoundtripProperty is the fragment/concat round-trip law:
// for any BAT and any fragmentation, Concat(fragments) preserves
// values, sorted/dense properties, and the wire encoding
// (Marshal(Concat(frags)) ≡ Marshal(column)).
func TestConcatRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(40) // includes 0- and 1-row columns
		b := randBAT(rng, n)
		frags := randSplit(rng, b)
		got := Concat(frags)
		colsEqual(t, "head", b.Head(), got.Head())
		colsEqual(t, "tail", b.Tail(), got.Tail())
		if got.Name != b.Name {
			t.Fatalf("name %q != %q", got.Name, b.Name)
		}
		wantWire := AppendMarshal(nil, b)
		gotWire := AppendMarshal(nil, got)
		if !bytes.Equal(wantWire, gotWire) {
			t.Fatalf("trial %d (%s, %d frags): wire encoding differs after concat",
				trial, b, len(frags))
		}
	}
}

// TestConcatDenseFusion: adjacent dense fragments fuse back into one
// dense column, bit-identical to the original descriptor.
func TestConcatDenseFusion(t *testing.T) {
	b := New("d", DenseColumn(7, 100), DenseColumn(1000, 100))
	var frags []*BAT
	for _, sp := range [][2]int{{0, 10}, {10, 10}, {10, 64}, {64, 100}} {
		frags = append(frags, b.Slice(sp[0], sp[1]))
	}
	got := Concat(frags)
	if !got.Head().Dense() || got.Head().Base() != 7 || got.Head().Len() != 100 {
		t.Fatalf("head not fused dense: %v base=%d n=%d", got.Head().Dense(), got.Head().Base(), got.Head().Len())
	}
	if !got.Tail().Dense() || got.Tail().Base() != 1000 {
		t.Fatalf("tail not fused dense")
	}
}

// TestConcatNonAdjacentDenseMaterializes: dense pieces with a gap (as
// per-fragment selects produce when a fragment matched nothing) cannot
// fuse but must still concatenate correctly.
func TestConcatNonAdjacentDenseMaterializes(t *testing.T) {
	a := New("g", DenseColumn(0, 3), IntColumn([]int64{1, 2, 3}))
	c := New("g", DenseColumn(10, 2), IntColumn([]int64{4, 5}))
	got := Concat([]*BAT{a, c})
	if got.Head().Dense() {
		t.Fatal("gap head fused dense")
	}
	want := []Oid{0, 1, 2, 10, 11}
	for i, w := range want {
		if got.Head().Oid(i) != w {
			t.Fatalf("head[%d] = %d, want %d", i, got.Head().Oid(i), w)
		}
	}
	if !got.Head().Sorted() {
		t.Fatal("ordered boundary lost sortedness")
	}
}

// TestConcatSortedBoundary: sortedness survives only ordered
// boundaries, and an unsorted input never gains the flag.
func TestConcatSortedBoundary(t *testing.T) {
	mk := func(vals ...int64) *BAT {
		b := MakeInts("s", vals)
		b.Tail().SetSorted(true)
		return b
	}
	if !Concat([]*BAT{mk(1, 2), mk(2, 3)}).Tail().Sorted() {
		t.Fatal("ordered boundary should keep sorted")
	}
	if Concat([]*BAT{mk(1, 5), mk(2, 3)}).Tail().Sorted() {
		t.Fatal("disordered boundary kept sorted flag")
	}
	// Empty middle fragment does not break the boundary chain.
	if !Concat([]*BAT{mk(1, 2), mk(), mk(2, 3)}).Tail().Sorted() {
		t.Fatal("empty fragment broke sortedness")
	}
	unsorted := MakeInts("u", []int64{1, 2, 3})
	if Concat([]*BAT{unsorted.Slice(0, 2), unsorted.Slice(2, 3)}).Tail().Sorted() {
		t.Fatal("concat invented a sorted flag the source never had")
	}
}

// TestConcatSingleAndEmpty covers the degenerate shapes.
func TestConcatSingleAndEmpty(t *testing.T) {
	b := MakeInts("one", []int64{1, 2, 3})
	got := Concat([]*BAT{b})
	if got.Len() != 3 || got.Tail().Int(2) != 3 {
		t.Fatalf("single concat = %s", got.Dump(5))
	}
	empty := MakeInts("none", nil)
	if got := Concat([]*BAT{empty, empty}); got.Len() != 0 {
		t.Fatalf("empty concat has %d rows", got.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Concat(nil) did not panic")
		}
	}()
	Concat(nil)
}

// TestConcatKindMismatchPanics keeps shape errors loud, like the other
// kernel operators.
func TestConcatKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	Concat([]*BAT{MakeInts("a", []int64{1}), MakeStrs("b", []string{"x"})})
}

// TestConcatSingleZeroCopyAlias: a single-fragment Concat is a
// zero-copy alias of the fragment — the returned BAT shares the
// fragment's column storage outright (no payload copy, no index
// indirection) and preserves every property.
func TestConcatSingleZeroCopyAlias(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5}
	b := MakeInts("frag", vals)
	got := Concat([]*BAT{b})
	if got == b {
		t.Fatal("Concat returned the fragment itself, not a view")
	}
	if got.Head() != b.Head() || got.Tail() != b.Tail() {
		t.Fatal("single-fragment Concat did not alias the fragment's columns")
	}
	if &got.Tail().ints[0] != &b.Tail().ints[0] {
		t.Fatal("tail payload was copied")
	}
	if !got.Head().Dense() || got.Head().Base() != b.Head().Base() {
		t.Fatal("dense head property lost")
	}
	if got.Len() != b.Len() || got.Name != b.Name {
		t.Fatal("shape or name lost")
	}

	sorted := MakeInts("s", []int64{1, 2, 2, 9})
	sorted.Tail().sorted = true
	if !Concat([]*BAT{sorted}).Tail().Sorted() {
		t.Fatal("sorted flag lost through single-fragment Concat")
	}
}

// TestConcatSingleAllocs pins the allocation contract: a
// single-fragment Concat allocates exactly the one view struct —
// nothing proportional to the data.
func TestConcatSingleAllocs(t *testing.T) {
	b := MakeInts("frag", make([]int64, 1<<16))
	frags := []*BAT{b}
	allocs := testing.AllocsPerRun(100, func() {
		if Concat(frags).Len() != 1<<16 {
			t.Fatal("bad concat")
		}
	})
	if allocs > 1 {
		t.Fatalf("single-fragment Concat allocates %.0f objects, want ≤1 (zero-copy view)", allocs)
	}
}

// BenchmarkConcatSingle documents the zero-copy fast path next to the
// materializing multi-fragment gather.
func BenchmarkConcatSingle(b *testing.B) {
	frag := MakeInts("frag", make([]int64, 1<<20))
	frags := []*BAT{frag}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Concat(frags).Len() != 1<<20 {
			b.Fatal("bad concat")
		}
	}
}

// BenchmarkConcatPair is the two-fragment baseline the single-fragment
// alias path is measured against (one exact-size gather allocation).
func BenchmarkConcatPair(b *testing.B) {
	col := MakeInts("col", make([]int64, 1<<20))
	frags := []*BAT{col.Slice(0, 1<<19), col.Slice(1<<19, 1<<20)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Concat(frags).Len() != 1<<20 {
			b.Fatal("bad concat")
		}
	}
}
