package bat

// Concat reassembles a logical column from an ordered list of
// fragments — the merge step of the live ring's horizontal
// fragmentation, where a column circulates as bounded-size pieces that
// arrive (and are processed) in any order and are stitched back
// together in fragment order.
//
// Properties are propagated, not recomputed:
//
//   - adjacent dense fragments fuse back into a single dense column
//     (a dense column fragmented with Slice and concatenated again is
//     bit-identical to the original, including its wire encoding);
//   - sortedness survives exactly when every fragment is sorted and
//     each fragment boundary is ordered (last of i <= first of i+1),
//     so a sorted column round-trips with its flag intact while an
//     unsorted one never gains a flag it did not have.
//
// A single fragment returns a full-length zero-copy view; multiple
// materialized fragments are gathered with one exact-size allocation
// per column. Empty fragments are legal anywhere in the list.

import "fmt"

// Concat concatenates fragments in order into one BAT. All fragments
// must share head and tail kinds. It panics on an empty fragment list
// (there is no column to describe) and on kind mismatches, like the
// other kernel operators do on shape errors.
func Concat(frags []*BAT) *BAT {
	if len(frags) == 0 {
		panic("bat: Concat of zero fragments")
	}
	if len(frags) == 1 {
		return frags[0].viewAll()
	}
	first := frags[0]
	for _, f := range frags[1:] {
		if f.h.kind != first.h.kind || f.t.kind != first.t.kind {
			panic(fmt.Sprintf("bat: Concat kind mismatch [%s|%s] vs [%s|%s]",
				first.h.kind, first.t.kind, f.h.kind, f.t.kind))
		}
	}
	heads := make([]*Column, len(frags))
	tails := make([]*Column, len(frags))
	for i, f := range frags {
		heads[i] = f.h
		tails[i] = f.t
	}
	return &BAT{Name: first.Name, h: concatCols(heads), t: concatCols(tails)}
}

// concatCols is the n-ary generalization of concatCol: one exact-size
// allocation, dense fusion, and boundary-checked sortedness.
func concatCols(cols []*Column) *Column {
	if fused, ok := fuseDense(cols); ok {
		return fused
	}
	total := 0
	allSorted := true
	for _, c := range cols {
		total += c.Len()
		if !c.Sorted() {
			allSorted = false
		}
	}
	out := &Column{kind: cols[0].kind}
	switch out.kind {
	case KOid:
		v := make([]Oid, 0, total)
		for _, c := range cols {
			v = append(v, c.oidValues()...)
		}
		out.oids = v
	case KInt:
		v := make([]int64, 0, total)
		for _, c := range cols {
			v = append(v, c.ints...)
		}
		out.ints = v
	case KFloat:
		v := make([]float64, 0, total)
		for _, c := range cols {
			v = append(v, c.floats...)
		}
		out.floats = v
	case KStr:
		v := make([]string, 0, total)
		for _, c := range cols {
			v = append(v, c.strs...)
		}
		out.strs = v
	case KBool:
		v := make([]bool, 0, total)
		for _, c := range cols {
			v = append(v, c.bools...)
		}
		out.bools = v
	}
	out.sorted = allSorted && boundariesOrdered(cols)
	return out
}

// fuseDense reports the single dense column equivalent to the
// concatenation, when every fragment is dense and consecutive
// fragments are base-adjacent. Empty fragments are skipped: they
// contribute no rows, so their base is irrelevant.
func fuseDense(cols []*Column) (*Column, bool) {
	base := cols[0].base // all-empty concat keeps the first base
	n := 0
	for _, c := range cols {
		if !c.dense {
			return nil, false
		}
		if c.n == 0 {
			continue
		}
		if n == 0 {
			base = c.base
		} else if c.base != base+Oid(n) {
			return nil, false
		}
		n += c.n
	}
	return &Column{kind: KOid, dense: true, base: base, n: n, sorted: true}, true
}

// boundariesOrdered reports whether every fragment boundary is ordered:
// last value of each non-empty fragment <= first value of the next
// non-empty one. Callers have already checked per-fragment sortedness.
func boundariesOrdered(cols []*Column) bool {
	var prev *Column
	for _, c := range cols {
		if c.Len() == 0 {
			continue
		}
		if prev != nil && !boundaryOrdered(prev, c) {
			return false
		}
		prev = c
	}
	return true
}
