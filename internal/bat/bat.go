// Package bat implements the column-store kernel the Data Cyclotron is
// layered on: Binary Association Tables (BATs) in the style of MonetDB.
//
// A BAT is a two-column table mapping a head value to a tail value. Both
// columns are typed; the head is most often a (dense) OID column. The
// package provides the binary relational algebra the MAL plans in the
// paper use — select, join, reverse, mark, mirror, semijoin — plus the
// grouping/aggregation operators needed by the SQL front-end, and
// property metadata (sortedness, density) used to pick fast paths,
// mirroring §3.1.
package bat

import (
	"fmt"
	"sort"
)

// Oid is an object identifier, the glue between decomposed columns.
type Oid uint64

// NilOid is the out-of-band OID value.
const NilOid Oid = ^Oid(0)

// Kind enumerates column types.
type Kind int

// Column kinds.
const (
	KOid Kind = iota
	KInt
	KFloat
	KStr
	KBool
)

func (k Kind) String() string {
	switch k {
	case KOid:
		return "oid"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KStr:
		return "str"
	case KBool:
		return "bool"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Width reports the in-memory width of a fixed-size kind in bytes.
// Strings report 0; their size is data-dependent.
func (k Kind) Width() int {
	switch k {
	case KStr:
		return 0
	case KBool:
		return 1
	default:
		return 8
	}
}

// Column is one typed column of a BAT. A column is either materialized
// (one of the slices is used, per kind) or dense (an arithmetic sequence
// of OIDs starting at Base — MonetDB's virtual OID column).
type Column struct {
	kind   Kind
	dense  bool
	base   Oid
	n      int // length when dense
	oids   []Oid
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	sorted bool // non-decreasing tail order (trivially true when dense)
}

// NewColumn returns an empty materialized column of the given kind.
func NewColumn(kind Kind) *Column { return &Column{kind: kind} }

// DenseColumn returns a dense OID column [base, base+n).
func DenseColumn(base Oid, n int) *Column {
	return &Column{kind: KOid, dense: true, base: base, n: n, sorted: true}
}

// OidColumn materializes an OID column.
func OidColumn(v []Oid) *Column { return &Column{kind: KOid, oids: v} }

// IntColumn materializes an int column.
func IntColumn(v []int64) *Column { return &Column{kind: KInt, ints: v} }

// FloatColumn materializes a float column.
func FloatColumn(v []float64) *Column { return &Column{kind: KFloat, floats: v} }

// StrColumn materializes a string column.
func StrColumn(v []string) *Column { return &Column{kind: KStr, strs: v} }

// BoolColumn materializes a bool column.
func BoolColumn(v []bool) *Column { return &Column{kind: KBool, bools: v} }

// Kind reports the column type.
func (c *Column) Kind() Kind { return c.kind }

// Dense reports whether the column is a virtual dense OID sequence.
func (c *Column) Dense() bool { return c.dense }

// Base reports the first OID of a dense column.
func (c *Column) Base() Oid { return c.base }

// Sorted reports whether the column is known to be non-decreasing.
func (c *Column) Sorted() bool { return c.sorted || c.dense }

// SetSorted records the sortedness property.
func (c *Column) SetSorted(v bool) { c.sorted = v }

// Len reports the number of values.
func (c *Column) Len() int {
	if c.dense {
		return c.n
	}
	switch c.kind {
	case KOid:
		return len(c.oids)
	case KInt:
		return len(c.ints)
	case KFloat:
		return len(c.floats)
	case KStr:
		return len(c.strs)
	case KBool:
		return len(c.bools)
	}
	return 0
}

// Value returns element i as an any. Slow path; operators use the typed
// accessors.
func (c *Column) Value(i int) any {
	if c.dense {
		return c.base + Oid(i)
	}
	switch c.kind {
	case KOid:
		return c.oids[i]
	case KInt:
		return c.ints[i]
	case KFloat:
		return c.floats[i]
	case KStr:
		return c.strs[i]
	case KBool:
		return c.bools[i]
	}
	panic("bat: bad kind")
}

// Oid returns element i of an OID column.
func (c *Column) Oid(i int) Oid {
	if c.dense {
		return c.base + Oid(i)
	}
	return c.oids[i]
}

// Int returns element i of an int column.
func (c *Column) Int(i int) int64 { return c.ints[i] }

// Float returns element i of a float column.
func (c *Column) Float(i int) float64 { return c.floats[i] }

// Str returns element i of a string column.
func (c *Column) Str(i int) string { return c.strs[i] }

// Bool returns element i of a bool column.
func (c *Column) Bool(i int) bool { return c.bools[i] }

// Append adds v, which must match the column kind. Dense columns cannot
// be appended to.
func (c *Column) Append(v any) {
	if c.dense {
		panic("bat: append to dense column")
	}
	switch c.kind {
	case KOid:
		c.oids = append(c.oids, v.(Oid))
	case KInt:
		c.ints = append(c.ints, v.(int64))
	case KFloat:
		c.floats = append(c.floats, v.(float64))
	case KStr:
		c.strs = append(c.strs, v.(string))
	case KBool:
		c.bools = append(c.bools, v.(bool))
	default:
		panic("bat: bad kind")
	}
}

// take returns a new column with the rows at the given positions.
func (c *Column) take(idx []int) *Column { return takeIdx(c, idx) }

// take32 is take over the compact int32 row indexes the typed kernels
// produce.
func (c *Column) take32(idx []int32) *Column { return takeIdx(c, idx) }

// takeIdx gathers the rows at the given positions into a fresh
// materialized column. It is generic over the index width so the typed
// kernels can carry int32 row ids (half the memory traffic of int on
// 64-bit) without a conversion pass.
func takeIdx[I int | int32](c *Column, idx []I) *Column {
	out := &Column{kind: c.kind}
	switch c.kind {
	case KOid:
		out.oids = make([]Oid, len(idx))
		if c.dense {
			for k, i := range idx {
				out.oids[k] = c.base + Oid(i)
			}
		} else {
			for k, i := range idx {
				out.oids[k] = c.oids[i]
			}
		}
	case KInt:
		out.ints = make([]int64, len(idx))
		for k, i := range idx {
			out.ints[k] = c.ints[i]
		}
	case KFloat:
		out.floats = make([]float64, len(idx))
		for k, i := range idx {
			out.floats[k] = c.floats[i]
		}
	case KStr:
		out.strs = make([]string, len(idx))
		for k, i := range idx {
			out.strs[k] = c.strs[i]
		}
	case KBool:
		out.bools = make([]bool, len(idx))
		for k, i := range idx {
			out.bools[k] = c.bools[i]
		}
	}
	return out
}

// view returns an O(1) zero-copy view of rows [from, to). Dense columns
// stay dense (the base shifts); materialized columns share the payload.
// The shared subslices are capped (three-index slicing) so a later
// Append on the view reallocates instead of clobbering the parent.
func (c *Column) view(from, to int) *Column {
	if c.dense {
		return &Column{kind: c.kind, dense: true, base: c.base + Oid(from), n: to - from, sorted: true}
	}
	out := &Column{kind: c.kind, sorted: c.sorted}
	switch c.kind {
	case KOid:
		out.oids = c.oids[from:to:to]
	case KInt:
		out.ints = c.ints[from:to:to]
	case KFloat:
		out.floats = c.floats[from:to:to]
	case KStr:
		out.strs = c.strs[from:to:to]
	case KBool:
		out.bools = c.bools[from:to:to]
	}
	return out
}

// clone returns a materialized deep copy (dense columns stay dense —
// they are immutable descriptors anyway).
func (c *Column) clone() *Column {
	if c.dense {
		return &Column{kind: c.kind, dense: true, base: c.base, n: c.n, sorted: true}
	}
	out := &Column{kind: c.kind, sorted: c.sorted}
	switch c.kind {
	case KOid:
		out.oids = append([]Oid(nil), c.oids...)
	case KInt:
		out.ints = append([]int64(nil), c.ints...)
	case KFloat:
		out.floats = append([]float64(nil), c.floats...)
	case KStr:
		out.strs = append([]string(nil), c.strs...)
	case KBool:
		out.bools = append([]bool(nil), c.bools...)
	}
	return out
}

// oidValues returns the column's OIDs as a plain slice: O(1) for
// materialized columns, one allocation for dense ones. The typed
// kernels use it to run a single monomorphic loop regardless of
// density.
func (c *Column) oidValues() []Oid {
	if !c.dense {
		return c.oids
	}
	v := make([]Oid, c.n)
	for i := range v {
		v[i] = c.base + Oid(i)
	}
	return v
}

// Bytes reports the memory footprint of the column payload.
func (c *Column) Bytes() int {
	if c.dense {
		return 16 // base + count
	}
	switch c.kind {
	case KStr:
		total := 0
		for _, s := range c.strs {
			total += len(s) + 8 // payload + offset
		}
		return total
	case KBool:
		return c.Len()
	default:
		return c.Len() * 8
	}
}

// equalAt reports whether c[i] == d[j]; kinds must match.
func (c *Column) equalAt(i int, d *Column, j int) bool {
	switch c.kind {
	case KOid:
		return c.Oid(i) == d.Oid(j)
	case KInt:
		return c.ints[i] == d.ints[j]
	case KFloat:
		return c.floats[i] == d.floats[j]
	case KStr:
		return c.strs[i] == d.strs[j]
	case KBool:
		return c.bools[i] == d.bools[j]
	}
	return false
}

// BAT is a binary association table: a head and a tail column of equal
// length. The zero value is not useful; use New or the Make helpers.
type BAT struct {
	Name string
	h, t *Column
}

// New creates a BAT from a head and tail column. The columns must have
// equal lengths.
func New(name string, h, t *Column) *BAT {
	if h.Len() != t.Len() {
		panic(fmt.Sprintf("bat: head/tail length mismatch %d != %d", h.Len(), t.Len()))
	}
	return &BAT{Name: name, h: h, t: t}
}

// MakeInts builds a [dense OID | int] BAT, the workhorse layout.
func MakeInts(name string, vals []int64) *BAT {
	return New(name, DenseColumn(0, len(vals)), IntColumn(vals))
}

// MakeFloats builds a [dense OID | float] BAT.
func MakeFloats(name string, vals []float64) *BAT {
	return New(name, DenseColumn(0, len(vals)), FloatColumn(vals))
}

// MakeStrs builds a [dense OID | str] BAT.
func MakeStrs(name string, vals []string) *BAT {
	return New(name, DenseColumn(0, len(vals)), StrColumn(vals))
}

// MakeOids builds a [dense OID | oid] BAT (e.g. a join index).
func MakeOids(name string, vals []Oid) *BAT {
	return New(name, DenseColumn(0, len(vals)), OidColumn(vals))
}

// Head returns the head column.
func (b *BAT) Head() *Column { return b.h }

// Tail returns the tail column.
func (b *BAT) Tail() *Column { return b.t }

// Len reports the number of BUNs (rows).
func (b *BAT) Len() int { return b.h.Len() }

// Bytes reports the payload size, used as the wire size when the BAT
// travels the storage ring.
func (b *BAT) Bytes() int { return b.h.Bytes() + b.t.Bytes() }

// Reverse returns the BAT with head and tail swapped. Like MonetDB this
// is a view: O(1), sharing the columns.
func (b *BAT) Reverse() *BAT { return &BAT{Name: b.Name, h: b.t, t: b.h} }

// Mirror returns [head | head]: both columns are the head column.
func (b *BAT) Mirror() *BAT { return &BAT{Name: b.Name, h: b.h, t: b.h} }

// MarkT returns [head | dense OIDs from base], per MAL's markT.
func (b *BAT) MarkT(base Oid) *BAT {
	return &BAT{Name: b.Name, h: b.h, t: DenseColumn(base, b.Len())}
}

// MarkH returns [dense OIDs from base | tail].
func (b *BAT) MarkH(base Oid) *BAT {
	return &BAT{Name: b.Name, h: DenseColumn(base, b.Len()), t: b.t}
}

// Slice returns rows [from, to) as an O(1) zero-copy view: no payload
// is moved, dense columns stay dense, and sortedness is preserved.
func (b *BAT) Slice(from, to int) *BAT {
	if from < 0 || to > b.Len() || from > to {
		panic(fmt.Sprintf("bat: slice [%d,%d) out of range 0..%d", from, to, b.Len()))
	}
	return &BAT{Name: b.Name, h: b.h.view(from, to), t: b.t.view(from, to)}
}

// Copy returns a deep materialized copy of b (one payload copy per
// column, no index indirection).
func (b *BAT) Copy() *BAT {
	return &BAT{Name: b.Name, h: b.h.clone(), t: b.t.clone()}
}

// String renders a compact description, not the payload.
func (b *BAT) String() string {
	return fmt.Sprintf("BAT(%s)[%s|%s]#%d", b.Name, b.h.kind, b.t.kind, b.Len())
}

// Dump renders up to max rows for debugging and examples.
func (b *BAT) Dump(max int) string {
	n := b.Len()
	if max > 0 && n > max {
		n = max
	}
	s := b.String() + " {"
	for i := 0; i < n; i++ {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%v->%v", b.h.Value(i), b.t.Value(i))
	}
	if n < b.Len() {
		s += ", ..."
	}
	return s + "}"
}

// sortIdxByTail returns row positions ordered by tail value. The kind
// switch runs once per call; each kind gets its own monomorphic
// comparator closure instead of re-dispatching per comparison.
func (b *BAT) sortIdxByTail(desc bool) []int {
	idx := make([]int, b.Len())
	for i := range idx {
		idx[i] = i
	}
	t := b.t
	var less func(i, j int) bool
	switch {
	case t.dense:
		less = func(i, j int) bool { return idx[i] < idx[j] }
	case t.kind == KOid:
		v := t.oids
		less = func(i, j int) bool { return v[idx[i]] < v[idx[j]] }
	case t.kind == KInt:
		v := t.ints
		less = func(i, j int) bool { return v[idx[i]] < v[idx[j]] }
	case t.kind == KFloat:
		v := t.floats
		less = func(i, j int) bool { return v[idx[i]] < v[idx[j]] }
	case t.kind == KStr:
		v := t.strs
		less = func(i, j int) bool { return v[idx[i]] < v[idx[j]] }
	case t.kind == KBool:
		v := t.bools
		less = func(i, j int) bool { return !v[idx[i]] && v[idx[j]] }
	default:
		less = func(i, j int) bool { return false }
	}
	if desc {
		sort.SliceStable(idx, func(i, j int) bool { return less(j, i) })
	} else {
		sort.SliceStable(idx, less)
	}
	return idx
}

// SortT returns b ordered by tail value (stable). Already-sorted tails
// (including dense ones) return an O(1) view.
func (b *BAT) SortT(desc bool) *BAT {
	if !desc && b.t.Sorted() {
		return b.Slice(0, b.Len())
	}
	idx := b.sortIdxByTail(desc)
	nb := &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
	if !desc {
		nb.t.sorted = true
	}
	return nb
}
