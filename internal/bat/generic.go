package bat

import "fmt"

// This file is the boxed, reflection-ish fallback path of the kernel.
// The typed kernels in ops.go and aggr.go handle every same-kind and
// int-column/float-literal combination; what remains here is only
// reached for predicates whose literal cannot be normalized to the
// column's kind (e.g. exotic Bound value types fed through the MAL
// shell). It is also kept as the reference implementation the
// equivalence tests and the BenchmarkBAT* baseline sub-benchmarks run
// against.

func cmpValues(kind Kind, a, b any) int {
	switch kind {
	case KOid:
		x, y := a.(Oid), b.(Oid)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case KInt:
		// Mixed int/float comparisons (e.g. an int column against a
		// float literal) are compared as floats.
		if isFloat(a) || isFloat(b) {
			x, y := toFloat64(a), toFloat64(b)
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
		x, y := toInt64(a), toInt64(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case KFloat:
		x, y := toFloat64(a), toFloat64(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case KStr:
		x, y := a.(string), b.(string)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case KBool:
		x, y := a.(bool), b.(bool)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
	}
	return 0
}

func isFloat(v any) bool {
	_, ok := v.(float64)
	return ok
}

func toInt64(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case Oid:
		return int64(x)
	}
	panic(fmt.Sprintf("bat: cannot convert %T to int64", v))
}

func toFloat64(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	case int:
		return float64(x)
	}
	panic(fmt.Sprintf("bat: cannot convert %T to float64", v))
}

// selectGeneric is the boxed row-at-a-time Select: one Value() call and
// up to two cmpValues dispatches per row.
func (b *BAT) selectGeneric(lo, hi *Bound) *BAT {
	var idx []int
	n := b.Len()
	for i := 0; i < n; i++ {
		v := b.t.Value(i)
		if lo != nil {
			c := cmpValues(b.t.kind, v, lo.Value)
			if c < 0 || (c == 0 && !lo.Inclusive) {
				continue
			}
		}
		if hi != nil {
			c := cmpValues(b.t.kind, v, hi.Value)
			if c > 0 || (c == 0 && !hi.Inclusive) {
				continue
			}
		}
		idx = append(idx, i)
	}
	nb := &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
	nb.h.sorted = b.h.Sorted()
	nb.t.sorted = b.t.Sorted()
	return nb
}

// selectNeGeneric is the boxed inequality filter.
func (b *BAT) selectNeGeneric(v any) *BAT {
	var idx []int
	for i := 0; i < b.Len(); i++ {
		if cmpValues(b.t.kind, b.t.Value(i), v) != 0 {
			idx = append(idx, i)
		}
	}
	nb := &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
	nb.h.sorted = b.h.Sorted()
	return nb
}

// buildHash indexes column c the boxed way: value -> row positions.
func buildHash(c *Column) map[any][]int {
	m := make(map[any][]int, c.Len())
	for i := 0; i < c.Len(); i++ {
		k := c.Value(i)
		m[k] = append(m[k], i)
	}
	return m
}

// joinGeneric is the boxed hash join over map[any][]int.
func (b *BAT) joinGeneric(r *BAT) *BAT {
	hash := buildHash(r.h)
	var li, ri []int
	for i := 0; i < b.Len(); i++ {
		for _, j := range hash[b.t.Value(i)] {
			li = append(li, i)
			ri = append(ri, j)
		}
	}
	return &BAT{Name: b.Name, h: b.h.take(li), t: r.t.take(ri)}
}

// eqRowsGeneric compares two aligned tails with boxed dispatch; reached
// only when the tails have different kinds (e.g. int vs float).
func (b *BAT) eqRowsGeneric(r *BAT) *BAT {
	var idx []int
	for i := 0; i < b.Len(); i++ {
		if cmpValues(b.t.kind, b.t.Value(i), r.t.Value(i)) == 0 {
			idx = append(idx, i)
		}
	}
	nb := &BAT{Name: b.Name, h: b.h.take(idx), t: b.t.take(idx)}
	nb.h.sorted = b.h.Sorted()
	return nb
}
