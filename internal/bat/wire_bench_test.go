package bat

import (
	"fmt"
	"testing"
)

// The codec-vs-gob benchmark grid: every wire hop pays one Marshal and
// one Unmarshal, so these two numbers bound the ring's per-hop
// serialization tax. Run via scripts/bench.sh, which records the
// results in BENCH_wire.json.

func benchBAT(rows int) *BAT {
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(i * 7)
	}
	return MakeInts("bench", vals)
}

func benchStrBAT(rows int) *BAT {
	vals := make([]string, rows)
	for i := range vals {
		vals[i] = fmt.Sprintf("value-%d", i)
	}
	return MakeStrs("benchstr", vals)
}

var benchSizes = []int{1_000, 100_000, 1_000_000}

func BenchmarkMarshal(b *testing.B) {
	for _, rows := range benchSizes {
		bat := benchBAT(rows)
		b.Run(fmt.Sprintf("codec/rows=%d", rows), func(b *testing.B) {
			buf := make([]byte, 0, MarshalSize(bat))
			b.SetBytes(int64(MarshalSize(bat)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = AppendMarshal(buf[:0], bat)
			}
		})
		b.Run(fmt.Sprintf("gob/rows=%d", rows), func(b *testing.B) {
			b.SetBytes(int64(MarshalSize(bat)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Marshal(bat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	for _, rows := range benchSizes {
		bat := benchBAT(rows)
		codecBytes := AppendMarshal(nil, bat)
		gobBytes, err := Marshal(bat)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("codec/rows=%d", rows), func(b *testing.B) {
			b.SetBytes(int64(len(codecBytes)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := UnmarshalView(codecBytes); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("gob/rows=%d", rows), func(b *testing.B) {
			b.SetBytes(int64(len(gobBytes)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Unmarshal(gobBytes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMarshalStrings isolates the string-heap path (the only part
// of decode that copies).
func BenchmarkMarshalStrings(b *testing.B) {
	bat := benchStrBAT(100_000)
	b.Run("codec", func(b *testing.B) {
		buf := make([]byte, 0, MarshalSize(bat))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendMarshal(buf[:0], bat)
		}
	})
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Marshal(bat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkUnmarshalStrings(b *testing.B) {
	bat := benchStrBAT(100_000)
	codecBytes := AppendMarshal(nil, bat)
	gobBytes, _ := Marshal(bat)
	b.Run("codec", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := UnmarshalView(codecBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Unmarshal(gobBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
}
