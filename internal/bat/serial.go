package bat

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file is the legacy gob serialization. Production wire paths
// (ring hops, result frames) use the native codec in wire.go
// (AppendMarshal/UnmarshalView); gob Marshal/Unmarshal stay under their
// old names as the baseline the equivalence tests and the codec-vs-gob
// benchmarks compare against.

// Snapshot is the gob-friendly wire form of a BAT, used when fragments
// travel the live storage ring.
type Snapshot struct {
	Name string
	H, T ColumnSnapshot
}

// ColumnSnapshot is the wire form of one column.
type ColumnSnapshot struct {
	Kind   Kind
	Dense  bool
	Base   Oid
	N      int
	Oids   []Oid
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Sorted bool
}

func snapCol(c *Column) ColumnSnapshot {
	return ColumnSnapshot{
		Kind: c.kind, Dense: c.dense, Base: c.base, N: c.n,
		Oids: c.oids, Ints: c.ints, Floats: c.floats, Strs: c.strs, Bools: c.bools,
		Sorted: c.sorted,
	}
}

func (s ColumnSnapshot) column() *Column {
	return &Column{
		kind: s.Kind, dense: s.Dense, base: s.Base, n: s.N,
		oids: s.Oids, ints: s.Ints, floats: s.Floats, strs: s.Strs, bools: s.Bools,
		sorted: s.Sorted,
	}
}

// Snapshot captures the BAT for serialization.
func (b *BAT) Snapshot() Snapshot {
	return Snapshot{Name: b.Name, H: snapCol(b.h), T: snapCol(b.t)}
}

// FromSnapshot reconstructs a BAT.
func FromSnapshot(s Snapshot) *BAT {
	return &BAT{Name: s.Name, h: s.H.column(), t: s.T.column()}
}

// Marshal gob-encodes the BAT.
func Marshal(b *BAT) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b.Snapshot()); err != nil {
		return nil, fmt.Errorf("bat: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a BAT produced by Marshal.
func Unmarshal(data []byte) (*BAT, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("bat: unmarshal: %w", err)
	}
	return FromSnapshot(s), nil
}
