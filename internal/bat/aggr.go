package bat

import "fmt"

// Sum reduces the tail column to a scalar sum. Int columns sum to int64,
// float columns to float64.
func (b *BAT) Sum() any {
	switch b.t.kind {
	case KInt:
		var s int64
		for _, v := range b.t.ints {
			s += v
		}
		return s
	case KFloat:
		var s float64
		for _, v := range b.t.floats {
			s += v
		}
		return s
	case KOid:
		var s int64
		for i := 0; i < b.t.Len(); i++ {
			s += int64(b.t.Oid(i))
		}
		return s
	}
	panic(fmt.Sprintf("bat: Sum over %s tail", b.t.kind))
}

// Count reports the number of rows (aggr.count).
func (b *BAT) Count() int64 { return int64(b.Len()) }

// Min returns the minimum tail value, or nil when empty.
func (b *BAT) Min() any { return b.extreme(-1) }

// Max returns the maximum tail value, or nil when empty.
func (b *BAT) Max() any { return b.extreme(1) }

func (b *BAT) extreme(sign int) any {
	if b.Len() == 0 {
		return nil
	}
	best := b.t.Value(0)
	for i := 1; i < b.Len(); i++ {
		v := b.t.Value(i)
		if cmpValues(b.t.kind, v, best) == sign {
			best = v
		}
	}
	return best
}

// Avg returns the arithmetic mean of a numeric tail as float64.
func (b *BAT) Avg() float64 {
	if b.Len() == 0 {
		return 0
	}
	switch v := b.Sum().(type) {
	case int64:
		return float64(v) / float64(b.Len())
	case float64:
		return v / float64(b.Len())
	}
	panic("bat: Avg over non-numeric tail")
}

// GroupIDs assigns a dense group id to each row based on its tail value
// (group.new): the result is [head | group oid], plus a representative
// BAT [group oid | tail value] in first-appearance order.
func (b *BAT) GroupIDs() (groups, reps *BAT) {
	ids := make([]Oid, b.Len())
	idOf := make(map[any]Oid, b.Len())
	var repIdx []int
	for i := 0; i < b.Len(); i++ {
		k := b.t.Value(i)
		id, ok := idOf[k]
		if !ok {
			id = Oid(len(repIdx))
			idOf[k] = id
			repIdx = append(repIdx, i)
		}
		ids[i] = id
	}
	groups = &BAT{Name: b.Name, h: b.h.take(identity(b.Len())), t: OidColumn(ids)}
	reps = &BAT{Name: b.Name, h: DenseColumn(0, len(repIdx)), t: b.t.take(repIdx)}
	// groups keeps b's head; take(identity) materializes it.
	groups.h = b.h.take(identity(b.Len()))
	return groups, reps
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// GroupedSum computes per-group sums: groups maps row position to group
// id (tail), vals holds the values (tail, aligned by row position).
// The result is [group oid | sum].
func GroupedSum(groups, vals *BAT) *BAT {
	if groups.Len() != vals.Len() {
		panic("bat: GroupedSum length mismatch")
	}
	ngroups := maxGroup(groups) + 1
	switch vals.t.kind {
	case KInt:
		sums := make([]int64, ngroups)
		for i := 0; i < groups.Len(); i++ {
			sums[groups.t.Oid(i)] += vals.t.ints[i]
		}
		return New(vals.Name, DenseColumn(0, ngroups), IntColumn(sums))
	case KFloat:
		sums := make([]float64, ngroups)
		for i := 0; i < groups.Len(); i++ {
			sums[groups.t.Oid(i)] += vals.t.floats[i]
		}
		return New(vals.Name, DenseColumn(0, ngroups), FloatColumn(sums))
	}
	panic(fmt.Sprintf("bat: GroupedSum over %s", vals.t.kind))
}

// GroupedCount counts rows per group: [group oid | count].
func GroupedCount(groups *BAT) *BAT {
	ngroups := maxGroup(groups) + 1
	counts := make([]int64, ngroups)
	for i := 0; i < groups.Len(); i++ {
		counts[groups.t.Oid(i)]++
	}
	return New(groups.Name, DenseColumn(0, ngroups), IntColumn(counts))
}

// GroupedAvg computes per-group means: [group oid | avg].
func GroupedAvg(groups, vals *BAT) *BAT {
	sums := GroupedSum(groups, vals)
	counts := GroupedCount(groups)
	n := sums.Len()
	avgs := make([]float64, n)
	for i := 0; i < n; i++ {
		c := float64(counts.t.ints[i])
		if c == 0 {
			continue
		}
		switch sums.t.kind {
		case KInt:
			avgs[i] = float64(sums.t.ints[i]) / c
		case KFloat:
			avgs[i] = sums.t.floats[i] / c
		}
	}
	return New(vals.Name, DenseColumn(0, n), FloatColumn(avgs))
}

// GroupedMin computes per-group minima: [group oid | min].
func GroupedMin(groups, vals *BAT) *BAT { return groupedExtreme(groups, vals, -1) }

// GroupedMax computes per-group maxima: [group oid | max].
func GroupedMax(groups, vals *BAT) *BAT { return groupedExtreme(groups, vals, 1) }

func groupedExtreme(groups, vals *BAT, sign int) *BAT {
	if groups.Len() != vals.Len() {
		panic("bat: grouped extreme length mismatch")
	}
	ngroups := maxGroup(groups) + 1
	out := NewColumn(vals.t.kind)
	set := make([]bool, ngroups)
	tmp := make([]any, ngroups)
	for i := 0; i < groups.Len(); i++ {
		g := groups.t.Oid(i)
		v := vals.t.Value(i)
		if !set[g] || cmpValues(vals.t.kind, v, tmp[g]) == sign {
			set[g] = true
			tmp[g] = v
		}
	}
	for g := 0; g < ngroups; g++ {
		if !set[g] {
			panic("bat: empty group in grouped extreme")
		}
		out.Append(tmp[g])
	}
	return New(vals.Name, DenseColumn(0, ngroups), out)
}

// GroupIDsPos is GroupIDs but returns representatives as row positions:
// reps is [group oid | head oid of first row in group], so representative
// key values can be fetched by joining reps against any aligned column.
func (b *BAT) GroupIDsPos() (groups, reps *BAT) {
	ids := make([]Oid, b.Len())
	idOf := make(map[any]Oid, b.Len())
	var repIdx []int
	for i := 0; i < b.Len(); i++ {
		k := b.t.Value(i)
		id, ok := idOf[k]
		if !ok {
			id = Oid(len(repIdx))
			idOf[k] = id
			repIdx = append(repIdx, i)
		}
		ids[i] = id
	}
	groups = &BAT{Name: b.Name, h: b.h.take(identity(b.Len())), t: OidColumn(ids)}
	repOids := make([]Oid, len(repIdx))
	for i, r := range repIdx {
		repOids[i] = b.h.Oid(r)
	}
	reps = New(b.Name, DenseColumn(0, len(repIdx)), OidColumn(repOids))
	return groups, reps
}

// GroupDerive refines an existing grouping by an additional key column
// (MAL's group.derive): rows belong to the same refined group iff they
// share both the old group id and the key value. Returns the refined
// [head | group oid] plus a representative row BAT [group oid | row pos]
// usable to fetch representative key values.
func GroupDerive(groups, keys *BAT) (refined, reps *BAT) {
	if groups.Len() != keys.Len() {
		panic("bat: GroupDerive length mismatch")
	}
	type pair struct {
		g Oid
		v any
	}
	ids := make([]Oid, groups.Len())
	idOf := make(map[pair]Oid, groups.Len())
	var repIdx []int
	for i := 0; i < groups.Len(); i++ {
		k := pair{groups.t.Oid(i), keys.t.Value(i)}
		id, ok := idOf[k]
		if !ok {
			id = Oid(len(repIdx))
			idOf[k] = id
			repIdx = append(repIdx, i)
		}
		ids[i] = id
	}
	refined = &BAT{Name: groups.Name, h: groups.h.take(identity(groups.Len())), t: OidColumn(ids)}
	repOids := make([]Oid, len(repIdx))
	for i, r := range repIdx {
		repOids[i] = groups.h.Oid(r)
	}
	reps = New(groups.Name, DenseColumn(0, len(repIdx)), OidColumn(repOids))
	return refined, reps
}

func maxGroup(groups *BAT) int {
	if groups.t.kind != KOid {
		panic("bat: group column must be oid")
	}
	max := -1
	for i := 0; i < groups.Len(); i++ {
		if g := int(groups.t.Oid(i)); g > max {
			max = g
		}
	}
	return max
}

// MulIF multiplies an int-tail BAT by a float-tail BAT positionally,
// producing a float tail. Used by arithmetic in query plans
// (e.g. extendedprice * (1 - discount)).
func MulIF(a, b *BAT) *BAT {
	if a.Len() != b.Len() {
		panic("bat: MulIF length mismatch")
	}
	out := make([]float64, a.Len())
	for i := range out {
		out[i] = tailAsFloat(a, i) * tailAsFloat(b, i)
	}
	return New(a.Name, DenseColumn(0, len(out)), FloatColumn(out))
}

// AddF adds two numeric-tail BATs positionally into a float tail.
func AddF(a, b *BAT) *BAT {
	if a.Len() != b.Len() {
		panic("bat: AddF length mismatch")
	}
	out := make([]float64, a.Len())
	for i := range out {
		out[i] = tailAsFloat(a, i) + tailAsFloat(b, i)
	}
	return New(a.Name, DenseColumn(0, len(out)), FloatColumn(out))
}

// ConstMinusF computes c - tail for each row.
func ConstMinusF(c float64, b *BAT) *BAT {
	out := make([]float64, b.Len())
	for i := range out {
		out[i] = c - tailAsFloat(b, i)
	}
	return New(b.Name, DenseColumn(0, len(out)), FloatColumn(out))
}

// ConstPlusF computes c + tail for each row.
func ConstPlusF(c float64, b *BAT) *BAT {
	out := make([]float64, b.Len())
	for i := range out {
		out[i] = c + tailAsFloat(b, i)
	}
	return New(b.Name, DenseColumn(0, len(out)), FloatColumn(out))
}

func tailAsFloat(b *BAT, i int) float64 {
	switch b.t.kind {
	case KInt:
		return float64(b.t.ints[i])
	case KFloat:
		return b.t.floats[i]
	case KOid:
		return float64(b.t.Oid(i))
	}
	panic(fmt.Sprintf("bat: non-numeric tail %s", b.t.kind))
}
