package bat

import (
	"cmp"
	"fmt"
)

// Aggregation and grouping kernels. Like ops.go, every operator here
// dispatches on the column kind once per call and then runs a
// monomorphic loop; sorted tails group/dedup by adjacent comparison
// with no hash table at all.

// Sum reduces the tail column to a scalar sum. Int columns sum to int64,
// float columns to float64.
func (b *BAT) Sum() any {
	switch b.t.kind {
	case KInt:
		var s int64
		for _, v := range b.t.ints {
			s += v
		}
		return s
	case KFloat:
		var s float64
		for _, v := range b.t.floats {
			s += v
		}
		return s
	case KOid:
		if b.t.dense {
			// Arithmetic series: n*base + 0+1+...+(n-1).
			n := int64(b.t.n)
			return n*int64(b.t.base) + n*(n-1)/2
		}
		var s int64
		for _, o := range b.t.oids {
			s += int64(o)
		}
		return s
	}
	panic(fmt.Sprintf("bat: Sum over %s tail", b.t.kind))
}

// Count reports the number of rows (aggr.count).
func (b *BAT) Count() int64 { return int64(b.Len()) }

// Min returns the minimum tail value, or nil when empty.
func (b *BAT) Min() any { return b.extreme(-1) }

// Max returns the maximum tail value, or nil when empty.
func (b *BAT) Max() any { return b.extreme(1) }

// extremeOf scans a typed payload for its minimum or maximum.
func extremeOf[T cmp.Ordered](vals []T, wantMax bool) T {
	best := vals[0]
	if wantMax {
		for _, v := range vals[1:] {
			if v > best {
				best = v
			}
		}
	} else {
		for _, v := range vals[1:] {
			if v < best {
				best = v
			}
		}
	}
	return best
}

func (b *BAT) extreme(sign int) any {
	n := b.Len()
	if n == 0 {
		return nil
	}
	t := b.t
	wantMax := sign > 0
	if t.Sorted() && t.kind != KBool {
		// Sorted tails answer extremes in O(1).
		if wantMax {
			return t.Value(n - 1)
		}
		return t.Value(0)
	}
	switch t.kind {
	case KOid:
		return extremeOf(t.oids, wantMax)
	case KInt:
		return extremeOf(t.ints, wantMax)
	case KFloat:
		return extremeOf(t.floats, wantMax)
	case KStr:
		return extremeOf(t.strs, wantMax)
	case KBool:
		for _, v := range t.bools {
			if v == wantMax {
				return wantMax
			}
		}
		return !wantMax
	}
	panic("bat: bad kind")
}

// Avg returns the arithmetic mean of a numeric tail as float64.
func (b *BAT) Avg() float64 {
	if b.Len() == 0 {
		return 0
	}
	switch v := b.Sum().(type) {
	case int64:
		return float64(v) / float64(b.Len())
	case float64:
		return v / float64(b.Len())
	}
	panic("bat: Avg over non-numeric tail")
}

// groupKeys assigns dense group ids by first appearance using a typed
// hash table: one map instantiation per kind.
func groupKeys[T comparable](vals []T) (ids []Oid, repIdx []int32) {
	ids = make([]Oid, len(vals))
	idOf := make(map[T]Oid, len(vals))
	for i, v := range vals {
		id, seen := idOf[v]
		if !seen {
			id = Oid(len(repIdx))
			idOf[v] = id
			repIdx = append(repIdx, int32(i))
		}
		ids[i] = id
	}
	return ids, repIdx
}

// groupSortedKeys is groupKeys over a sorted payload: group boundaries
// are adjacent-value changes, no hash table needed.
func groupSortedKeys[T comparable](vals []T) (ids []Oid, repIdx []int32) {
	ids = make([]Oid, len(vals))
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			repIdx = append(repIdx, int32(i))
		}
		ids[i] = Oid(len(repIdx) - 1)
	}
	return ids, repIdx
}

// groupTail computes group ids and representative row positions for b's
// tail, picking the sorted or hashed kernel per kind.
func (b *BAT) groupTail() (ids []Oid, repIdx []int32) {
	t := b.t
	if t.dense {
		// Every value is distinct: each row is its own group.
		ids = make([]Oid, t.n)
		repIdx = make([]int32, t.n)
		for i := range ids {
			ids[i] = Oid(i)
			repIdx[i] = int32(i)
		}
		return ids, repIdx
	}
	sorted := t.Sorted()
	switch t.kind {
	case KOid:
		if sorted {
			return groupSortedKeys(t.oids)
		}
		return groupKeys(t.oids)
	case KInt:
		if sorted {
			return groupSortedKeys(t.ints)
		}
		return groupKeys(t.ints)
	case KFloat:
		if sorted {
			return groupSortedKeys(t.floats)
		}
		return groupKeys(t.floats)
	case KStr:
		if sorted {
			return groupSortedKeys(t.strs)
		}
		return groupKeys(t.strs)
	case KBool:
		return groupKeys(t.bools)
	}
	panic("bat: bad kind")
}

// GroupIDs assigns a dense group id to each row based on its tail value
// (group.new): the result is [head | group oid], plus a representative
// BAT [group oid | tail value] in first-appearance order. The result
// shares b's head zero-copy.
func (b *BAT) GroupIDs() (groups, reps *BAT) {
	ids, repIdx := b.groupTail()
	gt := OidColumn(ids)
	gt.sorted = b.t.Sorted() // sorted keys yield non-decreasing ids
	groups = &BAT{Name: b.Name, h: b.h, t: gt}
	reps = &BAT{Name: b.Name, h: DenseColumn(0, len(repIdx)), t: b.t.take32(repIdx)}
	reps.t.sorted = b.t.Sorted()
	return groups, reps
}

// GroupIDsPos is GroupIDs but returns representatives as row positions:
// reps is [group oid | head oid of first row in group], so representative
// key values can be fetched by joining reps against any aligned column.
func (b *BAT) GroupIDsPos() (groups, reps *BAT) {
	ids, repIdx := b.groupTail()
	gt := OidColumn(ids)
	gt.sorted = b.t.Sorted()
	groups = &BAT{Name: b.Name, h: b.h, t: gt}
	reps = New(b.Name, DenseColumn(0, len(repIdx)), b.h.take32(repIdx))
	return groups, reps
}

// gpair is the typed composite key of GroupDerive.
type gpair[T comparable] struct {
	g Oid
	v T
}

func deriveKeys[T comparable](gids []Oid, vals []T) (ids []Oid, repIdx []int32) {
	ids = make([]Oid, len(vals))
	idOf := make(map[gpair[T]]Oid, len(vals))
	for i, v := range vals {
		k := gpair[T]{gids[i], v}
		id, seen := idOf[k]
		if !seen {
			id = Oid(len(repIdx))
			idOf[k] = id
			repIdx = append(repIdx, int32(i))
		}
		ids[i] = id
	}
	return ids, repIdx
}

// GroupDerive refines an existing grouping by an additional key column
// (MAL's group.derive): rows belong to the same refined group iff they
// share both the old group id and the key value. Returns the refined
// [head | group oid] plus a representative row BAT [group oid | row pos]
// usable to fetch representative key values.
func GroupDerive(groups, keys *BAT) (refined, reps *BAT) {
	if groups.Len() != keys.Len() {
		panic("bat: GroupDerive length mismatch")
	}
	gids := groups.t.oidValues()
	var ids []Oid
	var repIdx []int32
	switch keys.t.kind {
	case KOid:
		ids, repIdx = deriveKeys(gids, keys.t.oidValues())
	case KInt:
		ids, repIdx = deriveKeys(gids, keys.t.ints)
	case KFloat:
		ids, repIdx = deriveKeys(gids, keys.t.floats)
	case KStr:
		ids, repIdx = deriveKeys(gids, keys.t.strs)
	case KBool:
		ids, repIdx = deriveKeys(gids, keys.t.bools)
	default:
		panic("bat: bad kind")
	}
	refined = &BAT{Name: groups.Name, h: groups.h, t: OidColumn(ids)}
	reps = New(groups.Name, DenseColumn(0, len(repIdx)), groups.h.take32(repIdx))
	return refined, reps
}

// GroupedSum computes per-group sums: groups maps row position to group
// id (tail), vals holds the values (tail, aligned by row position).
// The result is [group oid | sum].
func GroupedSum(groups, vals *BAT) *BAT {
	if groups.Len() != vals.Len() {
		panic("bat: GroupedSum length mismatch")
	}
	ngroups := maxGroup(groups) + 1
	gids := groups.t.oidValues()
	switch vals.t.kind {
	case KInt:
		sums := make([]int64, ngroups)
		vv := vals.t.ints
		for i, g := range gids {
			sums[g] += vv[i]
		}
		return New(vals.Name, DenseColumn(0, ngroups), IntColumn(sums))
	case KFloat:
		sums := make([]float64, ngroups)
		vv := vals.t.floats
		for i, g := range gids {
			sums[g] += vv[i]
		}
		return New(vals.Name, DenseColumn(0, ngroups), FloatColumn(sums))
	}
	panic(fmt.Sprintf("bat: GroupedSum over %s", vals.t.kind))
}

// GroupedCount counts rows per group: [group oid | count].
func GroupedCount(groups *BAT) *BAT {
	ngroups := maxGroup(groups) + 1
	counts := make([]int64, ngroups)
	for _, g := range groups.t.oidValues() {
		counts[g]++
	}
	return New(groups.Name, DenseColumn(0, ngroups), IntColumn(counts))
}

// GroupedAvg computes per-group means: [group oid | avg].
func GroupedAvg(groups, vals *BAT) *BAT {
	sums := GroupedSum(groups, vals)
	counts := GroupedCount(groups)
	n := sums.Len()
	avgs := make([]float64, n)
	for i := 0; i < n; i++ {
		c := float64(counts.t.ints[i])
		if c == 0 {
			continue
		}
		switch sums.t.kind {
		case KInt:
			avgs[i] = float64(sums.t.ints[i]) / c
		case KFloat:
			avgs[i] = sums.t.floats[i] / c
		}
	}
	return New(vals.Name, DenseColumn(0, n), FloatColumn(avgs))
}

// GroupedMin computes per-group minima: [group oid | min].
func GroupedMin(groups, vals *BAT) *BAT { return groupedExtreme(groups, vals, -1) }

// GroupedMax computes per-group maxima: [group oid | max].
func GroupedMax(groups, vals *BAT) *BAT { return groupedExtreme(groups, vals, 1) }

// extremeByGroup folds a typed payload to per-group minima or maxima.
func extremeByGroup[T cmp.Ordered](gids []Oid, vals []T, ngroups int, wantMax bool) []T {
	out := make([]T, ngroups)
	set := make([]bool, ngroups)
	for i, g := range gids {
		v := vals[i]
		switch {
		case !set[g]:
			set[g] = true
			out[g] = v
		case wantMax && v > out[g]:
			out[g] = v
		case !wantMax && v < out[g]:
			out[g] = v
		}
	}
	for g := range set {
		if !set[g] {
			panic("bat: empty group in grouped extreme")
		}
	}
	return out
}

func groupedExtreme(groups, vals *BAT, sign int) *BAT {
	if groups.Len() != vals.Len() {
		panic("bat: grouped extreme length mismatch")
	}
	ngroups := maxGroup(groups) + 1
	gids := groups.t.oidValues()
	wantMax := sign > 0
	var out *Column
	switch vals.t.kind {
	case KOid:
		out = OidColumn(extremeByGroup(gids, vals.t.oidValues(), ngroups, wantMax))
	case KInt:
		out = IntColumn(extremeByGroup(gids, vals.t.ints, ngroups, wantMax))
	case KFloat:
		out = FloatColumn(extremeByGroup(gids, vals.t.floats, ngroups, wantMax))
	case KStr:
		out = StrColumn(extremeByGroup(gids, vals.t.strs, ngroups, wantMax))
	case KBool:
		// bool is not cmp.Ordered; widen to bytes (false < true).
		bytes := make([]uint8, len(vals.t.bools))
		for i, v := range vals.t.bools {
			if v {
				bytes[i] = 1
			}
		}
		folded := extremeByGroup(gids, bytes, ngroups, wantMax)
		bools := make([]bool, ngroups)
		for i, v := range folded {
			bools[i] = v == 1
		}
		out = BoolColumn(bools)
	default:
		panic("bat: bad kind")
	}
	return New(vals.Name, DenseColumn(0, ngroups), out)
}

func maxGroup(groups *BAT) int {
	if groups.t.kind != KOid {
		panic("bat: group column must be oid")
	}
	if groups.t.dense {
		return groups.t.n - 1
	}
	max := -1
	for _, g := range groups.t.oids {
		if int(g) > max {
			max = int(g)
		}
	}
	return max
}

// tailFloats returns the tail as a []float64: zero-copy for float
// columns, one typed widening pass for int and OID tails.
func tailFloats(b *BAT) []float64 {
	t := b.t
	switch t.kind {
	case KFloat:
		return t.floats
	case KInt:
		out := make([]float64, len(t.ints))
		for i, v := range t.ints {
			out[i] = float64(v)
		}
		return out
	case KOid:
		if t.dense {
			out := make([]float64, t.n)
			for i := range out {
				out[i] = float64(t.base + Oid(i))
			}
			return out
		}
		out := make([]float64, len(t.oids))
		for i, o := range t.oids {
			out[i] = float64(o)
		}
		return out
	}
	panic(fmt.Sprintf("bat: non-numeric tail %s", t.kind))
}

// MulIF multiplies an int-tail BAT by a float-tail BAT positionally,
// producing a float tail. Used by arithmetic in query plans
// (e.g. extendedprice * (1 - discount)).
func MulIF(a, b *BAT) *BAT {
	if a.Len() != b.Len() {
		panic("bat: MulIF length mismatch")
	}
	af, bf := tailFloats(a), tailFloats(b)
	out := make([]float64, len(af))
	for i := range out {
		out[i] = af[i] * bf[i]
	}
	return New(a.Name, DenseColumn(0, len(out)), FloatColumn(out))
}

// AddF adds two numeric-tail BATs positionally into a float tail.
func AddF(a, b *BAT) *BAT {
	if a.Len() != b.Len() {
		panic("bat: AddF length mismatch")
	}
	af, bf := tailFloats(a), tailFloats(b)
	out := make([]float64, len(af))
	for i := range out {
		out[i] = af[i] + bf[i]
	}
	return New(a.Name, DenseColumn(0, len(out)), FloatColumn(out))
}

// ConstMinusF computes c - tail for each row.
func ConstMinusF(c float64, b *BAT) *BAT {
	bf := tailFloats(b)
	out := make([]float64, len(bf))
	for i := range out {
		out[i] = c - bf[i]
	}
	return New(b.Name, DenseColumn(0, len(out)), FloatColumn(out))
}

// ConstPlusF computes c + tail for each row.
func ConstPlusF(c float64, b *BAT) *BAT {
	bf := tailFloats(b)
	out := make([]float64, len(bf))
	for i := range out {
		out[i] = c + bf[i]
	}
	return New(b.Name, DenseColumn(0, len(out)), FloatColumn(out))
}
