package bat

import (
	"bytes"
	"strings"
	"testing"
)

// wireCases covers every column kind and property combination the codec
// must carry: dense, sorted, zero-copy views, empty, and nil vectors.
func wireCases() []*BAT {
	longStrs := make([]string, 100)
	for i := range longStrs {
		longStrs[i] = strings.Repeat("x", i%17)
	}
	sortedInts := MakeInts("sorted", []int64{5, 3, 1, 4}).SortT(false)
	bools := make([]bool, 13)
	for i := range bools {
		bools[i] = i%3 == 0
	}
	return []*BAT{
		MakeInts("ints", []int64{1, -2, 3, 1 << 62}),
		MakeFloats("floats", []float64{1.5, -2.25, 0, -0.0}),
		MakeStrs("strs", []string{"a", "", "hello world", "\x00bin\xff"}),
		New("longstrs", DenseColumn(7, len(longStrs)), StrColumn(longStrs)),
		MakeOids("oids", []Oid{0, 5, NilOid}),
		New("bools", DenseColumn(10, len(bools)), BoolColumn(bools)),
		New("bools8", DenseColumn(0, 8), BoolColumn(make([]bool, 8))),
		New("densedense", DenseColumn(3, 5), DenseColumn(100, 5)),
		New("oid-oid", OidColumn([]Oid{9, 2}), OidColumn([]Oid{1, NilOid})),
		sortedInts,
		sortedInts.Slice(1, 3), // zero-copy view of a sorted BAT
		MakeInts("empty", nil),
		MakeStrs("emptystrs", nil),
		New("emptybools", DenseColumn(0, 0), BoolColumn(nil)),
		New("named", DenseColumn(0, 2), IntColumn([]int64{1, 2})),
	}
}

func colsEquivalent(t *testing.T, name string, want, got *Column) {
	t.Helper()
	if got.Kind() != want.Kind() || got.Len() != want.Len() {
		t.Fatalf("%s: kind/len mismatch: %v/%d vs %v/%d", name, got.Kind(), got.Len(), want.Kind(), want.Len())
	}
	if got.Dense() != want.Dense() || got.Base() != want.Base() {
		t.Fatalf("%s: density metadata mismatch", name)
	}
	if got.Sorted() != want.Sorted() {
		t.Fatalf("%s: sorted property mismatch: got %v want %v", name, got.Sorted(), want.Sorted())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Value(i) != want.Value(i) {
			t.Fatalf("%s: row %d: got %v want %v", name, i, got.Value(i), want.Value(i))
		}
	}
}

// TestWireRoundtrip checks AppendMarshal/UnmarshalView round-trips
// every kind/property combination.
func TestWireRoundtrip(t *testing.T) {
	for _, b := range wireCases() {
		data := AppendMarshal(nil, b)
		got, err := UnmarshalView(data)
		if err != nil {
			t.Fatalf("%s: UnmarshalView: %v", b.Name, err)
		}
		if got.Name != b.Name {
			t.Fatalf("name: got %q want %q", got.Name, b.Name)
		}
		colsEquivalent(t, b.Name+".head", b.Head(), got.Head())
		colsEquivalent(t, b.Name+".tail", b.Tail(), got.Tail())
	}
}

// TestWireGobEquivalence decodes the codec's output and the gob
// baseline's output of the same BAT and checks they describe identical
// data — the proof that swapping the wire format is behaviour-neutral.
func TestWireGobEquivalence(t *testing.T) {
	for _, b := range wireCases() {
		gobBytes, err := Marshal(b)
		if err != nil {
			t.Fatalf("%s: gob Marshal: %v", b.Name, err)
		}
		viaGob, err := Unmarshal(gobBytes)
		if err != nil {
			t.Fatalf("%s: gob Unmarshal: %v", b.Name, err)
		}
		viaCodec, err := UnmarshalView(AppendMarshal(nil, b))
		if err != nil {
			t.Fatalf("%s: UnmarshalView: %v", b.Name, err)
		}
		if viaCodec.Name != viaGob.Name {
			t.Fatalf("%s: name diverges", b.Name)
		}
		colsEquivalent(t, b.Name+".head", viaGob.Head(), viaCodec.Head())
		colsEquivalent(t, b.Name+".tail", viaGob.Tail(), viaCodec.Tail())
	}
}

// TestMarshalSizeExact checks the size computation is byte-exact for
// every case — ring envelopes and RDMA regions are sized from it.
func TestMarshalSizeExact(t *testing.T) {
	for _, b := range wireCases() {
		if got, want := len(AppendMarshal(nil, b)), MarshalSize(b); got != want {
			t.Fatalf("%s: encoded %d bytes, MarshalSize says %d", b.Name, got, want)
		}
	}
}

// TestAppendMarshalOffset encodes at a non-zero, non-aligned offset in
// dst and checks the message still decodes: padding is relative to the
// message start, not the buffer start.
func TestAppendMarshalOffset(t *testing.T) {
	b := MakeInts("off", []int64{1, 2, 3})
	prefix := []byte{0xAA, 0xBB, 0xCC} // deliberately misaligns the message
	data := AppendMarshal(append([]byte(nil), prefix...), b)
	if !bytes.Equal(data[:3], prefix) {
		t.Fatal("prefix clobbered")
	}
	msg := data[3:]
	if len(msg) != MarshalSize(b) {
		t.Fatalf("message is %d bytes, want %d", len(msg), MarshalSize(b))
	}
	got, err := UnmarshalView(msg)
	if err != nil {
		t.Fatal(err)
	}
	colsEquivalent(t, "off.tail", b.Tail(), got.Tail())
}

// TestWireLargeDense round-trips a dense×dense BAT whose row count far
// exceeds the message's byte size: dense columns carry no payload, so
// the decoder's plausibility bound must not apply to them (regression —
// dense fragments over ~500 rows were once rejected as corrupt).
func TestWireLargeDense(t *testing.T) {
	b := New("huge", DenseColumn(5, 1_000_000), DenseColumn(1<<40, 1_000_000))
	data := AppendMarshal(nil, b)
	if len(data) > 100 {
		t.Fatalf("dense×dense encoded to %d bytes, expected a few dozen", len(data))
	}
	got, err := UnmarshalView(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != b.Len() || got.Head().Base() != 5 || got.Tail().Base() != 1<<40 {
		t.Fatalf("large dense BAT distorted: %v", got)
	}
}

// TestWireVersionRejected flips the version byte and expects rejection.
func TestWireVersionRejected(t *testing.T) {
	data := AppendMarshal(nil, MakeInts("v", []int64{1}))
	data[2] = WireVersion + 1
	if _, err := UnmarshalView(data); err == nil {
		t.Fatal("future version accepted")
	}
	data[2] = 0
	if _, err := UnmarshalView(data); err == nil {
		t.Fatal("version 0 accepted")
	}
}

// TestWireCorruptInputs exercises systematic corruption: every
// truncation length of a valid message, bad magic, and byte flips in
// the header region must error (or succeed) without panicking.
func TestWireCorruptInputs(t *testing.T) {
	for _, b := range wireCases() {
		data := AppendMarshal(nil, b)
		for n := 0; n < len(data); n++ {
			UnmarshalView(data[:n]) // must not panic; error expected but not required at n==len
		}
		for i := 0; i < len(data) && i < 64; i++ {
			cp := append([]byte(nil), data...)
			cp[i] ^= 0xFF
			UnmarshalView(cp) // must not panic
		}
	}
	if _, err := UnmarshalView([]byte("definitely not a bat")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalView(nil); err == nil {
		t.Fatal("nil input accepted")
	}
}

// TestWireViewAppendSafe checks that appending to a decoded (zero-copy)
// column reallocates instead of growing into the wire buffer.
func TestWireViewAppendSafe(t *testing.T) {
	data := AppendMarshal(nil, MakeInts("a", []int64{1, 2, 3}))
	snapshot := append([]byte(nil), data...)
	got, err := UnmarshalView(data)
	if err != nil {
		t.Fatal(err)
	}
	got.Tail().Append(int64(99))
	if !bytes.Equal(data, snapshot) {
		t.Fatal("append to decoded column mutated the wire buffer")
	}
}

// FuzzUnmarshal feeds arbitrary bytes to UnmarshalView: it must never
// panic, only return errors or valid BATs.
func FuzzUnmarshal(f *testing.F) {
	for _, b := range wireCases() {
		f.Add(AppendMarshal(nil, b))
	}
	f.Add([]byte{})
	f.Add([]byte("DC\x01\x00garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalView(data)
		if err != nil {
			return
		}
		// A successfully decoded BAT must be internally consistent
		// enough to walk without panicking.
		for i := 0; i < b.Len(); i++ {
			_ = b.Head().Value(i)
			_ = b.Tail().Value(i)
		}
	})
}
