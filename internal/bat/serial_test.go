package bat

import (
	"reflect"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, b *BAT) *BAT {
	t.Helper()
	data, err := Marshal(b)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return out
}

func TestSerialRoundtripKinds(t *testing.T) {
	cases := []*BAT{
		MakeInts("ints", []int64{1, -2, 3}),
		MakeFloats("floats", []float64{1.5, -2.25}),
		MakeStrs("strs", []string{"a", "", "hello world"}),
		MakeOids("oids", []Oid{0, 5, NilOid}),
		New("bools", DenseColumn(10, 2), BoolColumn([]bool{true, false})),
		MakeInts("empty", nil),
	}
	for _, b := range cases {
		got := roundtrip(t, b)
		if got.Name != b.Name || got.Len() != b.Len() {
			t.Fatalf("%s: shape mismatch", b.Name)
		}
		for i := 0; i < b.Len(); i++ {
			if !reflect.DeepEqual(got.Head().Value(i), b.Head().Value(i)) ||
				!reflect.DeepEqual(got.Tail().Value(i), b.Tail().Value(i)) {
				t.Fatalf("%s: row %d differs", b.Name, i)
			}
		}
		if got.Head().Dense() != b.Head().Dense() || got.Head().Base() != b.Head().Base() {
			t.Fatalf("%s: dense head metadata lost", b.Name)
		}
	}
}

func TestSerialPreservesSorted(t *testing.T) {
	b := MakeInts("x", []int64{3, 1, 2}).SortT(false)
	got := roundtrip(t, b)
	if !got.Tail().Sorted() {
		t.Fatal("sorted property lost")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not a bat")); err == nil {
		t.Fatal("expected error")
	}
}

// Property: round-trip preserves arbitrary int BATs.
func TestPropertySerialRoundtrip(t *testing.T) {
	f := func(vals []int64) bool {
		b := MakeInts("p", vals)
		data, err := Marshal(b)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil || got.Len() != b.Len() {
			return false
		}
		for i := range vals {
			if got.Tail().Int(i) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
