package mal

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/bat"
)

type memCatalog map[string]*bat.BAT

func (c memCatalog) Bind(schema, table, column string) (Value, error) {
	b, ok := c[schema+"."+table+"."+column]
	if !ok {
		return nil, fmt.Errorf("no such column %s.%s.%s", schema, table, column)
	}
	return b, nil
}

func paperCatalog() memCatalog {
	// Tables from the paper's running example (§3.2):
	// t(id), c(t_id); query: select c.t_id from t, c where c.t_id = t.id
	return memCatalog{
		"sys.t.id":   bat.MakeInts("t.id", []int64{1, 2, 3, 4}),
		"sys.c.t_id": bat.MakeInts("c.t_id", []int64{2, 2, 3, 9}),
	}
}

// buildPaperPlan reproduces Table 1's MAL plan.
func buildPaperPlan(t *testing.T) *Plan {
	b := NewBuilder("s1_2")
	x1 := b.Emit("sql", "bind", L("sys"), L("t"), L("id"))
	x6 := b.Emit("sql", "bind", L("sys"), L("c"), L("t_id"))
	x9 := b.Emit("bat", "reverse", V(x6))
	x10 := b.Emit("algebra", "join", V(x1), V(x9))
	x13 := b.Emit("algebra", "markT", V(x10), L(bat.Oid(0)))
	x14 := b.Emit("bat", "reverse", V(x13))
	x15 := b.Emit("algebra", "join", V(x14), V(x1))
	x16 := b.Emit("sql", "resultSet", L("sys.c.t_id"), V(x15))
	b.SetResult(x16)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestPaperPlanSequential(t *testing.T) {
	ctx := &Context{Registry: NewRegistry(), Catalog: paperCatalog()}
	v, err := Run(ctx, buildPaperPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	rs := v.(*ResultSet)
	// matches: t.id=2 twice (c rows 0,1), t.id=3 once => values 2,2,3
	if rs.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3: %s", rs.NumRows(), rs)
	}
	counts := map[int64]int{}
	for _, row := range rs.Rows() {
		counts[row[0].(int64)]++
	}
	if counts[2] != 2 || counts[3] != 1 {
		t.Fatalf("result values wrong: %v", counts)
	}
}

func TestPaperPlanParallelMatchesSequential(t *testing.T) {
	seqCtx := &Context{Registry: NewRegistry(), Catalog: paperCatalog()}
	seq, err := Run(seqCtx, buildPaperPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers *= 2 {
		parCtx := &Context{Registry: NewRegistry(), Catalog: paperCatalog(), Workers: workers}
		par, err := Run(parCtx, buildPaperPlan(t))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		a, b := seq.(*ResultSet), par.(*ResultSet)
		if a.NumRows() != b.NumRows() {
			t.Fatalf("workers=%d: rows %d != %d", workers, b.NumRows(), a.NumRows())
		}
	}
}

func TestBuilderSSAViolations(t *testing.T) {
	b := NewBuilder("bad")
	v := b.NewVar()
	b.plan.Instrs = append(b.plan.Instrs, Instr{Module: "m", Op: "o", Ret: []VarID{v}})
	b.plan.Instrs = append(b.plan.Instrs, Instr{Module: "m", Op: "o", Ret: []VarID{v}})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "reassigns") {
		t.Fatalf("want reassign error, got %v", err)
	}

	b2 := NewBuilder("bad2")
	v2 := b2.NewVar()
	b2.plan.Instrs = append(b2.plan.Instrs, Instr{Module: "m", Op: "o", Args: []Arg{V(v2)}})
	if _, err := b2.Build(); err == nil || !strings.Contains(err.Error(), "before assignment") {
		t.Fatalf("want use-before-assignment error, got %v", err)
	}
}

func TestUnknownOp(t *testing.T) {
	b := NewBuilder("p")
	b.Emit("nope", "nothing")
	ctx := &Context{Registry: NewRegistry()}
	if _, err := Run(ctx, b.MustBuild()); err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Fatalf("want unknown-op error, got %v", err)
	}
}

func TestOpErrorPropagates(t *testing.T) {
	b := NewBuilder("p")
	x := b.Emit("sql", "bind", L("sys"), L("nope"), L("nope"))
	b.SetResult(x)
	ctx := &Context{Registry: NewRegistry(), Catalog: paperCatalog()}
	_, err := Run(ctx, b.MustBuild())
	if err == nil || !strings.Contains(err.Error(), "no such column") {
		t.Fatalf("want bind error, got %v", err)
	}
	// Parallel path must surface the same error.
	ctx.Workers = 4
	_, err = Run(ctx, b.MustBuild())
	if err == nil || !strings.Contains(err.Error(), "no such column") {
		t.Fatalf("parallel: want bind error, got %v", err)
	}
}

func TestSelectAndAggrOps(t *testing.T) {
	cat := memCatalog{"sys.l.qty": bat.MakeInts("qty", []int64{5, 10, 15, 20})}
	b := NewBuilder("agg")
	x := b.Emit("sql", "bind", L("sys"), L("l"), L("qty"))
	sel := b.Emit("algebra", "select", V(x), L(int64(10)), L(int64(20)), L(true), L(false))
	sum := b.Emit("aggr", "sum", V(sel))
	res := b.Emit("sql", "scalarResult", L("sum_qty"), V(sum))
	b.SetResult(res)
	ctx := &Context{Registry: NewRegistry(), Catalog: cat}
	v, err := Run(ctx, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	rs := v.(*ResultSet)
	if got := rs.Row(0)[0].(int64); got != 25 {
		t.Fatalf("sum = %d, want 25 (10+15)", got)
	}
}

func TestGroupOps(t *testing.T) {
	cat := memCatalog{
		"sys.l.flag": bat.MakeStrs("flag", []string{"A", "B", "A"}),
		"sys.l.qty":  bat.MakeInts("qty", []int64{1, 2, 4}),
	}
	b := NewBuilder("grp")
	flag := b.Emit("sql", "bind", L("sys"), L("l"), L("flag"))
	qty := b.Emit("sql", "bind", L("sys"), L("l"), L("qty"))
	groups, reps := b.Emit2("group", "new", V(flag))
	sums := b.Emit("aggr", "groupedSum", V(groups), V(qty))
	res := b.Emit("sql", "resultSet", L("flag"), V(reps), L("sum"), V(sums))
	b.SetResult(res)
	ctx := &Context{Registry: NewRegistry(), Catalog: cat}
	v, err := Run(ctx, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	rs := v.(*ResultSet)
	if rs.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", rs.NumRows())
	}
	if rs.Row(0)[0] != "A" || rs.Row(0)[1].(int64) != 5 {
		t.Fatalf("group A wrong: %v", rs.Row(0))
	}
}

type fakeDC struct {
	mu       sync.Mutex
	requests []string
	pins     int
	unpins   int
	cat      memCatalog
	blockers map[string]chan struct{}
}

func (d *fakeDC) Request(schema, table, column string) (Value, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := schema + "." + table + "." + column
	d.requests = append(d.requests, key)
	return key, nil
}

func (d *fakeDC) Pin(h Value) (Value, error) {
	key := h.(string)
	d.mu.Lock()
	blocker := d.blockers[key]
	d.mu.Unlock()
	if blocker != nil {
		<-blocker // simulate waiting for the BAT to flow past
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pins++
	b, ok := d.cat[key]
	if !ok {
		return nil, errors.New("BAT does not exist")
	}
	return b, nil
}

func (d *fakeDC) Unpin(h Value) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.unpins++
	return nil
}

// buildDCPlan reproduces Table 2: the plan after the DcOptimizer.
func buildDCPlan() *Plan {
	b := NewBuilder("s1_2_dc")
	x2 := b.Emit("datacyclotron", "request", L("sys"), L("t"), L("id"))
	x3 := b.Emit("datacyclotron", "request", L("sys"), L("c"), L("t_id"))
	x6 := b.Emit("datacyclotron", "pin", V(x3))
	x9 := b.Emit("bat", "reverse", V(x6))
	x1 := b.Emit("datacyclotron", "pin", V(x2))
	x10 := b.Emit("algebra", "join", V(x1), V(x9))
	x13 := b.Emit("algebra", "markT", V(x10), L(bat.Oid(0)))
	x14 := b.Emit("bat", "reverse", V(x13))
	x15 := b.Emit("algebra", "join", V(x14), V(x1))
	x16 := b.Emit("sql", "resultSet", L("sys.c.t_id"), V(x15))
	b.Emit0("datacyclotron", "unpin", V(x6))
	b.Emit0("datacyclotron", "unpin", V(x1))
	b.SetResult(x16)
	return b.MustBuild()
}

func TestDCPlanWithFakeRuntime(t *testing.T) {
	dc := &fakeDC{cat: paperCatalog()}
	ctx := &Context{Registry: NewRegistry(), DC: dc, Workers: 4}
	v, err := Run(ctx, buildDCPlan())
	if err != nil {
		t.Fatal(err)
	}
	rs := v.(*ResultSet)
	if rs.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", rs.NumRows())
	}
	if len(dc.requests) != 2 || dc.pins != 2 || dc.unpins != 2 {
		t.Fatalf("DC interaction: req=%d pin=%d unpin=%d, want 2/2/2",
			len(dc.requests), dc.pins, dc.unpins)
	}
}

func TestDataflowOverlapsBlockedPin(t *testing.T) {
	// pin(t.id) blocks; the reverse of c.t_id must still proceed, proving
	// the dataflow interpreter overlaps communication and computation
	// (the asynchronous execution RDMA enables, §2.3).
	dc := &fakeDC{cat: paperCatalog(), blockers: map[string]chan struct{}{}}
	release := make(chan struct{})
	dc.blockers["sys.t.id"] = release

	reg := NewRegistry()
	reverseStarted := make(chan struct{}, 1)
	orig, _ := reg.Lookup("bat.reverse")
	reg.Register("bat", "reverse", func(ctx *Context, args []Value) ([]Value, error) {
		select {
		case reverseStarted <- struct{}{}:
		default:
		}
		return orig(ctx, args)
	})

	ctx := &Context{Registry: reg, DC: dc, Workers: 4}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, buildDCPlan())
		done <- err
	}()
	<-reverseStarted // reverse ran while pin(t.id) is still blocked
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPlanString(t *testing.T) {
	p := buildDCPlan()
	s := p.String()
	for _, want := range []string{"datacyclotron.request", "datacyclotron.pin", "datacyclotron.unpin", "algebra.join"} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan text missing %q:\n%s", want, s)
		}
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Module: "algebra", Op: "join", Ret: []VarID{3}, Args: []Arg{V(1), V(2)}}
	if got := in.String(); got != "X3 := algebra.join(X1, X2)" {
		t.Fatalf("Instr.String = %q", got)
	}
}

func TestResultSetHelpers(t *testing.T) {
	rs := &ResultSet{
		Names: []string{"a", "b"},
		Cols: []*bat.BAT{
			bat.MakeInts("a", []int64{1, 2}),
			bat.MakeStrs("b", []string{"x", "y"}),
		},
	}
	if rs.NumRows() != 2 {
		t.Fatalf("NumRows = %d", rs.NumRows())
	}
	if row := rs.Row(1); row[0].(int64) != 2 || row[1].(string) != "y" {
		t.Fatalf("Row(1) = %v", row)
	}
	if !strings.Contains(rs.String(), "a | b") {
		t.Fatalf("String = %q", rs.String())
	}
	empty := &ResultSet{}
	if empty.NumRows() != 0 {
		t.Fatal("empty NumRows != 0")
	}
}

func TestScalarResultKinds(t *testing.T) {
	reg := NewRegistry()
	for _, v := range []Value{int64(7), 3.14, "hi", nil} {
		b := NewBuilder("s")
		x := b.Emit("sql", "scalarResult", L("v"), L(v))
		b.SetResult(x)
		ctx := &Context{Registry: reg}
		out, err := Run(ctx, b.MustBuild())
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		rs := out.(*ResultSet)
		if v == nil {
			if rs.NumRows() != 0 {
				t.Fatalf("nil scalar should give 0 rows")
			}
		} else if rs.NumRows() != 1 {
			t.Fatalf("%T: rows = %d", v, rs.NumRows())
		}
	}
}

func TestCalcOps(t *testing.T) {
	cat := memCatalog{
		"sys.l.price": bat.MakeFloats("price", []float64{100, 50}),
		"sys.l.disc":  bat.MakeFloats("disc", []float64{0.5, 0.1}),
	}
	b := NewBuilder("calc")
	p := b.Emit("sql", "bind", L("sys"), L("l"), L("price"))
	d := b.Emit("sql", "bind", L("sys"), L("l"), L("disc"))
	oneMinus := b.Emit("calc", "constMinus", L(1.0), V(d))
	rev := b.Emit("calc", "mul", V(p), V(oneMinus))
	sum := b.Emit("aggr", "sum", V(rev))
	res := b.Emit("sql", "scalarResult", L("revenue"), V(sum))
	b.SetResult(res)
	ctx := &Context{Registry: NewRegistry(), Catalog: cat}
	v, err := Run(ctx, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*ResultSet).Row(0)[0].(float64)
	if got != 95 { // 100*0.5 + 50*0.9
		t.Fatalf("revenue = %v, want 95", got)
	}
}

func BenchmarkInterpreterOverhead(b *testing.B) {
	// The paper keeps interpreter overhead "well below one microsecond
	// per instruction"; verify our dispatch is in that ballpark.
	cat := memCatalog{"sys.t.x": bat.MakeInts("x", []int64{1})}
	pb := NewBuilder("p")
	x := pb.Emit("sql", "bind", L("sys"), L("t"), L("x"))
	last := x
	for i := 0; i < 50; i++ {
		last = pb.Emit("bat", "reverse", V(last))
		last = pb.Emit("bat", "reverse", V(last))
	}
	pb.SetResult(last)
	plan := pb.MustBuild()
	ctx := &Context{Registry: NewRegistry(), Catalog: cat}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ctx, plan); err != nil {
			b.Fatal(err)
		}
	}
}
