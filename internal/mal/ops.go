package mal

import (
	"fmt"

	"repro/internal/bat"
)

// NewRegistry returns a registry preloaded with the standard operator
// set: the binary relational algebra over BATs, grouping/aggregation,
// scalar arithmetic, result construction, and the datacyclotron.*
// instructions of §4.1.
func NewRegistry() *Registry {
	r := &Registry{}
	registerStandard(r)
	return r
}

func argBAT(args []Value, i int) (*bat.BAT, error) {
	b, ok := args[i].(*bat.BAT)
	if !ok {
		return nil, fmt.Errorf("arg %d: want *bat.BAT, got %T", i, args[i])
	}
	return b, nil
}

func argStr(args []Value, i int) (string, error) {
	s, ok := args[i].(string)
	if !ok {
		return "", fmt.Errorf("arg %d: want string, got %T", i, args[i])
	}
	return s, nil
}

func one(v Value) []Value { return []Value{v} }

func registerStandard(r *Registry) {
	// --- catalog ---
	r.Register("sql", "bind", func(ctx *Context, args []Value) ([]Value, error) {
		if ctx.Catalog == nil {
			return nil, fmt.Errorf("no catalog")
		}
		schema, err := argStr(args, 0)
		if err != nil {
			return nil, err
		}
		table, err := argStr(args, 1)
		if err != nil {
			return nil, err
		}
		column, err := argStr(args, 2)
		if err != nil {
			return nil, err
		}
		v, err := ctx.Catalog.Bind(schema, table, column)
		if err != nil {
			return nil, err
		}
		return one(v), nil
	})

	// --- datacyclotron hooks (§4.1) ---
	r.Register("datacyclotron", "request", func(ctx *Context, args []Value) ([]Value, error) {
		if ctx.DC == nil {
			return nil, fmt.Errorf("no DC runtime attached")
		}
		schema, err := argStr(args, 0)
		if err != nil {
			return nil, err
		}
		table, err := argStr(args, 1)
		if err != nil {
			return nil, err
		}
		column, err := argStr(args, 2)
		if err != nil {
			return nil, err
		}
		h, err := ctx.DC.Request(schema, table, column)
		if err != nil {
			return nil, err
		}
		return one(h), nil
	})
	r.Register("datacyclotron", "pin", func(ctx *Context, args []Value) ([]Value, error) {
		if ctx.DC == nil {
			return nil, fmt.Errorf("no DC runtime attached")
		}
		v, err := ctx.DC.Pin(args[0])
		if err != nil {
			return nil, err
		}
		return one(v), nil
	})
	r.Register("datacyclotron", "unpin", func(ctx *Context, args []Value) ([]Value, error) {
		if ctx.DC == nil {
			return nil, fmt.Errorf("no DC runtime attached")
		}
		return nil, ctx.DC.Unpin(args[0])
	})

	// --- fused per-fragment scans (pin ∘ select ∘ unpin) ---
	// The DcOptimizer fuses a pin whose only consumer is a scan into one
	// instruction, so a fragmented runtime can run the scan on each
	// fragment as it arrives (any order, bounded pool) and merge the
	// per-fragment results in fragment order. Fragment heads carry
	// global OIDs (a Slice view shifts the dense base), so the merged
	// scan output is identical to scanning the whole column.
	r.Register("datacyclotron", "pinselect", func(ctx *Context, args []Value) ([]Value, error) {
		var lo, hi *bat.Bound
		if args[1] != nil {
			lo = &bat.Bound{Value: args[1], Inclusive: args[3].(bool)}
		}
		if args[2] != nil {
			hi = &bat.Bound{Value: args[2], Inclusive: args[4].(bool)}
		}
		return pinScan(ctx, args[0], func(b *bat.BAT) *bat.BAT { return b.Select(lo, hi) })
	})
	r.Register("datacyclotron", "pinselecteq", func(ctx *Context, args []Value) ([]Value, error) {
		v := args[1]
		return pinScan(ctx, args[0], func(b *bat.BAT) *bat.BAT { return b.SelectEq(v) })
	})
	r.Register("datacyclotron", "pinselectne", func(ctx *Context, args []Value) ([]Value, error) {
		v := args[1]
		return pinScan(ctx, args[0], func(b *bat.BAT) *bat.BAT { return b.SelectNe(v) })
	})

	// --- bat module ---
	r.Register("bat", "reverse", unary(func(b *bat.BAT) Value { return b.Reverse() }))
	r.Register("bat", "mirror", unary(func(b *bat.BAT) Value { return b.Mirror() }))
	// bat.fromScalar(name, v) lifts a scalar into a 1-row BAT so scalar
	// aggregates can participate in multi-column result sets.
	r.Register("bat", "fromScalar", func(ctx *Context, args []Value) ([]Value, error) {
		name, err := argStr(args, 0)
		if err != nil {
			return nil, err
		}
		switch v := args[1].(type) {
		case int64:
			return one(bat.MakeInts(name, []int64{v})), nil
		case float64:
			return one(bat.MakeFloats(name, []float64{v})), nil
		case string:
			return one(bat.MakeStrs(name, []string{v})), nil
		case bat.Oid:
			return one(bat.MakeOids(name, []bat.Oid{v})), nil
		case nil:
			return one(bat.MakeInts(name, nil)), nil
		}
		return nil, fmt.Errorf("fromScalar: unsupported %T", args[1])
	})

	// --- algebra ---
	r.Register("algebra", "join", binary(func(l, rg *bat.BAT) Value { return l.Join(rg) }))
	r.Register("algebra", "semijoin", binary(func(l, rg *bat.BAT) Value { return l.Semijoin(rg) }))
	r.Register("algebra", "kdiff", binary(func(l, rg *bat.BAT) Value { return l.Diff(rg) }))
	r.Register("algebra", "kunion", binary(func(l, rg *bat.BAT) Value { return l.Union(rg) }))
	r.Register("algebra", "kunique", unary(func(b *bat.BAT) Value { return b.UniqueT() }))
	r.Register("algebra", "markT", func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		base, ok := args[1].(bat.Oid)
		if !ok {
			return nil, fmt.Errorf("markT: want oid base, got %T", args[1])
		}
		return one(b.MarkT(base)), nil
	})
	r.Register("algebra", "markH", func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		base, ok := args[1].(bat.Oid)
		if !ok {
			return nil, fmt.Errorf("markH: want oid base, got %T", args[1])
		}
		return one(b.MarkH(base)), nil
	})
	// algebra.select(b, lo, hi, loIncl, hiIncl); nil bound = open side.
	r.Register("algebra", "select", func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		var lo, hi *bat.Bound
		if args[1] != nil {
			lo = &bat.Bound{Value: args[1], Inclusive: args[3].(bool)}
		}
		if args[2] != nil {
			hi = &bat.Bound{Value: args[2], Inclusive: args[4].(bool)}
		}
		return one(b.Select(lo, hi)), nil
	})
	r.Register("algebra", "selectEq", func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		return one(b.SelectEq(args[1])), nil
	})
	r.Register("algebra", "selectNe", func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		return one(b.SelectNe(args[1])), nil
	})
	r.Register("algebra", "sort", func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		desc, _ := args[1].(bool)
		return one(b.SortT(desc)), nil
	})
	r.Register("algebra", "slice", func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		from := int(args[1].(int64))
		to := int(args[2].(int64))
		if to > b.Len() {
			to = b.Len()
		}
		if from > to {
			from = to
		}
		return one(b.Slice(from, to)), nil
	})
	r.Register("algebra", "topN", func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		n := int(args[1].(int64))
		desc, _ := args[2].(bool)
		return one(b.TopN(n, desc)), nil
	})

	// --- group ---
	r.Register("group", "new", func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		groups, reps := b.GroupIDs()
		return []Value{groups, reps}, nil
	})

	r.Register("group", "newpos", func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		groups, reps := b.GroupIDsPos()
		return []Value{groups, reps}, nil
	})
	r.Register("group", "derive", func(ctx *Context, args []Value) ([]Value, error) {
		g, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		k, err := argBAT(args, 1)
		if err != nil {
			return nil, err
		}
		refined, reps := bat.GroupDerive(g, k)
		return []Value{refined, reps}, nil
	})

	// --- aggr ---
	r.Register("aggr", "sum", unary(func(b *bat.BAT) Value { return b.Sum() }))
	r.Register("aggr", "count", unary(func(b *bat.BAT) Value { return b.Count() }))
	r.Register("aggr", "min", unary(func(b *bat.BAT) Value { return b.Min() }))
	r.Register("aggr", "max", unary(func(b *bat.BAT) Value { return b.Max() }))
	r.Register("aggr", "avg", unary(func(b *bat.BAT) Value { return b.Avg() }))
	r.Register("aggr", "groupedSum", binary(func(g, v *bat.BAT) Value { return bat.GroupedSum(g, v) }))
	r.Register("aggr", "groupedCount", unary(func(g *bat.BAT) Value { return bat.GroupedCount(g) }))
	r.Register("aggr", "groupedAvg", binary(func(g, v *bat.BAT) Value { return bat.GroupedAvg(g, v) }))
	r.Register("aggr", "groupedMin", binary(func(g, v *bat.BAT) Value { return bat.GroupedMin(g, v) }))
	r.Register("aggr", "groupedMax", binary(func(g, v *bat.BAT) Value { return bat.GroupedMax(g, v) }))

	// --- calc (positional arithmetic) ---
	// calc.eqselect(a, b): rows of a whose tail equals b's tail at the
	// same position; implements cyclic join predicates as filters.
	r.Register("calc", "eqselect", binary(func(a, b *bat.BAT) Value { return a.EqRows(b) }))
	r.Register("calc", "mul", binary(func(a, b *bat.BAT) Value { return bat.MulIF(a, b) }))
	r.Register("calc", "add", binary(func(a, b *bat.BAT) Value { return bat.AddF(a, b) }))
	r.Register("calc", "constMinus", func(ctx *Context, args []Value) ([]Value, error) {
		c, ok := args[0].(float64)
		if !ok {
			return nil, fmt.Errorf("constMinus: want float64, got %T", args[0])
		}
		b, err := argBAT(args, 1)
		if err != nil {
			return nil, err
		}
		return one(bat.ConstMinusF(c, b)), nil
	})
	r.Register("calc", "constPlus", func(ctx *Context, args []Value) ([]Value, error) {
		c, ok := args[0].(float64)
		if !ok {
			return nil, fmt.Errorf("constPlus: want float64, got %T", args[0])
		}
		b, err := argBAT(args, 1)
		if err != nil {
			return nil, err
		}
		return one(bat.ConstPlusF(c, b)), nil
	})

	// --- sql result construction ---
	// sql.resultSet(name1, col1, name2, col2, ...)
	r.Register("sql", "resultSet", func(ctx *Context, args []Value) ([]Value, error) {
		if len(args)%2 != 0 {
			return nil, fmt.Errorf("resultSet: want name/column pairs")
		}
		rs := &ResultSet{}
		for i := 0; i < len(args); i += 2 {
			name, err := argStr(args, i)
			if err != nil {
				return nil, err
			}
			col, err := argBAT(args, i+1)
			if err != nil {
				return nil, err
			}
			rs.Names = append(rs.Names, name)
			rs.Cols = append(rs.Cols, col)
		}
		for _, c := range rs.Cols {
			if c.Len() != rs.Cols[0].Len() {
				return nil, fmt.Errorf("resultSet: misaligned columns %d vs %d", c.Len(), rs.Cols[0].Len())
			}
		}
		return one(rs), nil
	})
	// sql.scalarResult(name, value) wraps a scalar into a 1-row result.
	r.Register("sql", "scalarResult", func(ctx *Context, args []Value) ([]Value, error) {
		name, err := argStr(args, 0)
		if err != nil {
			return nil, err
		}
		var col *bat.BAT
		switch v := args[1].(type) {
		case int64:
			col = bat.MakeInts(name, []int64{v})
		case float64:
			col = bat.MakeFloats(name, []float64{v})
		case string:
			col = bat.MakeStrs(name, []string{v})
		case nil:
			col = bat.MakeInts(name, nil)
		default:
			return nil, fmt.Errorf("scalarResult: unsupported %T", args[1])
		}
		return one(&ResultSet{Names: []string{name}, Cols: []*bat.BAT{col}}), nil
	})
}

// pinScan runs one fused pin+scan: per fragment (out of order, bounded
// pool) on a FragmentedDC, or pin/scan/unpin on a plain DCRuntime.
func pinScan(ctx *Context, handle Value, scan func(*bat.BAT) *bat.BAT) ([]Value, error) {
	if ctx.DC == nil {
		return nil, fmt.Errorf("no DC runtime attached")
	}
	if fdc, ok := ctx.DC.(FragmentedDC); ok {
		parts, err := fdc.PinMap(handle, func(frag Value) (Value, error) {
			b, ok := frag.(*bat.BAT)
			if !ok {
				return nil, fmt.Errorf("pinned fragment is %T, want *bat.BAT", frag)
			}
			return scan(b), nil
		})
		if err != nil {
			return nil, err
		}
		frags := make([]*bat.BAT, len(parts))
		for i, p := range parts {
			frags[i] = p.(*bat.BAT)
		}
		return one(bat.Concat(frags)), nil
	}
	v, err := ctx.DC.Pin(handle)
	if err != nil {
		return nil, err
	}
	b, ok := v.(*bat.BAT)
	if !ok {
		return nil, fmt.Errorf("pinned value is %T, want *bat.BAT", v)
	}
	out := scan(b)
	if err := ctx.DC.Unpin(v); err != nil {
		return nil, err
	}
	return one(out), nil
}

func unary(f func(*bat.BAT) Value) OpFunc {
	return func(ctx *Context, args []Value) ([]Value, error) {
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		return one(f(b)), nil
	}
}

func binary(f func(a, b *bat.BAT) Value) OpFunc {
	return func(ctx *Context, args []Value) ([]Value, error) {
		a, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		b, err := argBAT(args, 1)
		if err != nil {
			return nil, err
		}
		return one(f(a, b)), nil
	}
}
