// Package mal implements the plan layer of the engine: a MonetDB
// Assembly Language (MAL) style representation of query plans and a
// dataflow interpreter that executes instructions concurrently as their
// inputs become available (§3.2 of the paper).
//
// Plans are SSA-like: every variable is assigned exactly once. The
// Data Cyclotron optimizer (package dcopt) rewrites plans produced by
// the SQL front-end, replacing sql.bind calls with datacyclotron.request
// and injecting pin/unpin calls.
package mal

import (
	"fmt"
	"strings"

	"repro/internal/bat"
)

// VarID identifies an SSA variable within a plan.
type VarID int

// NoVar is the null variable id.
const NoVar VarID = -1

// Value is anything an instruction can produce or consume: *bat.BAT,
// scalars, *ResultSet, or DC handles.
type Value any

// Arg is an instruction operand: either a variable reference or a
// literal constant.
type Arg struct {
	Var VarID
	Lit Value
	lit bool
}

// V references variable id.
func V(id VarID) Arg { return Arg{Var: id} }

// L embeds a literal constant.
func L(v Value) Arg { return Arg{Var: NoVar, Lit: v, lit: true} }

// IsLit reports whether the operand is a literal.
func (a Arg) IsLit() bool { return a.lit }

// Instr is one MAL instruction: module.op(args) -> rets.
type Instr struct {
	Module string
	Op     string
	Ret    []VarID
	Args   []Arg
}

// Name returns "module.op".
func (in Instr) Name() string { return in.Module + "." + in.Op }

func (in Instr) String() string {
	var b strings.Builder
	for i, r := range in.Ret {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "X%d", r)
	}
	if len(in.Ret) > 0 {
		b.WriteString(" := ")
	}
	b.WriteString(in.Name())
	b.WriteByte('(')
	for i, a := range in.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		if a.lit {
			fmt.Fprintf(&b, "%#v", a.Lit)
		} else {
			fmt.Fprintf(&b, "X%d", a.Var)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Plan is a straight-line MAL program.
type Plan struct {
	Name   string
	Instrs []Instr
	NVars  int
	// Result names the variable holding the query result (usually a
	// *ResultSet produced by sql.resultSet).
	Result VarID
}

func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "function %s():void;\n", p.Name)
	for _, in := range p.Instrs {
		fmt.Fprintf(&b, "    %s;\n", in.String())
	}
	fmt.Fprintf(&b, "end %s;\n", p.Name)
	return b.String()
}

// Builder constructs plans with SSA discipline.
type Builder struct {
	plan Plan
}

// NewBuilder returns a plan builder.
func NewBuilder(name string) *Builder {
	return &Builder{plan: Plan{Name: name, Result: NoVar}}
}

// NewVar allocates a fresh variable.
func (b *Builder) NewVar() VarID {
	id := VarID(b.plan.NVars)
	b.plan.NVars++
	return id
}

// Emit appends module.op(args)->ret with a fresh result variable.
func (b *Builder) Emit(module, op string, args ...Arg) VarID {
	ret := b.NewVar()
	b.plan.Instrs = append(b.plan.Instrs, Instr{Module: module, Op: op, Ret: []VarID{ret}, Args: args})
	return ret
}

// Emit2 appends an instruction with two result variables.
func (b *Builder) Emit2(module, op string, args ...Arg) (VarID, VarID) {
	r1, r2 := b.NewVar(), b.NewVar()
	b.plan.Instrs = append(b.plan.Instrs, Instr{Module: module, Op: op, Ret: []VarID{r1, r2}, Args: args})
	return r1, r2
}

// Emit0 appends an instruction with no results (e.g. unpin).
func (b *Builder) Emit0(module, op string, args ...Arg) {
	b.plan.Instrs = append(b.plan.Instrs, Instr{Module: module, Op: op, Args: args})
}

// SetResult marks v as the plan's result variable.
func (b *Builder) SetResult(v VarID) { b.plan.Result = v }

// Build finalizes and validates the plan.
func (b *Builder) Build() (*Plan, error) {
	p := b.plan
	assigned := make([]bool, p.NVars)
	for i, in := range p.Instrs {
		for _, a := range in.Args {
			if !a.lit {
				if a.Var < 0 || int(a.Var) >= p.NVars {
					return nil, fmt.Errorf("mal: instr %d references unknown X%d", i, a.Var)
				}
				if !assigned[a.Var] {
					return nil, fmt.Errorf("mal: instr %d (%s) uses X%d before assignment", i, in.Name(), a.Var)
				}
			}
		}
		for _, r := range in.Ret {
			if r < 0 || int(r) >= p.NVars {
				return nil, fmt.Errorf("mal: instr %d assigns unknown X%d", i, r)
			}
			if assigned[r] {
				return nil, fmt.Errorf("mal: instr %d reassigns X%d (plans are SSA)", i, r)
			}
			assigned[r] = true
		}
	}
	if p.Result != NoVar && (p.Result < 0 || int(p.Result) >= p.NVars) {
		return nil, fmt.Errorf("mal: result variable X%d out of range", p.Result)
	}
	return &p, nil
}

// MustBuild is Build that panics on error (for tests and static plans).
func (b *Builder) MustBuild() *Plan {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// ResultSet is the tabular query result: named columns over positionally
// aligned BAT tails.
type ResultSet struct {
	Names []string
	Cols  []*bat.BAT
}

// NumRows reports the row count.
func (r *ResultSet) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// Row materializes row i.
func (r *ResultSet) Row(i int) []any {
	out := make([]any, len(r.Cols))
	for c, b := range r.Cols {
		out[c] = b.Tail().Value(i)
	}
	return out
}

// Rows materializes the full result column-at-a-time: one kind
// dispatch per column instead of one boxed Value call per cell.
func (r *ResultSet) Rows() [][]any {
	n := r.NumRows()
	out := make([][]any, n)
	for i := range out {
		out[i] = make([]any, len(r.Cols))
	}
	for c, b := range r.Cols {
		t := b.Tail()
		switch t.Kind() {
		case bat.KInt:
			for i := 0; i < n; i++ {
				out[i][c] = t.Int(i)
			}
		case bat.KFloat:
			for i := 0; i < n; i++ {
				out[i][c] = t.Float(i)
			}
		case bat.KStr:
			for i := 0; i < n; i++ {
				out[i][c] = t.Str(i)
			}
		case bat.KOid:
			for i := 0; i < n; i++ {
				out[i][c] = t.Oid(i)
			}
		case bat.KBool:
			for i := 0; i < n; i++ {
				out[i][c] = t.Bool(i)
			}
		default:
			for i := 0; i < n; i++ {
				out[i][c] = t.Value(i)
			}
		}
	}
	return out
}

func (r *ResultSet) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Names, " | "))
	b.WriteByte('\n')
	n := r.NumRows()
	for i := 0; i < n && i < 25; i++ {
		row := r.Row(i)
		for c, v := range row {
			if c > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%v", v)
		}
		b.WriteByte('\n')
	}
	if n > 25 {
		fmt.Fprintf(&b, "... (%d rows)\n", n)
	}
	return b.String()
}
