package mal

import (
	"testing"
	"time"
)

// blockingDC is a DCRuntime whose Pin blocks until the cancel channel
// closes, mirroring a live-ring pin that will never be delivered.
type blockingDC struct {
	cancel  <-chan struct{}
	pinning chan struct{} // closed when Pin is entered
}

func (d *blockingDC) Request(schema, table, column string) (Value, error) {
	return table + "." + column, nil
}

func (d *blockingDC) Pin(handle Value) (Value, error) {
	close(d.pinning)
	<-d.cancel
	return nil, ErrCancelled
}

func (d *blockingDC) Unpin(handle Value) error { return nil }

func cancelPlan(t *testing.T) *Plan {
	t.Helper()
	b := NewBuilder("blocked")
	h := b.Emit("datacyclotron", "request", L("sys"), L("t"), L("c"))
	p := b.Emit("datacyclotron", "pin", V(h))
	b.SetResult(p)
	return b.MustBuild()
}

// TestCancelUnblocksPin runs a plan whose pin never delivers and checks
// that closing Context.Cancel makes Run return instead of stranding the
// interpreter (sequential and parallel runners both).
func TestCancelUnblocksPin(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cancel := make(chan struct{})
		dc := &blockingDC{cancel: cancel, pinning: make(chan struct{})}
		ctx := &Context{Registry: NewRegistry(), DC: dc, Workers: workers, Cancel: cancel}
		done := make(chan error, 1)
		go func() {
			_, err := Run(ctx, cancelPlan(t))
			done <- err
		}()
		select {
		case <-dc.pinning:
		case <-time.After(2 * time.Second):
			t.Fatalf("workers=%d: pin never entered", workers)
		}
		close(cancel)
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("workers=%d: cancelled run returned nil error", workers)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("workers=%d: cancelled run did not return", workers)
		}
	}
}

// TestCancelBetweenInstructions checks a pre-cancelled context stops the
// run before any instruction executes.
func TestCancelBetweenInstructions(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	ran := false
	reg := NewRegistry()
	reg.Register("test", "touch", func(ctx *Context, args []Value) ([]Value, error) {
		ran = true
		return []Value{int64(1)}, nil
	})
	b := NewBuilder("precancelled")
	v := b.Emit("test", "touch")
	b.SetResult(v)
	ctx := &Context{Registry: reg, Cancel: cancel}
	if _, err := Run(ctx, b.MustBuild()); err != ErrCancelled {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if ran {
		t.Fatal("instruction executed despite cancelled context")
	}
}
