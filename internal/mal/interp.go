package mal

import (
	"errors"
	"fmt"
	"sync"
)

// ErrCancelled is returned by Run when the Context's Cancel channel
// closes before the plan completes.
var ErrCancelled = errors.New("mal: run cancelled")

// OpFunc implements one MAL operation. It receives the evaluated
// arguments and must return exactly as many values as the instruction
// declares results.
type OpFunc func(ctx *Context, args []Value) ([]Value, error)

// Registry maps "module.op" to implementations. The zero value is empty;
// NewRegistry returns one preloaded with the standard operator set.
type Registry struct {
	ops map[string]OpFunc
}

// Register installs fn for module.op, replacing any previous binding.
func (r *Registry) Register(module, op string, fn OpFunc) {
	if r.ops == nil {
		r.ops = make(map[string]OpFunc)
	}
	r.ops[module+"."+op] = fn
}

// Lookup returns the implementation for module.op.
func (r *Registry) Lookup(name string) (OpFunc, bool) {
	fn, ok := r.ops[name]
	return fn, ok
}

// Catalog resolves persistent column binds (sql.bind).
type Catalog interface {
	Bind(schema, table, column string) (Value, error)
}

// DCRuntime is the hook surface the datacyclotron.* instructions use to
// talk to the local Data Cyclotron layer (§4.1). Request registers
// interest and returns a handle; Pin blocks until the BAT is locally
// available; Unpin releases it.
type DCRuntime interface {
	Request(schema, table, column string) (Value, error)
	Pin(handle Value) (Value, error)
	Unpin(handle Value) error
}

// FragmentedDC is the optional extension of DCRuntime implemented by
// layers that deliver one request as several independently circulating
// fragments (horizontal fragmentation, §5's granularity axis). PinMap
// pins the fragments behind handle as they arrive — in any order —
// applies fn to each pinned fragment on a bounded worker pool, unpins
// the fragment once fn returns, and hands back the per-fragment results
// in fragment order (the order-preserving merge point). For a
// single-fragment handle it degenerates to pin/fn/unpin.
type FragmentedDC interface {
	DCRuntime
	PinMap(handle Value, fn func(frag Value) (Value, error)) ([]Value, error)
}

// Context carries the execution environment for one plan run.
type Context struct {
	Registry *Registry
	Catalog  Catalog
	DC       DCRuntime
	// Workers bounds dataflow parallelism; <=1 means sequential.
	Workers int
	// Cancel, when non-nil, aborts the run: once it closes, no further
	// instructions are dispatched and Run returns ErrCancelled. Blocking
	// operations (datacyclotron.pin) are expected to watch the same
	// channel so an abandoned query cannot strand an interpreter
	// goroutine on a pin that will never be delivered.
	Cancel <-chan struct{}
}

// cancelled reports whether the run's cancel channel has closed.
func (ctx *Context) cancelled() bool {
	if ctx.Cancel == nil {
		return false
	}
	select {
	case <-ctx.Cancel:
		return true
	default:
		return false
	}
}

// Run executes the plan and returns the value of its Result variable
// (nil if the plan declares none).
func Run(ctx *Context, p *Plan) (Value, error) {
	vals, err := RunAll(ctx, p)
	if err != nil {
		return nil, err
	}
	if p.Result == NoVar {
		return nil, nil
	}
	return vals[p.Result], nil
}

// RunAll executes the plan and returns the full variable table. With
// ctx.Workers > 1 instructions execute concurrently following dataflow
// dependencies, mirroring MonetDB's interpreter threads; pin() calls may
// block without stalling independent instruction threads.
func RunAll(ctx *Context, p *Plan) ([]Value, error) {
	if ctx.Registry == nil {
		return nil, fmt.Errorf("mal: nil registry")
	}
	if ctx.Workers <= 1 {
		return runSequential(ctx, p)
	}
	return runParallel(ctx, p)
}

func execInstr(ctx *Context, in Instr, vals []Value) (err error) {
	fn, ok := ctx.Registry.Lookup(in.Name())
	if !ok {
		return fmt.Errorf("mal: unknown operation %s", in.Name())
	}
	args := make([]Value, len(in.Args))
	for i, a := range in.Args {
		if a.lit {
			args[i] = a.Lit
		} else {
			args[i] = vals[a.Var]
		}
	}
	// Kernel operators panic on type/shape errors; surface those as
	// plan-level errors rather than crashing the engine.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mal: %s: %v", in.Name(), r)
		}
	}()
	out, err := fn(ctx, args)
	if err != nil {
		return fmt.Errorf("mal: %s: %w", in.Name(), err)
	}
	if len(out) != len(in.Ret) {
		return fmt.Errorf("mal: %s returned %d values, want %d", in.Name(), len(out), len(in.Ret))
	}
	for i, r := range in.Ret {
		vals[r] = out[i]
	}
	return nil
}

func runSequential(ctx *Context, p *Plan) ([]Value, error) {
	vals := make([]Value, p.NVars)
	for _, in := range p.Instrs {
		if ctx.cancelled() {
			return nil, ErrCancelled
		}
		if err := execInstr(ctx, in, vals); err != nil {
			return nil, err
		}
	}
	return vals, nil
}

// runParallel executes instructions as a dataflow graph with a bounded
// worker pool. An instruction becomes ready when every producing
// instruction of its arguments has completed; instructions with no
// variable arguments are ready immediately. Side-effecting instructions
// with no results (e.g. unpin) additionally order after the previous
// instruction that consumed the same variable, which the SSA structure
// already guarantees via argument dependencies.
func runParallel(ctx *Context, p *Plan) ([]Value, error) {
	n := len(p.Instrs)
	producer := make([]int, p.NVars) // instr index producing each var
	for i := range producer {
		producer[i] = -1
	}
	for i, in := range p.Instrs {
		for _, r := range in.Ret {
			producer[r] = i
		}
	}
	deps := make([][]int, n) // deps[i]: instrs that must finish first
	dependents := make([][]int, n)
	pending := make([]int, n)
	for i, in := range p.Instrs {
		seen := map[int]bool{}
		for _, a := range in.Args {
			if a.lit {
				continue
			}
			pr := producer[a.Var]
			if pr >= 0 && pr != i && !seen[pr] {
				seen[pr] = true
				deps[i] = append(deps[i], pr)
				dependents[pr] = append(dependents[pr], i)
			}
		}
		pending[i] = len(deps[i])
	}

	vals := make([]Value, p.NVars)
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	ready := make(chan int, n)
	for i := 0; i < n; i++ {
		if pending[i] == 0 {
			ready <- i
		}
	}
	workers := ctx.Workers
	if workers > n {
		workers = n
	}
	done := 0
	var doneMu sync.Mutex
	closeIfDone := func(k int) {
		doneMu.Lock()
		done += k
		if done >= n {
			close(ready)
		}
		doneMu.Unlock()
	}
	if n == 0 {
		close(ready)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if !failed && ctx.cancelled() {
					mu.Lock()
					if firstErr == nil {
						firstErr = ErrCancelled
					}
					mu.Unlock()
					failed = true
				}
				if !failed {
					if err := execInstr(ctx, p.Instrs[i], vals); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
				// Release dependents even on failure so the pool drains.
				mu.Lock()
				for _, d := range dependents[i] {
					pending[d]--
					if pending[d] == 0 {
						ready <- d
					}
				}
				mu.Unlock()
				closeIfDone(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return vals, nil
}
