// Package minisql implements a small SQL front-end — lexer, parser, and
// planner — that compiles SELECT queries into MAL plans, playing the role
// MonetDB's SQL compiler plays in the paper (§3.2). Query plans produced
// here use sql.bind for column access; the Data Cyclotron optimizer
// (package dcopt) then rewrites them into request/pin/unpin form.
//
// Supported grammar (a pragmatic subset sufficient for the paper's
// examples and the TPC-H-style workloads in this repository):
//
//	SELECT sel [, sel...]
//	FROM table [alias] [, table [alias]...]
//	[WHERE pred AND pred ...]
//	[GROUP BY col [, col...]]
//	[ORDER BY sel-ref [ASC|DESC]]
//	[LIMIT n]
//
//	sel  := col | SUM(col) | COUNT(*) | COUNT(col) | AVG(col)
//	      | MIN(col) | MAX(col)            [AS name]
//	pred := col op literal | col op col | col BETWEEN lit AND lit
//	op   := = | <> | != | < | <= | > | >=
package minisql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes a query string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits src into tokens. Keywords are returned as tokIdent; the
// parser matches them case-insensitively.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case strings.ContainsRune("(),.*", rune(c)):
			l.emit(tokSymbol, string(c))
			l.pos++
		case c == '=':
			l.emit(tokSymbol, "=")
			l.pos++
		case c == '<':
			if l.peekAt(1) == '=' {
				l.emit(tokSymbol, "<=")
				l.pos += 2
			} else if l.peekAt(1) == '>' {
				l.emit(tokSymbol, "<>")
				l.pos += 2
			} else {
				l.emit(tokSymbol, "<")
				l.pos++
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.emit(tokSymbol, ">=")
				l.pos += 2
			} else {
				l.emit(tokSymbol, ">")
				l.pos++
			}
		case c == '!':
			if l.peekAt(1) == '=' {
				l.emit(tokSymbol, "<>")
				l.pos += 2
			} else {
				return nil, fmt.Errorf("minisql: stray '!' at %d", l.pos)
			}
		case c == ';':
			l.pos++ // trailing semicolons are harmless
		default:
			return nil, fmt.Errorf("minisql: unexpected character %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				return fmt.Errorf("minisql: malformed number at %d", start)
			}
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.peekAt(1) == '\'' { // escaped quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("minisql: unterminated string at %d", start)
}
