package minisql

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/mal"
)

// Schema tells the planner which columns each table has, so unqualified
// column references can be resolved.
type Schema interface {
	// Columns returns the column names of table, or false when the
	// table does not exist.
	Columns(table string) ([]string, bool)
}

// MapSchema is the trivial in-memory Schema.
type MapSchema map[string][]string

// Columns implements Schema.
func (m MapSchema) Columns(table string) ([]string, bool) {
	cols, ok := m[table]
	return cols, ok
}

// Compile parses and plans src against schema. The emitted plan binds
// columns with sql.bind(schemaName, table, column); running it through
// dcopt.Rewrite converts it to Data Cyclotron form.
func Compile(src string, schema Schema, schemaName string) (*mal.Plan, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return PlanQuery(q, schema, schemaName)
}

// planner carries state while lowering one query to MAL.
type planner struct {
	b          *mal.Builder
	q          *Query
	schema     Schema
	schemaName string
	aliasTable map[string]string    // alias -> real table name
	binds      map[ColRef]mal.VarID // resolved col -> bind var
	bindOrder  []ColRef             // deterministic bind emission order
	bindings   map[string]mal.VarID // alias -> [pos|oid] BAT var
	bound      []string             // aliases joined so far, in order
}

// PlanQuery lowers a parsed query to a MAL plan.
func PlanQuery(q *Query, schema Schema, schemaName string) (*mal.Plan, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("minisql: no FROM tables")
	}
	p := &planner{
		b:          mal.NewBuilder("query"),
		q:          q,
		schema:     schema,
		schemaName: schemaName,
		aliasTable: map[string]string{},
		binds:      map[ColRef]mal.VarID{},
		bindings:   map[string]mal.VarID{},
	}
	for _, t := range q.From {
		if _, ok := schema.Columns(t.Name); !ok {
			return nil, fmt.Errorf("minisql: unknown table %q", t.Name)
		}
		if _, dup := p.aliasTable[t.Alias]; dup {
			return nil, fmt.Errorf("minisql: duplicate table alias %q", t.Alias)
		}
		p.aliasTable[t.Alias] = t.Name
	}
	if err := p.resolveAll(); err != nil {
		return nil, err
	}
	if err := p.plan(); err != nil {
		return nil, err
	}
	return p.b.Build()
}

// resolve fills in the table alias of an unqualified column reference.
func (p *planner) resolve(c *ColRef) error {
	if c.Table != "" {
		tbl, ok := p.aliasTable[c.Table]
		if !ok {
			return fmt.Errorf("minisql: unknown table or alias %q", c.Table)
		}
		if !hasColumn(p.schema, tbl, c.Column) {
			return fmt.Errorf("minisql: no column %q in table %q", c.Column, tbl)
		}
		return nil
	}
	var found string
	for alias, tbl := range p.aliasTable {
		if hasColumn(p.schema, tbl, c.Column) {
			if found != "" {
				return fmt.Errorf("minisql: ambiguous column %q (in %s and %s)", c.Column, found, alias)
			}
			found = alias
		}
	}
	if found == "" {
		return fmt.Errorf("minisql: unknown column %q", c.Column)
	}
	c.Table = found
	return nil
}

func hasColumn(s Schema, table, col string) bool {
	cols, ok := s.Columns(table)
	if !ok {
		return false
	}
	for _, c := range cols {
		if c == col {
			return true
		}
	}
	return false
}

func (p *planner) resolveAll() error {
	for i := range p.q.Select {
		it := &p.q.Select[i]
		if it.Star {
			continue
		}
		if err := p.resolve(&it.Col); err != nil {
			return err
		}
	}
	for i := range p.q.Where {
		w := &p.q.Where[i]
		if err := p.resolve(&w.Lhs); err != nil {
			return err
		}
		if w.RhsIsCol {
			if err := p.resolve(&w.RhsCol); err != nil {
				return err
			}
		}
	}
	for i := range p.q.GroupBy {
		if err := p.resolve(&p.q.GroupBy[i]); err != nil {
			return err
		}
	}
	return nil
}

// bind returns (emitting at most once) the sql.bind variable for c.
func (p *planner) bind(c ColRef) mal.VarID {
	if v, ok := p.binds[c]; ok {
		return v
	}
	tbl := p.aliasTable[c.Table]
	v := p.b.Emit("sql", "bind", mal.L(p.schemaName), mal.L(tbl), mal.L(c.Column))
	p.binds[c] = v
	p.bindOrder = append(p.bindOrder, c)
	return v
}

// anyColumn picks a referenced column for alias, or the first schema
// column, to seed the table's candidate list.
func (p *planner) anyColumn(alias string) ColRef {
	for _, c := range p.bindOrder {
		if c.Table == alias {
			return c
		}
	}
	cols, _ := p.schema.Columns(p.aliasTable[alias])
	return ColRef{Table: alias, Column: cols[0]}
}

// candidates builds the per-table candidate [oid|oid] BAT by applying
// all single-table predicates (selection push-down, §3.2).
func (p *planner) candidates(alias string) mal.VarID {
	var cand mal.VarID = mal.NoVar
	for _, w := range p.q.Where {
		if w.RhsIsCol || w.Lhs.Table != alias {
			continue
		}
		col := p.bind(w.Lhs)
		var sel mal.VarID
		switch {
		case w.Between:
			sel = p.b.Emit("algebra", "select", mal.V(col), mal.L(w.Lo), mal.L(w.Hi), mal.L(true), mal.L(true))
		case w.Op == OpEq:
			sel = p.b.Emit("algebra", "selectEq", mal.V(col), mal.L(w.Rhs))
		case w.Op == OpNe:
			sel = p.b.Emit("algebra", "selectNe", mal.V(col), mal.L(w.Rhs))
		case w.Op == OpLt:
			sel = p.b.Emit("algebra", "select", mal.V(col), mal.L(nil), mal.L(w.Rhs), mal.L(false), mal.L(false))
		case w.Op == OpLe:
			sel = p.b.Emit("algebra", "select", mal.V(col), mal.L(nil), mal.L(w.Rhs), mal.L(false), mal.L(true))
		case w.Op == OpGt:
			sel = p.b.Emit("algebra", "select", mal.V(col), mal.L(w.Rhs), mal.L(nil), mal.L(false), mal.L(false))
		case w.Op == OpGe:
			sel = p.b.Emit("algebra", "select", mal.V(col), mal.L(w.Rhs), mal.L(nil), mal.L(true), mal.L(false))
		}
		piece := p.b.Emit("bat", "mirror", mal.V(sel))
		if cand == mal.NoVar {
			cand = piece
		} else {
			cand = p.b.Emit("algebra", "semijoin", mal.V(cand), mal.V(piece))
		}
	}
	if cand == mal.NoVar {
		col := p.bind(p.anyColumn(alias))
		cand = p.b.Emit("bat", "mirror", mal.V(col))
	}
	return cand
}

func (p *planner) isBound(alias string) bool {
	_, ok := p.bindings[alias]
	return ok
}

// realign maps every existing binding through K ([pos|newPos] reversed),
// keeping all bound tables row-aligned after a join or filter step.
func (p *planner) realign(kr mal.VarID) {
	for _, alias := range p.bound {
		p.bindings[alias] = p.b.Emit("algebra", "join", mal.V(kr), mal.V(p.bindings[alias]))
	}
}

// plan drives the lowering: scans, joins, projection, grouping,
// ordering, limit, result construction.
func (p *planner) plan() error {
	// Pre-bind all referenced columns so requests can be issued early
	// (the DcOptimizer turns each bind into a datacyclotron.request).
	for _, it := range p.q.Select {
		if !it.Star {
			p.bind(it.Col)
		}
	}
	for _, w := range p.q.Where {
		p.bind(w.Lhs)
		if w.RhsIsCol {
			p.bind(w.RhsCol)
		}
	}
	for _, g := range p.q.GroupBy {
		p.bind(g)
	}

	// Candidate lists per table.
	cands := map[string]mal.VarID{}
	for _, t := range p.q.From {
		cands[t.Alias] = p.candidates(t.Alias)
	}

	// Seed with the first FROM table.
	first := p.q.From[0].Alias
	p.bindings[first] = cands[first]
	p.bound = []string{first}

	// Join predicates, processed greedily until all are consumed.
	type joinPred struct {
		l, r ColRef
		used bool
	}
	var joins []joinPred
	for _, w := range p.q.Where {
		if !w.RhsIsCol {
			continue
		}
		if w.Op != OpEq {
			return fmt.Errorf("minisql: only equality joins are supported, got %s", w.String())
		}
		if w.Lhs.Table == w.RhsCol.Table {
			return fmt.Errorf("minisql: self-comparison %s not supported", w.String())
		}
		joins = append(joins, joinPred{l: w.Lhs, r: w.RhsCol})
	}
	remaining := len(joins)
	for remaining > 0 {
		progressed := false
		for i := range joins {
			j := &joins[i]
			if j.used {
				continue
			}
			lb, rb := p.isBound(j.l.Table), p.isBound(j.r.Table)
			switch {
			case lb && rb:
				p.applyFilterJoin(j.l, j.r)
			case lb:
				p.applyJoin(j.l, j.r, cands[j.r.Table])
			case rb:
				p.applyJoin(j.r, j.l, cands[j.l.Table])
			default:
				continue
			}
			j.used = true
			remaining--
			progressed = true
		}
		if !progressed {
			return fmt.Errorf("minisql: disconnected join graph (cross joins not supported)")
		}
	}
	for _, t := range p.q.From {
		if !p.isBound(t.Alias) {
			if len(p.q.From) > 1 {
				return fmt.Errorf("minisql: table %q not connected by a join predicate", t.Alias)
			}
		}
	}

	// Output columns: [pos|value] per referenced select/group column.
	outCol := func(c ColRef) mal.VarID {
		return p.b.Emit("algebra", "join", mal.V(p.bindings[c.Table]), mal.V(p.bind(c)))
	}

	hasAgg := false
	for _, it := range p.q.Select {
		if it.Agg != AggNone {
			hasAgg = true
		}
	}
	if len(p.q.GroupBy) > 0 || hasAgg {
		return p.planAggregation(outCol)
	}

	// Plain projection.
	var names []string
	var outs []mal.VarID
	for _, it := range p.q.Select {
		names = append(names, it.Name())
		outs = append(outs, outCol(it.Col))
	}
	outs = p.applyOrderLimit(names, outs, func(ref ColRef) (mal.VarID, bool) {
		for i, it := range p.q.Select {
			if matchOrderRef(ref, it) {
				return outs[i], true
			}
		}
		return 0, false
	})
	p.emitResult(names, outs)
	return nil
}

// matchOrderRef matches an ORDER BY reference against a select item by
// alias, by column name, or by qualified name.
func matchOrderRef(ref ColRef, it SelectItem) bool {
	if ref.Table == "" {
		if it.Alias != "" && ref.Column == it.Alias {
			return true
		}
		return it.Agg == AggNone && it.Col.Column == ref.Column
	}
	return it.Agg == AggNone && it.Col == ref
}

// applyJoin joins the bound side (boundCol's table) with a new table.
func (p *planner) applyJoin(boundCol, newCol ColRef, newCand mal.VarID) {
	lhsVals := p.b.Emit("algebra", "join", mal.V(p.bindings[boundCol.Table]), mal.V(p.bind(boundCol)))
	rhsVals := p.b.Emit("algebra", "join", mal.V(newCand), mal.V(p.bind(newCol)))
	rhsRev := p.b.Emit("bat", "reverse", mal.V(rhsVals))
	j := p.b.Emit("algebra", "join", mal.V(lhsVals), mal.V(rhsRev)) // [pos|newOid]
	k := p.b.Emit("algebra", "markT", mal.V(j), mal.L(bat.Oid(0)))  // [pos|newPos]
	kr := p.b.Emit("bat", "reverse", mal.V(k))                      // [newPos|pos]
	p.realign(kr)
	p.bindings[newCol.Table] = p.b.Emit("algebra", "markH", mal.V(j), mal.L(bat.Oid(0)))
	p.bound = append(p.bound, newCol.Table)
}

// applyFilterJoin handles a join predicate between two already-bound
// tables (a cycle in the join graph) as a positional equality filter.
func (p *planner) applyFilterJoin(l, r ColRef) {
	lv := p.b.Emit("algebra", "join", mal.V(p.bindings[l.Table]), mal.V(p.bind(l)))
	rv := p.b.Emit("algebra", "join", mal.V(p.bindings[r.Table]), mal.V(p.bind(r)))
	f := p.b.Emit("calc", "eqselect", mal.V(lv), mal.V(rv)) // [pos|val] subset
	c := p.b.Emit("bat", "mirror", mal.V(f))                // [pos|pos]
	k := p.b.Emit("algebra", "markT", mal.V(c), mal.L(bat.Oid(0)))
	kr := p.b.Emit("bat", "reverse", mal.V(k))
	p.realign(kr)
}

// planAggregation lowers GROUP BY / scalar aggregate queries.
func (p *planner) planAggregation(outCol func(ColRef) mal.VarID) error {
	for _, it := range p.q.Select {
		if it.Agg == AggNone && !inGroupBy(p.q.GroupBy, it.Col) {
			return fmt.Errorf("minisql: column %s must appear in GROUP BY", it.Col)
		}
	}
	if len(p.q.GroupBy) == 0 {
		// Scalar aggregation: one row.
		var names []string
		var outs []mal.VarID
		for _, it := range p.q.Select {
			names = append(names, it.Name())
			var scalar mal.VarID
			switch {
			case it.Star:
				any := p.anyColumn(p.q.From[0].Alias)
				scalar = p.b.Emit("aggr", "count", mal.V(outCol(any)))
			default:
				v := outCol(it.Col)
				scalar = p.b.Emit("aggr", it.Agg.String(), mal.V(v))
			}
			outs = append(outs, p.b.Emit("bat", "fromScalar", mal.L(names[len(names)-1]), mal.V(scalar)))
		}
		p.emitResult(names, outs)
		return nil
	}

	// Grouped aggregation.
	keys := make([]mal.VarID, len(p.q.GroupBy))
	for i, g := range p.q.GroupBy {
		keys[i] = outCol(g)
	}
	groups, reps := p.b.Emit2("group", "newpos", mal.V(keys[0]))
	for _, k := range keys[1:] {
		groups, reps = p.b.Emit2("group", "derive", mal.V(groups), mal.V(k))
	}
	var names []string
	var outs []mal.VarID
	for _, it := range p.q.Select {
		names = append(names, it.Name())
		switch {
		case it.Agg == AggNone:
			// Representative key value per group: reps is [gid|pos],
			// key columns are [pos|val].
			idx := indexOfGroupBy(p.q.GroupBy, it.Col)
			outs = append(outs, p.b.Emit("algebra", "join", mal.V(reps), mal.V(keys[idx])))
		case it.Star:
			outs = append(outs, p.b.Emit("aggr", "groupedCount", mal.V(groups)))
		case it.Agg == AggCount:
			outs = append(outs, p.b.Emit("aggr", "groupedCount", mal.V(groups)))
		case it.Agg == AggSum:
			outs = append(outs, p.b.Emit("aggr", "groupedSum", mal.V(groups), mal.V(outCol(it.Col))))
		case it.Agg == AggAvg:
			outs = append(outs, p.b.Emit("aggr", "groupedAvg", mal.V(groups), mal.V(outCol(it.Col))))
		case it.Agg == AggMin:
			outs = append(outs, p.b.Emit("aggr", "groupedMin", mal.V(groups), mal.V(outCol(it.Col))))
		case it.Agg == AggMax:
			outs = append(outs, p.b.Emit("aggr", "groupedMax", mal.V(groups), mal.V(outCol(it.Col))))
		}
	}
	outs = p.applyOrderLimit(names, outs, func(ref ColRef) (mal.VarID, bool) {
		for i, it := range p.q.Select {
			if it.Alias != "" && ref.Table == "" && ref.Column == it.Alias {
				return outs[i], true
			}
			if it.Agg == AggNone && (it.Col == ref || (ref.Table == "" && it.Col.Column == ref.Column)) {
				return outs[i], true
			}
		}
		return 0, false
	})
	p.emitResult(names, outs)
	return nil
}

func inGroupBy(gb []ColRef, c ColRef) bool {
	for _, g := range gb {
		if g == c {
			return true
		}
	}
	return false
}

func indexOfGroupBy(gb []ColRef, c ColRef) int {
	for i, g := range gb {
		if g == c {
			return i
		}
	}
	return 0
}

// applyOrderLimit sorts all output columns by the ORDER BY key and then
// applies LIMIT, returning the rewritten output variables.
func (p *planner) applyOrderLimit(names []string, outs []mal.VarID, lookup func(ColRef) (mal.VarID, bool)) []mal.VarID {
	if p.q.Order != nil {
		if key, ok := lookup(p.q.Order.Ref); ok {
			sorted := p.b.Emit("algebra", "sort", mal.V(key), mal.L(p.q.Order.Desc))
			ord := p.b.Emit("bat", "mirror", mal.V(sorted)) // [pos|pos] in order
			for i := range outs {
				outs[i] = p.b.Emit("algebra", "join", mal.V(ord), mal.V(outs[i]))
			}
		}
	}
	if p.q.Limit >= 0 {
		for i := range outs {
			outs[i] = p.b.Emit("algebra", "slice", mal.V(outs[i]), mal.L(int64(0)), mal.L(int64(p.q.Limit)))
		}
	}
	return outs
}

func (p *planner) emitResult(names []string, outs []mal.VarID) {
	args := make([]mal.Arg, 0, 2*len(outs))
	for i := range outs {
		args = append(args, mal.L(names[i]), mal.V(outs[i]))
	}
	res := p.b.Emit("sql", "resultSet", args...)
	p.b.SetResult(res)
}
