package minisql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse converts a SELECT statement into its AST.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("minisql: trailing input at %s", p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// acceptKw consumes the next token when it is the given keyword.
func (p *parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("minisql: expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) acceptSym(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSym(sym string) error {
	if !p.acceptSym(sym) {
		return fmt.Errorf("minisql: expected %q, got %s", sym, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("minisql: expected identifier, got %s", t)
	}
	p.i++
	return t.text, nil
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"order": true, "by": true, "limit": true, "and": true, "as": true,
	"asc": true, "desc": true, "between": true,
}

func isKeyword(s string) bool { return keywords[strings.ToLower(s)] }

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tr := TableRef{Name: name, Alias: name}
		if p.acceptKw("as") {
			alias, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			tr.Alias = alias
		} else if t := p.peek(); t.kind == tokIdent && !isKeyword(t.text) {
			tr.Alias = p.next().text
		}
		q.From = append(q.From, tr)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("where") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if !p.acceptKw("and") {
				break
			}
		}
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		c, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		ob := &OrderBy{Ref: c}
		if p.acceptKw("desc") {
			ob.Desc = true
		} else {
			p.acceptKw("asc")
		}
		q.Order = ob
	}
	if p.acceptKw("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("minisql: expected number after LIMIT, got %s", t)
		}
		p.i++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("minisql: bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

var aggNames = map[string]AggKind{
	"sum": AggSum, "count": AggCount, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return SelectItem{}, fmt.Errorf("minisql: expected select expression, got %s", t)
	}
	if agg, ok := aggNames[strings.ToLower(t.text)]; ok &&
		p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
		p.i += 2 // agg name + "("
		item := SelectItem{Agg: agg}
		if p.acceptSym("*") {
			if agg != AggCount {
				return SelectItem{}, fmt.Errorf("minisql: %s(*) is not supported", agg)
			}
			item.Star = true
		} else {
			c, err := p.parseColRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = c
		}
		if err := p.expectSym(")"); err != nil {
			return SelectItem{}, err
		}
		if p.acceptKw("as") {
			alias, err := p.expectIdent()
			if err != nil {
				return SelectItem{}, err
			}
			item.Alias = alias
		}
		return item, nil
	}
	c, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Col: c}
	if p.acceptKw("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.acceptSym(".") {
		second, err := p.expectIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Column: second}, nil
	}
	return ColRef{Column: first}, nil
}

var cmpOps = map[string]CmpOp{
	"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parsePredicate() (Predicate, error) {
	lhs, err := p.parseColRef()
	if err != nil {
		return Predicate{}, err
	}
	if p.acceptKw("between") {
		lo, err := p.parseLiteral()
		if err != nil {
			return Predicate{}, err
		}
		if err := p.expectKw("and"); err != nil {
			return Predicate{}, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Lhs: lhs, Between: true, Lo: lo, Hi: hi}, nil
	}
	t := p.peek()
	op, ok := cmpOps[t.text]
	if t.kind != tokSymbol || !ok {
		return Predicate{}, fmt.Errorf("minisql: expected comparison operator, got %s", t)
	}
	p.i++
	rt := p.peek()
	if rt.kind == tokIdent && !isKeyword(rt.text) {
		rhs, err := p.parseColRef()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Lhs: lhs, Op: op, RhsCol: rhs, RhsIsCol: true}, nil
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Lhs: lhs, Op: op, Rhs: lit}, nil
}

func (p *parser) parseLiteral() (any, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("minisql: bad number %q", t.text)
			}
			return f, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("minisql: bad number %q", t.text)
		}
		return n, nil
	case tokString:
		p.i++
		return t.text, nil
	}
	return nil, fmt.Errorf("minisql: expected literal, got %s", t)
}
