package minisql

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/mal"
)

// --- lexer/parser tests ---

func TestLexBasics(t *testing.T) {
	toks, err := lex("select a.b, sum(x) from t where y >= 1.5 and z = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"select", "a", ".", "b", ",", "sum", "(", "x", ")",
		"from", "t", "where", "y", ">=", "1.5", "and", "z", "=", "it's"}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"select 'unterminated", "select #", "select 1.2.3 from t", "select !x from t"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q): expected error", src)
		}
	}
}

func TestParsePaperQuery(t *testing.T) {
	q, err := Parse("select c.t_id from t, c where c.t_id = t.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0].Col.String() != "c.t_id" {
		t.Fatalf("select = %+v", q.Select)
	}
	if len(q.From) != 2 || q.From[0].Name != "t" || q.From[1].Name != "c" {
		t.Fatalf("from = %+v", q.From)
	}
	if len(q.Where) != 1 || !q.Where[0].RhsIsCol {
		t.Fatalf("where = %+v", q.Where)
	}
}

func TestParseFull(t *testing.T) {
	q, err := Parse(`SELECT flag, SUM(qty) AS total, COUNT(*), AVG(price)
		FROM lineitem l
		WHERE shipdate <= 19980902 AND qty BETWEEN 1 AND 50
		GROUP BY flag, status ORDER BY total DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 4 {
		t.Fatalf("select = %d items", len(q.Select))
	}
	if q.Select[1].Alias != "total" || q.Select[1].Agg != AggSum {
		t.Fatalf("item 1 = %+v", q.Select[1])
	}
	if !q.Select[2].Star {
		t.Fatal("COUNT(*) not detected")
	}
	if q.From[0].Alias != "l" {
		t.Fatalf("alias = %q", q.From[0].Alias)
	}
	if !q.Where[1].Between || q.Where[1].Lo.(int64) != 1 {
		t.Fatalf("between = %+v", q.Where[1])
	}
	if len(q.GroupBy) != 2 {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	if q.Order == nil || !q.Order.Desc || q.Order.Ref.Column != "total" {
		t.Fatalf("order = %+v", q.Order)
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"select",
		"select x",
		"select x from",
		"select x from t where",
		"select x from t where y",
		"select x from t where y ==",
		"select x from t limit -1",
		"select x from t alias extra", // two trailing identifiers
		"select x from t group x",
		"select sum(*) from t",
		"select x from t where y between 1",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseOperators(t *testing.T) {
	ops := map[string]CmpOp{"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}
	for sym, want := range ops {
		q, err := Parse(fmt.Sprintf("select x from t where x %s 5", sym))
		if err != nil {
			t.Fatalf("%s: %v", sym, err)
		}
		if q.Where[0].Op != want {
			t.Errorf("%s parsed as %v, want %v", sym, q.Where[0].Op, want)
		}
	}
}

// --- planner execution tests ---

type memCatalog map[string]*bat.BAT

func (c memCatalog) Bind(schema, table, column string) (mal.Value, error) {
	b, ok := c[table+"."+column]
	if !ok {
		return nil, fmt.Errorf("no such column %s.%s", table, column)
	}
	return b, nil
}

func testDB() (Schema, memCatalog) {
	schema := MapSchema{
		"t":        {"id", "name"},
		"c":        {"t_id", "val"},
		"lineitem": {"orderkey", "qty", "price", "disc", "flag", "status", "shipdate"},
		"orders":   {"orderkey", "custkey", "odate"},
		"customer": {"custkey", "nation"},
	}
	cat := memCatalog{
		"t.id":   bat.MakeInts("t.id", []int64{1, 2, 3, 4}),
		"t.name": bat.MakeStrs("t.name", []string{"one", "two", "three", "four"}),

		"c.t_id": bat.MakeInts("c.t_id", []int64{2, 2, 3, 9}),
		"c.val":  bat.MakeInts("c.val", []int64{100, 200, 300, 400}),

		"lineitem.orderkey": bat.MakeInts("lineitem.orderkey", []int64{1, 1, 2, 3, 3, 3}),
		"lineitem.qty":      bat.MakeInts("lineitem.qty", []int64{10, 20, 5, 7, 8, 9}),
		"lineitem.price":    bat.MakeFloats("lineitem.price", []float64{100, 200, 50, 70, 80, 90}),
		"lineitem.disc":     bat.MakeFloats("lineitem.disc", []float64{0.1, 0, 0.2, 0, 0.05, 0}),
		"lineitem.flag":     bat.MakeStrs("lineitem.flag", []string{"A", "A", "N", "N", "A", "N"}),
		"lineitem.status":   bat.MakeStrs("lineitem.status", []string{"F", "O", "F", "F", "O", "F"}),
		"lineitem.shipdate": bat.MakeInts("lineitem.shipdate", []int64{19980101, 19980601, 19981001, 19970301, 19980301, 19990101}),

		"orders.orderkey": bat.MakeInts("orders.orderkey", []int64{1, 2, 3}),
		"orders.custkey":  bat.MakeInts("orders.custkey", []int64{7, 8, 7}),
		"orders.odate":    bat.MakeInts("orders.odate", []int64{19980101, 19980201, 19980301}),

		"customer.custkey": bat.MakeInts("customer.custkey", []int64{7, 8}),
		"customer.nation":  bat.MakeStrs("customer.nation", []string{"NL", "DE"}),
	}
	return schema, cat
}

func runSQL(t *testing.T, src string) *mal.ResultSet {
	t.Helper()
	schema, cat := testDB()
	plan, err := Compile(src, schema, "sys")
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	ctx := &mal.Context{Registry: mal.NewRegistry(), Catalog: cat}
	v, err := mal.Run(ctx, plan)
	if err != nil {
		t.Fatalf("Run(%q): %v\nplan:\n%s", src, err, plan)
	}
	return v.(*mal.ResultSet)
}

func TestExecPaperQuery(t *testing.T) {
	rs := runSQL(t, "select c.t_id from t, c where c.t_id = t.id")
	var got []int64
	for _, row := range rs.Rows() {
		got = append(got, row[0].(int64))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if want := []int64{2, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("result = %v, want %v", got, want)
	}
}

func TestExecSingleTableFilter(t *testing.T) {
	rs := runSQL(t, "select name from t where id >= 2 and id < 4")
	var got []string
	for _, row := range rs.Rows() {
		got = append(got, row[0].(string))
	}
	if want := []string{"two", "three"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("result = %v, want %v", got, want)
	}
}

func TestExecEqAndNe(t *testing.T) {
	rs := runSQL(t, "select val from c where t_id = 2")
	if rs.NumRows() != 2 {
		t.Fatalf("eq rows = %d, want 2", rs.NumRows())
	}
	rs = runSQL(t, "select val from c where t_id <> 2")
	if rs.NumRows() != 2 {
		t.Fatalf("ne rows = %d, want 2", rs.NumRows())
	}
}

func TestExecStringEq(t *testing.T) {
	rs := runSQL(t, "select qty from lineitem where flag = 'A'")
	if rs.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", rs.NumRows())
	}
}

func TestExecBetween(t *testing.T) {
	rs := runSQL(t, "select qty from lineitem where qty between 7 and 10")
	var got []int64
	for _, row := range rs.Rows() {
		got = append(got, row[0].(int64))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if want := []int64{7, 8, 9, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("between = %v, want %v", got, want)
	}
}

func TestExecScalarAggregates(t *testing.T) {
	rs := runSQL(t, "select sum(qty), count(*), min(qty), max(qty), avg(qty) from lineitem")
	row := rs.Row(0)
	if row[0].(int64) != 59 {
		t.Errorf("sum = %v, want 59", row[0])
	}
	if row[1].(int64) != 6 {
		t.Errorf("count = %v, want 6", row[1])
	}
	if row[2].(int64) != 5 || row[3].(int64) != 20 {
		t.Errorf("min/max = %v/%v", row[2], row[3])
	}
	if avg := row[4].(float64); avg < 9.8 || avg > 9.9 {
		t.Errorf("avg = %v", row[4])
	}
}

func TestExecGroupBySingle(t *testing.T) {
	rs := runSQL(t, "select flag, sum(qty) from lineitem group by flag order by flag")
	rows := rs.Rows()
	if len(rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(rows))
	}
	if rows[0][0] != "A" || rows[0][1].(int64) != 38 {
		t.Fatalf("group A = %v", rows[0])
	}
	if rows[1][0] != "N" || rows[1][1].(int64) != 21 {
		t.Fatalf("group N = %v", rows[1])
	}
}

func TestExecGroupByTwoKeys(t *testing.T) {
	// The TPC-H Q1 shape: two grouping columns.
	rs := runSQL(t, `select flag, status, sum(qty), count(*) from lineitem group by flag, status`)
	if rs.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3 (A/F, A/O, N/F)", rs.NumRows())
	}
	got := map[string]int64{}
	for _, row := range rs.Rows() {
		got[row[0].(string)+row[1].(string)] = row[2].(int64)
	}
	want := map[string]int64{"AF": 10, "AO": 28, "NF": 21}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("group %s = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
}

func TestExecThreeWayJoin(t *testing.T) {
	rs := runSQL(t, `select nation, sum(qty) from lineitem, orders, customer
		where lineitem.orderkey = orders.orderkey and orders.custkey = customer.custkey
		group by nation order by nation`)
	rows := rs.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// NL: orders 1 and 3 -> qty 10+20+7+8+9 = 54; DE: order 2 -> 5.
	if rows[0][0] != "DE" || rows[0][1].(int64) != 5 {
		t.Fatalf("DE = %v", rows[0])
	}
	if rows[1][0] != "NL" || rows[1][1].(int64) != 54 {
		t.Fatalf("NL = %v", rows[1])
	}
}

func TestExecOrderLimit(t *testing.T) {
	rs := runSQL(t, "select qty from lineitem order by qty desc limit 3")
	var got []int64
	for _, row := range rs.Rows() {
		got = append(got, row[0].(int64))
	}
	if want := []int64{20, 10, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("top3 = %v, want %v", got, want)
	}
}

func TestExecOrderByAlias(t *testing.T) {
	rs := runSQL(t, "select flag, sum(qty) as s from lineitem group by flag order by s desc")
	rows := rs.Rows()
	if rows[0][1].(int64) != 38 || rows[1][1].(int64) != 21 {
		t.Fatalf("order by alias wrong: %v", rows)
	}
}

func TestExecJoinWithFilters(t *testing.T) {
	rs := runSQL(t, `select t.name from t, c where c.t_id = t.id and c.val >= 200`)
	var got []string
	for _, row := range rs.Rows() {
		got = append(got, row[0].(string))
	}
	sort.Strings(got)
	if want := []string{"three", "two"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("result = %v, want %v", got, want)
	}
}

func TestExecTableAliases(t *testing.T) {
	rs := runSQL(t, "select a.name from t as a where a.id = 1")
	if rs.NumRows() != 1 || rs.Row(0)[0] != "one" {
		t.Fatalf("alias query wrong: %v", rs.Rows())
	}
}

func TestExecFloatPredicateOnIntColumn(t *testing.T) {
	rs := runSQL(t, "select qty from lineitem where qty > 8.5")
	if rs.NumRows() != 3 { // 10, 20, 9
		t.Fatalf("rows = %d, want 3", rs.NumRows())
	}
}

func TestPlanErrors(t *testing.T) {
	schema, _ := testDB()
	for _, src := range []string{
		"select x from nosuch",
		"select nosuch from t",
		"select t.nosuch from t",
		"select orderkey from lineitem, orders",   // ambiguous
		"select id from t, c",                     // cross join
		"select name from t group by id",          // name not grouped
		"select id from t, c where t.id < c.t_id", // non-equality join
		"select id from t, c where t.id = t.id",   // self comparison
		"select qty from lineitem, lineitem",      // duplicate alias
	} {
		if _, err := Compile(src, schema, "sys"); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestCompiledPlanShape(t *testing.T) {
	schema, _ := testDB()
	plan, err := Compile("select c.t_id from t, c where c.t_id = t.id", schema, "sys")
	if err != nil {
		t.Fatal(err)
	}
	text := plan.String()
	for _, want := range []string{"sql.bind", "algebra.join", "bat.reverse", "sql.resultSet"} {
		if !strings.Contains(text, want) {
			t.Fatalf("plan missing %s:\n%s", want, text)
		}
	}
}

func TestQueryStringRoundtripish(t *testing.T) {
	q, err := Parse("select a.x from tbl a where a.x = 5 and a.y between 1 and 2")
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"SELECT a.x", "FROM tbl a", "a.x = 5", "BETWEEN 1 AND 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
}

func TestParallelExecutionMatches(t *testing.T) {
	schema, cat := testDB()
	src := `select nation, sum(qty) from lineitem, orders, customer
		where lineitem.orderkey = orders.orderkey and orders.custkey = customer.custkey
		group by nation order by nation`
	plan, err := Compile(src, schema, "sys")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), Catalog: cat}, plan)
	if err != nil {
		t.Fatal(err)
	}
	par, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), Catalog: cat, Workers: 8}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.(*mal.ResultSet).Rows(), par.(*mal.ResultSet).Rows()) {
		t.Fatal("parallel result differs from sequential")
	}
}

func BenchmarkCompile(b *testing.B) {
	schema, _ := testDB()
	src := `select flag, status, sum(qty), avg(price) from lineitem
		where shipdate <= 19980902 group by flag, status order by flag`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src, schema, "sys"); err != nil {
			b.Fatal(err)
		}
	}
}
