package minisql

import "fmt"

// ColRef names a column, optionally qualified by a table name or alias.
type ColRef struct {
	Table  string // may be empty before resolution
	Column string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// AggKind enumerates the supported aggregate functions.
type AggKind int

// Aggregate functions.
const (
	AggNone AggKind = iota
	AggSum
	AggCount
	AggAvg
	AggMin
	AggMax
)

func (a AggKind) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return "none"
}

// SelectItem is one output expression.
type SelectItem struct {
	Agg   AggKind
	Col   ColRef // unused for COUNT(*)
	Star  bool   // COUNT(*)
	Alias string
}

// Name returns the output column label.
func (s SelectItem) Name() string {
	if s.Alias != "" {
		return s.Alias
	}
	if s.Agg != AggNone {
		if s.Star {
			return s.Agg.String() + "(*)"
		}
		return fmt.Sprintf("%s(%s)", s.Agg, s.Col)
	}
	return s.Col.String()
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Predicate is one conjunct of the WHERE clause. Either Rhs (a literal)
// or RhsCol (a column, making this a join predicate) is set.
type Predicate struct {
	Lhs      ColRef
	Op       CmpOp
	Rhs      any    // int64, float64, or string literal
	RhsCol   ColRef // join predicate when RhsIsCol
	RhsIsCol bool
	// Between predicates carry both bounds.
	Between bool
	Lo, Hi  any
}

func (p Predicate) String() string {
	if p.Between {
		return fmt.Sprintf("%s BETWEEN %v AND %v", p.Lhs, p.Lo, p.Hi)
	}
	if p.RhsIsCol {
		return fmt.Sprintf("%s %s %s", p.Lhs, p.Op, p.RhsCol)
	}
	return fmt.Sprintf("%s %s %v", p.Lhs, p.Op, p.Rhs)
}

// TableRef is a FROM-clause entry.
type TableRef struct {
	Name  string
	Alias string // equals Name when no alias given
}

// OrderBy sorts the result by one output column.
type OrderBy struct {
	Ref  ColRef // must match a select item (by alias or column name)
	Desc bool
}

// Query is the parsed SELECT statement.
type Query struct {
	Select  []SelectItem
	From    []TableRef
	Where   []Predicate
	GroupBy []ColRef
	Order   *OrderBy
	Limit   int // -1 when absent
}

func (q *Query) String() string {
	s := "SELECT "
	for i, it := range q.Select {
		if i > 0 {
			s += ", "
		}
		s += it.Name()
	}
	s += " FROM "
	for i, t := range q.From {
		if i > 0 {
			s += ", "
		}
		s += t.Name
		if t.Alias != t.Name {
			s += " " + t.Alias
		}
	}
	for i, p := range q.Where {
		if i == 0 {
			s += " WHERE "
		} else {
			s += " AND "
		}
		s += p.String()
	}
	return s
}
