package minisql

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Additional grammar coverage: corner cases of the lexer/parser that the
// execution tests do not reach.

func TestLexNumberForms(t *testing.T) {
	toks, err := lex("select 1 2.5 007 0.0")
	if err != nil {
		t.Fatal(err)
	}
	var nums []string
	for _, tk := range toks {
		if tk.kind == tokNumber {
			nums = append(nums, tk.text)
		}
	}
	want := []string{"1", "2.5", "007", "0.0"}
	for i := range want {
		if nums[i] != want[i] {
			t.Fatalf("nums = %v", nums)
		}
	}
}

func TestLexEscapedQuote(t *testing.T) {
	toks, err := lex("'a''b'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "a'b" {
		t.Fatalf("tok = %+v", toks[0])
	}
}

func TestLexTrailingSemicolon(t *testing.T) {
	q, err := Parse("select x from t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 1 {
		t.Fatal("semicolon broke parse")
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	q, err := Parse("SeLeCt x FrOm t WhErE x > 1 OrDeR bY x DeSc LiMiT 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Order == nil || !q.Order.Desc || q.Limit != 5 {
		t.Fatalf("parsed = %+v", q)
	}
}

func TestParseBetweenFloats(t *testing.T) {
	q, err := Parse("select x from t where d between 0.05 and 0.07")
	if err != nil {
		t.Fatal(err)
	}
	w := q.Where[0]
	if !w.Between || w.Lo.(float64) != 0.05 || w.Hi.(float64) != 0.07 {
		t.Fatalf("between = %+v", w)
	}
}

func TestParseStringPredicate(t *testing.T) {
	q, err := Parse("select x from t where name = 'it''s ok'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Rhs.(string) != "it's ok" {
		t.Fatalf("rhs = %q", q.Where[0].Rhs)
	}
}

func TestParseAliasedAggregates(t *testing.T) {
	q, err := Parse("select min(a) as lo, max(a) as hi, avg(a) from t group by b")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Alias != "lo" || q.Select[1].Alias != "hi" || q.Select[2].Agg != AggAvg {
		t.Fatalf("select = %+v", q.Select)
	}
	if q.Select[2].Name() != "avg(a)" {
		t.Fatalf("derived name = %q", q.Select[2].Name())
	}
}

func TestSelectItemNames(t *testing.T) {
	cases := []struct {
		item SelectItem
		want string
	}{
		{SelectItem{Col: ColRef{Table: "t", Column: "x"}}, "t.x"},
		{SelectItem{Agg: AggCount, Star: true}, "count(*)"},
		{SelectItem{Agg: AggSum, Col: ColRef{Column: "x"}}, "sum(x)"},
		{SelectItem{Alias: "z", Agg: AggMax, Col: ColRef{Column: "x"}}, "z"},
	}
	for _, c := range cases {
		if got := c.item.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestCmpOpStrings(t *testing.T) {
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	want := []string{"=", "<>", "<", "<=", ">", ">="}
	for i, op := range ops {
		if op.String() != want[i] {
			t.Errorf("op %d = %q", i, op.String())
		}
	}
}

func TestPredicateString(t *testing.T) {
	p := Predicate{Lhs: ColRef{Column: "x"}, Op: OpGe, Rhs: int64(5)}
	if p.String() != "x >= 5" {
		t.Fatalf("String = %q", p.String())
	}
	j := Predicate{Lhs: ColRef{Table: "a", Column: "x"}, Op: OpEq,
		RhsCol: ColRef{Table: "b", Column: "y"}, RhsIsCol: true}
	if j.String() != "a.x = b.y" {
		t.Fatalf("String = %q", j.String())
	}
}

// Property: the lexer never panics and either errors or terminates with
// an EOF token on arbitrary input.
func TestPropertyLexerTotal(t *testing.T) {
	f := func(src string) bool {
		toks, err := lex(src)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].kind == tokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary token soup built from
// SQL-ish fragments.
func TestPropertyParserTotal(t *testing.T) {
	frags := []string{"select", "from", "where", "group", "by", "order",
		"limit", "and", "x", "t", ",", ".", "(", ")", "*", "=", "<", "5",
		"'s'", "sum", "between", "as", "desc"}
	f := func(picks []uint8) bool {
		src := ""
		for _, p := range picks {
			src += frags[int(p)%len(frags)] + " "
		}
		_, err := Parse(src) // must not panic
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every successfully parsed query round-trips through String
// without panicking, and re-parsing simple single-table queries
// preserves the select list length.
func TestPropertySimpleQueryStable(t *testing.T) {
	for i := 0; i < 50; i++ {
		ncols := 1 + i%4
		src := "select "
		for c := 0; c < ncols; c++ {
			if c > 0 {
				src += ", "
			}
			src += fmt.Sprintf("c%d", c)
		}
		src += " from t where x > 1 limit 7"
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Select) != ncols || q.Limit != 7 {
			t.Fatalf("parse of %q lost structure", src)
		}
		_ = q.String()
	}
}
