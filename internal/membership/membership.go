// Package membership is the failure-detection layer of an elastic
// Data Cyclotron ring: each node sends small periodic heartbeat pulses
// to its ring successor (multiplexed over the existing data links) and
// times out the node it expects pulses *from* — its current
// predecessor. Verdicts are recorded in a monotonically versioned
// membership view that gossips around the ring with the beats, so every
// node converges on who is Alive, Suspect, or Dead without any central
// coordinator.
//
// The detector is a pure state machine, like core.Runtime: the live
// ring drives OnBeat/Pulse/Tick from its goroutines and real timers,
// and tests drive them directly. It performs no I/O, starts no
// goroutines, and never reads a clock — silence is counted in *ticks*,
// not wall time. That choice is deliberate: under CPU starvation (a
// loaded CI box, a saturated test run) the monitor's ticker coalesces
// exactly as much as the monitored node's beat loop stalls, so the
// silence counter and the heartbeats slow down together and the
// detector does not turn scheduler jitter into false-positive deaths.
package membership

import (
	"sync"
	"time"
)

// Status is one node's health in a membership view. The values form a
// lattice Alive < Suspect < Dead; views merge element-wise by maximum,
// which makes gossip convergent, and Dead is absorbing — this design
// has no rejoin, so a node declared dead stays dead (a restarted
// process joins as a new ring).
type Status uint8

// Status values.
const (
	Alive Status = iota
	Suspect
	Dead
)

func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return "invalid"
}

// View is a versioned membership snapshot: one status per ring
// position. Versions are monotone per holder — every local detection
// event bumps the version past everything seen so far, and merging
// adopts the maximum — so a consumer (the client's node-list cache, the
// stats plumbing) can order two views by version alone.
type View struct {
	Version int64
	Status  []Status
}

// Counts tallies the view by status.
func (v View) Counts() (alive, suspect, dead int) {
	for _, s := range v.Status {
		switch s {
		case Suspect:
			suspect++
		case Dead:
			dead++
		default:
			alive++
		}
	}
	return
}

// Clone copies the view (Status is shared state in the detector).
func (v View) Clone() View {
	return View{Version: v.Version, Status: append([]Status(nil), v.Status...)}
}

// Config tunes the detector. Thresholds are in missed heartbeat
// intervals: a predecessor silent for SuspectAfter intervals becomes
// Suspect, for DeadAfter intervals Dead. The two-step verdict is the
// timeout-count analogue of phi-accrual suspicion: Suspect is cheap to
// revert (one heartbeat), Dead triggers failover and is permanent.
type Config struct {
	// HeartbeatInterval is the pulse period.
	HeartbeatInterval time.Duration
	// SuspectAfter is how many silent intervals make a node Suspect.
	SuspectAfter int
	// DeadAfter is how many silent intervals make a node Dead. It must
	// exceed SuspectAfter; WithDefaults enforces it.
	DeadAfter int
	// Ring labels which ring this detector serves in a multi-ring
	// runtime ("hot", "cold"). Detectors are strictly per-ring — a hot
	// node's silence never implicates its cold siblings — and the label
	// keeps their verdicts distinguishable in stats and logs. Empty for
	// a standalone ring.
	Ring string
}

// DefaultConfig suits in-process rings: verdicts inside half a second.
func DefaultConfig() Config {
	return Config{HeartbeatInterval: 50 * time.Millisecond, SuspectAfter: 3, DeadAfter: 6}
}

// WithDefaults fills zero fields from DefaultConfig and enforces
// SuspectAfter < DeadAfter.
func (c Config) WithDefaults() Config {
	def := DefaultConfig()
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = def.HeartbeatInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = def.SuspectAfter
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter * 2
	}
	return c
}

// DeadTimeout is the silence that turns a predecessor Dead — the
// failure-detection latency floor (recovery gates are phrased as a
// multiple of it).
func (c Config) DeadTimeout() time.Duration {
	return time.Duration(c.DeadAfter) * c.HeartbeatInterval
}

// Detector is one node's membership state machine.
type Detector struct {
	mu   sync.Mutex
	self int
	cfg  Config

	view View

	// pred is the ring position this node currently receives beats
	// from; silent counts the Tick calls (heartbeat intervals) since
	// the last evidence of its life. A fresh predecessor starts at 0 —
	// a full timeout budget.
	pred   int
	silent int

	beats  int64 // direct heartbeats observed
	merges int64 // remote views merged

	// pendingDead accumulates positions a merge newly declared Dead,
	// drained by the public entry points (OnBeat, Adopt) after the
	// version bump so callers see deaths exactly once.
	pendingDead []int
}

// NewDetector builds the detector for ring position self of n nodes,
// initially monitoring pred.
func NewDetector(self, n, pred int, cfg Config) *Detector {
	return &Detector{
		self: self,
		cfg:  cfg.WithDefaults(),
		view: View{Status: make([]Status, n)},
		pred: pred,
	}
}

// Interval reports the heartbeat period.
func (d *Detector) Interval() time.Duration { return d.cfg.HeartbeatInterval }

// Ring reports the ring label this detector serves (empty for a
// standalone ring).
func (d *Detector) Ring() string { return d.cfg.Ring }

// View snapshots the membership view.
func (d *Detector) View() View {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.view.Clone()
}

// Beats reports how many direct heartbeats this detector has observed.
func (d *Detector) Beats() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.beats
}

// SetPredecessor switches the monitored neighbour — the ring was
// spliced around a dead node — and resets its silence count so the new
// predecessor starts with a full timeout budget.
func (d *Detector) SetPredecessor(pred int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pred = pred
	d.silent = 0
}

// Pulse records implicit evidence that the predecessor is alive — any
// message received on the data link counts, not just heartbeats. A
// node pushing bulk data is definitionally not dead, even when its
// explicit pulses are stuck behind that very data; treating traffic as
// liveness keeps a saturated link from reading as a silent one. Like a
// direct beat, it clears a Suspect verdict; Dead stays dead.
func (d *Detector) Pulse() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.silent = 0
	p := d.pred
	if p >= 0 && p < len(d.view.Status) && d.view.Status[p] == Suspect {
		d.view.Status[p] = Alive
		d.view.Version++
	}
}

// OnBeat records a heartbeat from node from carrying its view, and
// merges that view into the local one (element-wise status maximum,
// version maximum — the convergent gossip step). A beat from the
// monitored predecessor resets its timeout and clears a Suspect verdict
// (it was slow, not dead); Dead is never cleared. It returns the nodes
// the merge newly declared Dead, for the caller to fail over
// (idempotently — several nodes may learn of a death at once).
func (d *Detector) OnBeat(from int, remote View) (newlyDead []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if from < 0 || from >= len(d.view.Status) {
		return nil
	}
	d.beats++
	changed := false
	if from == d.pred {
		d.silent = 0
		if d.view.Status[from] == Suspect {
			d.view.Status[from] = Alive
			changed = true
		}
	}
	if d.mergeLocked(remote) {
		changed = true
	}
	if changed {
		d.view.Version++
	}
	return d.drainNewlyDead()
}

// mergeLocked folds a remote view into the local one: grow first if the
// remote is longer (a join extended the ring — new positions start with
// whatever the remote says about them), then merge the common prefix by
// element-wise status maximum and adopt the version maximum. A remote
// that is *shorter* is the same ring before the newcomer was admitted;
// its prefix still carries valid evidence, so it merges too — growth is
// monotone and never retracted. Reports whether any status changed.
// Statuses that newly became Dead are queued in pendingDead for the
// caller to drain. d.mu must be held.
func (d *Detector) mergeLocked(remote View) (changed bool) {
	if len(remote.Status) == 0 {
		return false
	}
	if len(remote.Status) > len(d.view.Status) {
		d.growLocked(len(remote.Status))
		changed = true
	}
	d.merges++
	n := len(remote.Status)
	if n > len(d.view.Status) {
		n = len(d.view.Status)
	}
	for i := 0; i < n; i++ {
		rs := remote.Status[i]
		if i == d.self {
			continue // nobody else's view outranks ours about ourselves
		}
		if rs > d.view.Status[i] {
			if rs == Dead {
				d.pendingDead = append(d.pendingDead, i)
			}
			d.view.Status[i] = rs
			changed = true
		}
	}
	if remote.Version > d.view.Version {
		d.view.Version = remote.Version
	}
	return changed
}

// growLocked extends the view to n ring positions; new positions start
// Alive (a joiner is admitted alive and earns its own verdicts). The
// version bump is the caller's responsibility. d.mu must be held.
func (d *Detector) growLocked(n int) {
	for len(d.view.Status) < n {
		d.view.Status = append(d.view.Status, Alive)
	}
}

// drainNewlyDead returns and clears the deaths queued by mergeLocked.
// d.mu must be held.
func (d *Detector) drainNewlyDead() []int {
	nd := d.pendingDead
	d.pendingDead = nil
	return nd
}

// Grow extends the membership view to n ring positions (monotone — a
// smaller n is a no-op). The ring's admission path calls it on every
// live detector when a joiner is accepted, the way failover calls
// MarkDead: the authoritative event lands everywhere at once and gossip
// only confirms. It reports whether the view actually grew.
func (d *Detector) Grow(n int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n <= len(d.view.Status) {
		return false
	}
	d.growLocked(n)
	d.view.Version++
	return true
}

// Adopt seeds the detector from a remote view out of band — the join
// handshake hands the newcomer the sponsor's current view before any
// beats flow. Unlike OnBeat it counts no heartbeat and resets no
// silence; it is a pure state merge. It returns the nodes the merge
// newly declared Dead (the seed may already carry death verdicts the
// caller must honour).
func (d *Detector) Adopt(remote View) (newlyDead []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.mergeLocked(remote) {
		d.view.Version++
	}
	return d.drainNewlyDead()
}

// Tick marks one heartbeat interval of silence elapsed and evaluates
// the predecessor timeout: SuspectAfter silent intervals make it
// Suspect, DeadAfter make it Dead. The caller invokes Tick once per
// interval from its beat timer; intervals the caller itself failed to
// run (scheduler starvation, ticker coalescing) simply do not count —
// a stalled accuser accumulates no evidence. It returns the nodes
// newly declared Dead (at most one — only the current predecessor is
// timed directly; everyone else's health arrives by gossip).
func (d *Detector) Tick() (newlyDead []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.pred
	if p < 0 || p >= len(d.view.Status) || p == d.self || d.view.Status[p] == Dead {
		return nil
	}
	d.silent++
	switch {
	case d.silent >= d.cfg.DeadAfter:
		d.view.Status[p] = Dead
		d.view.Version++
		return []int{p}
	case d.silent >= d.cfg.SuspectAfter:
		if d.view.Status[p] == Alive {
			d.view.Status[p] = Suspect
			d.view.Version++
		}
	}
	return nil
}

// MarkDead records an authoritative death verdict (the ring's failover
// declares it on every survivor, so gossip only confirms). It reports
// whether the verdict was news.
func (d *Detector) MarkDead(node int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if node < 0 || node >= len(d.view.Status) || d.view.Status[node] == Dead {
		return false
	}
	d.view.Status[node] = Dead
	d.view.Version++
	return true
}
