package membership

import (
	"testing"
	"time"
)

func cfg() Config {
	return Config{HeartbeatInterval: 10 * time.Millisecond, SuspectAfter: 3, DeadAfter: 6}
}

// tick drives n silent intervals and returns the last verdict.
func tick(d *Detector, n int) (dead []int) {
	for i := 0; i < n; i++ {
		dead = d.Tick()
	}
	return dead
}

func TestTickSuspectThenDead(t *testing.T) {
	d := NewDetector(1, 3, 0, cfg())
	if dead := tick(d, 2); dead != nil {
		t.Fatalf("2 intervals of silence: unexpected verdict %v", dead)
	}
	if got := d.View().Status[0]; got != Alive {
		t.Fatalf("status after 2 intervals = %v, want alive", got)
	}
	if dead := tick(d, 1); dead != nil {
		t.Fatalf("suspect threshold should not report dead, got %v", dead)
	}
	if got := d.View().Status[0]; got != Suspect {
		t.Fatalf("status after 3 intervals = %v, want suspect", got)
	}
	dead := tick(d, 3)
	if len(dead) != 1 || dead[0] != 0 {
		t.Fatalf("dead verdict = %v, want [0]", dead)
	}
	if got := d.View().Status[0]; got != Dead {
		t.Fatalf("status after 6 intervals = %v, want dead", got)
	}
	// Dead is sticky: further ticks and even direct beats change nothing.
	if dead := tick(d, 4); dead != nil {
		t.Fatalf("dead re-reported: %v", dead)
	}
	d.OnBeat(0, View{})
	if got := d.View().Status[0]; got != Dead {
		t.Fatalf("beat revived a dead node: %v", got)
	}
}

func TestBeatClearsSuspicion(t *testing.T) {
	d := NewDetector(1, 3, 0, cfg())
	tick(d, 3)
	if got := d.View().Status[0]; got != Suspect {
		t.Fatalf("status = %v, want suspect", got)
	}
	d.OnBeat(0, View{})
	if got := d.View().Status[0]; got != Alive {
		t.Fatalf("beat did not clear suspicion: %v", got)
	}
	// The beat reset the timeout: 5 more silent intervals is only
	// Suspect again, not Dead.
	if dead := tick(d, 5); dead != nil {
		t.Fatalf("beat did not reset the silence count: %v", dead)
	}
}

func TestPulseCountsAsLife(t *testing.T) {
	d := NewDetector(1, 3, 0, cfg())
	tick(d, 3)
	if got := d.View().Status[0]; got != Suspect {
		t.Fatalf("status = %v, want suspect", got)
	}
	// Implicit traffic — a data message, not a heartbeat — clears the
	// suspicion and resets the budget.
	d.Pulse()
	if got := d.View().Status[0]; got != Alive {
		t.Fatalf("pulse did not clear suspicion: %v", got)
	}
	if dead := tick(d, 5); dead != nil {
		t.Fatalf("pulse did not reset the silence count: %v", dead)
	}
	// Interleaved traffic keeps the predecessor alive indefinitely.
	d.Pulse()
	for i := 0; i < 50; i++ {
		if dead := tick(d, 2); dead != nil {
			t.Fatalf("round %d: verdict despite steady traffic: %v", i, dead)
		}
		d.Pulse()
	}
	if got := d.View().Status[0]; got != Alive {
		t.Fatalf("status under steady traffic = %v, want alive", got)
	}
}

func TestVersionMonotoneAndMergeConvergent(t *testing.T) {
	d := NewDetector(2, 4, 1, cfg())
	v0 := d.View().Version
	tick(d, 3) // suspect 1
	v1 := d.View().Version
	if v1 <= v0 {
		t.Fatalf("suspicion did not bump version: %d -> %d", v0, v1)
	}
	// Merge a remote view that knows node 0 is dead.
	remote := View{Version: 41, Status: []Status{Dead, Alive, Alive, Alive}}
	dead := d.OnBeat(1, remote)
	if len(dead) != 1 || dead[0] != 0 {
		t.Fatalf("merge verdicts = %v, want [0]", dead)
	}
	v := d.View()
	if v.Status[0] != Dead {
		t.Fatalf("merge lost the dead verdict: %v", v.Status)
	}
	if v.Version <= 41 {
		t.Fatalf("merged version %d not past remote 41", v.Version)
	}
	// Re-merging the same view is a no-op: convergent, no re-report.
	if dead := d.OnBeat(1, remote); dead != nil {
		t.Fatalf("idempotent merge re-reported %v", dead)
	}
	// A stale view (node 0 alive again) cannot demote the verdict.
	stale := View{Version: 1, Status: []Status{Alive, Alive, Alive, Alive}}
	d.OnBeat(1, stale)
	if got := d.View().Status[0]; got != Dead {
		t.Fatalf("stale merge demoted dead to %v", got)
	}
}

func TestSelfVerdictIgnoredOnMerge(t *testing.T) {
	d := NewDetector(1, 3, 0, cfg())
	remote := View{Version: 9, Status: []Status{Alive, Dead, Alive}}
	if dead := d.OnBeat(0, remote); dead != nil {
		t.Fatalf("merge declared self dead: %v", dead)
	}
	if got := d.View().Status[1]; got != Alive {
		t.Fatalf("self status = %v, want alive", got)
	}
}

func TestSetPredecessorResetsBudget(t *testing.T) {
	d := NewDetector(2, 4, 1, cfg())
	d.MarkDead(1)
	tick(d, 4) // inert: the monitored node is already dead
	d.SetPredecessor(0)
	// The new predecessor gets a full timeout budget from the splice.
	if dead := tick(d, 5); dead != nil {
		t.Fatalf("fresh predecessor timed out early: %v", dead)
	}
	dead := tick(d, 1)
	if len(dead) != 1 || dead[0] != 0 {
		t.Fatalf("new predecessor never timed out: %v", dead)
	}
}

func TestSelfLoopNeverTimesOut(t *testing.T) {
	// Last survivor: its predecessor is itself; Tick must be inert.
	d := NewDetector(0, 2, 0, cfg())
	if dead := tick(d, 1000); dead != nil {
		t.Fatalf("self-loop timed out: %v", dead)
	}
}

func TestMarkDead(t *testing.T) {
	d := NewDetector(0, 3, 2, cfg())
	v0 := d.View().Version
	if !d.MarkDead(1) {
		t.Fatal("first MarkDead not news")
	}
	if d.MarkDead(1) {
		t.Fatal("second MarkDead still news")
	}
	v := d.View()
	if v.Status[1] != Dead || v.Version <= v0 {
		t.Fatalf("MarkDead view = %+v", v)
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.HeartbeatInterval <= 0 || c.SuspectAfter <= 0 || c.DeadAfter <= c.SuspectAfter {
		t.Fatalf("bad defaults: %+v", c)
	}
	c = Config{HeartbeatInterval: time.Second, SuspectAfter: 5, DeadAfter: 2}.WithDefaults()
	if c.DeadAfter <= c.SuspectAfter {
		t.Fatalf("DeadAfter not enforced past SuspectAfter: %+v", c)
	}
}

func TestGrowExtendsViewMonotonically(t *testing.T) {
	d := NewDetector(1, 3, 0, cfg())
	v0 := d.View().Version
	if !d.Grow(4) {
		t.Fatal("Grow(4) on a 3-view reported no growth")
	}
	v := d.View()
	if len(v.Status) != 4 {
		t.Fatalf("view length = %d, want 4", len(v.Status))
	}
	if v.Status[3] != Alive {
		t.Fatalf("new position status = %v, want alive", v.Status[3])
	}
	if v.Version <= v0 {
		t.Fatalf("version %d did not advance past %d", v.Version, v0)
	}
	// Monotone: shrinking or same-size Grow is a no-op.
	if d.Grow(3) || d.Grow(4) {
		t.Fatal("Grow to a not-larger size reported growth")
	}
	if got := d.View().Version; got != v.Version {
		t.Fatalf("no-op Grow bumped version %d -> %d", v.Version, got)
	}
}

func TestOnBeatGrowsForLongerRemoteView(t *testing.T) {
	d := NewDetector(1, 3, 0, cfg())
	// A beat carrying a 4-wide view (the sender already admitted a
	// joiner) grows the local view and merges the remote statuses.
	remote := View{Version: 9, Status: []Status{Alive, Alive, Alive, Alive}}
	if dead := d.OnBeat(0, remote); dead != nil {
		t.Fatalf("unexpected deaths: %v", dead)
	}
	v := d.View()
	if len(v.Status) != 4 {
		t.Fatalf("view length after longer beat = %d, want 4", len(v.Status))
	}
	if v.Version <= 9 {
		t.Fatalf("version = %d, want > 9 (max then bump)", v.Version)
	}
	// A longer view may carry a death verdict for the new position.
	remote = View{Version: 20, Status: []Status{Alive, Alive, Alive, Alive, Dead}}
	dead := d.OnBeat(0, remote)
	if len(dead) != 1 || dead[0] != 4 {
		t.Fatalf("newlyDead = %v, want [4]", dead)
	}
	if got := d.View().Status[4]; got != Dead {
		t.Fatalf("grown position status = %v, want dead", got)
	}
}

func TestOnBeatMergesShorterRemotePrefix(t *testing.T) {
	d := NewDetector(3, 4, 2, cfg()) // the joiner: 4-wide view
	// A straggler still gossiping the pre-join 3-wide view carries a
	// valid death verdict in its prefix; it must merge, not be dropped.
	remote := View{Version: 5, Status: []Status{Dead, Alive, Alive}}
	dead := d.OnBeat(2, remote)
	if len(dead) != 1 || dead[0] != 0 {
		t.Fatalf("newlyDead = %v, want [0]", dead)
	}
	v := d.View()
	if len(v.Status) != 4 {
		t.Fatalf("shorter remote shrank the view to %d", len(v.Status))
	}
	if v.Status[0] != Dead {
		t.Fatalf("prefix verdict not merged: %v", v.Status[0])
	}
}

func TestAdoptSeedsJoinerView(t *testing.T) {
	d := NewDetector(3, 4, 2, cfg())
	seed := View{Version: 17, Status: []Status{Alive, Dead, Alive, Alive}}
	dead := d.Adopt(seed)
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("adopt newlyDead = %v, want [1]", dead)
	}
	v := d.View()
	if v.Status[1] != Dead || v.Version < 17 {
		t.Fatalf("adopt did not seed: %+v", v)
	}
	if b := d.Beats(); b != 0 {
		t.Fatalf("adopt counted %d beats, want 0", b)
	}
}
