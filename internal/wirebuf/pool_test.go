package wirebuf

import "testing"

func TestGetPutReuse(t *testing.T) {
	before := Stats()
	b := Get()
	if len(b) != 0 {
		t.Fatalf("Get returned %d-length buffer", len(b))
	}
	b = append(b, make([]byte, 4096)...)
	// Under the race detector sync.Pool deliberately drops a fraction
	// of Puts on the floor, so a single Put/Get pair is flaky there;
	// consecutive drops decay geometrically, so a few attempts make
	// the reuse deterministic in practice.
	reused := false
	for attempt := 0; attempt < 8 && !reused; attempt++ {
		Put(b)
		got := Get()
		reused = cap(got) >= 4096
		b = got[:0]
		if !reused {
			b = append(b, make([]byte, 4096)...)
		}
	}
	if !reused {
		t.Fatal("recycled buffer never handed back by Get")
	}
	after := Stats()
	if after.Puts <= before.Puts {
		t.Fatal("Put not counted")
	}
	if after.Hits <= before.Hits {
		t.Fatal("reuse not counted as a hit")
	}
}

func TestPutDropsEmptyAndGiant(t *testing.T) {
	before := Stats()
	Put(nil)
	Put(make([]byte, 0))
	Put(make([]byte, maxPooled+1))
	if got := Stats(); got.Puts != before.Puts {
		t.Fatalf("unpoolable buffers were counted: %+v vs %+v", got, before)
	}
}
