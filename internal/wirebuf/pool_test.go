package wirebuf

import "testing"

func TestGetPutReuse(t *testing.T) {
	before := Stats()
	b := Get()
	if len(b) != 0 {
		t.Fatalf("Get returned %d-length buffer", len(b))
	}
	b = append(b, make([]byte, 4096)...)
	Put(b)
	got := Get()
	if cap(got) < 4096 {
		// The pool may race with other tests' GC, but single-threaded
		// Get-after-Put should hand the buffer straight back.
		t.Fatalf("recycled buffer has cap %d, want >= 4096", cap(got))
	}
	after := Stats()
	if after.Puts <= before.Puts {
		t.Fatal("Put not counted")
	}
	if after.Hits <= before.Hits {
		t.Fatal("reuse not counted as a hit")
	}
}

func TestPutDropsEmptyAndGiant(t *testing.T) {
	before := Stats()
	Put(nil)
	Put(make([]byte, 0))
	Put(make([]byte, maxPooled+1))
	if got := Stats(); got.Puts != before.Puts {
		t.Fatalf("unpoolable buffers were counted: %+v vs %+v", got, before)
	}
}
