// Package wirebuf is the shared pool of wire-encode buffers. The live
// ring's SendData and the query service's result frames both produce
// short-lived serialized byte slices at high rate; recycling them
// through one sync.Pool keeps the encode paths allocation-free in
// steady state. Reuse is observable through Stats, the wire-level
// sibling of live's WireCacheStats.
package wirebuf

import (
	"sync"

	"repro/internal/metrics"
)

// maxPooled bounds the capacity of a buffer the pool will retain;
// larger one-off buffers (giant result sets) are left to the GC so a
// single monster query does not pin memory forever.
const maxPooled = 8 << 20

// pool holds *[]byte (boxed slice headers): storing a bare []byte in a
// sync.Pool re-boxes it into an interface on every Put — one heap
// allocation per recycle, exactly what this package exists to avoid
// (staticcheck SA6002). boxes recycles the emptied boxes themselves so
// steady state allocates nothing at all.
var (
	pool  = sync.Pool{New: func() any { return new([]byte) }}
	boxes = sync.Pool{New: func() any { return new([]byte) }}
)

var (
	hits   metrics.Counter // Get served by a recycled buffer
	misses metrics.Counter // Get had to start from a fresh allocation
	puts   metrics.Counter // buffers returned for reuse
)

// Get returns a zero-length buffer to append an encoding into. The
// returned slice may carry capacity from a previous encode.
func Get() []byte {
	p := pool.Get().(*[]byte)
	b := *p
	*p = nil
	boxes.Put(p)
	if cap(b) > 0 {
		hits.Inc()
	} else {
		misses.Inc()
	}
	return b[:0]
}

// Put returns a buffer obtained from Get (after its bytes have been
// consumed — written to a socket or copied into a registered region).
// The caller must not touch the slice afterwards.
func Put(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooled {
		return
	}
	puts.Inc()
	p := boxes.Get().(*[]byte)
	*p = b[:0]
	pool.Put(p)
}

// PoolStats snapshots the pool's reuse counters.
type PoolStats struct {
	Hits   int64 // Gets served from the pool
	Misses int64 // Gets that allocated fresh
	Puts   int64 // buffers recycled
}

// Stats reports cumulative reuse counters for the process.
func Stats() PoolStats {
	return PoolStats{Hits: hits.Get(), Misses: misses.Get(), Puts: puts.Get()}
}
