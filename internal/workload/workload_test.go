package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

func TestDatasetBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := DefaultDataset(10)
	specs := d.Build(rng)
	if len(specs) != 1000 {
		t.Fatalf("specs = %d", len(specs))
	}
	total := 0
	perNode := map[core.NodeID]int{}
	for i, s := range specs {
		if s.ID != core.BATID(i) {
			t.Fatalf("ids not sequential")
		}
		if s.Size < 1<<20 || s.Size > 10<<20 {
			t.Fatalf("size %d out of [1MB,10MB]", s.Size)
		}
		total += s.Size
		perNode[s.Owner]++
	}
	// ~8 GB raw dataset, ~0.8 GB per node ownership.
	if total < 4<<30 || total > 9<<30 {
		t.Fatalf("total dataset = %d bytes, want ~5.5GB", total)
	}
	if len(perNode) != 10 {
		t.Fatalf("owners = %d nodes", len(perNode))
	}
	for n, cnt := range perNode {
		if cnt != 100 {
			t.Fatalf("node %d owns %d BATs, want 100 (uniform)", n, cnt)
		}
	}
}

func TestDatasetDeterministic(t *testing.T) {
	d := DefaultDataset(10)
	a := d.Build(rand.New(rand.NewSource(42)))
	b := d.Build(rand.New(rand.NewSource(42)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("dataset generation not deterministic")
		}
	}
}

func ownersOf(specs []cluster.BATSpec) map[core.BATID]core.NodeID {
	m := map[core.BATID]core.NodeID{}
	for _, s := range specs {
		m[s.ID] = s.Owner
	}
	return m
}

func TestSyntheticBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := DefaultDataset(10)
	owners := ownersOf(d.Build(rng))
	cfg := DefaultSynthetic(10)
	cfg.Duration = 5 * time.Second // keep the test small
	specs := cfg.Build(rng, owners)
	if len(specs) != 10*80*5 {
		t.Fatalf("queries = %d, want 4000", len(specs))
	}
	ids := map[core.QueryID]bool{}
	for _, q := range specs {
		if ids[q.ID] {
			t.Fatal("duplicate query id")
		}
		ids[q.ID] = true
		if len(q.Steps) < 1 || len(q.Steps) > 5 {
			t.Fatalf("steps = %d", len(q.Steps))
		}
		if q.Arrival < 0 || q.Arrival > 6*time.Second {
			t.Fatalf("arrival = %v", q.Arrival)
		}
		seen := map[core.BATID]bool{}
		for _, s := range q.Steps {
			if seen[s.BAT] {
				t.Fatal("duplicate BAT within query")
			}
			seen[s.BAT] = true
			if owners[s.BAT] == q.Node {
				t.Fatal("query accesses a local BAT (must be remote only)")
			}
			if s.Proc < 100*time.Millisecond || s.Proc > 200*time.Millisecond {
				t.Fatalf("proc = %v", s.Proc)
			}
		}
	}
}

func TestGaussianPick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pick := GaussianPick(500, 50, 1000)
	counts := map[int]int{}
	inVogue := 0
	for i := 0; i < 10000; i++ {
		v := pick(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("pick out of range: %d", v)
		}
		counts[v]++
		if v >= 350 && v <= 650 {
			inVogue++
		}
	}
	// Nearly all mass within 3 sigma.
	if float64(inVogue)/10000 < 0.99 {
		t.Fatalf("in-vogue fraction = %v, want >0.99", float64(inVogue)/10000)
	}
	if counts[500] == 0 || counts[10] > counts[500] {
		t.Fatal("distribution not centered at 500")
	}
}

func TestDisjointTag(t *testing.T) {
	cases := map[int]string{
		3:  "dh1", // 3: only mult of 3
		9:  "dh4", // mult of 9 (and 3): DH4 ⊂ DH1
		5:  "dh2",
		7:  "dh3",
		15: "", // mult of 3 and 5: shared, not disjoint
		21: "", // 3 and 7
		35: "", // 5 and 7
		45: "", // 9 and 5
		63: "", // 9 and 7
		1:  "", // no workload at all
		6:  "dh1",
	}
	for id, want := range cases {
		if got := DisjointTag(id); got != want {
			t.Errorf("DisjointTag(%d) = %q, want %q", id, got, want)
		}
	}
}

func TestTable3Matches(t *testing.T) {
	ws := Table3()
	if len(ws) != 4 {
		t.Fatalf("workloads = %d", len(ws))
	}
	wantSkew := []int{3, 5, 7, 9}
	wantRate := []float64{200, 300, 400, 500}
	for i, w := range ws {
		if w.Skew != wantSkew[i] || w.Rate != wantRate[i] {
			t.Fatalf("workload %d = %+v", i, w)
		}
	}
	// 50% overlap between SW1 and SW2, 25% between SW2/SW3, 0 SW3/SW4.
	if ws[0].End-ws[1].Start != 15*time.Second {
		t.Fatal("SW1/SW2 overlap wrong")
	}
	if ws[2].Start != ws[3].Start-30*time.Second {
		t.Fatal("SW3/SW4 offset wrong")
	}
}

func TestBuildSkewedRespectsMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := DefaultDataset(10)
	d.TagOf = DisjointTag
	owners := ownersOf(d.Build(rng))
	specs := BuildSkewed(rng, Table3(), 10, 1000, owners)
	if len(specs) == 0 {
		t.Fatal("no queries")
	}
	for _, q := range specs {
		var skew int
		switch q.Tag {
		case "sw1":
			skew = 3
		case "sw2":
			skew = 5
		case "sw3":
			skew = 7
		case "sw4":
			skew = 9
		default:
			t.Fatalf("unexpected tag %q", q.Tag)
		}
		for _, s := range q.Steps {
			if int(s.BAT)%skew != 0 {
				t.Fatalf("%s query uses BAT %d (not in D)", q.Tag, s.BAT)
			}
		}
	}
}

func TestEndToEndSmallRun(t *testing.T) {
	// A miniature §5.1 run: everything wired together.
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	c := cluster.New(cfg)
	rng := rand.New(rand.NewSource(5))
	d := DatasetConfig{NumBATs: 64, MinSize: 1 << 20, MaxSize: 2 << 20, Nodes: 4}
	owners := Populate(c, d.Build(rng))
	s := SyntheticConfig{
		Nodes: 4, Rate: 20, Duration: 2 * time.Second,
		MinBATs: 1, MaxBATs: 3,
		MinProc: 10 * time.Millisecond, MaxProc: 20 * time.Millisecond,
		NumBATs: 64,
	}
	specs := s.Build(rng, owners)
	Submit(c, specs)
	c.Run(2 * time.Minute)
	if c.QueriesDone() != len(specs) {
		t.Fatalf("done = %d / %d", c.QueriesDone(), len(specs))
	}
	if c.Metrics().Errors != 0 {
		t.Fatalf("errors = %d", c.Metrics().Errors)
	}
}
