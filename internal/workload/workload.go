// Package workload builds the datasets and query streams of the paper's
// evaluation (§5): the uniform 8 GB / 1000-BAT dataset, the §5.1
// synthetic query mix, the Table-3 skewed workloads, and the §5.3
// Gaussian access pattern. All generation is driven by a seeded
// math/rand.Rand, so every experiment is reproducible.
package workload

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// DatasetConfig describes the base dataset of §5: BATs with sizes
// uniform in [MinSize, MaxSize], uniformly distributed over the nodes.
type DatasetConfig struct {
	NumBATs int
	MinSize int
	MaxSize int
	Nodes   int
	// TagOf optionally labels BATs (used by the skewed workloads to
	// track disjoint hot sets).
	TagOf func(id int) string
}

// DefaultDataset is the paper's 8 GB raw dataset: 1000 BATs, 1-10 MB.
func DefaultDataset(nodes int) DatasetConfig {
	return DatasetConfig{
		NumBATs: 1000,
		MinSize: 1 << 20,
		MaxSize: 10 << 20,
		Nodes:   nodes,
	}
}

// Build materializes the dataset into BAT specs. Owners are assigned
// round-robin after a seeded shuffle ("randomly assigned to nodes").
func (d DatasetConfig) Build(rng *rand.Rand) []cluster.BATSpec {
	specs := make([]cluster.BATSpec, d.NumBATs)
	perm := rng.Perm(d.NumBATs)
	for i := 0; i < d.NumBATs; i++ {
		size := d.MinSize
		if d.MaxSize > d.MinSize {
			size += rng.Intn(d.MaxSize - d.MinSize + 1)
		}
		tag := ""
		if d.TagOf != nil {
			tag = d.TagOf(i)
		}
		specs[i] = cluster.BATSpec{
			ID:    core.BATID(i),
			Size:  size,
			Owner: core.NodeID(perm[i] % d.Nodes),
			Tag:   tag,
		}
	}
	return specs
}

// Populate adds every spec to the cluster.
func Populate(c *cluster.Cluster, specs []cluster.BATSpec) map[core.BATID]core.NodeID {
	owners := make(map[core.BATID]core.NodeID, len(specs))
	for _, s := range specs {
		c.AddBAT(s)
		owners[s.ID] = s.Owner
	}
	return owners
}

// SyntheticConfig describes the §5.1 query stream: Rate queries per
// second fired at each node for Duration, each accessing between
// MinBATs and MaxBATs distinct remote BATs, scoring each with a
// processing time uniform in [MinProc, MaxProc].
type SyntheticConfig struct {
	Nodes    int
	Rate     float64 // queries per second per node (paper: 80)
	Duration time.Duration
	MinBATs  int // paper: 1
	MaxBATs  int // paper: 5
	MinProc  time.Duration
	MaxProc  time.Duration
	// Pick chooses a BAT id given the generator; nil means uniform over
	// [0, NumBATs). The Gaussian workload of §5.3 substitutes a normal
	// distribution here.
	Pick    func(rng *rand.Rand) int
	NumBATs int
	Tag     string
	// Start shifts all arrivals (used by the skewed workloads).
	Start time.Duration
	// FirstID seeds query ids to keep streams disjoint.
	FirstID int64
}

// DefaultSynthetic is the §5.1 setup: 80 q/s on each of 10 nodes for
// 60 s (48 000 queries), 1-5 BATs, 100-200 ms per BAT.
func DefaultSynthetic(nodes int) SyntheticConfig {
	return SyntheticConfig{
		Nodes:    nodes,
		Rate:     80,
		Duration: 60 * time.Second,
		MinBATs:  1,
		MaxBATs:  5,
		MinProc:  100 * time.Millisecond,
		MaxProc:  200 * time.Millisecond,
		NumBATs:  1000,
	}
}

// Build generates the query stream. Queries access remote BATs only
// ("we are primarily interested in the adaptive behavior of the ring
// structure itself", §5), so picks owned by the query's node are
// rejected and redrawn.
func (s SyntheticConfig) Build(rng *rand.Rand, owners map[core.BATID]core.NodeID) []cluster.QuerySpec {
	perNode := int(s.Rate * s.Duration.Seconds())
	var specs []cluster.QuerySpec
	id := s.FirstID
	pick := s.Pick
	if pick == nil {
		pick = func(rng *rand.Rand) int { return rng.Intn(s.NumBATs) }
	}
	interval := time.Duration(float64(time.Second) / s.Rate)
	for node := 0; node < s.Nodes; node++ {
		for k := 0; k < perNode; k++ {
			// Jittered arrivals around the nominal rate.
			arrival := s.Start + time.Duration(k)*interval +
				time.Duration(rng.Int63n(int64(interval)))
			n := s.MinBATs
			if s.MaxBATs > s.MinBATs {
				n += rng.Intn(s.MaxBATs - s.MinBATs + 1)
			}
			steps := make([]cluster.Step, 0, n)
			seen := map[int]bool{}
			for len(steps) < n {
				b := pick(rng)
				if b < 0 {
					b = 0
				}
				if b >= s.NumBATs {
					b = s.NumBATs - 1
				}
				if seen[b] {
					continue
				}
				if owners[core.BATID(b)] == core.NodeID(node) {
					continue // remote BATs only
				}
				seen[b] = true
				proc := s.MinProc
				if s.MaxProc > s.MinProc {
					proc += time.Duration(rng.Int63n(int64(s.MaxProc - s.MinProc)))
				}
				steps = append(steps, cluster.Step{BAT: core.BATID(b), Proc: proc})
			}
			specs = append(specs, cluster.QuerySpec{
				ID:      core.QueryID(id),
				Node:    core.NodeID(node),
				Arrival: arrival,
				Steps:   steps,
				Tag:     s.Tag,
			})
			id++
		}
	}
	return specs
}

// GaussianPick returns a §5.3 BAT chooser: ids drawn from N(mean, std),
// clamped to [0, n).
func GaussianPick(mean, std float64, n int) func(*rand.Rand) int {
	return func(rng *rand.Rand) int {
		v := int(math.Round(rng.NormFloat64()*std + mean))
		if v < 0 {
			v = 0
		}
		if v >= n {
			v = n - 1
		}
		return v
	}
}

// ---------------------------------------------------------------------
// Skewed workloads (§5.2, Table 3)
// ---------------------------------------------------------------------

// SkewedWorkload is one SW row of Table 3.
type SkewedWorkload struct {
	Name  string
	Skew  int // D_i = BATs whose id % Skew == 0
	Start time.Duration
	End   time.Duration
	Rate  float64 // queries per second over the whole ring
	Tag   string
}

// Table3 returns the four workloads exactly as specified.
func Table3() []SkewedWorkload {
	return []SkewedWorkload{
		{Name: "SW1", Skew: 3, Start: 0, End: 30 * time.Second, Rate: 200, Tag: "sw1"},
		{Name: "SW2", Skew: 5, Start: 15 * time.Second, End: 45 * time.Second, Rate: 300, Tag: "sw2"},
		{Name: "SW3", Skew: 7, Start: 37500 * time.Millisecond, End: 67500 * time.Millisecond, Rate: 400, Tag: "sw3"},
		{Name: "SW4", Skew: 9, Start: 67500 * time.Millisecond, End: 97500 * time.Millisecond, Rate: 500, Tag: "sw4"},
	}
}

// DisjointTag labels a BAT id with the disjoint hot set DH_i it belongs
// to, per §5.2: DH_i ⊆ D_i and disjoint from the other workloads' data,
// except DH4 ⊂ DH1 (every multiple of 9 is a multiple of 3).
func DisjointTag(id int) string {
	m3, m5, m7, m9 := id%3 == 0, id%5 == 0, id%7 == 0, id%9 == 0
	switch {
	case m9 && !m5 && !m7:
		return "dh4"
	case m7 && !m3 && !m5:
		return "dh3"
	case m5 && !m3 && !m7:
		return "dh2"
	case m3 && !m5 && !m7:
		return "dh1"
	}
	return ""
}

// BuildSkewed generates the query streams of all Table-3 workloads.
// Each SW_i accesses its D_i uniformly; queries use 1-5 distinct remote
// BATs with the §5.1 processing times.
func BuildSkewed(rng *rand.Rand, workloads []SkewedWorkload, nodes, numBATs int, owners map[core.BATID]core.NodeID) []cluster.QuerySpec {
	var specs []cluster.QuerySpec
	id := int64(0)
	for _, w := range workloads {
		var members []int
		for b := 0; b < numBATs; b++ {
			if b%w.Skew == 0 {
				members = append(members, b)
			}
		}
		cfg := SyntheticConfig{
			Nodes:    nodes,
			Rate:     w.Rate / float64(nodes),
			Duration: w.End - w.Start,
			MinBATs:  1,
			MaxBATs:  5,
			MinProc:  100 * time.Millisecond,
			MaxProc:  200 * time.Millisecond,
			NumBATs:  numBATs,
			Tag:      w.Tag,
			Start:    w.Start,
			FirstID:  id,
			Pick: func(rng *rand.Rand) int {
				return members[rng.Intn(len(members))]
			},
		}
		batch := cfg.Build(rng, owners)
		specs = append(specs, batch...)
		id += int64(len(batch)) + 1
	}
	return specs
}

// Submit feeds every query spec into the cluster.
func Submit(c *cluster.Cluster, specs []cluster.QuerySpec) {
	for _, q := range specs {
		c.Submit(q)
	}
}
