package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfShape checks the empirical head mass of a skewed draw
// against the analytic CDF: the top 1% of keys must carry their
// analytic share of the accesses within a small tolerance, and a
// θ=0 draw must stay uniform.
func TestZipfShape(t *testing.T) {
	const n, draws = 1000, 200_000
	for _, theta := range []float64{0, 0.8, 1.0, 1.2} {
		z := NewZipf(n, theta)
		rng := rand.New(rand.NewSource(42))
		top := n / 100 // top 1%
		hits := 0
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			k := z.Draw(rng)
			if k < 0 || k >= n {
				t.Fatalf("theta=%v: draw %d out of range", theta, k)
			}
			counts[k]++
			if k < top {
				hits++
			}
		}
		want := z.Mass(top)
		got := float64(hits) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("theta=%v: top-1%% mass %.4f, want %.4f ±0.01", theta, got, want)
		}
		// Monotone head: with real skew the hottest key must beat the
		// median key by a wide margin.
		if theta >= 0.8 && counts[0] < 5*counts[n/2] {
			t.Errorf("theta=%v: head %d not dominating median %d", theta, counts[0], counts[n/2])
		}
	}
}

// TestZipfDeterministic pins the generator to its seed: same seed,
// same stream — the reproducibility contract every experiment relies
// on.
func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(500, 1.1)
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if x, y := z.Draw(a), z.Draw(b); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

// TestZipfEdges exercises the clamps: tiny key spaces, negative theta,
// and the Mass bounds.
func TestZipfEdges(t *testing.T) {
	z := NewZipf(0, -1)
	if z.N() != 1 {
		t.Fatalf("n clamp: got %d", z.N())
	}
	rng := rand.New(rand.NewSource(1))
	if k := z.Draw(rng); k != 0 {
		t.Fatalf("single-key draw: got %d", k)
	}
	if z.Mass(0) != 0 || z.Mass(10) != 1 {
		t.Fatalf("mass bounds: %v %v", z.Mass(0), z.Mass(10))
	}
	// Uniform check: theta=0 gives Mass(m) = m/n exactly.
	u := NewZipf(100, 0)
	if got := u.Mass(25); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("uniform mass: got %v", got)
	}
}
