package workload

// Zipf access patterns: the skew axis of the hot/cold tiering
// experiments. A Zipf(θ) draw over n keys picks key k with probability
// proportional to 1/(k+1)^θ — θ=0 is uniform, θ≈1 concentrates most of
// the mass on a small head, the regime where a fast hot ring pays off.
// The generator is a precomputed CDF walked by binary search: exact
// for every θ >= 0 (math/rand's built-in Zipf requires s > 1 and a
// different parameterization), deterministic under a seeded rand.Rand,
// and O(log n) per draw.

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf draws keys in [0, n) with P(k) ∝ 1/(k+1)^theta.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf(theta) distribution over n keys. theta = 0
// degenerates to uniform; negative theta is clamped to 0.
func NewZipf(n int, theta float64) *Zipf {
	if n < 1 {
		n = 1
	}
	if theta < 0 {
		theta = 0
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -theta)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N reports the key-space size.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw picks one key using rng.
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Mass reports the total probability mass of the top m keys (the head
// of the distribution) — what the shape tests and the tier experiments
// assert skew against.
func (z *Zipf) Mass(m int) float64 {
	if m <= 0 {
		return 0
	}
	if m >= len(z.cdf) {
		return 1
	}
	return z.cdf[m-1]
}

// ZipfPick adapts a Zipf draw to the SyntheticConfig.Pick contract, so
// the simulator's query streams can run skewed access patterns next to
// the §5.3 Gaussian one.
func ZipfPick(n int, theta float64) func(*rand.Rand) int {
	z := NewZipf(n, theta)
	return func(rng *rand.Rand) int { return z.Draw(rng) }
}
