// Package netsim models the storage-ring network used by the Data
// Cyclotron evaluation: point-to-point duplex links with configurable
// bandwidth, propagation delay, and byte-capacity DropTail queues.
//
// It reproduces the subset of NS-2 the paper relies on. A Link is a
// unidirectional pipe: messages are serialized onto the wire at the link
// bandwidth (one at a time, FIFO), spend the propagation delay in flight,
// and are then handed to the receiver's callback. Messages that do not
// fit in the transmit queue are dropped from the tail, exactly like the
// DropTail policy in the paper's setup.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Message is anything that can be shipped over a Link. WireSize is the
// number of bytes the message occupies on the wire (payload + header).
type Message interface {
	WireSize() int
}

// Stats aggregates per-link counters.
type Stats struct {
	Sent      uint64 // messages accepted for transmission
	Delivered uint64 // messages handed to the receiver
	Dropped   uint64 // messages rejected by DropTail
	Bytes     uint64 // payload bytes delivered
	MaxQueued int    // high-water mark of queued bytes
}

// LinkConfig describes one unidirectional link.
type LinkConfig struct {
	// Bandwidth in bytes per second. The paper uses 10 Gb/s = 1.25 GB/s.
	Bandwidth float64
	// Delay is the propagation delay (paper: 350 microseconds).
	Delay time.Duration
	// QueueCap is the transmit queue capacity in bytes. Zero means
	// unbounded. The paper gives each node 200 MB of BAT queue.
	QueueCap int
}

// DefaultLinkConfig mirrors the paper's base topology parameters.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		Bandwidth: 1.25e9, // 10 Gb/s
		Delay:     350 * time.Microsecond,
		QueueCap:  200 << 20, // 200 MB
	}
}

// Link is a unidirectional FIFO pipe between two nodes.
type Link struct {
	sim     *sim.Simulator
	cfg     LinkConfig
	deliver func(Message)

	queued    int // bytes waiting or being serialized
	busyUntil sim.Time
	stats     Stats

	// faults, when attached, is consulted before every send (see
	// SetFaults in faults.go). Nil injects nothing.
	faults *Faults
}

// NewLink creates a link that hands arriving messages to deliver.
func NewLink(s *sim.Simulator, cfg LinkConfig, deliver func(Message)) *Link {
	if cfg.Bandwidth <= 0 {
		panic("netsim: non-positive bandwidth")
	}
	if deliver == nil {
		panic("netsim: nil deliver callback")
	}
	return &Link{sim: s, cfg: cfg, deliver: deliver}
}

// Queued reports the bytes currently held by the transmit queue,
// including the message being serialized.
func (l *Link) Queued() int { return l.queued }

// QueueCap reports the configured queue capacity (0 = unbounded).
func (l *Link) QueueCap() int { return l.cfg.QueueCap }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() Stats { return l.stats }

// SerializationTime reports how long size bytes occupy the wire.
func (l *Link) SerializationTime(size int) time.Duration {
	return time.Duration(float64(size) / l.cfg.Bandwidth * float64(time.Second))
}

// Send enqueues m for transmission. It reports false when the DropTail
// queue rejects the message. force bypasses the capacity check; the ring
// uses it for in-flight BATs, which by protocol are never dropped once
// admitted to the hot set (the asynchronous channels of §4.3 guarantee
// ordered, lossless forwarding of admitted data).
func (l *Link) Send(m Message, force bool) bool {
	size := m.WireSize()
	if size < 0 {
		panic(fmt.Sprintf("netsim: negative wire size %d", size))
	}
	var faultDelay time.Duration
	if l.faults != nil {
		delay, drop := l.faults.Apply(size)
		if drop {
			l.stats.Dropped++
			return false
		}
		faultDelay = delay
	}
	if !force && l.cfg.QueueCap > 0 && l.queued+size > l.cfg.QueueCap {
		l.stats.Dropped++
		return false
	}
	l.queued += size
	if l.queued > l.stats.MaxQueued {
		l.stats.MaxQueued = l.queued
	}
	l.stats.Sent++

	// Serialization starts when the wire frees up.
	start := l.busyUntil
	if now := l.sim.Now(); start < now {
		start = now
	}
	ser := l.SerializationTime(size)
	done := start.Add(ser)
	l.busyUntil = done
	arrive := done.Add(l.cfg.Delay + faultDelay)
	l.sim.ScheduleAt(done, func() { l.queued -= size })
	l.sim.ScheduleAt(arrive, func() {
		l.stats.Delivered++
		l.stats.Bytes += uint64(size)
		l.deliver(m)
	})
	return true
}

// Ring wires n nodes into the paper's storage-ring topology: a clockwise
// data direction and an anti-clockwise request direction, each a chain of
// unidirectional links. Node i's data successor is the next *active*
// node clockwise; deactivated nodes are skipped, which models the
// localized re-wiring of pulsating rings (§6.3).
type Ring struct {
	n        int
	data     []*Link // data[i]: node i -> next active clockwise
	req      []*Link // req[i]:  node i -> next active anti-clockwise
	handlers []Handler
	active   []bool
}

// Handler receives messages arriving at a node.
type Handler interface {
	// HandleData is invoked for messages flowing clockwise (BATs).
	HandleData(m Message)
	// HandleRequest is invoked for messages flowing anti-clockwise.
	HandleRequest(m Message)
}

// RingConfig configures both directions of the ring.
type RingConfig struct {
	Data    LinkConfig // clockwise BAT links
	Request LinkConfig // anti-clockwise request links
}

// DefaultRingConfig uses the paper's link parameters for the data
// direction and an unbounded small-message queue for requests.
func DefaultRingConfig() RingConfig {
	data := DefaultLinkConfig()
	req := DefaultLinkConfig()
	req.QueueCap = 0 // request messages are tiny; never tail-dropped here
	return RingConfig{Data: data, Request: req}
}

// NewRing builds the ring. handlers[i] receives node i's arrivals. All
// nodes start active; see SetActive for pulsating-ring membership.
func NewRing(s *sim.Simulator, cfg RingConfig, handlers []Handler) *Ring {
	n := len(handlers)
	if n < 2 {
		panic("netsim: ring needs at least 2 nodes")
	}
	r := &Ring{
		n:        n,
		data:     make([]*Link, n),
		req:      make([]*Link, n),
		handlers: handlers,
		active:   make([]bool, n),
	}
	for i := 0; i < n; i++ {
		r.active[i] = true
		i := i
		// Delivery targets are resolved at arrival time so membership
		// changes re-route in-flight traffic to the surviving neighbour.
		r.data[i] = NewLink(s, cfg.Data, func(m Message) {
			r.handlers[r.nextActive(i)].HandleData(m)
		})
		r.req[i] = NewLink(s, cfg.Request, func(m Message) {
			r.handlers[r.prevActive(i)].HandleRequest(m)
		})
	}
	return r
}

// Size reports the number of nodes (active and inactive).
func (r *Ring) Size() int { return r.n }

// ActiveCount reports the number of active ring members.
func (r *Ring) ActiveCount() int {
	c := 0
	for _, a := range r.active {
		if a {
			c++
		}
	}
	return c
}

// Active reports node i's membership.
func (r *Ring) Active(i int) bool { return r.active[i] }

// SetActive changes node i's ring membership (§6.3 pulsating rings).
// Deactivating a node panics when fewer than two members would remain.
func (r *Ring) SetActive(i int, active bool) {
	if !active && r.ActiveCount() <= 2 {
		panic("netsim: ring cannot shrink below 2 active nodes")
	}
	r.active[i] = active
}

// nextActive returns the first active node clockwise after i.
func (r *Ring) nextActive(i int) int {
	for k := 1; k <= r.n; k++ {
		j := (i + k) % r.n
		if r.active[j] {
			return j
		}
	}
	return i
}

// prevActive returns the first active node anti-clockwise before i.
func (r *Ring) prevActive(i int) int {
	for k := 1; k <= r.n; k++ {
		j := (i - k + r.n) % r.n
		if r.active[j] {
			return j
		}
	}
	return i
}

// SendData transmits m clockwise from node i to its successor.
func (r *Ring) SendData(i int, m Message, force bool) bool {
	return r.data[i].Send(m, force)
}

// SendRequest transmits m anti-clockwise from node i to its predecessor.
func (r *Ring) SendRequest(i int, m Message) bool {
	return r.req[i].Send(m, false)
}

// DataQueued reports the bytes occupying node i's outbound data queue.
// The Data Cyclotron uses this as the "local BAT queue load" that drives
// the LOIT adaptation (§4.4).
func (r *Ring) DataQueued(i int) int { return r.data[i].Queued() }

// DataQueueCap reports node i's data queue capacity.
func (r *Ring) DataQueueCap(i int) int { return r.data[i].QueueCap() }

// DataLink exposes node i's outbound data link (for stats).
func (r *Ring) DataLink(i int) *Link { return r.data[i] }

// RequestLink exposes node i's outbound request link (for stats).
func (r *Ring) RequestLink(i int) *Link { return r.req[i] }

// TotalDataQueued sums the outbound data queues of all nodes: the ring
// load in bytes, as plotted in Figure 7a.
func (r *Ring) TotalDataQueued() int {
	total := 0
	for _, l := range r.data {
		total += l.Queued()
	}
	return total
}
