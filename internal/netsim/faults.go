package netsim

import (
	"sync"
	"time"
)

// Faults is a network fault injector: a deterministic drop/delay/
// partition policy that both layers of the stack consult. The
// sim-driven Link applies it to every message (SetFaults), and the live
// ring's admission path consults it on join state transfer
// (live.Config.JoinFaults) — the same injector drives the simulated
// wire and the real in-process transport, so a fault scenario written
// for one reproduces on the other.
//
// Policies are deterministic by design (every k-th message drops, a
// fixed added delay, an on/off partition): fault tests must fail the
// same way every run. Faults is concurrency-safe; the zero value
// injects nothing.
type Faults struct {
	mu        sync.Mutex
	dropEvery int           // every k-th message is dropped (0 = never)
	delay     time.Duration // added to every delivery
	partition bool          // drop everything while set

	seen    int64
	dropped int64
}

// NewFaults returns an injector with no active faults.
func NewFaults() *Faults { return &Faults{} }

// DropEvery makes every k-th message vanish (k <= 0 disables dropping).
func (f *Faults) DropEvery(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k < 0 {
		k = 0
	}
	f.dropEvery = k
}

// SetDelay adds d to every delivery (propagation-jitter injection).
func (f *Faults) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d < 0 {
		d = 0
	}
	f.delay = d
}

// Partition turns total loss on or off: while partitioned, every
// message is dropped.
func (f *Faults) Partition(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partition = on
}

// Apply evaluates the policy for one message of the given wire size and
// returns the delay to add and whether the message must be dropped. A
// dropped message still counts toward the drop cadence.
func (f *Faults) Apply(size int) (delay time.Duration, drop bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seen++
	if f.partition {
		f.dropped++
		return 0, true
	}
	if f.dropEvery > 0 && f.seen%int64(f.dropEvery) == 0 {
		f.dropped++
		return 0, true
	}
	return f.delay, false
}

// Stats reports how many messages the injector has seen and dropped.
func (f *Faults) Stats() (seen, dropped int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen, f.dropped
}

// SetFaults attaches an injector to the link; nil detaches it. Faulted
// sends are evaluated before the DropTail queue: a dropped message
// never occupies queue bytes, and a delayed one arrives late but in
// FIFO order (the delay is added to the propagation leg).
func (l *Link) SetFaults(f *Faults) { l.faults = f }
