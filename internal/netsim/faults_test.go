package netsim

import (
	"testing"
	"time"

	"repro/internal/membership"
	"repro/internal/sim"
)

type testMsg struct{ size int }

func (m testMsg) WireSize() int { return m.size }

func TestFaultsDropEveryAndPartition(t *testing.T) {
	f := NewFaults()
	f.DropEvery(3)
	drops := 0
	for i := 0; i < 9; i++ {
		if _, drop := f.Apply(100); drop {
			drops++
		}
	}
	if drops != 3 {
		t.Fatalf("DropEvery(3): %d drops in 9 sends, want 3", drops)
	}
	f.DropEvery(0)
	f.Partition(true)
	if _, drop := f.Apply(100); !drop {
		t.Fatal("partitioned injector let a message through")
	}
	f.Partition(false)
	if _, drop := f.Apply(100); drop {
		t.Fatal("healed partition still dropping")
	}
	seen, dropped := f.Stats()
	if seen != 11 || dropped != 4 {
		t.Fatalf("stats = (%d seen, %d dropped), want (11, 4)", seen, dropped)
	}
}

func TestLinkAppliesFaults(t *testing.T) {
	s := sim.New()
	delivered := 0
	l := NewLink(s, LinkConfig{Bandwidth: 1e9}, func(Message) { delivered++ })
	f := NewFaults()
	f.SetDelay(10 * time.Millisecond)
	l.SetFaults(f)
	if !l.Send(testMsg{100}, false) {
		t.Fatal("delayed send rejected")
	}
	// The delay postpones arrival but must not lose the message.
	for s.Step() {
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if got := s.Now(); got < sim.Time(10*time.Millisecond) {
		t.Fatalf("arrival at %v, want >= the injected 10ms delay", got)
	}
	f.Partition(true)
	if l.Send(testMsg{100}, false) {
		t.Fatal("partitioned link accepted a send")
	}
	if st := l.Stats(); st.Dropped != 1 {
		t.Fatalf("link dropped = %d, want 1", st.Dropped)
	}
}

// TestDelayedHeartbeatsNeverDead is the tick-contract regression test:
// heartbeats that are delayed — by more than the Suspect threshold but
// still *delivered* every interval — must never produce a Dead verdict.
// The detector counts silence in ticks, and a pipeline of delayed beats
// keeps resetting the counter: only genuine loss (DeadAfter consecutive
// intervals with nothing arriving) may kill a node.
func TestDelayedHeartbeatsNeverDead(t *testing.T) {
	cfg := membership.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectAfter:      3,
		DeadAfter:         6,
	}
	s := sim.New()
	d := membership.NewDetector(1, 2, 0, cfg)

	// The monitored node's beats travel a link whose injected delay is 4
	// intervals: past SuspectAfter (so suspicion must arise and clear),
	// well within a pipeline that still delivers one beat per interval.
	f := NewFaults()
	f.SetDelay(4 * cfg.HeartbeatInterval)
	var deadVerdicts [][]int
	link := NewLink(s, LinkConfig{Bandwidth: 1e12}, func(m Message) {
		deadVerdicts = append(deadVerdicts, d.OnBeat(0, membership.View{Status: []membership.Status{membership.Alive, membership.Alive}}))
	})
	link.SetFaults(f)

	const intervals = 100
	suspected := false
	for i := 0; i < intervals; i++ {
		at := sim.Time(i) * sim.Time(cfg.HeartbeatInterval)
		s.ScheduleAt(at, func() { link.Send(testMsg{26}, false) })
		// The monitor's tick fires just before the next send slot, the
		// worst phase alignment for the receiver.
		s.ScheduleAt(at+sim.Time(cfg.HeartbeatInterval)-1, func() {
			if dead := d.Tick(); len(dead) > 0 {
				deadVerdicts = append(deadVerdicts, dead)
			}
			if d.View().Status[0] == membership.Suspect {
				suspected = true
			}
		})
	}
	for s.Step() {
	}

	for _, dv := range deadVerdicts {
		if len(dv) > 0 {
			t.Fatalf("delayed heartbeats produced a Dead verdict: %v", dv)
		}
	}
	if got := d.View().Status[0]; got == membership.Dead {
		t.Fatalf("final status = %v: delay alone must never kill", got)
	}
	if !suspected {
		t.Fatal("4-interval delay never triggered Suspect — the scenario is not exercising the threshold")
	}
	if got := d.View().Status[0]; got != membership.Alive {
		t.Fatalf("steady-state pipeline of beats should settle Alive, got %v", got)
	}
}
