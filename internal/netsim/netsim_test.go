package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

type msg int

func (m msg) WireSize() int { return int(m) }

func TestLinkDelivery(t *testing.T) {
	s := sim.New()
	var got []Message
	cfg := LinkConfig{Bandwidth: 1000, Delay: time.Second}
	l := NewLink(s, cfg, func(m Message) { got = append(got, m) })
	l.Send(msg(500), false) // 0.5s serialization + 1s delay
	s.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	want := sim.Time(1500 * time.Millisecond)
	if s.Now() != want {
		t.Fatalf("delivery at %v, want %v", s.Now(), want)
	}
}

func TestLinkFIFOAndPipelining(t *testing.T) {
	s := sim.New()
	var arrivals []sim.Time
	cfg := LinkConfig{Bandwidth: 1000, Delay: time.Second}
	l := NewLink(s, cfg, func(m Message) { arrivals = append(arrivals, s.Now()) })
	// Two back-to-back messages of 1000 bytes: serialization 1s each.
	l.Send(msg(1000), false)
	l.Send(msg(1000), false)
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d, want 2", len(arrivals))
	}
	// First: 1s ser + 1s delay = 2s. Second serializes 1..2s, arrives 3s.
	if arrivals[0] != sim.Time(2*time.Second) || arrivals[1] != sim.Time(3*time.Second) {
		t.Fatalf("arrivals = %v, want [2s 3s]", arrivals)
	}
}

func TestDropTail(t *testing.T) {
	s := sim.New()
	delivered := 0
	cfg := LinkConfig{Bandwidth: 1000, Delay: 0, QueueCap: 1500}
	l := NewLink(s, cfg, func(m Message) { delivered++ })
	if !l.Send(msg(1000), false) {
		t.Fatal("first send rejected")
	}
	if l.Send(msg(1000), false) {
		t.Fatal("second send should exceed 1500B cap and drop")
	}
	if !l.Send(msg(500), false) {
		t.Fatal("500B send should fit")
	}
	st := l.Stats()
	if st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
	s.Run()
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}
}

func TestForceBypassesDropTail(t *testing.T) {
	s := sim.New()
	cfg := LinkConfig{Bandwidth: 1000, Delay: 0, QueueCap: 100}
	l := NewLink(s, cfg, func(Message) {})
	if !l.Send(msg(1000), true) {
		t.Fatal("forced send rejected")
	}
	if l.Stats().Dropped != 0 {
		t.Fatal("forced send counted as drop")
	}
}

func TestQueueDrainsAfterSerialization(t *testing.T) {
	s := sim.New()
	cfg := LinkConfig{Bandwidth: 1000, Delay: time.Hour} // delay irrelevant to queue
	l := NewLink(s, cfg, func(Message) {})
	l.Send(msg(1000), false)
	if l.Queued() != 1000 {
		t.Fatalf("queued = %d, want 1000", l.Queued())
	}
	s.RunUntil(sim.Time(time.Second)) // serialization finishes at 1s
	if l.Queued() != 0 {
		t.Fatalf("queued = %d after serialization, want 0", l.Queued())
	}
}

func TestHighWaterMark(t *testing.T) {
	s := sim.New()
	cfg := LinkConfig{Bandwidth: 1000, Delay: 0}
	l := NewLink(s, cfg, func(Message) {})
	l.Send(msg(300), false)
	l.Send(msg(400), false)
	if l.Stats().MaxQueued != 700 {
		t.Fatalf("MaxQueued = %d, want 700", l.Stats().MaxQueued)
	}
	s.Run()
}

type collector struct {
	data []Message
	req  []Message
}

func (c *collector) HandleData(m Message)    { c.data = append(c.data, m) }
func (c *collector) HandleRequest(m Message) { c.req = append(c.req, m) }

func TestRingDirections(t *testing.T) {
	s := sim.New()
	nodes := make([]*collector, 4)
	handlers := make([]Handler, 4)
	for i := range nodes {
		nodes[i] = &collector{}
		handlers[i] = nodes[i]
	}
	cfg := DefaultRingConfig()
	r := NewRing(s, cfg, handlers)

	r.SendData(0, msg(100), false) // clockwise: to node 1
	r.SendRequest(0, msg(10))      // anti-clockwise: to node 3
	s.Run()

	if len(nodes[1].data) != 1 {
		t.Fatalf("node 1 data = %d, want 1 (clockwise)", len(nodes[1].data))
	}
	if len(nodes[3].req) != 1 {
		t.Fatalf("node 3 requests = %d, want 1 (anti-clockwise)", len(nodes[3].req))
	}
	for i, n := range nodes {
		if i != 1 && len(n.data) != 0 {
			t.Errorf("node %d unexpectedly received data", i)
		}
		if i != 3 && len(n.req) != 0 {
			t.Errorf("node %d unexpectedly received request", i)
		}
	}
}

func TestRingFullCycle(t *testing.T) {
	// A message forwarded around the ring returns to its origin after n hops.
	s := sim.New()
	const n = 5
	hops := 0
	var handlers []Handler
	var ring *Ring
	for i := 0; i < n; i++ {
		i := i
		handlers = append(handlers, handlerFuncs{
			data: func(m Message) {
				hops++
				if hops < n {
					ring.SendData(i, m, true)
				}
			},
		})
	}
	ring = NewRing(s, DefaultRingConfig(), handlers)
	ring.SendData(0, msg(1<<20), true)
	s.Run()
	if hops != n {
		t.Fatalf("hops = %d, want %d", hops, n)
	}
}

type handlerFuncs struct {
	data func(Message)
	req  func(Message)
}

func (h handlerFuncs) HandleData(m Message) {
	if h.data != nil {
		h.data(m)
	}
}
func (h handlerFuncs) HandleRequest(m Message) {
	if h.req != nil {
		h.req(m)
	}
}

func TestRingPanicsOnTooFewNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(sim.New(), DefaultRingConfig(), []Handler{&collector{}})
}

func TestSerializationTimeMatchesPaperNumbers(t *testing.T) {
	// A 10 MB BAT on a 10 Gb/s link serializes in 8 ms.
	l := NewLink(sim.New(), DefaultLinkConfig(), func(Message) {})
	got := l.SerializationTime(10 << 20)
	want := time.Duration(float64(10<<20) / 1.25e9 * float64(time.Second))
	if got != want {
		t.Fatalf("SerializationTime = %v, want %v", got, want)
	}
	if got < 8*time.Millisecond || got > 9*time.Millisecond {
		t.Fatalf("10MB at 10Gb/s = %v, want ~8.4ms", got)
	}
}

// Property: delivered bytes equals the sum of accepted message sizes;
// accepted + dropped = sent attempts.
func TestPropertyConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := sim.New()
		var deliveredBytes uint64
		cfg := LinkConfig{Bandwidth: 1e6, Delay: time.Millisecond, QueueCap: 40000}
		l := NewLink(s, cfg, func(m Message) { deliveredBytes += uint64(m.WireSize()) })
		var acceptedBytes uint64
		attempts := 0
		for _, sz := range sizes {
			attempts++
			if l.Send(msg(sz), false) {
				acceptedBytes += uint64(sz)
			}
		}
		s.Run()
		st := l.Stats()
		return deliveredBytes == acceptedBytes &&
			st.Sent+st.Dropped == uint64(attempts) &&
			st.Delivered == st.Sent &&
			l.Queued() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO order is preserved per link.
func TestPropertyFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := sim.New()
		var order []int
		cfg := LinkConfig{Bandwidth: 1e6, Delay: 5 * time.Millisecond}
		var got []int
		l := NewLink(s, cfg, func(m Message) { got = append(got, m.(seqMsgT).id) })
		for i, sz := range sizes {
			order = append(order, i)
			l.Send(seqMsgT{i, int(sz)}, false)
		}
		s.Run()
		if len(got) != len(order) {
			return false
		}
		for i := range got {
			if got[i] != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type seqMsgT struct{ id, size int }

func (m seqMsgT) WireSize() int { return m.size }

func BenchmarkLinkSend(b *testing.B) {
	s := sim.New()
	l := NewLink(s, DefaultLinkConfig(), func(Message) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Send(msg(1<<20), true)
		if i%1000 == 999 {
			s.Run()
		}
	}
	s.Run()
}
