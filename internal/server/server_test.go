package server_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/dcclient"
	"repro/internal/live"
	"repro/internal/mal"
	"repro/internal/membership"
	"repro/internal/minisql"
	"repro/internal/server"
)

func testColumns() (map[string]*bat.BAT, minisql.Schema) {
	cols := map[string]*bat.BAT{
		"t.id":   bat.MakeInts("t.id", []int64{1, 2, 3, 4}),
		"t.name": bat.MakeStrs("t.name", []string{"one", "two", "three", "four"}),
		"c.t_id": bat.MakeInts("c.t_id", []int64{2, 2, 3, 9}),
		"c.val":  bat.MakeInts("c.val", []int64{100, 200, 300, 400}),
	}
	schema := minisql.MapSchema{
		"t": {"id", "name"},
		"c": {"t_id", "val"},
	}
	return cols, schema
}

func servedRing(t *testing.T, n int, ringCfg live.Config, srvCfg server.Config) (*live.Ring, *server.Server) {
	t.Helper()
	cols, schema := testColumns()
	r, err := live.NewRing(n, cols, schema, ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.Serve(r, srvCfg)
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		r.Close()
	})
	return r, s
}

func TestServeQueryMatchesInProcess(t *testing.T) {
	r, s := servedRing(t, 3, live.DefaultConfig(), server.DefaultConfig())
	const sql = "select name from t where id >= 2 order by name"
	want, err := r.Node(1).ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := dcclient.Dial(s.Addr(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if h := cl.Node(); h.Node != 1 || h.Ring != 3 {
		t.Fatalf("handshake = %+v, want node 1 of 3", h)
	}
	got, err := cl.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows(), want.Rows()) {
		t.Fatalf("network result differs:\nwant %v\ngot  %v", want.Rows(), got.Rows())
	}
}

func TestPlanCacheSkipsRecompilation(t *testing.T) {
	_, s := servedRing(t, 2, live.DefaultConfig(), server.DefaultConfig())
	cl, err := dcclient.Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const sql = "select sum(val) from c"
	for i := 0; i < 3; i++ {
		if _, err := cl.Query(context.Background(), sql); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats(0)
	if st.PlanCacheMisses != 1 {
		t.Fatalf("plan cache misses = %d, want 1", st.PlanCacheMisses)
	}
	if st.PlanCacheHits != 2 {
		t.Fatalf("plan cache hits = %d, want 2", st.PlanCacheHits)
	}
	if st.OK != 3 || st.Count != 3 {
		t.Fatalf("outcome counters: %+v", st)
	}
}

func TestBadSQLKeepsConnectionUsable(t *testing.T) {
	_, s := servedRing(t, 2, live.DefaultConfig(), server.DefaultConfig())
	cl, err := dcclient.Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(context.Background(), "select nosuch from t"); err == nil {
		t.Fatal("bad SQL succeeded")
	} else if dcclient.IsTemporary(err) {
		t.Fatalf("compile error reported as temporary: %v", err)
	}
	// The same pooled connection must still answer good queries.
	if _, err := cl.Query(context.Background(), "select sum(val) from c"); err != nil {
		t.Fatalf("connection unusable after query error: %v", err)
	}
	if st := s.Stats(0); st.Failed != 1 || st.OK != 1 {
		t.Fatalf("outcomes = %+v, want 1 failed + 1 ok", st)
	}
}

func TestGracefulDrain(t *testing.T) {
	_, s := servedRing(t, 2, live.DefaultConfig(), server.DefaultConfig())
	cl, err := dcclient.Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(context.Background(), "select sum(val) from c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// After drain every path must fail cleanly: either the pooled
	// connection was force-closed (I/O error) or it got a draining frame.
	if _, err := cl.Query(context.Background(), "select sum(val) from c"); err == nil {
		t.Fatal("query succeeded on a drained server")
	}
	if st := s.Stats(0); st.InFlight != 0 {
		t.Fatalf("in-flight after drain = %d", st.InFlight)
	}
}

// TestClientFailsOverOnNodeDeath is the client-continuity half of the
// elastic-membership contract, exercised through the network service:
// a client homed on a node that dies mid-run retries onto a surviving
// node from its routing cache, rehomes there, and keeps getting
// correct answers once the ring has promoted the dead node's replicas.
func TestClientFailsOverOnNodeDeath(t *testing.T) {
	ringCfg := live.DefaultConfig()
	ringCfg.Replicas = 1
	ringCfg.Heartbeat = membership.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      3,
		DeadAfter:         8,
	}
	ringCfg.Core.ResendTimeout = 100 * time.Millisecond
	r, s := servedRing(t, 3, ringCfg, server.DefaultConfig())

	const sql = "select val from c where t_id >= 2 order by val"
	want, err := r.Node(0).ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := dcclient.Dial(s.Addr(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(context.Background(), sql); err != nil {
		t.Fatal(err)
	}
	if addrs, alive := cl.Peers(); len(addrs) != 3 || !alive[1] {
		t.Fatalf("routing cache after handshake: addrs=%v alive=%v", addrs, alive)
	}

	// The home node crashes: ring node, listener, and connections die.
	s.KillNode(1)

	// The client must recover without intervention: pooled connections
	// fail, the dial fails, and the failover path lands the query on a
	// survivor. Early attempts may time out while the ring itself is
	// still detecting the death and promoting replicas.
	deadline := time.Now().Add(15 * time.Second)
	var got *mal.ResultSet
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		got, err = cl.Query(ctx, sql)
		cancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no correct answer after node death: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !reflect.DeepEqual(got.Rows(), want.Rows()) {
		t.Fatalf("post-failover result differs:\nwant %v\ngot  %v", want.Rows(), got.Rows())
	}
	if cl.Addr() == s.Addr(1) {
		t.Fatal("client still homed on the dead node")
	}
	// The rehomed handshake refreshed the routing cache; once the
	// survivor's view has declared the death, the cache shows it.
	for {
		if _, alive := cl.Peers(); len(alive) == 3 && !alive[1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("routing cache never learned of the death")
		}
		time.Sleep(10 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		cl.Refresh(ctx) // re-handshake with the rehomed node
		cancel()
	}
	if st := s.Stats(2); !st.MembEnabled || st.MembFailovers == 0 {
		t.Fatalf("served stats missed the failover: %+v", st)
	}
}

func TestQueryContextTimeout(t *testing.T) {
	_, s := servedRing(t, 2, live.DefaultConfig(), server.DefaultConfig())
	cl, err := dcclient.Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Query(ctx, "select sum(val) from c"); err != context.Canceled {
		t.Fatalf("cancelled query = %v, want context.Canceled", err)
	}
	// The client must recover with a fresh connection afterwards.
	if _, err := cl.Query(context.Background(), "select sum(val) from c"); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

// TestServeJoinedNode grows a served ring at runtime: Join admits a new
// ring node, ServeNode brings its listener online, and clients learn
// the grown ring from their next handshake — the newcomer both serves
// queries directly and shows up in every routing cache.
func TestServeJoinedNode(t *testing.T) {
	ringCfg := live.DefaultConfig()
	ringCfg.Replicas = 1
	ringCfg.Heartbeat = membership.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      3,
		DeadAfter:         8,
	}
	ringCfg.Core.ResendTimeout = 100 * time.Millisecond
	r, s := servedRing(t, 3, ringCfg, server.DefaultConfig())

	const sql = "select val from c where t_id >= 2 order by val"
	want, err := r.Node(0).ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := dcclient.Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(context.Background(), sql); err != nil {
		t.Fatal(err)
	}
	if addrs, _ := cl.Peers(); len(addrs) != 3 {
		t.Fatalf("pre-join routing cache: %v", addrs)
	}

	rep, err := r.Join()
	if err != nil {
		t.Fatal(err)
	}
	joinAddr, err := s.ServeNode(rep.Node)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Addr(rep.Node); got != joinAddr {
		t.Fatalf("Addr(%d) = %s, want %s", rep.Node, got, joinAddr)
	}
	if _, err := s.ServeNode(rep.Node); err == nil {
		t.Fatal("double ServeNode succeeded")
	}

	// The newcomer answers over the wire, with its Hello reporting the
	// grown ring.
	jcl, err := dcclient.Dial(joinAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer jcl.Close()
	got, err := jcl.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows(), want.Rows()) {
		t.Fatalf("joined node answer differs:\nwant %v\ngot  %v", want.Rows(), got.Rows())
	}
	if h := jcl.Node(); h.Node != rep.Node || h.Ring != 4 {
		t.Fatalf("joined node hello = %+v, want node %d in a 4-ring", h, rep.Node)
	}

	// The old client's next handshake advertises the grown address list.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	addrs, alive := cl.Peers()
	if len(addrs) != 4 || addrs[rep.Node] != joinAddr {
		t.Fatalf("refreshed routing cache: addrs=%v", addrs)
	}
	if len(alive) != 4 || !alive[rep.Node] {
		t.Fatalf("refreshed routing cache: alive=%v", alive)
	}
	if st := s.Stats(rep.Node); st.OK == 0 {
		t.Fatalf("joined node's served stats missed its query: %+v", st)
	}
}

func TestServeRouterTieredHandshake(t *testing.T) {
	cols, schema := testColumns()
	rc := live.DefaultRouterConfig()
	rc.HotNodes, rc.ColdNodes = 2, 2
	rtr, err := live.NewRouter(cols, schema, rc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.ServeRouter(rtr, server.DefaultConfig())
	if err != nil {
		rtr.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		rtr.Close()
	})

	// Queries settle on the hot ring: hot listeners come first in the
	// global address list.
	cl, err := dcclient.Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h := cl.Node()
	if h.Node != 0 || h.Ring != 4 {
		t.Fatalf("tiered handshake = %+v, want global node 0 of 4", h)
	}
	wantRings := []string{"hot", "hot", "cold", "cold"}
	if rings := cl.Rings(); !reflect.DeepEqual(rings, wantRings) {
		t.Fatalf("ring labels = %v, want %v", rings, wantRings)
	}
	addrs, alive := cl.Peers()
	if len(addrs) != 4 {
		t.Fatalf("tiered routing cache: %v", addrs)
	}
	for i, a := range alive {
		if !a {
			t.Fatalf("node %d dead at startup: %v", i, alive)
		}
	}

	// A query through a hot listener pulls its fragments off the cold
	// ring (all data starts cold) and answers correctly.
	const sql = "select val from c where t_id >= 2 order by val"
	want, err := rtr.QueryRing().Node(0).ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows(), want.Rows()) {
		t.Fatalf("tiered result differs:\nwant %v\ngot  %v", want.Rows(), got.Rows())
	}

	// Cold listeners serve too — their liveness checks go through the
	// cold ring's own detector, and their stats identify the right node.
	ccl, err := dcclient.Dial(s.Addr(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ccl.Close()
	if ch := ccl.Node(); ch.Node != 2 {
		t.Fatalf("cold handshake = %+v, want global node 2", ch)
	}
	cgot, err := ccl.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cgot.Rows(), want.Rows()) {
		t.Fatalf("cold-node result differs:\nwant %v\ngot  %v", want.Rows(), cgot.Rows())
	}
	if st, err := ccl.Stats(context.Background()); err != nil || st.OK == 0 {
		t.Fatalf("cold node stats = %+v, %v", st, err)
	}

	// Joins are a single-ring feature; a routed server refuses them.
	if _, err := s.ServeNode(4); err == nil {
		t.Fatal("ServeNode on a routed server succeeded")
	}

	// Tiers < 2 degenerates to the plain single-ring server: no ring
	// labels in the handshake.
	src := live.DefaultRouterConfig()
	src.Tiers = 0
	srtr, err := live.NewRouter(cols, schema, src)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := server.ServeRouter(srtr, server.DefaultConfig())
	if err != nil {
		srtr.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ss.Close()
		srtr.Close()
	})
	scl, err := dcclient.Dial(ss.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer scl.Close()
	if rings := scl.Rings(); len(rings) != 0 {
		t.Fatalf("single-ring server advertised ring labels: %v", rings)
	}
	if _, err := scl.Query(context.Background(), sql); err != nil {
		t.Fatal(err)
	}
}
