package server

import (
	"errors"
	"sync/atomic"
)

// Admission errors, mapped onto FrameError codes by the handler.
var (
	errRejected = errors.New("server: admission queue full")
	errDraining = errors.New("server: draining")
)

// admission is the per-node in-flight query governor: a bounded slot
// pool plus a bounded wait queue. A query either takes a slot
// immediately, waits its turn (the Go runtime wakes blocked channel
// senders in FIFO order), or is rejected outright when the queue is
// already at capacity — the backpressure that keeps a client flood from
// melting the ring.
type admission struct {
	slots    chan struct{}
	queueCap int64
	waiting  atomic.Int64
}

func newAdmission(inFlight, queueCap int) *admission {
	return &admission{slots: make(chan struct{}, inFlight), queueCap: int64(queueCap)}
}

// acquire takes an execution slot or fails: errRejected when the wait
// queue is full, errDraining once drain closes. Taking a slot and
// observing drain happen in one select (plus a post-win drain check),
// so a query racing the drain close cannot be admitted after Quiesce
// began: any acquire that starts after drain closes fails, and one that
// wins a slot concurrently with the close gives the slot back.
func (a *admission) acquire(drain <-chan struct{}) error {
	select {
	case <-drain:
		return errDraining
	case a.slots <- struct{}{}:
		return a.checkDrain(drain)
	default:
	}
	if a.waiting.Add(1) > a.queueCap {
		a.waiting.Add(-1)
		return errRejected
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return a.checkDrain(drain)
	case <-drain:
		return errDraining
	}
}

// checkDrain re-examines drain after a slot was won: a select with both
// cases ready picks randomly, so winning the slot does not prove the
// server was still open. If drain closed, the slot goes back and the
// query is refused.
func (a *admission) checkDrain(drain <-chan struct{}) error {
	select {
	case <-drain:
		<-a.slots
		return errDraining
	default:
		return nil
	}
}

// release returns an execution slot.
func (a *admission) release() { <-a.slots }

// inUse reports slots currently held. Taking a slot and becoming
// visible here is one channel operation, so shutdown can rely on it
// (unlike a separately-incremented gauge) to see every admitted query.
func (a *admission) inUse() int { return len(a.slots) }

// queued reports how many queries are waiting for a slot.
func (a *admission) queued() int64 { return a.waiting.Load() }
