package server

import (
	"testing"

	"repro/internal/mal"
)

func dummyPlan(name string) *mal.Plan { return &mal.Plan{Name: name} }

func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2)
	c.put("a", dummyPlan("a"))
	c.put("b", dummyPlan("b"))
	if p, ok := c.get("a"); !ok || p.Name != "a" {
		t.Fatal("a missing")
	}
	// a is now MRU; inserting c evicts b.
	c.put("c", dummyPlan("c"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	hits, misses := c.stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 2 hits 1 miss", hits, misses)
	}
}

// TestPlanCacheDisabled is the regression test for max <= 0: put used
// to insert the entry and then immediately evict it (the eviction loop
// drained everything, the new plan included) while get still counted
// misses. Disabled means no state and no stats.
func TestPlanCacheDisabled(t *testing.T) {
	for _, max := range []int{0, -1} {
		c := newPlanCache(max)
		c.put("a", dummyPlan("a"))
		if _, ok := c.get("a"); ok {
			t.Fatalf("max=%d: disabled cache returned a plan", max)
		}
		if c.ll.Len() != 0 || len(c.bySQL) != 0 {
			t.Fatalf("max=%d: disabled cache holds state: ll=%d map=%d", max, c.ll.Len(), len(c.bySQL))
		}
		hits, misses := c.stats()
		if hits != 0 || misses != 0 {
			t.Fatalf("max=%d: disabled cache counted stats %d/%d", max, hits, misses)
		}
	}
}

// TestPlanCacheSizeOne: the smallest enabled cache must actually hold
// its newest entry (the original bug made any insert self-evicting at
// small caps when max <= 0; size 1 is the boundary that stays enabled).
func TestPlanCacheSizeOne(t *testing.T) {
	c := newPlanCache(1)
	c.put("a", dummyPlan("a"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("size-1 cache evicted its only entry")
	}
	c.put("b", dummyPlan("b"))
	if _, ok := c.get("b"); !ok {
		t.Fatal("size-1 cache lost the newest entry")
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("size-1 cache kept two entries")
	}
}
