package server

import (
	"container/list"
	"sync"

	"repro/internal/mal"

	"repro/internal/metrics"
)

// planCache memoizes SQL text -> compiled + DC-rewritten plan, so hot
// queries skip minisql.Compile and dcopt.Rewrite entirely. Plans are
// read-only to the interpreter, so one cached plan serves any number of
// concurrent executions. Eviction is LRU with a fixed entry cap.
//
// max <= 0 means the cache is disabled: get and put are no-ops that
// touch no state and count no stats (a disabled cache is not "always
// missing" — it is simply absent, and every query compiles).
type planCache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used
	bySQL  map[string]*list.Element
	hits   metrics.Counter
	misses metrics.Counter
}

type planEntry struct {
	sql  string
	plan *mal.Plan
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, ll: list.New(), bySQL: map[string]*list.Element{}}
}

func (c *planCache) get(sql string) (*mal.Plan, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.bySQL[sql]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*planEntry).plan, true
}

func (c *planCache) put(sql string, p *mal.Plan) {
	if c.max <= 0 {
		// Disabled: inserting would only feed the eviction loop below,
		// which would immediately drain the new entry again.
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.bySQL[sql]; ok {
		// A concurrent miss compiled the same text; keep the newer plan.
		el.Value.(*planEntry).plan = p
		c.ll.MoveToFront(el)
		return
	}
	c.bySQL[sql] = c.ll.PushFront(&planEntry{sql: sql, plan: p})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.bySQL, last.Value.(*planEntry).sql)
	}
}

func (c *planCache) stats() (hits, misses int64) {
	return c.hits.Get(), c.misses.Get()
}
