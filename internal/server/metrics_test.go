package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/dcclient"
	"repro/internal/live"
	"repro/internal/server"
)

// A server with MetricsAddr set must answer HTTP scrapes with the
// Prometheus text format, reflecting queries that actually ran.
func TestMetricsScrape(t *testing.T) {
	ringCfg := live.DefaultConfig()
	ringCfg.Transport = live.TCP
	srvCfg := server.DefaultConfig()
	srvCfg.MetricsAddr = "127.0.0.1:0"
	_, s := servedRing(t, 2, ringCfg, srvCfg)

	addr := s.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty with the endpoint enabled")
	}
	cl, err := dcclient.Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(context.Background(), "select name from t where id >= 2 order by name"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE dc_queries_total counter",
		`dc_queries_total{node="0",ring="",outcome="ok"} 1`,
		`dc_queries_total{node="1",ring="",outcome="ok"} 0`,
		"# TYPE dc_backend_info gauge",
		`dc_backend_info{node="0",ring="",backend="tcp",fallback=""} 1`,
		"# TYPE dc_wire_syscalls_total counter",
		"# TYPE dc_query_latency_seconds gauge",
		`dc_query_latency_count{node="0",ring=""} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q in:\n%s", want, text)
		}
	}
	// Hops moved fragments for the join-free scan too; the wire counters
	// must be plumbed through (nonzero on at least one node).
	var sys int64
	for i := 0; i < 2; i++ {
		sys += s.Stats(i).WireSyscalls
	}
	if sys == 0 {
		t.Fatal("WireSyscalls zero across all nodes of a TCP ring")
	}
}

// Without MetricsAddr the endpoint stays off and the server behaves as
// before.
func TestMetricsDisabledByDefault(t *testing.T) {
	_, s := servedRing(t, 2, live.DefaultConfig(), server.DefaultConfig())
	if addr := s.MetricsAddr(); addr != "" {
		t.Fatalf("MetricsAddr = %q on a server without metrics", addr)
	}
}

// The stats frame must carry the backend fields to network clients.
func TestStatsFrameCarriesBackend(t *testing.T) {
	ringCfg := live.DefaultConfig()
	ringCfg.Transport = live.TCP
	_, s := servedRing(t, 2, ringCfg, server.DefaultConfig())
	cl, err := dcclient.Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Backend != "tcp" {
		t.Fatalf("stats frame Backend = %q, want tcp", st.Backend)
	}
}
