package server

import (
	"testing"
	"time"
)

func TestAdmissionSlotPool(t *testing.T) {
	drain := make(chan struct{})
	a := newAdmission(2, 1)
	if err := a.acquire(drain); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(drain); err != nil {
		t.Fatal(err)
	}
	// Both slots taken: one waiter fits the queue...
	waited := make(chan error, 1)
	go func() { waited <- a.acquire(drain) }()
	for a.queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	// ...and the next arrival is bounced by queue depth.
	if err := a.acquire(drain); err != errRejected {
		t.Fatalf("overflow acquire = %v, want errRejected", err)
	}
	a.release()
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	// Draining bounces everyone, including queued waiters.
	close(drain)
	if err := a.acquire(drain); err != errDraining {
		t.Fatalf("draining acquire = %v, want errDraining", err)
	}
}

func TestNodeAddr(t *testing.T) {
	if a, err := nodeAddr("127.0.0.1:0", 3); err != nil || a != "127.0.0.1:0" {
		t.Fatalf("ephemeral base: %q, %v", a, err)
	}
	if a, err := nodeAddr("127.0.0.1:4001", 2); err != nil || a != "127.0.0.1:4003" {
		t.Fatalf("fixed base: %q, %v", a, err)
	}
	if _, err := nodeAddr("garbage", 0); err == nil {
		t.Fatal("bad address accepted")
	}
}
