package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionSlotPool(t *testing.T) {
	drain := make(chan struct{})
	a := newAdmission(2, 1)
	if err := a.acquire(drain); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(drain); err != nil {
		t.Fatal(err)
	}
	// Both slots taken: one waiter fits the queue...
	waited := make(chan error, 1)
	go func() { waited <- a.acquire(drain) }()
	for a.queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	// ...and the next arrival is bounced by queue depth.
	if err := a.acquire(drain); err != errRejected {
		t.Fatalf("overflow acquire = %v, want errRejected", err)
	}
	a.release()
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	// Draining bounces everyone, including queued waiters.
	close(drain)
	if err := a.acquire(drain); err != errDraining {
		t.Fatalf("draining acquire = %v, want errDraining", err)
	}
}

// TestNoAdmissionAfterDrain is the regression test for the
// drain/acquire race: the old fast path checked drain in a separate
// select before taking a slot, so an acquire racing the drain close
// could still be admitted after Quiesce began. With slots free and the
// queue empty, no acquire that starts after drain closed may succeed.
func TestNoAdmissionAfterDrain(t *testing.T) {
	drain := make(chan struct{})
	a := newAdmission(4, 4)
	close(drain)
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := a.acquire(drain); err == nil {
					admitted.Add(1)
					a.release()
				} else if err != errDraining {
					t.Errorf("acquire = %v, want errDraining", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := admitted.Load(); n != 0 {
		t.Fatalf("%d queries admitted after drain closed", n)
	}
	if a.inUse() != 0 {
		t.Fatalf("slots leaked: %d in use", a.inUse())
	}
}

// TestDrainRacingAcquire closes drain while acquires are in flight:
// whatever each call returns, no slot may leak and every success must
// have happened before the close was observed.
func TestDrainRacingAcquire(t *testing.T) {
	for round := 0; round < 50; round++ {
		drain := make(chan struct{})
		a := newAdmission(2, 2)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := a.acquire(drain); err == nil {
					a.release()
				}
			}()
		}
		close(drain)
		wg.Wait()
		if a.inUse() != 0 {
			t.Fatalf("round %d: %d slots leaked", round, a.inUse())
		}
		// Once the close is settled, nothing is admitted anymore.
		if err := a.acquire(drain); err != errDraining {
			t.Fatalf("round %d: post-drain acquire = %v", round, err)
		}
	}
}

func TestNodeAddr(t *testing.T) {
	if a, err := nodeAddr("127.0.0.1:0", 3); err != nil || a != "127.0.0.1:0" {
		t.Fatalf("ephemeral base: %q, %v", a, err)
	}
	if a, err := nodeAddr("127.0.0.1:4001", 2); err != nil || a != "127.0.0.1:4003" {
		t.Fatalf("fixed base: %q, %v", a, err)
	}
	if _, err := nodeAddr("garbage", 0); err == nil {
		t.Fatal("bad address accepted")
	}
}
