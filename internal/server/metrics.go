// Prometheus-style text exposition of the query service's counters.
// The server already aggregates everything a scraper wants into
// NodeStats (admission, plan cache, fragment cache, hop transport, wire
// backend, membership, latency quantiles); this file renders those
// snapshots in the text format any Prometheus-compatible collector can
// ingest, on a separate listener so scrapes never compete with query
// traffic for protocol framing or admission slots.

package server

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
)

// cqeBucketLabels names the WireCounters.CqeBatch histogram buckets
// (completions reaped per io_uring_enter; see rdma.WireCounters). The
// hop fill histogram HopFill uses the same bucket boundaries.
var cqeBucketLabels = [8]string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", ">64"}

// metricsServer is the optional /metrics HTTP listener.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
}

func (m *metricsServer) close() {
	// http.Server.Close shuts the listener and every open scrape
	// connection; the Serve goroutine (counted in Server.wg) exits.
	m.srv.Close()
}

// startMetrics binds the /metrics endpoint when Config.MetricsAddr is
// set. Called once from Serve/ServeRouter before the server is handed
// to the caller; the handler snapshots node state per scrape, so nodes
// added later by ServeNode appear automatically.
func (s *Server) startMetrics() error {
	if s.cfg.MetricsAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", s.cfg.MetricsAddr)
	if err != nil {
		return fmt.Errorf("server: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.metrics = &metricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.metrics.srv.Serve(ln)
	}()
	return nil
}

// MetricsAddr reports the bound address of the /metrics listener, or ""
// when the endpoint is disabled.
func (s *Server) MetricsAddr() string {
	if s.metrics == nil {
		return ""
	}
	return s.metrics.ln.Addr().String()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	s.renderMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}

// renderMetrics writes the text-format exposition of every served
// node's counters. Labels: node is the global listener index, ring the
// tier label on a routed server ("" on a single ring).
func (s *Server) renderMetrics(b *bytes.Buffer) {
	nodes := s.nodeServers()
	stats := make([]NodeStats, len(nodes))
	for i := range nodes {
		stats[i] = s.Stats(i)
	}
	head := func(name, typ, help string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	// line emits one sample; extra is appended inside the label braces.
	line := func(name string, i int, extra string, v any) {
		fmt.Fprintf(b, "%s{node=\"%d\",ring=%q%s} %v\n", name, i, nodes[i].ringLabel, extra, v)
	}

	head("dc_queries_total", "counter", "Queries by admission/execution outcome.")
	for i, st := range stats {
		for _, oc := range []struct {
			name string
			v    int64
		}{{"ok", st.OK}, {"failed", st.Failed}, {"rejected", st.Rejected}, {"drained", st.Drained}} {
			line("dc_queries_total", i, fmt.Sprintf(",outcome=%q", oc.name), oc.v)
		}
	}
	head("dc_inflight_queries", "gauge", "Queries executing right now.")
	for i, st := range stats {
		line("dc_inflight_queries", i, "", st.InFlight)
	}
	head("dc_queued_queries", "gauge", "Queries waiting for an execution slot.")
	for i, st := range stats {
		line("dc_queued_queries", i, "", st.Queued)
	}
	head("dc_plan_cache_total", "counter", "Plan cache lookups by result.")
	for i, st := range stats {
		line("dc_plan_cache_total", i, `,result="hit"`, st.PlanCacheHits)
		line("dc_plan_cache_total", i, `,result="miss"`, st.PlanCacheMisses)
	}
	head("dc_frag_cache_total", "counter", "Hot-set fragment cache pins by result.")
	for i, st := range stats {
		for _, rc := range []struct {
			name string
			v    int64
		}{{"hit", st.CacheHits}, {"miss", st.CacheMisses}, {"stale", st.CacheStale}, {"coalesced", st.CacheCoalesced}} {
			line("dc_frag_cache_total", i, fmt.Sprintf(",result=%q", rc.name), rc.v)
		}
	}
	head("dc_frag_cache_bytes", "gauge", "Bytes held by the fragment cache.")
	for i, st := range stats {
		line("dc_frag_cache_bytes", i, "", st.CacheBytes)
	}
	head("dc_ring_wait_seconds_total", "counter", "Cumulative time pins blocked on ring circulation.")
	for i, st := range stats {
		line("dc_ring_wait_seconds_total", i, "", st.RingWait.Seconds())
	}
	head("dc_hop_messages_total", "counter", "Wire messages sent by the hop scheduler.")
	for i, st := range stats {
		line("dc_hop_messages_total", i, "", st.HopMsgs)
	}
	head("dc_hop_fragments_total", "counter", "Fragments forwarded by the hop scheduler.")
	for i, st := range stats {
		line("dc_hop_fragments_total", i, "", st.HopFrags)
	}
	head("dc_hop_bytes_total", "counter", "Payload bytes moved by the hop scheduler.")
	for i, st := range stats {
		line("dc_hop_bytes_total", i, "", st.HopBytes)
	}
	head("dc_backend_info", "gauge", "Wire backend of the node's data links (constant 1; fallback is why auto degraded, empty when it did not).")
	for i, st := range stats {
		line("dc_backend_info", i, fmt.Sprintf(",backend=%q,fallback=%q", st.Backend, st.BackendFallback), 1)
	}
	head("dc_wire_syscalls_total", "counter", "Syscalls issued by the wire backend (enters on uring; a lower bound of reads+writes on tcp).")
	for i, st := range stats {
		line("dc_wire_syscalls_total", i, "", st.WireSyscalls)
	}
	head("dc_wire_submits_total", "counter", "Wire submissions (uring enters that pushed SQEs; gather writes on tcp).")
	for i, st := range stats {
		line("dc_wire_submits_total", i, "", st.WireSubmits)
	}
	head("dc_wire_cqe_batch_total", "counter", "io_uring completions reaped per enter, by batch-size bucket.")
	for i, st := range stats {
		for bi, v := range st.CqeBatch {
			line("dc_wire_cqe_batch_total", i, fmt.Sprintf(",batch=%q", cqeBucketLabels[bi]), v)
		}
	}
	head("dc_query_latency_seconds", "gauge", "Completed-query latency quantiles.")
	for i, st := range stats {
		line("dc_query_latency_seconds", i, `,quantile="0.5"`, st.P50.Seconds())
		line("dc_query_latency_seconds", i, `,quantile="0.95"`, st.P95.Seconds())
		line("dc_query_latency_seconds", i, `,quantile="0.99"`, st.P99.Seconds())
	}
	head("dc_query_latency_count", "counter", "Completed queries observed by the latency histogram.")
	for i, st := range stats {
		line("dc_query_latency_count", i, "", st.Count)
	}
}
