// Package server is the network front door of the live Data Cyclotron
// ring: one TCP listener per node speaking a length-prefixed binary
// protocol (see proto.go). The paper's §4 architecture lets queries
// settle on any node; this layer adds what production traffic needs on
// top of that — per-node admission control (a bounded in-flight slot
// pool with a FIFO wait queue and queue-depth rejection), a plan cache
// so hot SQL skips compilation and the DC rewrite, per-query latency
// and outcome counters, and graceful drain on shutdown.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/dcopt"
	"repro/internal/live"
	"repro/internal/mal"
	"repro/internal/metrics"
	"repro/internal/minisql"
	"repro/internal/wirebuf"
)

// Config tunes the query service.
type Config struct {
	// Addr is the base listen address. Port 0 gives every node an
	// ephemeral port (Addrs reports what was bound); a concrete port P
	// serves node i on P+i.
	Addr string
	// MaxInFlight bounds concurrently executing queries per node.
	MaxInFlight int
	// MaxQueue bounds queries waiting for a slot per node; arrivals
	// beyond it are rejected immediately.
	MaxQueue int
	// PlanCacheSize bounds cached compiled plans per node. 0 picks the
	// default; a negative value disables the cache (every query
	// compiles, no hit/miss stats are counted).
	PlanCacheSize int
	// MaxFrame bounds a single protocol frame.
	MaxFrame int
	// DrainTimeout bounds how long Close waits for in-flight queries.
	DrainTimeout time.Duration
	// MetricsAddr, when non-empty, serves the per-node counters in
	// Prometheus text format at http://MetricsAddr/metrics (port 0
	// binds an ephemeral port; MetricsAddr() reports it). Empty
	// disables the endpoint.
	MetricsAddr string
}

// DefaultConfig suits loopback serving.
func DefaultConfig() Config {
	return Config{
		Addr:          "127.0.0.1:0",
		MaxInFlight:   8,
		MaxQueue:      64,
		PlanCacheSize: 128,
		MaxFrame:      DefaultMaxFrame,
		DrainTimeout:  10 * time.Second,
	}
}

// NodeStats snapshots one node server's counters.
type NodeStats struct {
	Accepted int64 // queries that got an execution slot
	OK       int64 // completed successfully
	Failed   int64 // compile or execution error
	Rejected int64 // bounced by the full wait queue
	Drained  int64 // bounced because the server was draining

	InFlight    int64 // executing right now
	MaxInFlight int64 // peak concurrent executions observed
	Queued      int64 // waiting for a slot right now

	PlanCacheHits   int64
	PlanCacheMisses int64

	// Hot-set fragment cache and ring-wait counters of the served ring
	// node (see live.CacheStats): how many pins were version-validated
	// node-local reads versus waits on ring circulation, and how much
	// time the latter spent blocked.
	CacheHits      int64
	CacheMisses    int64
	CacheStale     int64
	CacheCoalesced int64
	CacheBytes     int64
	CacheEntries   int64
	RingWaits      int64
	RingWait       time.Duration // cumulative time pins blocked on the ring

	// Hop-transport counters of the served ring node (see
	// live.HopStats): wire messages vs fragments forwarded (batching
	// fill), the batch fill histogram, bytes moved, LOI-pacing park
	// state, and send-region pool pressure.
	HopMsgs        int64
	HopSingles     int64
	HopBatches     int64
	HopFrags       int64
	HopFill        [8]int64
	HopBytes       int64
	HopMaxMsg      int64
	HopParked      int64
	HopParkedTotal int64
	HopUnparked    int64
	PoolAcquires   int64
	PoolWaits      int64

	// Wire backend of the served ring's data links (see live.HopStats):
	// which transport backend carries hops, why auto fell back to tcp
	// (empty when it didn't), and syscall-layer accounting —
	// WireSyscalls/HopMsgs is the syscalls-per-hop figure the uring
	// benchmark gates on. CqeBatch histograms completions reaped per
	// io_uring_enter (buckets 1, 2, 3-4, 5-8, ..., >64); all-zero on
	// the tcp backend.
	Backend         string
	BackendFallback string
	WireSyscalls    int64
	WireSubmits     int64
	CqeBatch        [8]int64

	// Membership/failover counters of the served ring node (see
	// live.MembershipStats): the failure detector's view, replica
	// placement and lag, and the failover outcome counters. All zero
	// when the ring runs without replication.
	MembEnabled     bool
	MembViewVersion int64
	MembAlive       int
	MembSuspect     int
	MembDead        int
	MembReplicas    int64
	MembReplicaLag  int64
	MembFailovers   int64
	MembPromotions  int64
	MembLostFrags   int64
	MembBeatsSent   int64
	MembBeatsRecv   int64

	// Latency quantiles over completed queries (OK + Failed).
	Count               int64
	Mean, P50, P95, P99 time.Duration
}

// CacheHitRate reports the fraction of pins served node-locally.
func (s NodeStats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

func (s NodeStats) String() string {
	return fmt.Sprintf("accepted=%d ok=%d failed=%d rejected=%d drained=%d inflight=%d/%d(max) plancache=%d/%d hotcache=%d/%d ringwait=%s hop=%d/%dmsg parked=%d p50=%s p95=%s p99=%s",
		s.Accepted, s.OK, s.Failed, s.Rejected, s.Drained, s.InFlight, s.MaxInFlight,
		s.PlanCacheHits, s.PlanCacheHits+s.PlanCacheMisses,
		s.CacheHits, s.CacheHits+s.CacheMisses, s.RingWait,
		s.HopFrags, s.HopMsgs, s.HopParked,
		s.P50, s.P95, s.P99)
}

// Server serves every node of a live ring — or, via ServeRouter, every
// node of every ring of a tiered runtime.
type Server struct {
	cfg  Config
	ring *live.Ring
	// router is set only by ServeRouter: the listener list then spans
	// all tiers (hot ring first) and the handshake advertises each
	// node's ring label. nil for a plain single-ring server, whose
	// handshake stays byte-identical to earlier releases.
	router *live.Router
	drain  chan struct{}

	// nodesMu guards nodes: the slice grows at runtime when ServeNode
	// brings a joined ring node online (live.Ring.Join).
	nodesMu sync.RWMutex
	nodes   []*nodeServer

	// metrics is the optional /metrics HTTP listener (nil unless
	// Config.MetricsAddr was set); see metrics.go.
	metrics *metricsServer

	wg        sync.WaitGroup // accept loops + connection handlers
	closeOnce sync.Once
	closeErr  error
}

// nodeServer is the per-node listener and its serving state.
type nodeServer struct {
	srv  *Server
	node *live.Node
	// ring is the ring this node circulates on (srv.ring for a plain
	// server, the owning tier for ServeRouter); liveness checks go
	// through it, never through srv.ring, so a cold-ring node answers
	// for its own ring's failure detector.
	ring      *live.Ring
	ringLabel string // "" on a single-ring server, else "hot"/"cold"
	nodeID    int    // position on ring
	globalID  int    // position in the server's listener list
	schema    minisql.Schema
	ln        net.Listener
	adm       *admission
	cache     *planCache

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	accepted metrics.Counter
	ok       metrics.Counter
	failed   metrics.Counter
	rejected metrics.Counter
	drained  metrics.Counter
	inFlight metrics.Gauge
	latency  *metrics.SyncHistogram
}

// Serve starts one TCP listener per ring node and returns immediately;
// queries arriving at node i's address execute on node i (and fragments
// flow to it around the ring as usual).
func Serve(ring *live.Ring, cfg Config) (*Server, error) {
	s := &Server{cfg: normalizeConfig(cfg), ring: ring, drain: make(chan struct{})}
	for i := 0; i < ring.Size(); i++ {
		if err := s.addNode(ring, "", i, i); err != nil {
			s.Close()
			return nil, err
		}
	}
	if err := s.startMetrics(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// ServeRouter starts one TCP listener per node of every ring of a
// tiered runtime. Listener addresses are allocated in tier order — the
// hot (query) ring's nodes first, then the cold ring's — so address i
// in the handshake's Addrs list serves global node i, exactly as on a
// single ring. The handshake additionally labels every address with
// its ring, letting clients fail over to a same-ring peer first. A
// runtime built with Tiers < 2 degenerates to the plain single-ring
// server.
func ServeRouter(rtr *live.Router, cfg Config) (*Server, error) {
	if rtr.Tiers() < 2 {
		return Serve(rtr.QueryRing(), cfg)
	}
	s := &Server{cfg: normalizeConfig(cfg), ring: rtr.QueryRing(), router: rtr, drain: make(chan struct{})}
	global := 0
	for t := 0; t < rtr.Tiers(); t++ {
		ring := rtr.Tier(live.RingID(t))
		label := live.RingID(t).String()
		for i := 0; i < ring.Size(); i++ {
			if err := s.addNode(ring, label, i, global); err != nil {
				s.Close()
				return nil, err
			}
			global++
		}
	}
	if err := s.startMetrics(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// normalizeConfig fills config defaults.
func normalizeConfig(cfg Config) Config {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultConfig().MaxInFlight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = DefaultConfig().PlanCacheSize
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultConfig().DrainTimeout
	}
	return cfg
}

// addNode binds a listener for node nodeID of ring and starts its
// accept loop. global is the node's position in the server-wide
// listener list (== nodeID on a single ring).
func (s *Server) addNode(ring *live.Ring, label string, nodeID, global int) error {
	addr, err := nodeAddr(s.cfg.Addr, global)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: node %d: %w", global, err)
	}
	node := ring.Node(nodeID)
	ns := &nodeServer{
		srv:       s,
		node:      node,
		ring:      ring,
		ringLabel: label,
		nodeID:    nodeID,
		globalID:  global,
		schema:    node.Schema(),
		ln:        ln,
		adm:       newAdmission(s.cfg.MaxInFlight, s.cfg.MaxQueue),
		cache:     newPlanCache(s.cfg.PlanCacheSize),
		conns:     map[net.Conn]struct{}{},
		latency:   metrics.NewSyncHistogram(fmt.Sprintf("node%d.latency", global), 0.0001),
	}
	s.nodes = append(s.nodes, ns)
	s.wg.Add(1)
	go ns.acceptLoop()
	return nil
}

// nodeAddr derives node i's listen address from the base address: an
// ephemeral base (port 0) is shared as-is, a concrete port P becomes
// P+i so a multi-node ring can be served on fixed, predictable ports.
func nodeAddr(base string, i int) (string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return "", fmt.Errorf("server: bad listen address %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("server: bad listen port %q: %w", portStr, err)
	}
	if port == 0 {
		return base, nil
	}
	return net.JoinHostPort(host, strconv.Itoa(port+i)), nil
}

// Addr reports the bound address of node i's listener.
func (s *Server) Addr(i int) string {
	s.nodesMu.RLock()
	defer s.nodesMu.RUnlock()
	return s.nodes[i].ln.Addr().String()
}

// Addrs reports every node's bound address, in ring order.
func (s *Server) Addrs() []string {
	s.nodesMu.RLock()
	defer s.nodesMu.RUnlock()
	out := make([]string, len(s.nodes))
	for i, ns := range s.nodes {
		out[i] = ns.ln.Addr().String()
	}
	return out
}

// nodeServers snapshots the per-node listener list.
func (s *Server) nodeServers() []*nodeServer {
	s.nodesMu.RLock()
	defer s.nodesMu.RUnlock()
	return append([]*nodeServer(nil), s.nodes...)
}

// ServeNode starts a listener for ring node i, a node admitted after
// Serve by live.Ring.Join. Listeners must be added in ring order (node
// i right after node i-1); the bound address is returned. Subsequent
// handshakes on every node advertise the grown address list, so
// clients learn the newcomer on their next natural refresh.
func (s *Server) ServeNode(i int) (string, error) {
	s.nodesMu.Lock()
	defer s.nodesMu.Unlock()
	// Checked under nodesMu: Close snapshots the node list under the
	// same lock, so a node added here is either seen by Close's
	// teardown or refused below — never leaked.
	select {
	case <-s.drain:
		return "", fmt.Errorf("server: draining")
	default:
	}
	if s.router != nil {
		// Joins target a specific ring; the global listener ordering
		// (hot block then cold block) cannot absorb a mid-list insert.
		return "", fmt.Errorf("server: ServeNode is not supported on a routed server")
	}
	if i < 0 || i >= s.ring.Size() {
		return "", fmt.Errorf("server: no ring node %d", i)
	}
	if i < len(s.nodes) {
		return "", fmt.Errorf("server: node %d already served", i)
	}
	if i != len(s.nodes) {
		return "", fmt.Errorf("server: node %d out of order (next is %d)", i, len(s.nodes))
	}
	if err := s.addNode(s.ring, "", i, i); err != nil {
		return "", err
	}
	return s.nodes[len(s.nodes)-1].ln.Addr().String(), nil
}

// Stats snapshots node i's serving counters.
func (s *Server) Stats(i int) NodeStats {
	s.nodesMu.RLock()
	ns := s.nodes[i]
	s.nodesMu.RUnlock()
	hits, misses := ns.cache.stats()
	st := NodeStats{
		Accepted:        ns.accepted.Get(),
		OK:              ns.ok.Get(),
		Failed:          ns.failed.Get(),
		Rejected:        ns.rejected.Get(),
		Drained:         ns.drained.Get(),
		InFlight:        ns.inFlight.Get(),
		MaxInFlight:     ns.inFlight.Max(),
		Queued:          ns.adm.queued(),
		PlanCacheHits:   hits,
		PlanCacheMisses: misses,
		Count:           int64(ns.latency.Count()),
	}
	cs := ns.node.CacheStats()
	st.CacheHits = cs.Hits
	st.CacheMisses = cs.Misses
	st.CacheStale = cs.Stale
	st.CacheCoalesced = cs.Coalesced
	st.CacheBytes = cs.Bytes
	st.CacheEntries = cs.Entries
	st.RingWaits = cs.RingWaits
	st.RingWait = time.Duration(cs.RingWaitNanos)
	hs := ns.node.HopStats()
	st.HopMsgs = hs.Msgs
	st.HopSingles = hs.Singles
	st.HopBatches = hs.Batches
	st.HopFrags = hs.Frags
	st.HopFill = hs.Fill
	st.HopBytes = hs.Bytes
	st.HopMaxMsg = hs.MaxMsg
	st.HopParked = int64(hs.Parked)
	st.HopParkedTotal = hs.ParkedTotal
	st.HopUnparked = hs.Unparked
	st.PoolAcquires = hs.PoolAcquires
	st.PoolWaits = hs.PoolWaits
	st.Backend = hs.Backend
	st.BackendFallback = hs.BackendFallback
	st.WireSyscalls = hs.WireSyscalls
	st.WireSubmits = hs.WireSubmits
	st.CqeBatch = hs.CqeBatch
	ms := ns.node.MembershipStats()
	st.MembEnabled = ms.Enabled
	st.MembViewVersion = ms.ViewVersion
	st.MembAlive = ms.Alive
	st.MembSuspect = ms.Suspect
	st.MembDead = ms.Dead
	st.MembReplicas = ms.Replicas
	st.MembReplicaLag = ms.ReplicaLag
	st.MembFailovers = ms.Failovers
	st.MembPromotions = ms.Promotions
	st.MembLostFrags = ms.LostFrags
	st.MembBeatsSent = ms.BeatsSent
	st.MembBeatsRecv = ms.BeatsRecv
	sec := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
	st.Mean = sec(ns.latency.Mean())
	st.P50 = sec(ns.latency.Quantile(0.50))
	st.P95 = sec(ns.latency.Quantile(0.95))
	st.P99 = sec(ns.latency.Quantile(0.99))
	return st
}

// KillNode crashes the service of node i: the ring node dies (silently,
// as a real crash — survivors must detect it through missed heartbeats)
// and its listener and open connections are torn down, so clients see
// connection failures, not graceful errors. The rest of the server keeps
// serving.
func (s *Server) KillNode(i int) {
	s.nodesMu.RLock()
	ns := s.nodes[i]
	s.nodesMu.RUnlock()
	ns.ring.KillNode(ns.nodeID)
	ns.ln.Close()
	ns.connMu.Lock()
	for c := range ns.conns {
		c.Close()
	}
	ns.connMu.Unlock()
}

// Close drains and shuts the server down: new queries are refused with
// CodeDraining at once, in-flight queries get up to DrainTimeout to
// finish, then all listeners and connections close. It does not close
// the ring. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.drain)
		if s.metrics != nil {
			s.metrics.close()
		}
		nodes := s.nodeServers()
		for _, ns := range nodes {
			ns.ln.Close()
		}
		deadline := time.Now().Add(s.cfg.DrainTimeout)
		for time.Now().Before(deadline) {
			busy := false
			for _, ns := range nodes {
				// Admission slots, not the stats gauge: the slot is held
				// from the admit operation itself until the response is
				// flushed, so no just-admitted query can slip past drain.
				if ns.adm.inUse() > 0 {
					busy = true
					break
				}
			}
			if !busy {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		for _, ns := range nodes {
			ns.connMu.Lock()
			for c := range ns.conns {
				c.Close()
			}
			ns.connMu.Unlock()
		}
		s.wg.Wait()
	})
	return s.closeErr
}

func (ns *nodeServer) acceptLoop() {
	defer ns.srv.wg.Done()
	for {
		conn, err := ns.ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Query traffic is strict request/response: the client blocks on
		// the frame we are about to send, so letting Nagle's algorithm
		// hold a small result or error frame behind an un-ACKed segment
		// only adds RTTs of latency. Flushes here mark complete protocol
		// frames — push them to the wire at once. (Go enables NODELAY by
		// default; set it explicitly so the latency contract survives a
		// stdlib default change and is visible in the code.)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		ns.connMu.Lock()
		ns.conns[conn] = struct{}{}
		ns.connMu.Unlock()
		ns.srv.wg.Add(1)
		go ns.handle(conn)
	}
}

func (ns *nodeServer) dropConn(conn net.Conn) {
	ns.connMu.Lock()
	delete(ns.conns, conn)
	ns.connMu.Unlock()
	conn.Close()
}

// handle speaks the protocol on one connection: handshake, then a
// query/response loop until the client goes away.
func (ns *nodeServer) handle(conn net.Conn) {
	defer ns.srv.wg.Done()
	defer ns.dropConn(conn)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	typ, payload, err := ReadFrame(br, ns.srv.cfg.MaxFrame)
	if err != nil || typ != FrameHello || string(payload) != Magic {
		WriteFrame(bw, FrameError, EncodeError(CodeBadRequest, "bad handshake"))
		bw.Flush()
		return
	}
	hello, err := EncodeHello(ns.buildHello())
	if err != nil {
		return
	}
	if err := WriteFrame(bw, FrameHelloOK, hello); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	for {
		typ, payload, err := ReadFrame(br, ns.srv.cfg.MaxFrame)
		if err != nil {
			return // client hung up (or drain force-closed us)
		}
		switch typ {
		case FrameQuery:
			ns.serveQuery(bw, string(payload))
		case FrameStats:
			ns.serveStats(bw)
		default:
			WriteFrame(bw, FrameError, EncodeError(CodeBadRequest,
				fmt.Sprintf("unexpected frame type %d", typ)))
			bw.Flush()
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// buildHello assembles the handshake response. A plain server
// advertises its single ring exactly as it always has; a routed server
// reports the global listener list with per-node ring labels and
// liveness read from each node's own ring.
func (ns *nodeServer) buildHello() Hello {
	h := Hello{
		Node:        ns.globalID,
		MaxInFlight: ns.srv.cfg.MaxInFlight,
		ViewVersion: ns.node.MembershipStats().ViewVersion,
		Addrs:       ns.srv.Addrs(),
	}
	if ns.srv.router == nil {
		h.Ring = ns.srv.ring.Size()
		h.Alive = ns.srv.ring.AliveNodes()
		return h
	}
	peers := ns.srv.nodeServers()
	h.Ring = len(peers)
	h.Alive = make([]bool, len(peers))
	h.Rings = make([]string, len(peers))
	for i, p := range peers {
		h.Alive[i] = p.ring.Alive(p.nodeID)
		h.Rings[i] = p.ringLabel
	}
	return h
}

// serveQuery admits, executes, and answers one query.
func (ns *nodeServer) serveQuery(bw *bufio.Writer, sql string) {
	if !ns.ring.Alive(ns.nodeID) {
		// The ring declared this node dead (a failover it did not
		// initiate): its fragments have been re-owned elsewhere and its
		// ring links are cut, so any execution here would only produce
		// "ring closed" errors. Answer as a draining server — clients
		// treat that as "go ask a survivor" and fail over.
		ns.drained.Inc()
		WriteFrame(bw, FrameError, EncodeError(CodeDraining, "node declared dead by the ring"))
		return
	}
	switch err := ns.adm.acquire(ns.srv.drain); err {
	case nil:
	case errRejected:
		ns.rejected.Inc()
		WriteFrame(bw, FrameError, EncodeError(CodeRejected, "admission queue full"))
		return
	default: // errDraining
		ns.drained.Inc()
		WriteFrame(bw, FrameError, EncodeError(CodeDraining, "server draining"))
		return
	}
	ns.accepted.Inc()
	ns.inFlight.Inc()
	// The query counts as in flight until its answer is flushed: Close's
	// drain loop watches this gauge, and a completed query whose result
	// frame is still buffered must not have its connection torn down.
	defer func() {
		bw.Flush()
		ns.inFlight.Dec()
		ns.adm.release()
	}()
	start := time.Now()
	rs, err := ns.exec(sql)
	ns.latency.Observe(time.Since(start).Seconds())

	if err != nil {
		ns.failed.Inc()
		WriteFrame(bw, FrameError, EncodeError(CodeExec, err.Error()))
		return
	}
	// Encode into a pooled buffer: WriteFrame has fully consumed the
	// bytes (copied into the bufio buffer or the socket) by the time it
	// returns, so the buffer can be recycled immediately.
	buf := wirebuf.Get()
	payload, err := AppendResult(buf, rs)
	if err != nil {
		wirebuf.Put(buf)
		ns.failed.Inc()
		WriteFrame(bw, FrameError, EncodeError(CodeExec, err.Error()))
		return
	}
	ns.ok.Inc()
	WriteFrame(bw, FrameResult, payload)
	wirebuf.Put(payload)
}

// serveStats answers one FrameStats request with the node's current
// counters. Stats reads bypass admission: they are cheap, read-only,
// and most useful exactly when the admission queue is saturated.
func (ns *nodeServer) serveStats(bw *bufio.Writer) {
	payload, err := json.Marshal(ns.srv.Stats(ns.globalID))
	if err != nil {
		WriteFrame(bw, FrameError, EncodeError(CodeExec, err.Error()))
		return
	}
	WriteFrame(bw, FrameStatsOK, payload)
}

// exec runs sql on this node, going through the plan cache: a hit skips
// both minisql.Compile and the DC rewrite.
func (ns *nodeServer) exec(sql string) (*mal.ResultSet, error) {
	plan, ok := ns.cache.get(sql)
	if !ok {
		compiled, err := minisql.Compile(sql, ns.schema, "sys")
		if err != nil {
			return nil, err
		}
		plan, _, err = dcopt.Rewrite(compiled)
		if err != nil {
			return nil, err
		}
		ns.cache.put(sql, plan)
	}
	return ns.node.ExecPlan(plan)
}
