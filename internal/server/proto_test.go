package server

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/mal"
)

func TestHelloRoundtrip(t *testing.T) {
	h := Hello{Node: 2, Ring: 5, MaxInFlight: 8}
	payload, err := EncodeHello(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v want %+v", got, h)
	}
	if _, err := DecodeHello(payload[:10]); err == nil {
		t.Fatal("truncated hello accepted")
	}
}

func TestResultRoundtrip(t *testing.T) {
	rs := &mal.ResultSet{
		Names: []string{"id", "name", "score", "flag"},
		Cols: []*bat.BAT{
			bat.MakeInts("id", []int64{1, 2, 3}),
			bat.MakeStrs("name", []string{"a", "", "ccc"}),
			bat.MakeFloats("score", []float64{0.5, -1, 2.25}),
			bat.New("flag", bat.DenseColumn(0, 3), bat.BoolColumn([]bool{true, false, true})),
		},
	}
	payload, err := EncodeResult(rs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != len(rs.Cols) {
		t.Fatalf("got %d columns, want %d", len(got.Cols), len(rs.Cols))
	}
	for i, name := range rs.Names {
		if got.Names[i] != name {
			t.Fatalf("column %d name %q, want %q", i, got.Names[i], name)
		}
		want, g := rs.Cols[i], got.Cols[i]
		if g.Len() != want.Len() {
			t.Fatalf("column %q: %d rows, want %d", name, g.Len(), want.Len())
		}
		for r := 0; r < want.Len(); r++ {
			if g.Tail().Value(r) != want.Tail().Value(r) {
				t.Fatalf("column %q row %d: %v != %v", name, r, g.Tail().Value(r), want.Tail().Value(r))
			}
		}
	}
}

func TestResultRoundtripEmpty(t *testing.T) {
	for _, rs := range []*mal.ResultSet{
		{},
		{Names: []string{"none"}, Cols: []*bat.BAT{bat.MakeInts("none", nil)}},
	} {
		payload, err := EncodeResult(rs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResult(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Cols) != len(rs.Cols) || got.NumRows() != rs.NumRows() {
			t.Fatalf("empty result distorted: %+v", got)
		}
	}
}

func TestDecodeResultCorrupt(t *testing.T) {
	rs := &mal.ResultSet{Names: []string{"x"}, Cols: []*bat.BAT{bat.MakeInts("x", []int64{1, 2})}}
	payload, err := EncodeResult(rs)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must error (or decode) without panicking.
	for n := 0; n < len(payload); n++ {
		DecodeResult(payload[:n])
	}
	if _, err := DecodeResult([]byte("\xff\xff\xff\xff nonsense")); err == nil {
		t.Fatal("garbage accepted")
	}
}
