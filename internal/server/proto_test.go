package server

import (
	"reflect"
	"testing"

	"repro/internal/bat"
	"repro/internal/mal"
)

func TestHelloRoundtrip(t *testing.T) {
	h := Hello{
		Node: 2, Ring: 5, MaxInFlight: 8,
		ViewVersion: 7,
		Addrs:       []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"},
		Alive:       []bool{true, false, true},
	}
	payload, err := EncodeHello(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("got %+v want %+v", got, h)
	}
	if _, err := DecodeHello(payload[:10]); err == nil {
		t.Fatal("truncated hello accepted")
	}
	// Every truncation of the membership section must error, not panic.
	for n := helloSize + 1; n < len(payload); n++ {
		if _, err := DecodeHello(payload[:n]); err == nil {
			t.Fatalf("truncated hello of %d bytes accepted", n)
		}
	}
}

func TestHelloLegacyDecode(t *testing.T) {
	// A bare 24-byte payload is the pre-membership handshake: it must
	// decode with an empty routing cache.
	full, err := EncodeHello(Hello{Node: 1, Ring: 3, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHello(full[:helloSize])
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != 1 || got.Ring != 3 || got.MaxInFlight != 4 {
		t.Fatalf("legacy hello distorted: %+v", got)
	}
	if got.ViewVersion != 0 || got.Addrs != nil || got.Alive != nil {
		t.Fatalf("legacy hello grew membership state: %+v", got)
	}
	if _, err := EncodeHello(Hello{Addrs: []string{"a"}, Alive: nil}); err == nil {
		t.Fatal("mismatched addrs/alive accepted")
	}
}

func TestHelloRingsRoundtrip(t *testing.T) {
	h := Hello{
		Node: 1, Ring: 4, MaxInFlight: 8,
		ViewVersion: 3,
		Addrs:       []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003", "127.0.0.1:9004"},
		Alive:       []bool{true, true, true, false},
		Rings:       []string{"hot", "hot", "cold", "cold"},
	}
	payload, err := EncodeHello(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("got %+v want %+v", got, h)
	}
	// A single-ring payload (no ring section) must decode with nil
	// labels — and be byte-identical to what the pre-tiering encoder
	// produced, which the existing round-trip tests pin down.
	plain := h
	plain.Rings = nil
	payloadPlain, err := EncodeHello(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloadPlain) >= len(payload) {
		t.Fatal("ring section added no bytes")
	}
	gotPlain, err := DecodeHello(payloadPlain)
	if err != nil {
		t.Fatal(err)
	}
	if gotPlain.Rings != nil {
		t.Fatalf("plain hello grew ring labels: %+v", gotPlain)
	}
	// Every truncation of the ring entries must error, not panic. (Cuts
	// inside the leading count word leave fewer than 4 trailing bytes,
	// which decode as a plain hello — the same lenience that keeps old
	// decoders compatible.)
	for n := len(payloadPlain) + 4; n < len(payload); n++ {
		if _, err := DecodeHello(payload[:n]); err == nil {
			t.Fatalf("truncated ring section of %d bytes accepted", n)
		}
	}
	// Label count must match the node count on both sides.
	if _, err := EncodeHello(Hello{
		Addrs: []string{"a", "b"}, Alive: []bool{true, true}, Rings: []string{"hot"},
	}); err == nil {
		t.Fatal("mismatched ring label count accepted")
	}
}

func TestResultRoundtrip(t *testing.T) {
	rs := &mal.ResultSet{
		Names: []string{"id", "name", "score", "flag"},
		Cols: []*bat.BAT{
			bat.MakeInts("id", []int64{1, 2, 3}),
			bat.MakeStrs("name", []string{"a", "", "ccc"}),
			bat.MakeFloats("score", []float64{0.5, -1, 2.25}),
			bat.New("flag", bat.DenseColumn(0, 3), bat.BoolColumn([]bool{true, false, true})),
		},
	}
	payload, err := EncodeResult(rs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != len(rs.Cols) {
		t.Fatalf("got %d columns, want %d", len(got.Cols), len(rs.Cols))
	}
	for i, name := range rs.Names {
		if got.Names[i] != name {
			t.Fatalf("column %d name %q, want %q", i, got.Names[i], name)
		}
		want, g := rs.Cols[i], got.Cols[i]
		if g.Len() != want.Len() {
			t.Fatalf("column %q: %d rows, want %d", name, g.Len(), want.Len())
		}
		for r := 0; r < want.Len(); r++ {
			if g.Tail().Value(r) != want.Tail().Value(r) {
				t.Fatalf("column %q row %d: %v != %v", name, r, g.Tail().Value(r), want.Tail().Value(r))
			}
		}
	}
}

func TestResultRoundtripEmpty(t *testing.T) {
	for _, rs := range []*mal.ResultSet{
		{},
		{Names: []string{"none"}, Cols: []*bat.BAT{bat.MakeInts("none", nil)}},
	} {
		payload, err := EncodeResult(rs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResult(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Cols) != len(rs.Cols) || got.NumRows() != rs.NumRows() {
			t.Fatalf("empty result distorted: %+v", got)
		}
	}
}

func TestDecodeResultCorrupt(t *testing.T) {
	rs := &mal.ResultSet{Names: []string{"x"}, Cols: []*bat.BAT{bat.MakeInts("x", []int64{1, 2})}}
	payload, err := EncodeResult(rs)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must error (or decode) without panicking.
	for n := 0; n < len(payload); n++ {
		DecodeResult(payload[:n])
	}
	if _, err := DecodeResult([]byte("\xff\xff\xff\xff nonsense")); err == nil {
		t.Fatal("garbage accepted")
	}
}
