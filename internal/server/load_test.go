package server_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dcclient"
	"repro/internal/live"
	"repro/internal/server"
)

// TestConcurrentClientsOverTCPRing drives many simultaneous dcclient
// sessions across all nodes of a ring whose *internal* transport is
// also real TCP: the full network path, concurrently, race-detector
// clean. Every client must get either a correct result or a clean
// admission rejection, and the per-node in-flight peak must respect the
// configured cap.
func TestConcurrentClientsOverTCPRing(t *testing.T) {
	ringCfg := live.DefaultConfig()
	ringCfg.Transport = live.TCP
	srvCfg := server.DefaultConfig()
	srvCfg.MaxInFlight = 4
	srvCfg.MaxQueue = 8
	r, s := servedRing(t, 3, ringCfg, srvCfg)

	const sql = "select c.t_id from t, c where c.t_id = t.id"
	want, err := r.Node(0).ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := want.Rows()

	const clients = 64
	const perClient = 3
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		okCount  int
		rejected int
		failures []string
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := dcclient.Dial(s.Addr(i % r.Size()))
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("client %d dial: %v", i, err))
				mu.Unlock()
				return
			}
			defer cl.Close()
			for k := 0; k < perClient; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				rs, err := cl.Query(ctx, sql)
				cancel()
				switch {
				case err == nil:
					if !sameRowMultiset(rs.Rows(), wantRows) {
						mu.Lock()
						failures = append(failures, fmt.Sprintf("client %d: wrong result %v", i, rs.Rows()))
						mu.Unlock()
						return
					}
					mu.Lock()
					okCount++
					mu.Unlock()
				case dcclient.IsRejected(err):
					mu.Lock()
					rejected++
					mu.Unlock()
				default:
					mu.Lock()
					failures = append(failures, fmt.Sprintf("client %d: %v", i, err))
					mu.Unlock()
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("%d failures, first: %s", len(failures), failures[0])
	}
	if okCount == 0 {
		t.Fatal("no query succeeded")
	}
	if okCount+rejected != clients*perClient {
		t.Fatalf("accounting: ok=%d rejected=%d, want total %d", okCount, rejected, clients*perClient)
	}
	for i := 0; i < r.Size(); i++ {
		st := s.Stats(i)
		if st.MaxInFlight > int64(srvCfg.MaxInFlight) {
			t.Fatalf("node %d: in-flight peaked at %d, cap %d", i, st.MaxInFlight, srvCfg.MaxInFlight)
		}
		if st.InFlight != 0 {
			t.Fatalf("node %d: %d queries still in flight", i, st.InFlight)
		}
	}
	t.Logf("ok=%d rejected=%d", okCount, rejected)
	for i := 0; i < r.Size(); i++ {
		t.Logf("node %d: %s", i, s.Stats(i))
	}
}

// sameRowMultiset compares results ignoring row order.
func sameRowMultiset(a, b [][]any) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r []any) string { return fmt.Sprint(r) }
	count := map[string]int{}
	for _, r := range a {
		count[key(r)]++
	}
	for _, r := range b {
		count[key(r)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}
