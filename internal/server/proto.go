package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bat"
	"repro/internal/mal"
)

// The wire protocol is deliberately small: length-prefixed binary
// frames over TCP. Every frame is
//
//	uint32 big-endian payload length | 1 byte frame type | payload
//
// A session opens with Hello/HelloOK and then alternates Query ->
// (Result | Error). Result payloads use the bat package's native codec
// (wire.go): each column travels exactly as it would on the storage
// ring, and clients decode numeric columns zero-copy out of the frame
// buffer. No gob anywhere on this path.

// Frame types.
const (
	// FrameHello opens a session (client -> server); payload is Magic.
	FrameHello byte = 1
	// FrameHelloOK acknowledges (server -> client); payload is a Hello.
	FrameHelloOK byte = 2
	// FrameQuery carries SQL text (client -> server).
	FrameQuery byte = 3
	// FrameResult carries a serialized result set (server -> client).
	FrameResult byte = 4
	// FrameError carries an error code + message (server -> client).
	FrameError byte = 5
	// FrameStats requests the serving node's counters (client -> server,
	// empty payload).
	FrameStats byte = 6
	// FrameStatsOK answers with a JSON-encoded NodeStats (server ->
	// client). JSON is deliberate: stats are low-rate and the struct
	// grows with every observability PR, so a self-describing encoding
	// beats hand-rolled offsets here.
	FrameStatsOK byte = 7
)

// Magic is the handshake payload; it versions the protocol. DCY2
// replaced the gob hello/result payloads with the native binary codec.
const Magic = "DCY2"

// DefaultMaxFrame bounds a single frame (result sets included).
const DefaultMaxFrame = 64 << 20

// Error codes carried by FrameError.
const (
	// CodeBadRequest: the frame sequence or SQL framing was malformed.
	CodeBadRequest byte = 1
	// CodeRejected: admission control's wait queue was full.
	CodeRejected byte = 2
	// CodeDraining: the server is shutting down and takes no new work.
	CodeDraining byte = 3
	// CodeExec: the query compiled or executed with an error.
	CodeExec byte = 4
)

// Hello is the server's handshake response. Beyond the fixed serving
// parameters it carries the node's current membership view: the full
// node address list and per-node liveness, stamped with the view
// version. Clients keep it as a routing cache — when a connection
// fails they retry onto a surviving node and refresh the cache from
// that node's Hello.
type Hello struct {
	Node        int // ring position of the serving node
	Ring        int // ring size
	MaxInFlight int // admission slots at this node

	// ViewVersion is the serving node's membership view version (0 when
	// the ring runs without replication: the view never changes).
	ViewVersion int64
	// Addrs lists every ring node's listen address, in ring order.
	// Empty when the server predates the membership protocol.
	Addrs []string
	// Alive flags each entry of Addrs live or declared dead.
	Alive []bool
	// Rings labels each entry of Addrs with the ring it serves ("hot",
	// "cold"). Empty on a single-ring server: the section is only
	// emitted by a tiered runtime, so the plain handshake stays
	// byte-identical and legacy decoders (which stop after the
	// membership entries) remain compatible.
	Rings []string
}

// RemoteError is a protocol-level failure reported by the server. The
// connection that carried it remains usable.
type RemoteError struct {
	Code byte
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("server: %s (code %d)", e.Msg, e.Code)
}

// Temporary reports whether retrying the same query later may succeed
// (admission rejection or drain, rather than a broken query).
func (e *RemoteError) Temporary() bool {
	return e.Code == CodeRejected || e.Code == CodeDraining
}

// WriteFrame writes one frame: header then payload, two writes with no
// intermediate buffer. Callers pass a *bufio.Writer, which coalesces
// small frames into one segment.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting payloads larger than max.
func ReadFrame(r io.Reader, max int) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:4]))
	if n > max {
		return 0, nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// EncodeError builds a FrameError payload.
func EncodeError(code byte, msg string) []byte {
	return append([]byte{code}, msg...)
}

// DecodeError parses a FrameError payload.
func DecodeError(payload []byte) *RemoteError {
	if len(payload) == 0 {
		return &RemoteError{Code: CodeBadRequest, Msg: "empty error frame"}
	}
	return &RemoteError{Code: payload[0], Msg: string(payload[1:])}
}

// helloSize is the fixed binary prefix of a Hello payload. The
// membership section that follows is variable-length:
//
//	u64 view version | u32 node count
//	per node: 1 byte alive | u32 addrLen | addr bytes
//
// A tiered server appends one more section after the membership
// entries:
//
//	u32 node count | per node: 1 byte labelLen | ring label bytes
//
// A payload of exactly helloSize bytes is the legacy handshake (no
// membership section); DecodeHello accepts all three forms — older
// decoders ignored trailing bytes, which is what makes the ring
// section a compatible extension.
const helloSize = 24

// maxHelloAddr bounds a single address in the membership section, so a
// corrupt count or length cannot amplify into huge allocations.
const maxHelloAddr = 1 << 10

// EncodeHello encodes the handshake response: three little-endian
// 64-bit fields (node, ring size, admission slots) followed by the
// membership section.
func EncodeHello(h Hello) ([]byte, error) {
	if len(h.Addrs) != len(h.Alive) {
		return nil, fmt.Errorf("server: hello has %d addrs for %d alive flags", len(h.Addrs), len(h.Alive))
	}
	if len(h.Rings) != 0 && len(h.Rings) != len(h.Addrs) {
		return nil, fmt.Errorf("server: hello has %d addrs for %d ring labels", len(h.Addrs), len(h.Rings))
	}
	size := helloSize + 8 + 4
	for _, a := range h.Addrs {
		if len(a) > maxHelloAddr {
			return nil, fmt.Errorf("server: hello address %q exceeds %d bytes", a, maxHelloAddr)
		}
		size += 1 + 4 + len(a)
	}
	buf := make([]byte, helloSize, size)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(h.Node))
	le.PutUint64(buf[8:], uint64(h.Ring))
	le.PutUint64(buf[16:], uint64(h.MaxInFlight))
	var b8 [8]byte
	le.PutUint64(b8[:], uint64(h.ViewVersion))
	buf = append(buf, b8[:]...)
	le.PutUint32(b8[:4], uint32(len(h.Addrs)))
	buf = append(buf, b8[:4]...)
	for i, a := range h.Addrs {
		alive := byte(0)
		if h.Alive[i] {
			alive = 1
		}
		buf = append(buf, alive)
		le.PutUint32(b8[:4], uint32(len(a)))
		buf = append(buf, b8[:4]...)
		buf = append(buf, a...)
	}
	if len(h.Rings) > 0 {
		le.PutUint32(b8[:4], uint32(len(h.Rings)))
		buf = append(buf, b8[:4]...)
		for _, r := range h.Rings {
			if len(r) > 255 {
				return nil, fmt.Errorf("server: hello ring label %q exceeds 255 bytes", r)
			}
			buf = append(buf, byte(len(r)))
			buf = append(buf, r...)
		}
	}
	return buf, nil
}

// DecodeHello parses a FrameHelloOK payload, accepting both the legacy
// fixed form and the membership-extended form.
func DecodeHello(payload []byte) (Hello, error) {
	if len(payload) < helloSize {
		return Hello{}, fmt.Errorf("server: hello payload of %d bytes, want at least %d", len(payload), helloSize)
	}
	le := binary.LittleEndian
	h := Hello{
		Node:        int(le.Uint64(payload[0:])),
		Ring:        int(le.Uint64(payload[8:])),
		MaxInFlight: int(le.Uint64(payload[16:])),
	}
	if len(payload) == helloSize {
		return h, nil // legacy handshake: no membership section
	}
	rest := payload[helloSize:]
	if len(rest) < 12 {
		return Hello{}, fmt.Errorf("server: truncated hello membership section (%d bytes)", len(rest))
	}
	h.ViewVersion = int64(le.Uint64(rest[0:]))
	count := int(le.Uint32(rest[8:]))
	if count < 0 || count > len(rest) {
		return Hello{}, fmt.Errorf("server: implausible hello node count %d", count)
	}
	off := 12
	h.Addrs = make([]string, count)
	h.Alive = make([]bool, count)
	for i := 0; i < count; i++ {
		if off+5 > len(rest) {
			return Hello{}, fmt.Errorf("server: truncated hello node entry %d", i)
		}
		h.Alive[i] = rest[off] != 0
		addrLen := int(le.Uint32(rest[off+1:]))
		off += 5
		if addrLen > maxHelloAddr || addrLen > len(rest)-off {
			return Hello{}, fmt.Errorf("server: hello address %d out of bounds", i)
		}
		h.Addrs[i] = string(rest[off : off+addrLen])
		off += addrLen
	}
	if off+4 > len(rest) {
		return h, nil // no ring section: single-ring server
	}
	rcount := int(le.Uint32(rest[off:]))
	off += 4
	if rcount != count {
		return Hello{}, fmt.Errorf("server: hello ring section has %d labels for %d nodes", rcount, count)
	}
	h.Rings = make([]string, rcount)
	for i := 0; i < rcount; i++ {
		if off >= len(rest) {
			return Hello{}, fmt.Errorf("server: truncated hello ring label %d", i)
		}
		n := int(rest[off])
		off++
		if n > len(rest)-off {
			return Hello{}, fmt.Errorf("server: hello ring label %d out of bounds", i)
		}
		h.Rings[i] = string(rest[off : off+n])
		off += n
	}
	return h, nil
}

// A FrameResult payload is the native codec applied column-at-a-time:
//
//	u32 ncols | per column: u32 nameLen, name bytes | pad to 8
//	per column: u64 blobLen (8-aligned) | bat wire bytes | pad to 8
//
// Column blobs start 8-aligned relative to the payload, so a client
// decoding the frame buffer gets zero-copy numeric columns.

func pad8(n int) int { return (n + 7) &^ 7 }

// AppendResult appends the wire form of rs to dst (typically a pooled
// buffer, see wirebuf) and returns the extended slice.
func AppendResult(dst []byte, rs *mal.ResultSet) ([]byte, error) {
	if len(rs.Names) != len(rs.Cols) {
		return nil, fmt.Errorf("server: result has %d names for %d columns", len(rs.Names), len(rs.Cols))
	}
	start := len(dst)
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], uint32(len(rs.Cols)))
	dst = append(dst, b4[:]...)
	for _, name := range rs.Names {
		binary.BigEndian.PutUint32(b4[:], uint32(len(name)))
		dst = append(dst, b4[:]...)
		dst = append(dst, name...)
	}
	var zeros [8]byte
	dst = append(dst, zeros[:pad8(len(dst)-start)-(len(dst)-start)]...)
	for _, c := range rs.Cols {
		// Reserve the length word and backfill it after the append: the
		// encode itself yields the byte count, so the column (and its
		// string heap in particular) is walked exactly once.
		lenOff := len(dst)
		dst = append(dst, zeros[:8]...)
		dst = bat.AppendMarshal(dst, c)
		binary.LittleEndian.PutUint64(dst[lenOff:], uint64(len(dst)-lenOff-8))
		dst = append(dst, zeros[:pad8(len(dst)-start)-(len(dst)-start)]...)
	}
	return dst, nil
}

// EncodeResult serializes a result set for a FrameResult payload.
func EncodeResult(rs *mal.ResultSet) ([]byte, error) {
	return AppendResult(nil, rs)
}

// DecodeResult parses a FrameResult payload back into a result set.
// Numeric result columns are zero-copy views over payload, which must
// not be modified afterwards (each frame read allocates a fresh buffer,
// so this holds by construction in the client).
func DecodeResult(payload []byte) (*mal.ResultSet, error) {
	bad := func(what string) (*mal.ResultSet, error) {
		return nil, fmt.Errorf("server: corrupt result frame: %s", what)
	}
	if len(payload) < 4 {
		return bad("truncated header")
	}
	ncols := int(binary.BigEndian.Uint32(payload))
	// Each column needs at least its 4-byte name length; bounding before
	// the allocations below keeps a corrupt count from amplifying into
	// gigabyte-sized slice makes.
	if ncols < 0 || ncols > (len(payload)-4)/4 {
		return bad("implausible column count")
	}
	off := 4
	rs := &mal.ResultSet{Names: make([]string, ncols), Cols: make([]*bat.BAT, ncols)}
	for i := 0; i < ncols; i++ {
		if off+4 > len(payload) {
			return bad("truncated column name")
		}
		nameLen := int(binary.BigEndian.Uint32(payload[off:]))
		off += 4
		if nameLen < 0 || nameLen > len(payload)-off {
			return bad("column name out of bounds")
		}
		rs.Names[i] = string(payload[off : off+nameLen])
		off += nameLen
	}
	off = pad8(off)
	for i := 0; i < ncols; i++ {
		if off+8 > len(payload) {
			return bad("truncated column length")
		}
		blobLen64 := binary.LittleEndian.Uint64(payload[off:])
		off += 8
		if blobLen64 > uint64(len(payload)-off) {
			return bad("column blob out of bounds")
		}
		blobLen := int(blobLen64)
		b, err := bat.UnmarshalView(payload[off : off+blobLen])
		if err != nil {
			return nil, err
		}
		rs.Cols[i] = b
		off = pad8(off + blobLen)
	}
	return rs, nil
}
