package server

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/bat"
	"repro/internal/mal"
)

// The wire protocol is deliberately small: length-prefixed binary
// frames over TCP. Every frame is
//
//	uint32 big-endian payload length | 1 byte frame type | payload
//
// A session opens with Hello/HelloOK and then alternates Query ->
// (Result | Error). Result payloads reuse the bat package's
// serialization: each column travels exactly as it would on the storage
// ring.

// Frame types.
const (
	// FrameHello opens a session (client -> server); payload is Magic.
	FrameHello byte = 1
	// FrameHelloOK acknowledges (server -> client); payload is a Hello.
	FrameHelloOK byte = 2
	// FrameQuery carries SQL text (client -> server).
	FrameQuery byte = 3
	// FrameResult carries a serialized result set (server -> client).
	FrameResult byte = 4
	// FrameError carries an error code + message (server -> client).
	FrameError byte = 5
)

// Magic is the handshake payload; it versions the protocol.
const Magic = "DCY1"

// DefaultMaxFrame bounds a single frame (result sets included).
const DefaultMaxFrame = 64 << 20

// Error codes carried by FrameError.
const (
	// CodeBadRequest: the frame sequence or SQL framing was malformed.
	CodeBadRequest byte = 1
	// CodeRejected: admission control's wait queue was full.
	CodeRejected byte = 2
	// CodeDraining: the server is shutting down and takes no new work.
	CodeDraining byte = 3
	// CodeExec: the query compiled or executed with an error.
	CodeExec byte = 4
)

// Hello is the server's handshake response.
type Hello struct {
	Node        int // ring position of the serving node
	Ring        int // ring size
	MaxInFlight int // admission slots at this node
}

// RemoteError is a protocol-level failure reported by the server. The
// connection that carried it remains usable.
type RemoteError struct {
	Code byte
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("server: %s (code %d)", e.Msg, e.Code)
}

// Temporary reports whether retrying the same query later may succeed
// (admission rejection or drain, rather than a broken query).
func (e *RemoteError) Temporary() bool {
	return e.Code == CodeRejected || e.Code == CodeDraining
}

// WriteFrame writes one frame. The header and payload go out in a
// single Write so small frames stay in one segment.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	buf := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	buf[4] = typ
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, rejecting payloads larger than max.
func ReadFrame(r io.Reader, max int) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:4]))
	if n > max {
		return 0, nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// EncodeError builds a FrameError payload.
func EncodeError(code byte, msg string) []byte {
	return append([]byte{code}, msg...)
}

// DecodeError parses a FrameError payload.
func DecodeError(payload []byte) *RemoteError {
	if len(payload) == 0 {
		return &RemoteError{Code: CodeBadRequest, Msg: "empty error frame"}
	}
	return &RemoteError{Code: payload[0], Msg: string(payload[1:])}
}

// EncodeHello gob-encodes the handshake response.
func EncodeHello(h Hello) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeHello parses a FrameHelloOK payload.
func DecodeHello(payload []byte) (Hello, error) {
	var h Hello
	err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&h)
	return h, err
}

// resultWire is the on-wire form of a result set: column payloads are
// bat.Marshal output, the same serialization fragments use on the ring.
type resultWire struct {
	Names []string
	Cols  [][]byte
}

// EncodeResult serializes a result set for a FrameResult payload.
func EncodeResult(rs *mal.ResultSet) ([]byte, error) {
	w := resultWire{Names: rs.Names, Cols: make([][]byte, len(rs.Cols))}
	for i, c := range rs.Cols {
		raw, err := bat.Marshal(c)
		if err != nil {
			return nil, err
		}
		w.Cols[i] = raw
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeResult parses a FrameResult payload back into a result set.
func DecodeResult(payload []byte) (*mal.ResultSet, error) {
	var w resultWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return nil, err
	}
	rs := &mal.ResultSet{Names: w.Names, Cols: make([]*bat.BAT, len(w.Cols))}
	for i, raw := range w.Cols {
		b, err := bat.Unmarshal(raw)
		if err != nil {
			return nil, err
		}
		rs.Cols[i] = b
	}
	return rs, nil
}
