// Package core implements the Data Cyclotron runtime layer of §4: the
// control center on every ring node. It is a pure event-driven state
// machine — inputs are local DBMS calls (request/pin/unpin), messages
// from the ring neighbours, and timers; outputs are actions on an Env
// interface. This lets the exact same protocol code run on the
// discrete-event simulator (package cluster) and on the live
// goroutine-per-node ring (package live), mirroring how the paper
// validates its protocols in NS-2 before targeting the RDMA cluster.
//
// The runtime maintains the three catalog structures of Figure 2:
//
//	S1 — the BATs owned by this node's data loader,
//	S2 — outstanding BAT requests of the local queries,
//	S3 — the pin() calls currently blocked per BAT.
//
// and executes the Request Propagation (Fig. 3), BAT Propagation
// (Fig. 4), and Hot Data Set Management (Fig. 5) algorithms, the
// loadAll/resend resource-management functions of §4.2.3, and the
// dynamic LOIT adaptation of §4.4/§5.2.
package core

import (
	"fmt"
	"time"
)

// NodeID identifies a ring node.
type NodeID int

// BATID identifies a data fragment (one BAT).
type BATID int

// QueryID identifies a query registered at some node.
type QueryID int64

// RequestMsg travels anti-clockwise towards the BAT's owner (§4).
type RequestMsg struct {
	Origin NodeID // the node whose queries want the BAT
	BAT    BATID
}

// RequestWireSize is the on-wire size of a BAT request message: the
// fields owner and bat_id of §4.3 plus framing.
const RequestWireSize = 64

// WireSize implements netsim.Message.
func (m RequestMsg) WireSize() int { return RequestWireSize }

// BATMsg is the administrative header that travels clockwise with each
// hot-set fragment (§4.3): owner, bat_id, bat_size, loi, copies, hops,
// cycles. In simulation only the header travels and Size accounts for
// the payload; in the live ring the payload BAT rides along.
type BATMsg struct {
	Owner  NodeID
	BAT    BATID
	Size   int // payload bytes
	LOI    float64
	Copies int
	Hops   int
	Cycles int
}

// BATHeaderSize is the header overhead of a BAT message on the wire.
const BATHeaderSize = 64

// WireSize implements netsim.Message.
func (m BATMsg) WireSize() int { return m.Size + BATHeaderSize }

// TimerHandle cancels a pending timer.
type TimerHandle interface{ Cancel() }

// Env is the driver surface the runtime acts through.
type Env interface {
	// Now returns the current time (virtual or wall clock).
	Now() time.Duration
	// SendData forwards a BAT message clockwise to the successor.
	SendData(BATMsg)
	// SendRequest forwards a request anti-clockwise to the predecessor.
	// It reports false when the message was dropped (DropTail), in
	// which case the resend timeout will recover (§4.2.3).
	SendRequest(RequestMsg) bool
	// QueueLoad reports the local BAT queue occupancy and capacity in
	// bytes; the LOIT adaptation is driven by this (§4.4).
	QueueLoad() (used, capacity int)
	// After schedules fn after d; the returned handle cancels it.
	After(d time.Duration, fn func()) TimerHandle
	// Deliver hands BAT b to query q, unblocking its pin() call.
	Deliver(q QueryID, b BATID)
	// QueryError aborts query q: the requested BAT does not exist
	// (first outcome of Request Propagation).
	QueryError(q QueryID, b BATID, reason string)
	// OnLoad and OnUnload observe hot-set membership changes of BATs
	// owned by this node (for ring-load accounting and Figure 7/9).
	OnLoad(b BATID, size int)
	OnUnload(b BATID, size int)
}

// Config tunes the runtime.
type Config struct {
	// LOITLevels are the discrete threshold levels (§5.2 uses
	// 0.1/0.6/1.1). With AdaptiveLOIT off, only level StartLevel is
	// used, reproducing the static sweeps of §5.1.
	LOITLevels []float64
	// StartLevel indexes LOITLevels at start-up.
	StartLevel int
	// AdaptiveLOIT moves the level with the queue watermarks.
	AdaptiveLOIT bool
	// HighWater and LowWater are queue-load fractions: above HighWater
	// the LOIT steps up one level, below LowWater it steps down (§5.2
	// uses 0.8 and 0.4).
	HighWater, LowWater float64
	// InitialLOI is the level of interest assigned when a BAT enters
	// the ring.
	InitialLOI float64
	// LoadAllPeriod is the T of §4.2.3: how often postponed BAT loads
	// are retried.
	LoadAllPeriod time.Duration
	// ResendTimeout is the rotational-delay timeout that detects lost
	// requests (§4.2.3). Zero disables resending.
	ResendTimeout time.Duration
	// LocalPinsSkipLoad keeps a purely local request at the owner from
	// admitting the BAT into the storage ring: the owner serves its own
	// pins from local storage either way, so circulation only benefits
	// other nodes — and their ring requests still trigger the load.
	// The live ring enables this together with its hot-set cache, so a
	// fully-hot local workload causes zero circulation. Off by default
	// (the paper's behavior, and what the simulator reproduces).
	LocalPinsSkipLoad bool
	// ParkIdleCycles enables LOI-gated hop pacing: a BAT that completes
	// this many consecutive revolutions with zero copies (nobody
	// downstream used it, per the envelope's own interest accounting) is
	// parked at its owner instead of burning hop slots — it stays in the
	// hot set, its LOI frozen, and re-enters circulation the moment the
	// next interest signal (a ring request) reaches the owner. Any
	// request arriving at the owner also resets the idle count, so
	// interest announced just before a would-be park keeps the BAT
	// flowing. 0 disables pacing (every hot BAT circulates continuously,
	// the paper's behavior and the pre-pacing wire behavior).
	ParkIdleCycles int
}

// DefaultConfig mirrors the paper's experimental settings.
func DefaultConfig() Config {
	return Config{
		LOITLevels:    []float64{0.1, 0.6, 1.1},
		StartLevel:    0,
		AdaptiveLOIT:  true,
		HighWater:     0.8,
		LowWater:      0.4,
		InitialLOI:    0,
		LoadAllPeriod: 100 * time.Millisecond,
		ResendTimeout: 2 * time.Second,
	}
}

// ownedBAT is an S1 entry.
type ownedBAT struct {
	id           BATID
	size         int
	loaded       bool
	pending      bool
	pendingSince time.Duration

	// LOI-gated pacing state (Config.ParkIdleCycles): consecutive
	// zero-copy revolutions observed, and — while parked — the frozen
	// circulation header the BAT re-enters the ring with.
	idleCycles int
	parked     bool
	parkedMsg  BATMsg

	// initLOI, when non-zero, overrides Config.InitialLOI for this
	// BAT's next ring admission and is then consumed. A replica
	// promoted to owner after a node death enters circulation with the
	// interest it had accumulated before the crash instead of starting
	// cold (§6.3).
	initLOI float64
}

// request is an S2 entry: one outstanding request aggregating all local
// queries interested in the BAT.
type request struct {
	bat       BATID
	queries   map[QueryID]bool // registered interest
	delivered map[QueryID]bool // queries that have pinned and received it
	sent      bool
	resend    TimerHandle
}

func (r *request) allDelivered() bool {
	for q := range r.queries {
		if !r.delivered[q] {
			return false
		}
	}
	return true
}

// cacheEntry tracks a locally cached BAT while local queries hold pins.
type cacheEntry struct {
	refs int
}

// Stats counts protocol events on one node.
type Stats struct {
	RequestsSent      uint64
	RequestsForwarded uint64
	RequestsAbsorbed  uint64
	RequestsReturned  uint64 // came back to origin: BAT does not exist
	Resends           uint64
	BATsForwarded     uint64
	BATsLoaded        uint64
	BATsUnloaded      uint64
	Deliveries        uint64
	PendingPostponed  uint64 // load postponed because the ring was full
	LOITSteps         uint64
	CacheInterest     uint64 // pins served node-locally, folded into LOI
	BATsParked        uint64 // idle BATs held at their owner (LOI pacing)
	BATsUnparked      uint64 // parked BATs re-admitted by an interest signal
	BATsPromoted      uint64 // replicas adopted as owned after a node death
	OrbitsSuspected   uint64 // circulating BATs marked lost after a node death
}

// Runtime is the Data Cyclotron layer of one node.
type Runtime struct {
	id  NodeID
	env Env
	cfg Config

	s1 map[BATID]*ownedBAT
	s2 map[BATID]*request
	s3 map[BATID]map[QueryID]bool

	cache       map[BATID]*cacheEntry
	pendingFIFO []BATID // owned BATs awaiting ring admission, oldest first

	// localHits accumulates pins served from a node-local hot-set cache
	// since the BAT last flowed past this node. The LOI accounting of
	// §4.4 counts copies per hop; a cache hit is the same interest
	// without the delivery, so the pending count is folded into Copies
	// the next time the BAT passes (or into the owner's LOI directly).
	localHits map[BATID]int

	loitLevel int
	loadTimer func() // cancels the loadAll ticker (set by Start)

	stats Stats
}

// New creates the runtime for node id. Call Start to arm the loadAll
// ticker once the Env is live.
func New(id NodeID, env Env, cfg Config) *Runtime {
	if len(cfg.LOITLevels) == 0 {
		cfg.LOITLevels = []float64{0.1}
	}
	if cfg.StartLevel < 0 || cfg.StartLevel >= len(cfg.LOITLevels) {
		cfg.StartLevel = 0
	}
	return &Runtime{
		id:        id,
		env:       env,
		cfg:       cfg,
		s1:        make(map[BATID]*ownedBAT),
		s2:        make(map[BATID]*request),
		s3:        make(map[BATID]map[QueryID]bool),
		cache:     make(map[BATID]*cacheEntry),
		localHits: make(map[BATID]int),
		loitLevel: cfg.StartLevel,
	}
}

// ID reports the node id.
func (rt *Runtime) ID() NodeID { return rt.id }

// Stats returns a snapshot of the protocol counters.
func (rt *Runtime) Stats() Stats { return rt.stats }

// LOIT reports the node's current level-of-interest threshold.
func (rt *Runtime) LOIT() float64 { return rt.cfg.LOITLevels[rt.loitLevel] }

// LOITLevel reports the current level index.
func (rt *Runtime) LOITLevel() int { return rt.loitLevel }

// Owns reports whether this node's data loader owns b.
func (rt *Runtime) Owns(b BATID) bool {
	_, ok := rt.s1[b]
	return ok
}

// Loaded reports whether owned BAT b is currently in the hot set.
func (rt *Runtime) Loaded(b BATID) bool {
	o, ok := rt.s1[b]
	return ok && o.loaded
}

// PendingLoads reports how many owned BATs await ring admission.
func (rt *Runtime) PendingLoads() int { return len(rt.pendingFIFO) }

// OutstandingRequests reports the S2 size.
func (rt *Runtime) OutstandingRequests() int { return len(rt.s2) }

// HasRequest reports whether b has an outstanding S2 request on this
// node — live interest that has not yet been delivered or cancelled.
// Cross-ring migration drains on this: a fragment leaves a ring only
// once no node of that ring still awaits it.
func (rt *Runtime) HasRequest(b BATID) bool {
	_, ok := rt.s2[b]
	return ok
}

// Parked reports whether owned BAT b is currently held at this owner by
// LOI-gated pacing (ParkIdleCycles), awaiting a fresh interest signal.
func (rt *Runtime) Parked(b BATID) bool {
	o, ok := rt.s1[b]
	return ok && o.parked
}

// AddOwned registers b in the node's S1 catalog (the random upfront
// partitioning of §4). The BAT starts cold, on the local disk.
func (rt *Runtime) AddOwned(b BATID, size int) {
	rt.s1[b] = &ownedBAT{id: b, size: size}
}

// AdoptOwned registers b as owned with an explicit hot-set state: the
// receiving side of an ownership handover during ring membership
// changes (§6.3). A BAT adopted as loaded keeps circulating; its next
// pass at this node runs hot-set management as usual.
func (rt *Runtime) AdoptOwned(b BATID, size int, loaded bool) {
	rt.s1[b] = &ownedBAT{id: b, size: size, loaded: loaded}
}

// PromoteOwned registers b as owned by way of replica promotion after
// its previous owner died (§6.3). The BAT enters S1 cold (not loaded),
// so the next interest signal re-admits it through the normal tryLoad
// path; loi carries the level of interest the fragment had accumulated
// while circulating from its dead owner, so a hot fragment resumes as
// hot instead of re-earning its place from zero.
func (rt *Runtime) PromoteOwned(b BATID, size int, loi float64) {
	rt.s1[b] = &ownedBAT{id: b, size: size, initLOI: loi}
	rt.stats.BATsPromoted++
	// Queries that pinned b while its old owner was (silently) dead are
	// still blocked in S3, waiting on a delivery that died with it. The
	// promotion makes this node the owner, so those pins are served the
	// same way Pin serves an owner's query: from local storage, now.
	if pins := rt.s3[b]; len(pins) > 0 {
		for q := range pins {
			rt.deliver(b, q)
		}
		delete(rt.s3, b)
		rt.finishRequestIfDone(b)
	}
}

// SuspectOrbit marks every owned, circulating BAT as unloaded: called
// on the survivors of a ring membership failure, whose in-flight
// envelopes may have died in the dead node's queues. The owner cannot
// tell a lost envelope from a slow one, so it assumes loss: the next
// interest signal re-admits the BAT through tryLoad exactly like a
// first load (requesters' resend timers fire within one ResendTimeout,
// so a fragment someone is waiting for re-enters orbit in bounded
// time). An envelope that in fact survived keeps circulating and
// serving pins until it returns here, where hot-set management drops
// unloaded arrivals silently — at most one transient duplicate, never
// a lost fragment. Parked BATs hold their envelope locally and keep it.
func (rt *Runtime) SuspectOrbit() int {
	n := 0
	for _, o := range rt.s1 {
		if o.loaded && !o.parked {
			o.loaded = false
			o.idleCycles = 0
			n++
			rt.stats.OrbitsSuspected++
			rt.env.OnUnload(o.id, o.size)
		}
	}
	rt.adaptLOIT()
	return n
}

// RemoveOwned drops b from S1 (used by ownership handover in pulsating
// rings). Reports the entry's size and whether it was loaded.
func (rt *Runtime) RemoveOwned(b BATID) (size int, loaded, ok bool) {
	o, exists := rt.s1[b]
	if !exists {
		return 0, false, false
	}
	delete(rt.s1, b)
	rt.unpend(b)
	return o.size, o.loaded, true
}

// OwnedBATs lists the S1 catalog (for handover and tests).
func (rt *Runtime) OwnedBATs() []BATID {
	out := make([]BATID, 0, len(rt.s1))
	for id := range rt.s1 {
		out = append(out, id)
	}
	return out
}

// Start arms the periodic loadAll function (§4.2.3).
func (rt *Runtime) Start() {
	if rt.cfg.LoadAllPeriod > 0 {
		stop := rt.tick(rt.cfg.LoadAllPeriod)
		rt.loadTimer = stop
	}
}

// Stop cancels the loadAll ticker.
func (rt *Runtime) Stop() {
	if rt.loadTimer != nil {
		rt.loadTimer()
		rt.loadTimer = nil
	}
}

func (rt *Runtime) tick(period time.Duration) (stop func()) {
	stopped := false
	var arm func()
	arm = func() {
		rt.env.After(period, func() {
			if stopped {
				return
			}
			rt.LoadAll()
			// Evaluate the watermark rule on every tick, not only on
			// load/arrival events: an idle node whose queue load has
			// drained below LowWater must still step its LOIT back down
			// (§5.2), otherwise it stays pinned at a high threshold until
			// the next load happens to run the adaptation.
			rt.adaptLOIT()
			arm()
		})
	}
	arm()
	return func() { stopped = true }
}

// ---------------------------------------------------------------------
// DBMS-facing calls (§4.2.1)
// ---------------------------------------------------------------------

// Request registers query q's interest in BAT b: the request() call of
// the rewritten plan. It never blocks.
func (rt *Runtime) Request(q QueryID, b BATID) {
	if o, owned := rt.s1[b]; owned {
		// Owner: load into the hot set (or locally serve) if needed.
		if !o.loaded && !rt.cfg.LocalPinsSkipLoad {
			rt.tryLoad(o)
		}
		// Local queries of the owner are served from local storage;
		// track them so Pin can deliver immediately.
		rq := rt.ensureRequest(b)
		rq.queries[q] = true
		return
	}
	rq, isNew := rt.ensureRequestNew(b)
	rq.queries[q] = true
	if isNew {
		rt.sendRequest(rq)
	}
}

// Pin blocks query q until BAT b is locally available; here it only
// registers the blocked pin in S3 (or delivers immediately from the
// local cache / owner storage). The driver implements the actual
// blocking around Env.Deliver.
func (rt *Runtime) Pin(q QueryID, b BATID) {
	if _, owned := rt.s1[b]; owned {
		// Owner: retrieved from disk or local memory (§4.2.1).
		rt.deliver(b, q)
		rt.finishRequestIfDone(b)
		return
	}
	if e := rt.cache[b]; e != nil {
		// Local cache hit: a local query holds the BAT pinned (§4.2.1
		// "the pin() request checks the local cache for availability").
		e.refs++
		rt.deliver(b, q)
		rt.finishRequestIfDone(b)
		return
	}
	// Block until the BAT flows past.
	pins := rt.s3[b]
	if pins == nil {
		pins = make(map[QueryID]bool)
		rt.s3[b] = pins
	}
	pins[q] = true
	// Make sure an S2 request backs this pin. A query that re-pins a
	// BAT after its request was already satisfied (and the local cache
	// released) must re-announce interest, otherwise the fragment may
	// never flow past again.
	rq, isNew := rt.ensureRequestNew(b)
	rq.queries[q] = true
	if rq.delivered[q] {
		delete(rq.delivered, q) // awaiting a fresh delivery
	}
	if isNew || !rq.sent {
		rt.sendRequest(rq)
	}
}

// Unpin releases query q's hold on BAT b.
func (rt *Runtime) Unpin(q QueryID, b BATID) {
	if e := rt.cache[b]; e != nil {
		e.refs--
		if e.refs <= 0 {
			delete(rt.cache, b)
		}
	}
	if pins := rt.s3[b]; pins != nil {
		delete(pins, q)
		if len(pins) == 0 {
			delete(rt.s3, b)
		}
	}
}

// NoteLocalHit records that a pin of b was served from a node-local
// hot-set cache, bypassing ring delivery. The interest still counts:
// it is folded into the BAT's copy count the next time b flows past,
// so the owner's LOI reflects cached readers too and a hot fragment is
// not evicted merely because every node already holds it locally.
func (rt *Runtime) NoteLocalHit(b BATID) {
	rt.localHits[b]++
	rt.stats.CacheInterest++
}

// takeLocalHits drains the pending local-hit count for b.
func (rt *Runtime) takeLocalHits(b BATID) int {
	n := rt.localHits[b]
	if n > 0 {
		delete(rt.localHits, b)
	}
	return n
}

// CancelQuery removes all of q's bookkeeping (used when a query is
// aborted or migrates away during the nomadic phase).
func (rt *Runtime) CancelQuery(q QueryID, bats []BATID) {
	for _, b := range bats {
		if rq := rt.s2[b]; rq != nil {
			delete(rq.queries, q)
			delete(rq.delivered, q)
			if len(rq.queries) == 0 {
				rt.dropRequest(rq)
			} else {
				rt.finishRequestIfDone(b)
			}
		}
		if pins := rt.s3[b]; pins != nil {
			delete(pins, q)
			if len(pins) == 0 {
				delete(rt.s3, b)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Peer interaction (§4.2.2)
// ---------------------------------------------------------------------

// OnRequest executes the Request Propagation algorithm (Fig. 3) for a
// request message arriving from the successor.
func (rt *Runtime) OnRequest(m RequestMsg) {
	// First outcome: the request returned to its origin — the BAT does
	// not exist (anymore) in the database.
	if m.Origin == rt.id {
		rt.stats.RequestsReturned++
		if rq := rt.s2[m.BAT]; rq != nil {
			for q := range rq.queries {
				if !rq.delivered[q] {
					rt.env.QueryError(q, m.BAT, "BAT does not exist")
				}
			}
			rt.dropRequest(rq)
		}
		delete(rt.s3, m.BAT)
		return
	}
	// Second/third/fourth outcomes: this node owns the BAT.
	if o, owned := rt.s1[m.BAT]; owned {
		if o.loaded {
			// An interest signal reached the owner: a parked BAT
			// re-enters circulation, and a circulating one gets its idle
			// count cleared so the fresh interest keeps it from parking
			// before the requester's pin is counted downstream.
			if o.parked {
				rt.unpark(o)
			} else {
				o.idleCycles = 0
			}
			return
		}
		rt.tryLoad(o)
		return
	}
	// Fifth outcome: same request outstanding here — absorb it. The
	// owner has been (or will be) notified by our own request, and the
	// BAT circulates past every node including the origin.
	if rq := rt.s2[m.BAT]; rq != nil {
		if rq.sent {
			rt.stats.RequestsAbsorbed++
			return
		}
		// Ours was never sent (e.g. created while we owned it during a
		// handover): ride on the incoming one.
		rq.sent = true
		rt.armResend(rq)
	}
	// Sixth outcome: forward.
	rt.stats.RequestsForwarded++
	rt.env.SendRequest(m)
}

// OnBAT handles a BAT arriving from the predecessor: Hot Data Set
// Management (Fig. 5) when this node is the loader, BAT Propagation
// (Fig. 4) otherwise.
func (rt *Runtime) OnBAT(m BATMsg) {
	if m.Owner == rt.id {
		rt.hotSetManagement(m)
		return
	}
	rt.batPropagation(m)
}

// batPropagation implements Fig. 4.
func (rt *Runtime) batPropagation(m BATMsg) {
	m.Hops++
	m.Copies += rt.takeLocalHits(m.BAT)
	if rq := rt.s2[m.BAT]; rq != nil {
		rq.sent = true // the BAT's presence proves the request got through
	}
	if pins := rt.s3[m.BAT]; len(pins) > 0 {
		// At least one local query is blocked in pin(): the node uses
		// the BAT, counting one copy (§4.2.3).
		m.Copies++
		for q := range pins {
			rt.cacheRef(m.BAT)
			rt.deliver(m.BAT, q)
		}
		delete(rt.s3, m.BAT)
	}
	rt.finishRequestIfDone(m.BAT)
	rt.stats.BATsForwarded++
	rt.env.SendData(m)
	rt.adaptLOIT()
}

// hotSetManagement implements Fig. 5 and equation (1).
func (rt *Runtime) hotSetManagement(m BATMsg) {
	o := rt.s1[m.BAT]
	if o == nil || !o.loaded {
		// The BAT was unloaded concurrently (e.g. ownership moved);
		// drop it silently — it is no longer part of the hot set.
		return
	}
	m.Cycles++
	m.Copies += rt.takeLocalHits(m.BAT)
	copiesThisRev := m.Copies
	cavg := 0.0
	if m.Hops > 0 {
		cavg = float64(m.Copies) / float64(m.Hops)
	}
	newLOI := (m.LOI + cavg*float64(m.Cycles)) / float64(m.Cycles)
	m.Copies = 0
	m.Hops = 0
	// LOI-gated pacing: the envelope says nobody downstream copied the
	// BAT this whole revolution. After ParkIdleCycles such revolutions
	// in a row, hold it here instead of burning another revolution's
	// worth of hop slots; the next request arriving at this owner
	// re-admits it with the header frozen at this point (the pause
	// itself costs no further LOI decay — that is what distinguishes a
	// park from the unload below, which forgets the LOI and pays the
	// LoadAll round-trip to come back). The park check precedes the
	// threshold check deliberately: an idle revolution is exactly when
	// the LOI divides by the cycle count, so a threshold-first order
	// would unload almost every idle BAT before it could ever park.
	if rt.cfg.ParkIdleCycles > 0 {
		if copiesThisRev == 0 {
			o.idleCycles++
			if o.idleCycles >= rt.cfg.ParkIdleCycles {
				m.LOI = newLOI
				o.parked = true
				o.parkedMsg = m
				rt.stats.BATsParked++
				rt.adaptLOIT()
				return
			}
		} else {
			o.idleCycles = 0
		}
	}
	if newLOI < rt.LOIT() {
		// Below threshold: pull the BAT out of the hot set.
		o.loaded = false
		o.idleCycles = 0
		rt.stats.BATsUnloaded++
		rt.env.OnUnload(m.BAT, o.size)
		rt.adaptLOIT()
		return
	}
	m.LOI = newLOI
	rt.stats.BATsForwarded++
	rt.env.SendData(m)
	rt.adaptLOIT()
}

// unpark re-admits a parked BAT into circulation with the header it was
// parked with (its LOI and cycle count frozen across the pause).
func (rt *Runtime) unpark(o *ownedBAT) {
	o.parked = false
	o.idleCycles = 0
	rt.stats.BATsUnparked++
	rt.stats.BATsForwarded++
	rt.env.SendData(o.parkedMsg)
}

// ParkedBATs reports how many owned BATs are currently parked by the
// LOI pacing (in the hot set but held out of circulation).
func (rt *Runtime) ParkedBATs() int {
	n := 0
	for _, o := range rt.s1 {
		if o.parked {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------
// Storage ring management (§4.2.3, §4.4)
// ---------------------------------------------------------------------

// tryLoad admits an owned BAT into the storage ring if the local BAT
// queue has room, otherwise tags it pending for LoadAll.
func (rt *Runtime) tryLoad(o *ownedBAT) {
	if o.loaded {
		return
	}
	used, capacity := rt.env.QueueLoad()
	if capacity > 0 && used+o.size+BATHeaderSize > capacity {
		if !o.pending {
			o.pending = true
			o.pendingSince = rt.env.Now()
			rt.pendingFIFO = append(rt.pendingFIFO, o.id)
			rt.stats.PendingPostponed++
		}
		rt.adaptLOIT()
		return
	}
	rt.load(o)
}

func (rt *Runtime) load(o *ownedBAT) {
	o.loaded = true
	rt.unpend(o.id)
	rt.stats.BATsLoaded++
	rt.env.OnLoad(o.id, o.size)
	rt.env.SendData(BATMsg{
		Owner: rt.id,
		BAT:   o.id,
		Size:  o.size,
		LOI:   rt.admitLOI(o),
	})
	rt.adaptLOIT()
}

// admitLOI is the level of interest a BAT enters the ring with:
// normally Config.InitialLOI, but a promoted replica's first admission
// consumes the interest it accumulated before its owner died.
func (rt *Runtime) admitLOI(o *ownedBAT) float64 {
	if o.initLOI != 0 {
		loi := o.initLOI
		o.initLOI = 0
		return loi
	}
	return rt.cfg.InitialLOI
}

func (rt *Runtime) unpend(b BATID) {
	if o := rt.s1[b]; o != nil {
		o.pending = false
	}
	for i, id := range rt.pendingFIFO {
		if id == b {
			rt.pendingFIFO = append(rt.pendingFIFO[:i], rt.pendingFIFO[i+1:]...)
			return
		}
	}
}

// LoadAll executes postponed BAT loads, oldest first; a BAT that does
// not fit leaves room for trying the next one, optimizing queue
// utilization (§4.2.3).
func (rt *Runtime) LoadAll() {
	if len(rt.pendingFIFO) == 0 {
		return
	}
	used, capacity := rt.env.QueueLoad()
	free := capacity - used
	if capacity == 0 {
		free = 1 << 62 // unbounded queue
	}
	remaining := rt.pendingFIFO[:0:0]
	for _, id := range rt.pendingFIFO {
		o := rt.s1[id]
		if o == nil || !o.pending {
			continue
		}
		need := o.size + BATHeaderSize
		if need <= free {
			free -= need
			o.pending = false
			o.loaded = true
			rt.stats.BATsLoaded++
			rt.env.OnLoad(o.id, o.size)
			rt.env.SendData(BATMsg{Owner: rt.id, BAT: o.id, Size: o.size, LOI: rt.admitLOI(o)})
		} else {
			remaining = append(remaining, id)
		}
	}
	rt.pendingFIFO = remaining
	rt.adaptLOIT()
}

// adaptLOIT applies the watermark rule of §5.2: queue load above the
// high watermark steps the threshold up one level, below the low
// watermark steps it down.
func (rt *Runtime) adaptLOIT() {
	if !rt.cfg.AdaptiveLOIT {
		return
	}
	used, capacity := rt.env.QueueLoad()
	if capacity <= 0 {
		return
	}
	frac := float64(used) / float64(capacity)
	switch {
	case frac > rt.cfg.HighWater && rt.loitLevel < len(rt.cfg.LOITLevels)-1:
		rt.loitLevel++
		rt.stats.LOITSteps++
	case frac < rt.cfg.LowWater && rt.loitLevel > 0:
		rt.loitLevel--
		rt.stats.LOITSteps++
	}
}

// ---------------------------------------------------------------------
// request plumbing
// ---------------------------------------------------------------------

func (rt *Runtime) ensureRequest(b BATID) *request {
	rq, _ := rt.ensureRequestNew(b)
	return rq
}

func (rt *Runtime) ensureRequestNew(b BATID) (*request, bool) {
	if rq := rt.s2[b]; rq != nil {
		return rq, false
	}
	rq := &request{
		bat:       b,
		queries:   make(map[QueryID]bool),
		delivered: make(map[QueryID]bool),
	}
	rt.s2[b] = rq
	return rq, true
}

func (rt *Runtime) sendRequest(rq *request) {
	rq.sent = true
	rt.stats.RequestsSent++
	rt.env.SendRequest(RequestMsg{Origin: rt.id, BAT: rq.bat})
	rt.armResend(rq)
}

// armResend schedules the rotational-delay timeout that detects lost
// requests or BATs (§4.2.3).
func (rt *Runtime) armResend(rq *request) {
	if rt.cfg.ResendTimeout <= 0 {
		return
	}
	if rq.resend != nil {
		rq.resend.Cancel()
	}
	b := rq.bat
	rq.resend = rt.env.After(rt.cfg.ResendTimeout, func() {
		cur := rt.s2[b]
		if cur == nil || cur.allDelivered() {
			return
		}
		rt.stats.Resends++
		rt.stats.RequestsSent++
		rt.env.SendRequest(RequestMsg{Origin: rt.id, BAT: b})
		rt.armResend(cur)
	})
}

func (rt *Runtime) dropRequest(rq *request) {
	if rq.resend != nil {
		rq.resend.Cancel()
	}
	delete(rt.s2, rq.bat)
}

// deliver hands b to query q and records it against the request.
func (rt *Runtime) deliver(b BATID, q QueryID) {
	if rq := rt.s2[b]; rq != nil {
		rq.delivered[q] = true
	}
	rt.stats.Deliveries++
	rt.env.Deliver(q, b)
}

// finishRequestIfDone unregisters the request once every associated
// query has pinned the BAT (Fig. 4 lines 09-10).
func (rt *Runtime) finishRequestIfDone(b BATID) {
	rq := rt.s2[b]
	if rq == nil {
		return
	}
	if rq.allDelivered() && len(rt.s3[b]) == 0 {
		rt.dropRequest(rq)
	}
}

// cacheRef notes a locally cached copy while pins are held.
func (rt *Runtime) cacheRef(b BATID) {
	e := rt.cache[b]
	if e == nil {
		e = &cacheEntry{}
		rt.cache[b] = e
	}
	e.refs++
}

// String summarizes the node state for debugging.
func (rt *Runtime) String() string {
	used, capacity := rt.env.QueueLoad()
	return fmt.Sprintf("node %d: owned=%d outstanding=%d pins=%d pending=%d loit=%.1f queue=%d/%d",
		rt.id, len(rt.s1), len(rt.s2), len(rt.s3), len(rt.pendingFIFO), rt.LOIT(), used, capacity)
}
