package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// miniRing wires N runtimes directly together with a synchronous FIFO
// message pump — no network model, no cluster driver. It validates the
// protocol state machines in isolation.
type miniRing struct {
	t     *testing.T
	nodes []*Runtime
	envs  []*miniEnv
	queue []func() // pending message handoffs, FIFO
}

type miniEnv struct {
	ring      *miniRing
	idx       int
	now       time.Duration
	delivered map[QueryID][]BATID
	errors    int
	queueCap  int
	queueUsed int
}

func (e *miniEnv) Now() time.Duration { return e.now }

func (e *miniEnv) SendData(m BATMsg) {
	r := e.ring
	next := (e.idx + 1) % len(r.nodes)
	r.queue = append(r.queue, func() { r.nodes[next].OnBAT(m) })
}

func (e *miniEnv) SendRequest(m RequestMsg) bool {
	r := e.ring
	prev := (e.idx - 1 + len(r.nodes)) % len(r.nodes)
	r.queue = append(r.queue, func() { r.nodes[prev].OnRequest(m) })
	return true
}

func (e *miniEnv) QueueLoad() (int, int) { return e.queueUsed, e.queueCap }

type noTimer struct{}

func (noTimer) Cancel() {}

func (e *miniEnv) After(d time.Duration, fn func()) TimerHandle { return noTimer{} }

func (e *miniEnv) Deliver(q QueryID, b BATID) {
	e.delivered[q] = append(e.delivered[q], b)
}

func (e *miniEnv) QueryError(q QueryID, b BATID, reason string) { e.errors++ }
func (e *miniEnv) OnLoad(b BATID, size int)                     {}
func (e *miniEnv) OnUnload(b BATID, size int)                   {}

func newMiniRing(t *testing.T, n int, cfg Config) *miniRing {
	r := &miniRing{t: t}
	for i := 0; i < n; i++ {
		env := &miniEnv{ring: r, idx: i, delivered: map[QueryID][]BATID{}, queueCap: 1 << 30}
		r.envs = append(r.envs, env)
		r.nodes = append(r.nodes, New(NodeID(i), env, cfg))
	}
	return r
}

// pump drains the message queue, with a safety bound.
func (r *miniRing) pump(maxSteps int) int {
	steps := 0
	for len(r.queue) > 0 {
		if steps >= maxSteps {
			r.t.Fatalf("message pump did not quiesce within %d steps", maxSteps)
		}
		fn := r.queue[0]
		r.queue = r.queue[1:]
		fn()
		steps++
	}
	return steps
}

func TestMiniRingEndToEnd(t *testing.T) {
	cfg := staticCfg(0) // never evict: messages quiesce when all served
	r := newMiniRing(t, 5, cfg)
	r.nodes[3].AddOwned(42, 1000)

	// Node 0's query wants BAT 42 (owned by node 3, two hops upstream).
	r.nodes[0].Request(1, 42)
	r.nodes[0].Pin(1, 42)
	// Pump: request travels 0 -> 4 -> 3 (owner); BAT circulates.
	// With LOIT 0 the BAT never unloads, so we bound the pump and then
	// check delivery happened.
	for i := 0; i < 100 && len(r.envs[0].delivered[1]) == 0; i++ {
		if len(r.queue) == 0 {
			break
		}
		fn := r.queue[0]
		r.queue = r.queue[1:]
		fn()
	}
	if got := r.envs[0].delivered[1]; len(got) != 1 || got[0] != 42 {
		t.Fatalf("delivered = %v, want [42]", got)
	}
}

func TestMiniRingRequestReturnsToOrigin(t *testing.T) {
	cfg := staticCfg(0.5)
	r := newMiniRing(t, 4, cfg)
	// Nobody owns BAT 7: the request circles back to its origin and the
	// query gets "BAT does not exist".
	r.nodes[2].Request(9, 7)
	r.nodes[2].Pin(9, 7)
	r.pump(100)
	if r.envs[2].errors != 1 {
		t.Fatalf("errors = %d, want 1", r.envs[2].errors)
	}
	if r.nodes[2].OutstandingRequests() != 0 {
		t.Fatal("request not unregistered after returning")
	}
}

func TestMiniRingRequestAbsorption(t *testing.T) {
	cfg := staticCfg(0)
	r := newMiniRing(t, 6, cfg)
	r.nodes[0].AddOwned(5, 100)
	// Nodes 2, 3, 4 all want BAT 5 owned by node 0. Requests travel
	// anti-clockwise: node 4's passes 3 and 2 (which have the same
	// request outstanding) — absorption should kick in for the laggards.
	r.nodes[2].Request(1, 5)
	r.nodes[3].Request(2, 5)
	r.nodes[4].Request(3, 5)
	r.nodes[2].Pin(1, 5)
	r.nodes[3].Pin(2, 5)
	r.nodes[4].Pin(3, 5)
	for i := 0; i < 200 && len(r.queue) > 0; i++ {
		fn := r.queue[0]
		r.queue = r.queue[1:]
		fn()
	}
	absorbed := uint64(0)
	for _, n := range r.nodes {
		absorbed += n.Stats().RequestsAbsorbed
	}
	if absorbed == 0 {
		t.Fatal("no requests absorbed despite overlapping interest")
	}
	for i, q := range map[int]QueryID{2: 1, 3: 2, 4: 3} {
		if len(r.envs[i].delivered[q]) != 1 {
			t.Fatalf("node %d query %d not served", i, q)
		}
	}
}

func TestMiniRingCopiesCountNodesNotQueries(t *testing.T) {
	cfg := staticCfg(0)
	r := newMiniRing(t, 4, cfg)
	r.nodes[0].AddOwned(5, 100)
	// Two queries on node 2, one on node 3: copies per cycle must be 2
	// (two nodes used it), not 3.
	r.nodes[2].Request(1, 5)
	r.nodes[2].Request(2, 5)
	r.nodes[3].Request(3, 5)
	r.nodes[2].Pin(1, 5)
	r.nodes[2].Pin(2, 5)
	r.nodes[3].Pin(3, 5)
	r.nodes[0].Request(0, 5) // trigger the load via owner interest

	var lastAtOwner BATMsg
	seen := false
	// Intercept: walk messages until the BAT returns to node 0.
	for i := 0; i < 100 && !seen; i++ {
		if len(r.queue) == 0 {
			break
		}
		fn := r.queue[0]
		r.queue = r.queue[1:]
		fn()
		// After each step check whether owner observed a full cycle.
		if r.nodes[0].Stats().BATsForwarded > 1 {
			seen = true
		}
	}
	_ = lastAtOwner
	// Verify the deliveries: 3 queries all served in one cycle.
	total := len(r.envs[2].delivered[1]) + len(r.envs[2].delivered[2]) + len(r.envs[3].delivered[3])
	if total != 3 {
		t.Fatalf("deliveries = %d, want 3", total)
	}
}

// Property: with zero interest, a BAT entering with LOI L under
// threshold T>0 decays per the paper's literal recurrence (equation 1
// with CAVG=0): LOI_k = LOI_{k-1}/k — super-exponential aging — and is
// evicted at exactly the first cycle where the recurrence drops below
// T. "Old BATs carry a low level of interest, unless re-newed in each
// pass through the ring."
func TestPropertyLOIAgeDecay(t *testing.T) {
	f := func(rawL, rawT uint8) bool {
		L := float64(rawL%50) / 10.0 // 0..4.9
		T := 0.1 + float64(rawT%20)/10.0
		env := &mockEnv{queueCap: 1 << 30}
		rt := New(1, env, staticCfg(T))
		rt.AddOwned(7, 100)
		rt.Request(99, 7) // load it
		if len(env.sentData) != 1 {
			return false
		}
		msg := env.sentData[0]
		msg.LOI = L // pretend it entered with LOI L
		cycles := 0
		for cycles < 1000 {
			env.sentData = nil
			msg.Hops = 10 // a full pass, no copies
			msg.Copies = 0
			rt.OnBAT(msg)
			cycles++
			if len(env.sentData) == 0 {
				break // evicted
			}
			msg = env.sentData[0]
		}
		// Reference model of equation 1 with zero interest.
		want, ref := 0, L
		for k := 1; k <= 1000; k++ {
			ref = ref / float64(k)
			want = k
			if ref < T {
				break
			}
		}
		return cycles == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: requests never loop forever — any request injected at a
// random node either reaches an owner or returns to its origin within
// one full circle of hops.
func TestPropertyRequestTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		cfg := staticCfg(0)
		r := newMiniRing(t, n, cfg)
		batID := BATID(rng.Intn(5))
		hasOwner := rng.Intn(2) == 0
		owner := rng.Intn(n)
		if hasOwner {
			r.nodes[owner].AddOwned(batID, 100)
		}
		origin := rng.Intn(n)
		r.nodes[origin].Request(1, batID)
		r.nodes[origin].Pin(1, batID)
		// A request crosses at most n request-links; BAT circulation
		// with LOIT 0 is infinite, so bound the pump: count only
		// request messages by checking forwarded stats afterwards.
		for i := 0; i < 20*n && len(r.queue) > 0; i++ {
			fn := r.queue[0]
			r.queue = r.queue[1:]
			fn()
		}
		forwarded := uint64(0)
		for _, node := range r.nodes {
			forwarded += node.Stats().RequestsForwarded
		}
		if forwarded > uint64(n) {
			t.Fatalf("request forwarded %d times on a %d-ring", forwarded, n)
		}
		if hasOwner {
			if owner != origin && len(r.envs[origin].delivered[1]) != 1 {
				t.Fatalf("query not served (owner=%d origin=%d n=%d)", owner, origin, n)
			}
		} else if r.envs[origin].errors != 1 {
			t.Fatalf("missing BAT-does-not-exist (origin=%d n=%d)", origin, n)
		}
	}
}

// Property: conservation — loads minus unloads equals the number of
// currently loaded owned BATs, under arbitrary request/eviction
// interleavings.
func TestPropertyLoadUnloadConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		env := &mockEnv{queueCap: 1 << 20}
		rt := New(1, env, staticCfg(0.5))
		const nBats = 10
		for b := 0; b < nBats; b++ {
			rt.AddOwned(BATID(b), 1000+rng.Intn(5000))
		}
		for op := 0; op < 200; op++ {
			b := BATID(rng.Intn(nBats))
			switch rng.Intn(3) {
			case 0:
				rt.OnRequest(RequestMsg{Origin: 3, BAT: b})
			case 1:
				// Simulate a returning cycle with random interest.
				if rt.Loaded(b) {
					rt.OnBAT(BATMsg{Owner: 1, BAT: b, Size: 1000,
						Copies: rng.Intn(5), Hops: 10, Cycles: rng.Intn(3)})
				}
			case 2:
				rt.LoadAll()
			}
		}
		loaded := 0
		for b := 0; b < nBats; b++ {
			if rt.Loaded(BATID(b)) {
				loaded++
			}
		}
		st := rt.Stats()
		if int(st.BATsLoaded-st.BATsUnloaded) != loaded {
			t.Fatalf("conservation violated: loads=%d unloads=%d loaded=%d",
				st.BATsLoaded, st.BATsUnloaded, loaded)
		}
	}
}

// TestParkingIdleBAT: with ParkIdleCycles set, a circulating BAT that
// serves nobody for that many consecutive revolutions parks at its
// owner instead of continuing to burn hops — and the message pump
// quiesces, which is the whole point.
func TestParkingIdleBAT(t *testing.T) {
	cfg := staticCfg(0) // LOIT 0: the BAT never unloads, only parking stops it
	cfg.ParkIdleCycles = 2
	r := newMiniRing(t, 3, cfg)
	owner := r.nodes[1]
	owner.AddOwned(7, 100)

	// One served revolution starts circulation.
	r.nodes[0].Request(1, 7)
	r.nodes[0].Pin(1, 7)
	steps := r.pump(500)
	if steps == 0 {
		t.Fatal("nothing circulated")
	}
	if got := r.envs[0].delivered[1]; len(got) != 1 || got[0] != 7 {
		t.Fatalf("delivered = %v, want [7]", got)
	}
	// The pump quiesced, so the BAT must have parked after the idle
	// revolutions (with LOIT 0 it could never unload).
	st := owner.Stats()
	if st.BATsParked != 1 {
		t.Fatalf("BATsParked = %d, want 1", st.BATsParked)
	}
	if owner.ParkedBATs() != 1 {
		t.Fatalf("ParkedBATs = %d, want 1", owner.ParkedBATs())
	}
}

// TestUnparkOnInterest: a request reaching the owner of a parked BAT
// re-admits it immediately and the requester gets served.
func TestUnparkOnInterest(t *testing.T) {
	cfg := staticCfg(0)
	cfg.ParkIdleCycles = 2
	r := newMiniRing(t, 3, cfg)
	owner := r.nodes[1]
	owner.AddOwned(7, 100)

	r.nodes[0].Request(1, 7)
	r.nodes[0].Pin(1, 7)
	r.pump(500) // serve, then park (see TestParkingIdleBAT)
	if owner.ParkedBATs() != 1 {
		t.Fatalf("precondition: ParkedBATs = %d, want 1", owner.ParkedBATs())
	}

	// New interest from node 2: the request flows anti-clockwise to the
	// owner, unparks the BAT, and the BAT flows clockwise to node 2.
	r.nodes[2].Request(9, 7)
	r.nodes[2].Pin(9, 7)
	r.pump(500)
	if got := r.envs[2].delivered[9]; len(got) != 1 || got[0] != 7 {
		t.Fatalf("delivered after unpark = %v, want [7]", got)
	}
	st := owner.Stats()
	if st.BATsUnparked != 1 {
		t.Fatalf("BATsUnparked = %d, want 1", st.BATsUnparked)
	}
	// It parked again after serving node 2 and going idle anew.
	if st.BATsParked != 2 {
		t.Fatalf("BATsParked = %d, want 2 (re-parked after serving)", st.BATsParked)
	}
}

// TestParkingDisabledByDefault: ParkIdleCycles=0 keeps the pre-pacing
// behavior — an idle BAT above LOIT circulates forever.
func TestParkingDisabledByDefault(t *testing.T) {
	cfg := staticCfg(0)
	r := newMiniRing(t, 3, cfg)
	r.nodes[1].AddOwned(7, 100)
	r.nodes[0].Request(1, 7)
	r.nodes[0].Pin(1, 7)
	// The pump never quiesces (the BAT circulates forever): run a fixed
	// number of steps and confirm no parking happened.
	for i := 0; i < 300 && len(r.queue) > 0; i++ {
		fn := r.queue[0]
		r.queue = r.queue[1:]
		fn()
	}
	if len(r.queue) == 0 {
		t.Fatal("circulation stopped with pacing disabled")
	}
	st := r.nodes[1].Stats()
	if st.BATsParked != 0 || r.nodes[1].ParkedBATs() != 0 {
		t.Fatalf("parked with pacing disabled: %+v", st)
	}
}

// TestParkedBATStillPinsLocally: the owner itself can pin its parked
// BAT (served from local state, no circulation needed).
func TestParkedBATStillPinsLocally(t *testing.T) {
	cfg := staticCfg(0)
	cfg.ParkIdleCycles = 1
	r := newMiniRing(t, 3, cfg)
	owner := r.nodes[1]
	owner.AddOwned(7, 100)
	r.nodes[0].Request(1, 7)
	r.nodes[0].Pin(1, 7)
	r.pump(500)
	if owner.ParkedBATs() != 1 {
		t.Fatalf("precondition: ParkedBATs = %d, want 1", owner.ParkedBATs())
	}
	owner.Request(5, 7)
	owner.Pin(5, 7)
	r.pump(500)
	if got := r.envs[1].delivered[5]; len(got) != 1 || got[0] != 7 {
		t.Fatalf("owner's local pin of a parked BAT: delivered = %v, want [7]", got)
	}
}
