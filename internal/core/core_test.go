package core

import (
	"testing"
	"time"
)

// mockEnv is a scriptable Env recording all runtime actions.
type mockEnv struct {
	now       time.Duration
	sentData  []BATMsg
	sentReqs  []RequestMsg
	dropReqs  bool // simulate request loss
	queueUsed int
	queueCap  int
	delivered []struct {
		Q QueryID
		B BATID
	}
	errors []struct {
		Q QueryID
		B BATID
	}
	loads   []BATID
	unloads []BATID
	timers  []*mockTimer
}

type mockTimer struct {
	at        time.Duration
	fn        func()
	cancelled bool
}

func (t *mockTimer) Cancel() { t.cancelled = true }

func (e *mockEnv) Now() time.Duration { return e.now }
func (e *mockEnv) SendData(m BATMsg)  { e.sentData = append(e.sentData, m) }
func (e *mockEnv) SendRequest(m RequestMsg) bool {
	if e.dropReqs {
		return false
	}
	e.sentReqs = append(e.sentReqs, m)
	return true
}
func (e *mockEnv) QueueLoad() (int, int) { return e.queueUsed, e.queueCap }
func (e *mockEnv) After(d time.Duration, fn func()) TimerHandle {
	t := &mockTimer{at: e.now + d, fn: fn}
	e.timers = append(e.timers, t)
	return t
}
func (e *mockEnv) Deliver(q QueryID, b BATID) {
	e.delivered = append(e.delivered, struct {
		Q QueryID
		B BATID
	}{q, b})
}
func (e *mockEnv) QueryError(q QueryID, b BATID, reason string) {
	e.errors = append(e.errors, struct {
		Q QueryID
		B BATID
	}{q, b})
}
func (e *mockEnv) OnLoad(b BATID, size int)   { e.loads = append(e.loads, b) }
func (e *mockEnv) OnUnload(b BATID, size int) { e.unloads = append(e.unloads, b) }

// fire runs all due timers up to t.
func (e *mockEnv) fire(t time.Duration) {
	e.now = t
	for {
		fired := false
		for _, tm := range e.timers {
			if !tm.cancelled && tm.at <= t && tm.fn != nil {
				fn := tm.fn
				tm.fn = nil
				fn()
				fired = true
			}
		}
		if !fired {
			return
		}
	}
}

func newTestRT(env *mockEnv, cfg Config) *Runtime {
	return New(3, env, cfg)
}

func staticCfg(loit float64) Config {
	cfg := DefaultConfig()
	cfg.LOITLevels = []float64{loit}
	cfg.AdaptiveLOIT = false
	cfg.ResendTimeout = 0
	cfg.LoadAllPeriod = 0
	return cfg
}

func TestRemoteRequestSendsMessage(t *testing.T) {
	env := &mockEnv{queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.Request(1, 42)
	if len(env.sentReqs) != 1 {
		t.Fatalf("requests sent = %d, want 1", len(env.sentReqs))
	}
	m := env.sentReqs[0]
	if m.Origin != 3 || m.BAT != 42 {
		t.Fatalf("request = %+v", m)
	}
	// Second query for the same BAT piggybacks on the outstanding request.
	rt.Request(2, 42)
	if len(env.sentReqs) != 1 {
		t.Fatalf("requests sent = %d after dup, want 1", len(env.sentReqs))
	}
	if rt.OutstandingRequests() != 1 {
		t.Fatalf("S2 = %d, want 1", rt.OutstandingRequests())
	}
}

func TestOwnerRequestLoadsImmediately(t *testing.T) {
	env := &mockEnv{queueCap: 10000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.AddOwned(7, 500)
	rt.Request(1, 7)
	if len(env.sentData) != 1 {
		t.Fatalf("BATs sent = %d, want 1", len(env.sentData))
	}
	m := env.sentData[0]
	if m.Owner != 3 || m.BAT != 7 || m.Size != 500 || m.Cycles != 0 {
		t.Fatalf("BAT msg = %+v", m)
	}
	if !rt.Loaded(7) {
		t.Fatal("BAT not marked loaded")
	}
	if len(env.loads) != 1 || env.loads[0] != 7 {
		t.Fatalf("OnLoad calls = %v", env.loads)
	}
	// Owner pins are served from local storage immediately.
	rt.Pin(1, 7)
	if len(env.delivered) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(env.delivered))
	}
}

func TestOwnerLoadPostponedWhenRingFull(t *testing.T) {
	env := &mockEnv{queueUsed: 950, queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.AddOwned(7, 500)
	rt.Request(1, 7)
	if len(env.sentData) != 0 {
		t.Fatal("BAT loaded despite full ring")
	}
	if rt.PendingLoads() != 1 {
		t.Fatalf("pending = %d, want 1", rt.PendingLoads())
	}
	// Space frees up: LoadAll admits it.
	env.queueUsed = 0
	rt.LoadAll()
	if len(env.sentData) != 1 || rt.PendingLoads() != 0 {
		t.Fatalf("LoadAll did not admit: sent=%d pending=%d", len(env.sentData), rt.PendingLoads())
	}
}

func TestLoadAllSkipsTooBigTriesNext(t *testing.T) {
	env := &mockEnv{queueUsed: 0, queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.AddOwned(1, 2000) // will never fit while queue holds 0..1000
	rt.AddOwned(2, 300)
	env.queueUsed = 999 // force both to pend
	rt.Request(10, 1)
	rt.Request(11, 2)
	if rt.PendingLoads() != 2 {
		t.Fatalf("pending = %d, want 2", rt.PendingLoads())
	}
	env.queueUsed = 0
	rt.LoadAll()
	// BAT 1 (2000B) does not fit, BAT 2 (300B) does: queue-filling load.
	if len(env.sentData) != 1 || env.sentData[0].BAT != 2 {
		t.Fatalf("LoadAll sent %v, want just BAT 2", env.sentData)
	}
	if rt.PendingLoads() != 1 {
		t.Fatalf("pending = %d, want 1 (big BAT left over)", rt.PendingLoads())
	}
}

func TestRequestPropagationOutcomes(t *testing.T) {
	// Outcome 1: request returns to origin -> query exception.
	env := &mockEnv{queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.Request(1, 42)
	rt.OnRequest(RequestMsg{Origin: 3, BAT: 42}) // rt.id == 3
	if len(env.errors) != 1 || env.errors[0].B != 42 {
		t.Fatalf("errors = %v, want BAT-does-not-exist for query 1", env.errors)
	}
	if rt.OutstandingRequests() != 0 {
		t.Fatal("returned request not unregistered")
	}

	// Outcome 2: owner with BAT already loaded ignores.
	env2 := &mockEnv{queueCap: 10000}
	rt2 := newTestRT(env2, staticCfg(0.5))
	rt2.AddOwned(7, 100)
	rt2.OnRequest(RequestMsg{Origin: 9, BAT: 7}) // loads it
	if len(env2.sentData) != 1 {
		t.Fatalf("owner did not load on request")
	}
	rt2.OnRequest(RequestMsg{Origin: 8, BAT: 7}) // already loaded: ignore
	if len(env2.sentData) != 1 || len(env2.sentReqs) != 0 {
		t.Fatal("owner should ignore request for loaded BAT")
	}

	// Outcome 5: absorb when the same request is outstanding and sent.
	env3 := &mockEnv{queueCap: 1000}
	rt3 := newTestRT(env3, staticCfg(0.5))
	rt3.Request(1, 42)
	before := len(env3.sentReqs)
	rt3.OnRequest(RequestMsg{Origin: 9, BAT: 42})
	if len(env3.sentReqs) != before {
		t.Fatal("absorbed request was forwarded")
	}
	if rt3.Stats().RequestsAbsorbed != 1 {
		t.Fatalf("absorbed = %d, want 1", rt3.Stats().RequestsAbsorbed)
	}

	// Outcome 6: plain forward.
	env4 := &mockEnv{queueCap: 1000}
	rt4 := newTestRT(env4, staticCfg(0.5))
	rt4.OnRequest(RequestMsg{Origin: 9, BAT: 99})
	if len(env4.sentReqs) != 1 || env4.sentReqs[0].Origin != 9 {
		t.Fatalf("forwarded = %v", env4.sentReqs)
	}
}

func TestBATPropagationDeliversAndCounts(t *testing.T) {
	env := &mockEnv{queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.Request(1, 42)
	rt.Request(2, 42)
	rt.Pin(1, 42) // blocks: registered in S3
	rt.Pin(2, 42)

	msg := BATMsg{Owner: 0, BAT: 42, Size: 100, LOI: 0.3, Copies: 2, Hops: 4}
	rt.OnBAT(msg)

	if len(env.delivered) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(env.delivered))
	}
	if len(env.sentData) != 1 {
		t.Fatalf("forwarded = %d, want 1", len(env.sentData))
	}
	fwd := env.sentData[0]
	if fwd.Hops != 5 {
		t.Fatalf("hops = %d, want 5", fwd.Hops)
	}
	// copies++ once per node regardless of the number of local queries.
	if fwd.Copies != 3 {
		t.Fatalf("copies = %d, want 3", fwd.Copies)
	}
	// All queries pinned: request unregistered.
	if rt.OutstandingRequests() != 0 {
		t.Fatal("request should be unregistered after all pins")
	}
}

func TestBATPropagationNoPinsNoCopy(t *testing.T) {
	env := &mockEnv{queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.Request(1, 42) // requested but pin not yet reached
	rt.OnBAT(BATMsg{Owner: 0, BAT: 42, Size: 100, Copies: 0, Hops: 1})
	if len(env.delivered) != 0 {
		t.Fatal("should not deliver without a blocked pin")
	}
	fwd := env.sentData[0]
	if fwd.Copies != 0 || fwd.Hops != 2 {
		t.Fatalf("fwd = %+v", fwd)
	}
	// Request stays outstanding (the in-vogue effect of §5.3).
	if rt.OutstandingRequests() != 1 {
		t.Fatal("request dropped prematurely")
	}
	// Later pin: BAT not cached (no local use), so it blocks again and
	// is served on the next pass.
	rt.Pin(1, 42)
	if len(env.delivered) != 0 {
		t.Fatal("pin should block until next pass")
	}
	rt.OnBAT(BATMsg{Owner: 0, BAT: 42, Size: 100, Copies: 0, Hops: 7})
	if len(env.delivered) != 1 {
		t.Fatal("second pass should deliver")
	}
	if rt.OutstandingRequests() != 0 {
		t.Fatal("request should now be done")
	}
}

func TestHotSetManagementLOIFormula(t *testing.T) {
	env := &mockEnv{queueCap: 100000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.AddOwned(7, 100)
	rt.Request(1, 7) // loads, sends cycle 0 message
	env.sentData = nil

	// Cycle completes: copies=8, hops=10 -> cavg=0.8, cycles=1
	// newLOI = (0 + 0.8*1)/1 = 0.8 >= 0.5 -> forwarded with LOI 0.8.
	rt.OnBAT(BATMsg{Owner: 3, BAT: 7, Size: 100, LOI: 0, Copies: 8, Hops: 10, Cycles: 0})
	if len(env.sentData) != 1 {
		t.Fatal("BAT should stay in hot set")
	}
	fwd := env.sentData[0]
	if fwd.Cycles != 1 || fwd.Copies != 0 || fwd.Hops != 0 {
		t.Fatalf("cycle reset wrong: %+v", fwd)
	}
	if fwd.LOI < 0.79 || fwd.LOI > 0.81 {
		t.Fatalf("LOI = %v, want 0.8", fwd.LOI)
	}

	// Second cycle with no interest: newLOI = (0.8 + 0)/2 = 0.4 < 0.5
	// -> unloaded (age decay of equation 1).
	env.sentData = nil
	rt.OnBAT(BATMsg{Owner: 3, BAT: 7, Size: 100, LOI: 0.8, Copies: 0, Hops: 10, Cycles: 1})
	if len(env.sentData) != 0 {
		t.Fatal("BAT should be unloaded")
	}
	if len(env.unloads) != 1 || env.unloads[0] != 7 {
		t.Fatalf("unloads = %v", env.unloads)
	}
	if rt.Loaded(7) {
		t.Fatal("owner still marks BAT loaded")
	}
}

func TestHotSetUnloadedBATDropped(t *testing.T) {
	env := &mockEnv{queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.AddOwned(7, 100)
	// BAT arrives for an owner entry that is not loaded (e.g. handover
	// race): dropped silently.
	rt.OnBAT(BATMsg{Owner: 3, BAT: 7, Size: 100})
	if len(env.sentData) != 0 {
		t.Fatal("stale BAT should be dropped")
	}
}

func TestLOITAdaptationWatermarks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResendTimeout = 0
	cfg.LoadAllPeriod = 0
	env := &mockEnv{queueUsed: 0, queueCap: 1000}
	rt := newTestRT(env, cfg)
	if rt.LOIT() != 0.1 {
		t.Fatalf("start LOIT = %v", rt.LOIT())
	}
	// Above high watermark: step up.
	env.queueUsed = 900
	rt.OnBAT(BATMsg{Owner: 0, BAT: 1, Size: 10, Hops: 1})
	if rt.LOIT() != 0.6 {
		t.Fatalf("LOIT = %v after high load, want 0.6", rt.LOIT())
	}
	rt.OnBAT(BATMsg{Owner: 0, BAT: 2, Size: 10, Hops: 1})
	if rt.LOIT() != 1.1 {
		t.Fatalf("LOIT = %v, want 1.1 (max)", rt.LOIT())
	}
	rt.OnBAT(BATMsg{Owner: 0, BAT: 3, Size: 10, Hops: 1})
	if rt.LOIT() != 1.1 {
		t.Fatal("LOIT should clamp at max level")
	}
	// Below low watermark: step down.
	env.queueUsed = 100
	rt.OnBAT(BATMsg{Owner: 0, BAT: 4, Size: 10, Hops: 1})
	if rt.LOIT() != 0.6 {
		t.Fatalf("LOIT = %v after low load, want 0.6", rt.LOIT())
	}
}

func TestResendOnTimeout(t *testing.T) {
	cfg := staticCfg(0.5)
	cfg.ResendTimeout = time.Second
	env := &mockEnv{queueCap: 1000}
	rt := newTestRT(env, cfg)
	rt.Request(1, 42)
	if len(env.sentReqs) != 1 {
		t.Fatal("initial request not sent")
	}
	env.fire(1100 * time.Millisecond)
	if len(env.sentReqs) != 2 {
		t.Fatalf("requests = %d after timeout, want 2 (resend)", len(env.sentReqs))
	}
	if rt.Stats().Resends != 1 {
		t.Fatalf("resends = %d", rt.Stats().Resends)
	}
	// Delivery cancels further resends.
	rt.Pin(1, 42)
	rt.OnBAT(BATMsg{Owner: 0, BAT: 42, Size: 10, Hops: 1})
	env.fire(10 * time.Second)
	if len(env.sentReqs) != 2 {
		t.Fatalf("requests = %d after delivery, want 2", len(env.sentReqs))
	}
}

func TestLocalCachePinUnpin(t *testing.T) {
	env := &mockEnv{queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.Request(1, 42)
	rt.Request(2, 42)
	rt.Pin(1, 42)
	rt.OnBAT(BATMsg{Owner: 0, BAT: 42, Size: 10, Hops: 1}) // delivers to q1, caches
	if len(env.delivered) != 1 {
		t.Fatal("first delivery missing")
	}
	// q2 pins while q1 still holds the BAT: local cache hit (§4.2.1
	// "the pin() request checks the local cache for availability").
	rt.Pin(2, 42)
	if len(env.delivered) != 2 {
		t.Fatal("cache hit should deliver immediately")
	}
	rt.Unpin(1, 42)
	rt.Unpin(2, 42)
	// Cache dropped: a third query pin would block again.
	rt.Request(5, 42)
	rt.Pin(5, 42)
	if len(env.delivered) != 2 {
		t.Fatal("pin after cache release should block")
	}
}

func TestCancelQuery(t *testing.T) {
	env := &mockEnv{queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.Request(1, 42)
	rt.Pin(1, 42)
	rt.CancelQuery(1, []BATID{42})
	if rt.OutstandingRequests() != 0 {
		t.Fatal("cancel should drop sole request")
	}
	rt.OnBAT(BATMsg{Owner: 0, BAT: 42, Size: 10, Hops: 1})
	if len(env.delivered) != 0 {
		t.Fatal("cancelled query must not receive deliveries")
	}
}

func TestRemoveOwnedHandover(t *testing.T) {
	env := &mockEnv{queueCap: 10000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.AddOwned(7, 100)
	rt.Request(1, 7)
	size, loaded, ok := rt.RemoveOwned(7)
	if !ok || size != 100 || !loaded {
		t.Fatalf("RemoveOwned = %d %v %v", size, loaded, ok)
	}
	if rt.Owns(7) {
		t.Fatal("still owns after removal")
	}
	if _, _, ok := rt.RemoveOwned(7); ok {
		t.Fatal("double removal should report !ok")
	}
}

func TestLoadAllTicker(t *testing.T) {
	cfg := staticCfg(0.5)
	cfg.LoadAllPeriod = 100 * time.Millisecond
	env := &mockEnv{queueUsed: 999, queueCap: 1000}
	rt := newTestRT(env, cfg)
	rt.Start()
	rt.AddOwned(7, 100)
	rt.Request(1, 7) // pends
	if rt.PendingLoads() != 1 {
		t.Fatal("not pending")
	}
	env.queueUsed = 0
	env.fire(150 * time.Millisecond)
	if rt.PendingLoads() != 0 || len(env.sentData) != 1 {
		t.Fatalf("ticker LoadAll failed: pending=%d sent=%d", rt.PendingLoads(), len(env.sentData))
	}
	rt.Stop()
	countBefore := len(env.timers)
	env.fire(time.Hour)
	_ = countBefore // ticker stops rescheduling; fire drains silently
}

// TestQuietNodeStepsLOITDown is the regression test for the idle-node
// adaptation gap: adaptLOIT used to be evaluated only from load and
// arrival events, so a node whose queue load fell below LowWater while
// it had nothing pending never stepped its threshold back down until
// the next load arrived. The periodic tick must evaluate the watermark
// rule too.
func TestQuietNodeStepsLOITDown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LOITLevels = []float64{0.1, 0.6, 1.1}
	cfg.StartLevel = 2
	cfg.AdaptiveLOIT = true
	cfg.LoadAllPeriod = 100 * time.Millisecond
	cfg.ResendTimeout = 0
	// Quiet node: queue load well below the low watermark, nothing
	// pending, no queries arriving.
	env := &mockEnv{queueUsed: 10, queueCap: 1000}
	rt := newTestRT(env, cfg)
	rt.Start()
	defer rt.Stop()
	if rt.LOITLevel() != 2 {
		t.Fatalf("start level = %d", rt.LOITLevel())
	}
	env.fire(150 * time.Millisecond)
	if rt.LOITLevel() != 1 {
		t.Fatalf("after one tick: level = %d, want 1 (stepped down)", rt.LOITLevel())
	}
	env.fire(300 * time.Millisecond)
	if rt.LOITLevel() != 0 {
		t.Fatalf("after two ticks: level = %d, want 0", rt.LOITLevel())
	}
	// Ticks keep firing at the floor without underflow.
	env.fire(500 * time.Millisecond)
	if rt.LOITLevel() != 0 {
		t.Fatalf("level underflowed: %d", rt.LOITLevel())
	}
}

func TestRePinDelivered(t *testing.T) {
	env := &mockEnv{queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.Request(1, 42)
	rt.Pin(1, 42)
	rt.OnBAT(BATMsg{Owner: 0, BAT: 42, Size: 10, Hops: 1})
	n := len(env.delivered)
	rt.Pin(1, 42) // re-pin by the same query: immediate
	if len(env.delivered) != n+1 {
		t.Fatal("re-pin should deliver immediately")
	}
}

func TestStatsAndString(t *testing.T) {
	env := &mockEnv{queueCap: 1000}
	rt := newTestRT(env, staticCfg(0.5))
	rt.Request(1, 42)
	rt.OnRequest(RequestMsg{Origin: 9, BAT: 77})
	st := rt.Stats()
	if st.RequestsSent != 1 || st.RequestsForwarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if rt.String() == "" {
		t.Fatal("String empty")
	}
	if rt.ID() != 3 {
		t.Fatalf("ID = %d", rt.ID())
	}
}
