package core

import "testing"

func TestHeatBumpDecay(t *testing.T) {
	var h Heat
	if h.Level() != 0 || h.Window() != 0 || !h.Cold() {
		t.Fatalf("zero Heat not cold: level=%v window=%d", h.Level(), h.Window())
	}
	for i := 0; i < 4; i++ {
		h.Bump()
	}
	if h.Level() != 4 || h.Window() != 4 {
		t.Fatalf("after 4 bumps: level=%v window=%d, want 4/4", h.Level(), h.Window())
	}
	h.Decay(0.5)
	if h.Level() != 2 {
		t.Fatalf("after decay: level=%v, want 2", h.Level())
	}
	if h.Window() != 0 {
		t.Fatalf("decay must reset the flash-crowd window, got %d", h.Window())
	}
	if h.Cold() {
		t.Fatal("level 2 must not be cold")
	}
	for i := 0; i < 16; i++ {
		h.Decay(0.5)
	}
	if !h.Cold() {
		t.Fatalf("16 decays must cool the counter, level=%v", h.Level())
	}
}

func TestHasRequestAndParked(t *testing.T) {
	env := &mockEnv{queueCap: 1000}
	rt := New(0, env, DefaultConfig())
	rt.AddOwned(1, 100)
	if rt.HasRequest(2) {
		t.Fatal("no request registered yet")
	}
	rt.Request(7, 2)
	if !rt.HasRequest(2) {
		t.Fatal("Request must create an S2 entry")
	}
	rt.CancelQuery(7, []BATID{2})
	if rt.HasRequest(2) {
		t.Fatal("CancelQuery must drop the S2 entry")
	}
	if rt.Parked(1) {
		t.Fatal("freshly owned BAT is not parked")
	}
	if rt.Parked(99) {
		t.Fatal("unowned BAT is not parked")
	}
}
