package core

// Promotion heat: the routing layer's analogue of the circulating LOI.
// A fragment's level of interest is measured *in flight* — copies per
// hop, averaged over revolutions (hotSetManagement). A fragment that is
// parked, or that lives on another ring entirely, shows no circulating
// interest at all; what the router can observe instead is the stream of
// pin dispatches it routes. Heat is that observation: a decayed access
// counter with the same recency bias as the LOI economy (every scan
// halves it, every access raises it), plus a per-window count that
// detects a flash crowd — a burst of first interest in data that was
// stone cold a moment ago.

// Heat is one fragment's decayed access counter. It is not
// concurrency-safe; callers serialize access (the router holds its heat
// lock).
type Heat struct {
	level  float64 // decayed accesses — compared against tier thresholds
	window int     // accesses since the last decay scan (flash-crowd burst)
}

// Bump records one routed access.
func (h *Heat) Bump() {
	h.level++
	h.window++
}

// Decay ages the counter by the given factor (0 < factor < 1) and
// resets the flash-crowd window: interest must keep arriving to keep a
// fragment hot, exactly as a circulating BAT must keep collecting
// copies to keep its LOI above the LOIT.
func (h *Heat) Decay(factor float64) {
	h.level *= factor
	h.window = 0
}

// Level reports the decayed access level — what tier thresholds
// (promote/demote) compare against.
func (h *Heat) Level() float64 { return h.level }

// Window reports accesses since the last decay scan — what the
// flash-crowd trigger compares against.
func (h *Heat) Window() int { return h.window }

// Cold reports whether the counter has decayed to noise and can be
// forgotten.
func (h *Heat) Cold() bool { return h.level < 0.01 }
