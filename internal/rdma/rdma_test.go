package rdma

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestRegisterMemory(t *testing.T) {
	var d Device
	mr := d.RegisterMemory(1024)
	if !mr.Registered() || len(mr.Bytes()) != 1024 || mr.Key() == 0 {
		t.Fatalf("registration wrong: %+v", mr)
	}
	mr2 := d.RegisterMemory(10)
	if mr2.Key() == mr.Key() {
		t.Fatal("keys must differ")
	}
	d.Deregister(mr)
	if mr.Registered() {
		t.Fatal("still registered after deregister")
	}
}

func pairExchange(t *testing.T, a, b QueuePair) {
	t.Helper()
	var d Device
	send := d.RegisterMemory(64)
	recv := d.RegisterMemory(64)
	copy(send.Bytes(), "hello ring")
	if err := b.PostRecv(recv); err != nil {
		t.Fatal(err)
	}
	if err := a.PostSend(send, 10); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-a.SendCompletions():
		if c.Err != nil || c.Bytes != 10 {
			t.Fatalf("send completion = %+v", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send completion timeout")
	}
	select {
	case c := <-b.RecvCompletions():
		if c.Err != nil || c.Bytes != 10 {
			t.Fatalf("recv completion = %+v", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv completion timeout")
	}
	if !bytes.Equal(recv.Bytes()[:10], []byte("hello ring")) {
		t.Fatalf("payload = %q", recv.Bytes()[:10])
	}
}

func TestInprocExchange(t *testing.T) {
	a, b := NewPair(4)
	defer a.Close()
	defer b.Close()
	pairExchange(t, a, b)
}

func TestInprocOrdering(t *testing.T) {
	a, b := NewPair(32)
	defer a.Close()
	defer b.Close()
	var d Device
	const n = 20
	for i := 0; i < n; i++ {
		mr := d.RegisterMemory(8)
		if err := b.PostRecv(mr); err != nil {
			t.Fatal(err)
		}
	}
	sent := make([]*MemoryRegion, n)
	for i := 0; i < n; i++ {
		mr := d.RegisterMemory(8)
		mr.Bytes()[0] = byte(i)
		sent[i] = mr
		if err := a.PostSend(mr, 1); err != nil {
			t.Fatal(err)
		}
		// Wait for the send completion to preserve posting order (the
		// emulation dispatches sends asynchronously).
		select {
		case c := <-a.SendCompletions():
			if c.Err != nil {
				t.Fatal(c.Err)
			}
		case <-time.After(time.Second):
			t.Fatal("send timeout")
		}
	}
	for i := 0; i < n; i++ {
		select {
		case c := <-b.RecvCompletions():
			if c.Err != nil {
				t.Fatal(c.Err)
			}
		case <-time.After(time.Second):
			t.Fatalf("recv %d timeout", i)
		}
	}
}

func TestUnregisteredRejected(t *testing.T) {
	a, b := NewPair(1)
	defer a.Close()
	defer b.Close()
	mr := &MemoryRegion{buf: make([]byte, 8)}
	if err := a.PostSend(mr, 1); err != ErrNotRegistered {
		t.Fatalf("PostSend err = %v", err)
	}
	if err := b.PostRecv(mr); err != ErrNotRegistered {
		t.Fatalf("PostRecv err = %v", err)
	}
}

func TestSendTooLarge(t *testing.T) {
	a, b := NewPair(1)
	defer a.Close()
	defer b.Close()
	var d Device
	mr := d.RegisterMemory(4)
	if err := a.PostSend(mr, 8); err != ErrTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestClosedPair(t *testing.T) {
	a, b := NewPair(1)
	b.Close()
	a.Close()
	var d Device
	mr := d.RegisterMemory(4)
	if err := a.PostSend(mr, 1); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestTCPExchange(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	cliConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srvConn := <-accepted
	a := NewTCP(cliConn)
	b := NewTCP(srvConn)
	defer a.Close()
	defer b.Close()
	pairExchange(t, a, b)
}

func TestTCPLargeTransfer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	cliConn, _ := net.Dial("tcp", ln.Addr().String())
	srvConn := <-accepted
	a, b := NewTCP(cliConn), NewTCP(srvConn)
	defer a.Close()
	defer b.Close()

	var d Device
	const size = 4 << 20
	send := d.RegisterMemory(size)
	recv := d.RegisterMemory(size)
	for i := range send.Bytes() {
		send.Bytes()[i] = byte(i * 31)
	}
	if err := b.PostRecv(recv); err != nil {
		t.Fatal(err)
	}
	if err := a.PostSend(send, size); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-b.RecvCompletions():
		if c.Err != nil || c.Bytes != size {
			t.Fatalf("recv = %+v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("large recv timeout")
	}
	if !bytes.Equal(send.Bytes(), recv.Bytes()) {
		t.Fatal("payload corrupted")
	}
}

func TestCPUModelFigure1(t *testing.T) {
	// At 10 Gb/s on a 2.33 GHz quad-core-class CPU (cumulative ~9.3GHz,
	// but the rule of thumb is per-GHz): the legacy stack saturates.
	legacy := CPUModel(LegacyStack, 10, 10)
	offload := CPUModel(NICOffload, 10, 10)
	rdma := CPUModel(RDMA, 10, 10)

	// Figure 1's message: offload alone is not sufficient; only RDMA
	// collapses the cost.
	if !(legacy.Total() > offload.Total()) {
		t.Fatal("offload should cost less than legacy")
	}
	if !(offload.Total() > 2*rdma.Total()) {
		t.Fatal("RDMA should be dramatically cheaper than offload")
	}
	// Copying dominates the legacy stack and is unchanged by offload.
	if legacy.DataCopying < legacy.NetworkStack {
		t.Fatal("copying must dominate the legacy breakdown")
	}
	if offload.DataCopying != legacy.DataCopying {
		t.Fatal("NIC offload must not reduce the copy cost")
	}
	if offload.NetworkStack != 0 {
		t.Fatal("offload moves stack processing off the CPU")
	}
	// RDMA total is negligible (<5% of legacy).
	if rdma.Total() > 0.05*legacy.Total() {
		t.Fatalf("RDMA total = %v, want negligible", rdma.Total())
	}
}

func TestCPUModelRuleOfThumb(t *testing.T) {
	// 1 Gb/s on 1 GHz: legacy load = 100% of the core.
	b := CPUModel(LegacyStack, 1, 1)
	if tot := b.Total(); tot < 0.999 || tot > 1.001 {
		t.Fatalf("legacy total = %v, want 1.0 (1GHz per 1Gb/s)", tot)
	}
}

func TestMemoryBusCrossings(t *testing.T) {
	if MemoryBusCrossings(LegacyStack) <= MemoryBusCrossings(RDMA) {
		t.Fatal("legacy must cross the bus more often than RDMA")
	}
	if MemoryBusCrossings(RDMA) != 1 {
		t.Fatal("RDMA crosses exactly once")
	}
}

func TestCPUModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CPUModel(LegacyStack, -1, 1)
}

func TestStackString(t *testing.T) {
	for _, s := range []Stack{LegacyStack, NICOffload, RDMA} {
		if s.String() == "" {
			t.Fatal("empty stack name")
		}
	}
}
