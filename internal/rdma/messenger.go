package rdma

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Messenger turns a QueuePair into a reliable message stream: it owns a
// pool of registered buffers, keeps the receive queue replenished, and
// exposes blocking Send/Recv over whole messages. This is the layer the
// live Data Cyclotron ring uses to move BATs and requests between
// neighbours, mirroring how the prototype would sit on RDMA verbs.
type Messenger struct {
	qp  QueuePair
	dev *Device

	maxMsg int

	// sendFree is the ring of registered send regions. Encoding happens
	// into a region with no lock held, so concurrent SendEncoded calls
	// only serialize on the post itself (sendMu orders PostSend against
	// the ticket FIFO — the completion queue is shared FIFO).
	sendFree chan *MemoryRegion
	sendMu   sync.Mutex

	// sendWindow bounds in-flight posted sends; sendPend carries one
	// ticket per posted send, in post order, for the dispatcher to pair
	// with wire completions. The window is what lets a burst of hop
	// envelopes queue at the transport — the uring backend folds queued
	// messages into one linked submission chain, so one io_uring_enter
	// covers the whole burst instead of one enter per message.
	sendWindow chan struct{}
	sendPend   chan sendTicket

	poolAcquires int64 // atomic: send-region acquisitions
	poolWaits    int64 // atomic: acquisitions that had to block

	recvMu   sync.Mutex
	recvBufs []*MemoryRegion
	recvIdx  int

	closeOnce sync.Once
}

// MessengerDepth is the default number of receive buffers kept posted.
// With hop batching, one receive credit admits a whole multi-fragment
// batch, so a batching link can run a shallower queue (NewMessengerDepth)
// at the same fragment-level concurrency.
const MessengerDepth = 8

// MessengerSendRegions bounds the send-region pool size; the pool is
// additionally capped so total registered send bytes stay bounded
// (maxSendPoolBytes) when messages are large.
const MessengerSendRegions = 4

// MessengerSendWindow is how many posted sends may be in flight on the
// wire at once. Deeper than one so back-to-back hop envelopes pipeline
// (and batch at the submission layer); bounded so a slow link applies
// backpressure before unbounded memory queues behind it. Must not
// exceed any backend's internal send queue capacity, or a post could
// block while holding the order lock.
const MessengerSendWindow = 8

// sendTicket is one in-flight posted send: the dispatcher runs cleanup
// (send-region recycling) and then done when the send's wire completion
// arrives. Every backend delivers send completions in post order, so a
// FIFO of tickets pairs them correctly.
type sendTicket struct {
	cleanup func()
	done    func(error)
}

// maxSendPoolBytes caps the total registered send-buffer bytes per
// messenger: registration is the expensive, pinned resource (§2.3), so
// large-message links get fewer regions rather than more pinned memory.
const maxSendPoolBytes = 8 << 20

// NewMessenger wraps qp with the default receive depth. maxMsg bounds
// the size of a single message; buffers are registered once up front
// (the expensive operation §2.3 advises amortizing).
func NewMessenger(qp QueuePair, maxMsg int) (*Messenger, error) {
	return NewMessengerDepth(qp, maxMsg, MessengerDepth)
}

// NewMessengerDepth wraps qp keeping depth receive buffers posted.
func NewMessengerDepth(qp QueuePair, maxMsg, depth int) (*Messenger, error) {
	if maxMsg <= 0 {
		return nil, fmt.Errorf("rdma: non-positive max message size")
	}
	if depth <= 0 {
		depth = MessengerDepth
	}
	m := &Messenger{qp: qp, dev: &Device{}, maxMsg: maxMsg}
	regions := MessengerSendRegions
	if cap := maxSendPoolBytes / maxMsg; cap < regions {
		regions = cap
	}
	if regions < 1 {
		regions = 1
	}
	pool := make([]*MemoryRegion, regions)
	for i := range pool {
		pool[i] = m.dev.RegisterMemory(maxMsg)
	}
	// A backend that can pin caller buffers with the kernel (the uring
	// provider's IORING_REGISTER_BUFFERS) gets the whole pool up front,
	// before any traffic: every SendEncoded then goes out as a
	// fixed-buffer write straight from the region. If registration fails
	// (memlock limits), the backend's plain-send path still works — the
	// pool is just not kernel-pinned.
	if br, ok := qp.(BufferRegistrar); ok {
		_ = br.RegisterBuffers(pool)
	}
	m.sendFree = make(chan *MemoryRegion, regions)
	for _, mr := range pool {
		m.sendFree <- mr
	}
	for i := 0; i < depth; i++ {
		mr := m.dev.RegisterMemory(maxMsg)
		m.recvBufs = append(m.recvBufs, mr)
		if err := qp.PostRecv(mr); err != nil {
			return nil, err
		}
	}
	m.sendWindow = make(chan struct{}, MessengerSendWindow)
	m.sendPend = make(chan sendTicket, MessengerSendWindow)
	go m.sendDispatch()
	return m, nil
}

// post acquires a window slot, posts the send under the order lock, and
// enqueues its ticket. On success the ticket owns cleanup/done — they
// run from the dispatcher when the completion lands. On error nothing
// was posted and the caller keeps ownership of its buffers.
func (m *Messenger) post(send func() error, cleanup func(), done func(error)) error {
	select {
	case m.sendWindow <- struct{}{}:
	case <-m.qp.Done():
		return ErrClosed
	}
	m.sendMu.Lock()
	select {
	case <-m.qp.Done():
		// Checked under sendMu: the dispatcher's post-close drain also
		// takes sendMu, so a ticket enqueued here could be orphaned.
		m.sendMu.Unlock()
		<-m.sendWindow
		return ErrClosed
	default:
	}
	if err := send(); err != nil {
		m.sendMu.Unlock()
		<-m.sendWindow
		return err
	}
	m.sendPend <- sendTicket{cleanup: cleanup, done: done}
	m.sendMu.Unlock()
	return nil
}

// sendDispatch pairs wire completions with posted tickets, in order. It
// exits when the queue pair shuts down, first draining any completions
// that raced with the close and then failing leftover tickets so no
// caller waits forever and no refcounted buffer leaks.
func (m *Messenger) sendDispatch() {
	for {
		select {
		case c, ok := <-m.qp.SendCompletions():
			if !ok {
				m.failPending()
				return
			}
			m.finish(c.Err)
		case <-m.qp.Done():
			for {
				select {
				case c, ok := <-m.qp.SendCompletions():
					if ok {
						m.finish(c.Err)
						continue
					}
				default:
				}
				m.failPending()
				return
			}
		}
	}
}

// finish retires the oldest in-flight send with the given wire error.
func (m *Messenger) finish(err error) {
	select {
	case t := <-m.sendPend:
		<-m.sendWindow
		if t.cleanup != nil {
			t.cleanup()
		}
		if t.done != nil {
			t.done(err)
		}
	default:
		// A completion with no pending ticket: the backend emitted an
		// abort notification for a send it never accepted. Drop it.
	}
}

// failPending retires every remaining ticket with ErrClosed. Runs after
// Done is closed; taking sendMu orders it against post(), which rejects
// new sends once Done is observable, so nothing is enqueued after the
// drain.
func (m *Messenger) failPending() {
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	for {
		select {
		case t := <-m.sendPend:
			<-m.sendWindow
			if t.cleanup != nil {
				t.cleanup()
			}
			if t.done != nil {
				t.done(ErrClosed)
			}
		default:
			return
		}
	}
}

// MaxMessage reports the configured message size bound.
func (m *Messenger) MaxMessage() int { return m.maxMsg }

// PoolStats reports send-region pool pressure: total acquisitions and
// how many of them found every region busy and had to block.
func (m *Messenger) PoolStats() (acquires, waits int64) {
	return atomic.LoadInt64(&m.poolAcquires), atomic.LoadInt64(&m.poolWaits)
}

// WireCounters reports the underlying queue pair's syscall-layer
// counters when the backend keeps them (tcp and uring do; the
// in-process provider reports ok=false — it makes no syscalls).
func (m *Messenger) WireCounters() (c WireCounters, ok bool) {
	ws, ok := m.qp.(WireStatter)
	if !ok {
		return WireCounters{}, false
	}
	return ws.WireCounters(), true
}

// acquireRegion takes a free send region, counting contention.
func (m *Messenger) acquireRegion() (*MemoryRegion, error) {
	atomic.AddInt64(&m.poolAcquires, 1)
	select {
	case mr := <-m.sendFree:
		return mr, nil
	default:
	}
	atomic.AddInt64(&m.poolWaits, 1)
	select {
	case mr := <-m.sendFree:
		return mr, nil
	case <-m.qp.Done():
		return nil, ErrClosed
	}
}

// Send transmits one message, blocking until the NIC (emulated) has
// taken it.
func (m *Messenger) Send(data []byte) error {
	return m.SendEncoded(len(data), func(dst []byte) int {
		return copy(dst, data)
	})
}

// SendEncoded transmits one message of at most size bytes, letting the
// caller encode it directly into a registered send region — no
// intermediate buffer, no per-send allocation, and the region's
// registration cost stays amortized over every message (§2.3). encode
// receives a size-byte window of the region and returns how many bytes
// it actually wrote. Concurrent senders encode into distinct pool
// regions in parallel and serialize only on the wire.
func (m *Messenger) SendEncoded(size int, encode func(dst []byte) int) error {
	ch := make(chan error, 1)
	if err := m.SendEncodedAsync(size, encode, func(err error) { ch <- err }); err != nil {
		return err
	}
	select {
	case err := <-ch:
		return err
	case <-m.qp.Done():
		return ErrClosed
	}
}

// SendEncodedAsync is SendEncoded that returns once the message is
// posted to the wire instead of waiting for its completion: done(err)
// runs later, from the completion dispatcher, in send order. Up to
// MessengerSendWindow posts may be in flight, which is what lets a
// burst of hop envelopes reach the transport as one submission batch;
// when the window is full the call blocks (backpressure), preserving
// the bounded-memory property of the blocking path.
func (m *Messenger) SendEncodedAsync(size int, encode func(dst []byte) int, done func(error)) error {
	if size > m.maxMsg {
		return ErrTooLarge
	}
	if size < 0 {
		return fmt.Errorf("rdma: negative message size %d", size)
	}
	mr, err := m.acquireRegion()
	if err != nil {
		return err
	}
	n := encode(mr.Bytes()[:size])
	if n < 0 || n > size {
		m.sendFree <- mr
		return fmt.Errorf("rdma: encoder wrote %d bytes into a %d-byte window", n, size)
	}
	err = m.post(
		func() error { return m.qp.PostSend(mr, n) },
		func() { m.sendFree <- mr },
		done,
	)
	if err != nil {
		m.sendFree <- mr
	}
	return err
}

// TrySendEncoded is SendEncoded without any blocking wait to start: if
// no send region is free right now, or any send is already in flight
// on the wire, it returns ErrQueueFull immediately. Control traffic
// that must never stall behind bulk data — the membership heartbeat
// multiplexed onto the data link — uses this; a pulse that cannot get
// through is simply dropped (the next interval sends another, and the
// failure detector tolerates missed beats by design). The idle-wire
// check matters as much as the region check: with the pipelined send
// window, a heartbeat that queued behind megabytes of in-flight hop
// envelopes would inherit their latency — long enough, on a loaded
// single-core box, for the silent sender to be declared dead.
func (m *Messenger) TrySendEncoded(size int, encode func(dst []byte) int) error {
	if size > m.maxMsg {
		return ErrTooLarge
	}
	if size < 0 {
		return fmt.Errorf("rdma: negative message size %d", size)
	}
	var mr *MemoryRegion
	select {
	case mr = <-m.sendFree:
		atomic.AddInt64(&m.poolAcquires, 1)
	default:
		return ErrQueueFull
	}
	n := encode(mr.Bytes()[:size])
	if n < 0 || n > size {
		m.sendFree <- mr
		return fmt.Errorf("rdma: encoder wrote %d bytes into a %d-byte window", n, size)
	}
	// Claim a window slot without blocking, then insist it is the only
	// one: a lone slot means the wire was idle, so this pulse's
	// completion is the next one due. The len check races with
	// concurrent posts, but a dropped pulse is the designed outcome of
	// a busy wire either way.
	select {
	case m.sendWindow <- struct{}{}:
	default:
		m.sendFree <- mr
		return ErrQueueFull
	}
	if len(m.sendWindow) > 1 {
		<-m.sendWindow
		m.sendFree <- mr
		return ErrQueueFull
	}
	ch := make(chan error, 1)
	m.sendMu.Lock()
	select {
	case <-m.qp.Done():
		m.sendMu.Unlock()
		<-m.sendWindow
		m.sendFree <- mr
		return ErrClosed
	default:
	}
	if err := m.qp.PostSend(mr, n); err != nil {
		m.sendMu.Unlock()
		<-m.sendWindow
		m.sendFree <- mr
		return err
	}
	m.sendPend <- sendTicket{
		cleanup: func() { m.sendFree <- mr },
		done:    func(err error) { ch <- err },
	}
	m.sendMu.Unlock()
	select {
	case err := <-ch:
		return err
	case <-m.qp.Done():
		return ErrClosed
	}
}

// SendVectored transmits one message gathered from several byte slices
// — the batched-hop path. On a transport that supports vectored sends
// (the TCP provider's writev-shaped PostSendVec), the parts go to the
// wire directly, one gather write, no assembly copy: the parts must
// stay valid and unmodified until SendVectored returns (the live ring's
// refcounted wire cache provides exactly that, playing the role of
// pre-registered buffers). Other transports fall back to gathering the
// parts into one registered send region. Either way the receiver sees a
// single contiguous message equal to the concatenation of the parts.
func (m *Messenger) SendVectored(parts [][]byte) error {
	ch := make(chan error, 1)
	if err := m.SendVectoredAsync(parts, func(err error) { ch <- err }); err != nil {
		return err
	}
	select {
	case err := <-ch:
		return err
	case <-m.qp.Done():
		return ErrClosed
	}
}

// SendVectoredAsync is SendVectored that returns once the message is
// posted: the parts must stay valid and unmodified until done(err)
// runs, from the completion dispatcher, in send order. The hop flush
// loop uses this so a revolution's worth of envelopes pipelines onto
// the wire — the uring backend turns the queued run into one linked
// submission chain per io_uring_enter — instead of paying a full
// post-complete round trip per envelope.
func (m *Messenger) SendVectoredAsync(parts [][]byte, done func(error)) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > m.maxMsg {
		return ErrTooLarge
	}
	vs, ok := m.qp.(VectoredSender)
	if !ok {
		return m.SendEncodedAsync(total, func(dst []byte) int {
			off := 0
			for _, p := range parts {
				off += copy(dst[off:], p)
			}
			return off
		}, done)
	}
	bufs := make(net.Buffers, 0, len(parts))
	for _, p := range parts {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	return m.post(func() error { return vs.PostSendVec(bufs) }, nil, done)
}

// Recv blocks for the next message and returns a copy of its payload.
func (m *Messenger) Recv() ([]byte, error) {
	c, ok := <-m.qp.RecvCompletions()
	if !ok {
		return nil, ErrClosed
	}
	if c.Err != nil {
		return nil, c.Err
	}
	m.recvMu.Lock()
	mr := m.recvBufs[m.recvIdx]
	m.recvIdx = (m.recvIdx + 1) % len(m.recvBufs)
	out := make([]byte, c.Bytes)
	copy(out, mr.Bytes()[:c.Bytes])
	err := m.qp.PostRecv(mr) // replenish
	m.recvMu.Unlock()
	if err != nil && err != ErrClosed {
		return out, err
	}
	return out, nil
}

// Close tears down the underlying queue pair.
func (m *Messenger) Close() error {
	var err error
	m.closeOnce.Do(func() { err = m.qp.Close() })
	return err
}
