package rdma

import (
	"fmt"
	"sync"
)

// Messenger turns a QueuePair into a reliable message stream: it owns a
// pool of registered buffers, keeps the receive queue replenished, and
// exposes blocking Send/Recv over whole messages. This is the layer the
// live Data Cyclotron ring uses to move BATs and requests between
// neighbours, mirroring how the prototype would sit on RDMA verbs.
type Messenger struct {
	qp  QueuePair
	dev *Device

	maxMsg int

	sendMu  sync.Mutex
	sendBuf *MemoryRegion

	recvMu   sync.Mutex
	recvBufs []*MemoryRegion
	recvIdx  int

	closeOnce sync.Once
}

// MessengerDepth is the number of receive buffers kept posted.
const MessengerDepth = 8

// NewMessenger wraps qp. maxMsg bounds the size of a single message;
// buffers are registered once up front (the expensive operation §2.3
// advises amortizing).
func NewMessenger(qp QueuePair, maxMsg int) (*Messenger, error) {
	if maxMsg <= 0 {
		return nil, fmt.Errorf("rdma: non-positive max message size")
	}
	m := &Messenger{qp: qp, dev: &Device{}, maxMsg: maxMsg}
	m.sendBuf = m.dev.RegisterMemory(maxMsg)
	for i := 0; i < MessengerDepth; i++ {
		mr := m.dev.RegisterMemory(maxMsg)
		m.recvBufs = append(m.recvBufs, mr)
		if err := qp.PostRecv(mr); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MaxMessage reports the configured message size bound.
func (m *Messenger) MaxMessage() int { return m.maxMsg }

// Send transmits one message, blocking until the NIC (emulated) has
// taken it. Concurrent senders serialize on the send buffer.
func (m *Messenger) Send(data []byte) error {
	return m.SendEncoded(len(data), func(dst []byte) int {
		return copy(dst, data)
	})
}

// SendEncoded transmits one message of at most size bytes, letting the
// caller encode it directly into the registered send region — no
// intermediate buffer, no per-send allocation, and the region's
// registration cost stays amortized over every message (§2.3). encode
// receives a size-byte window of the region and returns how many bytes
// it actually wrote. Concurrent senders serialize on the send buffer.
func (m *Messenger) SendEncoded(size int, encode func(dst []byte) int) error {
	if size > m.maxMsg {
		return ErrTooLarge
	}
	if size < 0 {
		return fmt.Errorf("rdma: negative message size %d", size)
	}
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	n := encode(m.sendBuf.Bytes()[:size])
	if n < 0 || n > size {
		return fmt.Errorf("rdma: encoder wrote %d bytes into a %d-byte window", n, size)
	}
	if err := m.qp.PostSend(m.sendBuf, n); err != nil {
		return err
	}
	select {
	case c := <-m.qp.SendCompletions():
		return c.Err
	case <-m.qp.Done():
		return ErrClosed
	}
}

// Recv blocks for the next message and returns a copy of its payload.
func (m *Messenger) Recv() ([]byte, error) {
	c, ok := <-m.qp.RecvCompletions()
	if !ok {
		return nil, ErrClosed
	}
	if c.Err != nil {
		return nil, c.Err
	}
	m.recvMu.Lock()
	mr := m.recvBufs[m.recvIdx]
	m.recvIdx = (m.recvIdx + 1) % len(m.recvBufs)
	out := make([]byte, c.Bytes)
	copy(out, mr.Bytes()[:c.Bytes])
	err := m.qp.PostRecv(mr) // replenish
	m.recvMu.Unlock()
	if err != nil && err != ErrClosed {
		return out, err
	}
	return out, nil
}

// Close tears down the underlying queue pair.
func (m *Messenger) Close() error {
	var err error
	m.closeOnce.Do(func() { err = m.qp.Close() })
	return err
}
