package rdma

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Messenger turns a QueuePair into a reliable message stream: it owns a
// pool of registered buffers, keeps the receive queue replenished, and
// exposes blocking Send/Recv over whole messages. This is the layer the
// live Data Cyclotron ring uses to move BATs and requests between
// neighbours, mirroring how the prototype would sit on RDMA verbs.
type Messenger struct {
	qp  QueuePair
	dev *Device

	maxMsg int

	// sendFree is the ring of registered send regions. Encoding happens
	// into a region with no lock held, so concurrent SendEncoded calls
	// only serialize on the wire itself (sendMu pairs each PostSend with
	// its completion — the completion queue is shared FIFO).
	sendFree chan *MemoryRegion
	sendMu   sync.Mutex

	poolAcquires int64 // atomic: send-region acquisitions
	poolWaits    int64 // atomic: acquisitions that had to block

	recvMu   sync.Mutex
	recvBufs []*MemoryRegion
	recvIdx  int

	closeOnce sync.Once
}

// MessengerDepth is the default number of receive buffers kept posted.
// With hop batching, one receive credit admits a whole multi-fragment
// batch, so a batching link can run a shallower queue (NewMessengerDepth)
// at the same fragment-level concurrency.
const MessengerDepth = 8

// MessengerSendRegions bounds the send-region pool size; the pool is
// additionally capped so total registered send bytes stay bounded
// (maxSendPoolBytes) when messages are large.
const MessengerSendRegions = 4

// maxSendPoolBytes caps the total registered send-buffer bytes per
// messenger: registration is the expensive, pinned resource (§2.3), so
// large-message links get fewer regions rather than more pinned memory.
const maxSendPoolBytes = 8 << 20

// NewMessenger wraps qp with the default receive depth. maxMsg bounds
// the size of a single message; buffers are registered once up front
// (the expensive operation §2.3 advises amortizing).
func NewMessenger(qp QueuePair, maxMsg int) (*Messenger, error) {
	return NewMessengerDepth(qp, maxMsg, MessengerDepth)
}

// NewMessengerDepth wraps qp keeping depth receive buffers posted.
func NewMessengerDepth(qp QueuePair, maxMsg, depth int) (*Messenger, error) {
	if maxMsg <= 0 {
		return nil, fmt.Errorf("rdma: non-positive max message size")
	}
	if depth <= 0 {
		depth = MessengerDepth
	}
	m := &Messenger{qp: qp, dev: &Device{}, maxMsg: maxMsg}
	regions := MessengerSendRegions
	if cap := maxSendPoolBytes / maxMsg; cap < regions {
		regions = cap
	}
	if regions < 1 {
		regions = 1
	}
	m.sendFree = make(chan *MemoryRegion, regions)
	for i := 0; i < regions; i++ {
		m.sendFree <- m.dev.RegisterMemory(maxMsg)
	}
	for i := 0; i < depth; i++ {
		mr := m.dev.RegisterMemory(maxMsg)
		m.recvBufs = append(m.recvBufs, mr)
		if err := qp.PostRecv(mr); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MaxMessage reports the configured message size bound.
func (m *Messenger) MaxMessage() int { return m.maxMsg }

// PoolStats reports send-region pool pressure: total acquisitions and
// how many of them found every region busy and had to block.
func (m *Messenger) PoolStats() (acquires, waits int64) {
	return atomic.LoadInt64(&m.poolAcquires), atomic.LoadInt64(&m.poolWaits)
}

// acquireRegion takes a free send region, counting contention.
func (m *Messenger) acquireRegion() (*MemoryRegion, error) {
	atomic.AddInt64(&m.poolAcquires, 1)
	select {
	case mr := <-m.sendFree:
		return mr, nil
	default:
	}
	atomic.AddInt64(&m.poolWaits, 1)
	select {
	case mr := <-m.sendFree:
		return mr, nil
	case <-m.qp.Done():
		return nil, ErrClosed
	}
}

// Send transmits one message, blocking until the NIC (emulated) has
// taken it.
func (m *Messenger) Send(data []byte) error {
	return m.SendEncoded(len(data), func(dst []byte) int {
		return copy(dst, data)
	})
}

// SendEncoded transmits one message of at most size bytes, letting the
// caller encode it directly into a registered send region — no
// intermediate buffer, no per-send allocation, and the region's
// registration cost stays amortized over every message (§2.3). encode
// receives a size-byte window of the region and returns how many bytes
// it actually wrote. Concurrent senders encode into distinct pool
// regions in parallel and serialize only on the wire.
func (m *Messenger) SendEncoded(size int, encode func(dst []byte) int) error {
	if size > m.maxMsg {
		return ErrTooLarge
	}
	if size < 0 {
		return fmt.Errorf("rdma: negative message size %d", size)
	}
	mr, err := m.acquireRegion()
	if err != nil {
		return err
	}
	defer func() { m.sendFree <- mr }()
	n := encode(mr.Bytes()[:size])
	if n < 0 || n > size {
		return fmt.Errorf("rdma: encoder wrote %d bytes into a %d-byte window", n, size)
	}
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	if err := m.qp.PostSend(mr, n); err != nil {
		return err
	}
	select {
	case c := <-m.qp.SendCompletions():
		return c.Err
	case <-m.qp.Done():
		return ErrClosed
	}
}

// TrySendEncoded is SendEncoded without any blocking wait: if no send
// region is free right now, or another sender holds the wire, it
// returns ErrQueueFull immediately. Control traffic that must never
// stall behind bulk data — the membership heartbeat multiplexed onto
// the data link — uses this; a pulse that cannot get through is simply
// dropped (the next interval sends another, and the failure detector
// tolerates missed beats by design). The wire TryLock matters as much
// as the region check: a multi-megabyte send in flight holds sendMu
// until its completion, and a heartbeat that queued behind it would
// inherit that latency — long enough, on a loaded single-core box, for
// the silent sender to be declared dead.
func (m *Messenger) TrySendEncoded(size int, encode func(dst []byte) int) error {
	if size > m.maxMsg {
		return ErrTooLarge
	}
	if size < 0 {
		return fmt.Errorf("rdma: negative message size %d", size)
	}
	var mr *MemoryRegion
	select {
	case mr = <-m.sendFree:
		atomic.AddInt64(&m.poolAcquires, 1)
	default:
		return ErrQueueFull
	}
	defer func() { m.sendFree <- mr }()
	n := encode(mr.Bytes()[:size])
	if n < 0 || n > size {
		return fmt.Errorf("rdma: encoder wrote %d bytes into a %d-byte window", n, size)
	}
	if !m.sendMu.TryLock() {
		return ErrQueueFull
	}
	defer m.sendMu.Unlock()
	if err := m.qp.PostSend(mr, n); err != nil {
		return err
	}
	select {
	case c := <-m.qp.SendCompletions():
		return c.Err
	case <-m.qp.Done():
		return ErrClosed
	}
}

// SendVectored transmits one message gathered from several byte slices
// — the batched-hop path. On a transport that supports vectored sends
// (the TCP provider's writev-shaped PostSendVec), the parts go to the
// wire directly, one gather write, no assembly copy: the parts must
// stay valid and unmodified until SendVectored returns (the live ring's
// refcounted wire cache provides exactly that, playing the role of
// pre-registered buffers). Other transports fall back to gathering the
// parts into one registered send region. Either way the receiver sees a
// single contiguous message equal to the concatenation of the parts.
func (m *Messenger) SendVectored(parts [][]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > m.maxMsg {
		return ErrTooLarge
	}
	vs, ok := m.qp.(VectoredSender)
	if !ok {
		return m.SendEncoded(total, func(dst []byte) int {
			off := 0
			for _, p := range parts {
				off += copy(dst[off:], p)
			}
			return off
		})
	}
	bufs := make(net.Buffers, 0, len(parts))
	for _, p := range parts {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	if err := vs.PostSendVec(bufs); err != nil {
		return err
	}
	select {
	case c := <-m.qp.SendCompletions():
		return c.Err
	case <-m.qp.Done():
		return ErrClosed
	}
}

// Recv blocks for the next message and returns a copy of its payload.
func (m *Messenger) Recv() ([]byte, error) {
	c, ok := <-m.qp.RecvCompletions()
	if !ok {
		return nil, ErrClosed
	}
	if c.Err != nil {
		return nil, c.Err
	}
	m.recvMu.Lock()
	mr := m.recvBufs[m.recvIdx]
	m.recvIdx = (m.recvIdx + 1) % len(m.recvBufs)
	out := make([]byte, c.Bytes)
	copy(out, mr.Bytes()[:c.Bytes])
	err := m.qp.PostRecv(mr) // replenish
	m.recvMu.Unlock()
	if err != nil && err != ErrClosed {
		return out, err
	}
	return out, nil
}

// Close tears down the underlying queue pair.
func (m *Messenger) Close() error {
	var err error
	m.closeOnce.Do(func() { err = m.qp.Close() })
	return err
}
