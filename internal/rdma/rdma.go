// Package rdma emulates the Remote Direct Memory Access facilities the
// Data Cyclotron targets (§2). Real RDMA hardware is not available in
// this environment, so the package provides:
//
//   - an RDMA-shaped transport API — memory regions that must be
//     registered before use, queue pairs with asynchronous post-send /
//     post-receive and completion polling — implemented over in-process
//     channels and TCP;
//   - the analytical CPU-load model behind Figure 1, quantifying why
//     only full RDMA (not mere NIC offload) removes the local I/O
//     bottleneck.
//
// The Data Cyclotron protocols only rely on asynchronous, ordered,
// point-to-point delivery between ring neighbours, which this emulation
// provides with the same API shape real verbs would.
package rdma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Errors returned by the transport.
var (
	ErrNotRegistered = errors.New("rdma: memory region not registered")
	ErrClosed        = errors.New("rdma: queue pair closed")
	ErrTooLarge      = errors.New("rdma: message exceeds region size")
	ErrQueueFull     = errors.New("rdma: receive queue full")
)

// MemoryRegion is a registered buffer. Registration pins the memory
// with the (emulated) NIC and yields a steering key, mirroring §2.1.
type MemoryRegion struct {
	buf        []byte
	key        uint32
	registered bool
}

// Bytes exposes the region's buffer.
func (mr *MemoryRegion) Bytes() []byte { return mr.buf }

// Key returns the registration key.
func (mr *MemoryRegion) Key() uint32 { return mr.key }

// Registered reports registration state.
func (mr *MemoryRegion) Registered() bool { return mr.registered }

// Device is the emulated RNIC: it registers memory and opens queue
// pairs. A zero Device is ready to use.
type Device struct {
	nextKey uint32
}

// RegisterMemory pins a buffer of the given size. This is the expensive
// operation §2.3 warns about, so callers should register long-lived
// buffers once and reuse them.
func (d *Device) RegisterMemory(size int) *MemoryRegion {
	key := atomic.AddUint32(&d.nextKey, 1)
	return &MemoryRegion{buf: make([]byte, size), key: key, registered: true}
}

// Deregister unpins the region.
func (d *Device) Deregister(mr *MemoryRegion) { mr.registered = false }

// Completion reports the outcome of an asynchronous work request.
type Completion struct {
	// Bytes transferred.
	Bytes int
	// Err is non-nil when the work request failed.
	Err error
}

// VectoredSender is the optional gather-send extension of a QueuePair:
// one message assembled from several buffers, written to the wire as a
// single vectored operation (writev on the TCP provider). The buffers
// must remain valid and unmodified until the send completion arrives —
// the contract of pre-registered RDMA buffers, which callers provide by
// holding references (see Messenger.SendVectored). Transports without
// it get the gather done in a registered region instead.
type VectoredSender interface {
	PostSendVec(bufs net.Buffers) error
}

// QueuePair is a point-to-point asynchronous channel between two ring
// neighbours: sends and receives are posted, completions are polled —
// the RDMA execution model that lets computation overlap communication
// (§2.3). Implementations: inproc (pipe) and TCP.
type QueuePair interface {
	// PostSend queues the first n bytes of mr for transmission and
	// returns immediately; the completion arrives on SendCompletions.
	PostSend(mr *MemoryRegion, n int) error
	// PostRecv queues mr to receive one message; the completion
	// arrives on RecvCompletions with the byte count. Like real verbs
	// the receive queue has finite depth: ErrQueueFull when exceeded.
	PostRecv(mr *MemoryRegion) error
	// SendCompletions returns the send completion queue.
	SendCompletions() <-chan Completion
	// RecvCompletions returns the receive completion queue. The channel
	// is closed when the queue pair shuts down.
	RecvCompletions() <-chan Completion
	// Done is closed when the queue pair shuts down.
	Done() <-chan struct{}
	// Close tears the pair down; posted requests complete with ErrClosed.
	Close() error
}

// ---------------------------------------------------------------------
// In-process provider
// ---------------------------------------------------------------------

type inprocMsg struct {
	data []byte
}

// inprocQP is one endpoint of an in-process queue pair.
type inprocQP struct {
	out chan<- inprocMsg
	in  <-chan inprocMsg

	mu       sync.Mutex
	closed   bool
	sendCQ   chan Completion
	recvCQ   chan Completion
	recvPend chan *MemoryRegion
	done     chan struct{}
	loopDone chan struct{}
}

// NewPair creates two connected in-process queue pairs (one per ring
// neighbour). depth bounds the number of in-flight messages.
func NewPair(depth int) (QueuePair, QueuePair) {
	if depth <= 0 {
		depth = 16
	}
	ab := make(chan inprocMsg, depth)
	ba := make(chan inprocMsg, depth)
	a := newInprocQP(ab, ba, depth)
	b := newInprocQP(ba, ab, depth)
	return a, b
}

func newInprocQP(out chan<- inprocMsg, in <-chan inprocMsg, depth int) *inprocQP {
	qp := &inprocQP{
		out:      out,
		in:       in,
		sendCQ:   make(chan Completion, depth*2),
		recvCQ:   make(chan Completion, depth*2),
		recvPend: make(chan *MemoryRegion, depth*2),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go qp.receiveLoop()
	return qp
}

func (qp *inprocQP) receiveLoop() {
	defer close(qp.loopDone)
	for {
		select {
		case <-qp.done:
			return
		case msg, ok := <-qp.in:
			if !ok {
				return
			}
			select {
			case mr := <-qp.recvPend:
				n := copy(mr.buf, msg.data)
				qp.recvCQ <- Completion{Bytes: n}
			case <-qp.done:
				return
			}
		}
	}
}

func (qp *inprocQP) PostSend(mr *MemoryRegion, n int) error {
	if !mr.registered {
		return ErrNotRegistered
	}
	if n > len(mr.buf) {
		return ErrTooLarge
	}
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return ErrClosed
	}
	qp.mu.Unlock()
	// Zero-copy semantics of real RDMA cannot be faked safely across
	// goroutines; copy once (this is the "data copying" cost the CPU
	// model charges the legacy stack with — the emulation is honest
	// about being an emulation).
	data := make([]byte, n)
	copy(data, mr.buf[:n])
	go func() {
		select {
		case qp.out <- inprocMsg{data: data}:
			qp.sendCQ <- Completion{Bytes: n}
		case <-qp.done:
			select {
			case qp.sendCQ <- Completion{Err: ErrClosed}:
			default:
			}
		}
	}()
	return nil
}

func (qp *inprocQP) PostRecv(mr *MemoryRegion) error {
	if !mr.registered {
		return ErrNotRegistered
	}
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return ErrClosed
	}
	qp.mu.Unlock()
	select {
	case qp.recvPend <- mr:
		return nil
	default:
		return ErrQueueFull
	}
}

func (qp *inprocQP) SendCompletions() <-chan Completion { return qp.sendCQ }
func (qp *inprocQP) RecvCompletions() <-chan Completion { return qp.recvCQ }
func (qp *inprocQP) Done() <-chan struct{}              { return qp.done }

func (qp *inprocQP) Close() error {
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return nil
	}
	qp.closed = true
	qp.mu.Unlock()
	close(qp.done)
	<-qp.loopDone // receiveLoop is the only recvCQ writer
	close(qp.recvCQ)
	return nil
}

// ---------------------------------------------------------------------
// TCP provider
// ---------------------------------------------------------------------

// tcpQP frames messages over a TCP connection: 4-byte length prefix +
// payload. It keeps the same post/poll API shape. Sends are gathered:
// the frame header and every payload part go to the kernel as one
// vectored write (net.Buffers → writev), so a message is one syscall
// whether it was posted from a region or from a batch of buffers.
type tcpQP struct {
	conn net.Conn

	mu     sync.Mutex
	closed bool
	sendCQ chan Completion
	recvCQ chan Completion

	sendQ    chan net.Buffers
	recvPend chan *MemoryRegion
	done     chan struct{}
	wg       sync.WaitGroup

	closeOnce sync.Once
	closeErr  error

	syscalls int64 // atomic: write/read calls issued (lower bound, see WireCounters)
	submits  int64 // atomic: gather writes issued
}

// NewTCP wraps an established connection in a queue pair.
func NewTCP(conn net.Conn) QueuePair {
	qp := &tcpQP{
		conn:     conn,
		sendCQ:   make(chan Completion, 64),
		recvCQ:   make(chan Completion, 64),
		sendQ:    make(chan net.Buffers, 64),
		recvPend: make(chan *MemoryRegion, 64),
		done:     make(chan struct{}),
	}
	qp.wg.Add(2)
	go qp.sendLoop()
	go qp.recvLoop()
	return qp
}

func (qp *tcpQP) sendLoop() {
	defer qp.wg.Done()
	var hdr [4]byte
	for {
		select {
		case <-qp.done:
			return
		case parts := <-qp.sendQ:
			total := 0
			for _, p := range parts {
				total += len(p)
			}
			binary.BigEndian.PutUint32(hdr[:], uint32(total))
			// One gather write for header + all parts. WriteTo drains
			// the Buffers slice in place, which is fine: it was built
			// for this send and hdr is rewritten next iteration.
			bufs := make(net.Buffers, 0, len(parts)+1)
			bufs = append(bufs, hdr[:])
			bufs = append(bufs, parts...)
			atomic.AddInt64(&qp.syscalls, 1) // ≥1 writev; WriteTo loops on short writes
			atomic.AddInt64(&qp.submits, 1)
			if _, err := bufs.WriteTo(qp.conn); err != nil {
				// A short or failed gather write leaves the peer mid-frame
				// with no way to resynchronize the length-prefixed stream:
				// fail the pending completion with the cause and tear the
				// pair down rather than carry on corrupting it.
				qp.sendCQ <- Completion{Err: err}
				qp.abort()
				return
			}
			qp.sendCQ <- Completion{Bytes: total}
		}
	}
}

// countingReader counts every Read call on the wire — each one is a
// kernel read — so frames assembled by io.ReadFull report their true
// syscall cost instead of a flat one-per-ReadFull guess. (Still a lower
// bound overall: reads that park on the netpoller retry after an epoll
// wake this layer cannot see.)
type countingReader struct{ qp *tcpQP }

func (r countingReader) Read(p []byte) (int, error) {
	atomic.AddInt64(&r.qp.syscalls, 1)
	return r.qp.conn.Read(p)
}

func (qp *tcpQP) recvLoop() {
	defer qp.wg.Done()
	cr := countingReader{qp}
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(cr, hdr[:]); err != nil {
			qp.failPendingRecv(err)
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		var mr *MemoryRegion
		select {
		case mr = <-qp.recvPend:
		case <-qp.done:
			return
		}
		if n > len(mr.buf) {
			// Drain and report.
			io.CopyN(io.Discard, cr, int64(n))
			qp.recvCQ <- Completion{Err: ErrTooLarge}
			continue
		}
		if _, err := io.ReadFull(cr, mr.buf[:n]); err != nil {
			qp.recvCQ <- Completion{Err: err}
			return
		}
		qp.recvCQ <- Completion{Bytes: n}
	}
}

func (qp *tcpQP) failPendingRecv(err error) {
	select {
	case <-qp.recvPend:
		select {
		case qp.recvCQ <- Completion{Err: err}:
		default:
		}
	default:
	}
}

func (qp *tcpQP) PostSend(mr *MemoryRegion, n int) error {
	if !mr.registered {
		return ErrNotRegistered
	}
	if n > len(mr.buf) {
		return ErrTooLarge
	}
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return ErrClosed
	}
	qp.mu.Unlock()
	data := make([]byte, n)
	copy(data, mr.buf[:n])
	select {
	case qp.sendQ <- net.Buffers{data}:
		return nil
	case <-qp.done:
		return ErrClosed
	}
}

// PostSendVec implements VectoredSender: the parts are handed to the
// send loop as-is (no copy) and written with the frame header in one
// gather write. The caller must keep the parts stable until the send
// completion arrives.
func (qp *tcpQP) PostSendVec(bufs net.Buffers) error {
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return ErrClosed
	}
	qp.mu.Unlock()
	select {
	case qp.sendQ <- bufs:
		return nil
	case <-qp.done:
		return ErrClosed
	}
}

func (qp *tcpQP) PostRecv(mr *MemoryRegion) error {
	if !mr.registered {
		return ErrNotRegistered
	}
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return ErrClosed
	}
	qp.mu.Unlock()
	select {
	case qp.recvPend <- mr:
		return nil
	default:
		return ErrQueueFull
	}
}

func (qp *tcpQP) SendCompletions() <-chan Completion { return qp.sendCQ }
func (qp *tcpQP) RecvCompletions() <-chan Completion { return qp.recvCQ }
func (qp *tcpQP) Done() <-chan struct{}              { return qp.done }

// WireCounters implements WireStatter. The numbers are the write/read
// calls this layer issues, a lower bound on true kernel crossings: the
// netpoller's epoll_pwait and futex wakeups under each blocking read
// come on top and are not visible from here.
func (qp *tcpQP) WireCounters() WireCounters {
	return WireCounters{
		Syscalls: atomic.LoadInt64(&qp.syscalls),
		Submits:  atomic.LoadInt64(&qp.submits),
	}
}

// abort tears the wire down without waiting for the loops, so the send
// loop can invoke it on a write failure (waiting there would deadlock on
// its own exit). Idempotent; Close finishes the teardown.
func (qp *tcpQP) abort() {
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return
	}
	qp.closed = true
	qp.mu.Unlock()
	close(qp.done)
	qp.closeErr = qp.conn.Close() // unblocks the receive loop
}

func (qp *tcpQP) Close() error {
	qp.abort()
	qp.closeOnce.Do(func() {
		qp.wg.Wait()
		close(qp.recvCQ)
	})
	return qp.closeErr
}

// ---------------------------------------------------------------------
// Figure 1: CPU-load model
// ---------------------------------------------------------------------

// Stack identifies the network processing architecture of Figure 1.
type Stack int

// The three compared configurations.
const (
	// LegacyStack does everything on the CPU: kernel TCP/IP, driver,
	// context switches, and intermediate data copies.
	LegacyStack Stack = iota
	// NICOffload moves TCP processing to the NIC but still copies data
	// between network buffers and application memory.
	NICOffload
	// RDMA places data directly in application memory: no copies, no
	// kernel involvement.
	RDMA
)

func (s Stack) String() string {
	switch s {
	case LegacyStack:
		return "everything-on-cpu"
	case NICOffload:
		return "network-stack-on-nic"
	case RDMA:
		return "rdma"
	}
	return fmt.Sprintf("stack(%d)", int(s))
}

// CPUBreakdown is the per-component CPU load (fraction of one core) for
// a given stack at a given throughput.
type CPUBreakdown struct {
	Stack           Stack
	NetworkStack    float64
	Driver          float64
	ContextSwitches float64
	DataCopying     float64
}

// Total sums the components.
func (b CPUBreakdown) Total() float64 {
	return b.NetworkStack + b.Driver + b.ContextSwitches + b.DataCopying
}

// CPUModel computes Figure 1's breakdown. It encodes the rule of thumb
// of §2.2 — about 1 GHz of CPU per 1 Gb/s of network throughput on a
// legacy stack — split over the cost components shown in the figure
// (data copying dominates), and the observation that offloading the
// stack alone does not remove the copy cost, while RDMA reduces local
// I/O overhead to nearly zero.
func CPUModel(stack Stack, gbps, cpuGHz float64) CPUBreakdown {
	if gbps < 0 || cpuGHz <= 0 {
		panic("rdma: invalid CPU model parameters")
	}
	// Legacy total load: 1 GHz per 1 Gb/s.
	legacyTotal := gbps / cpuGHz
	// Component shares of the legacy cost (after Figure 1 / [13]):
	const (
		copyShare   = 0.50
		stackShare  = 0.25
		driverShare = 0.15
		ctxShare    = 0.10
	)
	switch stack {
	case LegacyStack:
		return CPUBreakdown{
			Stack:           stack,
			NetworkStack:    legacyTotal * stackShare,
			Driver:          legacyTotal * driverShare,
			ContextSwitches: legacyTotal * ctxShare,
			DataCopying:     legacyTotal * copyShare,
		}
	case NICOffload:
		// Stack processing moves to the NIC; copies and (reduced)
		// driver/context costs remain.
		return CPUBreakdown{
			Stack:           stack,
			Driver:          legacyTotal * driverShare * 0.5,
			ContextSwitches: legacyTotal * ctxShare * 0.5,
			DataCopying:     legacyTotal * copyShare,
		}
	case RDMA:
		// Direct data placement: one DMA pass, no kernel, no copies.
		return CPUBreakdown{
			Stack:       stack,
			DataCopying: legacyTotal * 0.02, // residual completion handling
		}
	}
	panic("rdma: unknown stack")
}

// MemoryBusCrossings reports how many times a transferred byte crosses
// the memory bus under each stack (§2.2: the kernel stack crosses
// several times; RDMA exactly once).
func MemoryBusCrossings(stack Stack) int {
	switch stack {
	case LegacyStack:
		return 3
	case NICOffload:
		return 2
	case RDMA:
		return 1
	}
	return 0
}
