package rdma

// Backend selection for socket-backed queue pairs. The ring's data links
// can ride two wire engines over the same TCP connection:
//
//   - tcp:   the portable tcpQP — one goroutine pair per endpoint, the Go
//     netpoller underneath, a write/read syscall pair (plus poller
//     wakeups) per message.
//   - uring: the Linux io_uring backend (uring_linux.go) — pre-registered
//     buffers, fixed-buffer SQEs, a LockOSThread-pinned submission loop
//     per endpoint, and batched submission so one io_uring_enter can
//     cover many queued hops.
//
// "auto" probes the kernel once and uses uring when the probe passes,
// falling back to tcp (with the reason recorded) when it does not —
// old kernels, seccomp filters that deny the io_uring syscalls, and
// non-Linux builds all land on the tcp path transparently. An explicit
// "uring" on an unsupported system is a configuration error and is
// reported as one instead of degrading silently.

import (
	"fmt"
	"net"
	"sync"
)

// Backend names the wire engine of a socket-backed queue pair.
type Backend int

// The selectable backends.
const (
	// BackendTCP is the portable netpoller-based provider (tcpQP) — the
	// default, byte-identical to the pre-selector transport.
	BackendTCP Backend = iota
	// BackendAuto selects uring when the kernel supports it, tcp
	// otherwise (probe once, record the fallback reason).
	BackendAuto
	// BackendUring is the io_uring registered-buffer provider. Explicit
	// selection fails loudly when the kernel lacks support.
	BackendUring
)

func (b Backend) String() string {
	switch b {
	case BackendTCP:
		return "tcp"
	case BackendAuto:
		return "auto"
	case BackendUring:
		return "uring"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseBackend maps a config string onto a Backend. The empty string is
// BackendTCP: a zero config keeps today's transport byte for byte.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "tcp":
		return BackendTCP, nil
	case "auto":
		return BackendAuto, nil
	case "uring":
		return BackendUring, nil
	}
	return BackendTCP, fmt.Errorf("rdma: unknown backend %q (want tcp, auto, or uring)", s)
}

// ResolveBackend parses s and resolves "auto" against the kernel probe.
// It returns the backend that will actually carry traffic and, when auto
// degraded to tcp, the reason why. Explicit "uring" on a kernel that
// fails the probe is an error, never a silent downgrade.
func ResolveBackend(s string) (Backend, string, error) {
	b, err := ParseBackend(s)
	if err != nil {
		return BackendTCP, "", err
	}
	switch b {
	case BackendTCP:
		return BackendTCP, "", nil
	case BackendUring:
		if ok, reason := UringSupported(); !ok {
			return BackendTCP, "", fmt.Errorf("rdma: backend uring requested but unavailable: %s", reason)
		}
		return BackendUring, "", nil
	}
	// auto
	if ok, reason := UringSupported(); !ok {
		return BackendTCP, reason, nil
	}
	return BackendUring, "", nil
}

// NewConnQP wraps an established connection in the queue pair the
// resolved backend selects. maxMsg bounds a single message and sizes the
// uring backend's registered receive staging; the tcp backend ignores
// it. If the uring engine fails to come up on this specific connection
// (fd limits, a dup that trips a sandbox) the link degrades to tcp and
// the reason is returned — per-connection resilience on top of the
// kernel-level probe.
func NewConnQP(conn net.Conn, backend Backend, maxMsg int) (QueuePair, string, error) {
	if backend == BackendAuto {
		resolved, reason, err := ResolveBackend("auto")
		if err != nil {
			return nil, "", err
		}
		if resolved != BackendUring {
			return NewTCP(conn), reason, nil
		}
		backend = BackendUring
	}
	if backend != BackendUring {
		return NewTCP(conn), "", nil
	}
	qp, err := NewUring(conn, maxMsg)
	if err != nil {
		return NewTCP(conn), fmt.Sprintf("uring setup failed: %v", err), nil
	}
	return qp, "", nil
}

// WireCounters reports transport work at the syscall layer of one queue
// pair endpoint. For the tcp backend, Syscalls counts the write and read
// calls this layer issues (a lower bound on true kernel crossings: the
// Go netpoller's epoll and futex traffic comes on top). For the uring
// backend, Syscalls counts io_uring_enter calls, Submits the enters that
// pushed at least one SQE, and CqeBatch histograms how many completions
// each reaping enter returned (1, 2, 3-4, 5-8, ..., >64) — the batching
// that lets one syscall cover many queued hops.
type WireCounters struct {
	Syscalls int64
	Submits  int64
	CqeBatch [8]int64
	// SQPoll reports that this endpoint's send ring runs a kernel
	// submission-polling thread (IORING_SETUP_SQPOLL): submissions cost
	// no syscall while the thread is awake. Always false for tcp, and
	// for uring on machines without the CPU headroom to dedicate a
	// polling thread per link.
	SQPoll bool
}

// add accumulates o into c (CqeBatch element-wise, SQPoll ORed).
func (c *WireCounters) add(o WireCounters) {
	c.Syscalls += o.Syscalls
	c.Submits += o.Submits
	for i := range c.CqeBatch {
		c.CqeBatch[i] += o.CqeBatch[i]
	}
	c.SQPoll = c.SQPoll || o.SQPoll
}

// cqeBucket maps a per-enter completion count onto a CqeBatch index
// (same buckets as the hop fill histogram: 1, 2, 3-4, 5-8, ..., >64).
func cqeBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n <= 16:
		return 4
	case n <= 32:
		return 5
	case n <= 64:
		return 6
	}
	return 7
}

// WireStatter is implemented by queue pairs that count their syscall
// work (tcp and uring; the in-process provider makes no syscalls).
type WireStatter interface {
	WireCounters() WireCounters
}

// BufferRegistrar is implemented by queue pairs that can pin caller
// buffers with the kernel — the io_uring backend registers the
// Messenger's pooled send regions with IORING_REGISTER_BUFFERS, so a
// PostSend from one of them is a fixed-buffer SQE straight out of the
// region, no intermediate copy. Registration happens once, before any
// traffic; a region registered here must stay untouched from PostSend
// until its completion arrives (the contract Messenger already keeps).
type BufferRegistrar interface {
	RegisterBuffers(regions []*MemoryRegion) error
}

// Probe state: resolved once per process, overridable by tests.
var (
	probeOnce   sync.Once
	probeOK     bool
	probeReason string

	forceMu     sync.RWMutex
	forceOff    bool
	forceOffWhy string
)

// UringSupported reports whether the io_uring backend can run on this
// system, probing the kernel once per process: ring setup, buffer
// registration, and a fixed-buffer send/recv round trip over a loopback
// socket pair — exactly the operations the backend issues. The reason
// explains a negative verdict (not linux, ENOSYS under seccomp, probe
// round-trip failure, ...).
func UringSupported() (bool, string) {
	forceMu.RLock()
	off, why := forceOff, forceOffWhy
	forceMu.RUnlock()
	if off {
		return false, why
	}
	probeOnce.Do(func() {
		probeOK, probeReason = probeUring()
	})
	return probeOK, probeReason
}

// ForceUringUnsupported makes UringSupported report false with the given
// reason until the returned restore func runs — the test hook behind the
// backend-selection fallback tests (exercising the unsupported-kernel
// paths on any machine).
func ForceUringUnsupported(reason string) (restore func()) {
	forceMu.Lock()
	forceOff, forceOffWhy = true, reason
	forceMu.Unlock()
	return func() {
		forceMu.Lock()
		forceOff, forceOffWhy = false, ""
		forceMu.Unlock()
	}
}
