package rdma

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMessengerRoundtrip(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, err := NewMessenger(qa, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMessenger(qb, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	done := make(chan []byte, 1)
	go func() {
		data, err := b.Recv()
		if err != nil {
			done <- nil
			return
		}
		done <- data
	}()
	if err := a.Send([]byte("spin the ring")); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-done:
		if !bytes.Equal(data, []byte("spin the ring")) {
			t.Fatalf("recv = %q", data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv timeout")
	}
}

func TestMessengerManyMessages(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, _ := NewMessenger(qa, 256)
	b, _ := NewMessenger(qb, 256)
	defer a.Close()
	defer b.Close()

	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	errs := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			data, err := b.Recv()
			if err != nil {
				errs <- err
				return
			}
			want := fmt.Sprintf("msg-%04d", i)
			if string(data) != want {
				errs <- fmt.Errorf("got %q want %q (ordering)", data, want)
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("msg-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestMessengerTooLarge(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, errA := NewMessenger(qa, 16)
	b, errB := NewMessenger(qb, 16)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	defer a.Close()
	defer b.Close()
	if err := a.Send(make([]byte, 17)); err != ErrTooLarge {
		t.Fatalf("err = %v", err)
	}
	if a.MaxMessage() != 16 {
		t.Fatal("MaxMessage wrong")
	}
}

func TestMessengerCloseUnblocksRecv(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, errA := NewMessenger(qa, 16)
	b, errB := NewMessenger(qb, 16)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv should fail after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestNewMessengerBadSize(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	defer qa.Close()
	defer qb.Close()
	if _, err := NewMessenger(qa, 0); err == nil {
		t.Fatal("expected error")
	}
}

// TestMessengerSendEncoded checks the encode-into-registered-region
// path: the encoder writes directly into the send buffer and the exact
// written length travels.
func TestMessengerSendEncoded(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, err := NewMessenger(qa, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMessenger(qb, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	done := make(chan []byte, 1)
	go func() {
		data, _ := b.Recv()
		done <- data
	}()
	// Reserve a generous window, write less: the short length must win.
	err = a.SendEncoded(100, func(dst []byte) int {
		if len(dst) != 100 {
			t.Errorf("window is %d bytes, want 100", len(dst))
		}
		return copy(dst, "header|payload")
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-done:
		if !bytes.Equal(data, []byte("header|payload")) {
			t.Fatalf("recv = %q", data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv timeout")
	}

	if err := a.SendEncoded(2048, func(dst []byte) int { return 0 }); err != ErrTooLarge {
		t.Fatalf("oversize SendEncoded: err = %v, want ErrTooLarge", err)
	}
	if err := a.SendEncoded(8, func(dst []byte) int { return 9 }); err == nil {
		t.Fatal("encoder overrun not rejected")
	}
}
