package rdma

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestMessengerRoundtrip(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, err := NewMessenger(qa, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMessenger(qb, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	done := make(chan []byte, 1)
	go func() {
		data, err := b.Recv()
		if err != nil {
			done <- nil
			return
		}
		done <- data
	}()
	if err := a.Send([]byte("spin the ring")); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-done:
		if !bytes.Equal(data, []byte("spin the ring")) {
			t.Fatalf("recv = %q", data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv timeout")
	}
}

func TestMessengerManyMessages(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, _ := NewMessenger(qa, 256)
	b, _ := NewMessenger(qb, 256)
	defer a.Close()
	defer b.Close()

	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	errs := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			data, err := b.Recv()
			if err != nil {
				errs <- err
				return
			}
			want := fmt.Sprintf("msg-%04d", i)
			if string(data) != want {
				errs <- fmt.Errorf("got %q want %q (ordering)", data, want)
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("msg-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestMessengerTooLarge(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, errA := NewMessenger(qa, 16)
	b, errB := NewMessenger(qb, 16)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	defer a.Close()
	defer b.Close()
	if err := a.Send(make([]byte, 17)); err != ErrTooLarge {
		t.Fatalf("err = %v", err)
	}
	if a.MaxMessage() != 16 {
		t.Fatal("MaxMessage wrong")
	}
}

func TestMessengerCloseUnblocksRecv(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, errA := NewMessenger(qa, 16)
	b, errB := NewMessenger(qb, 16)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv should fail after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestNewMessengerBadSize(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	defer qa.Close()
	defer qb.Close()
	if _, err := NewMessenger(qa, 0); err == nil {
		t.Fatal("expected error")
	}
}

// TestMessengerSendEncoded checks the encode-into-registered-region
// path: the encoder writes directly into the send buffer and the exact
// written length travels.
func TestMessengerSendEncoded(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, err := NewMessenger(qa, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMessenger(qb, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	done := make(chan []byte, 1)
	go func() {
		data, _ := b.Recv()
		done <- data
	}()
	// Reserve a generous window, write less: the short length must win.
	err = a.SendEncoded(100, func(dst []byte) int {
		if len(dst) != 100 {
			t.Errorf("window is %d bytes, want 100", len(dst))
		}
		return copy(dst, "header|payload")
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-done:
		if !bytes.Equal(data, []byte("header|payload")) {
			t.Fatalf("recv = %q", data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv timeout")
	}

	if err := a.SendEncoded(2048, func(dst []byte) int { return 0 }); err != ErrTooLarge {
		t.Fatalf("oversize SendEncoded: err = %v, want ErrTooLarge", err)
	}
	if err := a.SendEncoded(8, func(dst []byte) int { return 9 }); err == nil {
		t.Fatal("encoder overrun not rejected")
	}
}

// tcpMessengerPair dials a loopback connection and wraps both ends in
// messengers, for tests that exercise the vectored TCP path.
func tcpMessengerPair(t *testing.T, maxMsg int) (*Messenger, *Messenger) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	cliConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srvConn := <-accepted
	a, err := NewMessenger(NewTCP(cliConn), maxMsg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMessenger(NewTCP(srvConn), maxMsg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestMessengerSendVectoredTCP checks that a vectored send over the TCP
// provider arrives as the exact concatenation of its parts — the
// receiver cannot tell a gathered batch from a contiguous message.
func TestMessengerSendVectoredTCP(t *testing.T) {
	a, b := tcpMessengerPair(t, 1024)
	if _, ok := a.qp.(VectoredSender); !ok {
		t.Fatal("TCP queue pair should support vectored sends")
	}
	parts := [][]byte{
		[]byte("hdr|"),
		{}, // empty parts must be tolerated
		[]byte("frag-one|"),
		[]byte("frag-two"),
	}
	want := []byte("hdr|frag-one|frag-two")
	done := make(chan []byte, 1)
	go func() {
		data, _ := b.Recv()
		done <- data
	}()
	if err := a.SendVectored(parts); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-done:
		if !bytes.Equal(data, want) {
			t.Fatalf("recv = %q, want %q", data, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv timeout")
	}
	if err := a.SendVectored([][]byte{make([]byte, 1000), make([]byte, 25)}); err != ErrTooLarge {
		t.Fatalf("oversize vectored send: err = %v, want ErrTooLarge", err)
	}
}

// TestMessengerSendVectoredFallback checks the gather-into-region
// fallback on a transport without PostSendVec (the inproc provider).
func TestMessengerSendVectoredFallback(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, _ := NewMessenger(qa, 256)
	b, _ := NewMessenger(qb, 256)
	defer a.Close()
	defer b.Close()
	if _, ok := a.qp.(VectoredSender); ok {
		t.Fatal("inproc pair unexpectedly vectored; fallback untested")
	}
	done := make(chan []byte, 1)
	go func() {
		data, _ := b.Recv()
		done <- data
	}()
	if err := a.SendVectored([][]byte{[]byte("spin "), []byte("the "), []byte("ring")}); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-done:
		if !bytes.Equal(data, []byte("spin the ring")) {
			t.Fatalf("recv = %q", data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv timeout")
	}
}

// TestMessengerSendPool checks that concurrent SendEncoded calls share
// the region pool correctly (every message arrives intact) and that
// pool pressure is visible in PoolStats.
func TestMessengerSendPool(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	a, _ := NewMessenger(qa, 256)
	b, _ := NewMessenger(qb, 256)
	defer a.Close()
	defer b.Close()

	const n = 64
	const senders = 8
	got := make(chan string, n*senders)
	go func() {
		for i := 0; i < n*senders; i++ {
			data, err := b.Recv()
			if err != nil {
				close(got)
				return
			}
			got <- string(data)
		}
		close(got)
	}()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				msg := fmt.Sprintf("s%02d-m%04d", s, i)
				if err := a.SendEncoded(len(msg), func(dst []byte) int {
					return copy(dst, msg)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	seen := make(map[string]bool, n*senders)
	for msg := range got {
		if seen[msg] {
			t.Fatalf("duplicate message %q (pool region reused before completion)", msg)
		}
		seen[msg] = true
	}
	if len(seen) != n*senders {
		t.Fatalf("received %d distinct messages, want %d", len(seen), n*senders)
	}
	acquires, waits := a.PoolStats()
	if acquires != n*senders {
		t.Fatalf("acquires = %d, want %d", acquires, n*senders)
	}
	if waits < 0 || waits > acquires {
		t.Fatalf("waits = %d out of range [0, %d]", waits, acquires)
	}
}

// TestMessengerPoolBounded checks the registered-byte cap: a messenger
// with huge messages gets fewer regions, never zero.
func TestMessengerPoolBounded(t *testing.T) {
	qa, qb := NewPair(MessengerDepth)
	defer qb.Close()
	m, err := NewMessenger(qa, maxSendPoolBytes) // one region fills the cap
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := cap(m.sendFree); got != 1 {
		t.Fatalf("pool size = %d regions, want 1 at the byte cap", got)
	}
	qc, qd := NewPair(MessengerDepth)
	defer qd.Close()
	small, err := NewMessenger(qc, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if got := cap(small.sendFree); got != MessengerSendRegions {
		t.Fatalf("pool size = %d regions, want %d for small messages", got, MessengerSendRegions)
	}
}
