//go:build linux

package rdma

// The io_uring queue-pair provider. Same wire format as tcpQP (4-byte
// big-endian length prefix + payload, so the two backends interoperate
// across a link), different kernel interface:
//
//   - two small rings per endpoint (send and receive), set up with raw
//     io_uring_setup/io_uring_enter/io_uring_register syscalls — no cgo;
//   - the Messenger's pooled send regions are pinned once with
//     IORING_REGISTER_BUFFERS, so a PostSend from a region becomes a
//     single WRITE_FIXED SQE straight out of the registered buffer — the
//     kernel DMA-maps it up front instead of pinning per call;
//   - each posted message (header + payload parts) is a linked SQE
//     chain, and the send loop drains everything queued into one chain
//     per submission, so one io_uring_enter(submit-and-wait) covers many
//     queued messages — this is where the syscalls/hop win over the
//     write-syscall-per-message netpoller path comes from;
//   - receives land in one registered staging buffer via READ_FIXED and
//     are framed in user space, so back-to-back hop envelopes arrive
//     several frames per syscall;
//   - both loops run on runtime.LockOSThread-pinned OS threads: the
//     completion path never migrates cores, and a blocking
//     submit-and-wait parks the thread in the kernel instead of
//     bouncing through the netpoller's epoll/futex machinery.
//
// Error semantics match the (fixed) tcpQP: a wire failure fails the
// pending completion with the error and tears the pair down — a peer is
// never left mid-frame.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Raw syscall numbers — identical across the 64-bit Linux ports.
const (
	sysIoUringSetup    = 425
	sysIoUringEnter    = 426
	sysIoUringRegister = 427
)

// ABI constants from include/uapi/linux/io_uring.h.
const (
	uringOffSQRing = 0
	uringOffCQRing = 0x8000000
	uringOffSQEs   = 0x10000000

	uringFeatSingleMmap = 1 << 0

	uringSetupSQPoll = 1 << 1 // IORING_SETUP_SQPOLL

	uringOpReadFixed  = 4
	uringOpWriteFixed = 5
	uringOpSend       = 26

	uringEnterGetevents = 1
	uringEnterSQWakeup  = 2 // IORING_ENTER_SQ_WAKEUP

	uringSQNeedWakeup = 1 // IORING_SQ_NEED_WAKEUP (sq ring flags)

	uringSQEIOLink = 4 // IOSQE_IO_LINK

	uringRegisterBuffers = 0

	msgWaitall = 0x100  // MSG_WAITALL: kernels ≥5.19 retry short sends
	msgMore    = 0x8000 // MSG_MORE: hold this segment for coalescing with the next
)

type uringSQOffsets struct {
	head, tail, ringMask, ringEntries uint32
	flags, dropped, array, resv1      uint32
	userAddr                          uint64
}

type uringCQOffsets struct {
	head, tail, ringMask, ringEntries uint32
	overflow, cqes, flags, resv1      uint32
	userAddr                          uint64
}

type uringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFD         uint32
	resv         [3]uint32
	sqOff        uringSQOffsets
	cqOff        uringCQOffsets
}

// uringSQE is struct io_uring_sqe (64 bytes).
type uringSQE struct {
	opcode      uint8
	flags       uint8
	ioprio      uint16
	fd          int32
	off         uint64
	addr        uint64
	len         uint32
	opFlags     uint32 // rw_flags / msg_flags union
	userData    uint64
	bufIndex    uint16
	personality uint16
	spliceFdIn  int32
	pad         [2]uint64
}

// uringCQE is struct io_uring_cqe (16 bytes).
type uringCQE struct {
	userData uint64
	res      int32
	flags    uint32
}

type uringIovec struct {
	base unsafe.Pointer
	len  uintptr
}

// uring is one io_uring instance: the mmapped submission and completion
// rings plus the SQE array. It is owned by exactly one goroutine (the
// send or receive loop), so only the kernel-shared head/tail words need
// atomic access.
type uring struct {
	fd        int
	sqMem     []byte
	cqMem     []byte // aliases sqMem under IORING_FEAT_SINGLE_MMAP
	sqeMem    []byte
	singleMap bool

	sqHead    *uint32
	sqTail    *uint32
	sqMask    uint32
	sqFlags   *uint32 // kernel-written ring flags (NEED_WAKEUP under SQPOLL)
	sqArray   []uint32
	sqEntries uint32
	sqes      []uringSQE
	sqpoll    bool

	cqHead *uint32
	cqTail *uint32
	cqMask uint32
	cqes   []uringCQE
}

// setupUring creates a plain ring; setupUringPoll creates one with a
// kernel submission-polling thread (IORING_SETUP_SQPOLL), which consumes
// published SQEs with no io_uring_enter at all while it is awake.
func setupUring(entries uint32) (*uring, error) {
	return setupUringParams(entries, 0, 0)
}

func setupUringPoll(entries uint32, idleMillis uint32) (*uring, error) {
	return setupUringParams(entries, uringSetupSQPoll, idleMillis)
}

func setupUringParams(entries, flags, idleMillis uint32) (*uring, error) {
	var p uringParams
	p.flags = flags
	p.sqThreadIdle = idleMillis
	fd, _, errno := syscall.Syscall(sysIoUringSetup, uintptr(entries),
		uintptr(unsafe.Pointer(&p)), 0)
	if errno != 0 {
		return nil, fmt.Errorf("io_uring_setup: %w", errno)
	}
	u := &uring{fd: int(fd), sqpoll: flags&uringSetupSQPoll != 0}
	ok := false
	defer func() {
		if !ok {
			u.close()
		}
	}()

	sqSize := int(p.sqOff.array) + int(p.sqEntries)*4
	cqSize := int(p.cqOff.cqes) + int(p.cqEntries)*int(unsafe.Sizeof(uringCQE{}))
	u.singleMap = p.features&uringFeatSingleMmap != 0
	if u.singleMap {
		size := sqSize
		if cqSize > size {
			size = cqSize
		}
		mem, err := syscall.Mmap(u.fd, uringOffSQRing, size,
			syscall.PROT_READ|syscall.PROT_WRITE,
			syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			return nil, fmt.Errorf("mmap sq/cq ring: %w", err)
		}
		u.sqMem, u.cqMem = mem, mem
	} else {
		mem, err := syscall.Mmap(u.fd, uringOffSQRing, sqSize,
			syscall.PROT_READ|syscall.PROT_WRITE,
			syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			return nil, fmt.Errorf("mmap sq ring: %w", err)
		}
		u.sqMem = mem
		mem, err = syscall.Mmap(u.fd, uringOffCQRing, cqSize,
			syscall.PROT_READ|syscall.PROT_WRITE,
			syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			return nil, fmt.Errorf("mmap cq ring: %w", err)
		}
		u.cqMem = mem
	}
	sqeMem, err := syscall.Mmap(u.fd, uringOffSQEs,
		int(p.sqEntries)*int(unsafe.Sizeof(uringSQE{})),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return nil, fmt.Errorf("mmap sqes: %w", err)
	}
	u.sqeMem = sqeMem

	u.sqHead = (*uint32)(unsafe.Pointer(&u.sqMem[p.sqOff.head]))
	u.sqTail = (*uint32)(unsafe.Pointer(&u.sqMem[p.sqOff.tail]))
	u.sqFlags = (*uint32)(unsafe.Pointer(&u.sqMem[p.sqOff.flags]))
	u.sqMask = *(*uint32)(unsafe.Pointer(&u.sqMem[p.sqOff.ringMask]))
	u.sqArray = unsafe.Slice((*uint32)(unsafe.Pointer(&u.sqMem[p.sqOff.array])), p.sqEntries)
	u.sqEntries = p.sqEntries
	u.sqes = unsafe.Slice((*uringSQE)(unsafe.Pointer(&u.sqeMem[0])), p.sqEntries)

	u.cqHead = (*uint32)(unsafe.Pointer(&u.cqMem[p.cqOff.head]))
	u.cqTail = (*uint32)(unsafe.Pointer(&u.cqMem[p.cqOff.tail]))
	u.cqMask = *(*uint32)(unsafe.Pointer(&u.cqMem[p.cqOff.ringMask]))
	u.cqes = unsafe.Slice((*uringCQE)(unsafe.Pointer(&u.cqMem[p.cqOff.cqes])), p.cqEntries)

	ok = true
	return u, nil
}

// stage writes one SQE at slot tail+k without publishing it. Under
// SQPOLL the kernel thread consumes everything up to the published tail
// at any moment, so a linked chain must be staged completely and
// published in one tail store (publish) — advancing the tail per SQE
// could hand the kernel a chain whose continuation is not written yet,
// silently breaking the link ordering that serializes the stream.
// Returns false when the SQ lacks room (callers size chunks to fit).
func (u *uring) stage(e *uringSQE, k uint32) bool {
	tail := atomic.LoadUint32(u.sqTail)
	head := atomic.LoadUint32(u.sqHead)
	if tail+k-head >= u.sqEntries {
		return false
	}
	idx := (tail + k) & u.sqMask
	u.sqes[idx] = *e
	u.sqArray[idx] = idx
	return true
}

// publish makes n staged SQEs visible to the kernel.
func (u *uring) publish(n uint32) {
	atomic.StoreUint32(u.sqTail, atomic.LoadUint32(u.sqTail)+n)
}

// push places and publishes one SQE at the submission tail.
func (u *uring) push(e *uringSQE) bool {
	if !u.stage(e, 0) {
		return false
	}
	u.publish(1)
	return true
}

// needWakeup reports whether the SQPOLL thread has gone idle and needs
// an IORING_ENTER_SQ_WAKEUP enter to notice newly published SQEs.
func (u *uring) needWakeup() bool {
	return u.sqpoll && atomic.LoadUint32(u.sqFlags)&uringSQNeedWakeup != 0
}

// enter is io_uring_enter: submit toSubmit queued SQEs and, with
// IORING_ENTER_GETEVENTS, wait until minComplete completions are
// available.
func (u *uring) enter(toSubmit, minComplete, flags uint32) (int, error) {
	n, _, errno := syscall.Syscall6(sysIoUringEnter, uintptr(u.fd),
		uintptr(toSubmit), uintptr(minComplete), uintptr(flags), 0, 0)
	if errno != 0 {
		return int(n), errno
	}
	return int(n), nil
}

// reap copies available CQEs into out and advances the CQ head.
func (u *uring) reap(out []uringCQE) int {
	head := atomic.LoadUint32(u.cqHead)
	tail := atomic.LoadUint32(u.cqTail)
	n := 0
	for head != tail && n < len(out) {
		out[n] = u.cqes[head&u.cqMask]
		head++
		n++
	}
	atomic.StoreUint32(u.cqHead, head)
	return n
}

// registerBuffers pins the iovecs with IORING_REGISTER_BUFFERS; fixed
// read/write SQEs then reference them by index with no per-op pinning.
func (u *uring) registerBuffers(iovs []uringIovec) error {
	_, _, errno := syscall.Syscall6(sysIoUringRegister, uintptr(u.fd),
		uringRegisterBuffers, uintptr(unsafe.Pointer(&iovs[0])),
		uintptr(len(iovs)), 0, 0)
	if errno != 0 {
		return fmt.Errorf("io_uring_register(BUFFERS): %w", errno)
	}
	return nil
}

func (u *uring) close() {
	if u.sqeMem != nil {
		syscall.Munmap(u.sqeMem)
	}
	if u.cqMem != nil && !u.singleMap {
		syscall.Munmap(u.cqMem)
	}
	if u.sqMem != nil {
		syscall.Munmap(u.sqMem)
	}
	syscall.Close(u.fd)
}

// ---------------------------------------------------------------------
// uringQP
// ---------------------------------------------------------------------

const (
	// uringSendEntries sizes the send SQ: a v3 batch envelope posted
	// through PostSendVec is one header + up to 64 fragment parts, so
	// 256 entries let several queued messages chain into one submission.
	uringSendEntries = 256
	// uringRecvEntries sizes the receive SQ: the receive loop keeps at
	// most one READ_FIXED in flight.
	uringRecvEntries = 8
	// uringStagingSlack is extra registered staging beyond two maximum
	// frames, so one speculative read can capture several back-to-back
	// envelopes plus the head of the next.
	uringStagingSlack = 64 << 10
	// uringMaxBatchMsgs bounds how many queued messages the send loop
	// folds into one linked-chain submission.
	uringMaxBatchMsgs = 16
	// uringSQPollIdleMillis is how long the kernel submission-polling
	// thread keeps spinning after the last SQE before it sleeps (and the
	// next submission pays one wakeup enter). Long enough to stay awake
	// across a ring revolution's back-to-back hops, short enough not to
	// burn a core on an idle link.
	uringSQPollIdleMillis = 50
	// uringSpinReap bounds how long the send loop spins on the mmapped
	// completion queue before falling back to a blocking enter. A hop
	// envelope's write completes within tens of microseconds once the
	// SQPOLL thread picks it up, so a successful spin makes the whole
	// message cost zero syscalls.
	uringSpinReap = 200 * time.Microsecond
)

// uringSQPollMinCPUs is the core count below which SQPOLL is not worth
// a dedicated busy-polling kernel thread per link. A variable, not a
// const, so tests can force the SQPOLL path on small machines.
var uringSQPollMinCPUs = 4

// uringSend is one queued message: the frame header plus payload parts.
// bufIdx[i] is the registered-buffer index carrying parts[i], or -1 when
// the part goes out as a plain send.
type uringSend struct {
	hdr    [4]byte
	parts  [][]byte
	bufIdx []int
	total  int
}

type uringQP struct {
	conn net.Conn
	fd   int // dup of the socket fd, owned by the queue pair

	mu      sync.Mutex
	aborted bool

	sendCQ   chan Completion
	recvCQ   chan Completion
	sendQ    chan uringSend
	recvPend chan *MemoryRegion
	done     chan struct{}
	wg       sync.WaitGroup

	closeOnce sync.Once

	sring *uring
	rring *uring

	// Registered send-buffer table: base pointer and length per
	// IORING_REGISTER_BUFFERS index on sring. Written once by
	// RegisterBuffers before any traffic, read by PostSend.
	regMu     sync.RWMutex
	regBase   []uintptr
	regLen    []int
	sendsSeen int64 // atomic: sends posted (guards late registration)
	maxMsg    int
	staging   []byte // registered READ_FIXED staging, index 0 on rring

	syscalls int64    // atomic: io_uring_enter calls
	submits  int64    // atomic: enters that submitted ≥1 SQE
	cqeBatch [8]int64 // atomic: completions reaped per enter, bucketed
}

// NewUring wraps an established socket connection in an io_uring queue
// pair. maxMsg bounds a single message and sizes the registered receive
// staging buffer. The connection's fd is duped so the queue pair can
// shut it down independently of the net.Conn's lifecycle.
func NewUring(conn net.Conn, maxMsg int) (QueuePair, error) {
	if maxMsg <= 0 {
		return nil, fmt.Errorf("rdma: uring: non-positive max message size")
	}
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return nil, fmt.Errorf("rdma: uring: connection exposes no raw fd")
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("rdma: uring: raw conn: %w", err)
	}
	dupFD := -1
	var dupErr error
	if err := raw.Control(func(fd uintptr) {
		dupFD, dupErr = syscall.Dup(int(fd))
	}); err != nil {
		return nil, fmt.Errorf("rdma: uring: control: %w", err)
	}
	if dupErr != nil {
		return nil, fmt.Errorf("rdma: uring: dup: %w", dupErr)
	}
	syscall.CloseOnExec(dupFD)

	// Size the kernel socket buffers to a whole frame (the kernel clamps
	// to net.core.{w,r}mem_max): fixed-buffer writes of hop envelopes
	// then rarely return short and speculative reads pull whole frames,
	// which is what keeps submissions at one enter per batch instead of
	// one per socket-buffer-sized slice. Best effort — a refusal just
	// means more resubmit rounds.
	bufBytes := 4 + maxMsg + uringStagingSlack
	syscall.SetsockoptInt(dupFD, syscall.SOL_SOCKET, syscall.SO_SNDBUF, bufBytes)
	syscall.SetsockoptInt(dupFD, syscall.SOL_SOCKET, syscall.SO_RCVBUF, bufBytes)

	qp := &uringQP{
		conn:     conn,
		fd:       dupFD,
		sendCQ:   make(chan Completion, 64),
		recvCQ:   make(chan Completion, 64),
		sendQ:    make(chan uringSend, 64),
		recvPend: make(chan *MemoryRegion, 64),
		done:     make(chan struct{}),
		maxMsg:   maxMsg,
	}
	// With CPU headroom the send ring runs a kernel submission-polling
	// thread (IORING_SETUP_SQPOLL): published chains are consumed and
	// executed with no io_uring_enter at all while the thread is awake,
	// and the send loop reaps completions by spinning on the shared CQ —
	// the zero-syscall fast path. The gate matters: every data link owns
	// a ring, so a busy-polling kernel thread per link on a one- or
	// two-core box competes with the application for the CPU and makes
	// everything slower. Kernels or sandboxes that refuse SQPOLL fall
	// back to the plain ring, where one enter both submits and waits for
	// a whole linked chain.
	if runtime.NumCPU() >= uringSQPollMinCPUs {
		qp.sring, err = setupUringPoll(uringSendEntries, uringSQPollIdleMillis)
	} else {
		err = syscall.ENOSYS
	}
	if err != nil {
		qp.sring, err = setupUring(uringSendEntries)
	}
	if err != nil {
		syscall.Close(dupFD)
		return nil, fmt.Errorf("rdma: uring: send ring: %w", err)
	}
	qp.rring, err = setupUring(uringRecvEntries)
	if err != nil {
		qp.sring.close()
		syscall.Close(dupFD)
		return nil, fmt.Errorf("rdma: uring: recv ring: %w", err)
	}
	qp.staging = make([]byte, 2*(4+maxMsg)+uringStagingSlack)
	if err := qp.rring.registerBuffers([]uringIovec{
		{base: unsafe.Pointer(&qp.staging[0]), len: uintptr(len(qp.staging))},
	}); err != nil {
		qp.rring.close()
		qp.sring.close()
		syscall.Close(dupFD)
		return nil, fmt.Errorf("rdma: uring: register staging: %w", err)
	}
	qp.wg.Add(2)
	go qp.sendLoop()
	go qp.recvLoop()
	return qp, nil
}

// RegisterBuffers implements BufferRegistrar: the regions are pinned
// with IORING_REGISTER_BUFFERS on the send ring, and any later PostSend
// from one of them goes out as a WRITE_FIXED SQE with no copy.
// Registration is once-only and must happen before the first send (the
// Messenger registers its pool at construction).
func (qp *uringQP) RegisterBuffers(regions []*MemoryRegion) error {
	qp.mu.Lock()
	if qp.aborted {
		qp.mu.Unlock()
		return ErrClosed
	}
	qp.mu.Unlock()
	if atomic.LoadInt64(&qp.sendsSeen) > 0 {
		return fmt.Errorf("rdma: uring: RegisterBuffers after traffic started")
	}
	qp.regMu.Lock()
	defer qp.regMu.Unlock()
	if qp.regBase != nil {
		return fmt.Errorf("rdma: uring: buffers already registered")
	}
	iovs := make([]uringIovec, 0, len(regions))
	base := make([]uintptr, 0, len(regions))
	lens := make([]int, 0, len(regions))
	for _, mr := range regions {
		b := mr.Bytes()
		if len(b) == 0 {
			return fmt.Errorf("rdma: uring: cannot register empty region")
		}
		iovs = append(iovs, uringIovec{base: unsafe.Pointer(&b[0]), len: uintptr(len(b))})
		base = append(base, uintptr(unsafe.Pointer(&b[0])))
		lens = append(lens, len(b))
	}
	if err := qp.sring.registerBuffers(iovs); err != nil {
		return err
	}
	qp.regBase, qp.regLen = base, lens
	return nil
}

// regIndex returns the registered-buffer index whose pinned range holds
// buf, or -1.
func (qp *uringQP) regIndex(buf []byte) int {
	if len(buf) == 0 {
		return -1
	}
	qp.regMu.RLock()
	defer qp.regMu.RUnlock()
	p := uintptr(unsafe.Pointer(&buf[0]))
	for i, b := range qp.regBase {
		if p >= b && p+uintptr(len(buf)) <= b+uintptr(qp.regLen[i]) {
			return i
		}
	}
	return -1
}

func (qp *uringQP) PostSend(mr *MemoryRegion, n int) error {
	if !mr.registered {
		return ErrNotRegistered
	}
	if n > len(mr.buf) {
		return ErrTooLarge
	}
	qp.mu.Lock()
	if qp.aborted {
		qp.mu.Unlock()
		return ErrClosed
	}
	qp.mu.Unlock()
	atomic.AddInt64(&qp.sendsSeen, 1)
	s := uringSend{total: n}
	binary.BigEndian.PutUint32(s.hdr[:], uint32(n))
	if n > 0 {
		if idx := qp.regIndex(mr.buf); idx >= 0 {
			// Registered region: the caller holds it until the send
			// completion (the Messenger contract), so the kernel reads
			// straight from the pinned buffer — no copy.
			s.parts = [][]byte{mr.buf[:n]}
			s.bufIdx = []int{idx}
		} else {
			data := make([]byte, n)
			copy(data, mr.buf[:n])
			s.parts = [][]byte{data}
			s.bufIdx = []int{-1}
		}
	}
	select {
	case qp.sendQ <- s:
		return nil
	case <-qp.done:
		return ErrClosed
	}
}

// PostSendVec implements VectoredSender: header and parts become one
// linked SQE chain, submitted (with anything else queued) in a single
// io_uring_enter — the uring analogue of tcpQP's gather write, same
// zero-assembly-copy contract (parts stay untouched until completion).
// A chain longer than the SQ splits into sequential submissions, still
// copy-free.
func (qp *uringQP) PostSendVec(bufs net.Buffers) error {
	qp.mu.Lock()
	if qp.aborted {
		qp.mu.Unlock()
		return ErrClosed
	}
	qp.mu.Unlock()
	atomic.AddInt64(&qp.sendsSeen, 1)
	s := uringSend{}
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		s.parts = append(s.parts, b)
		s.bufIdx = append(s.bufIdx, qp.regIndex(b))
		s.total += len(b)
	}
	binary.BigEndian.PutUint32(s.hdr[:], uint32(s.total))
	select {
	case qp.sendQ <- s:
		return nil
	case <-qp.done:
		return ErrClosed
	}
}

func (qp *uringQP) PostRecv(mr *MemoryRegion) error {
	if !mr.registered {
		return ErrNotRegistered
	}
	qp.mu.Lock()
	if qp.aborted {
		qp.mu.Unlock()
		return ErrClosed
	}
	qp.mu.Unlock()
	select {
	case qp.recvPend <- mr:
		return nil
	default:
		return ErrQueueFull
	}
}

func (qp *uringQP) SendCompletions() <-chan Completion { return qp.sendCQ }
func (qp *uringQP) RecvCompletions() <-chan Completion { return qp.recvCQ }
func (qp *uringQP) Done() <-chan struct{}              { return qp.done }

// WireCounters implements WireStatter.
func (qp *uringQP) WireCounters() WireCounters {
	var c WireCounters
	c.Syscalls = atomic.LoadInt64(&qp.syscalls)
	c.Submits = atomic.LoadInt64(&qp.submits)
	for i := range c.CqeBatch {
		c.CqeBatch[i] = atomic.LoadInt64(&qp.cqeBatch[i])
	}
	c.SQPoll = qp.sring.sqpoll
	return c
}

// abort tears the wire down without waiting for the loops — callable
// from inside a loop. shutdown(2) on the duped fd completes any
// in-flight io_uring reads (EOF) and writes (EPIPE), unblocking a
// thread parked in submit-and-wait.
func (qp *uringQP) abort() {
	qp.mu.Lock()
	if qp.aborted {
		qp.mu.Unlock()
		return
	}
	qp.aborted = true
	qp.mu.Unlock()
	close(qp.done)
	syscall.Shutdown(qp.fd, syscall.SHUT_RDWR)
	qp.conn.Close()
}

func (qp *uringQP) Close() error {
	qp.abort()
	qp.closeOnce.Do(func() {
		qp.wg.Wait()
		close(qp.recvCQ)
		qp.sring.close()
		qp.rring.close()
		syscall.Close(qp.fd)
	})
	return nil
}

// enterCounted wraps enter with the syscall instrumentation.
func (qp *uringQP) enterCounted(u *uring, toSubmit, minComplete, flags uint32) (int, error) {
	atomic.AddInt64(&qp.syscalls, 1)
	return u.enter(toSubmit, minComplete, flags)
}

// reapCounted wraps reap with the CQE-batch histogram.
func (qp *uringQP) reapCounted(u *uring, out []uringCQE) int {
	n := u.reap(out)
	if n > 0 {
		atomic.AddInt64(&qp.cqeBatch[cqeBucket(n)], 1)
	}
	return n
}

// ---------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------

// sendSeg is one SQE's worth of a batch: a header or payload slice, with
// the owning message index so completions can be delivered when a
// message's last segment finishes.
type sendSeg struct {
	buf    []byte
	bufIdx int // registered index for WRITE_FIXED, -1 for plain send
	msg    int
	last   bool // final segment of its message
}

func (qp *uringQP) sendLoop() {
	defer qp.wg.Done()
	// Pin: the submit side of the data loop stays on one core; the
	// blocking submit-and-wait parks this thread in the kernel rather
	// than round-tripping through the netpoller.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	batch := make([]uringSend, 0, uringMaxBatchMsgs)
	for {
		select {
		case <-qp.done:
			return
		case s := <-qp.sendQ:
			batch = append(batch[:0], s)
			// Fold in whatever else is already queued: the whole batch
			// becomes one linked chain, one enter.
		drain:
			for len(batch) < uringMaxBatchMsgs {
				select {
				case s2 := <-qp.sendQ:
					batch = append(batch, s2)
				default:
					break drain
				}
			}
			if err := qp.writeBatch(batch); err != nil {
				// Wire failure: every queued message fails and the pair
				// tears down — never leave the peer mid-frame.
				qp.abort()
				return
			}
		}
	}
}

// writeBatch turns the queued messages into one linked SQE chain
// (header, then payload parts, per message), submits with a single
// blocking io_uring_enter, and resolves short writes by resubmitting
// from the shorted segment (a broken link cancels everything after it,
// so byte order on the stream is preserved). Completions are delivered
// per message as its last segment finishes. Returns a non-nil error only
// on a wire failure, after failing the affected completions.
func (qp *uringQP) writeBatch(batch []uringSend) error {
	segs := make([]sendSeg, 0, len(batch)*2)
	for i := range batch {
		s := &batch[i]
		segs = append(segs, sendSeg{buf: s.hdr[:], bufIdx: -1, msg: i, last: len(s.parts) == 0})
		for j, p := range s.parts {
			segs = append(segs, sendSeg{buf: p, bufIdx: s.bufIdx[j], msg: i, last: j == len(s.parts)-1})
		}
	}
	results := make([]uringCQE, qp.sring.sqEntries)
	next := 0
	for next < len(segs) {
		chunk := len(segs) - next
		if chunk > int(qp.sring.sqEntries) {
			chunk = int(qp.sring.sqEntries)
		}
		for k := 0; k < chunk; k++ {
			seg := &segs[next+k]
			e := uringSQE{
				fd:       int32(qp.fd),
				addr:     uint64(uintptr(unsafe.Pointer(&seg.buf[0]))),
				len:      uint32(len(seg.buf)),
				userData: uint64(k),
			}
			if seg.bufIdx >= 0 {
				e.opcode = uringOpWriteFixed
				e.bufIndex = uint16(seg.bufIdx)
			} else {
				e.opcode = uringOpSend
				e.opFlags = msgWaitall
				if k < chunk-1 {
					// Cork everything but the chain's tail: without this
					// the 4-byte frame header ships as its own TCP segment
					// (Nagle is off on these links) and the peer pays a
					// whole syscall to read 4 bytes. The next linked write
					// flushes the corked bytes along with its own.
					e.opFlags |= msgMore
				}
			}
			if k < chunk-1 {
				e.flags = uringSQEIOLink
			}
			if !qp.sring.stage(&e, uint32(k)) {
				return qp.failFrom(batch, segs, next, fmt.Errorf("rdma: uring: submission queue overflow"))
			}
		}
		// Publish the whole chain with one tail store; under SQPOLL the
		// kernel thread must never observe a half-staged link chain.
		qp.sring.publish(uint32(chunk))
		atomic.AddInt64(&qp.submits, 1)
		if err := qp.submitAndReap(chunk, results[:chunk]); err != nil {
			return qp.failFrom(batch, segs, next, err)
		}
		// Walk the chunk in submission order: find the first segment
		// that failed or wrote short; everything before it is done.
		advanced := chunk
		var hardErr error
		for k := 0; k < chunk; k++ {
			res := results[k].res
			seg := &segs[next+k]
			if res < 0 {
				errno := syscall.Errno(-res)
				if errno == syscall.ECANCELED {
					// Link broken upstream; resubmitted next round.
					advanced = k
					break
				}
				hardErr = errno
				advanced = k
				break
			}
			if int(res) < len(seg.buf) {
				// Short write: the stream took res bytes of this
				// segment; resume from the remainder.
				seg.buf = seg.buf[res:]
				advanced = k
				break
			}
		}
		if hardErr != nil {
			return qp.failFrom(batch, segs, next+advanced, hardErr)
		}
		// Deliver completions for messages fully written.
		for k := 0; k < advanced; k++ {
			if segs[next+k].last {
				qp.sendCQ <- Completion{Bytes: batch[segs[next+k].msg].total}
			}
		}
		next += advanced
	}
	return nil
}

// submitAndReap collects exactly n CQEs for the n published SQEs into
// results, ordered by userData (= position in the chunk).
//
// With SQPOLL the kernel thread picks the chain up from the shared ring
// on its own; the only syscall is a wakeup enter when the thread has
// gone to sleep, and completions are reaped by spinning briefly on the
// mmapped CQ — the common case is zero kernel crossings end to end.
// Without SQPOLL one enter both submits and waits; EINTR restarts the
// wait without resubmitting.
func (qp *uringQP) submitAndReap(n int, results []uringCQE) error {
	got := 0
	scratch := make([]uringCQE, n)
	collect := func(k int) {
		for i := 0; i < k; i++ {
			idx := int(scratch[i].userData)
			if idx >= 0 && idx < n {
				results[idx] = scratch[i]
			}
			got++
		}
	}
	toSubmit := uint32(n)
	if qp.sring.sqpoll {
		toSubmit = 0
		if qp.sring.needWakeup() {
			if _, err := qp.enterCounted(qp.sring, 0, 0, uringEnterSQWakeup); err != nil && err != syscall.EINTR {
				return fmt.Errorf("rdma: uring: sq wakeup: %w", err)
			}
		}
		deadline := time.Now().Add(uringSpinReap)
		for got < n {
			if k := qp.reapCounted(qp.sring, scratch); k > 0 {
				collect(k)
				continue
			}
			if time.Now().After(deadline) {
				break // slow path below: block in the kernel instead
			}
			runtime.Gosched()
		}
	}
	for got < n {
		_, err := qp.enterCounted(qp.sring, toSubmit, uint32(n-got), uringEnterGetevents)
		toSubmit = 0
		if err != nil && err != syscall.EINTR {
			return fmt.Errorf("rdma: uring: enter: %w", err)
		}
		collect(qp.reapCounted(qp.sring, scratch))
	}
	return nil
}

// failFrom fails the completion of the message owning segs[at] and of
// every later message in the batch, then returns err (messages fully
// written before the failure already got their success completions).
func (qp *uringQP) failFrom(batch []uringSend, segs []sendSeg, at int, err error) error {
	failed := -1
	for k := at; k < len(segs); k++ {
		if segs[k].msg != failed {
			failed = segs[k].msg
			select {
			case qp.sendCQ <- Completion{Err: err}:
			default:
			}
		}
	}
	return err
}

// ---------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------

func (qp *uringQP) recvLoop() {
	defer qp.wg.Done()
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	var (
		rpos, wpos int
		skip       int // bytes of an oversized frame still to discard
		results    [1]uringCQE
	)
	fail := func(err error) {
		select {
		case mr := <-qp.recvPend:
			_ = mr
			select {
			case qp.recvCQ <- Completion{Err: err}:
			default:
			}
		default:
		}
	}
	for {
		// Deliver every complete frame already in staging: back-to-back
		// hop envelopes landed by one speculative read each cost zero
		// further syscalls here.
		for {
			if skip > 0 {
				n := wpos - rpos
				if n > skip {
					n = skip
				}
				rpos += n
				skip -= n
				if skip > 0 {
					break
				}
			}
			if wpos-rpos < 4 {
				break
			}
			n := int(binary.BigEndian.Uint32(qp.staging[rpos : rpos+4]))
			if 4+n > len(qp.staging) {
				// Frame can never fit the staging buffer: report and
				// discard its payload as it streams in.
				select {
				case qp.recvCQ <- Completion{Err: ErrTooLarge}:
				default:
				}
				rpos += 4
				skip = n
				continue
			}
			if wpos-rpos < 4+n {
				break
			}
			var mr *MemoryRegion
			select {
			case mr = <-qp.recvPend:
			case <-qp.done:
				return
			}
			if n > len(mr.buf) {
				qp.recvCQ <- Completion{Err: ErrTooLarge}
				rpos += 4 + n
				continue
			}
			copy(mr.buf[:n], qp.staging[rpos+4:rpos+4+n])
			qp.recvCQ <- Completion{Bytes: n}
			rpos += 4 + n
		}
		// Compact the partial tail to the front and read more.
		if rpos > 0 {
			copy(qp.staging, qp.staging[rpos:wpos])
			wpos -= rpos
			rpos = 0
		}
		e := uringSQE{
			opcode:   uringOpReadFixed,
			fd:       int32(qp.fd),
			addr:     uint64(uintptr(unsafe.Pointer(&qp.staging[wpos]))),
			len:      uint32(len(qp.staging) - wpos),
			userData: 1,
		}
		if !qp.rring.push(&e) {
			fail(fmt.Errorf("rdma: uring: recv queue overflow"))
			return
		}
		atomic.AddInt64(&qp.submits, 1)
		toSubmit := uint32(1)
		for {
			_, err := qp.enterCounted(qp.rring, toSubmit, 1, uringEnterGetevents)
			toSubmit = 0
			if err != nil && err != syscall.EINTR {
				fail(fmt.Errorf("rdma: uring: recv enter: %w", err))
				return
			}
			if qp.reapCounted(qp.rring, results[:]) > 0 {
				break
			}
		}
		res := results[0].res
		switch {
		case res > 0:
			wpos += int(res)
		case res == 0:
			fail(io.EOF)
			return
		default:
			errno := syscall.Errno(-res)
			if errno == syscall.EINTR || errno == syscall.EAGAIN {
				continue
			}
			fail(errno)
			return
		}
	}
}

// ---------------------------------------------------------------------
// Kernel probe
// ---------------------------------------------------------------------

// probeUring answers "can the uring backend run here?" by doing exactly
// what the backend does: ring setup, staging registration, a
// registered-buffer PostSend and a framed PostRecv round trip over a
// real loopback TCP connection. seccomp filters that deny the io_uring
// syscalls, kernels without fixed-buffer socket I/O, and locked-down
// memlock limits all fail here and route traffic to the tcp backend.
func probeUring() (bool, string) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return false, fmt.Sprintf("probe listen: %v", err)
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return false, fmt.Sprintf("probe dial: %v", err)
	}
	defer dial.Close()
	acc := <-ch
	if acc.err != nil {
		return false, fmt.Sprintf("probe accept: %v", acc.err)
	}
	defer acc.conn.Close()

	const maxMsg = 4096
	qp, err := NewUring(dial, maxMsg)
	if err != nil {
		return false, fmt.Sprintf("uring setup: %v", err)
	}
	defer qp.Close()
	peer := NewTCP(acc.conn)
	defer peer.Close()

	var dev Device
	sendMR := dev.RegisterMemory(maxMsg)
	recvMR := dev.RegisterMemory(maxMsg)
	peerSend := dev.RegisterMemory(maxMsg)
	peerRecv := dev.RegisterMemory(maxMsg)
	if err := qp.(*uringQP).RegisterBuffers([]*MemoryRegion{sendMR}); err != nil {
		return false, fmt.Sprintf("register buffers: %v", err)
	}
	if err := qp.PostRecv(recvMR); err != nil {
		return false, fmt.Sprintf("post recv: %v", err)
	}
	if err := peer.PostRecv(peerRecv); err != nil {
		return false, fmt.Sprintf("peer post recv: %v", err)
	}

	// uring → tcp: a registered-buffer fixed write.
	msg := []byte("data-cyclotron uring probe")
	copy(sendMR.Bytes(), msg)
	if err := qp.PostSend(sendMR, len(msg)); err != nil {
		return false, fmt.Sprintf("post send: %v", err)
	}
	if c := <-qp.SendCompletions(); c.Err != nil {
		return false, fmt.Sprintf("send completion: %v", c.Err)
	}
	if c := <-peer.RecvCompletions(); c.Err != nil || c.Bytes != len(msg) ||
		string(peerRecv.Bytes()[:c.Bytes]) != string(msg) {
		return false, "fixed-buffer send did not round-trip"
	}

	// tcp → uring: a framed read through the registered staging buffer.
	copy(peerSend.Bytes(), msg)
	if err := peer.PostSend(peerSend, len(msg)); err != nil {
		return false, fmt.Sprintf("peer post send: %v", err)
	}
	if c := <-peer.SendCompletions(); c.Err != nil {
		return false, fmt.Sprintf("peer send completion: %v", c.Err)
	}
	if c := <-qp.RecvCompletions(); c.Err != nil || c.Bytes != len(msg) ||
		string(recvMR.Bytes()[:c.Bytes]) != string(msg) {
		return false, "fixed-buffer recv did not round-trip"
	}
	return true, ""
}
