package rdma

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func tcpConnPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return cli, <-accepted
}

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendTCP, true},
		{"tcp", BackendTCP, true},
		{"auto", BackendAuto, true},
		{"uring", BackendUring, true},
		{"verbs", BackendTCP, false},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParseBackend(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, b := range []Backend{BackendTCP, BackendAuto, BackendUring} {
		if b.String() == "" {
			t.Fatal("empty backend name")
		}
	}
}

// Auto on an unsupported kernel must fall back to tcp and say why.
func TestResolveBackendAutoFallback(t *testing.T) {
	restore := ForceUringUnsupported("test kernel says no")
	defer restore()
	b, reason, err := ResolveBackend("auto")
	if err != nil {
		t.Fatal(err)
	}
	if b != BackendTCP {
		t.Fatalf("backend = %v, want tcp fallback", b)
	}
	if reason != "test kernel says no" {
		t.Fatalf("fallback reason = %q", reason)
	}
}

// Explicit uring on an unsupported kernel is a clear error, not a panic
// and not a silent downgrade.
func TestResolveBackendExplicitUringUnsupported(t *testing.T) {
	restore := ForceUringUnsupported("test kernel says no")
	defer restore()
	_, _, err := ResolveBackend("uring")
	if err == nil {
		t.Fatal("want error for explicit uring on unsupported kernel")
	}
	if !strings.Contains(err.Error(), "test kernel says no") {
		t.Fatalf("error %q does not carry the probe reason", err)
	}
}

func TestNewConnQPAutoFallsBackToTCP(t *testing.T) {
	restore := ForceUringUnsupported("forced off")
	defer restore()
	cli, srv := tcpConnPair(t)
	qp, reason, err := NewConnQP(cli, BackendAuto, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer qp.Close()
	if reason != "forced off" {
		t.Fatalf("fallback reason = %q", reason)
	}
	if _, ok := qp.(*tcpQP); !ok {
		t.Fatalf("qp = %T, want *tcpQP", qp)
	}
	b := NewTCP(srv)
	defer b.Close()
	pairExchange(t, qp, b)
}

// ---------------------------------------------------------------------
// tcpQP PostSendVec failure semantics (regression)
// ---------------------------------------------------------------------

// limitedConn fails every write after the first limit bytes — the shape
// of a connection that dies mid-gather-write.
type limitedConn struct {
	net.Conn
	limit   int
	written int
}

var errConnDied = errors.New("connection died mid-write")

func (c *limitedConn) Write(p []byte) (int, error) {
	if c.written >= c.limit {
		return 0, errConnDied
	}
	n := len(p)
	if c.written+n > c.limit {
		n = c.limit - c.written
		c.written = c.limit
		c.Conn.Write(p[:n])
		return n, errConnDied
	}
	c.written += n
	return c.Conn.Write(p)
}

// A short/failed vectored write must fail the pending send completion
// with the cause AND tear the queue pair down: the length-prefixed
// stream has no way to resynchronize a half-written frame, so keeping
// the pair alive would corrupt every later message.
func TestTCPPostSendVecWriteFailureClosesQP(t *testing.T) {
	cli, srv := tcpConnPair(t)
	defer srv.Close()
	// Enough budget for the 4-byte header and a bit of payload, then die.
	qp := NewTCP(&limitedConn{Conn: cli, limit: 10}).(*tcpQP)
	payload := bytes.Repeat([]byte("x"), 64)
	if err := qp.PostSendVec(net.Buffers{payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-qp.SendCompletions():
		if c.Err == nil {
			t.Fatal("send completion must carry the write error")
		}
		if !errors.Is(c.Err, errConnDied) {
			t.Fatalf("completion err = %v, want the connection error", c.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no send completion after write failure")
	}
	select {
	case <-qp.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("queue pair not torn down after write failure")
	}
	var d Device
	mr := d.RegisterMemory(8)
	if err := qp.PostSend(mr, 1); err != ErrClosed {
		t.Fatalf("PostSend after wire failure = %v, want ErrClosed", err)
	}
	if err := qp.Close(); err == nil {
		// Close surfaces the conn teardown result; either way it must
		// not hang or double-close.
		_ = err
	}
}

// Same teardown contract for the plain PostSend path.
func TestTCPPostSendWriteFailureClosesQP(t *testing.T) {
	cli, srv := tcpConnPair(t)
	defer srv.Close()
	qp := NewTCP(&limitedConn{Conn: cli, limit: 2}).(*tcpQP)
	var d Device
	mr := d.RegisterMemory(64)
	if err := qp.PostSend(mr, 64); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-qp.SendCompletions():
		if c.Err == nil {
			t.Fatal("send completion must carry the write error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no send completion after write failure")
	}
	select {
	case <-qp.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("queue pair not torn down after write failure")
	}
	qp.Close()
}

func TestTCPWireCounters(t *testing.T) {
	cli, srv := tcpConnPair(t)
	a := NewTCP(cli)
	b := NewTCP(srv)
	defer a.Close()
	defer b.Close()
	pairExchange(t, a, b)
	ca := a.(WireStatter).WireCounters()
	cb := b.(WireStatter).WireCounters()
	if ca.Submits != 1 || ca.Syscalls < 1 {
		t.Fatalf("sender counters = %+v", ca)
	}
	// Receiver pays two reads per message (header + payload).
	if cb.Syscalls < 2 {
		t.Fatalf("receiver counters = %+v", cb)
	}
}

// ---------------------------------------------------------------------
// uring backend (skipped when the kernel lacks support)
// ---------------------------------------------------------------------

func uringPair(t *testing.T, maxMsg int) (QueuePair, QueuePair) {
	t.Helper()
	if ok, reason := UringSupported(); !ok {
		t.Skipf("io_uring unavailable: %s", reason)
	}
	cli, srv := tcpConnPair(t)
	a, err := NewUring(cli, maxMsg)
	if err != nil {
		cli.Close()
		srv.Close()
		t.Fatal(err)
	}
	b, err := NewUring(srv, maxMsg)
	if err != nil {
		a.Close()
		srv.Close()
		t.Fatal(err)
	}
	return a, b
}

func TestUringExchange(t *testing.T) {
	a, b := uringPair(t, 1<<16)
	defer a.Close()
	defer b.Close()
	pairExchange(t, a, b)
}

// One end uring, one end tcp: the frame format is shared, so mixed
// links (per-connection fallback on one side only) keep working.
func TestUringTCPInterop(t *testing.T) {
	if ok, reason := UringSupported(); !ok {
		t.Skipf("io_uring unavailable: %s", reason)
	}
	cli, srv := tcpConnPair(t)
	a, err := NewUring(cli, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	b := NewTCP(srv)
	defer a.Close()
	defer b.Close()
	pairExchange(t, a, b)
	pairExchange(t, b, a)
}

func TestUringLargeTransfer(t *testing.T) {
	const size = 4 << 20
	a, b := uringPair(t, size)
	defer a.Close()
	defer b.Close()
	var d Device
	send := d.RegisterMemory(size)
	recv := d.RegisterMemory(size)
	for i := range send.Bytes() {
		send.Bytes()[i] = byte(i * 31)
	}
	if err := b.PostRecv(recv); err != nil {
		t.Fatal(err)
	}
	if err := a.PostSend(send, size); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-b.RecvCompletions():
		if c.Err != nil || c.Bytes != size {
			t.Fatalf("recv = %+v", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("large recv timeout")
	}
	if !bytes.Equal(send.Bytes(), recv.Bytes()) {
		t.Fatal("payload corrupted")
	}
}

// Registered-buffer fixed writes: the Messenger pool path end to end,
// many messages, byte-for-byte integrity, and live wire counters.
func TestUringMessengerRoundTrip(t *testing.T) {
	const maxMsg = 1 << 16
	a, b := uringPair(t, maxMsg)
	ma, err := NewMessenger(a, maxMsg)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMessenger(b, maxMsg)
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	defer mb.Close()

	done := make(chan error, 1)
	const n = 64
	go func() {
		for i := 0; i < n; i++ {
			msg, err := mb.Recv()
			if err != nil {
				done <- err
				return
			}
			if len(msg) != 1000 || msg[0] != byte(i) {
				done <- errors.New("payload mismatch")
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		i := i
		if err := ma.SendEncoded(1000, func(dst []byte) int {
			for j := range dst {
				dst[j] = byte(i)
			}
			return 1000
		}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("round trip timeout")
	}
	c, ok := ma.WireCounters()
	if !ok {
		t.Fatal("uring messenger must expose wire counters")
	}
	if c.Syscalls == 0 || c.Submits == 0 {
		t.Fatalf("sender wire counters empty: %+v", c)
	}
}

// SendVectored over uring: a batch envelope assembled from many parts
// must arrive as one contiguous message (linked-SQE-chain gather).
func TestUringVectoredSend(t *testing.T) {
	const maxMsg = 1 << 18
	a, b := uringPair(t, maxMsg)
	ma, err := NewMessenger(a, maxMsg)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMessenger(b, maxMsg)
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	defer mb.Close()

	// 80 parts exceeds the per-chain fragment bound the hop scheduler
	// uses and exercises chunked chain submission.
	var parts [][]byte
	var want []byte
	for i := 0; i < 80; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 257)
		parts = append(parts, p)
		want = append(want, p...)
	}
	done := make(chan error, 1)
	var got []byte
	go func() {
		msg, err := mb.Recv()
		got = msg
		done <- err
	}()
	if err := ma.SendVectored(parts); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("vectored recv timeout")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("vectored payload mismatch: got %d bytes, want %d", len(got), len(want))
	}
}

// Heartbeats multiplexed onto a data link use TrySendEncoded; on the
// uring backend it must keep returning (success or ErrQueueFull) without
// ever blocking behind bulk traffic.
func TestUringTrySendEncoded(t *testing.T) {
	const maxMsg = 1 << 12
	a, b := uringPair(t, maxMsg)
	ma, err := NewMessenger(a, maxMsg)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMessenger(b, maxMsg)
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	defer mb.Close()
	recvd := make(chan struct{})
	go func() {
		defer close(recvd)
		for {
			if _, err := mb.Recv(); err != nil {
				return
			}
		}
	}()
	sent := 0
	for i := 0; i < 50; i++ {
		err := ma.TrySendEncoded(16, func(dst []byte) int {
			return copy(dst, "beat")
		})
		switch err {
		case nil:
			sent++
		case ErrQueueFull:
		default:
			t.Fatal(err)
		}
	}
	if sent == 0 {
		t.Fatal("no heartbeat ever got through")
	}
	ma.Close()
	mb.Close()
	<-recvd
}

func TestUringCloseUnblocks(t *testing.T) {
	a, b := uringPair(t, 1<<12)
	defer b.Close()
	var d Device
	mr := d.RegisterMemory(64)
	if err := a.PostRecv(mr); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		a.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on an idle pinned receive loop")
	}
}
