//go:build linux

package rdma

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// The SQPOLL send path — kernel-thread submission, batch tail
// publication, spin-reaped completions — is gated on CPU headroom in
// production, so small CI boxes never exercise it. Force the gate open
// and prove the path is correct regardless of machine size: data
// integrity and completion pairing must not depend on who consumes the
// submission queue.
func TestUringSQPollRoundTrip(t *testing.T) {
	if ok, reason := UringSupported(); !ok {
		t.Skipf("io_uring unavailable: %s", reason)
	}
	old := uringSQPollMinCPUs
	uringSQPollMinCPUs = 0
	defer func() { uringSQPollMinCPUs = old }()

	const maxMsg = 1 << 18
	a, b := uringPair(t, maxMsg)
	defer a.Close()
	defer b.Close()
	if wc := a.(*uringQP).WireCounters(); !wc.SQPoll {
		// Setup fell back to the plain ring: this kernel or sandbox
		// refuses SQPOLL, so there is nothing to exercise here.
		t.Skip("kernel refused IORING_SETUP_SQPOLL")
	}

	ma, err := NewMessenger(a, maxMsg)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMessenger(b, maxMsg)
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	defer mb.Close()

	// Mixed sizes, including multi-SQE linked chains (vectored sends),
	// pushed back-to-back so the kernel thread sees full and partial
	// rings.
	const rounds = 32
	errs := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			payload := bytes.Repeat([]byte{byte(i)}, 1+(i*4093)%maxMsg/2)
			var err error
			if i%3 == 0 {
				err = ma.SendVectored([][]byte{payload[:len(payload)/2], payload[len(payload)/2:]})
			} else {
				err = ma.Send(payload)
			}
			if err != nil {
				errs <- fmt.Errorf("send %d: %w", i, err)
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < rounds; i++ {
		got, err := mb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		want := bytes.Repeat([]byte{byte(i)}, 1+(i*4093)%maxMsg/2)
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: got %d bytes, want %d, first byte %d vs %d",
				i, len(got), len(want), got[0], want[0])
		}
	}
	select {
	case err := <-errs:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sender stuck")
	}
}
