//go:build !linux

package rdma

import (
	"errors"
	"net"
)

// errNoUring is returned on platforms without io_uring. The backend
// selector turns this into a tcp fallback (auto) or a configuration
// error (explicit uring).
var errNoUring = errors.New("rdma: io_uring backend requires linux")

// NewUring is unavailable off Linux; callers go through NewConnQP,
// which falls back to the tcp provider.
func NewUring(conn net.Conn, maxMsg int) (QueuePair, error) {
	return nil, errNoUring
}

// probeUring reports that the backend can never run here.
func probeUring() (bool, string) {
	return false, errNoUring.Error()
}
