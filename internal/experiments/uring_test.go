package experiments

import (
	"testing"

	"repro/internal/rdma"
)

// TestUringSweepSmoke runs a miniature wire-backend sweep end to end:
// both backends must answer every query with identical digests, each
// run must be labeled with the backend that actually carried it (no
// silent fallback), and the syscall-layer counters must be live. On a
// kernel without io_uring the sweep must still produce the tcp
// baseline and record why the uring pass was skipped.
func TestUringSweepSmoke(t *testing.T) {
	res, err := UringSweep(40_000, 3, 3, 4096, []string{"tcp", "uring"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	tcp := res.Run("tcp")
	if tcp == nil {
		t.Fatal("sweep lost the tcp baseline")
	}
	if tcp.WireSyscalls == 0 || tcp.SyscallsPerHop <= 0 {
		t.Fatalf("tcp wire counters dead: %+v", tcp)
	}
	supported, note := rdma.UringSupported()
	uring := res.Run("uring")
	if !supported {
		if uring != nil {
			t.Fatalf("unsupported kernel but a uring run was recorded (note %q)", note)
		}
		if res.Supported || res.SupportNote == "" {
			t.Fatalf("skip not recorded: supported=%v note=%q", res.Supported, res.SupportNote)
		}
		return
	}
	if uring == nil {
		t.Fatal("io_uring supported but the sweep recorded no uring run")
	}
	if uring.Fallback != "" {
		t.Fatalf("uring run fell back: %s", uring.Fallback)
	}
	if uring.WireSyscalls == 0 || uring.WireSubmits == 0 {
		t.Fatalf("uring wire counters dead: %+v", uring)
	}
	if !res.Match || uring.ResultDigest != tcp.ResultDigest {
		t.Fatalf("backends disagree: tcp %s vs uring %s", tcp.ResultDigest, uring.ResultDigest)
	}
	if uring.SyscallsPerHop >= tcp.SyscallsPerHop {
		t.Fatalf("uring did not reduce syscalls/hop: %.2f vs tcp %.2f",
			uring.SyscallsPerHop, tcp.SyscallsPerHop)
	}
}
