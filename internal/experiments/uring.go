package experiments

// Wire-backend sweep: the measurement behind the io_uring transport.
// The hop scheduler (hop.go sweep) cut wire messages per query; this
// sweep cuts kernel crossings per wire message. It runs the same
// fragmented TPC-H workload over a real-socket ring once per backend —
// the classic write/read tcp path and the registered-buffer io_uring
// path — and records latency quantiles next to the syscall-layer
// counters (enters, submits, CQE batch fill). The figure that matters
// is syscalls per hop message: io_uring's submit-and-wait enters and
// multi-frame reaps must cover the same traffic with measurably fewer
// kernel crossings, at equal answers and no worse tail latency.

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"repro/internal/live"
	"repro/internal/rdma"
	"repro/internal/tpch"
)

// UringRun is one backend's pass over the workload.
type UringRun struct {
	Backend        string   `json:"backend"`
	Fallback       string   `json:"fallback,omitempty"` // why auto degraded (empty: it didn't)
	Queries        int      `json:"queries"`
	HopMsgs        int64    `json:"hop_msgs"`         // data wire messages sent
	HopFrags       int64    `json:"hop_frags"`        // fragments forwarded
	HopBytes       int64    `json:"hop_bytes"`        // total ring data traffic
	WireSyscalls   int64    `json:"wire_syscalls"`    // enters (uring) / read+write calls (tcp)
	WireSubmits    int64    `json:"wire_submits"`     // submission batches / gather writes
	SQPoll         bool     `json:"sqpoll"`           // send rings ran kernel submission polling
	SyscallsPerHop float64  `json:"syscalls_per_hop"` // WireSyscalls / HopMsgs — the gated figure
	CqeBatch       [8]int64 `json:"cqe_batch_hist"`   // completions per enter: 1,2,3-4,...,>64
	P50Micros      int64    `json:"p50_us"`
	P99Micros      int64    `json:"p99_us"`
	ResultDigest   string   `json:"result_digest"` // FNV over every query's rows, in firing order
}

// UringResult is the whole sweep.
type UringResult struct {
	LineitemRows int        `json:"lineitem_rows"`
	Nodes        int        `json:"nodes"`
	FragmentRows int        `json:"fragment_rows"`
	Supported    bool       `json:"uring_supported"`
	SupportNote  string     `json:"uring_note,omitempty"` // probe's reason when unsupported
	Match        bool       `json:"results_match"`        // every backend produced identical rows
	Runs         []UringRun `json:"runs"`
}

// UringSweep runs the wire-backend comparison: a TPC-H database with
// the given lineitem row count partitioned over a TCP-socket ring, the
// Q6-style selective aggregate fired queries times per backend, one
// ring per backend so counters start at zero. Backends unavailable on
// the running kernel are skipped (recorded in Supported/SupportNote),
// never silently downgraded — a run labeled "uring" really ran uring.
func UringSweep(rows, nodes, queries, fragRows int, backends []string, seed int64) (*UringResult, error) {
	db := tpch.GenDB(tpch.SFForLineitemRows(rows), seed)
	res := &UringResult{
		LineitemRows: db.Rows("lineitem"),
		Nodes:        nodes,
		FragmentRows: fragRows,
		Match:        true,
	}
	res.Supported, res.SupportNote = rdma.UringSupported()
	for _, backend := range backends {
		if backend == "uring" && !res.Supported {
			continue
		}
		run, err := uringRun(db, nodes, queries, fragRows, backend)
		if err != nil {
			return nil, fmt.Errorf("uring sweep (backend=%s): %w", backend, err)
		}
		res.Runs = append(res.Runs, run)
	}
	for i := 1; i < len(res.Runs); i++ {
		if res.Runs[i].ResultDigest != res.Runs[0].ResultDigest {
			res.Match = false
		}
	}
	return res, nil
}

func uringRun(db *tpch.DB, nodes, queries, fragRows int, backend string) (UringRun, error) {
	cfg := live.DefaultConfig()
	cfg.Transport = live.TCP
	cfg.Backend = backend
	cfg.FragmentRows = fragRows
	// The sweep measures the wire layer: disable the hot-set cache so
	// every query's pins ride the ring and every hop crosses a socket.
	cfg.CacheBytes = 0
	ring, err := live.NewRing(nodes, db.ColumnMap(), db.Schema(), cfg)
	if err != nil {
		return UringRun{}, err
	}
	defer ring.Close()

	digest := fnv.New64a()
	lat := make([]time.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		start := time.Now()
		rs, err := ring.Node(i % nodes).ExecSQL(tpch.Q6ishSQL)
		if err != nil {
			return UringRun{}, err
		}
		lat = append(lat, time.Since(start))
		if rs.NumRows() != 1 {
			return UringRun{}, fmt.Errorf("bad result: %d rows", rs.NumRows())
		}
		for _, row := range rs.Rows() {
			fmt.Fprintln(digest, row...)
		}
	}
	settleHopBytes(ring)
	hs := ring.HopStats()
	if hs.Backend != backend {
		return UringRun{}, fmt.Errorf("ring ran backend %q, asked for %q (fallback: %s)",
			hs.Backend, backend, hs.BackendFallback)
	}
	perHop := 0.0
	if hs.Msgs > 0 {
		perHop = float64(hs.WireSyscalls) / float64(hs.Msgs)
	}
	return UringRun{
		Backend:        backend,
		Fallback:       hs.BackendFallback,
		Queries:        queries,
		HopMsgs:        hs.Msgs,
		HopFrags:       hs.Frags,
		HopBytes:       hs.Bytes,
		WireSyscalls:   hs.WireSyscalls,
		WireSubmits:    hs.WireSubmits,
		SQPoll:         hs.WireSQPoll,
		SyscallsPerHop: perHop,
		CqeBatch:       hs.CqeBatch,
		P50Micros:      quantileMicros(lat, 0.50),
		P99Micros:      quantileMicros(lat, 0.99),
		ResultDigest:   fmt.Sprintf("%016x", digest.Sum64()),
	}, nil
}

// Run returns the recorded pass for backend, or nil.
func (r *UringResult) Run(backend string) *UringRun {
	for i := range r.Runs {
		if r.Runs[i].Backend == backend {
			return &r.Runs[i]
		}
	}
	return nil
}

func (r *UringResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wire backend sweep — lineitem %d rows over %d nodes, %d-row fragments\n",
		r.LineitemRows, r.Nodes, r.FragmentRows)
	if !r.Supported {
		fmt.Fprintf(&b, "  (io_uring unavailable: %s)\n", r.SupportNote)
	}
	fmt.Fprintf(&b, "%8s %10s %12s %12s %12s %14s %10s %10s %18s\n",
		"backend", "hop_msgs", "hop_bytes", "syscalls", "submits", "syscalls/hop", "p50_us", "p99_us", "digest")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%8s %10d %12d %12d %12d %14.2f %10d %10d %18s\n",
			run.Backend, run.HopMsgs, run.HopBytes, run.WireSyscalls, run.WireSubmits,
			run.SyscallsPerHop, run.P50Micros, run.P99Micros, run.ResultDigest)
	}
	if ur := r.Run("uring"); ur != nil {
		var enters int64
		for _, v := range ur.CqeBatch {
			enters += v
		}
		if enters > 0 {
			fmt.Fprintf(&b, "  uring CQE batch fill (completions per enter, buckets 1,2,3-4,...,>64): %v\n",
				ur.CqeBatch)
		}
	}
	fmt.Fprintf(&b, "  results match across backends: %v\n", r.Match)
	return b.String()
}
