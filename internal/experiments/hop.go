package experiments

// Hop-batching sweep: the live-ring measurement behind the batched hop
// transport. Fragmentation (the granularity sweep, frag.go) bought
// small flexible circulation units, but paid for them in wire messages:
// every fragment forward is one messenger send. The hop scheduler
// coalesces co-resident outbound fragments into one batch envelope per
// neighbour hop, putting the interconnect back in the few-large-
// transfers regime the paper's RDMA ring assumes — without giving up
// fragment granularity at the runtime layer. The sweep runs the same
// selective aggregate over the fragmented TPC-H ring at several
// HopBatchBytes budgets (0 = batching off, the byte-identical
// pre-batching ring, directly comparable to frag.go's runs) and records
// hop-message counts, batch fill, and query latency quantiles: the
// messages-vs-latency trade the batching claims to win.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/live"
	"repro/internal/tpch"
)

// HopRun is one HopBatchBytes setting of the sweep.
type HopRun struct {
	HopBatchBytes int      `json:"hop_batch_bytes"` // 0 = batching off
	Fragments     int      `json:"fragments"`       // fragments of lineitem.l_shipdate
	Msgs          int64    `json:"hop_msgs"`        // data wire messages sent
	Singles       int64    `json:"hop_singles"`     // one-fragment messages
	Batches       int64    `json:"hop_batches"`     // multi-fragment envelopes
	Frags         int64    `json:"hop_frags"`       // fragments forwarded
	MeanFill      float64  `json:"mean_fill"`       // Frags / Msgs
	Fill          [8]int64 `json:"fill_hist"`       // 1,2,3-4,...,33-64,>64
	HopBytes      int64    `json:"hop_bytes"`       // total ring data traffic
	MaxMsg        int64    `json:"max_msg_bytes"`   // largest data message
	ParkedTotal   int64    `json:"parked_total"`    // LOI-pacing park events
	Unparked      int64    `json:"unparked"`        // re-admissions on interest
	PoolWaits     int64    `json:"pool_waits"`      // send-region pool stalls
	Queries       int      `json:"queries"`
	P50Micros     int64    `json:"p50_us"`
	P99Micros     int64    `json:"p99_us"`
}

// HopResult is the whole sweep.
type HopResult struct {
	LineitemRows int      `json:"lineitem_rows"`
	Nodes        int      `json:"nodes"`
	FragmentRows int      `json:"fragment_rows"`
	Runs         []HopRun `json:"runs"`
}

// HopSweep runs the hop-batching sweep: a TPC-H database with the given
// lineitem row count partitioned over a live ring of nodes at a fixed
// fragment granularity, the Q6-style selective aggregate fired queries
// times per HopBatchBytes setting, one ring per setting so every run's
// counters start at zero.
func HopSweep(rows, nodes, queries, fragRows int, budgets []int, seed int64) (*HopResult, error) {
	db := tpch.GenDB(tpch.SFForLineitemRows(rows), seed)
	res := &HopResult{
		LineitemRows: db.Rows("lineitem"),
		Nodes:        nodes,
		FragmentRows: fragRows,
	}
	for _, budget := range budgets {
		run, err := hopRun(db, nodes, queries, fragRows, budget)
		if err != nil {
			return nil, fmt.Errorf("hop sweep (batch=%d): %w", budget, err)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

func hopRun(db *tpch.DB, nodes, queries, fragRows, budget int) (HopRun, error) {
	cfg := live.DefaultConfig()
	cfg.FragmentRows = fragRows
	cfg.HopBatchBytes = budget
	// The sweep measures hop transport: disable the hot-set cache so
	// every query's pins ride the ring (as the granularity sweep does —
	// budget 0 here reproduces its circulation byte for byte).
	cfg.CacheBytes = 0
	ring, err := live.NewRing(nodes, db.ColumnMap(), db.Schema(), cfg)
	if err != nil {
		return HopRun{}, err
	}
	defer ring.Close()

	lat := make([]time.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		start := time.Now()
		rs, err := ring.Node(i % nodes).ExecSQL(tpch.Q6ishSQL)
		if err != nil {
			return HopRun{}, err
		}
		if rs.NumRows() != 1 {
			return HopRun{}, fmt.Errorf("bad result: %d rows", rs.NumRows())
		}
		lat = append(lat, time.Since(start))
	}
	// Let in-flight sends settle (shared helper) so the message counters
	// reflect the work the queries caused, then snapshot the transport.
	settleHopBytes(ring)
	hs := ring.HopStats()
	frags, _ := ring.Fragments("lineitem.l_shipdate")
	fill := 0.0
	if hs.Msgs > 0 {
		fill = float64(hs.Frags) / float64(hs.Msgs)
	}
	return HopRun{
		HopBatchBytes: budget,
		Fragments:     len(frags),
		Msgs:          hs.Msgs,
		Singles:       hs.Singles,
		Batches:       hs.Batches,
		Frags:         hs.Frags,
		MeanFill:      fill,
		Fill:          hs.Fill,
		HopBytes:      hs.Bytes,
		MaxMsg:        hs.MaxMsg,
		ParkedTotal:   hs.ParkedTotal,
		Unparked:      hs.Unparked,
		PoolWaits:     hs.PoolWaits,
		Queries:       queries,
		P50Micros:     quantileMicros(lat, 0.50),
		P99Micros:     quantileMicros(lat, 0.99),
	}, nil
}

func (r *HopResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hop batching sweep — lineitem %d rows over %d nodes, %d-row fragments\n",
		r.LineitemRows, r.Nodes, r.FragmentRows)
	fmt.Fprintf(&b, "%12s %10s %10s %10s %8s %12s %11s %10s %10s\n",
		"batch_bytes", "hop_msgs", "hop_frags", "fill", "parked", "hop_B", "max_msg_B", "p50_us", "p99_us")
	for _, run := range r.Runs {
		name := fmt.Sprint(run.HopBatchBytes)
		if run.HopBatchBytes == 0 {
			name = "off"
		}
		fmt.Fprintf(&b, "%12s %10d %10d %10.2f %8d %12d %11d %10d %10d\n",
			name, run.Msgs, run.Frags, run.MeanFill, run.ParkedTotal,
			run.HopBytes, run.MaxMsg, run.P50Micros, run.P99Micros)
	}
	return b.String()
}
