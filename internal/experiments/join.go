package experiments

// Grow-the-ring sweep: the end-to-end measurement behind runtime ring
// growth. A replicated ring is served over the network query service,
// concurrent clients hammer it through dcclient, and a new node joins
// mid-run — admission handshake, link splice-in, and state transfer all
// while answers keep flowing. The sweep records what the join protocol
// promises: zero incorrect answers (every result fingerprints
// identically to the pre-join reference), the newcomer ends up owning
// its fair share and serving queries itself, and the admission phase is
// a vanishing fraction of the total join (the transfer dominates).
// Latency quantiles are split at the join-completion instant so a
// grown ring's tail can be compared against the same-size ring of the
// next run before *its* join.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dcclient"
	"repro/internal/live"
	"repro/internal/membership"
	"repro/internal/server"
	"repro/internal/tpch"
)

// JoinRun is one ring size of the grow-the-ring sweep: a ring of Nodes
// nodes serving queries while node Nodes (the newcomer) joins.
type JoinRun struct {
	Nodes    int `json:"nodes"` // pre-join ring size
	Joined   int `json:"joined"`
	Replicas int `json:"replicas"`

	OK        int64 `json:"ok"`
	Rejected  int64 `json:"rejected"`  // admission rejections (IsTemporary)
	Failed    int64 `json:"failed"`    // hard query failures
	Incorrect int64 `json:"incorrect"` // fingerprint mismatches vs reference

	Share      int   `json:"share"`    // fragments planned for the newcomer
	Migrated   int   `json:"migrated"` // fragments it actually owns
	Skipped    int   `json:"skipped"`
	SpliceMs   int64 `json:"splice_ms"`   // admission + link splice-in
	TransferMs int64 `json:"transfer_ms"` // state transfer + rebalancing
	TotalMs    int64 `json:"total_ms"`
	Converged  bool  `json:"converged"` // every fragment has a live owner
	Failovers  int64 `json:"failovers"` // death verdicts during the run (must be 0)

	NewcomerOKMs int64 `json:"newcomer_ok_ms"` // join end -> newcomer's first correct answer

	PreP50Micros  int64 `json:"pre_p50_us"` // queries started before the join completed
	PreP99Micros  int64 `json:"pre_p99_us"`
	PostP50Micros int64 `json:"post_p50_us"` // queries started on the grown ring
	PostP99Micros int64 `json:"post_p99_us"`
}

// JoinResult is the whole sweep.
type JoinResult struct {
	LineitemRows int       `json:"lineitem_rows"`
	Clients      int       `json:"clients"`
	Queries      int       `json:"queries"` // per ring size
	Runs         []JoinRun `json:"runs"`
}

// JoinSweep runs the grow-the-ring sweep: for each pre-join ring size,
// a TPC-H database with the given lineitem row count is served with one
// replica per fragment, `clients` concurrent network clients fire
// `queries` queries total, and a new node joins a third of the way
// through. Every answer is fingerprinted against the pre-join
// reference.
func JoinSweep(rows, clients, queries int, sizes []int, seed int64) (*JoinResult, error) {
	db := tpch.GenDB(tpch.SFForLineitemRows(rows), seed)
	res := &JoinResult{
		LineitemRows: db.Rows("lineitem"),
		Clients:      clients,
		Queries:      queries,
	}
	for _, nodes := range sizes {
		run, err := joinRun(db, nodes, clients, queries)
		if err != nil {
			return nil, fmt.Errorf("join sweep (%d nodes): %w", nodes, err)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// joinHeartbeat is the detector tuning the grow-the-ring sweep runs
// with. Unlike the failover sweep — an otherwise idle ring where fast
// detection is the whole point — this ring spends the entire run under
// concurrent client load moving multi-megabyte fragments, and on a
// small CI box a node mid-marshal can go genuinely silent for hundreds
// of milliseconds without being dead. The death verdict (3 s) is sized
// to out-wait those stalls: the sweep gates on Failovers == 0, so a
// false verdict here doesn't degrade gracefully, it fails the run.
func joinHeartbeat() membership.Config {
	return membership.Config{
		HeartbeatInterval: 100 * time.Millisecond,
		SuspectAfter:      10,
		DeadAfter:         30,
	}
}

func joinRun(db *tpch.DB, nodes, clients, queries int) (JoinRun, error) {
	cfg := live.DefaultConfig()
	cfg.Replicas = 1
	cfg.Heartbeat = joinHeartbeat()
	cfg.Core.ResendTimeout = 100 * time.Millisecond
	ring, err := live.NewRing(nodes, db.ColumnMap(), db.Schema(), cfg)
	if err != nil {
		return JoinRun{}, err
	}
	defer ring.Close()
	srv, err := server.Serve(ring, server.DefaultConfig())
	if err != nil {
		return JoinRun{}, err
	}
	defer srv.Close()
	targets := srv.Addrs()

	// The pre-join reference every later answer must reproduce.
	ref, err := referenceAnswer(targets[0])
	if err != nil {
		return JoinRun{}, err
	}

	run := JoinRun{Nodes: nodes, Replicas: cfg.Replicas, NewcomerOKMs: -1}
	var (
		next        int64
		completed   int64
		joinedNanos int64 // join-completion instant (UnixNano); 0 while joining
		joinErr     error
		latMu       sync.Mutex
		preLats     []time.Duration
		postLats    []time.Duration
		wg          sync.WaitGroup
	)

	// The sponsor: wait until a third of the budget has completed, so
	// the join lands mid-stream with clients bound to every original
	// node, then grow the ring and bring the newcomer's listener up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for atomic.LoadInt64(&completed) < int64(queries/3) {
			time.Sleep(time.Millisecond)
		}
		rep, err := ring.Join()
		if err != nil {
			joinErr = fmt.Errorf("join: %w", err)
			return
		}
		run.Joined = rep.Node
		run.Share = rep.Share
		run.Migrated = rep.Migrated
		run.Skipped = rep.Skipped
		run.SpliceMs = rep.SpliceMs
		run.TransferMs = rep.TransferMs
		run.TotalMs = rep.TotalMs
		joinEnd := time.Now()
		atomic.StoreInt64(&joinedNanos, joinEnd.UnixNano())
		run.Converged = ring.UnownedFragments() == 0

		addr, err := srv.ServeNode(rep.Node)
		if err != nil {
			joinErr = fmt.Errorf("serve joined node: %w", err)
			return
		}
		// The newcomer must answer for itself, over the wire, with the
		// data it just received.
		cl, err := dcclient.Dial(addr)
		if err != nil {
			joinErr = fmt.Errorf("dial joined node: %w", err)
			return
		}
		defer cl.Close()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			rs, err := cl.Query(ctx, tpch.Q6ishSQL)
			cancel()
			if err == nil && fingerprintRows(rs.Rows()) == ref {
				run.NewcomerOKMs = time.Since(joinEnd).Milliseconds()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		joinErr = fmt.Errorf("joined node never answered correctly")
	}()

	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := dcclient.Dial(targets[w%len(targets)])
			if err != nil {
				atomic.AddInt64(&run.Failed, 1)
				return
			}
			defer cl.Close()
			for {
				if atomic.AddInt64(&next, 1) > int64(queries) {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				start := time.Now()
				rs, err := cl.Query(ctx, tpch.Q6ishSQL)
				lat := time.Since(start)
				cancel()
				atomic.AddInt64(&completed, 1)
				switch {
				case err == nil:
					if fingerprintRows(rs.Rows()) != ref {
						atomic.AddInt64(&run.Incorrect, 1)
						continue
					}
					atomic.AddInt64(&run.OK, 1)
					jn := atomic.LoadInt64(&joinedNanos)
					latMu.Lock()
					if jn != 0 && start.UnixNano() >= jn {
						postLats = append(postLats, lat)
					} else {
						preLats = append(preLats, lat)
					}
					latMu.Unlock()
				case dcclient.IsTemporary(err):
					atomic.AddInt64(&run.Rejected, 1)
				default:
					atomic.AddInt64(&run.Failed, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	if joinErr != nil {
		return run, joinErr
	}

	// A join sweep with deaths in it measured the failover path, not the
	// join path: any verdict here was false (nobody is killed), and the
	// ring silently fell back on replicas for correctness. Surface it so
	// the driver can gate on zero.
	run.Failovers = ring.MembershipStats().Failovers

	run.PreP50Micros = quantileMicros(preLats, 0.50)
	run.PreP99Micros = quantileMicros(preLats, 0.99)
	run.PostP50Micros = quantileMicros(postLats, 0.50)
	run.PostP99Micros = quantileMicros(postLats, 0.99)
	return run, nil
}

func (r *JoinResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Join sweep — lineitem %d rows, %d clients, %d queries per ring, join node mid-run\n",
		r.LineitemRows, r.Clients, r.Queries)
	fmt.Fprintf(&b, "%6s %8s %10s %7s %6s %9s %9s %11s %8s %11s %10s %11s %11s %9s\n",
		"nodes", "ok", "incorrect", "failed", "share", "migrated", "splice_ms", "transfer_ms", "total_ms", "newok_ms", "pre_p99", "post_p99", "converged", "failovers")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%6d %8d %10d %7d %6d %9d %9d %11d %8d %11d %10d %11d %11v %9d\n",
			run.Nodes, run.OK, run.Incorrect, run.Failed, run.Share, run.Migrated,
			run.SpliceMs, run.TransferMs, run.TotalMs, run.NewcomerOKMs,
			run.PreP99Micros, run.PostP99Micros, run.Converged, run.Failovers)
	}
	return b.String()
}
