package experiments

// Kill-and-recover sweep: the end-to-end measurement behind the elastic
// membership layer. A replicated ring is served over the network query
// service, concurrent clients hammer it through dcclient, and one node
// is killed mid-run. The sweep records what the membership layer
// promises: zero incorrect answers (every post-kill result fingerprints
// identically to the pre-kill reference), every fragment re-owned from
// its replica, and recovery bounded by a small multiple of the failure
// detector's death timeout. Unlike the unit tests, the whole path is
// exercised through TCP — detection, promotion, ring splice, client
// failover onto survivors — so the recorded times are what an
// application would actually observe.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dcclient"
	"repro/internal/live"
	"repro/internal/membership"
	"repro/internal/server"
	"repro/internal/tpch"
)

// FailoverRun is one ring size of the kill-and-recover sweep.
type FailoverRun struct {
	Nodes         int   `json:"nodes"`
	Victim        int   `json:"victim"`
	Replicas      int   `json:"replicas"`
	HeartbeatMs   int64 `json:"heartbeat_ms"`
	DeadTimeoutMs int64 `json:"dead_timeout_ms"`
	OK            int64 `json:"ok"`
	Rejected      int64 `json:"rejected"`  // admission rejections (IsTemporary)
	Failed        int64 `json:"failed"`    // hard query failures
	Incorrect     int64 `json:"incorrect"` // fingerprint mismatches vs reference
	DetectMs      int64 `json:"detect_ms"`   // kill → death declared on a survivor
	ReownMs       int64 `json:"reown_ms"`    // kill → every fragment re-owned
	FirstOKMs     int64 `json:"first_ok_ms"` // kill → first fully post-kill correct answer
	Reowned       bool  `json:"reowned"`
	Failovers     int64 `json:"failovers"`
	Promotions    int64 `json:"promotions"`
	LostFrags     int64 `json:"lost_frags"`
	P50Micros     int64 `json:"p50_us"`
	P99Micros     int64 `json:"p99_us"`
}

// FailoverResult is the whole sweep.
type FailoverResult struct {
	LineitemRows int           `json:"lineitem_rows"`
	Clients      int           `json:"clients"`
	Queries      int           `json:"queries"` // per ring size
	Runs         []FailoverRun `json:"runs"`
}

// failoverHeartbeat is the detector tuning the sweep runs with: a
// 300 ms death verdict, roomy enough that the recovery gate (2× the
// death timeout, enforced by cmd/dcfail) holds on a loaded CI box.
func failoverHeartbeat() membership.Config {
	return membership.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectAfter:      3,
		DeadAfter:         6,
	}
}

// FailoverSweep runs the kill-and-recover sweep: for each ring size, a
// TPC-H database with the given lineitem row count is served with one
// replica per fragment, `clients` concurrent network clients fire
// `queries` queries total, and one node is killed a third of the way
// through. Every answer is fingerprinted against the pre-kill
// reference.
func FailoverSweep(rows, clients, queries int, sizes []int, seed int64) (*FailoverResult, error) {
	db := tpch.GenDB(tpch.SFForLineitemRows(rows), seed)
	res := &FailoverResult{
		LineitemRows: db.Rows("lineitem"),
		Clients:      clients,
		Queries:      queries,
	}
	for _, nodes := range sizes {
		run, err := failoverRun(db, nodes, clients, queries)
		if err != nil {
			return nil, fmt.Errorf("failover sweep (%d nodes): %w", nodes, err)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

func failoverRun(db *tpch.DB, nodes, clients, queries int) (FailoverRun, error) {
	hb := failoverHeartbeat()
	cfg := live.DefaultConfig()
	cfg.Replicas = 1
	cfg.Heartbeat = hb
	cfg.Core.ResendTimeout = 100 * time.Millisecond
	ring, err := live.NewRing(nodes, db.ColumnMap(), db.Schema(), cfg)
	if err != nil {
		return FailoverRun{}, err
	}
	defer ring.Close()
	srv, err := server.Serve(ring, server.DefaultConfig())
	if err != nil {
		return FailoverRun{}, err
	}
	defer srv.Close()
	targets := srv.Addrs()
	victim := nodes / 2

	// The pre-kill reference every later answer must reproduce.
	ref, err := referenceAnswer(targets[0])
	if err != nil {
		return FailoverRun{}, err
	}

	run := FailoverRun{
		Nodes:         nodes,
		Victim:        victim,
		Replicas:      cfg.Replicas,
		HeartbeatMs:   hb.HeartbeatInterval.Milliseconds(),
		DeadTimeoutMs: hb.DeadTimeout().Milliseconds(),
	}
	var (
		next      int64
		completed int64
		killNanos int64 // kill instant (UnixNano); 0 while the victim lives
		firstOK   int64 = -1
		latMu     sync.Mutex
		lats      []time.Duration
		wg        sync.WaitGroup
	)

	// The assassin: wait until a third of the budget has completed, so
	// the kill lands mid-stream with clients bound to every node, then
	// take the victim down and watch the ring recover.
	detectCh := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for atomic.LoadInt64(&completed) < int64(queries/3) {
			time.Sleep(time.Millisecond)
		}
		killT := time.Now()
		atomic.StoreInt64(&killNanos, killT.UnixNano())
		srv.KillNode(victim)
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if ring.MembershipStats().Dead > 0 {
				run.DetectMs = time.Since(killT).Milliseconds()
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		for time.Now().Before(deadline) {
			if ring.UnownedFragments() == 0 && ring.MembershipStats().Dead > 0 {
				run.ReownMs = time.Since(killT).Milliseconds()
				run.Reowned = true
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		close(detectCh)
	}()

	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := dcclient.Dial(targets[w%len(targets)])
			if err != nil {
				atomic.AddInt64(&run.Failed, 1)
				return
			}
			defer cl.Close()
			for {
				if atomic.AddInt64(&next, 1) > int64(queries) {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				start := time.Now()
				rs, err := cl.Query(ctx, tpch.Q6ishSQL)
				lat := time.Since(start)
				cancel()
				atomic.AddInt64(&completed, 1)
				switch {
				case err == nil:
					if fingerprintRows(rs.Rows()) != ref {
						atomic.AddInt64(&run.Incorrect, 1)
						continue
					}
					atomic.AddInt64(&run.OK, 1)
					latMu.Lock()
					lats = append(lats, lat)
					latMu.Unlock()
					// First correct answer whose whole lifetime is
					// post-kill: the client-visible recovery point.
					if kn := atomic.LoadInt64(&killNanos); kn != 0 && start.UnixNano() >= kn {
						ms := (time.Now().UnixNano() - kn) / int64(time.Millisecond)
						for {
							cur := atomic.LoadInt64(&firstOK)
							if (cur >= 0 && cur <= ms) || atomic.CompareAndSwapInt64(&firstOK, cur, ms) {
								break
							}
						}
					}
				case dcclient.IsTemporary(err):
					atomic.AddInt64(&run.Rejected, 1)
				default:
					atomic.AddInt64(&run.Failed, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	<-detectCh

	run.FirstOKMs = firstOK
	s := ring.MembershipStats()
	run.Failovers = s.Failovers
	run.Promotions = s.Promotions
	run.LostFrags = s.LostFrags
	run.P50Micros = quantileMicros(lats, 0.50)
	run.P99Micros = quantileMicros(lats, 0.99)
	return run, nil
}

// referenceAnswer runs the workload query once against a healthy ring
// and fingerprints the result.
func referenceAnswer(addr string) (string, error) {
	cl, err := dcclient.Dial(addr)
	if err != nil {
		return "", err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rs, err := cl.Query(ctx, tpch.Q6ishSQL)
	if err != nil {
		return "", fmt.Errorf("reference query: %w", err)
	}
	return fingerprintRows(rs.Rows()), nil
}

// fingerprintRows reduces a result to an order-insensitive key (row
// order is not part of the result contract).
func fingerprintRows(rows [][]any) string {
	keys := make([]string, len(rows))
	for i, row := range rows {
		keys[i] = fmt.Sprint(row)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func (r *FailoverResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failover sweep — lineitem %d rows, %d clients, %d queries per ring, kill node mid-run\n",
		r.LineitemRows, r.Clients, r.Queries)
	fmt.Fprintf(&b, "%6s %7s %8s %10s %9s %11s %10s %10s %6s %5s %10s %10s\n",
		"nodes", "victim", "ok", "incorrect", "failed", "detect_ms", "reown_ms", "firstok_ms", "promo", "lost", "p50_us", "p99_us")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%6d %7d %8d %10d %9d %11d %10d %10d %6d %5d %10d %10d\n",
			run.Nodes, run.Victim, run.OK, run.Incorrect, run.Failed,
			run.DetectMs, run.ReownMs, run.FirstOKMs,
			run.Promotions, run.LostFrags, run.P50Micros, run.P99Micros)
	}
	return b.String()
}
