package experiments

import "testing"

// TestHopSweepSmoke runs a miniature hop-batching sweep end to end: the
// unbatched baseline must be all singles, the batched run must coalesce
// fragments into fewer wire messages with a populated multi-fragment
// fill histogram, and both must answer every query.
func TestHopSweepSmoke(t *testing.T) {
	res, err := HopSweep(60_000, 3, 4, 4096, []int{0, 1 << 20}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	off, batched := res.Runs[0], res.Runs[1]
	if off.Batches != 0 || off.Singles != off.Msgs || off.Msgs != off.Frags {
		t.Fatalf("unbatched run batched anyway: %+v", off)
	}
	if batched.Batches == 0 {
		t.Fatalf("batched run produced no batches: %+v", batched)
	}
	if batched.Frags <= batched.Msgs {
		t.Fatalf("batched fill did not exceed 1: %d frags over %d msgs", batched.Frags, batched.Msgs)
	}
	var multi int64
	for i := 1; i < len(batched.Fill); i++ {
		multi += batched.Fill[i]
	}
	if multi != batched.Batches {
		t.Fatalf("fill histogram %v: multi buckets %d, want %d batches", batched.Fill, multi, batched.Batches)
	}
	// Same data, same queries: both runs forward comparable fragment
	// volume, the batched one in far fewer envelopes.
	if batched.Msgs >= off.Msgs {
		t.Fatalf("batching did not reduce messages: %d vs %d", batched.Msgs, off.Msgs)
	}
	for _, run := range res.Runs {
		if run.Queries != 4 || run.P50Micros <= 0 || run.P99Micros < run.P50Micros {
			t.Fatalf("bad run: %+v", run)
		}
		if run.Fragments == 0 {
			t.Fatal("lineitem was not fragmented")
		}
	}
	if res.String() == "" {
		t.Fatal("empty report")
	}
}
