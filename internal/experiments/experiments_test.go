package experiments

import (
	"strings"
	"testing"
)

// The synthetic experiments run at full paper scale (they are fast on
// the event kernel); TPC-H scales down the per-node query count.

func TestFig6ThroughputMonotoneInLOIT(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := LimitedRingCapacity(1.0, 1)
	if len(res.Runs) != 11 {
		t.Fatalf("runs = %d, want 11 (LOIT 0.1..1.1)", len(res.Runs))
	}
	// The paper's headline (Fig 6a): at t=40s, high LOIT has finished
	// far more queries than low LOIT, and the trend is increasing.
	at40Low := res.Runs[0].Throughput.At(40)
	at40High := res.Runs[10].Throughput.At(40)
	if at40High < at40Low*1.2 {
		t.Fatalf("LOIT 1.1 at 40s = %v vs LOIT 0.1 = %v: want clear separation", at40High, at40Low)
	}
	low := res.Runs[0].Throughput.At(40) + res.Runs[1].Throughput.At(40) + res.Runs[2].Throughput.At(40)
	high := res.Runs[8].Throughput.At(40) + res.Runs[9].Throughput.At(40) + res.Runs[10].Throughput.At(40)
	if high <= low {
		t.Fatalf("top-3 LOIT at 40s = %v <= bottom-3 %v", high, low)
	}
	// Everyone eventually finishes all 48 000 queries.
	for _, run := range res.Runs {
		if run.Finished != 48000 {
			t.Fatalf("LOIT %.1f finished %d, want 48000", run.LOIT, run.Finished)
		}
	}
	// Fig 6b: low LOIT leaves a heavier lifetime tail.
	if res.Runs[0].Lifetime.Quantile(0.95) <= res.Runs[10].Lifetime.Quantile(0.95) {
		t.Fatalf("p95 lifetime: LOIT0.1=%v should exceed LOIT1.1=%v",
			res.Runs[0].Lifetime.Quantile(0.95), res.Runs[10].Lifetime.Quantile(0.95))
	}
	// Fig 7a: with low LOIT the ring saturates near its 2 GB capacity.
	if peak := res.Runs[0].RingBytes.Max(); peak < 1.6e9 {
		t.Fatalf("LOIT 0.1 ring peak = %v, want ≈2GB", peak)
	}
	out := res.String()
	for _, want := range []string{"Figure 6a", "Figure 6b", "Figure 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestFig8SkewedReactsToWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := SkewedWorkloads(1.0, 2)
	for _, sw := range []string{"sw1", "sw2", "sw3", "sw4"} {
		s := res.FinishedBySW[sw]
		if s == nil || s.Max() == 0 {
			t.Fatalf("workload %s finished nothing", sw)
		}
	}
	// Reactive behavior: DH2 space appears only after SW2 starts (15s).
	dh2 := res.RingByDH["dh2"]
	if dh2 == nil {
		t.Fatal("no dh2 series")
	}
	if dh2.At(10) > 0 {
		t.Fatalf("dh2 loaded before SW2 started: %v bytes at 10s", dh2.At(10))
	}
	if dh2.At(40) == 0 {
		t.Fatal("dh2 never loaded during SW2")
	}
	// DH4 appears only late (SW4 starts at 67.5s).
	if dh4 := res.RingByDH["dh4"]; dh4 != nil && dh4.At(50) > dh4.Max()/4 {
		t.Fatalf("dh4 substantially loaded before SW4 started")
	}
	if !strings.Contains(res.String(), "Figure 8a") {
		t.Fatal("report header missing")
	}
}

func TestFig9GaussianShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := GaussianWorkload(1.0, 3)
	n := res.NumBATs
	touches := bucketize(res.Touches, n, 20)
	loads := bucketize(res.Loads, n, 20)
	// In-vogue BATs (middle buckets) are touched far more than the tails.
	mid := touches[9] + touches[10]
	tail := touches[0] + touches[1] + touches[18] + touches[19]
	if mid <= tail*3 {
		t.Fatalf("touches mid=%d vs tails=%d: Gaussian shape missing", mid, tail)
	}
	// §5.3's observation: in-vogue BATs have a LOW load rate relative
	// to their touches (they stay in the ring); standard BATs cycle.
	midLoads := loads[9] + loads[10]
	if midLoads == 0 {
		t.Fatal("in-vogue BATs never loaded")
	}
	midRate := float64(midLoads) / float64(mid)
	stdTouches := touches[6] + touches[7] + touches[12] + touches[13]
	stdLoads := loads[6] + loads[7] + loads[12] + loads[13]
	if stdTouches > 0 && stdLoads > 0 {
		stdRate := float64(stdLoads) / float64(stdTouches)
		if midRate >= stdRate {
			t.Fatalf("in-vogue load/touch %.4f should be below standard %.4f", midRate, stdRate)
		}
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Fatal("report header missing")
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := TPCH(Scale(0.1), 4, 4) // 120 queries/node, rings 1..4
	if len(res.Rows) != 5 {       // MonetDB + 1..4
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base, one := res.Rows[0], res.Rows[1]
	if base.Label != "MonetDB" {
		t.Fatalf("first row = %q", base.Label)
	}
	// The simulated single node beats the real-engine baseline.
	if one.ExecSeconds >= base.ExecSeconds {
		t.Fatalf("1-node %.1fs should beat baseline %.1fs", one.ExecSeconds, base.ExecSeconds)
	}
	// Single-node CPU is near optimal.
	if one.CPUPercent < 90 {
		t.Fatalf("1-node CPU = %.1f%%, want ≈99%%", one.CPUPercent)
	}
	// Aggregate throughput grows with nodes; per-node throughput stays
	// in a narrow band (the Table 4 signature).
	prev := 0.0
	for _, row := range res.Rows[1:] {
		if row.Throughput <= prev {
			t.Fatalf("throughput not increasing: %+v", res.Rows)
		}
		prev = row.Throughput
	}
	tp1 := res.Rows[1].ThroughputNode
	tpN := res.Rows[len(res.Rows)-1].ThroughputNode
	if tpN < 0.6*tp1 {
		t.Fatalf("per-node throughput collapsed: %v -> %v", tp1, tpN)
	}
	if !strings.Contains(res.String(), "Table 4") {
		t.Fatal("report header missing")
	}
}

func TestFig1011RingSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := RingSizeSweep(Scale(0.25), 5, []int{5, 10, 15, 20})
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	maxOf := func(m interface {
		Keys() []int
		Get(int) int
	}) int {
		best := 0
		for _, k := range m.Keys() {
			if v := m.Get(k); v > best {
				best = v
			}
		}
		return best
	}
	for _, run := range res.Runs {
		if maxOf(run.MaxCycles) == 0 {
			t.Fatalf("%d nodes: no cycles recorded", run.Nodes)
		}
	}
	// §6.3: the largest ring keeps in-vogue BATs alive for many cycles.
	small := maxOf(res.Runs[0].MaxCycles)
	large := maxOf(res.Runs[len(res.Runs)-1].MaxCycles)
	if small == 0 || large == 0 {
		t.Fatal("cycle counts missing")
	}
	if !strings.Contains(res.String(), "Figures 10/11") {
		t.Fatal("report header missing")
	}
}

func TestFig1CPUBreakdown(t *testing.T) {
	res := CPUBreakdown()
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	legacy := res.Rows[0].Breakdown.Total()
	offload := res.Rows[1].Breakdown.Total()
	rdmaTot := res.Rows[2].Breakdown.Total()
	if !(legacy > offload && offload > rdmaTot) {
		t.Fatalf("Figure 1 ordering broken: %v %v %v", legacy, offload, rdmaTot)
	}
	if !strings.Contains(res.String(), "Figure 1") {
		t.Fatal("report header missing")
	}
}

func TestScaleHelpers(t *testing.T) {
	s := Scale(0.5)
	if s.apply(1000) != 500 || s.apply(1) != 1 {
		t.Fatal("apply wrong")
	}
	if Scale(0.0001).apply(10) != 1 {
		t.Fatal("apply should clamp to 1")
	}
	if Scale(0.001).dur(1000) < 1 {
		t.Fatal("dur should clamp to 1s")
	}
}
