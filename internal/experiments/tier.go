package experiments

// Hot/cold tier sweep: the measurement behind the routed multi-ring
// runtime. One wide ring forces every fragment to share a revolution
// time; the two-tier runtime gives the Zipf head a small fast ring and
// leaves the tail on the wide cold one, migrating fragments as their
// observed interest crosses the thresholds. The sweep runs the same
// seeded Zipf access stream against a single-ring baseline and the
// tiered runtime and records:
//
//   - correctness: every fetched column is checksummed against the
//     generator (zero incorrect answers, whichever tier served it);
//   - latency: p50/p99 over the stream, and for the tiered run the
//     split between accesses that found their column hot-homed versus
//     cold-homed;
//   - the tiers themselves: measured revolution time per ring, the
//     migration counters, and residency;
//   - the flash-crowd path: after the stream, a still-cold column is
//     hit with a burst and the wall-clock from the burst's first
//     access to the observed home flip is compared against one cold
//     revolution (the promotion must land before the cold ring could
//     even bring the fragment around).
//
// Gate() turns the three contracts into a CI check.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/bat"
	"repro/internal/live"
	"repro/internal/workload"
)

// TierOpts sizes the sweep.
type TierOpts struct {
	Columns  int     // distinct columns (the Zipf key space)
	Rows     int     // rows per column (single-fragment sized)
	Accesses int     // fetches in the measured stream
	Theta    float64 // Zipf skew
	Seed     int64
	Router   live.RouterConfig // tiered topology; Tiers forced to 2
}

// DefaultTierOpts is the full sweep; Short shrinks it to CI size.
func DefaultTierOpts() TierOpts {
	return TierOpts{
		Columns:  24,
		Rows:     8 << 10,
		Accesses: 600,
		Theta:    1.1,
		Seed:     1,
		Router:   live.DefaultRouterConfig(),
	}
}

// Short returns the CI-sized variant of o.
func (o TierOpts) Short() TierOpts {
	o.Columns = 10
	o.Rows = 2 << 10
	o.Accesses = 220
	o.Router.TierScan = 25 * time.Millisecond
	return o
}

// TierRun is one side of the comparison.
type TierRun struct {
	Label     string `json:"label"`
	Accesses  int    `json:"accesses"`
	Incorrect int    `json:"incorrect"`
	P50Micros int64  `json:"p50_us"`
	P99Micros int64  `json:"p99_us"`
	// Tiered run only: the latency split by the column's home ring at
	// fetch time.
	HotServed     int   `json:"hot_served,omitempty"`
	HotP50Micros  int64 `json:"hot_p50_us,omitempty"`
	ColdP50Micros int64 `json:"cold_p50_us,omitempty"`
}

// TierResult is the whole sweep.
type TierResult struct {
	Columns  int     `json:"columns"`
	Rows     int     `json:"rows"`
	Theta    float64 `json:"theta"`
	Accesses int     `json:"accesses"`

	Baseline TierRun        `json:"baseline"`
	Tiered   TierRun        `json:"tiered"`
	Stats    live.TierStats `json:"tier_stats"`

	// Flash-crowd probe: wall-clock from the burst's first access to
	// the observed cold→hot home flip, against the one-cold-revolution
	// bound (the measured cold revolution when available, else the cold
	// fetch p99 as a conservative proxy — a cold fetch waits for at
	// most one revolution).
	FlashPromoteMicros int64 `json:"flash_promote_us"`
	FlashBoundMicros   int64 `json:"flash_bound_us"`
	ColdRevMeasured    bool  `json:"cold_rev_measured"`
	FlashProbed        bool  `json:"flash_probed"`
}

// tierColName names column k (every column is its own single-fragment
// table entry).
func tierColName(k int) string { return fmt.Sprintf("t.c%03d", k) }

// tierColumns builds the dataset and its per-column checksums.
func tierColumns(cols, rows int, seed int64) (map[string]*bat.BAT, []int64) {
	rng := rand.New(rand.NewSource(seed))
	columns := make(map[string]*bat.BAT, cols)
	sums := make([]int64, cols)
	for k := 0; k < cols; k++ {
		vals := make([]int64, rows)
		var sum int64
		for i := range vals {
			vals[i] = rng.Int63n(1 << 20)
			sum += vals[i]
		}
		columns[tierColName(k)] = bat.MakeInts("c", vals)
		sums[k] = sum
	}
	return columns, sums
}

// TierSweep runs the baseline-versus-tiered comparison and the
// flash-crowd probe.
func TierSweep(o TierOpts) (*TierResult, error) {
	if o.Columns < 2 || o.Rows < 1 || o.Accesses < 1 {
		return nil, fmt.Errorf("tier sweep: bad sizes %+v", o)
	}
	res := &TierResult{
		Columns:  o.Columns,
		Rows:     o.Rows,
		Theta:    o.Theta,
		Accesses: o.Accesses,
	}

	// Baseline: one standalone ring built through the Tiers=1 gate, in
	// the cold ring's configuration and at the cold ring's node count —
	// the wide capacity ring every fragment shares when there is no hot
	// tier. (A cache big enough to swallow the whole dataset would hide
	// exactly the constraint the tiering addresses.)
	base := o.Router
	base.Tiers = 1
	columns, sums := tierColumns(o.Columns, o.Rows, o.Seed)
	rtr, err := live.NewRouter(columns, nil, base)
	if err != nil {
		return nil, err
	}
	run, _, err := tierStream("single-ring", rtr, o, sums)
	rtr.Close()
	if err != nil {
		return nil, err
	}
	res.Baseline = run

	// Tiered: the same dataset and the same seeded access stream
	// against the two-tier runtime.
	tiered := o.Router
	tiered.Tiers = 2
	columns, sums = tierColumns(o.Columns, o.Rows, o.Seed)
	rtr, err = live.NewRouter(columns, nil, tiered)
	if err != nil {
		return nil, err
	}
	defer rtr.Close()
	run, coldP99, err := tierStream("tiered", rtr, o, sums)
	if err != nil {
		return nil, err
	}
	res.Tiered = run

	// The flash-crowd probe, before reading the final stats.
	if err := tierFlashProbe(rtr, o, sums, res, coldP99); err != nil {
		return nil, err
	}
	res.Stats = rtr.TierStats()
	if res.Stats.ColdRevolutionMicros > 0 {
		res.FlashBoundMicros = res.Stats.ColdRevolutionMicros
		res.ColdRevMeasured = true
	} else {
		res.FlashBoundMicros = coldP99
	}
	return res, nil
}

// tierStream fires the seeded Zipf access stream at the runtime,
// checksumming every answer. It returns the run and the p99 of the
// accesses that found their column cold-homed (the revolution proxy
// the flash bound falls back to).
func tierStream(label string, rtr *live.Router, o TierOpts, sums []int64) (TierRun, int64, error) {
	z := workload.NewZipf(o.Columns, o.Theta)
	rng := rand.New(rand.NewSource(o.Seed + 1))
	run := TierRun{Label: label, Accesses: o.Accesses}
	var all, hotLat, coldLat []time.Duration
	for i := 0; i < o.Accesses; i++ {
		k := z.Draw(rng)
		hot := false
		if rtr.Tiers() > 1 {
			if homes, ok := rtr.Homes(tierColName(k)); ok && homes[0] == live.HotRing {
				hot = true
			}
		}
		start := time.Now()
		b, err := rtr.Fetch(tierColName(k))
		lat := time.Since(start)
		if err != nil {
			return run, 0, fmt.Errorf("%s: fetch %s: %w", label, tierColName(k), err)
		}
		var sum int64
		for j := 0; j < b.Len(); j++ {
			sum += b.Tail().Int(j)
		}
		if sum != sums[k] || b.Len() != o.Rows {
			run.Incorrect++
		}
		all = append(all, lat)
		if hot {
			hotLat = append(hotLat, lat)
		} else {
			coldLat = append(coldLat, lat)
		}
	}
	run.P50Micros = quantileMicros(all, 0.50)
	run.P99Micros = quantileMicros(all, 0.99)
	if rtr.Tiers() > 1 {
		run.HotServed = len(hotLat)
		run.HotP50Micros = quantileMicros(hotLat, 0.50)
		run.ColdP50Micros = quantileMicros(coldLat, 0.50)
	}
	return run, quantileMicros(coldLat, 0.99), nil
}

// tierFlashProbe picks a still-cold column, hits it with a
// FlashCrowdHits burst, and clocks the cold→hot home flip.
func tierFlashProbe(rtr *live.Router, o TierOpts, sums []int64, res *TierResult, coldP99 int64) error {
	victim := -1
	for k := o.Columns - 1; k >= 0; k-- {
		if homes, ok := rtr.Homes(tierColName(k)); ok && homes[0] == live.ColdRing {
			victim = k
			break
		}
	}
	if victim < 0 {
		return nil // everything already promoted; the probe has nothing to show
	}
	name := tierColName(victim)
	burst := o.Router.FlashCrowdHits
	if burst <= 0 {
		burst = 3
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := rtr.Fetch(name)
			if err != nil {
				errs[i] = err
				return
			}
			var sum int64
			for j := 0; j < b.Len(); j++ {
				sum += b.Tail().Int(j)
			}
			if sum != sums[victim] {
				errs[i] = fmt.Errorf("flash probe: bad checksum for %s", name)
			}
		}(i)
	}
	// The flip is what the flash path promises within one cold
	// revolution; poll for it while the burst drains.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if homes, ok := rtr.Homes(name); ok && homes[0] == live.HotRing {
			res.FlashPromoteMicros = time.Since(start).Microseconds()
			res.FlashProbed = true
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if !res.FlashProbed {
		return fmt.Errorf("flash probe: %s never promoted (burst %d)", name, burst)
	}
	_ = coldP99
	return nil
}

// Gate enforces the tier-bench smoke contracts:
//
//	(a) zero incorrect answers on both sides;
//	(b) the hot ring revolves measurably faster than the cold one
//	    (falling back to the hot/cold latency split when a revolution
//	    went unmeasured);
//	(c) the flash-crowd promotion landed within one cold revolution.
func (r *TierResult) Gate() error {
	if n := r.Baseline.Incorrect + r.Tiered.Incorrect; n > 0 {
		return fmt.Errorf("tier gate: %d incorrect answers", n)
	}
	hot, cold := r.Stats.HotRevolutionMicros, r.Stats.ColdRevolutionMicros
	switch {
	case hot > 0 && cold > 0:
		if hot >= cold {
			return fmt.Errorf("tier gate: hot revolution %dus not below cold %dus", hot, cold)
		}
	case r.Tiered.HotServed > 0 && r.Tiered.ColdP50Micros > 0:
		if r.Tiered.HotP50Micros >= r.Tiered.ColdP50Micros {
			return fmt.Errorf("tier gate: hot-homed p50 %dus not below cold-homed p50 %dus (revolutions unmeasured)",
				r.Tiered.HotP50Micros, r.Tiered.ColdP50Micros)
		}
	default:
		return fmt.Errorf("tier gate: no hot-versus-cold evidence (hot rev %dus, cold rev %dus, hot served %d)",
			hot, cold, r.Tiered.HotServed)
	}
	if !r.FlashProbed {
		return fmt.Errorf("tier gate: flash-crowd probe did not run")
	}
	if r.FlashBoundMicros > 0 && r.FlashPromoteMicros > r.FlashBoundMicros {
		return fmt.Errorf("tier gate: flash promotion %dus exceeded one cold revolution (%dus)",
			r.FlashPromoteMicros, r.FlashBoundMicros)
	}
	return nil
}

func (r *TierResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot/cold tier sweep — %d columns x %d rows, Zipf θ=%.2f, %d accesses\n",
		r.Columns, r.Rows, r.Theta, r.Accesses)
	fmt.Fprintf(&b, "%12s %9s %9s %10s %11s %11s %10s\n",
		"run", "p50_us", "p99_us", "incorrect", "hot_served", "hot_p50us", "cold_p50us")
	for _, run := range []TierRun{r.Baseline, r.Tiered} {
		fmt.Fprintf(&b, "%12s %9d %9d %10d %11d %11d %10d\n",
			run.Label, run.P50Micros, run.P99Micros, run.Incorrect,
			run.HotServed, run.HotP50Micros, run.ColdP50Micros)
	}
	s := r.Stats
	fmt.Fprintf(&b, "tiers: %d hot / %d cold resident; %d promotions (%d flash), %d demotions, %d remote fetches\n",
		s.HotResident, s.ColdResident, s.Promotions, s.FlashPromotions, s.Demotions, s.RemoteFetches)
	fmt.Fprintf(&b, "revolutions: hot %dus, cold %dus\n", s.HotRevolutionMicros, s.ColdRevolutionMicros)
	bound := "cold p99 proxy"
	if r.ColdRevMeasured {
		bound = "measured cold revolution"
	}
	fmt.Fprintf(&b, "flash crowd: promoted in %dus (bound %dus, %s)\n",
		r.FlashPromoteMicros, r.FlashBoundMicros, bound)
	return b.String()
}
