package experiments

import "testing"

// TestTierSweepGates is the tier-bench smoke: a CI-sized sweep whose
// Gate() enforces (a) zero incorrect answers, (b) hot ring measurably
// faster than cold, (c) flash-crowd promotion within one cold
// revolution.
func TestTierSweepGates(t *testing.T) {
	res, err := TierSweep(DefaultTierOpts().Short())
	if err != nil {
		t.Fatalf("tier sweep: %v", err)
	}
	t.Logf("\n%s", res)
	if err := res.Gate(); err != nil {
		t.Fatalf("%v", err)
	}
}
