package experiments

import "testing"

// TestFragmentSweepSmoke runs a miniature sweep end to end: every
// setting must execute its queries, record sane quantiles, and report
// the expected fragment counts and shrinking message limits.
func TestFragmentSweepSmoke(t *testing.T) {
	res, err := FragmentSweep(60_000, 3, 4, []int{0, 8192}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	off, frag := res.Runs[0], res.Runs[1]
	if off.Fragments != 1 {
		t.Fatalf("unfragmented run has %d fragments", off.Fragments)
	}
	if want := (res.LineitemRows + 8191) / 8192; frag.Fragments != want {
		t.Fatalf("fragments = %d, want %d", frag.Fragments, want)
	}
	if frag.RegionBytes >= off.RegionBytes {
		t.Fatalf("region did not shrink: %d vs %d", frag.RegionBytes, off.RegionBytes)
	}
	if frag.MaxHopBytes >= off.MaxHopBytes {
		t.Fatalf("max hop did not shrink: %d vs %d", frag.MaxHopBytes, off.MaxHopBytes)
	}
	for _, run := range res.Runs {
		if run.P50Micros <= 0 || run.P99Micros < run.P50Micros {
			t.Fatalf("bad quantiles: %+v", run)
		}
		if run.Queries != 4 {
			t.Fatalf("queries = %d", run.Queries)
		}
	}
	if res.String() == "" {
		t.Fatal("empty report")
	}
}
