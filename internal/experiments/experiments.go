// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) and the ring-size study of §6.3. Each harness builds
// the exact scenario — topology, dataset, workload — runs the simulated
// Data Cyclotron ring, and returns the rows/series the paper plots.
//
// Every harness accepts a Scale: 1.0 reproduces the paper's volumes
// (48 000 queries, 1000 BATs, ...); smaller fractions shrink the
// workload proportionally for quick runs and benchmarks. Shapes — who
// wins, where the knees are — are preserved across scales.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// Scale shrinks an experiment's workload volume by compressing the
// query-firing window (1.0 = the paper's full volume). The topology,
// dataset, bandwidths, and query mix stay at paper values at every
// scale, so the ring dynamics are authentic; only fewer queries flow.
type Scale float64

func (s Scale) apply(v int) int {
	out := int(float64(v) * float64(s))
	if out < 1 {
		out = 1
	}
	return out
}

func (s Scale) dur(d time.Duration) time.Duration {
	out := time.Duration(float64(d) * float64(s))
	if out < time.Second {
		out = time.Second
	}
	return out
}

// ringScenario builds the paper's base topology: 10 Gb/s links, 350 µs
// delay, 200 MB BAT queues, the 8 GB / 1000-BAT dataset.
func ringScenario(nodes int, seed int64, levels []float64, adaptive bool) (*cluster.Cluster, *rand.Rand, workload.DatasetConfig) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Core.LOITLevels = levels
	cfg.Core.AdaptiveLOIT = adaptive
	c := cluster.New(cfg)
	rng := rand.New(rand.NewSource(seed))
	ds := workload.DefaultDataset(nodes)
	return c, rng, ds
}

// ---------------------------------------------------------------------
// §5.1 — Limited ring capacity (Figures 6a, 6b, 7a, 7b)
// ---------------------------------------------------------------------

// Fig6Run is the result of one static-LOIT iteration.
type Fig6Run struct {
	LOIT       float64
	Throughput *metrics.Series    // cumulative finished queries over time
	Lifetime   *metrics.Histogram // gross query lifetimes
	RingBytes  *metrics.Series    // hot-set bytes over time (Fig 7a)
	RingBATs   *metrics.Series    // hot-set #BATs over time (Fig 7b)
	Finished   int
	Duration   time.Duration
}

// Fig6Result aggregates the 11 iterations plus the registration curve.
type Fig6Result struct {
	Registered *metrics.Series
	Runs       []Fig6Run
	Scale      Scale
	// Horizon is the observation window (the paper plots 0-180 s).
	Horizon time.Duration
}

// LimitedRingCapacity reproduces §5.1: 10 nodes, the 8 GB / 1000-BAT
// dataset, 80 q/s per node for 60 s, and a static LOIT swept from 0.1
// to 1.1 in steps of 0.1. Between iterations the ring buffers are
// cleared (each iteration builds a fresh cluster).
func LimitedRingCapacity(scale Scale, seed int64) *Fig6Result {
	firing := scale.dur(60 * time.Second)
	horizon := firing + 130*time.Second
	res := &Fig6Result{Scale: scale, Horizon: horizon}
	for i := 0; i <= 10; i++ {
		loit := 0.1 + 0.1*float64(i)
		c, rng, ds := ringScenario(10, seed, []float64{loit}, false)
		owners := workload.Populate(c, ds.Build(rng))

		syn := workload.DefaultSynthetic(10)
		syn.Duration = firing
		syn.NumBATs = ds.NumBATs
		specs := syn.Build(rng, owners)
		workload.Submit(c, specs)

		end := c.Run(4 * horizon)
		m := c.Metrics()
		until := horizon.Seconds()
		run := Fig6Run{
			LOIT:       loit,
			Throughput: m.Finished.CumulativeSeries(until, 1),
			Lifetime:   m.Lifetime,
			RingBytes:  m.RingBytes.Downsample(until, 1),
			RingBATs:   m.RingBATs.Downsample(until, 1),
			Finished:   m.Finished.Count(),
			Duration:   end,
		}
		res.Runs = append(res.Runs, run)
		if res.Registered == nil {
			res.Registered = m.Registered.CumulativeSeries(until, 1)
		}
	}
	return res
}

// String renders the Figure 6a table: cumulative finished queries per
// LOIT level at fixed instants.
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6a — query throughput (cumulative #queries finished), scale=%.3f\n", float64(r.Scale))
	fmt.Fprintf(&b, "%-8s", "t(s)")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "LoiT%.1f ", run.LOIT)
	}
	fmt.Fprintf(&b, "%s\n", "registered")
	h := r.Horizon.Seconds()
	var grid []float64
	for f := 0.1; f <= 0.95; f += 0.1 {
		grid = append(grid, f*h)
	}
	for _, t := range grid {
		fmt.Fprintf(&b, "%-8.0f", t)
		for _, run := range r.Runs {
			fmt.Fprintf(&b, "%-8.0f", run.Throughput.At(t))
		}
		fmt.Fprintf(&b, "%-8.0f\n", r.Registered.At(t))
	}
	b.WriteString("\nFigure 6b — query lifetime (p50/p95/max seconds):\n")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "  LoiT %.1f: p50=%-8.1f p95=%-8.1f max=%-8.1f finished=%d\n",
			run.LOIT, run.Lifetime.Quantile(0.5), run.Lifetime.Quantile(0.95), run.Lifetime.Max(), run.Finished)
	}
	b.WriteString("\nFigure 7 — ring load over time (bytes, #BATs) for LoiT 0.1/0.5/1.1:\n")
	fmt.Fprintf(&b, "%-8s %-12s %-8s %-12s %-8s %-12s %-8s\n", "t(s)",
		"bytes@0.1", "bats@0.1", "bytes@0.5", "bats@0.5", "bytes@1.1", "bats@1.1")
	sel := []int{0, 4, 10} // LOIT 0.1, 0.5, 1.1
	for _, t := range grid {
		fmt.Fprintf(&b, "%-8.0f", t)
		for _, i := range sel {
			fmt.Fprintf(&b, " %-12.0f %-8.0f", r.Runs[i].RingBytes.At(t), r.Runs[i].RingBATs.At(t))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------
// §5.2 — Skewed workloads (Figures 8a, 8b)
// ---------------------------------------------------------------------

// Fig8Result holds the per-hot-set ring-space and per-workload
// throughput series.
type Fig8Result struct {
	RingTotal    *metrics.Series
	RingByDH     map[string]*metrics.Series
	FinishedBySW map[string]*metrics.Series
	Scale        Scale
	Horizon      time.Duration
}

// SkewedWorkloads reproduces §5.2: four overlapping skewed workloads
// (Table 3) against the dynamic three-level LOIT (0.1/0.6/1.1 with
// 40%/80% watermarks).
func SkewedWorkloads(scale Scale, seed int64) *Fig8Result {
	c, rng, ds := ringScenario(10, seed, []float64{0.1, 0.6, 1.1}, true)
	ds.TagOf = workload.DisjointTag
	owners := workload.Populate(c, ds.Build(rng))

	ws := workload.Table3()
	for i := range ws {
		// Compress the Table-3 schedule by the scale factor.
		ws[i].Start = time.Duration(float64(ws[i].Start) * float64(scale))
		ws[i].End = time.Duration(float64(ws[i].End) * float64(scale))
	}
	specs := workload.BuildSkewed(rng, ws, 10, ds.NumBATs, owners)
	workload.Submit(c, specs)
	c.Run(30 * time.Minute)

	horizon := time.Duration(float64(120*time.Second) * float64(scale))
	m := c.Metrics()
	until := horizon.Seconds()
	res := &Fig8Result{
		RingTotal:    m.RingBytes.Downsample(until, until/60),
		RingByDH:     map[string]*metrics.Series{},
		FinishedBySW: map[string]*metrics.Series{},
		Scale:        scale,
		Horizon:      horizon,
	}
	for tag, s := range m.RingBytesByTag {
		res.RingByDH[tag] = s.Downsample(until, until/60)
	}
	for tag, e := range m.FinishedByTag {
		res.FinishedBySW[tag] = e.CumulativeSeries(until, until/60)
	}
	return res
}

func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8a — ring space per disjoint hot set (bytes), scale=%.3f\n", float64(r.Scale))
	tags := []string{"dh1", "dh2", "dh3", "dh4"}
	fmt.Fprintf(&b, "%-8s %-12s", "t(s)", "total")
	for _, tag := range tags {
		fmt.Fprintf(&b, "%-12s", tag)
	}
	b.WriteByte('\n')
	h := r.Horizon.Seconds()
	for t := 0.0; t <= h; t += h / 12 {
		fmt.Fprintf(&b, "%-8.0f %-12.0f", t, r.RingTotal.At(t))
		for _, tag := range tags {
			v := 0.0
			if s := r.RingByDH[tag]; s != nil {
				v = s.At(t)
			}
			fmt.Fprintf(&b, "%-12.0f", v)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nFigure 8b — cumulative queries finished per workload:\n")
	sws := []string{"sw1", "sw2", "sw3", "sw4"}
	fmt.Fprintf(&b, "%-8s", "t(s)")
	for _, sw := range sws {
		fmt.Fprintf(&b, "%-10s", sw)
	}
	b.WriteByte('\n')
	for t := 0.0; t <= h; t += h / 12 {
		fmt.Fprintf(&b, "%-8.0f", t)
		for _, sw := range sws {
			v := 0.0
			if s := r.FinishedBySW[sw]; s != nil {
				v = s.At(t)
			}
			fmt.Fprintf(&b, "%-10.0f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------
// §5.3 — Gaussian access (Figures 9a, 9b)
// ---------------------------------------------------------------------

// Fig9Result buckets per-BAT counters by id.
type Fig9Result struct {
	NumBATs  int
	Touches  *metrics.IntMap
	Requests *metrics.IntMap
	Loads    *metrics.IntMap
	Scale    Scale
}

// GaussianWorkload reproduces §5.3: the §5.1 scenario with data access
// drawn from N(500, 50) over the BAT ids.
func GaussianWorkload(scale Scale, seed int64) *Fig9Result {
	c, rng, ds := ringScenario(10, seed, []float64{0.1, 0.6, 1.1}, true)
	owners := workload.Populate(c, ds.Build(rng))

	syn := workload.DefaultSynthetic(10)
	syn.Duration = scale.dur(60 * time.Second)
	syn.NumBATs = ds.NumBATs
	mean := float64(ds.NumBATs) / 2
	std := float64(ds.NumBATs) / 20
	syn.Pick = workload.GaussianPick(mean, std, ds.NumBATs)
	specs := syn.Build(rng, owners)
	workload.Submit(c, specs)
	c.Run(10 * time.Minute)

	m := c.Metrics()
	return &Fig9Result{
		NumBATs:  ds.NumBATs,
		Touches:  m.Touches,
		Requests: m.Requests,
		Loads:    m.Loads,
		Scale:    scale,
	}
}

// Bucket sums a counter over nb id-buckets for compact printing.
func bucketize(c *metrics.IntMap, numBATs, nb int) []int {
	out := make([]int, nb)
	for _, k := range c.Keys() {
		b := k * nb / numBATs
		if b >= nb {
			b = nb - 1
		}
		out[b] += c.Get(k)
	}
	return out
}

func (r *Fig9Result) String() string {
	var b strings.Builder
	const nb = 20
	fmt.Fprintf(&b, "Figure 9 — Gaussian workload per-BAT-id counters (bucketed by id/%d), scale=%.3f\n",
		r.NumBATs/nb, float64(r.Scale))
	touches := bucketize(r.Touches, r.NumBATs, nb)
	requests := bucketize(r.Requests, r.NumBATs, nb)
	loads := bucketize(r.Loads, r.NumBATs, nb)
	fmt.Fprintf(&b, "%-12s %-10s %-10s %-10s\n", "bat-id", "touches", "requests", "loads")
	for i := 0; i < nb; i++ {
		lo := i * r.NumBATs / nb
		hi := (i+1)*r.NumBATs/nb - 1
		fmt.Fprintf(&b, "%4d-%-6d %-10d %-10d %-10d\n", lo, hi, touches[i], requests[i], loads[i])
	}
	return b.String()
}

// ---------------------------------------------------------------------
// §5.4 — TPC-H (Table 4)
// ---------------------------------------------------------------------

// Table4Row is one row of Table 4.
type Table4Row struct {
	Label          string
	Nodes          int
	ExecSeconds    float64
	Throughput     float64
	ThroughputNode float64
	CPUPercent     float64
}

// Table4Result is the full table.
type Table4Result struct {
	Rows  []Table4Row
	Scale Scale
}

// TPCH reproduces Table 4: the TPC-H SF-5 trace workload on rings of
// 1..maxNodes nodes plus the modeled real-engine (MonetDB) baseline.
func TPCH(scale Scale, seed int64, maxNodes int) *Table4Result {
	res := &Table4Result{Scale: scale}
	var singleNode float64
	for n := 1; n <= maxNodes; n++ {
		row := tpchRun(scale, seed, n)
		if n == 1 {
			singleNode = row.ExecSeconds
			// The real-engine baseline: same work, ~70% CPU efficiency
			// (thread management, client context switches — §5.4).
			base := Table4Row{
				Label:       "MonetDB",
				Nodes:       1,
				ExecSeconds: singleNode / tpch.BaselineEfficiency,
				CPUPercent:  tpch.BaselineCPUPercent,
			}
			base.Throughput = float64(scale.apply(1200)) / base.ExecSeconds
			base.ThroughputNode = base.Throughput
			res.Rows = append(res.Rows, base)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func tpchRun(scale Scale, seed int64, nodes int) Table4Row {
	cfg := cluster.DefaultConfig()
	cfg.CoresPerNode = 4
	cfg.Core.LOITLevels = []float64{0.1, 0.6, 1.1}
	cfg.Core.AdaptiveLOIT = true
	// §5.4 assumes ample memory for the hot set; the experiment
	// measures latency, not capacity pressure.
	cfg.Ring.Data.QueueCap = 1 << 30
	ringNodes := nodes
	if ringNodes < 2 {
		ringNodes = 2 // netsim needs a ring; the extra node stays idle
	}
	cfg.Nodes = ringNodes

	c := cluster.New(cfg)
	cat := tpch.BuildCatalog(5, nodes)
	for _, s := range cat.Specs() {
		c.AddBAT(s)
	}
	w := tpch.DefaultWorkload(nodes)
	w.QueriesPerNode = scale.apply(1200)
	rng := rand.New(rand.NewSource(seed))
	specs := w.Build(rng, cat)
	for _, q := range specs {
		c.Submit(q)
	}
	end := c.Run(4 * time.Hour)
	sec := end.Seconds()
	total := float64(len(specs))
	row := Table4Row{
		Label:          fmt.Sprintf("%d", nodes),
		Nodes:          nodes,
		ExecSeconds:    sec,
		Throughput:     total / sec,
		ThroughputNode: total / sec / float64(nodes),
	}
	// CPU% over the nodes that actually host queries.
	var busy time.Duration
	for i := 0; i < nodes; i++ {
		busy += c.NodeBusy(i)
	}
	row.CPUPercent = 100 * float64(busy) / float64(time.Duration(nodes*4)*end)
	return row
}

func (r *Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — TPC-H SF-5 (%d queries/node), scale=%.3f\n", Scale(r.Scale).apply(1200), float64(r.Scale))
	fmt.Fprintf(&b, "%-10s %-10s %-12s %-16s %-6s\n", "#nodes", "exec(sec)", "throughput", "throughP/node", "CPU%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-10.1f %-12.2f %-16.2f %-6.1f\n",
			row.Label, row.ExecSeconds, row.Throughput, row.ThroughputNode, row.CPUPercent)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// §6.3 — Pulsating rings (Figures 10, 11)
// ---------------------------------------------------------------------

// RingSizeRun holds the per-BAT maxima for one ring size.
type RingSizeRun struct {
	Nodes     int
	MaxReqLat *metrics.FloatMap
	MaxCycles *metrics.IntMap
	NumBATs   int
}

// Fig1011Result is the ring-size sweep.
type Fig1011Result struct {
	Runs  []RingSizeRun
	Scale Scale
}

// RingSizeSweep reproduces the §6.3 peek-preview experiment: the §5.3
// Gaussian workload with constant total query volume while the ring
// grows from 5 to 20 nodes.
func RingSizeSweep(scale Scale, seed int64, sizes []int) *Fig1011Result {
	if len(sizes) == 0 {
		sizes = []int{5, 10, 15, 20}
	}
	res := &Fig1011Result{Scale: scale}
	const totalRate = 800.0 // queries/sec over the whole ring
	for _, n := range sizes {
		c, rng, ds := ringScenario(n, seed, []float64{0.1, 0.6, 1.1}, true)
		owners := workload.Populate(c, ds.Build(rng))

		syn := workload.DefaultSynthetic(n)
		syn.Rate = totalRate / float64(n)
		syn.Duration = scale.dur(60 * time.Second)
		syn.NumBATs = ds.NumBATs
		syn.Pick = workload.GaussianPick(float64(ds.NumBATs)/2, float64(ds.NumBATs)/20, ds.NumBATs)
		specs := syn.Build(rng, owners)
		workload.Submit(c, specs)
		c.Run(10 * time.Minute)

		m := c.Metrics()
		res.Runs = append(res.Runs, RingSizeRun{
			Nodes:     n,
			MaxReqLat: m.MaxReqLat,
			MaxCycles: m.MaxCycles,
			NumBATs:   ds.NumBATs,
		})
	}
	return res
}

func (r *Fig1011Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 10/11 — ring size sweep, scale=%.3f\n", float64(r.Scale))
	for _, run := range r.Runs {
		// Peak over the in-vogue region and overall stats.
		maxLat, maxCycles := 0.0, 0
		for _, k := range run.MaxReqLat.Keys() {
			if v := run.MaxReqLat.Get(k); v > maxLat {
				maxLat = v
			}
		}
		for _, k := range run.MaxCycles.Keys() {
			if v := run.MaxCycles.Get(k); v > maxCycles {
				maxCycles = v
			}
		}
		fmt.Fprintf(&b, "  %2d nodes: max request latency=%.2fs  max cycles/BAT=%d\n",
			run.Nodes, maxLat, maxCycles)
	}
	b.WriteString("  (bigger rings keep in-vogue BATs alive longer — more cycles — which caps request latency)\n")
	return b.String()
}

// ---------------------------------------------------------------------
// §2.2 — Figure 1: CPU load breakdown
// ---------------------------------------------------------------------

// Fig1Row is one bar of Figure 1.
type Fig1Row struct {
	Stack     rdma.Stack
	Breakdown rdma.CPUBreakdown
}

// Fig1Result is the three-bar comparison.
type Fig1Result struct {
	Gbps, GHz float64
	Rows      []Fig1Row
}

// CPUBreakdown reproduces Figure 1 from the analytical model: CPU load
// of a 10 Gb/s transfer on the paper's 2.33 GHz quad-core (9.32 GHz
// aggregate).
func CPUBreakdown() *Fig1Result {
	const gbps, ghz = 10.0, 9.32
	res := &Fig1Result{Gbps: gbps, GHz: ghz}
	for _, s := range []rdma.Stack{rdma.LegacyStack, rdma.NICOffload, rdma.RDMA} {
		res.Rows = append(res.Rows, Fig1Row{Stack: s, Breakdown: rdma.CPUModel(s, gbps, ghz)})
	}
	return res
}

func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — CPU load at %.0f Gb/s on %.2f GHz aggregate\n", r.Gbps, r.GHz)
	fmt.Fprintf(&b, "%-24s %-8s %-8s %-8s %-8s %-8s\n", "stack", "net", "driver", "ctxsw", "copy", "total")
	for _, row := range r.Rows {
		d := row.Breakdown
		fmt.Fprintf(&b, "%-24s %-8.2f %-8.2f %-8.2f %-8.2f %-8.2f\n",
			row.Stack, d.NetworkStack, d.Driver, d.ContextSwitches, d.DataCopying, d.Total())
	}
	return b.String()
}
