package experiments

// Hot-set cache repeat-query sweep: the live-ring measurement behind
// the cache's reason to exist. The paper keeps hot data flowing so a
// query meets it in flight; the dual optimisation is that a node that
// just saw a fragment should not wait a full revolution to see it
// again. The sweep runs an identical repeat workload over the TPC-H
// ring at several CacheBytes settings (0 = cache off, the
// pure-circulation behavior) and records:
//
//   - pin latency: repeated whole pins of a fully-hot single-fragment
//     probe column owned by another node — pure ring wait versus pure
//     node-local read, no merge cost mixed in;
//   - query latency: the Q6-style selective aggregate repeated against
//     the fragmented lineitem columns;
//   - the cache's own accounting (hit rate, coalesced pins, ring-wait
//     time) and the ring traffic the repeat phase caused — with the
//     cache on and the set fully hot, circulation stops entirely.
//
// The repeats are spaced by a think time: intermittent re-reads are
// exactly the access pattern where pure circulation keeps paying ring
// latency for bytes the node already held.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/bat"
	"repro/internal/live"
	"repro/internal/tpch"
)

// CacheRun is one CacheBytes setting of the sweep.
type CacheRun struct {
	CacheBytes     int     `json:"cache_bytes"` // 0 = cache off
	Mode           string  `json:"mode"`
	PinP50Micros   int64   `json:"pin_p50_us"`
	PinP99Micros   int64   `json:"pin_p99_us"`
	QueryP50Micros int64   `json:"query_p50_us"`
	QueryP99Micros int64   `json:"query_p99_us"`
	Hits           int64   `json:"cache_hits"`
	Misses         int64   `json:"cache_misses"`
	Coalesced      int64   `json:"cache_coalesced"`
	HitRate        float64 `json:"hit_rate"`
	RingWaitMicros int64   `json:"ring_wait_us"`     // total time pins blocked on circulation
	RepeatHopBytes int64   `json:"repeat_hop_bytes"` // ring data traffic during the repeat phases
}

// CacheResult is the whole sweep.
type CacheResult struct {
	LineitemRows int        `json:"lineitem_rows"`
	Nodes        int        `json:"nodes"`
	Repeats      int        `json:"repeats"`
	ThinkMicros  int64      `json:"think_us"`
	Runs         []CacheRun `json:"runs"`
}

// probeRows sizes the single-fragment probe column (published by node
// 0, pinned from node 1): big enough that a ring delivery is real work,
// small enough to stay far under any ring message limit.
const probeRows = 32 << 10

// CacheSweep runs the repeat-query sweep: a TPC-H database with the
// given lineitem row count partitioned over a live ring of nodes, the
// repeat workload fired at each CacheBytes setting under the given
// eviction mode, one ring per setting so every run starts cold.
func CacheSweep(rows, nodes, repeats int, think time.Duration, budgets []int, mode live.CacheMode, seed int64) (*CacheResult, error) {
	db := tpch.GenDB(tpch.SFForLineitemRows(rows), seed)
	res := &CacheResult{
		LineitemRows: db.Rows("lineitem"),
		Nodes:        nodes,
		Repeats:      repeats,
		ThinkMicros:  think.Microseconds(),
	}
	for _, budget := range budgets {
		run, err := cacheRun(db, nodes, repeats, think, budget, mode)
		if err != nil {
			return nil, fmt.Errorf("cache sweep (bytes=%d): %w", budget, err)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

func cacheRun(db *tpch.DB, nodes, repeats int, think time.Duration, budget int, mode live.CacheMode) (CacheRun, error) {
	cfg := live.DefaultConfig()
	cfg.CacheBytes = budget
	cfg.CacheMode = mode
	ring, err := live.NewRing(nodes, db.ColumnMap(), db.Schema(), cfg)
	if err != nil {
		return CacheRun{}, err
	}
	defer ring.Close()

	// The probe: a single-fragment intermediate owned by node 0, pinned
	// repeatedly from node 1 — every pin crosses the ring unless the
	// cache serves it.
	vals := make([]int64, probeRows)
	for i := range vals {
		vals[i] = int64(i)
	}
	if _, err := ring.Node(0).Publish("hot.probe", bat.MakeInts("probe", vals)); err != nil {
		return CacheRun{}, err
	}
	reader := ring.Node(1)

	// Warm: one pin and one query so code paths and (when enabled) the
	// cache are primed before measuring.
	if _, err := reader.Fetch("hot.probe"); err != nil {
		return CacheRun{}, err
	}
	if rs, err := reader.ExecSQL(tpch.Q6ishSQL); err != nil {
		return CacheRun{}, err
	} else if rs.NumRows() != 1 {
		return CacheRun{}, fmt.Errorf("bad warmup result: %d rows", rs.NumRows())
	}
	hopsBefore := settleHopBytes(ring)

	pinLat := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		time.Sleep(think)
		start := time.Now()
		b, err := reader.Fetch("hot.probe")
		if err != nil {
			return CacheRun{}, err
		}
		if b.Len() != probeRows {
			return CacheRun{}, fmt.Errorf("probe pin returned %d rows, want %d", b.Len(), probeRows)
		}
		pinLat = append(pinLat, time.Since(start))
	}

	queryLat := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		time.Sleep(think)
		start := time.Now()
		rs, err := reader.ExecSQL(tpch.Q6ishSQL)
		if err != nil {
			return CacheRun{}, err
		}
		if rs.NumRows() != 1 {
			return CacheRun{}, fmt.Errorf("bad result: %d rows", rs.NumRows())
		}
		queryLat = append(queryLat, time.Since(start))
	}
	hopsAfter := settleHopBytes(ring)

	cs := ring.CacheStats()
	modeName := "off"
	if budget > 0 {
		modeName = mode.String()
	}
	return CacheRun{
		CacheBytes:     budget,
		Mode:           modeName,
		PinP50Micros:   quantileMicros(pinLat, 0.50),
		PinP99Micros:   quantileMicros(pinLat, 0.99),
		QueryP50Micros: quantileMicros(queryLat, 0.50),
		QueryP99Micros: quantileMicros(queryLat, 0.99),
		Hits:           cs.Hits,
		Misses:         cs.Misses,
		Coalesced:      cs.Coalesced,
		HitRate:        cs.HitRate(),
		RingWaitMicros: cs.RingWaitNanos / 1e3,
		RepeatHopBytes: hopsAfter - hopsBefore,
	}, nil
}

// settleHopBytes reads the ring's cumulative data traffic once
// in-flight sends stop changing it (bounded settle, as the fragment
// sweep does).
func settleHopBytes(r *live.Ring) int64 {
	settle := time.Now().Add(100 * time.Millisecond)
	last := r.HopBytes()
	for time.Now().Before(settle) {
		time.Sleep(10 * time.Millisecond)
		cur := r.HopBytes()
		if cur == last {
			break
		}
		last = cur
	}
	return last
}

func quantileMicros(lat []time.Duration, p float64) int64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))].Microseconds()
}

func (r *CacheResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot-set cache repeat sweep — lineitem %d rows over %d nodes, %d repeats, %dµs think\n",
		r.LineitemRows, r.Nodes, r.Repeats, r.ThinkMicros)
	fmt.Fprintf(&b, "%12s %6s %10s %10s %11s %11s %8s %10s %12s %12s\n",
		"cache_bytes", "mode", "pin_p50us", "pin_p99us", "query_p50us", "query_p99us",
		"hit_rate", "coalesced", "ringwait_us", "repeat_hop_B")
	for _, run := range r.Runs {
		name := fmt.Sprint(run.CacheBytes)
		if run.CacheBytes == 0 {
			name = "off"
		}
		fmt.Fprintf(&b, "%12s %6s %10d %10d %11d %11d %7.1f%% %10d %12d %12d\n",
			name, run.Mode, run.PinP50Micros, run.PinP99Micros,
			run.QueryP50Micros, run.QueryP99Micros,
			100*run.HitRate, run.Coalesced, run.RingWaitMicros, run.RepeatHopBytes)
	}
	return b.String()
}
