package experiments

// Fragment-granularity sweep: the live-ring rendition of the paper's §5
// granularity experiments. The unit of circulation is the fragment; its
// size trades hop latency and ring bandwidth against per-message
// overhead and hot-set flexibility. The sweep runs the same selective
// aggregate over the TPC-H ring at several FragmentRows settings
// (0 = fragmentation off, the pre-fragmentation behavior) and records
// query latency quantiles next to the ring's message sizing — the
// trade-off curve the paper sweeps, reproduced on real data movement.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/live"
	"repro/internal/tpch"
)

// FragRun is one fragment-size setting of the sweep.
type FragRun struct {
	FragmentRows int   `json:"fragment_rows"` // 0 = off
	Fragments    int   `json:"fragments"`     // fragments of lineitem.l_shipdate
	RegionBytes  int   `json:"region_bytes"`  // ring message limit == RDMA region sizing
	MaxHopBytes  int64 `json:"max_hop_bytes"` // largest data message observed
	HopBytes     int64 `json:"hop_bytes"`     // total ring data traffic during the run
	Queries      int   `json:"queries"`
	P50Micros    int64 `json:"p50_us"`
	P99Micros    int64 `json:"p99_us"`
}

// FragResult is the whole sweep.
type FragResult struct {
	LineitemRows int       `json:"lineitem_rows"`
	Nodes        int       `json:"nodes"`
	Runs         []FragRun `json:"runs"`
}

// FragmentSweep runs the granularity sweep: a TPC-H database with the
// given lineitem row count partitioned over a live ring of nodes, the
// Q6-style selective aggregate fired queries times per setting, one
// ring per FragmentRows setting.
func FragmentSweep(rows, nodes, queries int, fragRows []int, seed int64) (*FragResult, error) {
	db := tpch.GenDB(tpch.SFForLineitemRows(rows), seed)
	res := &FragResult{LineitemRows: db.Rows("lineitem"), Nodes: nodes}
	for _, fr := range fragRows {
		run, err := fragRun(db, nodes, queries, fr)
		if err != nil {
			return nil, fmt.Errorf("fragment sweep (rows=%d): %w", fr, err)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

func fragRun(db *tpch.DB, nodes, queries, fragRows int) (FragRun, error) {
	cfg := live.DefaultConfig()
	cfg.FragmentRows = fragRows
	// The sweep measures circulation granularity: disable the hot-set
	// cache so every query's pins actually ride the ring (with it on,
	// repeat queries skip circulation and the latency column would
	// measure the cache instead — that trade-off has its own sweep,
	// cmd/dccache), and disable hop batching, which would coalesce the
	// fragments back into large messages (that trade-off is cmd/dchop's
	// sweep — this one is its unbatched baseline).
	cfg.CacheBytes = 0
	cfg.HopBatchBytes = 0
	ring, err := live.NewRing(nodes, db.ColumnMap(), db.Schema(), cfg)
	if err != nil {
		return FragRun{}, err
	}
	defer ring.Close()

	lat := make([]time.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		start := time.Now()
		rs, err := ring.Node(i % nodes).ExecSQL(tpch.Q6ishSQL)
		if err != nil {
			return FragRun{}, err
		}
		if rs.NumRows() != 1 {
			return FragRun{}, fmt.Errorf("bad result: %d rows", rs.NumRows())
		}
		lat = append(lat, time.Since(start))
	}
	// MaxHopBytes is structural by now: answering the queries required
	// every requested fragment to complete at least one hop, so the
	// largest message size has been observed; later sends only repeat
	// known sizes. HopBytes is a snapshot of a still-rotating ring —
	// give in-flight send goroutines a short settle so the total
	// reflects the work the queries caused (settleHopBytes, shared with
	// the cache sweep), then read both.
	hopBytes := settleHopBytes(ring)
	frags, _ := ring.Fragments("lineitem.l_shipdate")
	return FragRun{
		FragmentRows: fragRows,
		Fragments:    len(frags),
		RegionBytes:  ring.MaxMessage(),
		MaxHopBytes:  ring.MaxHopBytes(),
		HopBytes:     hopBytes,
		Queries:      queries,
		P50Micros:    quantileMicros(lat, 0.50),
		P99Micros:    quantileMicros(lat, 0.99),
	}, nil
}

func (r *FragResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fragment granularity sweep — lineitem %d rows over %d nodes\n", r.LineitemRows, r.Nodes)
	fmt.Fprintf(&b, "%12s %10s %12s %13s %12s %10s %10s\n",
		"frag_rows", "fragments", "region_B", "max_hop_B", "hop_B", "p50_us", "p99_us")
	for _, run := range r.Runs {
		name := fmt.Sprint(run.FragmentRows)
		if run.FragmentRows == 0 {
			name = "off"
		}
		fmt.Fprintf(&b, "%12s %10d %12d %13d %12d %10d %10d\n",
			name, run.Fragments, run.RegionBytes, run.MaxHopBytes, run.HopBytes,
			run.P50Micros, run.P99Micros)
	}
	return b.String()
}
