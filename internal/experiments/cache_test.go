package experiments

import (
	"testing"
	"time"

	"repro/internal/live"
)

// TestCacheSweepSmoke runs a miniature repeat sweep end to end: the
// enabled run must actually hit the cache, beat pure circulation on
// pin latency, and cut the repeat-phase ring traffic.
func TestCacheSweepSmoke(t *testing.T) {
	res, err := CacheSweep(40_000, 3, 8, time.Millisecond, []int{0, 32 << 20}, live.CacheLOI, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	off, on := res.Runs[0], res.Runs[1]
	if off.Hits != 0 || off.HitRate != 0 {
		t.Fatalf("cache-off run hit a cache: %+v", off)
	}
	if on.Hits == 0 || on.HitRate <= 0 {
		t.Fatalf("cache-on run never hit: %+v", on)
	}
	if on.PinP99Micros >= off.PinP99Micros {
		t.Fatalf("cached pin p99 %dµs not below circulation %dµs", on.PinP99Micros, off.PinP99Micros)
	}
	if off.RingWaitMicros == 0 {
		t.Fatal("cache-off run recorded no ring wait")
	}
	for _, run := range res.Runs {
		if run.PinP50Micros < 0 || run.PinP99Micros < run.PinP50Micros {
			t.Fatalf("bad pin quantiles: %+v", run)
		}
		if run.QueryP50Micros <= 0 || run.QueryP99Micros < run.QueryP50Micros {
			t.Fatalf("bad query quantiles: %+v", run)
		}
	}
	if res.String() == "" {
		t.Fatal("empty report")
	}
}
