package cluster

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// smallConfig returns a fast 4-node ring with generous queues.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Ring.Data.QueueCap = 50 << 20
	cfg.Core.LOITLevels = []float64{0.1}
	cfg.Core.AdaptiveLOIT = false
	return cfg
}

// buildUniform populates nBATs fragments of size each, owners round-robin.
func buildUniform(c *Cluster, nBATs, size int) {
	for i := 0; i < nBATs; i++ {
		c.AddBAT(BATSpec{
			ID:    core.BATID(i),
			Size:  size,
			Owner: core.NodeID(i % c.Nodes()),
		})
	}
}

func TestSingleQueryCompletes(t *testing.T) {
	c := New(smallConfig())
	buildUniform(c, 8, 1<<20)
	// Query at node 0 for a BAT owned by node 2 (remote).
	c.Submit(QuerySpec{
		ID: 1, Node: 0, Arrival: 0,
		Steps: []Step{{BAT: 2, Proc: 50 * time.Millisecond}},
	})
	end := c.Run(time.Minute)
	if c.QueriesDone() != 1 {
		t.Fatalf("done = %d, want 1", c.QueriesDone())
	}
	if end <= 0 || end > 10*time.Second {
		t.Fatalf("end = %v, unreasonable", end)
	}
	m := c.Metrics()
	if m.Finished.Count() != 1 || m.Errors != 0 {
		t.Fatalf("finished=%d errors=%d", m.Finished.Count(), m.Errors)
	}
	if m.Loads.Get(2) != 1 {
		t.Fatalf("BAT 2 loads = %d, want 1", m.Loads.Get(2))
	}
	if m.Touches.Get(2) != 1 {
		t.Fatalf("BAT 2 touches = %d, want 1", m.Touches.Get(2))
	}
	// Lifetime must include at least the processing time.
	if m.Lifetime.Max() < 0.05 {
		t.Fatalf("lifetime = %v, want >= 50ms", m.Lifetime.Max())
	}
}

func TestManyQueriesAllFinish(t *testing.T) {
	cfg := smallConfig()
	cfg.Core.AdaptiveLOIT = true
	cfg.Core.LOITLevels = []float64{0.1, 0.6, 1.1}
	c := New(cfg)
	buildUniform(c, 40, 1<<20)
	rng := rand.New(rand.NewSource(1))
	const nq = 200
	for q := 0; q < nq; q++ {
		node := core.NodeID(rng.Intn(c.Nodes()))
		nb := 1 + rng.Intn(5)
		var steps []Step
		for j := 0; j < nb; j++ {
			// remote BATs only, as in §5
			b := core.BATID(rng.Intn(40))
			for b%core.BATID(c.Nodes()) == core.BATID(node) {
				b = core.BATID(rng.Intn(40))
			}
			steps = append(steps, Step{BAT: b, Proc: time.Duration(100+rng.Intn(100)) * time.Millisecond})
		}
		c.Submit(QuerySpec{
			ID: core.QueryID(q), Node: node,
			Arrival: time.Duration(rng.Intn(5000)) * time.Millisecond,
			Steps:   steps,
		})
	}
	c.Run(10 * time.Minute)
	if c.QueriesDone() != nq {
		t.Fatalf("done = %d, want %d", c.QueriesDone(), nq)
	}
	m := c.Metrics()
	if m.Finished.Count() != nq {
		t.Fatalf("finished = %d", m.Finished.Count())
	}
	if m.Errors != 0 {
		t.Fatalf("errors = %d", m.Errors)
	}
	// Conservation: every load was eventually matched by at most one
	// unload; loaded bytes accounting must be non-negative.
	if c.LoadedBytes() < 0 {
		t.Fatalf("negative loaded bytes %d", c.LoadedBytes())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (time.Duration, int, float64) {
		c := New(smallConfig())
		buildUniform(c, 20, 1<<20)
		rng := rand.New(rand.NewSource(7))
		for q := 0; q < 50; q++ {
			node := core.NodeID(rng.Intn(c.Nodes()))
			b := core.BATID((rng.Intn(20)/c.Nodes())*c.Nodes() + (int(node)+1)%c.Nodes())
			c.Submit(QuerySpec{
				ID: core.QueryID(q), Node: node,
				Arrival: time.Duration(rng.Intn(1000)) * time.Millisecond,
				Steps:   []Step{{BAT: b, Proc: 100 * time.Millisecond}},
			})
		}
		end := c.Run(time.Minute)
		return end, c.QueriesDone(), c.Metrics().Lifetime.Mean()
	}
	e1, d1, l1 := run()
	e2, d2, l2 := run()
	if e1 != e2 || d1 != d2 || l1 != l2 {
		t.Fatalf("replay diverged: (%v,%d,%v) vs (%v,%d,%v)", e1, d1, l1, e2, d2, l2)
	}
}

func TestHotSetEvictionUnderStaticLOIT(t *testing.T) {
	// With the highest static LOIT of §5.1 (1.1 > max achievable CAVG of
	// 1.0), every BAT is evicted after each cycle.
	cfg := smallConfig()
	cfg.Core.LOITLevels = []float64{1.1}
	c := New(cfg)
	buildUniform(c, 8, 1<<20)
	c.Submit(QuerySpec{ID: 1, Node: 0, Arrival: 0,
		Steps: []Step{{BAT: 1, Proc: 10 * time.Millisecond}}})
	c.Run(time.Minute)
	if c.QueriesDone() != 1 {
		t.Fatal("query did not finish")
	}
	// Let the BAT complete its circulation and be evicted.
	c.RunFor(5 * time.Second)
	if got := c.LoadedBytes(); got != 0 {
		t.Fatalf("hot set = %d bytes after eviction, want 0", got)
	}
	if c.Metrics().MaxCycles.Get(1) < 1 {
		t.Fatal("BAT never completed a cycle")
	}
}

func TestHotSetRetentionUnderLowLOIT(t *testing.T) {
	// With LOIT 0 nothing is ever evicted: the BAT keeps cycling.
	cfg := smallConfig()
	cfg.Core.LOITLevels = []float64{0}
	c := New(cfg)
	buildUniform(c, 8, 1<<20)
	c.Submit(QuerySpec{ID: 1, Node: 0, Arrival: 0,
		Steps: []Step{{BAT: 1, Proc: 10 * time.Millisecond}}})
	c.Run(time.Minute)
	c.RunFor(5 * time.Second)
	if got := c.LoadedBytes(); got != 1<<20 {
		t.Fatalf("hot set = %d, want BAT to stay loaded", got)
	}
	if c.Metrics().MaxCycles.Get(1) < 3 {
		t.Fatalf("cycles = %d, want several", c.Metrics().MaxCycles.Get(1))
	}
}

func TestRingFullPostponesLoads(t *testing.T) {
	cfg := smallConfig()
	cfg.Ring.Data.QueueCap = 3 << 20   // tiny queues: ~3 BATs per node
	cfg.Core.LOITLevels = []float64{0} // never evict: pressure builds
	c := New(cfg)
	buildUniform(c, 32, 1<<20)
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 64; q++ {
		node := core.NodeID(rng.Intn(4))
		b := core.BATID(rng.Intn(32))
		for int(b)%4 == int(node) {
			b = core.BATID(rng.Intn(32))
		}
		c.Submit(QuerySpec{ID: core.QueryID(q), Node: node, Arrival: 0,
			Steps: []Step{{BAT: b, Proc: 10 * time.Millisecond}}})
	}
	c.RunFor(3 * time.Second)
	postponed := uint64(0)
	for i := 0; i < c.Nodes(); i++ {
		postponed += c.Node(i).Stats().PendingPostponed
	}
	if postponed == 0 {
		t.Fatal("expected postponed loads with tiny ring capacity")
	}
}

func TestAdaptiveLOITStepsUnderLoad(t *testing.T) {
	cfg := smallConfig()
	cfg.Ring.Data.QueueCap = 4 << 20
	// Lowest level 0 = no eviction, so the hot set grows until the high
	// watermark must trip and step the threshold up.
	cfg.Core.LOITLevels = []float64{0, 0.6, 1.1}
	cfg.Core.AdaptiveLOIT = true
	c := New(cfg)
	buildUniform(c, 32, 1<<20)
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 128; q++ {
		node := core.NodeID(rng.Intn(4))
		var steps []Step
		for j := 0; j < 3; j++ {
			b := core.BATID(rng.Intn(32))
			for int(b)%4 == int(node) {
				b = core.BATID(rng.Intn(32))
			}
			steps = append(steps, Step{BAT: b, Proc: 50 * time.Millisecond})
		}
		c.Submit(QuerySpec{ID: core.QueryID(q), Node: node, Arrival: 0, Steps: steps})
	}
	c.Run(2 * time.Minute)
	steps := uint64(0)
	for i := 0; i < c.Nodes(); i++ {
		steps += c.Node(i).Stats().LOITSteps
	}
	if steps == 0 {
		t.Fatal("adaptive LOIT never stepped despite pressure")
	}
	if c.QueriesDone() != 128 {
		t.Fatalf("done = %d, want 128", c.QueriesDone())
	}
}

func TestWorkloadTagsTracked(t *testing.T) {
	c := New(smallConfig())
	for i := 0; i < 8; i++ {
		tag := "dh1"
		if i >= 4 {
			tag = "dh2"
		}
		c.AddBAT(BATSpec{ID: core.BATID(i), Size: 1 << 20, Owner: core.NodeID(i % 4), Tag: tag})
	}
	c.Submit(QuerySpec{ID: 1, Node: 0, Arrival: 0, Tag: "sw1",
		Steps: []Step{{BAT: 1, Proc: 10 * time.Millisecond}}})
	c.Submit(QuerySpec{ID: 2, Node: 1, Arrival: 0, Tag: "sw2",
		Steps: []Step{{BAT: 6, Proc: 10 * time.Millisecond}}})
	c.Run(time.Minute)
	m := c.Metrics()
	if m.FinishedByTag["sw1"].Count() != 1 || m.FinishedByTag["sw2"].Count() != 1 {
		t.Fatalf("per-tag finished wrong: %v", m.FinishedByTag)
	}
	if m.RingBytesByTag["dh1"].Max() == 0 || m.RingBytesByTag["dh2"].Max() == 0 {
		t.Fatal("per-tag ring bytes not tracked")
	}
}

func TestCPUCoreScheduling(t *testing.T) {
	cfg := smallConfig()
	cfg.CoresPerNode = 2
	c := New(cfg)
	buildUniform(c, 8, 1<<20)
	// 4 queries on node 0, each 1s of CPU after a remote pin. With 2
	// cores the CPU phases serialize in pairs.
	for q := 0; q < 4; q++ {
		c.Submit(QuerySpec{ID: core.QueryID(q), Node: 0, Arrival: 0,
			Steps: []Step{{BAT: core.BATID(q*2 + 1), Proc: time.Second}}})
	}
	end := c.Run(time.Minute)
	if c.QueriesDone() != 4 {
		t.Fatalf("done = %d", c.QueriesDone())
	}
	// 4s of CPU over 2 cores >= 2s wall clock.
	if end < 2*time.Second {
		t.Fatalf("end = %v, want >= 2s (core contention)", end)
	}
	if got := c.NodeBusy(0); got != 4*time.Second {
		t.Fatalf("node 0 busy = %v, want 4s", got)
	}
	util := c.CPUUtilization(end)
	if util <= 0 || util > 1 {
		t.Fatalf("utilization = %v", util)
	}
}

func TestRequestLatencyRecorded(t *testing.T) {
	c := New(smallConfig())
	buildUniform(c, 8, 4<<20)
	c.Submit(QuerySpec{ID: 1, Node: 0, Arrival: 0,
		Steps: []Step{{BAT: 2, Proc: time.Millisecond}}})
	c.Run(time.Minute)
	if lat := c.Metrics().MaxReqLat.Get(2); lat <= 0 {
		t.Fatalf("request latency = %v, want > 0", lat)
	}
}

func TestNonexistentBATAbortsQuery(t *testing.T) {
	c := New(smallConfig())
	buildUniform(c, 8, 1<<20)
	c.Submit(QuerySpec{ID: 1, Node: 0, Arrival: 0,
		Steps: []Step{{BAT: 999, Proc: time.Millisecond}}}) // no owner
	c.Run(time.Minute)
	if c.Metrics().Errors != 1 {
		t.Fatalf("errors = %d, want 1 (BAT does not exist)", c.Metrics().Errors)
	}
	if c.QueriesDone() != 1 {
		t.Fatal("aborted query should still be accounted done")
	}
}

func TestRequestLossRecoveredByResend(t *testing.T) {
	cfg := smallConfig()
	// Request links with a 1-message queue: concurrent requests drop.
	cfg.Ring.Request = netsim.LinkConfig{Bandwidth: 1.25e9, Delay: 350 * time.Microsecond, QueueCap: core.RequestWireSize}
	cfg.Core.ResendTimeout = 500 * time.Millisecond
	c := New(cfg)
	buildUniform(c, 32, 1<<18)
	rng := rand.New(rand.NewSource(9))
	for q := 0; q < 60; q++ {
		node := core.NodeID(rng.Intn(4))
		b := core.BATID(rng.Intn(32))
		for int(b)%4 == int(node) {
			b = core.BATID(rng.Intn(32))
		}
		c.Submit(QuerySpec{ID: core.QueryID(q), Node: node,
			Arrival: time.Duration(q*17) * time.Millisecond,
			Steps:   []Step{{BAT: b, Proc: time.Millisecond}}})
	}
	c.Run(5 * time.Minute)
	if c.QueriesDone() != 60 {
		t.Fatalf("done = %d, want 60 despite request drops", c.QueriesDone())
	}
	drops := uint64(0)
	for i := 0; i < 4; i++ {
		drops += c.ring.RequestLink(i).Stats().Dropped
	}
	resends := uint64(0)
	for i := 0; i < 4; i++ {
		resends += c.Node(i).Stats().Resends
	}
	if drops > 0 && resends == 0 {
		t.Fatalf("drops = %d but no resends fired", drops)
	}
}

func TestTotalProcHelper(t *testing.T) {
	q := QuerySpec{
		InitialThink: 100 * time.Millisecond,
		Steps: []Step{
			{BAT: 1, Proc: 200 * time.Millisecond},
			{BAT: 2, Proc: 300 * time.Millisecond},
		},
	}
	if got := q.TotalProc(); got != 600*time.Millisecond {
		t.Fatalf("TotalProc = %v", got)
	}
}

func TestPanicsOnBadSpecs(t *testing.T) {
	c := New(smallConfig())
	c.AddBAT(BATSpec{ID: 1, Size: 10, Owner: 0})
	for _, fn := range []func(){
		func() { c.AddBAT(BATSpec{ID: 1, Size: 10, Owner: 0}) },  // dup
		func() { c.AddBAT(BATSpec{ID: 2, Size: 10, Owner: 99}) }, // bad owner
		func() { c.Submit(QuerySpec{ID: 9, Node: 99}) },          // bad node
		func() { New(Config{Nodes: 1}) },                         // too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
