package cluster

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

// Failure-injection tests: the robustness properties §4.2.3 claims
// ("robust against request losses and starvation due to scheduling
// anomalies") plus membership churn with data in flight.

func TestInFlightBATAdoptedAfterRemoval(t *testing.T) {
	cfg := smallConfig()
	cfg.Nodes = 4
	cfg.Core.LOITLevels = []float64{0} // keep BATs circulating
	c := New(cfg)
	buildUniform(c, 8, 1<<20)

	// Load a BAT owned by node 3 into the ring and let it circulate.
	c.Submit(QuerySpec{ID: 1, Node: 1, Arrival: 0,
		Steps: []Step{{BAT: 3, Proc: 10 * time.Millisecond}}})
	c.Run(time.Minute)
	if !c.Node(3).Loaded(3) {
		t.Fatal("BAT 3 not loaded at its owner")
	}

	// Remove the owner while its BAT is mid-flight. The successor
	// (node 0) adopts it; the circulating copy must be recognized and
	// kept under hot-set management rather than orbiting forever.
	if err := c.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	if !c.Node(0).Owns(3) || !c.Node(0).Loaded(3) {
		t.Fatal("adoption did not preserve hot-set state")
	}
	// New queries for the adopted BAT are served by the new owner.
	c.Submit(QuerySpec{ID: 2, Node: 1, Arrival: c.Sim().Now().Sub(0),
		Steps: []Step{{BAT: 3, Proc: 10 * time.Millisecond}}})
	c.Run(5 * time.Minute)
	if c.QueriesDone() != 2 || c.Metrics().Errors != 0 {
		t.Fatalf("done=%d errors=%d", c.QueriesDone(), c.Metrics().Errors)
	}
	// The adopted BAT must eventually pass hot-set management at the
	// new owner (cycle accounting continues).
	if c.Metrics().MaxCycles.Get(3) == 0 {
		t.Fatal("adopted BAT never completed a cycle at its new owner")
	}
}

func TestStarvationRecoveryViaLoadAll(t *testing.T) {
	// A big BAT is starved by small ones filling the queue; once demand
	// fades, loadAll must eventually admit it (§4.2.3/§5.1).
	cfg := smallConfig()
	cfg.Ring.Data.QueueCap = 4 << 20
	cfg.Core.LOITLevels = []float64{0.4}
	c := New(cfg)
	// One 3MB BAT and many 1MB BATs, all owned by node 0.
	c.AddBAT(BATSpec{ID: 100, Size: 3 << 20, Owner: 0})
	for i := 0; i < 12; i++ {
		c.AddBAT(BATSpec{ID: core.BATID(i), Size: 1 << 20, Owner: 0})
	}
	rng := rand.New(rand.NewSource(2))
	// Heavy interest in the small BATs...
	for q := 0; q < 60; q++ {
		c.Submit(QuerySpec{ID: core.QueryID(q), Node: core.NodeID(1 + rng.Intn(3)),
			Arrival: time.Duration(q*30) * time.Millisecond,
			Steps:   []Step{{BAT: core.BATID(rng.Intn(12)), Proc: 50 * time.Millisecond}}})
	}
	// ...and one query for the big one.
	c.Submit(QuerySpec{ID: 999, Node: 2, Arrival: 0,
		Steps: []Step{{BAT: 100, Proc: 10 * time.Millisecond}}})
	c.Run(10 * time.Minute)
	if c.QueriesDone() != 61 {
		t.Fatalf("done = %d, want 61 (big-BAT query must not starve forever)", c.QueriesDone())
	}
	if c.Metrics().Loads.Get(100) == 0 {
		t.Fatal("big BAT never admitted")
	}
}

func TestResendSurvivesRepeatedLoss(t *testing.T) {
	// Extremely lossy request links: every burst beyond one in-flight
	// message drops. Resend must still drive completion.
	cfg := smallConfig()
	cfg.Ring.Request.QueueCap = core.RequestWireSize
	cfg.Core.ResendTimeout = 300 * time.Millisecond
	c := New(cfg)
	buildUniform(c, 16, 1<<19)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 30; q++ {
		node := core.NodeID(rng.Intn(4))
		b := core.BATID(rng.Intn(16))
		for int(b)%4 == int(node) {
			b = core.BATID(rng.Intn(16))
		}
		// Deliberately bursty arrivals: multiple same-instant requests.
		c.Submit(QuerySpec{ID: core.QueryID(q), Node: node,
			Arrival: time.Duration(q/6) * 100 * time.Millisecond,
			Steps:   []Step{{BAT: b, Proc: time.Millisecond}}})
	}
	c.Run(5 * time.Minute)
	if c.QueriesDone() != 30 {
		t.Fatalf("done = %d, want 30", c.QueriesDone())
	}
}

func TestChurnManyMembershipChanges(t *testing.T) {
	cfg := smallConfig()
	cfg.Nodes = 5
	cfg.SpareNodes = 2
	c := New(cfg)
	buildUniform(c, 40, 1<<20)
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 150; q++ {
		node := core.NodeID(rng.Intn(5))
		b := core.BATID(rng.Intn(40))
		for int(b)%5 == int(node) {
			b = core.BATID(rng.Intn(40))
		}
		c.Submit(QuerySpec{ID: core.QueryID(q), Node: node,
			Arrival: time.Duration(rng.Intn(8000)) * time.Millisecond,
			Steps:   []Step{{BAT: b, Proc: 30 * time.Millisecond}}})
	}
	// Interleave growth and shrink while the workload runs.
	c.RunFor(time.Second)
	if _, err := c.ActivateNode(); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if err := c.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if _, err := c.ActivateNode(); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if err := c.RemoveNode(4); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Minute)
	if c.QueriesDone() != 150 {
		t.Fatalf("done = %d, want 150 across churn", c.QueriesDone())
	}
}
