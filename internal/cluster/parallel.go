package cluster

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file implements the §6.1 query-processing extensions:
//
//   - the nomadic phase: a query is not bound to its entry node; it
//     asks the ring for bids and settles on the cheapest node;
//   - intra-query parallelism: a query splits into sub-queries over
//     disjoint BAT subsets that settle on different nodes and merge
//     their results at the end.

// SubmitNomadic schedules the query like Submit, but at arrival time
// the query chases its data requests upstream and settles on the node
// with the lowest bid (fewest outstanding queries) instead of its
// entry node.
func (c *Cluster) SubmitNomadic(spec QuerySpec) {
	c.queriesTotal++
	c.sim.ScheduleAt(sim.Time(spec.Arrival), func() {
		if best := c.leastLoadedNodes(1); len(best) == 1 {
			spec.Node = core.NodeID(best[0])
		}
		c.nodes[spec.Node].startQuery(spec)
	})
}

// parallelQuery coordinates the sub-queries of one split query.
type parallelQuery struct {
	c       *Cluster
	spec    QuerySpec
	start   sim.Time
	pending int
	failed  bool
}

// SubmitParallel splits the query's steps into up to k sub-queries over
// disjoint BAT subsets, settles each on a different lightly-loaded node
// (nomadic bidding), and merges: the query finishes when every
// sub-query has finished. Metrics account one registered/finished query.
func (c *Cluster) SubmitParallel(spec QuerySpec, k int) {
	if k < 1 {
		k = 1
	}
	c.queriesTotal++
	c.sim.ScheduleAt(sim.Time(spec.Arrival), func() {
		parts := splitSteps(spec.Steps, k)
		nodes := c.leastLoadedNodes(len(parts))
		pq := &parallelQuery{c: c, spec: spec, start: c.sim.Now(), pending: len(parts)}
		c.m.Registered.Add(c.sim.Now().Seconds())
		for i, steps := range parts {
			node := spec.Node
			if i < len(nodes) {
				node = core.NodeID(nodes[i])
			}
			sub := QuerySpec{
				ID:    spec.ID<<8 | core.QueryID(i+1),
				Node:  node,
				Steps: steps,
				Tag:   spec.Tag,
			}
			c.nodes[node].startSubQuery(sub, pq)
		}
	})
}

// splitSteps partitions steps round-robin into at most k non-empty
// disjoint subsets.
func splitSteps(steps []Step, k int) [][]Step {
	if k > len(steps) {
		k = len(steps)
	}
	if k < 1 {
		k = 1
	}
	parts := make([][]Step, k)
	for i, s := range steps {
		parts[i%k] = append(parts[i%k], s)
	}
	return parts
}

// childDone merges one finished sub-query.
func (pq *parallelQuery) childDone(failed bool) {
	pq.pending--
	if failed {
		pq.failed = true
	}
	if pq.pending > 0 {
		return
	}
	c := pq.c
	c.queriesDone++
	now := c.sim.Now()
	if pq.failed {
		c.m.Errors++
		return
	}
	c.m.Finished.Add(now.Seconds())
	c.m.Lifetime.Observe(now.Sub(pq.start).Seconds())
	if pq.spec.Tag != "" {
		ev := c.m.FinishedByTag[pq.spec.Tag]
		if ev == nil {
			ev = &metrics.Events{Name: "finished-" + pq.spec.Tag}
			c.m.FinishedByTag[pq.spec.Tag] = ev
		}
		ev.Add(now.Seconds())
	}
}
