// Package cluster assembles a simulated Data Cyclotron ring: N nodes,
// each running the core runtime, wired through the netsim storage ring,
// driven by the discrete-event kernel. It is the counterpart of the
// paper's NS-2 setup (§5): queries arrive at nodes, issue request() for
// the BATs they touch, block in pin() until fragments flow past, spend
// CPU time per fragment, and finish. The package records every metric
// the evaluation section plots.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Config describes one simulated ring.
type Config struct {
	// Nodes is the ring size (paper base topology: 10).
	Nodes int
	// Ring holds the link parameters (defaults are the paper's:
	// 10 Gb/s, 350 µs, 200 MB DropTail BAT queues).
	Ring netsim.RingConfig
	// Core configures the DC runtime on every node.
	Core core.Config
	// CoresPerNode bounds CPU parallelism per node (TPC-H uses 4).
	// Zero means unlimited (the synthetic workloads of §5.1-5.3).
	CoresPerNode int
	// SpareNodes are built inactive, awaiting ActivateNode — the named
	// service of §6.3's pulsating rings.
	SpareNodes int
	// SampleEvery controls metric sampling granularity.
	SampleEvery time.Duration
}

// DefaultConfig mirrors the paper's base topology.
func DefaultConfig() Config {
	return Config{
		Nodes:       10,
		Ring:        netsim.DefaultRingConfig(),
		Core:        core.DefaultConfig(),
		SampleEvery: time.Second,
	}
}

// BATSpec declares one data fragment.
type BATSpec struct {
	ID    core.BATID
	Size  int
	Owner core.NodeID
	Tag   string // workload tag (e.g. "dh1") for per-hot-set accounting
}

// Step is one pin in a query's execution: pin BAT, then spend Proc of
// CPU once it is delivered, then unpin.
type Step struct {
	BAT  core.BATID
	Proc time.Duration
}

// QuerySpec declares one query.
type QuerySpec struct {
	ID      core.QueryID
	Node    core.NodeID
	Arrival time.Duration
	// InitialThink is CPU time before the first pin (the OpT1 of the
	// TPC-H calibration, §5.4); zero for the synthetic workloads.
	InitialThink time.Duration
	Steps        []Step
	Tag          string // workload tag (e.g. "sw1") for Figure 8b
}

// TotalProc reports the net execution time: the sum of all CPU segments.
func (q *QuerySpec) TotalProc() time.Duration {
	total := q.InitialThink
	for _, s := range q.Steps {
		total += s.Proc
	}
	return total
}

// Metrics aggregates everything the experiments plot.
type Metrics struct {
	Registered *metrics.Events // query arrival times
	Finished   *metrics.Events // query completion times
	Lifetime   *metrics.Histogram
	// FinishedByTag and RingBytesByTag drive Figure 8.
	FinishedByTag  map[string]*metrics.Events
	RingBytesByTag map[string]*metrics.Series
	// RingBytes/RingBATs are the Figure 7 series (loaded hot set).
	RingBytes *metrics.Series
	RingBATs  *metrics.Series
	// QueueBytes samples the sum of outbound BAT queues.
	QueueBytes *metrics.Series
	// Per-BAT counters for Figures 9-11.
	Touches   *metrics.IntMap   // deliveries to queries
	Requests  *metrics.IntMap   // request messages sent (incl. resends)
	Loads     *metrics.IntMap   // hot-set admissions
	MaxCycles *metrics.IntMap   // max cycles survived
	MaxReqLat *metrics.FloatMap // max request->delivery latency (sec)
	// Errors counts queries aborted by "BAT does not exist".
	Errors int
}

func newMetrics() *Metrics {
	return &Metrics{
		Registered:     &metrics.Events{Name: "registered"},
		Finished:       &metrics.Events{Name: "finished"},
		Lifetime:       metrics.NewHistogram("lifetime", 5),
		FinishedByTag:  map[string]*metrics.Events{},
		RingBytesByTag: map[string]*metrics.Series{},
		RingBytes:      &metrics.Series{Name: "ring-bytes"},
		RingBATs:       &metrics.Series{Name: "ring-bats"},
		QueueBytes:     &metrics.Series{Name: "queue-bytes"},
		Touches:        metrics.NewIntMap("touches"),
		Requests:       metrics.NewIntMap("requests"),
		Loads:          metrics.NewIntMap("loads"),
		MaxCycles:      metrics.NewIntMap("max-cycles"),
		MaxReqLat:      metrics.NewFloatMap("max-request-latency"),
	}
}

// Cluster is one simulated Data Cyclotron ring.
type Cluster struct {
	cfg   Config
	sim   *sim.Simulator
	ring  *netsim.Ring
	nodes []*Node
	bats  map[core.BATID]BATSpec
	m     *Metrics

	queriesActive int
	queriesTotal  int
	queriesDone   int

	// hot-set accounting (sum of loaded BAT sizes, owner view)
	loadedBytes  int
	loadedBATs   int
	loadedByTag  map[string]int
	stopSampling func()
}

// New builds a cluster. BATs and queries are added afterwards.
func New(cfg Config) *Cluster {
	if cfg.Nodes < 2 {
		panic("cluster: need at least 2 nodes")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Second
	}
	c := &Cluster{
		cfg:         cfg,
		sim:         sim.New(),
		bats:        map[core.BATID]BATSpec{},
		m:           newMetrics(),
		loadedByTag: map[string]int{},
	}
	total := cfg.Nodes + cfg.SpareNodes
	handlers := make([]netsim.Handler, total)
	for i := 0; i < total; i++ {
		n := newNode(c, core.NodeID(i))
		c.nodes = append(c.nodes, n)
		handlers[i] = n
	}
	c.ring = netsim.NewRing(c.sim, cfg.Ring, handlers)
	for i, n := range c.nodes {
		if i >= cfg.Nodes {
			c.ring.SetActive(i, false) // spare, awaiting call of duty
			continue
		}
		n.rt.Start()
	}
	c.stopSampling = c.sim.Ticker(cfg.SampleEvery, c.sample)
	return c
}

// Sim exposes the event kernel (for tests and custom drivers).
func (c *Cluster) Sim() *sim.Simulator { return c.sim }

// Metrics returns the recorded measurements.
func (c *Cluster) Metrics() *Metrics { return c.m }

// Node returns node i's runtime (for inspection).
func (c *Cluster) Node(i int) *core.Runtime { return c.nodes[i].rt }

// Nodes reports the initially-active ring size (spares excluded).
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// TotalNodes reports all built nodes, including inactive spares.
func (c *Cluster) TotalNodes() int { return len(c.nodes) }

// QueriesDone reports completed queries.
func (c *Cluster) QueriesDone() int { return c.queriesDone }

// QueriesTotal reports submitted queries.
func (c *Cluster) QueriesTotal() int { return c.queriesTotal }

// LoadedBytes reports the current hot-set size in bytes (owner view).
func (c *Cluster) LoadedBytes() int { return c.loadedBytes }

// AddBAT registers a fragment with its owner's S1 catalog.
func (c *Cluster) AddBAT(spec BATSpec) {
	if _, dup := c.bats[spec.ID]; dup {
		panic(fmt.Sprintf("cluster: duplicate BAT %d", spec.ID))
	}
	if int(spec.Owner) < 0 || int(spec.Owner) >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: BAT %d owner %d out of range", spec.ID, spec.Owner))
	}
	c.bats[spec.ID] = spec
	c.nodes[spec.Owner].rt.AddOwned(spec.ID, spec.Size)
}

// BAT looks up a fragment spec.
func (c *Cluster) BAT(id core.BATID) (BATSpec, bool) {
	s, ok := c.bats[id]
	return s, ok
}

// Submit schedules a query for execution at its arrival time.
func (c *Cluster) Submit(spec QuerySpec) {
	if int(spec.Node) < 0 || int(spec.Node) >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: query %d node %d out of range", spec.ID, spec.Node))
	}
	c.queriesTotal++
	c.sim.ScheduleAt(sim.Time(spec.Arrival), func() {
		// A node that left the ring (§6.3) no longer accepts queries;
		// route to its clockwise successor instead.
		if !c.ring.Active(int(spec.Node)) {
			spec.Node = core.NodeID(c.nextActiveAfter(int(spec.Node)))
		}
		c.nodes[spec.Node].startQuery(spec)
	})
}

// Run advances the simulation until all submitted queries finished or
// maxTime elapses, whichever comes first. It returns the virtual time
// at the end of the run.
func (c *Cluster) Run(maxTime time.Duration) time.Duration {
	limit := sim.Time(maxTime)
	for c.sim.Now() < limit {
		if c.queriesDone >= c.queriesTotal && c.sim.Now() > 0 {
			break
		}
		if !c.sim.Step() {
			break
		}
	}
	c.sample() // final sample
	return time.Duration(c.sim.Now())
}

// RunFor advances the simulation for exactly d of virtual time,
// regardless of query completion.
func (c *Cluster) RunFor(d time.Duration) {
	c.sim.RunUntil(c.sim.Now().Add(d))
	c.sample()
}

// sample records the periodic ring-load series.
func (c *Cluster) sample() {
	t := c.sim.Now().Seconds()
	c.m.RingBytes.Add(t, float64(c.loadedBytes))
	c.m.RingBATs.Add(t, float64(c.loadedBATs))
	c.m.QueueBytes.Add(t, float64(c.ring.TotalDataQueued()))
	for tag, bytes := range c.loadedByTag {
		s := c.m.RingBytesByTag[tag]
		if s == nil {
			s = &metrics.Series{Name: "ring-bytes-" + tag}
			c.m.RingBytesByTag[tag] = s
		}
		s.Add(t, float64(bytes))
	}
}

// ---------------------------------------------------------------------
// Node: Env implementation + query execution
// ---------------------------------------------------------------------

// Node is one simulated ring participant.
type Node struct {
	c  *Cluster
	id core.NodeID
	rt *core.Runtime

	queries map[core.QueryID]*queryRun

	// CPU core scheduler (TPC-H mode): next free time per core.
	coreFree []sim.Time
	busy     time.Duration // accumulated CPU busy time

	// reqIssued records when the first outstanding request for a BAT
	// was sent, to measure the request latency of Figure 10.
	reqIssued map[core.BATID]sim.Time
}

func newNode(c *Cluster, id core.NodeID) *Node {
	n := &Node{
		c:         c,
		id:        id,
		queries:   map[core.QueryID]*queryRun{},
		reqIssued: map[core.BATID]sim.Time{},
	}
	if c.cfg.CoresPerNode > 0 {
		n.coreFree = make([]sim.Time, c.cfg.CoresPerNode)
	}
	n.rt = core.New(id, (*nodeEnv)(n), c.cfg.Core)
	return n
}

// BusyTime reports the accumulated CPU time of the node.
func (n *Node) BusyTime() time.Duration { return n.busy }

// HandleData implements netsim.Handler for clockwise BAT messages.
func (n *Node) HandleData(m netsim.Message) {
	bm := m.(core.BATMsg)
	// Pulsating rings: adopt fragments whose recorded owner left the
	// ring — the handover made this node their owner.
	if !n.c.ring.Active(int(bm.Owner)) && n.rt.Owns(bm.BAT) {
		bm.Owner = n.id
	}
	if bm.Owner == n.id {
		// About to complete a cycle: record the cycle count it reaches.
		n.c.m.MaxCycles.SetMax(int(bm.BAT), bm.Cycles+1)
	}
	n.rt.OnBAT(bm)
}

// HandleRequest implements netsim.Handler for anti-clockwise requests.
func (n *Node) HandleRequest(m netsim.Message) {
	rm := m.(core.RequestMsg)
	// Requests whose origin left the ring would otherwise circulate
	// forever; drop them (the origin's queries are gone).
	if !n.c.ring.Active(int(rm.Origin)) {
		return
	}
	n.rt.OnRequest(rm)
}

// nodeEnv adapts Node to core.Env. A separate type keeps the Env
// methods out of Node's public API.
type nodeEnv Node

func (e *nodeEnv) node() *Node { return (*Node)(e) }

func (e *nodeEnv) Now() time.Duration { return time.Duration(e.c.sim.Now()) }

func (e *nodeEnv) SendData(m core.BATMsg) {
	// Admitted hot-set data is never tail-dropped (§4.3).
	e.c.ring.SendData(int(e.id), m, true)
}

func (e *nodeEnv) SendRequest(m core.RequestMsg) bool {
	if m.Origin == e.id {
		if _, ok := e.reqIssued[m.BAT]; !ok {
			e.reqIssued[m.BAT] = e.c.sim.Now()
		}
		e.c.m.Requests.Inc(int(m.BAT), 1)
	}
	return e.c.ring.SendRequest(int(e.id), m)
}

func (e *nodeEnv) QueueLoad() (int, int) {
	return e.c.ring.DataQueued(int(e.id)), e.c.ring.DataQueueCap(int(e.id))
}

type simTimer struct{ ev *sim.Event }

func (t simTimer) Cancel() { t.ev.Cancel() }

func (e *nodeEnv) After(d time.Duration, fn func()) core.TimerHandle {
	return simTimer{ev: e.c.sim.Schedule(d, fn)}
}

func (e *nodeEnv) Deliver(q core.QueryID, b core.BATID) {
	n := e.node()
	if at, ok := n.reqIssued[b]; ok {
		lat := n.c.sim.Now().Sub(at).Seconds()
		n.c.m.MaxReqLat.SetMax(int(b), lat)
		delete(n.reqIssued, b)
	}
	n.c.m.Touches.Inc(int(b), 1)
	// Decouple from the runtime call stack: queries advance as a fresh
	// event so pin()-inside-deliver recursion cannot occur.
	n.c.sim.Schedule(0, func() { n.onDeliver(q, b) })
}

func (e *nodeEnv) QueryError(q core.QueryID, b core.BATID, reason string) {
	n := e.node()
	if run := n.queries[q]; run != nil {
		n.c.m.Errors++
		n.finish(run, true)
	}
}

func (e *nodeEnv) OnLoad(b core.BATID, size int) {
	c := e.c
	c.loadedBytes += size
	c.loadedBATs++
	c.m.Loads.Inc(int(b), 1)
	if spec, ok := c.bats[b]; ok && spec.Tag != "" {
		c.loadedByTag[spec.Tag] += size
	}
}

func (e *nodeEnv) OnUnload(b core.BATID, size int) {
	c := e.c
	c.loadedBytes -= size
	c.loadedBATs--
	if spec, ok := c.bats[b]; ok && spec.Tag != "" {
		c.loadedByTag[spec.Tag] -= size
	}
}

// ---------------------------------------------------------------------
// query lifecycle
// ---------------------------------------------------------------------

type queryRun struct {
	spec    QuerySpec
	start   sim.Time
	step    int        // index into spec.Steps
	waiting core.BATID // BAT the current pin waits for, -1 if none
	parent  *parallelQuery
}

func (n *Node) startQuery(spec QuerySpec) {
	run := &queryRun{spec: spec, start: n.c.sim.Now(), waiting: -1}
	n.queries[spec.ID] = run
	n.c.queriesActive++
	n.c.m.Registered.Add(n.c.sim.Now().Seconds())
	// request() calls are injected at plan start and never block (§4.1).
	for _, s := range spec.Steps {
		n.rt.Request(spec.ID, s.BAT)
	}
	n.think(spec.InitialThink, func() { n.startStep(run) })
}

// startSubQuery starts one part of a split query (§6.1); completion is
// reported to the parent coordinator instead of the global metrics.
func (n *Node) startSubQuery(spec QuerySpec, parent *parallelQuery) {
	run := &queryRun{spec: spec, start: n.c.sim.Now(), waiting: -1, parent: parent}
	n.queries[spec.ID] = run
	n.c.queriesActive++
	for _, s := range spec.Steps {
		n.rt.Request(spec.ID, s.BAT)
	}
	n.think(spec.InitialThink, func() { n.startStep(run) })
}

// think occupies a CPU core for d (or just delays when unlimited).
func (n *Node) think(d time.Duration, then func()) {
	if d <= 0 {
		// Keep event ordering deterministic: even zero-length CPU
		// segments go through the scheduler.
		n.c.sim.Schedule(0, then)
		return
	}
	n.busy += d
	if n.coreFree == nil {
		n.c.sim.Schedule(d, then)
		return
	}
	best := 0
	for i, f := range n.coreFree {
		if f < n.coreFree[best] {
			best = i
		}
	}
	start := n.coreFree[best]
	if now := n.c.sim.Now(); start < now {
		start = now
	}
	end := start.Add(d)
	n.coreFree[best] = end
	n.c.sim.ScheduleAt(end, then)
}

func (n *Node) startStep(run *queryRun) {
	if n.queries[run.spec.ID] != run {
		return // finished or aborted concurrently
	}
	if run.step >= len(run.spec.Steps) {
		n.finish(run, false)
		return
	}
	s := run.spec.Steps[run.step]
	run.waiting = s.BAT
	n.rt.Pin(run.spec.ID, s.BAT)
}

func (n *Node) onDeliver(q core.QueryID, b core.BATID) {
	run := n.queries[q]
	if run == nil || run.waiting != b {
		return
	}
	run.waiting = -1
	s := run.spec.Steps[run.step]
	n.think(s.Proc, func() {
		if n.queries[q] != run {
			return
		}
		n.rt.Unpin(q, b)
		run.step++
		n.startStep(run)
	})
}

func (n *Node) finish(run *queryRun, failed bool) {
	if n.queries[run.spec.ID] != run {
		return
	}
	delete(n.queries, run.spec.ID)
	n.c.queriesActive--
	if run.parent != nil {
		var bats []core.BATID
		for _, s := range run.spec.Steps {
			bats = append(bats, s.BAT)
		}
		n.rt.CancelQuery(run.spec.ID, bats)
		run.parent.childDone(failed)
		return
	}
	n.c.queriesDone++
	now := n.c.sim.Now()
	if !failed {
		n.c.m.Finished.Add(now.Seconds())
		n.c.m.Lifetime.Observe(now.Sub(run.start).Seconds())
		if run.spec.Tag != "" {
			ev := n.c.m.FinishedByTag[run.spec.Tag]
			if ev == nil {
				ev = &metrics.Events{Name: "finished-" + run.spec.Tag}
				n.c.m.FinishedByTag[run.spec.Tag] = ev
			}
			ev.Add(now.Seconds())
		}
	}
	var bats []core.BATID
	for _, s := range run.spec.Steps {
		bats = append(bats, s.BAT)
	}
	n.rt.CancelQuery(run.spec.ID, bats)
}

// CPUUtilization reports the fraction of CPU capacity used across all
// nodes over elapsed simulated time (Table 4's CPU%).
func (c *Cluster) CPUUtilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	cores := c.cfg.CoresPerNode
	if cores == 0 {
		cores = 1
	}
	var busy time.Duration
	for _, n := range c.nodes {
		busy += n.busy
	}
	total := time.Duration(c.cfg.Nodes*cores) * elapsed
	return float64(busy) / float64(total)
}

// NodeBusy reports node i's accumulated CPU time.
func (c *Cluster) NodeBusy(i int) time.Duration { return c.nodes[i].busy }
