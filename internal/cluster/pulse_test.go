package cluster

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

func submitRemoteSingles(c *Cluster, rng *rand.Rand, nq, nBATs int, spread time.Duration) {
	for q := 0; q < nq; q++ {
		node := core.NodeID(rng.Intn(c.Nodes()))
		b := core.BATID(rng.Intn(nBATs))
		for int(b)%c.Nodes() == int(node) {
			b = core.BATID(rng.Intn(nBATs))
		}
		arr := time.Duration(0)
		if spread > 0 {
			arr = time.Duration(rng.Int63n(int64(spread)))
		}
		c.Submit(QuerySpec{ID: core.QueryID(q), Node: node, Arrival: arr,
			Steps: []Step{{BAT: b, Proc: 20 * time.Millisecond}}})
	}
}

func TestRemoveNodeHandsOverOwnership(t *testing.T) {
	cfg := smallConfig()
	cfg.Nodes = 4
	c := New(cfg)
	buildUniform(c, 16, 1<<20)
	// Warm up: run some queries so BATs are loaded.
	rng := rand.New(rand.NewSource(1))
	submitRemoteSingles(c, rng, 20, 16, time.Second)
	c.Run(time.Minute)
	if c.QueriesDone() != 20 {
		t.Fatalf("warmup done = %d", c.QueriesDone())
	}

	ownedBy3 := c.Node(3).OwnedBATs()
	if len(ownedBy3) == 0 {
		t.Fatal("node 3 owns nothing")
	}
	if err := c.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	// Ownership moved to the clockwise successor (node 0).
	for _, b := range ownedBy3 {
		if !c.Node(0).Owns(b) {
			t.Fatalf("BAT %d not adopted by node 0", b)
		}
		if c.Node(3).Owns(b) {
			t.Fatalf("BAT %d still owned by removed node", b)
		}
	}
	if got := len(c.ActiveNodes()); got != 3 {
		t.Fatalf("active = %d, want 3", got)
	}

	// The shrunken ring still serves queries, including for adopted BATs.
	next := 1000
	for _, b := range ownedBy3 {
		c.Submit(QuerySpec{ID: core.QueryID(next), Node: 1, Arrival: c.Sim().Now().Sub(0),
			Steps: []Step{{BAT: b, Proc: 5 * time.Millisecond}}})
		next++
	}
	c.Run(10 * time.Minute)
	if c.QueriesDone() != 20+len(ownedBy3) {
		t.Fatalf("done = %d, want %d", c.QueriesDone(), 20+len(ownedBy3))
	}
	if c.Metrics().Errors != 0 {
		t.Fatalf("errors = %d", c.Metrics().Errors)
	}
}

func TestRemoveNodeAbortsItsQueries(t *testing.T) {
	cfg := smallConfig()
	c := New(cfg)
	buildUniform(c, 8, 1<<20)
	// A query at node 2 that will still be running when we remove it.
	c.Submit(QuerySpec{ID: 1, Node: 2, Arrival: 0,
		Steps: []Step{{BAT: 1, Proc: 10 * time.Second}}})
	c.RunFor(time.Second)
	if err := c.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Minute)
	if c.Metrics().Errors != 1 {
		t.Fatalf("errors = %d, want 1 (aborted query)", c.Metrics().Errors)
	}
}

func TestRemoveNodeValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Nodes = 3
	c := New(cfg)
	if err := c.RemoveNode(99); err == nil {
		t.Fatal("out of range should fail")
	}
	if err := c.RemoveNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode(0); err == nil {
		t.Fatal("double removal should fail")
	}
	if err := c.RemoveNode(1); err == nil {
		t.Fatal("shrinking below 2 should fail")
	}
}

func TestActivateSpareNode(t *testing.T) {
	cfg := smallConfig()
	cfg.Nodes = 3
	cfg.SpareNodes = 1
	c := New(cfg)
	buildUniform(c, 12, 1<<20) // owners round-robin over the 3 active
	if got := len(c.ActiveNodes()); got != 3 {
		t.Fatalf("active = %d, want 3 (spare inactive)", got)
	}
	id, err := c.ActivateNode()
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != 3 {
		t.Fatalf("activated = %d, want 3", id)
	}
	if got := len(c.ActiveNodes()); got != 4 {
		t.Fatalf("active = %d, want 4", got)
	}
	if _, err := c.ActivateNode(); err == nil {
		t.Fatal("no more spares: expected error")
	}
	// The new node executes queries against data it does not own.
	c.Submit(QuerySpec{ID: 1, Node: id, Arrival: 0,
		Steps: []Step{{BAT: 5, Proc: 10 * time.Millisecond}}})
	c.Run(time.Minute)
	if c.QueriesDone() != 1 || c.Metrics().Errors != 0 {
		t.Fatalf("done=%d errors=%d", c.QueriesDone(), c.Metrics().Errors)
	}
}

func TestPulsatingGrowShrinkUnderLoad(t *testing.T) {
	cfg := smallConfig()
	cfg.Nodes = 4
	cfg.SpareNodes = 2
	c := New(cfg)
	buildUniform(c, 32, 1<<20)
	rng := rand.New(rand.NewSource(9))
	submitRemoteSingles(c, rng, 100, 32, 5*time.Second)
	c.RunFor(time.Second)
	if _, err := c.ActivateNode(); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if err := c.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Minute)
	// All queries completed or were aborted by the removal; none hang.
	if c.QueriesDone() != 100 {
		t.Fatalf("done = %d, want 100", c.QueriesDone())
	}
}

func TestNomadicSubmitBalances(t *testing.T) {
	cfg := smallConfig()
	c := New(cfg)
	buildUniform(c, 16, 1<<20)
	// All nomadic queries nominally enter at node 0; bidding must
	// spread them.
	for q := 0; q < 40; q++ {
		b := core.BATID(1 + (q % 15))
		c.SubmitNomadic(QuerySpec{ID: core.QueryID(q), Node: 0, Arrival: 0,
			Steps: []Step{{BAT: b, Proc: 200 * time.Millisecond}}})
	}
	c.RunFor(50 * time.Millisecond)
	spread := 0
	for i := 0; i < c.Nodes(); i++ {
		if len(c.nodes[i].queries) > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("nomadic queries settled on %d nodes, want >= 2", spread)
	}
	c.Run(time.Minute)
	if c.QueriesDone() != 40 {
		t.Fatalf("done = %d", c.QueriesDone())
	}
}

func TestParallelSubmitSplitsAndMerges(t *testing.T) {
	cfg := smallConfig()
	c := New(cfg)
	buildUniform(c, 16, 1<<20)
	spec := QuerySpec{
		ID: 7, Node: 0, Arrival: 0,
		Steps: []Step{
			{BAT: 1, Proc: 300 * time.Millisecond},
			{BAT: 2, Proc: 300 * time.Millisecond},
			{BAT: 5, Proc: 300 * time.Millisecond},
			{BAT: 6, Proc: 300 * time.Millisecond},
		},
	}
	c.SubmitParallel(spec, 4)
	c.Run(time.Minute)
	if c.QueriesDone() != 1 {
		t.Fatalf("done = %d, want 1 merged query", c.QueriesDone())
	}
	m := c.Metrics()
	if m.Finished.Count() != 1 || m.Registered.Count() != 1 {
		t.Fatalf("metrics: finished=%d registered=%d", m.Finished.Count(), m.Registered.Count())
	}
	// Wall-clock should be far below the 1.2s serial CPU (parallel
	// sub-queries overlap): generous bound accounts for data waits.
	if life := m.Lifetime.Max(); life >= 1.2 {
		t.Fatalf("parallel lifetime = %.2fs, want < serial 1.2s", life)
	}
}

func TestParallelSpeedsUpVsSerial(t *testing.T) {
	run := func(parallel bool) float64 {
		cfg := smallConfig()
		c := New(cfg)
		buildUniform(c, 16, 1<<20)
		var steps []Step
		for i := 1; i <= 6; i++ {
			b := core.BATID(i)
			if int(b)%4 == 0 {
				b++
			}
			steps = append(steps, Step{BAT: b, Proc: 500 * time.Millisecond})
		}
		spec := QuerySpec{ID: 1, Node: 0, Arrival: 0, Steps: steps}
		if parallel {
			c.SubmitParallel(spec, 3)
		} else {
			c.Submit(spec)
		}
		c.Run(time.Minute)
		if c.QueriesDone() != 1 {
			t.Fatalf("done = %d", c.QueriesDone())
		}
		return c.Metrics().Lifetime.Mean()
	}
	serial := run(false)
	par := run(true)
	if par >= serial {
		t.Fatalf("parallel %.2fs not faster than serial %.2fs", par, serial)
	}
}

func TestSplitSteps(t *testing.T) {
	steps := []Step{{BAT: 1}, {BAT: 2}, {BAT: 3}, {BAT: 4}, {BAT: 5}}
	parts := splitSteps(steps, 2)
	if len(parts) != 2 || len(parts[0]) != 3 || len(parts[1]) != 2 {
		t.Fatalf("split = %v", parts)
	}
	if got := splitSteps(steps, 99); len(got) != 5 {
		t.Fatalf("oversplit = %d parts", len(got))
	}
	if got := splitSteps(steps, 0); len(got) != 1 {
		t.Fatalf("undersplit = %d parts", len(got))
	}
}
