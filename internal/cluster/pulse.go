package cluster

import (
	"fmt"

	"repro/internal/core"
)

// This file implements the pulsating-ring membership operations of
// §6.3: rings shrink when resources are underused and grow by calling
// up spare nodes from a named service. Ring updates are localized to
// the removed/added node's two neighbours (netsim re-routes in-flight
// traffic), and data ownership hands over to the clockwise successor.

// RemoveNode takes node i out of the ring:
//
//   - its active queries are aborted (counted in Metrics.Errors),
//   - ownership of its BATs (hot or cold) moves to the next active
//     node clockwise, which adopts their hot-set state,
//   - the ring re-routes around it.
//
// The node's outbound queues drain normally; circulating BATs that
// still carry the old owner id are adopted by the new owner on their
// next pass (see Node.HandleData).
func (c *Cluster) RemoveNode(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: node %d out of range", i)
	}
	if !c.ring.Active(i) {
		return fmt.Errorf("cluster: node %d is not active", i)
	}
	if c.ring.ActiveCount() <= 2 {
		return fmt.Errorf("cluster: cannot shrink below 2 nodes")
	}
	n := c.nodes[i]

	// Abort queries still running here.
	for _, run := range n.activeRuns() {
		c.m.Errors++
		n.finish(run, true)
	}

	// Hand ownership to the clockwise successor.
	succIdx := c.nextActiveAfter(i)
	succ := c.nodes[succIdx]
	for _, b := range n.rt.OwnedBATs() {
		size, loaded, ok := n.rt.RemoveOwned(b)
		if !ok {
			continue
		}
		succ.rt.AdoptOwned(b, size, loaded)
		if spec, ok := c.bats[b]; ok {
			spec.Owner = core.NodeID(succIdx)
			c.bats[b] = spec
		}
	}
	n.rt.Stop()
	c.ring.SetActive(i, false)
	return nil
}

// ActivateNode brings one spare node into the ring (the named service
// of §6.3 answering a call of duty). It returns the node id.
func (c *Cluster) ActivateNode() (core.NodeID, error) {
	for i := range c.nodes {
		if !c.ring.Active(i) {
			c.ring.SetActive(i, true)
			c.nodes[i].rt.Start()
			return core.NodeID(i), nil
		}
	}
	return 0, fmt.Errorf("cluster: no spare nodes available")
}

// ActiveNodes reports the current ring membership.
func (c *Cluster) ActiveNodes() []int {
	var out []int
	for i := range c.nodes {
		if c.ring.Active(i) {
			out = append(out, i)
		}
	}
	return out
}

// nextActiveAfter returns the first active node clockwise after i.
func (c *Cluster) nextActiveAfter(i int) int {
	for k := 1; k <= len(c.nodes); k++ {
		j := (i + k) % len(c.nodes)
		if c.ring.Active(j) {
			return j
		}
	}
	return i
}

// leastLoadedNodes returns up to k distinct active nodes ordered by
// load (the bidding heuristic of §6.1: the price is the node's current
// outstanding work).
func (c *Cluster) leastLoadedNodes(k int) []int {
	type bid struct {
		node int
		cost int
	}
	var bids []bid
	for i, n := range c.nodes {
		if !c.ring.Active(i) {
			continue
		}
		bids = append(bids, bid{node: i, cost: len(n.queries)})
	}
	// insertion sort: tiny n
	for i := 1; i < len(bids); i++ {
		for j := i; j > 0 && (bids[j].cost < bids[j-1].cost ||
			(bids[j].cost == bids[j-1].cost && bids[j].node < bids[j-1].node)); j-- {
			bids[j], bids[j-1] = bids[j-1], bids[j]
		}
	}
	if k > len(bids) {
		k = len(bids)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = bids[i].node
	}
	return out
}

// activeRuns snapshots the node's running queries.
func (n *Node) activeRuns() []*queryRun {
	out := make([]*queryRun, 0, len(n.queries))
	for _, run := range n.queries {
		out = append(out, run)
	}
	return out
}
