package dcclient

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/live"
	"repro/internal/minisql"
	"repro/internal/server"
)

func servedRing(t *testing.T) *server.Server {
	t.Helper()
	cols := map[string]*bat.BAT{
		"t.id":  bat.MakeInts("t.id", []int64{1, 2, 3}),
		"t.val": bat.MakeInts("t.val", []int64{10, 20, 30}),
	}
	schema := minisql.MapSchema{"t": {"id", "val"}}
	r, err := live.NewRing(2, cols, schema, live.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.Serve(r, server.DefaultConfig())
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		r.Close()
	})
	return s
}

// TestConnectionReuse checks sequential queries share one pooled
// connection instead of dialing per query.
func TestConnectionReuse(t *testing.T) {
	s := servedRing(t)
	cl, err := Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Query(context.Background(), "select sum(val) from t"); err != nil {
			t.Fatal(err)
		}
	}
	cl.mu.Lock()
	idle := len(cl.idle)
	cl.mu.Unlock()
	if idle != 1 {
		t.Fatalf("pool holds %d connections after sequential queries, want 1", idle)
	}
}

// stalledServer handshakes correctly and then never answers queries.
func stalledServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				if typ, _, err := server.ReadFrame(br, server.DefaultMaxFrame); err != nil || typ != server.FrameHello {
					return
				}
				hello, _ := server.EncodeHello(server.Hello{Ring: 1})
				server.WriteFrame(bw, server.FrameHelloOK, hello)
				bw.Flush()
				// Swallow queries forever.
				for {
					if _, _, err := server.ReadFrame(br, server.DefaultMaxFrame); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestQueryDeadline checks a context deadline aborts a round trip whose
// answer never comes, and surfaces as context.DeadlineExceeded.
func TestQueryDeadline(t *testing.T) {
	cl, err := Dial(stalledServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Query(ctx, "select 1")
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("deadline ignored: waited %s", waited)
	}
}

// TestMidQueryCancel checks cancellation (not just a deadline) unblocks
// an in-flight round trip.
func TestMidQueryCancel(t *testing.T) {
	cl, err := Dial(stalledServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := cl.Query(ctx, "select 1"); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
