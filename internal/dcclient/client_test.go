package dcclient

import (
	"bufio"
	"context"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/live"
	"repro/internal/mal"
	"repro/internal/minisql"
	"repro/internal/server"
)

func servedRing(t *testing.T) *server.Server {
	t.Helper()
	cols := map[string]*bat.BAT{
		"t.id":  bat.MakeInts("t.id", []int64{1, 2, 3}),
		"t.val": bat.MakeInts("t.val", []int64{10, 20, 30}),
	}
	schema := minisql.MapSchema{"t": {"id", "val"}}
	r, err := live.NewRing(2, cols, schema, live.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.Serve(r, server.DefaultConfig())
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		r.Close()
	})
	return s
}

// TestConnectionReuse checks sequential queries share one pooled
// connection instead of dialing per query.
func TestConnectionReuse(t *testing.T) {
	s := servedRing(t)
	cl, err := Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Query(context.Background(), "select sum(val) from t"); err != nil {
			t.Fatal(err)
		}
	}
	cl.mu.Lock()
	idle := len(cl.idle)
	cl.mu.Unlock()
	if idle != 1 {
		t.Fatalf("pool holds %d connections after sequential queries, want 1", idle)
	}
}

// TestRetryAfterServerRestart kills the server under a pooled
// connection and restarts it on the same address: the next query's
// first write (or read) fails before any response byte, which is the
// idempotent point — the client must retry once on a freshly dialed
// connection instead of surfacing a transport error.
func TestRetryAfterServerRestart(t *testing.T) {
	cols := map[string]*bat.BAT{
		"t.id":  bat.MakeInts("t.id", []int64{1, 2, 3}),
		"t.val": bat.MakeInts("t.val", []int64{10, 20, 30}),
	}
	schema := minisql.MapSchema{"t": {"id", "val"}}
	r, err := live.NewRing(2, cols, schema, live.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	s1, err := server.Serve(r, server.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr(0)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const sql = "select sum(val) from t"
	rs, err := cl.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	want := rs.Rows()

	// Kill: the pooled connection goes stale.
	s1.Close()
	// Restart on the exact same address.
	cfg := server.DefaultConfig()
	cfg.Addr = addr
	var s2 *server.Server
	deadline := time.Now().Add(5 * time.Second)
	for {
		s2, err = server.Serve(r, cfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Cleanup(func() { s2.Close() })

	// The pooled connection fails its first use; the retry must make
	// this invisible to the caller — every query keeps succeeding.
	for i := 0; i < 3; i++ {
		rs, err := cl.Query(context.Background(), sql)
		if err != nil {
			t.Fatalf("query %d after restart: %v", i, err)
		}
		if !reflect.DeepEqual(rs.Rows(), want) {
			t.Fatalf("query %d after restart: rows %v, want %v", i, rs.Rows(), want)
		}
	}
}

// TestNoRetryOnFreshConnection: a never-pooled connection that hits a
// dead server must surface the error (retrying a fresh dial would just
// double the failure, and nothing was stale to excuse it).
func TestNoRetryOnFreshConnection(t *testing.T) {
	s := servedRing(t)
	addr := s.Addr(0)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Empty the pool so the next query dials fresh, then kill the server
	// for good.
	cl.mu.Lock()
	for _, cn := range cl.idle {
		cn.c.Close()
	}
	cl.idle = nil
	cl.mu.Unlock()
	s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := cl.Query(ctx, "select sum(val) from t"); err == nil {
		t.Fatal("query against a dead server succeeded")
	}
}

// stalledServer handshakes correctly and then never answers queries.
func stalledServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				if typ, _, err := server.ReadFrame(br, server.DefaultMaxFrame); err != nil || typ != server.FrameHello {
					return
				}
				hello, _ := server.EncodeHello(server.Hello{Ring: 1})
				server.WriteFrame(bw, server.FrameHelloOK, hello)
				bw.Flush()
				// Swallow queries forever.
				for {
					if _, _, err := server.ReadFrame(br, server.DefaultMaxFrame); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestQueryDeadline checks a context deadline aborts a round trip whose
// answer never comes, and surfaces as context.DeadlineExceeded.
func TestQueryDeadline(t *testing.T) {
	cl, err := Dial(stalledServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Query(ctx, "select 1")
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("deadline ignored: waited %s", waited)
	}
}

// TestMidQueryCancel checks cancellation (not just a deadline) unblocks
// an in-flight round trip.
func TestMidQueryCancel(t *testing.T) {
	cl, err := Dial(stalledServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := cl.Query(ctx, "select 1"); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStatsFrame fetches the serving node's counters over the wire and
// checks the query the same session just ran is visible in them,
// including the hot-set cache accounting.
func TestStatsFrame(t *testing.T) {
	s := servedRing(t)
	cl, err := Dial(s.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := cl.Query(ctx, "select val from t where id = 2"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.OK != 3 || st.Accepted != 3 {
		t.Fatalf("stats did not count the queries: %+v", st)
	}
	if st.CacheHits+st.CacheMisses == 0 {
		t.Fatal("stats carried no pin accounting")
	}
	if st.CacheHits == 0 {
		t.Fatal("repeated query never hit the hot-set cache")
	}
	if rate := st.CacheHitRate(); rate <= 0 || rate > 1 {
		t.Fatalf("hit rate %v out of range", rate)
	}
	// Hop-transport counters crossed the wire too: answering the query
	// made fragments hop. The serving node's own sends happen after the
	// query answer (it forwards fragments onward asynchronously), so
	// poll briefly for the counters to land.
	for deadline := time.Now().Add(5 * time.Second); st.HopMsgs == 0; {
		if time.Now().After(deadline) {
			t.Fatalf("stats carried no hop accounting: msgs=%d frags=%d", st.HopMsgs, st.HopFrags)
		}
		time.Sleep(5 * time.Millisecond)
		if st, err = cl.Stats(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if st.HopFrags < st.HopMsgs {
		t.Fatalf("inconsistent hop accounting: msgs=%d frags=%d", st.HopMsgs, st.HopFrags)
	}
	var fill int64
	for _, c := range st.HopFill {
		fill += c
	}
	if fill != st.HopMsgs {
		t.Fatalf("fill histogram %v does not sum to msgs %d", st.HopFill, st.HopMsgs)
	}
	// The connection survives a stats exchange and keeps querying.
	if _, err := cl.Query(ctx, "select val from t where id = 2"); err != nil {
		t.Fatalf("query after stats frame: %v", err)
	}
}

// TestFailoverBackoffRetriesLaterRound forces a two-failure sequence:
// the home node is gone for good, and the only surviving peer slams the
// door on its first connection. The immediate failover pass therefore
// finds nobody — the client must back off and win on a later pass
// instead of surfacing the home node's transport error.
func TestFailoverBackoffRetriesLaterRound(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lnA.Close(); lnB.Close() })
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()
	hello := func(node int) []byte {
		h, err := server.EncodeHello(server.Hello{
			Node: node, Ring: 2,
			Addrs: []string{addrA, addrB},
			Alive: []bool{true, true},
		})
		if err != nil {
			t.Error(err)
		}
		return h
	}
	handshake := func(conn net.Conn, node int) (*bufio.Reader, *bufio.Writer, bool) {
		br, bw := bufio.NewReader(conn), bufio.NewWriter(conn)
		if typ, _, err := server.ReadFrame(br, server.DefaultMaxFrame); err != nil || typ != server.FrameHello {
			return nil, nil, false
		}
		server.WriteFrame(bw, server.FrameHelloOK, hello(node))
		bw.Flush()
		return br, bw, true
	}

	// Home node A: one good handshake, then gone for good.
	go func() {
		conn, err := lnA.Accept()
		if err != nil {
			return
		}
		handshake(conn, 0)
		conn.Close()
		lnA.Close()
	}()

	// Peer B: refuses its first connection (the forced second failure),
	// then serves handshakes and one-row answers.
	var attemptsB atomic.Int32
	go func() {
		for {
			conn, err := lnB.Accept()
			if err != nil {
				return
			}
			if attemptsB.Add(1) == 1 {
				conn.Close()
				continue
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br, bw, ok := handshake(conn, 1)
				if !ok {
					return
				}
				for {
					typ, _, err := server.ReadFrame(br, server.DefaultMaxFrame)
					if err != nil || typ != server.FrameQuery {
						return
					}
					payload, err := server.EncodeResult(&mal.ResultSet{
						Names: []string{"val"},
						Cols:  []*bat.BAT{bat.MakeInts("val", []int64{42})},
					})
					if err != nil {
						t.Error(err)
						return
					}
					server.WriteFrame(bw, server.FrameResult, payload)
					bw.Flush()
				}
			}(conn)
		}
	}()

	cfg := DefaultConfig()
	cfg.FailoverRounds = 3
	cfg.FailoverBackoff = 5 * time.Millisecond
	cl, err := DialConfig(addrA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	rs, err := cl.Query(ctx, "select val from t where id = 1")
	if err != nil {
		t.Fatalf("query should survive two failures via backoff: %v", err)
	}
	if rs.NumRows() != 1 {
		t.Fatalf("peer answered %d rows, want 1", rs.NumRows())
	}
	if got := attemptsB.Load(); got < 2 {
		t.Fatalf("peer saw %d connection attempts, want >= 2 (refused then served)", got)
	}
	if cl.Addr() != addrB {
		t.Fatalf("client homed at %s, want rehomed to %s", cl.Addr(), addrB)
	}
	// The winning pass came after at least the jitter floor of one
	// backoff (base/2), proving the retry waited rather than spun.
	if waited := time.Since(start); waited < cfg.FailoverBackoff/2 {
		t.Fatalf("failover returned in %s, under the backoff floor", waited)
	}
}

// TestFailoverRoundsBounded checks the retry budget is a budget: with
// everything down, the client gives up after its configured passes
// instead of retrying forever.
func TestFailoverRoundsBounded(t *testing.T) {
	s := servedRing(t)
	cfg := DefaultConfig()
	cfg.FailoverRounds = 2
	cfg.FailoverBackoff = 2 * time.Millisecond
	cl, err := DialConfig(s.Addr(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := cl.Query(ctx, "select sum(val) from t"); err == nil {
		t.Fatal("query against a fully dead ring succeeded")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("bounded retry took %s — budget not enforced", waited)
	}
}

func TestFailoverOrderPrefersSameRing(t *testing.T) {
	check := func(got, want []int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("order = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order = %v, want %v", got, want)
			}
		}
	}
	// Tiered server: home is hot node 1 of [hot hot cold cold]. The
	// remaining hot peer comes before any cold node; the home itself
	// stays in the list (later rounds reconsider a restarted home).
	rings := []string{"hot", "hot", "cold", "cold"}
	check(failoverOrder(1, 4, rings), []int{0, 1, 2, 3})
	// Cold home: cold peers first, hot last.
	check(failoverOrder(2, 4, rings), []int{3, 2, 0, 1})
	// No labels (single-ring server): plain ring order after home,
	// exactly the pre-tiering behavior.
	check(failoverOrder(1, 3, nil), []int{2, 0, 1})
	// A stale label list (count mismatch after a join) is ignored
	// rather than trusted.
	check(failoverOrder(0, 3, []string{"hot", "cold"}), []int{1, 2, 0})
}
