// Package dcclient is the Go client for the Data Cyclotron query
// service (internal/server): it dials a node's listener, performs the
// protocol handshake, and executes SQL with context-based timeouts.
// Connections are pooled and reused across queries; protocol-level
// errors (rejection, drain, query failure) keep the connection alive,
// transport errors discard it.
//
// The client treats its node address as a cache, not a binding: every
// handshake refreshes the ring's full address list and per-node
// liveness (the server's membership view), and when the home node
// dies mid-run the client fails the query over to a surviving node
// and rehomes there. Queries are read-only, so cross-node retry is
// sound; server-answered errors (RemoteError) are never retried, with
// one exception — a draining answer means "this node is leaving the
// ring", which is exactly when a survivor should get the query.
package dcclient

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/mal"
	"repro/internal/server"
)

// Config tunes a client.
type Config struct {
	// DialTimeout bounds establishing + handshaking a new connection
	// when the calling context has no deadline of its own.
	DialTimeout time.Duration
	// MaxIdle bounds pooled idle connections.
	MaxIdle int
	// MaxFrame bounds a single protocol frame (result sets included).
	MaxFrame int
	// FailoverRounds bounds how many full passes over surviving peers a
	// failed query makes before surfacing the original error. The first
	// pass is immediate; each further pass is preceded by an exponential
	// backoff, so transient whole-ring outages (a restart, a rolling
	// upgrade, a join in flight) get time to heal without the client
	// spinning on dead sockets.
	FailoverRounds int
	// FailoverBackoff is the base delay before the second failover pass;
	// pass k waits FailoverBackoff << (k-2), half-to-full jittered,
	// capped at 2s.
	FailoverBackoff time.Duration
}

// DefaultConfig suits loopback clients.
func DefaultConfig() Config {
	return Config{
		DialTimeout:     5 * time.Second,
		MaxIdle:         8,
		MaxFrame:        server.DefaultMaxFrame,
		FailoverRounds:  3,
		FailoverBackoff: 25 * time.Millisecond,
	}
}

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("dcclient: client closed")

// Client talks to one node of a served ring, failing over to another
// when that node dies.
type Client struct {
	cfg Config

	mu     sync.Mutex
	addr   string       // current home address (rehomed on failover)
	hello  server.Hello // last good handshake: ring info + routing cache
	idle   []*conn
	closed bool
}

// conn is one established, handshaken connection.
type conn struct {
	c  net.Conn
	cr *countingReader
	br *bufio.Reader
	bw *bufio.Writer
	// reused marks a connection that came back from the idle pool: it
	// may have gone stale (server restart) since it was last used, so a
	// transport failure before any response byte is retried once on a
	// fresh connection.
	reused bool
}

// countingReader counts the bytes read off the socket, so the retry
// logic can tell "the connection died before the server said anything"
// from "a response was underway". A conn is owned by one query at a
// time, so no synchronization is needed.
type countingReader struct {
	r net.Conn
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// Dial connects to a node server and performs the handshake.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, DefaultConfig())
}

// DialConfig is Dial with explicit tuning.
func DialConfig(addr string, cfg Config) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultConfig().DialTimeout
	}
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = DefaultConfig().MaxIdle
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = server.DefaultMaxFrame
	}
	cl := &Client{addr: addr, cfg: cfg}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.DialTimeout)
	defer cancel()
	cn, err := cl.dial(ctx)
	if err != nil {
		return nil, err
	}
	cl.put(cn)
	return cl, nil
}

// Node reports the served node's handshake info (ring position, ring
// size, admission slots).
func (cl *Client) Node() server.Hello {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.hello
}

// Addr reports the server address this client currently talks to (the
// original Dial target, or the node it rehomed onto after a failover).
func (cl *Client) Addr() string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.addr
}

// Peers reports the routing cache from the last good handshake: every
// ring node's address and whether the serving node's membership view
// has it alive. Empty when the server predates the membership protocol.
func (cl *Client) Peers() (addrs []string, alive []bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]string(nil), cl.hello.Addrs...), append([]bool(nil), cl.hello.Alive...)
}

// Rings reports the per-node ring labels from the last good handshake.
// Empty on a single-ring server — only a tiered runtime labels its
// address list (see server.ServeRouter).
func (cl *Client) Rings() []string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]string(nil), cl.hello.Rings...)
}

// Query executes sql on the connected node, honouring ctx's deadline
// and cancellation for the whole round trip (including dialing a fresh
// connection when the pool is empty).
//
// A pooled connection whose server restarted since it was last used
// fails on its first use; when that failure happens before a single
// response byte arrived (the idempotent point — TCP gives no ack
// visibility, so "nothing heard back" is the observable stand-in for
// "request not accepted", sound for this read-only query protocol),
// the query is retried exactly once on a freshly dialed connection.
//
// When the home node itself is gone — dial fails, or the retry dies on
// the wire too — the query fails over: surviving peers from the routing
// cache are tried in ring order, and the first one that answers becomes
// the new home. Deadline expiries and server-answered errors
// (RemoteError) are never retried anywhere — except a draining answer,
// which marks the node as leaving the ring and fails over like a dead
// connection.
func (cl *Client) Query(ctx context.Context, sql string) (*mal.ResultSet, error) {
	cn, err := cl.get(ctx)
	if err != nil {
		if errors.Is(err, ErrClosed) || ctx.Err() != nil {
			return nil, err
		}
		return cl.queryFailover(ctx, sql, err)
	}
	wasReused := cn.reused
	rs, err, preByte, transport := cl.run(ctx, cn, sql)
	if err == nil || !transport {
		return rs, err
	}
	if wasReused && preByte {
		fresh, derr := cl.freshConn(ctx)
		if derr == nil {
			rs, err, _, transport = cl.run(ctx, fresh, sql)
			if err == nil || !transport {
				return rs, err
			}
		}
	}
	return cl.queryFailover(ctx, sql, err)
}

// queryFailover retries sql against surviving peers after the home node
// failed with orig. Candidates come from the routing cache of the last
// good handshake, tried in ring order starting after the home position
// and skipping nodes the membership view has declared dead. The first
// peer whose handshake succeeds becomes the new home (its Hello also
// refreshes the cache); a server-answered error from it settles the
// query — the ring is alive, the query itself is the problem.
//
// Up to FailoverRounds full passes run; passes after the first wait an
// exponentially growing, jittered backoff first, re-snapshot the
// routing cache (a pass may have refreshed it via a handshake), and
// also reconsider the original home — a restarted node is a survivor
// too. If every pass comes up empty, the original failure stands.
func (cl *Client) queryFailover(ctx context.Context, sql string, orig error) (*mal.ResultSet, error) {
	rounds := cl.cfg.FailoverRounds
	if rounds <= 0 {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		if round > 0 && !cl.backoff(ctx, round) {
			return nil, orig
		}
		cl.mu.Lock()
		home := cl.addr
		homeIdx := cl.hello.Node
		addrs := append([]string(nil), cl.hello.Addrs...)
		alive := append([]bool(nil), cl.hello.Alive...)
		rings := append([]string(nil), cl.hello.Rings...)
		cl.mu.Unlock()
		if len(addrs) == 0 {
			return nil, orig // no routing cache: nothing to fail over to
		}
		if homeIdx < 0 || homeIdx >= len(addrs) {
			homeIdx = 0
		}
		for _, i := range failoverOrder(homeIdx, len(addrs), rings) {
			if ctx.Err() != nil {
				return nil, orig
			}
			if addrs[i] == home && round == 0 {
				continue // the home just failed; give it a round to recover
			}
			if i < len(alive) && !alive[i] && addrs[i] != home {
				continue
			}
			cn, err := cl.dialPeer(ctx, addrs[i])
			if err != nil {
				continue // unreachable too; try the next survivor
			}
			cl.rehome(addrs[i])
			rs, err, _, transport := cl.run(ctx, cn, sql)
			if err == nil || !transport {
				return rs, err
			}
		}
	}
	return nil, orig
}

// failoverOrder lists the candidate indexes of one failover pass: ring
// order starting after the home position. On a tiered server (the
// handshake labelled each address with its ring) the home ring's peers
// come first — they serve the same query ring, so a same-tier survivor
// answers directly instead of forcing a cross-ring detour — and the
// other rings' nodes follow as a last resort, still in order. Without
// labels this is plain ring order, exactly as before.
func failoverOrder(homeIdx, n int, rings []string) []int {
	homeRing := ""
	if homeIdx >= 0 && homeIdx < len(rings) {
		homeRing = rings[homeIdx]
	}
	order := make([]int, 0, n)
	var rest []int
	for k := 1; k <= n; k++ {
		i := (homeIdx + k) % n
		if len(rings) == n && rings[i] != homeRing {
			rest = append(rest, i)
			continue
		}
		order = append(order, i)
	}
	return append(order, rest...)
}

// backoff sleeps the exponential delay preceding failover pass `round`
// (1-based over the waiting passes), honouring ctx. Half-to-full jitter
// de-synchronizes the retry herd of clients that all lost the same
// node. Reports false when ctx expired instead of the timer.
func (cl *Client) backoff(ctx context.Context, round int) bool {
	base := cl.cfg.FailoverBackoff
	if base <= 0 {
		base = DefaultConfig().FailoverBackoff
	}
	d := base << (round - 1)
	if max := 2 * time.Second; d > max {
		d = max
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// run performs one round trip on cn, settling the connection (pooled on
// protocol-level outcomes, closed on transport errors) and mapping
// context errors. preByte reports that the failure happened before any
// response byte arrived; transport reports a failure that justifies
// trying another node — a dead connection (neither a server-answered
// error nor a deadline), or a server that answered it is draining.
func (cl *Client) run(ctx context.Context, cn *conn, sql string) (rs *mal.ResultSet, err error, preByte, transport bool) {
	before := cn.cr.n
	rs, err = cn.roundTrip(ctx, cl.cfg.MaxFrame, sql)
	if err == nil {
		cl.put(cn)
		return rs, nil, false, false
	}
	var re *server.RemoteError
	if errors.As(err, &re) {
		if re.Code == server.CodeDraining {
			// The node is shutting down — or the ring declared it dead
			// and its server is refusing queries. The answer is
			// authoritative for this node but not for the query: it
			// deserves a survivor, so report it failover-eligible. The
			// connection has nothing more to offer.
			cn.c.Close()
			return nil, err, false, true
		}
		// The server answered; the connection is still in protocol.
		cl.put(cn)
		return nil, err, false, false
	}
	cn.c.Close()
	if ctx.Err() != nil {
		return nil, ctx.Err(), false, false
	}
	// The only socket deadline is the one mapped from ctx, so a
	// timeout is the context's deadline even when the socket clock
	// fired a moment before the context's own timer.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if _, ok := ctx.Deadline(); ok {
			return nil, context.DeadlineExceeded, false, false
		}
		return nil, err, false, false
	}
	return nil, err, cn.cr.n == before, true
}

// Stats fetches the serving node's counters (queries, admission,
// plan-cache, hot-set cache, ring wait). Stats reads bypass server
// admission, so they work even when the node is saturated. Like Query,
// a pooled connection that died before any response byte (server
// restarted since last use) is retried exactly once on a fresh
// connection; stats reads are idempotent by nature.
func (cl *Client) Stats(ctx context.Context) (server.NodeStats, error) {
	var st server.NodeStats
	cn, err := cl.get(ctx)
	if err != nil {
		return st, err
	}
	wasReused := cn.reused
	st, err, retryable := cl.runStats(ctx, cn)
	if err == nil || !wasReused || !retryable {
		return st, err
	}
	fresh, derr := cl.freshConn(ctx)
	if derr != nil {
		return st, err // the original failure stands
	}
	st, err, _ = cl.runStats(ctx, fresh)
	return st, err
}

// runStats performs one stats round trip on cn, settling the connection
// the same way run does for queries. retryable reports a transport
// failure before any response byte and not through a deadline.
func (cl *Client) runStats(ctx context.Context, cn *conn) (st server.NodeStats, err error, retryable bool) {
	before := cn.cr.n
	st, err = cn.statsTrip(ctx, cl.cfg.MaxFrame)
	if err == nil {
		cl.put(cn)
		return st, nil, false
	}
	var re *server.RemoteError
	if errors.As(err, &re) {
		cl.put(cn) // the server answered; the connection is in protocol
		return st, err, false
	}
	cn.c.Close()
	if ctx.Err() != nil {
		return st, ctx.Err(), false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if _, ok := ctx.Deadline(); ok {
			return st, context.DeadlineExceeded, false
		}
		return st, err, false
	}
	return st, err, cn.cr.n == before
}

// statsTrip sends one FrameStats and reads its answer.
func (cn *conn) statsTrip(ctx context.Context, maxFrame int) (server.NodeStats, error) {
	var st server.NodeStats
	if d, ok := ctx.Deadline(); ok {
		cn.c.SetDeadline(d)
	} else {
		cn.c.SetDeadline(time.Time{})
	}
	if err := server.WriteFrame(cn.bw, server.FrameStats, nil); err != nil {
		return st, err
	}
	if err := cn.bw.Flush(); err != nil {
		return st, err
	}
	typ, payload, err := server.ReadFrame(cn.br, maxFrame)
	if err != nil {
		return st, err
	}
	switch typ {
	case server.FrameStatsOK:
		if err := json.Unmarshal(payload, &st); err != nil {
			return st, fmt.Errorf("dcclient: corrupt stats frame: %w", err)
		}
		return st, nil
	case server.FrameError:
		return st, server.DecodeError(payload)
	}
	return st, fmt.Errorf("dcclient: unexpected frame type %d", typ)
}

// freshConn always dials a new connection (never the pool), bounding
// the dial like get does when ctx carries no deadline.
func (cl *Client) freshConn(ctx context.Context) (*conn, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, ErrClosed
	}
	cl.mu.Unlock()
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cl.cfg.DialTimeout)
		defer cancel()
	}
	return cl.dial(ctx)
}

// Refresh re-handshakes with the home node on a fresh connection,
// updating the routing cache (address list, liveness, view version)
// from its current membership view; the connection is then pooled. The
// cache otherwise refreshes only when a dial happens naturally — on an
// empty pool or a failover.
func (cl *Client) Refresh(ctx context.Context) error {
	cn, err := cl.freshConn(ctx)
	if err != nil {
		return err
	}
	cl.put(cn)
	return nil
}

// dialPeer dials a specific peer address with the same deadline
// bounding as freshConn.
func (cl *Client) dialPeer(ctx context.Context, addr string) (*conn, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, ErrClosed
	}
	cl.mu.Unlock()
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cl.cfg.DialTimeout)
		defer cancel()
	}
	return cl.dialAddr(ctx, addr)
}

// rehome makes addr the client's home node: the idle pool (connections
// to the old home) is discarded, and subsequent queries dial addr.
func (cl *Client) rehome(addr string) {
	cl.mu.Lock()
	if cl.addr == addr {
		cl.mu.Unlock()
		return
	}
	cl.addr = addr
	idle := cl.idle
	cl.idle = nil
	cl.mu.Unlock()
	for _, cn := range idle {
		cn.c.Close()
	}
}

// Close releases all pooled connections.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.closed = true
	for _, cn := range cl.idle {
		cn.c.Close()
	}
	cl.idle = nil
	return nil
}

// get pops a pooled connection or dials a new one.
func (cl *Client) get(ctx context.Context) (*conn, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(cl.idle); n > 0 {
		cn := cl.idle[n-1]
		cl.idle = cl.idle[:n-1]
		cl.mu.Unlock()
		return cn, nil
	}
	cl.mu.Unlock()
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cl.cfg.DialTimeout)
		defer cancel()
	}
	return cl.dial(ctx)
}

// put returns a connection to the pool (or closes it when full/closed).
func (cl *Client) put(cn *conn) {
	cl.mu.Lock()
	if cl.closed || len(cl.idle) >= cl.cfg.MaxIdle {
		cl.mu.Unlock()
		cn.c.Close()
		return
	}
	cn.reused = true
	cl.idle = append(cl.idle, cn)
	cl.mu.Unlock()
}

// dial establishes and handshakes one connection to the current home
// address under ctx.
func (cl *Client) dial(ctx context.Context) (*conn, error) {
	return cl.dialAddr(ctx, cl.Addr())
}

// dialAddr establishes and handshakes one connection to addr under
// ctx. The handshake's Hello refreshes the routing cache.
func (cl *Client) dialAddr(ctx context.Context, addr string) (*conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dcclient: dial %s: %w", addr, err)
	}
	// The protocol is strict request/response — the client stalls on
	// every reply — so Nagle-delaying a small query frame costs an RTT
	// per round trip. Disable coalescing explicitly rather than relying
	// on Go's default, mirroring the server's accept side.
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cr := &countingReader{r: c}
	cn := &conn{c: c, cr: cr, br: bufio.NewReader(cr), bw: bufio.NewWriter(c)}
	if d, ok := ctx.Deadline(); ok {
		c.SetDeadline(d)
	}
	if err := server.WriteFrame(cn.bw, server.FrameHello, []byte(server.Magic)); err != nil {
		c.Close()
		return nil, err
	}
	if err := cn.bw.Flush(); err != nil {
		c.Close()
		return nil, err
	}
	typ, payload, err := server.ReadFrame(cn.br, cl.cfg.MaxFrame)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("dcclient: handshake: %w", err)
	}
	if typ != server.FrameHelloOK {
		c.Close()
		if typ == server.FrameError {
			return nil, server.DecodeError(payload)
		}
		return nil, fmt.Errorf("dcclient: handshake got frame type %d", typ)
	}
	hello, err := server.DecodeHello(payload)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("dcclient: handshake: %w", err)
	}
	c.SetDeadline(time.Time{})
	cl.mu.Lock()
	cl.hello = hello
	cl.mu.Unlock()
	return cn, nil
}

// roundTrip sends one query and reads its answer, mapping ctx's
// deadline and cancellation onto the socket.
func (cn *conn) roundTrip(ctx context.Context, maxFrame int, sql string) (*mal.ResultSet, error) {
	if d, ok := ctx.Deadline(); ok {
		cn.c.SetDeadline(d)
	} else {
		cn.c.SetDeadline(time.Time{})
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-done:
				// Wake any blocked read/write; Query maps the resulting
				// I/O error back onto ctx.Err().
				cn.c.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
		// Join the watcher before returning: a fire-and-forget goroutine
		// could otherwise poison this connection's deadline after it has
		// been pooled and picked up by an unrelated query.
		defer func() {
			close(stop)
			<-exited
		}()
	}
	if err := server.WriteFrame(cn.bw, server.FrameQuery, []byte(sql)); err != nil {
		return nil, err
	}
	if err := cn.bw.Flush(); err != nil {
		return nil, err
	}
	typ, payload, err := server.ReadFrame(cn.br, maxFrame)
	if err != nil {
		return nil, err
	}
	switch typ {
	case server.FrameResult:
		return server.DecodeResult(payload)
	case server.FrameError:
		return nil, server.DecodeError(payload)
	}
	return nil, fmt.Errorf("dcclient: unexpected frame type %d", typ)
}

// IsTemporary reports whether err is a server-side pushback (admission
// rejection or drain) that may succeed on retry.
func IsTemporary(err error) bool {
	var re *server.RemoteError
	return errors.As(err, &re) && re.Temporary()
}

// IsRejected reports whether err is an admission-control rejection.
func IsRejected(err error) bool {
	var re *server.RemoteError
	return errors.As(err, &re) && re.Code == server.CodeRejected
}
