package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/minisql"
)

// DB is a small, real, in-memory TPC-H-style database: actual columnar
// data generated deterministically, exposed through the minisql.Schema
// and mal.Catalog interfaces so the SQL front-end and the live ring can
// execute genuine queries over it.
type DB struct {
	SF      float64
	columns map[string]*bat.BAT // "table.column" -> BAT
	schema  minisql.MapSchema
}

// Schema exposes the table layout for the SQL planner.
func (db *DB) Schema() minisql.Schema { return db.schema }

// Bind implements mal.Catalog.
func (db *DB) Bind(schema, table, column string) (mal.Value, error) {
	b, ok := db.columns[table+"."+column]
	if !ok {
		return nil, fmt.Errorf("tpch: no column %s.%s", table, column)
	}
	return b, nil
}

// Column returns the BAT backing table.column.
func (db *DB) Column(table, column string) (*bat.BAT, bool) {
	b, ok := db.columns[table+"."+column]
	return b, ok
}

// Columns lists all "table.column" names, for partitioning across a
// live ring.
func (db *DB) Columns() []string {
	var names []string
	for k := range db.columns {
		names = append(names, k)
	}
	return names
}

// ColumnMap returns every column keyed "table.column" — the shape
// live.NewRing expects. The map is a copy; the BATs are shared.
func (db *DB) ColumnMap() map[string]*bat.BAT {
	out := make(map[string]*bat.BAT, len(db.columns))
	for k, b := range db.columns {
		out[k] = b
	}
	return out
}

// Rows reports the row count of a table.
func (db *DB) Rows(table string) int {
	for k, b := range db.columns {
		if len(k) > len(table) && k[:len(table)] == table && k[len(table)] == '.' {
			return b.Len()
		}
	}
	return 0
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
var flags = []string{"A", "N", "R"}
var statuses = []string{"F", "O"}
var nations = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
	"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
	"KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
	"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}

// date encodes y/m/d as yyyymmdd, the integer date surrogate the engine
// uses for range predicates.
func date(y, m, d int) int64 { return int64(y*10000 + m*100 + d) }

// randDate draws a shipping-era date between 1992 and 1998.
func randDate(rng *rand.Rand) int64 {
	return date(1992+rng.Intn(7), 1+rng.Intn(12), 1+rng.Intn(28))
}

// sortedInts builds an int BAT whose tail is known to be ascending
// (sequentially generated keys), so range and point predicates over it
// hit the kernel's binary-search fast path instead of a scan.
func sortedInts(name string, vals []int64) *bat.BAT {
	b := bat.MakeInts(name, vals)
	b.Tail().SetSorted(true)
	return b
}

// GenDB generates a deterministic database. sf scales row counts
// (sf=0.001 gives lineitem≈6000 rows, fine for tests and examples).
func GenDB(sf float64, seed int64) *DB {
	rng := rand.New(rand.NewSource(seed))
	db := &DB{
		SF:      sf,
		columns: map[string]*bat.BAT{},
		schema:  minisql.MapSchema{},
	}
	nCust := scaled(150_000, sf)
	nOrders := scaled(1_500_000, sf)
	nLine := scaled(6_000_000, sf)
	nSupp := scaled(10_000, sf)
	nNation := len(nations)

	// nation
	nk := make([]int64, nNation)
	nname := make([]string, nNation)
	nregion := make([]int64, nNation)
	for i := 0; i < nNation; i++ {
		nk[i] = int64(i)
		nname[i] = nations[i]
		nregion[i] = int64(i % 5)
	}
	db.add("nation", "n_nationkey", sortedInts("nation.n_nationkey", nk))
	db.add("nation", "n_name", bat.MakeStrs("nation.n_name", nname))
	db.add("nation", "n_regionkey", bat.MakeInts("nation.n_regionkey", nregion))

	// supplier
	sk := make([]int64, nSupp)
	snat := make([]int64, nSupp)
	for i := range sk {
		sk[i] = int64(i + 1)
		snat[i] = int64(rng.Intn(nNation))
	}
	db.add("supplier", "s_suppkey", sortedInts("supplier.s_suppkey", sk))
	db.add("supplier", "s_nationkey", bat.MakeInts("supplier.s_nationkey", snat))

	// customer
	ck := make([]int64, nCust)
	cnat := make([]int64, nCust)
	cseg := make([]string, nCust)
	cbal := make([]float64, nCust)
	for i := range ck {
		ck[i] = int64(i + 1)
		cnat[i] = int64(rng.Intn(nNation))
		cseg[i] = segments[rng.Intn(len(segments))]
		cbal[i] = float64(rng.Intn(1000000))/100 - 999
	}
	db.add("customer", "c_custkey", sortedInts("customer.c_custkey", ck))
	db.add("customer", "c_nationkey", bat.MakeInts("customer.c_nationkey", cnat))
	db.add("customer", "c_mktsegment", bat.MakeStrs("customer.c_mktsegment", cseg))
	db.add("customer", "c_acctbal", bat.MakeFloats("customer.c_acctbal", cbal))

	// orders
	ok := make([]int64, nOrders)
	ocust := make([]int64, nOrders)
	odate := make([]int64, nOrders)
	oprice := make([]float64, nOrders)
	for i := range ok {
		ok[i] = int64(i + 1)
		ocust[i] = int64(rng.Intn(nCust) + 1)
		odate[i] = randDate(rng)
		oprice[i] = float64(1000+rng.Intn(400000)) / 100
	}
	db.add("orders", "o_orderkey", sortedInts("orders.o_orderkey", ok))
	db.add("orders", "o_custkey", bat.MakeInts("orders.o_custkey", ocust))
	db.add("orders", "o_orderdate", bat.MakeInts("orders.o_orderdate", odate))
	db.add("orders", "o_totalprice", bat.MakeFloats("orders.o_totalprice", oprice))

	// lineitem
	lok := make([]int64, nLine)
	lqty := make([]int64, nLine)
	lprice := make([]float64, nLine)
	ldisc := make([]float64, nLine)
	ltax := make([]float64, nLine)
	lflag := make([]string, nLine)
	lstatus := make([]string, nLine)
	lship := make([]int64, nLine)
	lsupp := make([]int64, nLine)
	for i := range lok {
		lok[i] = int64(rng.Intn(nOrders) + 1)
		lqty[i] = int64(1 + rng.Intn(50))
		lprice[i] = float64(90000+rng.Intn(10000)) / 100
		ldisc[i] = float64(rng.Intn(11)) / 100
		ltax[i] = float64(rng.Intn(9)) / 100
		lflag[i] = flags[rng.Intn(len(flags))]
		lstatus[i] = statuses[rng.Intn(len(statuses))]
		lship[i] = randDate(rng)
		lsupp[i] = int64(rng.Intn(nSupp) + 1)
	}
	db.add("lineitem", "l_orderkey", bat.MakeInts("lineitem.l_orderkey", lok))
	db.add("lineitem", "l_quantity", bat.MakeInts("lineitem.l_quantity", lqty))
	db.add("lineitem", "l_extendedprice", bat.MakeFloats("lineitem.l_extendedprice", lprice))
	db.add("lineitem", "l_discount", bat.MakeFloats("lineitem.l_discount", ldisc))
	db.add("lineitem", "l_tax", bat.MakeFloats("lineitem.l_tax", ltax))
	db.add("lineitem", "l_returnflag", bat.MakeStrs("lineitem.l_returnflag", lflag))
	db.add("lineitem", "l_linestatus", bat.MakeStrs("lineitem.l_linestatus", lstatus))
	db.add("lineitem", "l_shipdate", bat.MakeInts("lineitem.l_shipdate", lship))
	db.add("lineitem", "l_suppkey", bat.MakeInts("lineitem.l_suppkey", lsupp))

	return db
}

// SFForLineitemRows maps a target lineitem row count onto the scale
// factor that produces it (lineitem is 6M rows at SF 1). The
// fragmentation experiments size their swept column with this.
func SFForLineitemRows(rows int) float64 {
	return float64(rows) / 6_000_000
}

func scaled(rowsSF1 int, sf float64) int {
	n := int(float64(rowsSF1) * sf)
	if n < 10 {
		n = 10
	}
	return n
}

func (db *DB) add(table, column string, b *bat.BAT) {
	db.columns[table+"."+column] = b
	db.schema[table] = append(db.schema[table], column)
}

// Q1SQL is a runnable rendition of TPC-H Q1 for the mini engine.
const Q1SQL = `select l_returnflag, l_linestatus,
	sum(l_quantity) as sum_qty,
	sum(l_extendedprice) as sum_base_price,
	avg(l_quantity) as avg_qty,
	avg(l_discount) as avg_disc,
	count(*) as count_order
from lineitem
where l_shipdate <= 19980902
group by l_returnflag, l_linestatus
order by l_returnflag`

// Q6ishSQL is a runnable rendition of Q6's selective aggregate (the
// engine computes sum(price) over the qualifying rows; the price*(1-disc)
// product of full Q6 needs expression support the mini parser omits).
const Q6ishSQL = `select sum(l_extendedprice), count(*)
from lineitem
where l_shipdate >= 19940101 and l_shipdate < 19950101
	and l_discount between 0.05 and 0.07 and l_quantity < 24`

// Q3ishSQL is a runnable join/aggregate in the spirit of Q3.
const Q3ishSQL = `select o_orderkey, sum(l_extendedprice) as revenue
from customer, orders, lineitem
where c_mktsegment = 'BUILDING'
	and c_custkey = o_custkey and l_orderkey = o_orderkey
	and o_orderdate < 19950315
group by o_orderkey
order by revenue desc limit 10`
