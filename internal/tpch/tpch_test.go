package tpch

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mal"
	"repro/internal/minisql"
)

func TestQueriesWellFormed(t *testing.T) {
	qs := Queries()
	if len(qs) != 22 {
		t.Fatalf("queries = %d, want 22", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if seen[q.Name] {
			t.Fatalf("duplicate %s", q.Name)
		}
		seen[q.Name] = true
		if len(q.Columns) == 0 {
			t.Fatalf("%s touches no columns", q.Name)
		}
		if q.Time <= 0 {
			t.Fatalf("%s has no CPU time", q.Name)
		}
		colSeen := map[TraceColumn]bool{}
		for _, c := range q.Columns {
			if colSeen[c] {
				t.Fatalf("%s touches %v twice", q.Name, c)
			}
			colSeen[c] = true
			if _, ok := tableRowsSF1[c.Table]; !ok {
				t.Fatalf("%s references unknown table %q", q.Name, c.Table)
			}
		}
	}
}

func TestMixCalibration(t *testing.T) {
	// The Gaussian(10,2) mix should average ≈1.05s CPU per query, so
	// 1200 queries on 4 cores ≈ 315s — the paper's single-node total.
	w := DefaultWorkload(1)
	mean := w.MeanQueryTime(rand.New(rand.NewSource(1)), 200000)
	if mean < 950*time.Millisecond || mean > 1200*time.Millisecond {
		t.Fatalf("mean query CPU = %v, want ≈1.05s", mean)
	}
}

func TestCatalogPartitioning(t *testing.T) {
	cat := BuildCatalog(5, 10)
	if cat.NumBATs() == 0 {
		t.Fatal("empty catalog")
	}
	// lineitem columns at SF-5 are 240MB: must be partitioned.
	parts := cat.Partitions("lineitem", "l_quantity")
	if len(parts) < 2 {
		t.Fatalf("lineitem partitions = %d, want several", len(parts))
	}
	// nation is tiny: single partition.
	if n := len(cat.Partitions("nation", "n_nationkey")); n != 1 {
		t.Fatalf("nation partitions = %d, want 1", n)
	}
	for _, s := range cat.Specs() {
		if s.Size <= 0 || s.Size > PartitionBytes {
			t.Fatalf("BAT %d size %d outside (0,%d]", s.ID, s.Size, PartitionBytes)
		}
	}
	if cat.TotalBytes() < 1<<30 {
		t.Fatalf("SF-5 dataset = %d bytes, suspiciously small", cat.TotalBytes())
	}
}

func TestWorkloadBuild(t *testing.T) {
	cat := BuildCatalog(5, 4)
	w := DefaultWorkload(4)
	w.QueriesPerNode = 50
	specs := w.Build(rand.New(rand.NewSource(2)), cat)
	if len(specs) != 200 {
		t.Fatalf("specs = %d", len(specs))
	}
	for _, q := range specs {
		if len(q.Steps) == 0 {
			t.Fatal("query with no steps")
		}
		var total time.Duration
		for _, s := range q.Steps {
			total += s.Proc
			if _, ok := findSpec(cat, s.BAT); !ok {
				t.Fatalf("query references unknown BAT %d", s.BAT)
			}
		}
		if total < 200*time.Millisecond || total > 5*time.Second {
			t.Fatalf("query CPU %v outside plausible range", total)
		}
	}
	// Registration spacing: 8/s.
	if specs[1].Arrival-specs[0].Arrival != 125*time.Millisecond {
		t.Fatalf("registration interval = %v", specs[1].Arrival-specs[0].Arrival)
	}
}

func findSpec(cat *Catalog, id core.BATID) (cluster.BATSpec, bool) {
	for _, s := range cat.Specs() {
		if s.ID == id {
			return s, true
		}
	}
	return cluster.BATSpec{}, false
}

func TestSingleNodeMakespanMatchesPaperBallpark(t *testing.T) {
	// Two-node ring with all data owned by node 0 and all queries on
	// node 0 == the paper's simulated single node: no remote waits.
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cfg.CoresPerNode = 4
	cfg.Ring.Data.QueueCap = 1 << 30
	c := cluster.New(cfg)
	cat := BuildCatalog(5, 1) // all owned by node 0
	for _, s := range cat.Specs() {
		c.AddBAT(s)
	}
	w := DefaultWorkload(1)
	w.QueriesPerNode = 300 // scaled down 4x for test speed
	specs := w.Build(rand.New(rand.NewSource(3)), cat)
	for _, q := range specs {
		c.Submit(q)
	}
	end := c.Run(30 * time.Minute)
	if c.QueriesDone() != 300 {
		t.Fatalf("done = %d", c.QueriesDone())
	}
	// 300 queries ≈ 315 CPU-seconds over 4 cores ≈ 79s; registration
	// takes 37.5s. Expect makespan near max(79, 37.5) with some tail.
	sec := end.Seconds()
	if sec < 60 || sec > 110 {
		t.Fatalf("single-node makespan = %.1fs, want ≈80s (quarter of the paper's 317s)", sec)
	}
	util := c.CPUUtilization(end) * 2 // node 1 idles; count node 0 only
	if util < 0.85 {
		t.Fatalf("CPU utilization = %.2f, want near-optimal (paper: 99.7%%)", util)
	}
}

func TestGenDBDeterministic(t *testing.T) {
	a := GenDB(0.001, 7)
	b := GenDB(0.001, 7)
	ca, _ := a.Column("lineitem", "l_quantity")
	cb, _ := b.Column("lineitem", "l_quantity")
	if ca.Len() != cb.Len() {
		t.Fatal("nondeterministic row count")
	}
	for i := 0; i < ca.Len(); i++ {
		if ca.Tail().Int(i) != cb.Tail().Int(i) {
			t.Fatal("nondeterministic data")
		}
	}
}

func TestGenDBShape(t *testing.T) {
	db := GenDB(0.001, 1)
	if got := db.Rows("lineitem"); got != 6000 {
		t.Fatalf("lineitem rows = %d, want 6000", got)
	}
	if got := db.Rows("orders"); got != 1500 {
		t.Fatalf("orders rows = %d", got)
	}
	if got := db.Rows("nation"); got != 25 {
		t.Fatalf("nation rows = %d", got)
	}
	if len(db.Columns()) < 15 {
		t.Fatalf("columns = %d", len(db.Columns()))
	}
}

func TestExecutableQ1(t *testing.T) {
	db := GenDB(0.001, 1)
	plan, err := minisql.Compile(Q1SQL, db.Schema(), "sys")
	if err != nil {
		t.Fatal(err)
	}
	v, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), Catalog: db}, plan)
	if err != nil {
		t.Fatal(err)
	}
	rs := v.(*mal.ResultSet)
	// 3 return flags x 2 statuses = up to 6 groups.
	if rs.NumRows() < 4 || rs.NumRows() > 6 {
		t.Fatalf("Q1 groups = %d", rs.NumRows())
	}
	// Aggregate sanity: count_order sums to the number of qualifying rows.
	lship, _ := db.Column("lineitem", "l_shipdate")
	qualifying := 0
	for i := 0; i < lship.Len(); i++ {
		if lship.Tail().Int(i) <= 19980902 {
			qualifying++
		}
	}
	var total int64
	idx := len(rs.Names) - 1 // count_order is last
	for _, row := range rs.Rows() {
		total += row[idx].(int64)
	}
	if int(total) != qualifying {
		t.Fatalf("count_order total = %d, want %d", total, qualifying)
	}
}

func TestExecutableQ6ish(t *testing.T) {
	db := GenDB(0.001, 1)
	plan, err := minisql.Compile(Q6ishSQL, db.Schema(), "sys")
	if err != nil {
		t.Fatal(err)
	}
	v, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), Catalog: db}, plan)
	if err != nil {
		t.Fatal(err)
	}
	rs := v.(*mal.ResultSet)
	if rs.NumRows() != 1 {
		t.Fatalf("rows = %d", rs.NumRows())
	}
	if cnt := rs.Row(0)[1].(int64); cnt <= 0 {
		t.Fatalf("no qualifying rows; data generator too narrow (count=%d)", cnt)
	}
}

func TestExecutableQ3ish(t *testing.T) {
	db := GenDB(0.001, 1)
	plan, err := minisql.Compile(Q3ishSQL, db.Schema(), "sys")
	if err != nil {
		t.Fatal(err)
	}
	v, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), Catalog: db, Workers: 4}, plan)
	if err != nil {
		t.Fatal(err)
	}
	rs := v.(*mal.ResultSet)
	if rs.NumRows() == 0 || rs.NumRows() > 10 {
		t.Fatalf("Q3 rows = %d (limit 10)", rs.NumRows())
	}
	// Revenue ordered descending.
	prev := rs.Row(0)[1].(float64)
	for i := 1; i < rs.NumRows(); i++ {
		cur := rs.Row(i)[1].(float64)
		if cur > prev {
			t.Fatal("revenue not descending")
		}
		prev = cur
	}
}
