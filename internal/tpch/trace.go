// Package tpch provides the TPC-H substrate of the evaluation (§5.4):
//
//   - a trace model of the 22 queries — which columns (BATs) each query
//     touches and how much operator CPU time it spends — calibrated so a
//     simulated single node reproduces the paper's Table-4 baseline
//     (1200 queries, 8 q/s registration, 4 cores, ≈317 s at ≈99% CPU);
//   - a deterministic mini data generator producing real relational
//     columns for the executable SQL examples and the live ring.
//
// Substitution note (documented in DESIGN.md): the paper calibrates with
// proprietary MonetDB traces; we synthesize equivalent traces. Column
// BATs larger than PartitionBytes are range-partitioned and each query
// instance touches one partition per column — across the 1200-query
// stream the interest covers all partitions, which preserves the hot-set
// behaviour the experiment measures.
package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// PartitionBytes caps the size of one column partition BAT.
const PartitionBytes = 16 << 20

// RowBytes is the assumed per-value width of a column (MonetDB's dense
// binary columns; strings are dictionary-encoded in this model).
const RowBytes = 8

// Table rows per scale factor 1.
var tableRowsSF1 = map[string]int{
	"lineitem": 6_000_000,
	"orders":   1_500_000,
	"partsupp": 800_000,
	"part":     200_000,
	"customer": 150_000,
	"supplier": 10_000,
	"nation":   25,
	"region":   5,
}

// TraceColumn names one column touched by a query.
type TraceColumn struct {
	Table  string
	Column string
}

// QueryTrace describes one of the 22 TPC-H queries for the simulator.
type QueryTrace struct {
	Name    string
	Columns []TraceColumn
	// Time is the net CPU time of the query at SF-5 on the simulated
	// engine (the sum of all operator execution times in the trace).
	Time time.Duration
}

func cols(table string, names ...string) []TraceColumn {
	out := make([]TraceColumn, len(names))
	for i, n := range names {
		out[i] = TraceColumn{Table: table, Column: n}
	}
	return out
}

func concat(groups ...[]TraceColumn) []TraceColumn {
	var out []TraceColumn
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// traceCalibration scales the synthetic per-query times so that the
// Gaussian(10,2) mix averages ≈1.056 s of CPU per query — the value
// that reproduces Table 4's single-node total (1200 queries × 1.056 s /
// 4 cores ≈ 317 s).
const traceCalibration = 1.121

// Queries returns the 22 query traces, ordered Q1..Q22. The CPU times
// are synthetic but follow the well-known relative weight of the
// queries (Q1/Q9/Q18/Q21 heavy; Q2/Q6/Q13 light) and are calibrated so
// the Gaussian(10,2) mix of §5.4 averages ≈1.05 s of CPU per query,
// reproducing the paper's single-node totals.
func Queries() []QueryTrace {
	ms := func(v int) time.Duration {
		return time.Duration(float64(v) * traceCalibration * float64(time.Millisecond))
	}
	return []QueryTrace{
		{"Q1", cols("lineitem", "l_shipdate", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus"), ms(2600)},
		{"Q2", concat(cols("part", "p_partkey", "p_size", "p_type"), cols("supplier", "s_suppkey", "s_nationkey"), cols("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost"), cols("nation", "n_nationkey", "n_regionkey"), cols("region", "r_regionkey", "r_name")), ms(320)},
		{"Q3", concat(cols("customer", "c_custkey", "c_mktsegment"), cols("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"), cols("lineitem", "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate")), ms(1250)},
		{"Q4", concat(cols("orders", "o_orderkey", "o_orderdate", "o_orderpriority"), cols("lineitem", "l_orderkey", "l_commitdate", "l_receiptdate")), ms(900)},
		{"Q5", concat(cols("customer", "c_custkey", "c_nationkey"), cols("orders", "o_orderkey", "o_custkey", "o_orderdate"), cols("lineitem", "l_orderkey", "l_suppkey", "l_extendedprice"), cols("supplier", "s_suppkey", "s_nationkey"), cols("nation", "n_nationkey", "n_regionkey"), cols("region", "r_regionkey", "r_name")), ms(1500)},
		{"Q6", cols("lineitem", "l_shipdate", "l_discount", "l_quantity", "l_extendedprice"), ms(280)},
		{"Q7", concat(cols("supplier", "s_suppkey", "s_nationkey"), cols("lineitem", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"), cols("orders", "o_orderkey", "o_custkey"), cols("customer", "c_custkey", "c_nationkey"), cols("nation", "n_nationkey", "n_name")), ms(1650)},
		{"Q8", concat(cols("part", "p_partkey", "p_type"), cols("supplier", "s_suppkey", "s_nationkey"), cols("lineitem", "l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount"), cols("orders", "o_orderkey", "o_custkey", "o_orderdate"), cols("customer", "c_custkey", "c_nationkey"), cols("nation", "n_nationkey", "n_regionkey"), cols("region", "r_regionkey", "r_name")), ms(1400)},
		{"Q9", concat(cols("part", "p_partkey", "p_name"), cols("supplier", "s_suppkey", "s_nationkey"), cols("lineitem", "l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount", "l_quantity"), cols("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost"), cols("orders", "o_orderkey", "o_orderdate"), cols("nation", "n_nationkey", "n_name")), ms(3300)},
		{"Q10", concat(cols("customer", "c_custkey", "c_name", "c_nationkey", "c_acctbal"), cols("orders", "o_orderkey", "o_custkey", "o_orderdate"), cols("lineitem", "l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"), cols("nation", "n_nationkey", "n_name")), ms(1350)},
		{"Q11", concat(cols("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost"), cols("supplier", "s_suppkey", "s_nationkey"), cols("nation", "n_nationkey", "n_name")), ms(420)},
		{"Q12", concat(cols("orders", "o_orderkey", "o_orderpriority"), cols("lineitem", "l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate", "l_shipdate")), ms(1000)},
		{"Q13", concat(cols("customer", "c_custkey"), cols("orders", "o_custkey", "o_comment")), ms(650)},
		{"Q14", concat(cols("lineitem", "l_partkey", "l_extendedprice", "l_discount", "l_shipdate"), cols("part", "p_partkey", "p_type")), ms(700)},
		{"Q15", concat(cols("lineitem", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"), cols("supplier", "s_suppkey", "s_name")), ms(750)},
		{"Q16", concat(cols("partsupp", "ps_partkey", "ps_suppkey"), cols("part", "p_partkey", "p_brand", "p_type", "p_size"), cols("supplier", "s_suppkey", "s_comment")), ms(550)},
		{"Q17", concat(cols("lineitem", "l_partkey", "l_quantity", "l_extendedprice"), cols("part", "p_partkey", "p_brand", "p_container")), ms(1800)},
		{"Q18", concat(cols("customer", "c_custkey", "c_name"), cols("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"), cols("lineitem", "l_orderkey", "l_quantity")), ms(2900)},
		{"Q19", concat(cols("lineitem", "l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipmode", "l_shipinstruct"), cols("part", "p_partkey", "p_brand", "p_container", "p_size")), ms(1100)},
		{"Q20", concat(cols("supplier", "s_suppkey", "s_name", "s_nationkey"), cols("nation", "n_nationkey", "n_name"), cols("partsupp", "ps_partkey", "ps_suppkey", "ps_availqty"), cols("part", "p_partkey", "p_name"), cols("lineitem", "l_partkey", "l_suppkey", "l_quantity")), ms(1200)},
		{"Q21", concat(cols("supplier", "s_suppkey", "s_name", "s_nationkey"), cols("lineitem", "l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"), cols("orders", "o_orderkey", "o_orderstatus"), cols("nation", "n_nationkey", "n_name")), ms(3100)},
		{"Q22", concat(cols("customer", "c_custkey", "c_phone", "c_acctbal"), cols("orders", "o_custkey")), ms(380)},
	}
}

// Catalog maps every (table, column, partition) of the touched columns
// to a BAT id with its size, for a given scale factor.
type Catalog struct {
	SF float64
	// ids[table.column] = BAT ids of the column's partitions.
	ids   map[string][]core.BATID
	specs []cluster.BATSpec
}

// BuildCatalog allocates partitioned column BATs for every column any
// query touches, assigning owners round-robin over nodes.
func BuildCatalog(sf float64, nodes int) *Catalog {
	cat := &Catalog{SF: sf, ids: map[string][]core.BATID{}}
	next := core.BATID(0)
	seen := map[string]bool{}
	for _, q := range Queries() {
		for _, c := range q.Columns {
			key := c.Table + "." + c.Column
			if seen[key] {
				continue
			}
			seen[key] = true
			rows := int(float64(tableRowsSF1[c.Table]) * sf)
			if rows < 1 {
				rows = 1
			}
			bytes := rows * RowBytes
			nparts := (bytes + PartitionBytes - 1) / PartitionBytes
			if nparts < 1 {
				nparts = 1
			}
			per := bytes / nparts
			for p := 0; p < nparts; p++ {
				cat.ids[key] = append(cat.ids[key], next)
				cat.specs = append(cat.specs, cluster.BATSpec{
					ID:    next,
					Size:  per,
					Owner: core.NodeID(int(next) % nodes),
					Tag:   c.Table,
				})
				next++
			}
		}
	}
	return cat
}

// Specs returns the BAT specs to populate a cluster with.
func (c *Catalog) Specs() []cluster.BATSpec { return c.specs }

// NumBATs reports the catalog size.
func (c *Catalog) NumBATs() int { return len(c.specs) }

// TotalBytes reports the dataset size.
func (c *Catalog) TotalBytes() int {
	t := 0
	for _, s := range c.specs {
		t += s.Size
	}
	return t
}

// Partitions returns the BAT ids of one column.
func (c *Catalog) Partitions(table, column string) []core.BATID {
	return c.ids[table+"."+column]
}

// WorkloadConfig describes the §5.4 experiment.
type WorkloadConfig struct {
	Nodes          int
	QueriesPerNode int     // paper: 1200
	Rate           float64 // registrations per second per node (paper: 8)
	MixMean        float64 // Gaussian schedule mean (paper: 10)
	MixStd         float64 // Gaussian schedule std (paper: 2)
	// OpShare is the fraction of a query's CPU spent between pins (the
	// OpT gaps); the rest is the tail T after the last pin.
	OpShare float64
}

// DefaultWorkload mirrors §5.4.
func DefaultWorkload(nodes int) WorkloadConfig {
	return WorkloadConfig{
		Nodes:          nodes,
		QueriesPerNode: 1200,
		Rate:           8,
		MixMean:        10,
		MixStd:         2,
		OpShare:        0.55,
	}
}

// Build generates the query stream: queries per node registered at Rate,
// template chosen by rank ~ N(MixMean, MixStd) over the queries sorted
// by CPU time (fast queries more likely). Each query pins one partition
// per touched column, with operator-time gaps between pins.
func (w WorkloadConfig) Build(rng *rand.Rand, cat *Catalog) []cluster.QuerySpec {
	qs := Queries()
	// Sort by time ascending = speed rank (they are close to sorted;
	// do it properly).
	sorted := make([]QueryTrace, len(qs))
	copy(sorted, qs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Time < sorted[j-1].Time; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	interval := time.Duration(float64(time.Second) / w.Rate)
	var specs []cluster.QuerySpec
	id := int64(0)
	for node := 0; node < w.Nodes; node++ {
		for k := 0; k < w.QueriesPerNode; k++ {
			rank := int(rng.NormFloat64()*w.MixStd + w.MixMean)
			if rank < 1 {
				rank = 1
			}
			if rank > len(sorted) {
				rank = len(sorted)
			}
			q := sorted[rank-1]
			spec := w.instance(rng, cat, q, core.NodeID(node))
			spec.ID = core.QueryID(id)
			spec.Arrival = time.Duration(k) * interval
			specs = append(specs, spec)
			id++
		}
	}
	return specs
}

// instance builds one query execution trace: a pin per touched column
// partition with OpT gaps, per the §5.4 calibration scheme.
func (w WorkloadConfig) instance(rng *rand.Rand, cat *Catalog, q QueryTrace, node core.NodeID) cluster.QuerySpec {
	n := len(q.Columns)
	opTotal := time.Duration(float64(q.Time) * w.OpShare)
	tail := q.Time - opTotal
	perOp := opTotal / time.Duration(n)
	steps := make([]cluster.Step, 0, n)
	for i, c := range q.Columns {
		parts := cat.Partitions(c.Table, c.Column)
		b := parts[rng.Intn(len(parts))]
		proc := perOp
		if i == n-1 {
			proc += tail // the T after the last pin
		}
		steps = append(steps, cluster.Step{BAT: b, Proc: proc})
	}
	return cluster.QuerySpec{Node: node, Steps: steps, Tag: q.Name}
}

// MeanQueryTime reports the expected CPU per query under the mix, for
// calibration checks.
func (w WorkloadConfig) MeanQueryTime(rng *rand.Rand, samples int) time.Duration {
	cat := Queries()
	sorted := make([]QueryTrace, len(cat))
	copy(sorted, cat)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Time < sorted[j-1].Time; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var total time.Duration
	for i := 0; i < samples; i++ {
		rank := int(rng.NormFloat64()*w.MixStd + w.MixMean)
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		total += sorted[rank-1].Time
	}
	return total / time.Duration(samples)
}

// BaselineEfficiency models the real-engine (MonetDB) baseline of
// Table 4: thread management and client context switches keep the CPU
// at ~70%, so the measured wall-clock is simulated-ideal / efficiency.
const BaselineEfficiency = 317.0 / 420.0

// BaselineCPUPercent is the CPU utilization Table 4 reports for the
// MonetDB baseline.
const BaselineCPUPercent = 70.0

func (c *Catalog) String() string {
	return fmt.Sprintf("tpch.Catalog{SF=%.1f, BATs=%d, bytes=%d}", c.SF, len(c.specs), c.TotalBytes())
}
