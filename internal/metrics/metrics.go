// Package metrics provides the small set of measurement containers the
// experiments need: time series, histograms, and cumulative event
// counters, all keyed by seconds of (virtual) time.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is an append-only time series of (seconds, value) samples.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Add appends a sample. Times should be non-decreasing.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.T) }

// At returns the last value sampled at or before t, or 0 before the
// first sample.
func (s *Series) At(t float64) float64 {
	i := sort.SearchFloat64s(s.T, t)
	// i is the first index with T[i] >= t; we want the last <= t.
	if i < len(s.T) && s.T[i] == t {
		for i+1 < len(s.T) && s.T[i+1] == t {
			i++
		}
		return s.V[i]
	}
	if i == 0 {
		return 0
	}
	return s.V[i-1]
}

// Max returns the maximum value (0 for an empty series).
func (s *Series) Max() float64 {
	max := 0.0
	for _, v := range s.V {
		if v > max {
			max = v
		}
	}
	return max
}

// Downsample returns per-interval last-value samples from 0 to until.
func (s *Series) Downsample(until, interval float64) *Series {
	out := &Series{Name: s.Name}
	for t := 0.0; t <= until+1e-9; t += interval {
		out.Add(t, s.At(t))
	}
	return out
}

func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for i := range s.T {
		fmt.Fprintf(&b, "%.2f\t%.3f\n", s.T[i], s.V[i])
	}
	return b.String()
}

// Events is a multiset of event timestamps (seconds), used for
// cumulative plots such as Figure 6a.
type Events struct {
	Name  string
	times []float64
	dirty bool
}

// Add records one event at time t.
func (e *Events) Add(t float64) {
	e.times = append(e.times, t)
	e.dirty = true
}

// Count reports the total number of events.
func (e *Events) Count() int { return len(e.times) }

func (e *Events) sorted() []float64 {
	if e.dirty {
		sort.Float64s(e.times)
		e.dirty = false
	}
	return e.times
}

// CumulativeAt reports how many events occurred at or before t.
func (e *Events) CumulativeAt(t float64) int {
	ts := e.sorted()
	return sort.SearchFloat64s(ts, math.Nextafter(t, math.Inf(1)))
}

// CumulativeSeries samples the cumulative count every interval seconds
// from 0 to until.
func (e *Events) CumulativeSeries(until, interval float64) *Series {
	s := &Series{Name: e.Name}
	for t := 0.0; t <= until+1e-9; t += interval {
		s.Add(t, float64(e.CumulativeAt(t)))
	}
	return s
}

// Last reports the time of the last event (0 when empty).
func (e *Events) Last() float64 {
	ts := e.sorted()
	if len(ts) == 0 {
		return 0
	}
	return ts[len(ts)-1]
}

// Histogram is a fixed-width bucket histogram over float64 observations
// (used for the query lifetime distribution of Figure 6b).
type Histogram struct {
	Name   string
	Width  float64 // bucket width
	counts []int
	n      int
	sum    float64
	max    float64
}

// NewHistogram creates a histogram with the given bucket width.
func NewHistogram(name string, width float64) *Histogram {
	if width <= 0 {
		panic("metrics: non-positive histogram width")
	}
	return &Histogram{Name: name, Width: width}
}

// Observe records v (negative values clamp to bucket 0).
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	b := int(v / h.Width)
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int { return h.n }

// Mean reports the average observation.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max reports the largest observation.
func (h *Histogram) Max() float64 { return h.max }

// Buckets returns (lowerBound, count) pairs for non-empty buckets.
func (h *Histogram) Buckets() (bounds []float64, counts []int) {
	for i, c := range h.counts {
		bounds = append(bounds, float64(i)*h.Width)
		counts = append(counts, c)
	}
	return bounds, counts
}

// Quantile returns an approximate q-quantile (q in [0,1]) using bucket
// midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	cum := 0
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return (float64(i) + 0.5) * h.Width
		}
	}
	return h.max
}

func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (n=%d mean=%.3f max=%.3f)\n", h.Name, h.n, h.Mean(), h.max)
	for i, c := range h.counts {
		if c > 0 {
			fmt.Fprintf(&b, "[%.1f,%.1f)\t%d\n", float64(i)*h.Width, float64(i+1)*h.Width, c)
		}
	}
	return b.String()
}

// IntMap is a counter keyed by an integer id (per-BAT touches, loads,
// requests, cycles...).
type IntMap struct {
	Name string
	m    map[int]int
}

// NewIntMap creates an empty counter map.
func NewIntMap(name string) *IntMap { return &IntMap{Name: name, m: map[int]int{}} }

// Inc adds delta to key.
func (c *IntMap) Inc(key, delta int) { c.m[key] += delta }

// SetMax records the maximum value seen for key.
func (c *IntMap) SetMax(key, v int) {
	if v > c.m[key] {
		c.m[key] = v
	}
}

// Get returns the counter for key.
func (c *IntMap) Get(key int) int { return c.m[key] }

// Keys returns all keys in ascending order.
func (c *IntMap) Keys() []int {
	keys := make([]int, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Total sums all counters.
func (c *IntMap) Total() int {
	t := 0
	for _, v := range c.m {
		t += v
	}
	return t
}

// FloatMap records a float per integer key with max semantics.
type FloatMap struct {
	Name string
	m    map[int]float64
}

// NewFloatMap creates an empty map.
func NewFloatMap(name string) *FloatMap { return &FloatMap{Name: name, m: map[int]float64{}} }

// SetMax records the maximum value seen for key.
func (c *FloatMap) SetMax(key int, v float64) {
	if v > c.m[key] {
		c.m[key] = v
	}
}

// Get returns the value for key.
func (c *FloatMap) Get(key int) float64 { return c.m[key] }

// Keys returns all keys in ascending order.
func (c *FloatMap) Keys() []int {
	keys := make([]int, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
