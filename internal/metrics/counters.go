package metrics

import (
	"sync"
	"sync/atomic"
)

// This file holds the concurrency-safe counters the query service uses
// for per-query latency and outcome accounting. Unlike the simulation
// containers above (single-threaded by construction), these are updated
// from many connection handlers at once.

// Counter is an atomic cumulative event counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one and returns the new value.
func (c *Counter) Inc() int64 { return c.v.Add(1) }

// Add adds delta and returns the new value.
func (c *Counter) Add(delta int64) int64 { return c.v.Add(delta) }

// Get returns the current value.
func (c *Counter) Get() int64 { return c.v.Load() }

// Gauge is an atomic up/down gauge that also tracks the maximum value
// it ever reached (e.g. peak in-flight queries).
type Gauge struct{ v, max atomic.Int64 }

// Inc raises the gauge by one and returns the new value.
func (g *Gauge) Inc() int64 {
	n := g.v.Add(1)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return n
		}
	}
}

// Dec lowers the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Get returns the current value.
func (g *Gauge) Get() int64 { return g.v.Load() }

// Max returns the highest value the gauge ever reached.
func (g *Gauge) Max() int64 { return g.max.Load() }

// SyncHistogram is a Histogram safe for concurrent Observe/read. It
// keeps the fixed-width bucket semantics (and quantile approximation)
// of Histogram behind a mutex.
type SyncHistogram struct {
	mu sync.Mutex
	h  *Histogram
}

// NewSyncHistogram creates a concurrency-safe histogram with the given
// bucket width.
func NewSyncHistogram(name string, width float64) *SyncHistogram {
	return &SyncHistogram{h: NewHistogram(name, width)}
}

// Observe records v.
func (s *SyncHistogram) Observe(v float64) {
	s.mu.Lock()
	s.h.Observe(v)
	s.mu.Unlock()
}

// Count reports the number of observations.
func (s *SyncHistogram) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Count()
}

// Mean reports the average observation.
func (s *SyncHistogram) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Mean()
}

// Max reports the largest observation.
func (s *SyncHistogram) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Max()
}

// Quantile returns an approximate q-quantile (q in [0,1]).
func (s *SyncHistogram) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Quantile(q)
}

// Snapshot returns an independent copy of the underlying histogram.
func (s *SyncHistogram) Snapshot() *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *s.h
	cp.counts = append([]int(nil), s.h.counts...)
	return &cp
}
