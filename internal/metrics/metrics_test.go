package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAt(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(2, 25) // same-time update: last wins
	s.Add(5, 50)
	cases := []struct {
		t, want float64
	}{
		{0, 0}, {1, 10}, {1.5, 10}, {2, 25}, {4.9, 25}, {5, 50}, {100, 50},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if s.Max() != 50 {
		t.Errorf("Max = %v", s.Max())
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(0.4, 1)
	s.Add(1.6, 2)
	d := s.Downsample(3, 1)
	if d.Len() != 4 {
		t.Fatalf("downsample len = %d, want 4", d.Len())
	}
	want := []float64{0, 1, 2, 2}
	for i, w := range want {
		if d.V[i] != w {
			t.Fatalf("downsample = %v, want %v", d.V, want)
		}
	}
	if !strings.Contains(d.String(), "# x") {
		t.Error("String missing header")
	}
}

func TestEvents(t *testing.T) {
	e := &Events{Name: "q"}
	for _, tm := range []float64{3, 1, 2, 2} {
		e.Add(tm)
	}
	if e.Count() != 4 {
		t.Fatalf("Count = %d", e.Count())
	}
	if got := e.CumulativeAt(0.5); got != 0 {
		t.Errorf("CumulativeAt(0.5) = %d", got)
	}
	if got := e.CumulativeAt(2); got != 3 {
		t.Errorf("CumulativeAt(2) = %d, want 3 (inclusive)", got)
	}
	if got := e.CumulativeAt(10); got != 4 {
		t.Errorf("CumulativeAt(10) = %d", got)
	}
	if e.Last() != 3 {
		t.Errorf("Last = %v", e.Last())
	}
	s := e.CumulativeSeries(3, 1)
	if s.V[3] != 4 {
		t.Errorf("cumulative series = %v", s.V)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("life", 5)
	for _, v := range []float64{1, 2, 7, 12, 12.5, -1} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || counts[0] != 3 || counts[1] != 1 || counts[2] != 2 {
		t.Fatalf("buckets = %v %v", bounds, counts)
	}
	if h.Max() != 12.5 {
		t.Errorf("Max = %v", h.Max())
	}
	if m := h.Mean(); m < 5.7 || m > 5.8 {
		t.Errorf("Mean = %v", m)
	}
	if q := h.Quantile(0.5); q != 2.5 {
		t.Errorf("median = %v, want 2.5 (bucket midpoint)", q)
	}
	if q := h.Quantile(1.0); q != 12.5 {
		t.Errorf("p100 = %v", q)
	}
	if !strings.Contains(h.String(), "n=6") {
		t.Error("String missing count")
	}
}

func TestHistogramPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram("bad", 0)
}

func TestIntMap(t *testing.T) {
	m := NewIntMap("touches")
	m.Inc(5, 2)
	m.Inc(5, 3)
	m.Inc(1, 1)
	if m.Get(5) != 5 || m.Get(1) != 1 || m.Get(99) != 0 {
		t.Fatalf("counters wrong")
	}
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 5 {
		t.Fatalf("Keys = %v", keys)
	}
	if m.Total() != 6 {
		t.Fatalf("Total = %d", m.Total())
	}
	m.SetMax(1, 10)
	m.SetMax(1, 7)
	if m.Get(1) != 10 {
		t.Fatalf("SetMax = %d", m.Get(1))
	}
}

func TestFloatMap(t *testing.T) {
	m := NewFloatMap("latency")
	m.SetMax(3, 1.5)
	m.SetMax(3, 0.5)
	m.SetMax(7, 2.5)
	if m.Get(3) != 1.5 || m.Get(7) != 2.5 {
		t.Fatal("SetMax wrong")
	}
	if k := m.Keys(); len(k) != 2 || k[0] != 3 {
		t.Fatalf("Keys = %v", k)
	}
}

// Property: cumulative counts are monotone and end at Count().
func TestPropertyCumulativeMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		e := &Events{}
		for _, r := range raw {
			e.Add(float64(r) / 100)
		}
		prev := 0
		for t := 0.0; t < 700; t += 7 {
			c := e.CumulativeAt(t)
			if c < prev {
				return false
			}
			prev = c
		}
		return e.CumulativeAt(1e9) == e.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram total count equals observations; quantiles are
// non-decreasing in q.
func TestPropertyHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		h := NewHistogram("t", 1)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			h.Observe(rng.Float64() * 100)
		}
		if h.Count() != n {
			t.Fatal("count mismatch")
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("quantile regression at q=%.1f: %v < %v", q, v, prev)
			}
			prev = v
		}
	}
}
