package metrics

import (
	"runtime"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Get(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
}

func TestGaugeTracksMax(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	hold := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Inc()
			<-hold
			g.Dec()
		}()
	}
	// Wait for all increments to land.
	for g.Get() != 8 {
		runtime.Gosched()
	}
	close(hold)
	wg.Wait()
	if g.Get() != 0 {
		t.Fatalf("gauge = %d after all decrements", g.Get())
	}
	if g.Max() != 8 {
		t.Fatalf("max = %d, want 8", g.Max())
	}
}

func TestSyncHistogramQuantiles(t *testing.T) {
	h := NewSyncHistogram("lat", 0.001)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				h.Observe(float64(i) * 0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 400 {
		t.Fatalf("count = %d, want 400", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.040 || p50 > 0.060 {
		t.Fatalf("p50 = %f, want ~0.050", p50)
	}
	snap := h.Snapshot()
	h.Observe(10)
	if snap.Count() != 400 {
		t.Fatal("snapshot mutated by later Observe")
	}
}
