package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueUsable(t *testing.T) {
	var s Simulator
	fired := false
	s.Schedule(time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if got := s.Now(); got != Time(time.Second) {
		t.Fatalf("Now() = %v, want 1s", got)
	}
}

func TestOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3*time.Second, func() { order = append(order, 3) })
	s.Schedule(1*time.Second, func() { order = append(order, 1) })
	s.Schedule(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(time.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelNil(t *testing.T) {
	var e *Event
	e.Cancel() // must not panic
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 5 {
			s.Schedule(time.Millisecond, rec)
		}
	}
	s.Schedule(0, rec)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if got, want := s.Now(), Time(4*time.Millisecond); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {
		e := s.ScheduleAt(0, func() {})
		if e.At() != s.Now() {
			t.Errorf("past event at %v, want clamped to %v", e.At(), s.Now())
		}
	})
	s.Run()
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Fatalf("negative-delay event: fired=%v now=%v", fired, s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var times []Time
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Second
		s.Schedule(d, func() { times = append(times, s.Now()) })
	}
	s.RunUntil(Time(3 * time.Second))
	if len(times) != 3 {
		t.Fatalf("fired %d events, want 3", len(times))
	}
	if s.Now() != Time(3*time.Second) {
		t.Fatalf("Now() = %v, want 3s", s.Now())
	}
	s.RunUntil(Time(10 * time.Second))
	if len(times) != 5 {
		t.Fatalf("fired %d events total, want 5", len(times))
	}
	if s.Now() != Time(10*time.Second) {
		t.Fatalf("Now() = %v, want 10s (clock advances past last event)", s.Now())
	}
}

func TestRunUntilFiresBoundary(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(time.Second, func() { fired = true })
	s.RunUntil(Time(time.Second))
	if !fired {
		t.Fatal("event exactly at boundary did not fire")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt the loop)", count)
	}
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10 after resuming", count)
	}
}

func TestTicker(t *testing.T) {
	s := New()
	count := 0
	var stop func()
	stop = s.Ticker(time.Second, func() {
		count++
		if count == 4 {
			stop()
		}
	})
	s.RunUntil(Time(100 * time.Second))
	if count != 4 {
		t.Fatalf("ticks = %d, want 4", count)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d, want 0 after ticker stop", s.Pending())
	}
}

func TestTickerPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Ticker(0, func() {})
}

func TestFiredCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(time.Duration(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", tm.Seconds())
	}
	if tm.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Errorf("Add failed")
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Errorf("Sub failed")
	}
	if tm.String() != "1.500s" {
		t.Errorf("String() = %q", tm.String())
	}
}

// Property: for any set of delays, events fire in non-decreasing time
// order and the clock ends at the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint32) bool {
		s := New()
		var fireTimes []Time
		var max Time
		for _, d := range delays {
			dd := Duration(d % 1e9)
			at := Time(dd)
			if at > max {
				max = at
			}
			s.Schedule(dd, func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		return len(delays) == 0 || s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New()
		n := 1 + rng.Intn(100)
		fired := 0
		events := make([]*Event, n)
		for i := range events {
			events[i] = s.Schedule(Duration(rng.Intn(1000)), func() { fired++ })
		}
		cancelled := 0
		for _, e := range events {
			if rng.Intn(2) == 0 {
				e.Cancel()
				cancelled++
			}
		}
		s.Run()
		if fired != n-cancelled {
			t.Fatalf("fired = %d, want %d", fired, n-cancelled)
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 100; j++ {
			s.Schedule(Duration(j), func() {})
		}
		s.Run()
	}
}
