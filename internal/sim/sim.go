// Package sim provides a deterministic discrete-event simulation kernel.
//
// It is the replacement for the NS-2 core used in the paper's evaluation:
// a virtual clock plus an event heap. All Data Cyclotron protocol code is
// written against this clock so that every experiment is reproducible
// bit-for-bit from its seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration for convenience; link delays and
// processing times are expressed with it.
type Duration = time.Duration

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 once removed
	cancel bool
}

// At reports the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending event set.
// The zero value is ready to use.
type Simulator struct {
	now     Time
	seq     uint64
	events  eventHeap
	fired   uint64
	stopped bool
}

// New returns a simulator with its clock at zero.
func New() *Simulator { return &Simulator{} }

// Now reports the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are scheduled and not yet fired.
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero. The returned event may be cancelled.
func (s *Simulator) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now.Add(d), fn)
}

// ScheduleAt runs fn at absolute virtual time t. Times in the past are
// clamped to the current time (the event still fires after all events
// already scheduled for Now).
func (s *Simulator) ScheduleAt(t Time, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, e)
	return e
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the next event, if any, advancing the clock to its time.
// It reports whether an event was fired.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until none remain or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with times <= t, then advances the clock to t.
// Events scheduled exactly at t do fire.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.events) == 0 {
			break
		}
		// Peek at the earliest non-cancelled event.
		e := s.events[0]
		if e.cancel {
			heap.Pop(&s.events)
			continue
		}
		if e.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Ticker invokes fn every period until cancelled via the returned stop
// function. The first invocation happens after one period.
func (s *Simulator) Ticker(period Duration, fn func()) (stop func()) {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			s.Schedule(period, tick)
		}
	}
	s.Schedule(period, tick)
	return func() { stopped = true }
}
