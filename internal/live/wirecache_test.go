package live

import (
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/mal"
)

// TestWireCacheReusesMarshalledBytes runs the same query twice and
// checks that at least some data forwards reused the cached serialized
// form instead of paying bat.Marshal again.
func TestWireCacheReusesMarshalledBytes(t *testing.T) {
	r := newTestRing(t, 3)
	defer r.Close()
	q := "select c.t_id from t, c where c.t_id = t.id"
	for i := 0; i < 2; i++ {
		if _, err := r.Node(1).ExecSQL(q); err != nil {
			t.Fatal(err)
		}
	}
	var hits, misses int64
	for i := 0; i < r.Size(); i++ {
		h, m := r.Node(i).WireCacheStats()
		hits += h
		misses += m
	}
	if misses == 0 {
		t.Fatal("no data sends recorded")
	}
	if hits == 0 {
		t.Fatal("every forward re-marshalled its fragment; cache never hit")
	}
}

// TestWireCacheInvalidatedOnUpdate installs a new column version and
// checks readers eventually see it: stale cached bytes must not keep
// being served for the updated fragment.
func TestWireCacheInvalidatedOnUpdate(t *testing.T) {
	cols, schema := testColumns()
	cfg := DefaultConfig()
	// Aggressive eviction so re-fetches reload from the owner's store.
	cfg.Core.LOITLevels = []float64{10}
	cfg.Core.AdaptiveLOIT = false
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	sum := func() int64 {
		rs, err := r.Node(1).ExecSQL("select sum(val) from c")
		if err != nil {
			t.Fatal(err)
		}
		return rs.Row(0)[0].(int64)
	}
	if got := sum(); got != 1000 {
		t.Fatalf("base sum = %d, want 1000", got)
	}
	if _, err := r.UpdateColumn("c.val", func(old *bat.BAT) *bat.BAT {
		return bat.MakeInts("c.val", []int64{1, 1, 1, 1})
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var got int64
	for time.Now().Before(deadline) {
		if got = sum(); got == 4 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("new version never visible (sum = %d): stale wire bytes still circulating", got)
}

// TestExecPlanErrorDoesNotLeakInterpreter drives the errCh failure path
// of ExecPlan: a plan pins both a real column and a phantom fragment no
// node owns, so the phantom request returns to origin and fails the
// query while the other pin may still be blocked. The interpreter
// goroutine must exit (via cancellation), not strand forever against a
// cancelled query.
func TestExecPlanErrorDoesNotLeakInterpreter(t *testing.T) {
	r := newTestRing(t, 3)
	defer r.Close()
	n := r.Node(0)

	r.idsMu.Lock()
	r.cols["ghost.col"] = &colFrags{ids: []core.BATID{777}}
	r.idsMu.Unlock()

	for i := 0; i < 5; i++ {
		b := mal.NewBuilder("leaky")
		g := b.Emit("datacyclotron", "request", mal.L("sys"), mal.L("ghost"), mal.L("col"))
		h := b.Emit("datacyclotron", "request", mal.L("sys"), mal.L("t"), mal.L("id"))
		pg := b.Emit("datacyclotron", "pin", mal.V(g))
		ph := b.Emit("datacyclotron", "pin", mal.V(h))
		_ = pg
		b.SetResult(ph)
		if _, err := n.ExecPlan(b.MustBuild()); err == nil {
			t.Fatal("query over phantom fragment succeeded")
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n.InterpRunning() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := n.InterpRunning(); got != 0 {
		t.Fatalf("%d interpreter goroutines still running after failed queries", got)
	}
	// The aborted pins must not leave refcounted payloads behind.
	n.mu.Lock()
	leftover := len(n.cached)
	n.mu.Unlock()
	if leftover != 0 {
		t.Fatalf("%d cached payloads leaked by aborted queries", leftover)
	}
}
