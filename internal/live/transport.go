package live

import (
	"fmt"
	"net"

	"repro/internal/rdma"
)

// newQueuePair creates one connected neighbour link of the chosen
// transport kind.
func newQueuePair(t Transport) (rdma.QueuePair, rdma.QueuePair, error) {
	switch t {
	case InProc:
		a, b := rdma.NewPair(rdma.MessengerDepth)
		return a, b, nil
	case TCP:
		return newTCPPair()
	}
	return nil, nil, fmt.Errorf("live: unknown transport %d", t)
}

// newTCPPair dials a loopback connection to itself and wraps both ends
// in the rdma TCP provider, so every ring message really crosses the
// kernel socket layer.
func newTCPPair() (rdma.QueuePair, rdma.QueuePair, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("live: listen: %w", err)
	}
	defer ln.Close()

	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		conn, err := ln.Accept()
		ch <- accepted{conn, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, fmt.Errorf("live: dial: %w", err)
	}
	acc := <-ch
	if acc.err != nil {
		dial.Close()
		return nil, nil, fmt.Errorf("live: accept: %w", acc.err)
	}
	return rdma.NewTCP(dial), rdma.NewTCP(acc.conn), nil
}
