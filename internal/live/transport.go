package live

import (
	"fmt"
	"net"

	"repro/internal/rdma"
)

// newQueuePair creates one connected neighbour link of the chosen
// transport kind. backend selects the wire engine for TCP links (the
// in-process transport has no wire and ignores it); maxMsg sizes the
// uring backend's registered receive staging. The returned reason is
// non-empty when a uring link degraded to tcp on this connection —
// ring-level auto/tcp resolution happens earlier, in NewRing.
func newQueuePair(t Transport, backend rdma.Backend, maxMsg int) (rdma.QueuePair, rdma.QueuePair, string, error) {
	switch t {
	case InProc:
		a, b := rdma.NewPair(rdma.MessengerDepth)
		return a, b, "", nil
	case TCP:
		return newTCPPair(backend, maxMsg)
	}
	return nil, nil, "", fmt.Errorf("live: unknown transport %d", t)
}

// newTCPPair dials a loopback connection to itself and wraps both ends
// in the selected rdma socket provider, so every ring message really
// crosses the kernel socket layer.
func newTCPPair(backend rdma.Backend, maxMsg int) (rdma.QueuePair, rdma.QueuePair, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, "", fmt.Errorf("live: listen: %w", err)
	}
	defer ln.Close()

	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		conn, err := ln.Accept()
		ch <- accepted{conn, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, "", fmt.Errorf("live: dial: %w", err)
	}
	acc := <-ch
	if acc.err != nil {
		dial.Close()
		return nil, nil, "", fmt.Errorf("live: accept: %w", acc.err)
	}
	setNoDelay(dial)
	setNoDelay(acc.conn)
	qa, reasonA, err := rdma.NewConnQP(dial, backend, maxMsg)
	if err != nil {
		dial.Close()
		acc.conn.Close()
		return nil, nil, "", err
	}
	qb, reasonB, err := rdma.NewConnQP(acc.conn, backend, maxMsg)
	if err != nil {
		qa.Close()
		acc.conn.Close()
		return nil, nil, "", err
	}
	// Both frame identically, so a one-sided uring fallback still
	// interoperates; surface whichever reason fired first.
	reason := reasonA
	if reason == "" {
		reason = reasonB
	}
	return qa, qb, reason, nil
}

// setNoDelay disables Nagle's algorithm explicitly on a ring data/req
// connection. Ring hops and request messages are latency-critical and
// already batched at the application layer (the hop scheduler coalesces
// co-resident fragments into one envelope), so delaying small segments
// to coalesce them again in the kernel only adds up to an RTT of queuing
// per hop. Go enables TCP_NODELAY by default, but the ring's latency
// gates depend on it — set it explicitly rather than inheriting a
// platform default.
func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
}
