package live

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/core"
)

func TestEnvelopeDataRoundtrip(t *testing.T) {
	payload := bat.AppendMarshal(nil, bat.MakeInts("x", []int64{1, 2, 3}))
	m := core.BATMsg{Owner: 3, BAT: 42, Size: 100, LOI: 0.75, Copies: 2, Hops: 9, Cycles: 4}
	const ver = 7
	buf := make([]byte, dataHdrSize+len(payload))
	encodeDataHdr(buf, m, ver, len(payload))
	copy(buf[dataHdrSize:], payload)

	got, gotVer, gotPayload, err := decodeDataMsg(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("header roundtrip: got %+v want %+v", got, m)
	}
	if gotVer != ver {
		t.Fatalf("fragment version roundtrip: got %d want %d", gotVer, ver)
	}
	b, err := bat.UnmarshalView(gotPayload)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 || b.Tail().Int(2) != 3 {
		t.Fatal("payload corrupted through the envelope")
	}
}

func TestEnvelopeReqRoundtrip(t *testing.T) {
	m := core.RequestMsg{Origin: 7, BAT: 12345}
	var buf [reqMsgSize]byte
	encodeReqMsg(buf[:], m)
	got, err := decodeReqMsg(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestEnvelopeRejectsCorruption(t *testing.T) {
	m := core.BATMsg{BAT: 1, Size: 10}
	buf := make([]byte, dataHdrSize)
	encodeDataHdr(buf, m, 0, 0)

	for _, mut := range []struct {
		name string
		data []byte
	}{
		{"short", buf[:10]},
		{"empty", nil},
		{"bad magic", append([]byte{'X', 'X'}, buf[2:]...)},
		{"bad version", append([]byte{'D', 'R', 99}, buf[3:]...)},
		{"wrong kind", append([]byte{'D', 'R', envVersion, envKindReq}, buf[4:]...)},
		{"length mismatch", append(append([]byte(nil), buf...), 0xFF)},
	} {
		if _, _, _, err := decodeDataMsg(mut.data); err == nil {
			t.Fatalf("%s: accepted", mut.name)
		}
	}
	if _, err := decodeReqMsg(buf); err == nil {
		t.Fatal("request decoder accepted a data envelope")
	}
}

// TestExactMessageSizing drives the exact-sizing contract end to end: a
// published intermediate at precisely the ring limit is accepted, one
// byte over is refused — no slack fudge in either direction.
func TestExactMessageSizing(t *testing.T) {
	r := newTestRing(t, 2)
	defer r.Close()
	n := r.Node(0)

	limit := n.ring.MaxMessage()
	// Binary-search the largest int column that fits the limit exactly.
	fits := func(rows int) bool {
		return dataHdrSize+bat.MarshalSize(bat.MakeInts("probe", make([]int64, rows))) <= limit
	}
	lo, hi := 0, limit/8+2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if _, err := n.Publish("fit.exact", bat.MakeInts("fit", make([]int64, lo))); err != nil {
		t.Fatalf("fragment at the limit rejected: %v", err)
	}
	if _, err := n.Publish("fit.over", bat.MakeInts("over", make([]int64, lo+1))); err == nil {
		t.Fatal("fragment over the limit accepted")
	}
}
