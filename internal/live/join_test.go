package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/minisql"
	"repro/internal/netsim"
)

// joinQuery is the correctness probe every join test runs before,
// during, and after admission; joinRows is its fixed answer on the
// fragmented join-test columns (t_id 1..24, 23 of them >= 2).
const (
	joinQuery = "select val from c where t_id >= 2"
	joinRows  = 23
)

// newJoinRing builds a replicated ring over wide, finely fragmented
// columns (24 rows, 4 per fragment -> 6 fragments per column, 24 ring
// fragments total) so a join has a real share to migrate.
func newJoinRing(t *testing.T, n, replicas int) *Ring {
	t.Helper()
	const rows = 24
	ids := make([]int64, rows)
	names := make([]string, rows)
	tids := make([]int64, rows)
	vals := make([]int64, rows)
	for i := 0; i < rows; i++ {
		ids[i] = int64(i + 1)
		names[i] = fmt.Sprintf("n%d", i)
		tids[i] = int64(i + 1)
		vals[i] = int64(100 * i)
	}
	cols := map[string]*bat.BAT{
		"t.id":   bat.MakeInts("t.id", ids),
		"t.name": bat.MakeStrs("t.name", names),
		"c.t_id": bat.MakeInts("c.t_id", tids),
		"c.val":  bat.MakeInts("c.val", vals),
	}
	schema := minisql.MapSchema{
		"t": {"id", "name"},
		"c": {"t_id", "val"},
	}
	cfg := DefaultConfig()
	cfg.FragmentRows = 4
	cfg.Replicas = replicas
	cfg.Heartbeat = fastHeartbeat()
	cfg.Core.ResendTimeout = 100 * time.Millisecond
	r, err := NewRing(n, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func checkAnswer(t *testing.T, n *Node, when string) {
	t.Helper()
	rs, err := n.ExecSQL(joinQuery)
	if err != nil {
		t.Fatalf("%s: node %d: %v", when, n.id, err)
	}
	if rs.NumRows() != joinRows {
		t.Fatalf("%s: node %d: %d rows, want %d", when, n.id, rs.NumRows(), joinRows)
	}
}

func ownedCount(r *Ring, id core.NodeID) int {
	r.memMu.RLock()
	defer r.memMu.RUnlock()
	c := 0
	for _, owner := range r.fragOwner {
		if owner == id {
			c++
		}
	}
	return c
}

func TestJoinRequiresReplicas(t *testing.T) {
	r := newTestRing(t, 3) // Replicas 0
	defer r.Close()
	if _, err := r.Join(); err == nil {
		t.Fatal("join succeeded on a ring without elastic membership")
	}
	if r.Size() != 3 {
		t.Fatalf("failed join grew the ring to %d", r.Size())
	}
}

func TestJoinGrowsServingRing(t *testing.T) {
	r := newJoinRing(t, 3, 1)
	defer r.Close()
	checkAnswer(t, r.Node(0), "pre-join")

	rep, err := r.Join()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Node != 3 || r.Size() != 4 {
		t.Fatalf("join report %+v, ring size %d; want node 3 in a 4-ring", rep, r.Size())
	}
	if rep.Pred != 2 || rep.Succ != 0 {
		t.Fatalf("splice-in neighbours pred=%d succ=%d, want 2 and 0", rep.Pred, rep.Succ)
	}
	if rep.Share == 0 || rep.Migrated == 0 {
		t.Fatalf("no rebalancing happened: %+v", rep)
	}
	if got := ownedCount(r, 3); got != rep.Migrated {
		t.Fatalf("newcomer owns %d fragments, report says %d", got, rep.Migrated)
	}
	if r.UnownedFragments() != 0 {
		t.Fatalf("%d fragments without a live owner after join", r.UnownedFragments())
	}
	if r.Joins() != 1 || r.Migrations() != int64(rep.Migrated) {
		t.Fatalf("counters joins=%d migrations=%d, want 1 and %d", r.Joins(), r.Migrations(), rep.Migrated)
	}

	// The grown view gossips to every node; everyone converges on a
	// 4-wide all-alive view.
	waitFor(t, "grown view on every node", 15*time.Second, func() bool {
		for _, n := range r.nodeList() {
			v := n.memb.View()
			if len(v.Status) != 4 {
				return false
			}
			if a, s, d := v.Counts(); a != 4 || s != 0 || d != 0 {
				return false
			}
		}
		return true
	})
	// The newcomer heartbeats both ways (sends to succ 0, receives from
	// pred 2).
	joiner := r.Node(3)
	waitFor(t, "newcomer heartbeats", 15*time.Second, func() bool {
		return atomic.LoadInt64(&joiner.beatsSent) > 0 && atomic.LoadInt64(&joiner.beatsRecv) > 0
	})

	// Every node — including the newcomer — answers correctly, and the
	// newcomer serves queries whose data it now owns.
	for i := 0; i < 4; i++ {
		checkAnswer(t, r.Node(i), "post-join")
	}
}

func TestJoinedRingSurvivesLaterDeath(t *testing.T) {
	r := newJoinRing(t, 3, 1)
	defer r.Close()
	if _, err := r.Join(); err != nil {
		t.Fatal(err)
	}
	// Kill an original node after the join settles: the 4-ring must fail
	// over exactly like a boot-time 4-ring, including fragments whose
	// replica chains were rebuilt by the migration.
	r.KillNode(1)
	waitFor(t, "post-join failover", 15*time.Second, func() bool {
		return r.isDead(1) && r.UnownedFragments() == 0
	})
	for _, i := range []int{0, 2, 3} {
		checkAnswer(t, r.Node(i), "post-join post-failover")
	}
}

func TestJoinUnderConcurrentQueries(t *testing.T) {
	r := newJoinRing(t, 3, 1)
	defer r.Close()

	var (
		wg     sync.WaitGroup
		stop   = make(chan struct{})
		failed atomic.Int64
		ok     atomic.Int64
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := r.Node(w % 3) // originals only: the joiner may not exist yet
				rs, err := n.ExecSQL(joinQuery)
				if err != nil {
					failed.Add(1)
					continue
				}
				if rs.NumRows() != joinRows {
					t.Errorf("mid-join answer: %d rows, want %d", rs.NumRows(), joinRows)
					return
				}
				ok.Add(1)
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	rep, err := r.Join()
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if ok.Load() == 0 {
		t.Fatal("no queries completed during the join window")
	}
	if failed.Load() != 0 {
		// In-process joins swap no listeners; queries must not even error.
		t.Fatalf("%d queries failed during a clean join (report %+v)", failed.Load(), rep)
	}
	for i := 0; i <= 3; i++ {
		checkAnswer(t, r.Node(i), "settled")
	}
}

// TestDonorKilledMidJoin is the kill-during-join satellite: a node dies
// while donating state to the joiner. The join must skip what the dead
// donor still held, failover must re-own it from replicas, and every
// answer stays correct.
func TestDonorKilledMidJoin(t *testing.T) {
	r := newJoinRing(t, 3, 1)
	defer r.Close()
	checkAnswer(t, r.Node(0), "pre-join")

	// Stretch each migration so the kill lands inside the transfer
	// window: ~8ms per fragment against a plan of several fragments.
	faults := netsim.NewFaults()
	faults.SetDelay(8 * time.Millisecond)
	r.cfg.JoinFaults = faults

	joinDone := make(chan JoinReport, 1)
	go func() {
		rep, err := r.Join()
		if err != nil {
			t.Errorf("join with a dying donor should still admit the node: %v", err)
		}
		joinDone <- rep
	}()
	// Let a couple of migrations land, then murder a donor mid-stream.
	time.Sleep(12 * time.Millisecond)
	r.KillNode(1)

	rep := <-joinDone
	waitFor(t, "donor death converges", 15*time.Second, func() bool {
		return r.isDead(1) && r.UnownedFragments() == 0
	})
	if t.Failed() {
		return
	}
	if rep.Migrated == 0 {
		t.Fatalf("nothing migrated before the kill: %+v", rep)
	}
	// Ring of 3 live nodes (0, 2, joiner 3): everything answers, no
	// fragment lost.
	if s := r.MembershipStats(); s.LostFrags != 0 {
		t.Fatalf("%d fragments lost (stats %+v)", s.LostFrags, s)
	}
	for _, i := range []int{0, 2, 3} {
		checkAnswer(t, r.Node(i), "post-kill")
	}
}

// TestJoinerKilledMidTransfer kills the newcomer itself mid-transfer:
// the join aborts, every already-migrated fragment is promoted back off
// the joiner's replica chains, and the ring answers exactly as before
// the join attempt.
func TestJoinerKilledMidTransfer(t *testing.T) {
	r := newJoinRing(t, 3, 1)
	defer r.Close()
	checkAnswer(t, r.Node(0), "pre-join")
	preOwned := make(map[int]int, 3)
	for i := 0; i < 3; i++ {
		preOwned[i] = ownedCount(r, core.NodeID(i))
	}

	faults := netsim.NewFaults()
	faults.SetDelay(8 * time.Millisecond)
	r.cfg.JoinFaults = faults

	joinErr := make(chan error, 1)
	go func() {
		_, err := r.Join()
		joinErr <- err
	}()
	waitFor(t, "joiner admitted", 15*time.Second, func() bool { return r.Size() == 4 })
	time.Sleep(12 * time.Millisecond)
	r.KillNode(3)

	err := <-joinErr
	waitFor(t, "joiner death converges", 15*time.Second, func() bool {
		return r.isDead(3) && r.UnownedFragments() == 0
	})
	if err == nil {
		// A fast transfer may have finished before the kill landed; then
		// this is simply a post-join death, which the previous tests
		// cover. Either way the catalog must have converged above.
		t.Log("transfer completed before the kill; converged via ordinary failover")
	}
	if s := r.MembershipStats(); s.LostFrags != 0 {
		t.Fatalf("%d fragments lost (stats %+v)", s.LostFrags, s)
	}
	// All fragments are back on live original nodes.
	total := 0
	for i := 0; i < 3; i++ {
		total += ownedCount(r, core.NodeID(i))
	}
	want := preOwned[0] + preOwned[1] + preOwned[2]
	if total != want {
		t.Fatalf("live originals own %d fragments, want all %d back", total, want)
	}
	for i := 0; i < 3; i++ {
		checkAnswer(t, r.Node(i), "post-abort")
	}
}

// TestJoinWithDroppedTransfers drops part of the donation stream: the
// dropped fragments stay at their donors (skipped, not lost) and the
// catalog stays consistent.
func TestJoinWithDroppedTransfers(t *testing.T) {
	r := newJoinRing(t, 3, 1)
	defer r.Close()

	faults := netsim.NewFaults()
	faults.DropEvery(2) // every second donation vanishes
	r.cfg.JoinFaults = faults

	rep, err := r.Join()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Fatalf("DropEvery(2) skipped nothing: %+v", rep)
	}
	if rep.Migrated+rep.Skipped != rep.Share {
		t.Fatalf("migrated %d + skipped %d != share %d", rep.Migrated, rep.Skipped, rep.Share)
	}
	if got := ownedCount(r, 3); got != rep.Migrated {
		t.Fatalf("newcomer owns %d, report migrated %d", got, rep.Migrated)
	}
	if r.UnownedFragments() != 0 {
		t.Fatalf("%d fragments without a live owner", r.UnownedFragments())
	}
	for i := 0; i <= 3; i++ {
		checkAnswer(t, r.Node(i), "post-join")
	}
}

// TestJoinPartitionedTransferLeavesPreJoinCatalog: a full partition of
// the join traffic migrates nothing — the ring returns to (stays at)
// its pre-join catalog, the "or" branch of the convergence contract.
func TestJoinPartitionedTransferLeavesPreJoinCatalog(t *testing.T) {
	r := newJoinRing(t, 3, 1)
	defer r.Close()

	faults := netsim.NewFaults()
	faults.Partition(true)
	r.cfg.JoinFaults = faults

	rep, err := r.Join()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrated != 0 || rep.Skipped != rep.Share {
		t.Fatalf("partitioned transfer still migrated: %+v", rep)
	}
	if got := ownedCount(r, 3); got != 0 {
		t.Fatalf("newcomer owns %d fragments across a partition", got)
	}
	// The node is admitted (membership grew) even though rebalancing
	// yielded nothing; healing the partition and re-running the transfer
	// is a policy decision above this layer.
	if r.Size() != 4 {
		t.Fatalf("ring size %d, want 4", r.Size())
	}
	for i := 0; i <= 3; i++ {
		checkAnswer(t, r.Node(i), "post-partitioned-join")
	}
}

// TestSequentialJoins grows 3 -> 4 -> 5, the sweep shape the benchmark
// gates on.
func TestSequentialJoins(t *testing.T) {
	r := newJoinRing(t, 3, 1)
	defer r.Close()
	for want := 4; want <= 5; want++ {
		rep, err := r.Join()
		if err != nil {
			t.Fatalf("join to %d: %v", want, err)
		}
		if r.Size() != want {
			t.Fatalf("ring size %d, want %d", r.Size(), want)
		}
		if rep.Migrated == 0 {
			t.Fatalf("join to %d migrated nothing: %+v", want, rep)
		}
		for i := 0; i < want; i++ {
			checkAnswer(t, r.Node(i), fmt.Sprintf("ring of %d", want))
		}
	}
	if r.Joins() != 2 {
		t.Fatalf("joins = %d, want 2", r.Joins())
	}
}
