package live

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/minisql"
)

// batchCases builds batch entries over every column kind and property
// combination the codec carries (mirroring the bat wire tests): ints,
// floats, strings (odd lengths, so padding varies), oids, bools, dense
// heads, sorted columns, slices, and empty payloads.
func batchCases() []batchEntry {
	strs := []string{"a", "", "hello world", "\x00bin\xff", "odd"}
	sorted := bat.MakeInts("sorted", []int64{5, 3, 1, 4}).SortT(false)
	payloads := []*bat.BAT{
		bat.MakeInts("ints", []int64{1, -2, 3, 1 << 62}),
		bat.MakeFloats("floats", []float64{1.5, -2.25, 0, -0.0}),
		bat.MakeStrs("strs", strs),
		bat.MakeOids("oids", []bat.Oid{0, 5, bat.NilOid}),
		bat.New("bools", bat.DenseColumn(10, 5), bat.BoolColumn([]bool{true, false, true, true, false})),
		bat.New("densedense", bat.DenseColumn(3, 5), bat.DenseColumn(100, 5)),
		sorted,
		sorted.Slice(1, 3),
		bat.MakeInts("empty", nil),
		bat.MakeStrs("emptystrs", nil),
	}
	entries := make([]batchEntry, len(payloads))
	for i, b := range payloads {
		entries[i] = batchEntry{
			m: core.BATMsg{
				Owner:  core.NodeID(i % 3),
				BAT:    core.BATID(100 + i),
				Size:   b.Bytes(),
				LOI:    0.25 * float64(i),
				Copies: i,
				Hops:   i * 7,
				Cycles: i % 4,
			},
			ver:     i % 5,
			payload: bat.AppendMarshal(nil, b),
		}
	}
	return entries
}

// encodeSingle is the reference v2 single-fragment encoding of one
// entry — what the unbatched ring would have sent.
func encodeSingle(e batchEntry) []byte {
	buf := make([]byte, dataHdrSize+len(e.payload))
	encodeDataHdr(buf, e.m, e.ver, len(e.payload))
	copy(buf[dataHdrSize:], e.payload)
	return buf
}

// TestBatchRoundtripProperty: unbatch(batch(frags)) ≡ frags
// byte-identically for every kind/property combination — each decoded
// entry re-encodes to the exact v2 single message of the original, and
// every payload decodes through bat.UnmarshalView like a single's would.
func TestBatchRoundtripProperty(t *testing.T) {
	cases := batchCases()
	// Sweep batch sizes 1..len: padding interactions differ with the mix.
	for size := 1; size <= len(cases); size++ {
		entries := cases[:size]
		data := encodeBatch(nil, entries)
		got, err := decodeBatchMsg(data)
		if err != nil {
			t.Fatalf("size %d: decode: %v", size, err)
		}
		if len(got) != len(entries) {
			t.Fatalf("size %d: %d entries decoded, want %d", size, len(got), len(entries))
		}
		for i, e := range entries {
			g := got[i]
			if g.m != e.m || g.ver != e.ver {
				t.Fatalf("size %d entry %d: header roundtrip: got (%+v, %d) want (%+v, %d)",
					size, i, g.m, g.ver, e.m, e.ver)
			}
			if !bytes.Equal(encodeSingle(g), encodeSingle(e)) {
				t.Fatalf("size %d entry %d: unbatched bytes differ from the v2 single", size, i)
			}
			if len(e.payload) > 0 {
				if _, err := bat.UnmarshalView(g.payload); err != nil {
					t.Fatalf("size %d entry %d: payload no longer decodes: %v", size, i, err)
				}
			}
		}
		// Payloads must land 8-aligned relative to the message, the
		// zero-copy decode contract.
		off := batchHdrSize + size*dataHdrSize
		for i := range entries {
			if off%8 != 0 {
				t.Fatalf("size %d entry %d: payload offset %d not 8-aligned", size, i, off)
			}
			off += pad8(len(entries[i].payload))
		}
	}
}

// TestBatchRejectsCorruption sweeps the v3 decoder with truncations,
// count overflows, misaligned offsets, and header corruption: every
// mutation must be rejected, never partially decoded or panicked on.
func TestBatchRejectsCorruption(t *testing.T) {
	entries := batchCases()[:3]
	good := encodeBatch(nil, entries)
	clone := func() []byte { return append([]byte(nil), good...) }

	muts := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", good[:4]},
		{"bad magic", append([]byte{'X', 'X'}, good[2:]...)},
		{"v2 version byte", append([]byte{'D', 'R', envVersion, envKindBatch}, good[4:]...)},
		{"data kind byte", append([]byte{'D', 'R', envVersionBatch, envKindData}, good[4:]...)},
		{"count zero", func() []byte {
			d := clone()
			binary.LittleEndian.PutUint32(d[4:], 0)
			return d
		}()},
		{"count overflow", func() []byte {
			d := clone()
			binary.LittleEndian.PutUint32(d[4:], 0xFFFFFFFF)
			return d
		}()},
		{"count over cap", func() []byte {
			d := clone()
			binary.LittleEndian.PutUint32(d[4:], maxHopBatchFrags+1)
			return d
		}()},
		{"count claims more entries", func() []byte {
			d := clone()
			binary.LittleEndian.PutUint32(d[4:], uint32(len(entries)+1))
			return d
		}()},
		{"truncated entry table", good[:batchHdrSize+dataHdrSize*len(entries)-7]},
		{"truncated last payload", good[:len(good)-5]},
		{"trailing bytes", append(clone(), 0xAB)},
		{"entry header magic", func() []byte {
			d := clone()
			d[batchHdrSize] = 'X' // first entry's magic byte
			return d
		}()},
		{"entry payload length grown", func() []byte {
			// Inflating entry 0's length field shifts every later payload
			// offset: either a bounds failure or the exactness check trips.
			d := clone()
			le := binary.LittleEndian
			cur := le.Uint32(d[batchHdrSize+4:])
			le.PutUint32(d[batchHdrSize+4:], cur+8)
			return d
		}()},
		{"entry payload length misaligned", func() []byte {
			// A length that is not the encoded payload's: the trailing
			// exactness check must catch the drifted offsets.
			d := clone()
			le := binary.LittleEndian
			cur := le.Uint32(d[batchHdrSize+4:])
			le.PutUint32(d[batchHdrSize+4:], cur+1)
			return d
		}()},
		{"entry payload length huge", func() []byte {
			d := clone()
			binary.LittleEndian.PutUint32(d[batchHdrSize+4:], 1<<30)
			return d
		}()},
	}
	for _, mut := range muts {
		if _, err := decodeBatchMsg(mut.data); err == nil {
			t.Errorf("%s: accepted", mut.name)
		}
	}
	// The single-message decoder must reject a batch envelope and vice
	// versa: the kinds don't alias.
	if _, _, _, err := decodeDataMsg(good); err == nil {
		t.Error("v2 decoder accepted a batch envelope")
	}
	single := encodeSingle(entries[0])
	if _, err := decodeBatchMsg(single); err == nil {
		t.Error("batch decoder accepted a v2 single")
	}
	if isBatchMsg(single) {
		t.Error("isBatchMsg matched a v2 single")
	}
	if !isBatchMsg(good) {
		t.Error("isBatchMsg rejected a batch")
	}
}

// FuzzDecodeBatch drives the batch decoder with arbitrary bytes: it
// must never panic, and whatever it accepts must re-encode to the
// input exactly (decode is the inverse of encode on its whole range).
func FuzzDecodeBatch(f *testing.F) {
	cases := batchCases()
	f.Add(encodeBatch(nil, cases[:1]))
	f.Add(encodeBatch(nil, cases[:4]))
	f.Add(encodeBatch(nil, cases))
	f.Add(encodeSingle(cases[0]))
	f.Add([]byte{'D', 'R', envVersionBatch, envKindBatch, 2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeBatchMsg(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeBatch(nil, entries), data) {
			t.Fatalf("accepted batch does not re-encode to itself")
		}
	})
}

// fragTestRing builds a ring whose columns fragment into many pieces,
// so one query queues many co-resident outbound fragments per node.
func fragTestRing(t *testing.T, mutate func(*Config)) *Ring {
	t.Helper()
	n := 512
	ids := make([]int64, n)
	vals := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = int64(i * 3)
	}
	cols := map[string]*bat.BAT{
		"t.id":  bat.MakeInts("t.id", ids),
		"t.val": bat.MakeInts("t.val", vals),
	}
	schema := minisql.MapSchema{"t": {"id", "val"}}
	cfg := DefaultConfig()
	cfg.FragmentRows = 32 // 16 fragments per column
	cfg.CacheBytes = 0    // every pin rides the ring
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestHopBatchingEndToEnd runs a fragmented query workload with
// batching on and checks both correctness and that the transport
// actually coalesced: fewer hop messages than fragments, a populated
// multi-fragment fill histogram, and matching Frags accounting.
func TestHopBatchingEndToEnd(t *testing.T) {
	r := fragTestRing(t, nil)
	defer r.Close()
	want := int64(0)
	for i := 0; i < 512; i++ {
		want += int64(i) * 3
	}
	for q := 0; q < 3; q++ {
		rs, err := r.Node(q % 3).ExecSQL("select sum(t.val) from t")
		if err != nil {
			t.Fatal(err)
		}
		if got := rs.Rows()[0][0].(int64); got != want {
			t.Fatalf("query %d: sum = %d, want %d", q, got, want)
		}
	}
	s := r.HopStats()
	if s.Msgs == 0 || s.Frags == 0 {
		t.Fatalf("no hop traffic recorded: %+v", s)
	}
	if s.Batches == 0 {
		t.Fatalf("no batches formed over a 16-fragment workload: %+v", s)
	}
	if s.Frags <= s.Msgs {
		t.Fatalf("no coalescing: %d fragments in %d messages", s.Frags, s.Msgs)
	}
	if s.Msgs != s.Singles+s.Batches {
		t.Fatalf("Msgs %d != Singles %d + Batches %d", s.Msgs, s.Singles, s.Batches)
	}
	var fill int64
	for _, c := range s.Fill {
		fill += c
	}
	if fill != s.Msgs {
		t.Fatalf("fill histogram sums to %d, want Msgs %d", fill, s.Msgs)
	}
	var multi int64
	for _, c := range s.Fill[1:] {
		multi += c
	}
	if multi != s.Batches {
		t.Fatalf("multi-fragment fill buckets sum to %d, want Batches %d", multi, s.Batches)
	}
}

// TestHopBatchingDisabled: HopBatchBytes=0 keeps the per-fragment v2
// path — every message is a single, no batch envelope ever forms.
func TestHopBatchingDisabled(t *testing.T) {
	r := fragTestRing(t, func(cfg *Config) { cfg.HopBatchBytes = 0 })
	defer r.Close()
	if _, err := r.Node(1).ExecSQL("select sum(t.val) from t"); err != nil {
		t.Fatal(err)
	}
	s := r.HopStats()
	if s.Msgs == 0 {
		t.Fatal("no hop traffic recorded")
	}
	if s.Batches != 0 {
		t.Fatalf("batches formed with batching disabled: %+v", s)
	}
	if s.Singles != s.Msgs || s.Frags != s.Msgs {
		t.Fatalf("unbatched accounting broken: %+v", s)
	}
}

// TestHopPacingParksIdleFragments: with LOI pacing on (the batching
// default), fragments nobody pins stop circulating within a few
// revolutions, and a later query's interest signal re-admits them.
func TestHopPacingParksIdleFragments(t *testing.T) {
	r := fragTestRing(t, func(cfg *Config) {
		// Fast revolutions so parking happens quickly.
		cfg.Core.LoadAllPeriod = 5 * time.Millisecond
	})
	defer r.Close()
	if _, err := r.Node(0).ExecSQL("select sum(t.val) from t"); err != nil {
		t.Fatal(err)
	}
	// With the query done there is no interest left: every circulating
	// fragment should park at its owner within a few revolutions.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := r.HopStats(); s.Parked > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := r.HopStats()
	if s.Parked == 0 || s.ParkedTotal == 0 {
		t.Fatalf("no fragments parked on an idle ring: %+v", s)
	}
	// New interest must unpark: the query has to see every fragment
	// again and still answer correctly.
	rs, err := r.Node(1).ExecSQL("select sum(t.val) from t")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < 512; i++ {
		want += int64(i) * 3
	}
	if got := rs.Rows()[0][0].(int64); got != want {
		t.Fatalf("post-park sum = %d, want %d", got, want)
	}
	if s := r.HopStats(); s.Unparked == 0 {
		t.Fatalf("interest did not unpark any fragment: %+v", s)
	}
}

// TestHopSchedulerTake exercises the flush policy directly: budget
// bounds, the always-take-first rule, and the entry cap.
func TestHopSchedulerTake(t *testing.T) {
	ent := func(raw int) *wireEntry {
		e := newWireEntry(nil, make([]byte, raw), false)
		return e
	}
	// Budget fits the batch header plus two 100-byte entries, not three.
	budget := batchHdrSize + 2*batchEntryWire(100)
	hs := newHopScheduler(budget, 0)
	for i := 0; i < 5; i++ {
		hs.enqueue(hopEntry{m: core.BATMsg{BAT: core.BATID(i)}, ent: ent(100)})
	}
	if got := len(hs.take()); got != 2 {
		t.Fatalf("first take = %d entries, want 2 (budget-bounded)", got)
	}
	if got := len(hs.take()); got != 2 {
		t.Fatalf("second take = %d entries, want 2", got)
	}
	if got := len(hs.take()); got != 1 {
		t.Fatalf("third take = %d entries, want 1 (remainder)", got)
	}
	if hs.take() != nil {
		t.Fatal("take on an empty queue should return nil")
	}
	// An oversized first entry still travels (as a single).
	hs.enqueue(hopEntry{m: core.BATMsg{BAT: 99}, ent: ent(10 * budget)})
	hs.enqueue(hopEntry{m: core.BATMsg{BAT: 100}, ent: ent(100)})
	if got := len(hs.take()); got != 1 {
		t.Fatalf("oversized first entry: take = %d, want 1", got)
	}
	// The entry-count cap holds even under a huge budget.
	big := newHopScheduler(1<<30, 0)
	for i := 0; i < maxHopBatchFrags+10; i++ {
		big.enqueue(hopEntry{m: core.BATMsg{BAT: core.BATID(i)}, ent: ent(8)})
	}
	if got := len(big.take()); got != maxHopBatchFrags {
		t.Fatalf("take = %d entries, want the %d cap", got, maxHopBatchFrags)
	}
}

// TestFillBucket pins the histogram bucketing.
func TestFillBucket(t *testing.T) {
	want := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 32: 5, 33: 6, 64: 6, 65: 7}
	for frags, bucket := range want {
		if got := fillBucket(frags); got != bucket {
			t.Errorf("fillBucket(%d) = %d, want %d", frags, got, bucket)
		}
	}
}

