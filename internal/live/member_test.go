package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/membership"
)

// fastHeartbeat is the detector tuning the failover tests run with:
// verdicts inside ~60ms so kill-and-recover fits a unit test.
func fastHeartbeat() membership.Config {
	return membership.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      2,
		DeadAfter:         5,
	}
}

func newReplicaRing(t *testing.T, n, replicas int) *Ring {
	t.Helper()
	cols, schema := testColumns()
	cfg := DefaultConfig()
	cfg.Replicas = replicas
	cfg.Heartbeat = fastHeartbeat()
	cfg.Core.ResendTimeout = 100 * time.Millisecond
	r, err := NewRing(n, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func waitFor(t *testing.T, what string, deadline time.Duration, cond func() bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReplicasZeroKeepsMembershipOff(t *testing.T) {
	r := newTestRing(t, 3) // DefaultConfig: Replicas 0
	defer r.Close()
	for i := 0; i < r.Size(); i++ {
		n := r.Node(i)
		if n.memb != nil || n.replicas != nil {
			t.Fatalf("node %d grew membership state with Replicas=0", i)
		}
		if s := n.MembershipStats(); s.Enabled {
			t.Fatalf("node %d MembershipStats enabled with Replicas=0", i)
		}
	}
	if s := r.MembershipStats(); s.Enabled || s.BeatsSent != 0 {
		t.Fatalf("ring membership stats with Replicas=0: %+v", s)
	}
	// The single-owner data path still works, beat-free.
	if _, err := r.Node(1).ExecSQL("select val from c where t_id >= 2"); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaPlacementOnSuccessors(t *testing.T) {
	r := newReplicaRing(t, 3, 1)
	defer r.Close()
	r.memMu.RLock()
	owners := make(map[core.BATID]core.NodeID, len(r.fragOwner))
	for id, owner := range r.fragOwner {
		owners[id] = owner
	}
	chains := make(map[core.BATID][]core.NodeID, len(r.fragReplicas))
	for id, chain := range r.fragReplicas {
		chains[id] = append([]core.NodeID(nil), chain...)
	}
	r.memMu.RUnlock()
	if len(owners) == 0 {
		t.Fatal("no fragments placed")
	}
	for id, owner := range owners {
		chain := chains[id]
		if len(chain) != 1 {
			t.Fatalf("fragment %d: replica chain %v, want 1 successor", id, chain)
		}
		want := core.NodeID((int(owner) + 1) % r.Size())
		if chain[0] != want {
			t.Fatalf("fragment %d owned by %d: replica at %d, want successor %d",
				id, owner, chain[0], want)
		}
		rep := r.node(int(chain[0]))
		rep.mu.Lock()
		rp := rep.replicas[id]
		rep.mu.Unlock()
		if rp == nil {
			t.Fatalf("fragment %d: successor %d holds no replica payload", id, chain[0])
		}
	}
	if s := r.MembershipStats(); !s.Enabled || s.Replicas != int64(len(owners)) {
		t.Fatalf("ring stats %+v, want %d replicas", s, len(owners))
	}
}

func TestHeartbeatsFlow(t *testing.T) {
	r := newReplicaRing(t, 3, 1)
	defer r.Close()
	waitFor(t, "heartbeats on every node", 2*time.Second, func() bool {
		for _, n := range r.nodeList() {
			if atomic.LoadInt64(&n.beatsSent) == 0 || atomic.LoadInt64(&n.beatsRecv) == 0 {
				return false
			}
		}
		return true
	})
	if s := r.MembershipStats(); s.Dead != 0 || s.Suspect != 0 {
		t.Fatalf("healthy ring reports %+v", s)
	}
}

func TestKillPromotesReplicasAndServesQueries(t *testing.T) {
	r := newReplicaRing(t, 3, 1)
	defer r.Close()

	// Warm the ring, then a silent crash of node 1 (owner of some of
	// every table's fragments under round-robin placement).
	if _, err := r.Node(0).ExecSQL("select val from c where t_id >= 2"); err != nil {
		t.Fatal(err)
	}
	r.KillNode(1)

	waitFor(t, "death detection + failover", 15*time.Second, func() bool {
		return r.isDead(1)
	})
	waitFor(t, "all fragments re-owned", 15*time.Second, func() bool {
		return r.UnownedFragments() == 0
	})

	s := r.MembershipStats()
	if s.Dead != 1 || s.ViewVersion == 0 {
		t.Fatalf("post-failover stats %+v, want 1 dead and an advanced view", s)
	}
	if s.Promotions == 0 {
		t.Fatalf("no promotions recorded: %+v", s)
	}
	if s.LostFrags != 0 {
		t.Fatalf("%d fragments lost with a surviving replica budget", s.LostFrags)
	}

	// Every survivor answers correctly, including queries whose data was
	// owned by the dead node.
	for _, i := range []int{0, 2} {
		rs, err := r.Node(i).ExecSQL("select val from c where t_id >= 2")
		if err != nil {
			t.Fatalf("node %d post-failover: %v", i, err)
		}
		if rs.NumRows() != 4 {
			t.Fatalf("node %d post-failover: %d rows, want 4", i, rs.NumRows())
		}
	}
}

func TestTwoNodeRingSurvivesToOne(t *testing.T) {
	r := newReplicaRing(t, 2, 1)
	defer r.Close()
	r.KillNode(1)
	waitFor(t, "failover to the last survivor", 15*time.Second, func() bool {
		return r.isDead(1) && r.UnownedFragments() == 0
	})
	rs, err := r.Node(0).ExecSQL("select val from c where t_id >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRows() != 4 {
		t.Fatalf("last survivor: %d rows, want 4", rs.NumRows())
	}
	// The last survivor can never be declared dead.
	r.failover(0)
	if r.isDead(0) {
		t.Fatal("last survivor declared dead")
	}
}

// TestPromotedReplicaNeverStale is the staleness property test extended
// to promoted replicas: updates race the death of the column's owner,
// and the promotion must never resurrect a superseded payload. The
// column's payload encodes its own version (update v sets every value
// to 1000+v, base data being 1000), so the checks are direct:
//
//   - while updates and the kill race, every fetch must be internally
//     consistent — one uniform version, never a torn mix (circulating
//     serves may lag the catalog; that is ordinary MVCC);
//   - once the replica has been promoted, the heir is the owner of
//     record, and its fetches carry the store/cache contract: never a
//     version older than the catalog read before the fetch began;
//   - when the dust settles, everyone converges on the highest
//     installed version — no stale orbit copy survives.
func TestPromotedReplicaNeverStale(t *testing.T) {
	cols, schema := testColumns()
	// Uniform payload so value 1000+v <-> version v from the start.
	// Sorted placement puts c.val on node 1 — the victim.
	cols["c.val"] = bat.MakeInts("c.val", []int64{1000, 1000, 1000, 1000})
	cfg := DefaultConfig()
	cfg.Replicas = 1
	// Roomier death budget than fastHeartbeat: beats share the data
	// links with the update/fetch traffic, and a saturated link must
	// show up as Suspect jitter, not as a false-positive death cascade.
	cfg.Heartbeat = membership.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      3,
		DeadAfter:         15,
	}
	cfg.Core.ResendTimeout = 100 * time.Millisecond
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const base = int64(1000)
	versionOf := func(b *bat.BAT) (int64, bool) {
		first := b.Tail().Int(0)
		for i := 1; i < b.Len(); i++ {
			if b.Tail().Int(i) != first {
				return 0, false
			}
		}
		return first - base, true
	}

	var (
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		highest int64 // highest version an updater has installed
	)
	// Updater: keep bumping c.val through the owner's death and the
	// promotion. Throttled just enough that heartbeats keep a fair
	// share of the shared links.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, err := r.UpdateColumn("c.val", func(cur *bat.BAT) *bat.BAT {
				vals := make([]int64, cur.Len())
				next := cur.Tail().Int(0) + 1
				for i := range vals {
					vals[i] = next
				}
				return bat.MakeInts("c.val", vals)
			})
			if err != nil {
				t.Errorf("update: %v", err)
				return
			}
			for {
				old := atomic.LoadInt64(&highest)
				if int64(v) <= old || atomic.CompareAndSwapInt64(&highest, old, int64(v)) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Readers on both surviving nodes: every fetch must be one
	// consistent version, never a torn payload.
	for _, node := range []int{0, 2} {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			n := r.Node(idx)
			for {
				select {
				case <-stop:
					return
				default:
				}
				b, err := n.Fetch("c.val")
				if err != nil {
					// A fetch interrupted by the kill window may fail;
					// correctness demands no *torn* answer, not no error.
					continue
				}
				if _, ok := versionOf(b); !ok || b.Len() != 4 {
					t.Errorf("node %d fetched torn payload %v", idx, b.Dump(4))
					return
				}
			}
		}(node)
	}

	// Let the race warm up, then murder node 1 — c.val's owner —
	// mid-stream.
	time.Sleep(30 * time.Millisecond)
	r.KillNode(1)
	waitFor(t, "failover during concurrent updates", 30*time.Second, func() bool {
		return r.isDead(1) && r.UnownedFragments() == 0
	})

	// The replica at node 2 is now the owner of record. With updates
	// still racing, the heir must honor the promoted-staleness
	// contract: a fetch never observes a version older than the
	// catalog said before the fetch began.
	heir := r.Node(2)
	for until := time.Now().Add(150 * time.Millisecond); time.Now().Before(until); {
		floor, err := r.Version("c.val")
		if err != nil {
			t.Fatal(err)
		}
		b, err := heir.Fetch("c.val")
		if err != nil {
			continue
		}
		got, ok := versionOf(b)
		if !ok {
			t.Fatalf("heir fetched torn payload %v", b.Dump(4))
		}
		if got < int64(floor) {
			t.Fatalf("heir fetched version %d, catalog said ≥%d", got, floor)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Settled state: the catalog version matches the highest installed
	// update, exactly one death was declared (no false-positive
	// cascade), nothing was lost, and both survivors converge on the
	// final version once the last orbit copies die out.
	v, err := r.Version("c.val")
	if err != nil {
		t.Fatal(err)
	}
	if int64(v) != atomic.LoadInt64(&highest) {
		t.Fatalf("catalog version %d, highest installed %d", v, highest)
	}
	s := r.MembershipStats()
	if s.Dead != 1 {
		t.Fatalf("settled death count %d, want exactly the murdered node (stats %+v)", s.Dead, s)
	}
	if s.LostFrags != 0 {
		t.Fatalf("%d fragments lost with a surviving replica budget", s.LostFrags)
	}
	for _, idx := range []int{0, 2} {
		n := r.Node(idx)
		waitFor(t, fmt.Sprintf("node %d converging on version %d", idx, v), 15*time.Second, func() bool {
			b, err := n.Fetch("c.val")
			if err != nil {
				return false
			}
			got, ok := versionOf(b)
			return ok && got == int64(v)
		})
	}
	if s := r.MembershipStats(); s.ReplicaLag != 0 {
		t.Fatalf("settled replica lag %d, want 0 (stats %+v)", s.ReplicaLag, s)
	}
}

func TestPublishWithReplicasSurvivesOwnerDeath(t *testing.T) {
	r := newReplicaRing(t, 3, 1)
	defer r.Close()
	pub := bat.MakeInts("inter.x", []int64{7, 7, 7})
	if _, err := r.Node(1).Publish("inter.x", pub); err != nil {
		t.Fatal(err)
	}
	r.KillNode(1)
	waitFor(t, "published fragment re-owned", 15*time.Second, func() bool {
		return r.isDead(1) && r.UnownedFragments() == 0
	})
	b, err := r.Node(0).Fetch("inter.x")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 || b.Tail().Int(0) != 7 {
		t.Fatalf("fetched %v after owner death", b.Dump(3))
	}
}

func TestReplicasClampAndConfigEcho(t *testing.T) {
	cols, schema := testColumns()
	cfg := DefaultConfig()
	cfg.Replicas = 99 // more copies than nodes: clamp to n-1
	cfg.Heartbeat = fastHeartbeat()
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.memMu.RLock()
	defer r.memMu.RUnlock()
	for id, chain := range r.fragReplicas {
		if len(chain) != 2 {
			t.Fatalf("fragment %d: %d replicas, want n-1=2", id, len(chain))
		}
	}
}

func TestBeatCodecRoundTrip(t *testing.T) {
	view := membership.View{
		Version: 42,
		Status:  []membership.Status{membership.Alive, membership.Dead, membership.Suspect},
	}
	buf := make([]byte, beatMsgSize(len(view.Status)))
	nn := encodeBeatMsg(buf, 2, view)
	if nn != len(buf) {
		t.Fatalf("encoded %d bytes, want %d", nn, len(buf))
	}
	if !isBeatMsg(buf) {
		t.Fatal("isBeatMsg false on a beat")
	}
	from, got, err := decodeBeatMsg(buf)
	if err != nil {
		t.Fatal(err)
	}
	if from != 2 || got.Version != 42 || fmt.Sprint(got.Status) != fmt.Sprint(view.Status) {
		t.Fatalf("round trip: from=%d view=%+v", from, got)
	}
	// Truncated and corrupt beats must be rejected, not crash.
	if _, _, err := decodeBeatMsg(buf[:beatHdrSize+1]); err == nil {
		t.Fatal("truncated beat accepted")
	}
	buf[3] = envKindData
	if isBeatMsg(buf) {
		t.Fatal("kind mismatch accepted")
	}
}

// A node that stops draining its data receive loop — here stalled
// behind its own mu, exactly what a fragment-load storm does at scale —
// manufactures its own silence. The detector must not convert that
// self-inflicted silence into a death verdict against its healthy
// predecessor: ticks only count while dataLoop is parked in Recv.
// Regression for the cascading false deaths observed on a served
// 1M-row ring, where the load storm stalled every dataLoop at once and
// the survivors declared each other dead within seconds.
func TestStalledReceiverDoesNotAccusePredecessor(t *testing.T) {
	r := newJoinRing(t, 3, 1)
	defer r.Close()
	checkAnswer(t, r.Node(0), "before stall")

	// Background queries keep envelopes flowing into the stalled node,
	// so its dataLoop is demonstrably blocked mid-processing rather
	// than parked; mid-stall errors and stalls are expected and fine.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Node(2).ExecSQL(joinQuery)
		}
	}()

	n := r.Node(1)
	hold := 8 * r.cfg.Heartbeat.WithDefaults().DeadTimeout()
	n.mu.Lock()
	time.Sleep(hold)
	n.mu.Unlock()
	close(stop)
	wg.Wait()

	if got := atomic.LoadInt64(&r.failovers); got != 0 {
		t.Fatalf("stalled receiver triggered %d failovers, want 0", got)
	}
	for i := 0; i < 3; i++ {
		checkAnswer(t, r.Node(i), "after stall")
	}
}
