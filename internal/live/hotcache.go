package live

// The hot-set fragment cache: the dual of the paper's hot-set model.
// The ring keeps interesting data flowing so queries meet it "in
// flight"; this cache keeps what already flowed past, so a node that
// saw a fragment moments ago does not wait a full ring revolution to
// see it again. Every ring delivery (and local publish) populates a
// bounded, bytes-budgeted per-node map of BATID → (version, payload);
// the pin path consults it first, validating the entry's version
// against the ring catalog — a hit is a zero-copy immutable view with
// no waiter and no ring wait, a miss (or a stale version) falls
// through to circulation and refreshes the cache on delivery.
//
// Correctness contract (the staleness proof):
//
//  1. every payload on the wire is labelled with the version its owner
//     installed it under (envelope v2), read in the same critical
//     section that guards the owner's store — a payload labelled v IS
//     version v's bytes;
//  2. a cache entry inherits the label of the delivery that populated
//     it and is immutable afterwards;
//  3. a hit is served only while the entry's label equals the ring
//     catalog's current version for that fragment; the atomic catalog
//     read is the pin's linearization point. UpdateColumn advances the
//     catalog version inside its ordered column/owner critical section
//     before it returns.
//
// So no pin whose catalog read happens after an update commits can be
// served an entry labelled with an older version. A pin that read the
// catalog just before the commit may still complete against the old
// version — that is ordinary MVCC (the pin linearizes before the
// update), not staleness. Eviction and explicit invalidation are
// memory hygiene, not correctness requirements.
//
// Eviction is LOI-weighted (CacheLOI): every hit raises an entry's
// interest score, every eviction scan decays all scores by half, and
// the lowest-interest entry goes first — the cache's local rendition
// of the ring's level-of-interest economy, so a fragment the node's
// queries keep meeting stays resident while one-pass traffic ages out.
// CacheLRU falls back to pure recency for comparison runs.

import (
	"sync"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/metrics"
)

// CacheMode selects the hot-set cache eviction policy.
type CacheMode int

const (
	// CacheLOI evicts by level of interest: hits raise an entry's
	// score, eviction scans decay all scores, lowest goes first.
	CacheLOI CacheMode = iota
	// CacheLRU evicts by pure recency (comparison baseline).
	CacheLRU
)

func (m CacheMode) String() string {
	if m == CacheLRU {
		return "lru"
	}
	return "loi"
}

// CacheStats snapshots one node's hot-set cache counters. RingWaits /
// RingWaitNanos count pins that blocked on ring circulation (and for
// how long, cumulatively) — the latency term cache hits eliminate;
// they are counted whether or not the cache is enabled, so off-vs-on
// runs compare directly.
type CacheStats struct {
	Hits      int64 // pins served node-locally, no ring wait
	Misses    int64 // pins that had to wait for circulation
	Stale     int64 // superseded entries dropped (pin-time mismatch or update sweep)
	Inserts   int64 // deliveries admitted into the cache
	Evictions int64 // entries evicted by the bytes budget
	Coalesced int64 // pins that joined another pin's in-flight wait

	Bytes   int64 // resident payload bytes
	Entries int64 // resident fragments

	RingWaits     int64 // pins that blocked on the ring
	RingWaitNanos int64 // total time those pins spent blocked
}

// HitRate reports the fraction of pins served from the cache.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// hotEntry is one resident fragment version.
type hotEntry struct {
	b     *bat.BAT
	ver   int
	bytes int64
	loi   float64 // interest score (CacheLOI); hits raise, scans decay
	seq   int64   // recency stamp (CacheLRU and tie-break)
}

// flight is one in-flight ring wait for an (id, version) pair, shared
// by every concurrent pin of that fragment: the first miss becomes the
// leader and runs the real waiter/request machinery; followers block
// on done and read b/ver. A failed leader leaves b nil and followers
// retry (one of them becomes the next leader).
type flight struct {
	done chan struct{}
	b    *bat.BAT
	ver  int
}

type flightKey struct {
	id  core.BATID
	ver int
}

// hotCache is one node's hot-set fragment cache.
type hotCache struct {
	mu      sync.Mutex
	mode    CacheMode
	budget  int64
	decay   float64 // eviction-scan LOI divisor (Config.CacheDecay)
	bytes   int64
	seq     int64
	entries map[core.BATID]*hotEntry
	flights map[flightKey]*flight

	hits      metrics.Counter
	misses    metrics.Counter
	stale     metrics.Counter
	inserts   metrics.Counter
	evictions metrics.Counter
	coalesced metrics.Counter
}

func newHotCache(budget int, mode CacheMode, decay float64) *hotCache {
	if decay <= 1 {
		decay = 2 // the pre-knob default: halve every eviction scan
	}
	return &hotCache{
		mode:    mode,
		budget:  int64(budget),
		decay:   decay,
		entries: map[core.BATID]*hotEntry{},
		flights: map[flightKey]*flight{},
	}
}

// get returns the cached payload for id if it is resident at exactly
// version wantVer, bumping its interest. An entry at any other version
// is dead by the validation contract and is dropped on sight.
func (h *hotCache) get(id core.BATID, wantVer int) *bat.BAT {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.entries[id]
	if !ok {
		h.misses.Inc()
		return nil
	}
	if e.ver != wantVer {
		h.dropLocked(id, e)
		h.stale.Inc()
		h.misses.Inc()
		return nil
	}
	e.loi++
	h.seq++
	e.seq = h.seq
	h.hits.Inc()
	return e.b
}

// peek reports whether id is resident at wantVer without counting a
// hit or a miss (the request-path probe that decides whether to skip
// the ring request altogether).
func (h *hotCache) peek(id core.BATID, wantVer int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.entries[id]
	return ok && e.ver == wantVer
}

// put admits a delivered payload at the given version. The payload is
// capped to its own length so a later Append by some caller can never
// grow into it, and the budget is enforced by LOI-weighted eviction.
// A payload bigger than the whole budget is not admitted.
func (h *hotCache) put(id core.BATID, ver int, b *bat.BAT) {
	size := int64(b.Bytes())
	if size > h.budget {
		return
	}
	view := b.Slice(0, b.Len())
	h.mu.Lock()
	defer h.mu.Unlock()
	if old, ok := h.entries[id]; ok {
		if old.ver >= ver {
			// Same version: the resident entry already holds these bytes
			// and its accumulated interest — re-inserting would reset the
			// LOI score a circulating fragment keeps earning. Newer
			// version resident: an older delivery never downgrades it.
			return
		}
		h.dropLocked(id, old)
	}
	h.seq++
	h.entries[id] = &hotEntry{b: view, ver: ver, bytes: size, loi: 1, seq: h.seq}
	h.bytes += size
	h.inserts.Inc()
	for h.bytes > h.budget {
		h.evictLocked(id)
	}
}

// evictLocked removes the least interesting entry other than keep, and
// (in CacheLOI mode) decays every score so interest is recency-biased:
// a once-hot fragment the queries stopped meeting ages out.
func (h *hotCache) evictLocked(keep core.BATID) {
	var victimID core.BATID
	var victim *hotEntry
	for id, e := range h.entries {
		if id == keep {
			continue
		}
		if victim == nil || h.lessLocked(e, victim) {
			victimID, victim = id, e
		}
	}
	if victim == nil {
		return // only keep is resident; budget honoured by put's size gate
	}
	h.dropLocked(victimID, victim)
	h.evictions.Inc()
	if h.mode == CacheLOI {
		for _, e := range h.entries {
			e.loi /= h.decay
		}
	}
}

// lessLocked orders eviction candidates: true means a is evicted
// before b.
func (h *hotCache) lessLocked(a, b *hotEntry) bool {
	if h.mode == CacheLRU || a.loi == b.loi {
		return a.seq < b.seq
	}
	return a.loi < b.loi
}

func (h *hotCache) dropLocked(id core.BATID, e *hotEntry) {
	delete(h.entries, id)
	h.bytes -= e.bytes
}

// drop removes id outright (owner unload: the fragment left the ring's
// hot set; the entry would still validate, but the owner serves its
// own pins from the store, so resident bytes are better spent).
func (h *hotCache) drop(id core.BATID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.entries[id]; ok {
		h.dropLocked(id, e)
	}
}

// invalidateBelow removes id if its resident version predates ver:
// UpdateColumn's hygiene pass, run under the ordered column/owner
// locks after the catalog version advanced. Version validation already
// guarantees such an entry can never be served; dropping it here frees
// the bytes immediately instead of on the next pin.
func (h *hotCache) invalidateBelow(id core.BATID, ver int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.entries[id]; ok && e.ver < ver {
		h.dropLocked(id, e)
		h.stale.Inc()
	}
}

// joinFlight dedupes concurrent ring waits for (id, ver): the first
// caller becomes the leader (second result true) and must settle the
// flight with finishFlight; later callers get the existing flight to
// block on.
func (h *hotCache) joinFlight(id core.BATID, ver int) (*flight, bool) {
	key := flightKey{id, ver}
	h.mu.Lock()
	defer h.mu.Unlock()
	if fl, ok := h.flights[key]; ok {
		h.coalesced.Inc()
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	h.flights[key] = fl
	return fl, true
}

// finishFlight publishes the leader's outcome (b nil on failure) and
// wakes every follower. The flight is removed first, so a pin that
// misses after this point starts a fresh wait instead of reading a
// settled one.
func (h *hotCache) finishFlight(id core.BATID, ver int, fl *flight, b *bat.BAT, gotVer int) {
	h.mu.Lock()
	delete(h.flights, flightKey{id, ver})
	h.mu.Unlock()
	fl.b, fl.ver = b, gotVer
	close(fl.done)
}

// stats snapshots the cache counters.
func (h *hotCache) stats() CacheStats {
	h.mu.Lock()
	bytes, entries := h.bytes, int64(len(h.entries))
	h.mu.Unlock()
	return CacheStats{
		Hits:      h.hits.Get(),
		Misses:    h.misses.Get(),
		Stale:     h.stale.Get(),
		Inserts:   h.inserts.Get(),
		Evictions: h.evictions.Get(),
		Coalesced: h.coalesced.Get(),
		Bytes:     bytes,
		Entries:   entries,
	}
}
