// Package live runs a real Data Cyclotron ring: every node hosts the
// column-store engine, the MAL interpreter, and the same core runtime
// the simulator validates, wired to its neighbours through the emulated
// RDMA transport. SQL queries submitted to any node are compiled,
// rewritten by the DcOptimizer, and executed with pin() calls blocking
// until the fragments flow past — the full §4 architecture, live.
package live

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/dcopt"
	"repro/internal/mal"
	"repro/internal/membership"
	"repro/internal/minisql"
	"repro/internal/netsim"
	"repro/internal/rdma"
	"repro/internal/wirebuf"
)

// Transport selects how ring neighbours are connected.
type Transport int

// Transport kinds.
const (
	// InProc connects neighbours through in-process queue pairs.
	InProc Transport = iota
	// TCP connects neighbours through real loopback TCP sockets using
	// the rdma TCP provider: full framing and serialization on the
	// wire, the closest this environment gets to the RDMA fabric.
	TCP
)

// Config tunes the live ring.
type Config struct {
	Core core.Config
	// QueueCap is the per-node BAT queue capacity in bytes.
	QueueCap int
	// Workers is the MAL dataflow parallelism per query.
	Workers int
	// Transport picks the neighbour interconnect.
	Transport Transport
	// Backend selects the wire engine under the TCP transport's data
	// links: "tcp" (or empty — the portable netpoller provider,
	// byte-identical to the pre-selector transport), "uring" (the Linux
	// io_uring registered-buffer provider; a configuration error when
	// the kernel lacks support), or "auto" (uring when a one-time kernel
	// probe passes, tcp otherwise, with the fallback reason recorded in
	// HopStats). Request links always use tcp: their messages are tiny
	// and keeping them off uring bounds the pinned data-loop threads at
	// four per node. Ignored by the in-process transport, except that an
	// explicit "uring" without TCP is rejected.
	Backend string
	// FragmentRows bounds the rows per circulated fragment: a longer
	// column is split into independently circulating fragments, each
	// with its own BATID and level of interest (the granularity axis of
	// §5). 0 disables row-based splitting (one column = one fragment,
	// the pre-fragmentation behavior).
	FragmentRows int
	// FragmentBytes additionally bounds the approximate encoded size of
	// a fragment; it tightens FragmentRows through the column's average
	// bytes per row. 0 disables the byte bound.
	FragmentBytes int
	// FragWorkers bounds how many fragments of one pin a query
	// processes concurrently as they arrive (defaults to Workers).
	FragWorkers int
	// CacheBytes budgets the per-node hot-set fragment cache: ring
	// deliveries are kept resident so a repeat pin of an unchanged
	// fragment is a version-validated node-local read instead of a ring
	// wait (see hotcache.go). 0 disables the cache entirely, restoring
	// the pure-circulation behavior (every pin waits for the ring).
	CacheBytes int
	// CacheMode selects the cache eviction policy (default CacheLOI).
	CacheMode CacheMode
	// CacheDecay is the divisor applied to every resident entry's
	// interest score on each eviction scan (CacheLOI mode). Larger
	// values forget faster. 0 takes the default (2 — halve per scan),
	// keeping the pre-knob behavior byte-identical.
	CacheDecay float64
	// HopBatchBytes budgets the batched hop transport: co-resident
	// outbound fragments coalesce into one multi-payload batch envelope
	// of at most this many wire bytes (see hop.go). 0 disables batching
	// entirely: every fragment travels as its own v2 message, exactly
	// the pre-batching ring.
	HopBatchBytes int
	// HopBatchLinger is how long the hop scheduler waits for more
	// co-resident fragments before flushing a partial batch. Only the
	// first fragment of a batch pays it; keep it well under the query
	// latencies being protected.
	HopBatchLinger time.Duration
	// Replicas installs each fragment on its owner plus this many ring
	// successors and enables the elastic-membership subsystem:
	// heartbeat failure detection multiplexed on the data links, a
	// monotonically versioned membership view gossiped with the beats,
	// and automatic failover (replica promotion, catalog repair, ring
	// splice) when a node is declared dead. 0 disables all of it — no
	// detectors, no heartbeat traffic, no replica state — leaving the
	// single-owner ring byte-identical to the pre-membership path.
	Replicas int
	// Heartbeat tunes the failure detector (pulse interval, missed-beat
	// suspicion and death thresholds). Zero fields take membership
	// defaults; only consulted when Replicas > 0.
	Heartbeat membership.Config
	// JoinFaults, when non-nil, injects faults into join state
	// transfer: every migrated fragment's wire bytes consult the
	// injector, so tests drop or delay the donation stream (the same
	// netsim.Faults policy that drives the simulated links). Production
	// rings leave it nil.
	JoinFaults *netsim.Faults
	// placeFragment overrides the round-robin fragment placement
	// (test hook: shuffled placements exercise adverse arrival orders).
	placeFragment func(frag, nodes int) int
	// ringID and router are set by NewRouter when this ring is one tier
	// of a multi-ring runtime: the id makes the ring addressable, the
	// back-pointer routes pins whose fragments are homed on another
	// ring. Both stay zero for a standalone ring — every routed code
	// path gates on router being nil, so Tiers=0 keeps the single ring
	// byte-identical.
	ringID RingID
	router *Router
	// minMsgBytes floors the computed ring message limit: a tier ring
	// built empty must still size its RDMA regions for the largest
	// fragment that can migrate onto it from another tier.
	minMsgBytes int
}

// DefaultConfig suits in-process rings.
func DefaultConfig() Config {
	cfg := Config{
		Core:           core.DefaultConfig(),
		QueueCap:       256 << 20,
		Workers:        4,
		FragmentRows:   64 << 10,
		CacheBytes:     64 << 20,
		CacheDecay:     2,
		HopBatchBytes:  1 << 20,
		HopBatchLinger: 200 * time.Microsecond,
	}
	// Live rings are small; short timers keep latencies low.
	cfg.Core.LoadAllPeriod = 20 * time.Millisecond
	cfg.Core.ResendTimeout = 2 * time.Second
	return cfg
}

// Ring is a live Data Cyclotron: n nodes connected through rdma queue
// pairs, with the database columns fragmented and partitioned over the
// nodes.
type Ring struct {
	// nodes is the ring's node list, published as an immutable snapshot:
	// readers (stats, placement, failover scans, the pin paths) load the
	// current slice without a lock, and Join publishes a grown copy with
	// a single atomic store — the copy-on-write analogue of the
	// membership view's monotone growth. Node ids are stable slice
	// indices; entries are never removed or reordered (a dead node stays
	// in place, marked dead in the membership view). Growth is
	// serialized by failMu.
	nodes atomic.Pointer[[]*Node]
	cfg   Config
	// id names this ring within a multi-ring runtime (always 0 for a
	// standalone ring); router is the routing layer in front, nil when
	// the ring stands alone (the Tiers=0 compatibility gate).
	id     RingID
	router *Router
	// name -> ordered fragment ids, global catalog agreed by all nodes.
	// Guarded by idsMu because Publish extends it at runtime (§6.2).
	idsMu sync.RWMutex
	cols  map[string]*colFrags
	names []string
	// fragVer is the catalog's current version per fragment id (base
	// data is 0). The map is extended under idsMu (Publish); the values
	// are atomics so the pin fast path validates a cache entry without
	// touching any owner lock. UpdateColumn advances them inside its
	// ordered column/owner critical section.
	fragVer map[core.BATID]*atomic.Int64
	// updMu serializes whole-column updates (a column's fragments may
	// live at several owners, so the §6.4 update lock is column-level).
	updMuMu sync.Mutex
	updMu   map[string]*sync.Mutex
	wg      sync.WaitGroup

	// Exact ring message limit and data-link depth, kept so failover
	// can build replacement messengers identical to the originals.
	maxMsgBytes int
	dataDepth   int

	// backend is the resolved wire engine for TCP data links (tcp unless
	// the uring backend was selected and probed healthy). backendNote
	// records why a requested/auto uring selection is not carrying
	// traffic — the ring-level probe fallback or the first per-link
	// setup fallback; guarded by backendMu because splice/join build
	// links at runtime.
	backend     rdma.Backend
	backendMu   sync.Mutex
	backendNote string

	// fragCol maps every fragment id back to its column name (guarded
	// by idsMu, extended by Publish): failover groups a dead node's
	// fragments by column so promotion serializes against UpdateColumn
	// through the same per-column lock.
	fragCol map[core.BATID]string

	// Membership state (zero-valued and untouched when Replicas is 0).
	// memMu guards deadNodes, fragOwner, and fragReplicas; it is never
	// acquired while holding a node's mu (lock order: memMu first).
	memMu        sync.RWMutex
	deadNodes    map[core.NodeID]bool
	fragOwner    map[core.BATID]core.NodeID
	fragReplicas map[core.BATID][]core.NodeID
	// failMu serializes failovers (several survivors may declare the
	// same death within one heartbeat interval).
	failMu     sync.Mutex
	failovers  int64 // atomic: nodes declared dead and failed over
	promotions int64 // atomic: fragments re-owned from replicas
	lostFrags  int64 // atomic: fragments dead with no surviving replica
	joins      int64 // atomic: nodes admitted at runtime
	migrations int64 // atomic: fragments re-owned toward a joiner
}

// nodeList loads the current node snapshot. The slice is immutable —
// Join publishes growth by storing a longer copy — so callers may
// iterate it without holding any lock.
func (r *Ring) nodeList() []*Node { return *r.nodes.Load() }

// noteBackendFallback records the first per-link uring→tcp degradation
// (later links usually fail for the same reason; the first is the one
// worth surfacing).
func (r *Ring) noteBackendFallback(reason string) {
	if reason == "" {
		return
	}
	r.backendMu.Lock()
	if r.backendNote == "" {
		r.backendNote = reason
	}
	r.backendMu.Unlock()
}

// backendInfo reports the data links' wire engine and, when a uring
// selection degraded to tcp (kernel probe or per-link setup), why.
func (r *Ring) backendInfo() (name, fallback string) {
	if r.cfg.Transport != TCP {
		return "inproc", ""
	}
	r.backendMu.Lock()
	defer r.backendMu.Unlock()
	return r.backend.String(), r.backendNote
}

// node returns ring position i from the current snapshot.
func (r *Ring) node(i int) *Node { return (*r.nodes.Load())[i] }

// Node is one live ring participant.
type Node struct {
	ring *Ring
	id   core.NodeID
	cfg  Config

	mu sync.Mutex // guards rt and all runtime-adjacent state
	rt *core.Runtime

	// store holds the payloads of owned BATs ("local disk").
	store map[core.BATID]*bat.BAT
	// transit holds payloads of BATs currently flowing through, and
	// transitVer the fragment version each arrived labelled with.
	transit    map[core.BATID]*bat.BAT
	transitVer map[core.BATID]int
	// cached holds payloads pinned by local queries (refcounted).
	cached map[core.BATID]*cachedBAT

	// hot is the node's hot-set fragment cache (nil when
	// Config.CacheBytes is 0: every new code path gates on it, so a
	// disabled cache leaves the pure-circulation behavior untouched).
	hot *hotCache

	waiters map[waitKey]chan delivered
	errs    map[core.QueryID]chan error

	// The four neighbour links. linkMu guards the pointers themselves:
	// failover splices fresh messengers around a dead neighbour at
	// runtime, and the receive loops re-check the current link when a
	// Recv fails (relinked vs shut down). The messengers' own methods
	// are concurrency-safe; only the pointer swap needs the lock.
	linkMu  sync.RWMutex
	dataOut *rdma.Messenger // to successor (clockwise)
	reqOut  *rdma.Messenger // to predecessor (anti-clockwise)
	dataIn  *rdma.Messenger // from predecessor
	reqIn   *rdma.Messenger // from successor

	outBytes int64 // outstanding outbound data bytes (queue load)

	schema minisql.Schema
	start  time.Time
	nextQ  int64
	closed chan struct{}

	// §6 extension state.
	versions      map[core.BATID]int
	activeQueries int64

	// Ring-hop accounting (atomic): total data bytes sent and the
	// largest single data message — the fragmentation experiments read
	// these to plot hop cost against fragment size.
	hopBytes    int64
	maxHopBytes int64

	// hop is the outbound batch scheduler (nil when Config.HopBatchBytes
	// is 0, leaving the per-fragment send path untouched). The counters
	// below feed HopStats and are maintained by both paths, so batched
	// and unbatched runs compare directly.
	hop            *hopScheduler
	hopMsgs        int64
	hopSingles     int64
	hopBatchesSent int64
	hopFrags       int64
	hopFill        [8]int64

	// Ring-wait accounting (atomic): how many pins blocked on ring
	// circulation and the total time they spent blocked — the latency
	// term the hot-set cache eliminates. Counted whether or not the
	// cache is enabled, so off-vs-on runs compare directly.
	ringWaits     int64
	ringWaitNanos int64

	// Revolution-time accounting: when one of this node's own fragments
	// returns full circle, the gap since its previous return is folded
	// into an EWMA (atomic revNanos) — the measured revolution time of
	// the ring this node sits on, the quantity the hot/cold tier split
	// trades against. lastSelfSeen is guarded by mu.
	lastSelfSeen map[core.BATID]int64
	revNanos     int64

	// wireCache holds the marshalled bytes of each fragment version so
	// forwarding an unchanged fragment does not pay bat.Marshal again.
	// Fragments are immutable per version, so the payload pointer is the
	// version identity: an entry is valid exactly while its src pointer
	// still names the payload being sent. Guarded by mu; entries are
	// dropped on unload and on update.
	wireCache  map[core.BATID]*wireEntry
	wireHits   int64 // atomic
	wireMisses int64 // atomic

	// interpRunning counts live interpreter goroutines (leak detector
	// and drain hook).
	interpRunning int64

	// memb is this node's membership failure detector (nil when
	// Config.Replicas is 0 — the same nil-gating as hot and hop).
	memb *membership.Detector
	// replicas holds this node's replica copies of fragments owned
	// elsewhere (this node is within Replicas ring successors of the
	// owner). Guarded by mu; nil when Replicas is 0.
	replicas map[core.BATID]*replicaFrag

	beatsSent int64 // atomic: heartbeat pulses sent
	beatsRecv int64 // atomic: heartbeat pulses received

	// recvParked is 1 while dataLoop is blocked in Recv awaiting
	// traffic — the only state in which predecessor silence is real
	// evidence. The failure detector ticks are gated on it: a node
	// that is busy processing (or waiting on its own locks) is not
	// listening, so the silence it observes is self-inflicted and must
	// not turn into a death verdict against an innocent predecessor.
	recvParked int32 // atomic

	// killOnce makes node shutdown idempotent: KillNode (simulated
	// crash), failover (authoritative death), and Ring.Close may each
	// try to stop the same node.
	killOnce sync.Once
}

// wireEntry caches one fragment's serialized form. Entries are
// refcounted: the cache map holds one reference and every in-flight
// send holds another, so a pooled encode buffer is recycled exactly
// when the last user lets go — an update can invalidate an entry while
// its bytes are still being copied into the NIC region without the
// buffer being reused underneath the send.
type wireEntry struct {
	src    *bat.BAT // payload the bytes were marshalled from
	raw    []byte
	pooled bool         // raw came from wirebuf and may be recycled
	refs   atomic.Int32 // cache reference + in-flight sends
}

func newWireEntry(src *bat.BAT, raw []byte, pooled bool) *wireEntry {
	e := &wireEntry{src: src, raw: raw, pooled: pooled}
	e.refs.Store(1)
	return e
}

func (e *wireEntry) acquire() { e.refs.Add(1) }

func (e *wireEntry) release() {
	if e.refs.Add(-1) == 0 && e.pooled {
		wirebuf.Put(e.raw)
	}
}

// setWireEntry installs a cache entry, releasing any entry it replaces.
// Called with n.mu held.
func (n *Node) setWireEntry(id core.BATID, e *wireEntry) {
	if old, ok := n.wireCache[id]; ok {
		old.release()
	}
	n.wireCache[id] = e
}

// dropWireEntry removes and releases a cache entry. Called with n.mu
// held.
func (n *Node) dropWireEntry(id core.BATID) {
	if old, ok := n.wireCache[id]; ok {
		delete(n.wireCache, id)
		old.release()
	}
}

type cachedBAT struct {
	b    *bat.BAT
	ver  int
	refs int
}

// delivered is what a waiter channel carries: the payload and the
// fragment version it arrived labelled with (what the hot-set cache
// and the snapshot merge validate against). A nil b fails the pin.
type delivered struct {
	b   *bat.BAT
	ver int
}

// unrefCached drops one reference on a cached payload, evicting the
// entry when the last reference goes. Called with n.mu held.
func (n *Node) unrefCached(id core.BATID) {
	if c, ok := n.cached[id]; ok {
		c.refs--
		if c.refs <= 0 {
			delete(n.cached, id)
		}
	}
}

type waitKey struct {
	q core.QueryID
	b core.BATID
}

// NewRing builds an in-process live ring of n nodes over the given
// database columns. Each column is split into bounded-size fragments
// (Config.FragmentRows / FragmentBytes) and the fragments are assigned
// to nodes round-robin in (name, fragment) order — the random upfront
// partitioning of §4 made deterministic, at fragment granularity.
func NewRing(n int, columns map[string]*bat.BAT, schema minisql.Schema, cfg Config) (*Ring, error) {
	if n < 2 {
		return nil, fmt.Errorf("live: ring needs at least 2 nodes")
	}
	if cfg.CacheBytes > 0 {
		// With the hot-set cache on, a local pin at the owner is served
		// from the store and everyone else is served from their caches:
		// ring admission should be driven by actual remote interest
		// (ring requests), not by local pins — a fully-hot workload then
		// causes zero circulation.
		cfg.Core.LocalPinsSkipLoad = true
	}
	if cfg.HopBatchBytes > 0 && cfg.Core.ParkIdleCycles == 0 {
		// Batched transport turns on LOI-gated pacing by default: a
		// fragment that served nobody for two straight revolutions parks
		// at its owner until the next interest signal, instead of burning
		// batch slots. A negative ParkIdleCycles opts out explicitly; 0
		// in the core config still means "off" when batching is off.
		cfg.Core.ParkIdleCycles = 2
	}
	if cfg.Core.ParkIdleCycles < 0 {
		cfg.Core.ParkIdleCycles = 0
	}
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	}
	if cfg.Replicas >= n {
		cfg.Replicas = n - 1 // a fragment needs at most one copy per node
	}
	r := &Ring{
		cfg:          cfg,
		id:           cfg.ringID,
		router:       cfg.router,
		cols:         map[string]*colFrags{},
		updMu:        map[string]*sync.Mutex{},
		fragVer:      map[core.BATID]*atomic.Int64{},
		fragCol:      map[core.BATID]string{},
		deadNodes:    map[core.NodeID]bool{},
		fragOwner:    map[core.BATID]core.NodeID{},
		fragReplicas: map[core.BATID][]core.NodeID{},
	}
	names := make([]string, 0, len(columns))
	for name := range columns {
		names = append(names, name)
	}
	sort.Strings(names)
	r.names = names
	// Fragment every column and compute the ring message limit (and
	// thus every RDMA memory region) exactly from the codec: the
	// largest *fragment's* encoded size — doubled as growth headroom
	// for updated versions — plus the fixed envelope header. No
	// serialization slack needed: MarshalSize is byte-exact, and the
	// regions shrink with the fragment bound instead of tracking the
	// largest column.
	type fragEntry struct {
		id core.BATID
		b  *bat.BAT
	}
	var frags []fragEntry
	maxPayload := 1 << 16
	next := core.BATID(0)
	for _, name := range names {
		b := columns[name]
		spans := fragmentSpans(b.Len(), fragmentRowsFor(b, cfg))
		cf := &colFrags{}
		for _, sp := range spans {
			fb := b
			if len(spans) > 1 {
				fb = b.Slice(sp[0], sp[1])
			}
			if s := bat.MarshalSize(fb) * 2; s > maxPayload {
				maxPayload = s
			}
			cf.ids = append(cf.ids, next)
			frags = append(frags, fragEntry{next, fb})
			r.fragVer[next] = &atomic.Int64{}
			r.fragCol[next] = name
			next++
		}
		r.cols[name] = cf
	}
	maxBytes := dataHdrSize + maxPayload
	dataDepth := 0 // 0 = messenger default
	if cfg.HopBatchBytes > 0 {
		// A batch tops out at the byte budget (take() only coalesces
		// while the batch stays inside it); a single oversized fragment
		// still travels alone, so the region must fit whichever is
		// larger. Batch-aware receive credits: one credit now admits a
		// whole batch of fragments, so the data links run a shallower
		// receive queue at the same fragment-level concurrency — and the
		// (larger) registered regions stay bounded.
		if cfg.HopBatchBytes > maxBytes {
			maxBytes = cfg.HopBatchBytes
		}
		dataDepth = 4
	}
	if cfg.Replicas > 0 {
		// A beat gossips one status byte per ring member; make sure the
		// data regions can carry it even on tiny test rings.
		if bs := beatMsgSize(n); bs > maxBytes {
			maxBytes = bs
		}
	}
	if cfg.minMsgBytes > maxBytes {
		// Tier rings admit fragments migrated from sibling rings: the
		// regions must fit the largest fragment of the whole runtime,
		// not just of the columns this ring was born with.
		maxBytes = cfg.minMsgBytes
	}
	r.maxMsgBytes = maxBytes
	r.dataDepth = dataDepth
	// Resolve the wire backend once per ring: "auto" consults the kernel
	// probe here (fallback reason recorded for stats), explicit "uring"
	// on an unsupported kernel — or without the TCP transport — fails
	// construction loudly.
	parsedBackend, err := rdma.ParseBackend(cfg.Backend)
	if err != nil {
		return nil, err
	}
	if cfg.Transport != TCP {
		if parsedBackend == rdma.BackendUring {
			return nil, fmt.Errorf("live: backend uring requires the TCP transport")
		}
		r.backend = rdma.BackendTCP
	} else {
		backend, reason, err := rdma.ResolveBackend(cfg.Backend)
		if err != nil {
			return nil, err
		}
		r.backend = backend
		r.backendNote = reason
	}
	hbCfg := cfg.Heartbeat.WithDefaults()
	if cfg.router != nil {
		// Per-ring detectors: each tier runs its own failure-detection
		// domain, labelled so verdicts stay attributable.
		hbCfg.Ring = cfg.ringID.String()
	}

	// Nodes and transports. Built into a local slice and published once
	// at the end; Join later publishes grown copies the same way.
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		node := &Node{
			ring:       r,
			id:         core.NodeID(i),
			cfg:        cfg,
			store:      map[core.BATID]*bat.BAT{},
			transit:    map[core.BATID]*bat.BAT{},
			transitVer: map[core.BATID]int{},
			cached:     map[core.BATID]*cachedBAT{},
			waiters:    map[waitKey]chan delivered{},
			errs:       map[core.QueryID]chan error{},
			wireCache:  map[core.BATID]*wireEntry{},
			schema:     schema,
			start:      time.Now(),
			closed:     make(chan struct{}),
		}
		if cfg.CacheBytes > 0 {
			node.hot = newHotCache(cfg.CacheBytes, cfg.CacheMode, cfg.CacheDecay)
		}
		if cfg.HopBatchBytes > 0 {
			node.hop = newHopScheduler(cfg.HopBatchBytes, cfg.HopBatchLinger)
		}
		if cfg.Replicas > 0 {
			node.replicas = map[core.BATID]*replicaFrag{}
			node.memb = membership.NewDetector(i, n, (i-1+n)%n, hbCfg)
		}
		node.rt = core.New(node.id, (*liveEnv)(node), cfg.Core)
		nodes = append(nodes, node)
	}
	for i := 0; i < n; i++ {
		succ := (i + 1) % n
		dataA, dataB, reason, err := newQueuePair(cfg.Transport, r.backend, maxBytes)
		if err != nil {
			return nil, err
		}
		r.noteBackendFallback(reason)
		mA, err := rdma.NewMessengerDepth(dataA, maxBytes, dataDepth)
		if err != nil {
			return nil, err
		}
		mB, err := rdma.NewMessengerDepth(dataB, maxBytes, dataDepth)
		if err != nil {
			return nil, err
		}
		nodes[i].dataOut = mA
		nodes[succ].dataIn = mB

		// Request links stay on the tcp engine regardless of backend:
		// 24-byte messages gain nothing from registered buffers, and it
		// caps the uring loops' pinned OS threads at the data links.
		reqA, reqB, _, err := newQueuePair(cfg.Transport, rdma.BackendTCP, 1<<12)
		if err != nil {
			return nil, err
		}
		rA, err := rdma.NewMessenger(reqA, 1<<12)
		if err != nil {
			return nil, err
		}
		rB, err := rdma.NewMessenger(reqB, 1<<12)
		if err != nil {
			return nil, err
		}
		pred := (i - 1 + n) % n
		nodes[i].reqOut = rA
		nodes[pred].reqIn = rB
	}

	// Partition ownership round-robin over fragments, so one column's
	// fragments spread across the ring and a multi-fragment pin drains
	// several owners in parallel.
	place := cfg.placeFragment
	if place == nil {
		place = func(frag, nodes int) int { return frag % nodes }
	}
	for i, fe := range frags {
		pos := place(i, n) % n
		owner := nodes[pos]
		owner.store[fe.id] = fe.b
		owner.rt.AddOwned(fe.id, fe.b.Bytes())
		r.fragOwner[fe.id] = owner.id
		if cfg.Replicas > 0 {
			// Replica placement rule: the next Replicas ring successors
			// of the owner each hold a copy — the chain any survivor
			// can recompute from the fragment id alone.
			chain := make([]core.NodeID, 0, cfg.Replicas)
			for k := 1; k <= cfg.Replicas; k++ {
				rep := nodes[(pos+k)%n]
				rep.replicas[fe.id] = &replicaFrag{b: fe.b}
				chain = append(chain, rep.id)
			}
			r.fragReplicas[fe.id] = chain
		}
	}

	r.nodes.Store(&nodes)

	// Start receive loops, the hop scheduler, heartbeats, and runtime
	// tickers.
	for _, node := range nodes {
		node.startLoops()
	}
	return r, nil
}

// startLoops starts the node's runtime ticker, receive loops, and the
// optional hop/beat goroutines — the boot sequence shared by NewRing
// and the runtime join path. The node's links must be wired first.
func (n *Node) startLoops() {
	r := n.ring
	n.rt.Start()
	r.wg.Add(2)
	go n.dataLoop(&r.wg)
	go n.reqLoop(&r.wg)
	if n.hop != nil {
		r.wg.Add(1)
		go n.hopLoop(&r.wg)
	}
	if n.memb != nil {
		r.wg.Add(1)
		go n.beatLoop(&r.wg)
	}
}

// Node returns node i.
func (r *Ring) Node(i int) *Node { return r.node(i) }

// ID reports this ring's identity within a multi-ring runtime (0 for a
// standalone ring).
func (r *Ring) ID() RingID { return r.id }

// RevolutionTime reports the measured ring revolution time: the mean of
// every node's owner-side EWMA of the gap between successive returns of
// its own fragments. Zero until at least one fragment has come full
// circle twice.
func (r *Ring) RevolutionTime() time.Duration {
	var total int64
	var count int64
	for _, n := range r.nodeList() {
		if v := atomic.LoadInt64(&n.revNanos); v > 0 {
			total += v
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return time.Duration(total / count)
}

// Size reports the ring size (including dead positions — ids are
// stable; use AliveNodes for the live census).
func (r *Ring) Size() int { return len(r.nodeList()) }

// Close shuts the ring down. Nodes already killed (KillNode, failover)
// are skipped by their kill-once guard.
func (r *Ring) Close() {
	for _, n := range r.nodeList() {
		n.kill()
	}
	r.wg.Wait()
}

// BATID resolves a column name ("table.column") to its first fragment
// id (the only fragment for unfragmented columns). Use Fragments for
// the full per-fragment id list.
func (r *Ring) BATID(name string) (core.BATID, bool) {
	r.idsMu.RLock()
	defer r.idsMu.RUnlock()
	cf, ok := r.cols[name]
	if !ok {
		return 0, false
	}
	return cf.ids[0], true
}

// ---------------------------------------------------------------------
// receive loops
// ---------------------------------------------------------------------

func (n *Node) dataLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		in := n.linkDataIn()
		atomic.StoreInt32(&n.recvParked, 1)
		data, err := in.Recv()
		atomic.StoreInt32(&n.recvParked, 0)
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			if n.linkDataIn() != in {
				// Failover spliced a new predecessor link in and closed
				// this one under us: resume receiving from the new link.
				continue
			}
			return
		}
		if isBeatMsg(data) {
			n.onBeat(data)
			continue
		}
		if n.memb != nil {
			// Any message on the data link is implicit proof that the
			// predecessor lives: a node pushing bulk data is not dead,
			// even when its explicit beats are queued behind that data.
			n.memb.Pulse()
		}
		if isBatchMsg(data) {
			// A batch envelope is several v2 messages that shared one
			// hop: handle each entry exactly as if it had arrived alone.
			// Entry payloads are zero-copy views over the (per-Recv
			// fresh) message buffer, same aliasing rules as a single.
			entries, err := decodeBatchMsg(data)
			if err != nil {
				continue
			}
			for _, e := range entries {
				n.handleData(e.m, e.ver, e.payload)
			}
			continue
		}
		hdr, ver, rawPayload, err := decodeDataMsg(data)
		if err != nil {
			continue
		}
		n.handleData(hdr, ver, rawPayload)
	}
}

// handleData processes one arrived data message (or one batch entry):
// decode, hot-cache population, runtime delivery.
func (n *Node) handleData(hdr core.BATMsg, ver int, rawPayload []byte) {
	if n.memb != nil && hdr.Owner != n.id && n.ring.isDead(hdr.Owner) {
		// An envelope orphaned by its owner's death. If failover has
		// promoted this node to owner, adopt the envelope as our own
		// circulating copy (hot-set management then runs as usual); the
		// dead node's first live successor retires any other orphan so
		// it cannot orbit forever — re-owned fragments re-enter the
		// ring from the heir's store with the catalog version.
		n.mu.Lock()
		owns := n.rt.Owns(hdr.BAT)
		myVer := n.versions[hdr.BAT]
		n.mu.Unlock()
		if owns {
			if ver < myVer {
				// A stale orbit copy outlived by the promotion: the heir's
				// store already holds a newer version, so adopting this
				// envelope would put superseded bytes back into
				// circulation. Retire it; the store copy re-enters the
				// ring through the next load.
				return
			}
			hdr.Owner = n.id
		} else if n.ring.nextAlive(hdr.Owner) == n.id {
			return
		}
	}
	var payload *bat.BAT
	if len(rawPayload) > 0 {
		// Zero-copy decode: the BAT's fixed-width columns alias
		// rawPayload (and thus the receive buffer), which is fresh
		// per message and immutable from here on.
		var err error
		payload, err = bat.UnmarshalView(rawPayload)
		if err != nil {
			return
		}
	}
	if payload != nil && n.hot != nil && hdr.Owner != n.id {
		// Populate the hot-set cache from the passing traffic,
		// labelled with the version the owner sent it under. Own
		// fragments are skipped: the owner's pins are served from
		// the store already. Inserted before OnBAT so a pin
		// coalesced behind this delivery finds the entry resident.
		n.hot.put(hdr.BAT, ver, payload)
	}
	n.mu.Lock()
	if hdr.Owner == n.id {
		// One of our own fragments came full circle: the gap since its
		// previous return is one measured ring revolution. EWMA with a
		// 1/4 step — smooth enough to read, fresh enough to follow a
		// linger change within a few revolutions.
		now := time.Now().UnixNano()
		if n.lastSelfSeen == nil {
			n.lastSelfSeen = map[core.BATID]int64{}
		}
		if last, ok := n.lastSelfSeen[hdr.BAT]; ok && now > last {
			d := now - last
			if old := atomic.LoadInt64(&n.revNanos); old == 0 {
				atomic.StoreInt64(&n.revNanos, d)
			} else {
				atomic.StoreInt64(&n.revNanos, old+(d-old)/4)
			}
		}
		n.lastSelfSeen[hdr.BAT] = now
	}
	if rp, ok := n.replicas[hdr.BAT]; ok {
		// Replica-aware LOI accounting: remember the interest the
		// fragment shows while circulating, so a promotion after the
		// owner's death re-admits it at its earned heat (§6.3).
		rp.loi = hdr.LOI
	}
	if payload != nil {
		n.transit[hdr.BAT] = payload
		n.transitVer[hdr.BAT] = ver
		// Seed the wire cache with the bytes just received: if OnBAT
		// forwards this fragment, SendData reuses them verbatim
		// instead of re-marshalling the payload it just decoded.
		// Not pooled: the decoded BAT aliases these bytes. In cache
		// mode the owner forwards its *store* payload instead of the
		// circulating copy, so seeding its own fragment would evict
		// the store-keyed entry and force a re-marshal every pass —
		// keep that entry instead.
		if n.hot == nil || hdr.Owner != n.id {
			n.setWireEntry(hdr.BAT, newWireEntry(payload, rawPayload, false))
		}
	}
	n.rt.OnBAT(hdr)
	delete(n.transit, hdr.BAT)
	delete(n.transitVer, hdr.BAT)
	if payload != nil {
		// The seed has served its purpose (the forward, if any,
		// happened inside OnBAT). On a non-owner, keeping it would
		// pin the raw bytes and the decoded payload of every
		// fragment that ever flowed past — the next arrival reseeds
		// anyway. Persistent entries are kept only for fragments in
		// the local store, where repeat sends amortize the marshal.
		if _, owned := n.store[hdr.BAT]; !owned {
			if ent, ok := n.wireCache[hdr.BAT]; ok && ent.src == payload {
				n.dropWireEntry(hdr.BAT)
			}
		}
	}
	n.mu.Unlock()
}

func (n *Node) reqLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		in := n.linkReqIn()
		data, err := in.Recv()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			if n.linkReqIn() != in {
				continue // spliced: receive from the new link
			}
			return
		}
		req, err := decodeReqMsg(data)
		if err != nil {
			continue
		}
		if n.memb != nil && n.ring.isDead(req.Origin) {
			// A dead origin can never receive the answer; absorbing the
			// request here stops it orbiting the repaired ring.
			continue
		}
		if (n.memb != nil || n.ring.router != nil) && req.Origin == n.id && n.ring.fragKnown(req.BAT) {
			// Full circle, but the catalog still lists the fragment: no
			// live owner absorbed the request because ownership is mid-
			// promotion (or the re-owned fragment has not re-entered
			// orbit yet). The stable-ring conclusion — returned request
			// means the BAT does not exist — would error every blocked
			// pin with a false negative. Swallow it instead: the resend
			// timer keeps the interest alive until the new owner answers.
			// The same window exists in a routed runtime while a fragment
			// is mid-migration between rings, so the router gate joins
			// the membership one.
			continue
		}
		n.mu.Lock()
		n.rt.OnRequest(req)
		n.mu.Unlock()
	}
}

// ---------------------------------------------------------------------
// core.Env implementation
// ---------------------------------------------------------------------

type liveEnv Node

func (e *liveEnv) node() *Node { return (*Node)(e) }

func (e *liveEnv) Now() time.Duration { return time.Since(e.start) }

// SendData forwards a BAT (with payload) to the successor. Called with
// n.mu held; the actual network send happens asynchronously so the
// runtime never blocks on the wire.
func (e *liveEnv) SendData(m core.BATMsg) {
	n := e.node()
	var payload *bat.BAT
	var ver int
	if (n.hot != nil || n.ring.router != nil) && m.Owner == n.id {
		// Cache mode, forwarding our own fragment: send the store's
		// current version rather than the circulating copy, so an
		// UpdateColumn reaches the ring within one owner pass and the
		// superseded bytes die here instead of rotating until the LOI
		// decays (the invalidation half of the version-validation
		// contract). Without the cache the circulating copy is
		// forwarded as before — except on a routed ring, where remote
		// delegates rely on the owner pass refreshing the orbit (their
		// stale-version retry would otherwise chase a copy that never
		// catches up).
		if b, ok := n.store[m.BAT]; ok {
			payload, ver = b, n.versions[m.BAT]
			m.Size = b.Bytes()
		}
	}
	if payload == nil {
		if b, ok := n.transit[m.BAT]; ok {
			payload, ver = b, n.transitVer[m.BAT]
		} else if b, ok := n.store[m.BAT]; ok {
			payload, ver = b, n.versions[m.BAT]
		} else if c, ok := n.cached[m.BAT]; ok {
			payload, ver = c.b, c.ver
		}
	}
	if payload == nil {
		return // nothing to forward; drop (should not happen)
	}
	// Fragments are immutable per version: reuse the marshalled bytes as
	// long as the cached entry still points at this exact payload. An
	// update installs a new *bat.BAT, so the pointer comparison doubles
	// as version validation. Fresh marshals encode into pooled buffers;
	// the refcount returns them to the pool once the entry is
	// invalidated and no send is in flight.
	ent, ok := n.wireCache[m.BAT]
	if ok && ent.src == payload {
		atomic.AddInt64(&n.wireHits, 1)
	} else {
		ent = newWireEntry(payload, bat.AppendMarshal(wirebuf.Get(), payload), true)
		n.setWireEntry(m.BAT, ent)
		atomic.AddInt64(&n.wireMisses, 1)
	}
	ent.acquire()
	atomic.AddInt64(&n.outBytes, int64(m.Size))
	if n.hop != nil {
		// Batched transport: queue the fragment for the hop scheduler,
		// which coalesces co-resident outbound fragments into one batch
		// envelope per neighbour hop. The entry reference keeps the
		// cached bytes stable until the (possibly vectored) send is done.
		n.hop.enqueue(hopEntry{m: m, ver: ver, ent: ent})
		return
	}
	go func() {
		defer ent.release()
		defer atomic.AddInt64(&n.outBytes, -int64(m.Size))
		select {
		case <-n.closed:
			return
		default:
		}
		wire := int64(dataHdrSize + len(ent.raw))
		n.countHopMsg(wire, 1)
		// Assemble the envelope directly in the registered send region:
		// fixed header, then the cached codec bytes — one copy, zero
		// allocations.
		n.linkDataOut().SendEncoded(dataHdrSize+len(ent.raw), func(dst []byte) int {
			encodeDataHdr(dst, m, ver, len(ent.raw))
			return dataHdrSize + copy(dst[dataHdrSize:], ent.raw)
		})
	}()
}

func (e *liveEnv) SendRequest(m core.RequestMsg) bool {
	n := e.node()
	go func() {
		select {
		case <-n.closed:
			return
		default:
		}
		n.linkReqOut().SendEncoded(reqMsgSize, func(dst []byte) int {
			encodeReqMsg(dst, m)
			return reqMsgSize
		})
	}()
	return true
}

func (e *liveEnv) QueueLoad() (int, int) {
	return int(atomic.LoadInt64(&e.node().outBytes)), e.cfg.QueueCap
}

type liveTimer struct{ t *time.Timer }

func (t liveTimer) Cancel() { t.t.Stop() }

func (e *liveEnv) After(d time.Duration, fn func()) core.TimerHandle {
	n := e.node()
	return liveTimer{t: time.AfterFunc(d, func() {
		select {
		case <-n.closed:
			return
		default:
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		fn()
	})}
}

// Deliver resolves the payload and wakes the blocked pin. Called with
// n.mu held. The waiter lookup gates the refcount: a delivery whose pin
// was abandoned (query cancelled between abandonPin and CancelQuery)
// must not count a cached-payload reference nobody will ever release.
func (e *liveEnv) Deliver(q core.QueryID, b core.BATID) {
	n := e.node()
	key := waitKey{q, b}
	ch, ok := n.waiters[key]
	if !ok {
		// Pin abandoned; no one left to hand the payload to. The only
		// path that can reach a missing waiter is an asynchronous ring
		// arrival (synchronous deliveries run in the same critical
		// section that registers the waiter), and that path counted one
		// runtime cache ref (batPropagation's cacheRef) just before
		// delivering — release it, or the stale rt.cache entry would
		// short-circuit every later pin of this BAT into a nil delivery.
		n.rt.Unpin(q, b)
		return
	}
	delete(n.waiters, key)
	var payload *bat.BAT
	var ver int
	if p, ok := n.store[b]; ok {
		// Owner: always serve the store, never a circulating copy. The
		// store is the authoritative latest version (UpdateColumn bumps
		// it under the column lock before the catalog advances), while a
		// transit copy returning from a full orbit carries whatever
		// version the fragment had when it was last sent — under update
		// pressure that can be arbitrarily far behind. Serving the store
		// keeps owner pins on the cache contract: never older than the
		// catalog read before the pin.
		payload, ver = p, n.versions[b]
	} else if p, ok := n.transit[b]; ok {
		payload, ver = p, n.transitVer[b]
		// The query will hold the BAT pinned: keep the payload cached.
		c := n.cached[b]
		if c == nil {
			c = &cachedBAT{b: p, ver: ver}
			n.cached[b] = c
		}
		c.refs++
	} else if c, ok := n.cached[b]; ok {
		payload, ver = c.b, c.ver
		c.refs++
	}
	ch <- delivered{payload, ver} // buffered
}

func (e *liveEnv) QueryError(q core.QueryID, b core.BATID, reason string) {
	n := e.node()
	// Fail any blocked pin of this query.
	for key, ch := range n.waiters {
		if key.q == q {
			delete(n.waiters, key)
			ch <- delivered{}
		}
	}
	if ec, ok := n.errs[q]; ok {
		select {
		case ec <- fmt.Errorf("live: query %d: %s (BAT %d)", q, reason, b):
		default:
		}
	}
}

func (e *liveEnv) OnLoad(b core.BATID, size int) {}

// OnUnload drops the fragment's cached wire bytes: once the BAT leaves
// the hot set there is no forward to amortize them over. Called with
// n.mu held. The hot-set cache entry goes too — the owner serves its
// own pins from the store, so resident bytes are better spent.
func (e *liveEnv) OnUnload(b core.BATID, size int) {
	n := e.node()
	n.dropWireEntry(b)
	if n.hot != nil {
		n.hot.drop(b)
	}
}

// ---------------------------------------------------------------------
// query execution
// ---------------------------------------------------------------------

// queryDC adapts one query's datacyclotron.* calls onto the node.
type queryDC struct {
	n *Node
	q core.QueryID
	// cancel, when non-nil, aborts blocked pins: ExecPlan closes it when
	// the query fails so the interpreter goroutine can exit instead of
	// waiting for a delivery that will never come.
	cancel <-chan struct{}
	mu     sync.Mutex
	bats   []core.BATID
	// pinned maps delivered BAT values back to their fragment ids:
	// the DcOptimizer emits unpin(X) on the pinned variable (Table 2),
	// so unpin receives the *bat.BAT, not the request handle.
	pinned map[*bat.BAT]core.BATID
	// local marks pinned values served node-locally from the hot-set
	// cache (or a coalesced flight): they hold no runtime pin and no
	// refcounted payload, so their unpin only drops the tracking.
	local map[*bat.BAT]bool
	// merged tracks multi-fragment pin results: their fragments were
	// unpinned at merge time, so the plan's unpin is a no-op on them.
	merged map[*bat.BAT]bool
}

// Request implements mal.DCRuntime. A fragmented column becomes a
// multi-fragment request: interest in every fragment is registered up
// front so all of them start flowing, and the returned handle names the
// whole set.
func (d *queryDC) Request(schema, table, column string) (mal.Value, error) {
	name := table + "." + column
	ids, ok := d.n.ring.Fragments(name)
	if !ok {
		return nil, fmt.Errorf("live: unknown column %s", name)
	}
	d.mu.Lock()
	d.bats = append(d.bats, ids...)
	d.mu.Unlock()
	d.n.mu.Lock()
	for _, id := range ids {
		// A fragment homed on another ring never circulates here: its
		// pin dispatches through the router to a delegate on the home
		// ring, so announcing local interest would only leave an S2
		// entry nobody delivers. (If the fragment migrates here before
		// the pin, core.Runtime.Pin re-announces on its own.)
		if rtr := d.n.ring.router; rtr != nil && rtr.homeOf(id) != d.n.ring.id {
			continue
		}
		// A fragment resident in the hot-set cache at the catalog's
		// current version will be served node-locally at pin time:
		// skip the ring request entirely, so fully-hot repeat queries
		// cause zero circulation. If the entry is evicted or updated
		// before the pin, the pin's ring path re-announces interest
		// (core.Runtime.Pin creates and sends the request itself).
		if d.n.hot != nil && d.n.hot.peek(id, d.n.ring.fragVersion(id)) {
			continue
		}
		d.n.rt.Request(d.q, id)
	}
	d.n.mu.Unlock()
	if len(ids) == 1 {
		return ids[0], nil
	}
	return &fragHandle{name: name, ids: ids}, nil
}

// Pin implements mal.DCRuntime: a hot-set cache hit (validated against
// the catalog version at this instant) returns a node-local zero-copy
// view immediately; otherwise it blocks until the BAT flows past. A
// multi-fragment handle pins every fragment as it arrives (any order)
// and returns the order-preserving merge.
func (d *queryDC) Pin(handle mal.Value) (mal.Value, error) {
	if h, ok := handle.(*fragHandle); ok {
		return d.pinMerged(h)
	}
	id, ok := handle.(core.BATID)
	if !ok {
		return nil, fmt.Errorf("live: bad pin handle %T", handle)
	}
	b, _, viaRing, err := d.acquireFrag(id, nil)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.pinned == nil {
		d.pinned = map[*bat.BAT]core.BATID{}
	}
	d.pinned[b] = id
	if !viaRing {
		if d.local == nil {
			d.local = map[*bat.BAT]bool{}
		}
		d.local[b] = true
	}
	d.mu.Unlock()
	return b, nil
}

// abandonPin unwinds a pin the caller gave up on. A concurrent Deliver
// (which runs under n.mu) may already have removed the waiter entry,
// bumped the payload's refcounts, and sent into ch — in which case the
// cancel branch of the select raced the delivery and must consume the
// payload and drop those refs, or the cachedBAT leaks for the ring's
// lifetime. Otherwise the waiter entry is still registered; removing it
// turns any later Deliver for this pin into a no-op (Deliver only
// counts references when it finds a waiter to hand the payload to).
func (d *queryDC) abandonPin(id core.BATID, ch chan delivered) {
	n := d.n
	n.mu.Lock()
	delete(n.waiters, waitKey{d.q, id})
	select {
	case dv := <-ch:
		if dv.b != nil {
			// The delivery won the race: drop the refs it counted, at
			// both the live layer and the runtime (what the query's own
			// unpin would have released).
			n.rt.Unpin(d.q, id)
			n.unrefCached(id)
		}
	default:
	}
	n.mu.Unlock()
}

// Unpin implements mal.DCRuntime. It accepts either the request handle
// (a BATID) or the pinned BAT value (what the DcOptimizer emits).
func (d *queryDC) Unpin(handle mal.Value) error {
	var id core.BATID
	switch h := handle.(type) {
	case core.BATID:
		id = h
	case *bat.BAT:
		d.mu.Lock()
		if d.merged[h] {
			// A merged multi-fragment value: its fragments were already
			// unpinned when their work finished.
			delete(d.merged, h)
			d.mu.Unlock()
			return nil
		}
		mapped, ok := d.pinned[h]
		if ok {
			delete(d.pinned, h)
		}
		local := d.local[h]
		if local {
			delete(d.local, h)
		}
		d.mu.Unlock()
		if !ok {
			return fmt.Errorf("live: unpin of a BAT that was never pinned")
		}
		if local {
			// Served from the hot-set cache: no runtime pin and no
			// refcounted payload were ever taken.
			return nil
		}
		id = mapped
	default:
		return fmt.Errorf("live: bad unpin handle %T", handle)
	}
	n := d.n
	n.mu.Lock()
	n.rt.Unpin(d.q, id)
	n.unrefCached(id)
	n.mu.Unlock()
	return nil
}

// ExecSQL compiles src, rewrites it into Data Cyclotron form, and runs
// it on this node, waiting for fragments as they flow around the ring.
func (n *Node) ExecSQL(src string) (*mal.ResultSet, error) {
	plan, err := minisql.Compile(src, n.schema, "sys")
	if err != nil {
		return nil, err
	}
	dcPlan, _, err := dcopt.Rewrite(plan)
	if err != nil {
		return nil, err
	}
	return n.ExecPlan(dcPlan)
}

// ExecPlan runs an already-rewritten MAL plan on this node.
func (n *Node) ExecPlan(plan *mal.Plan) (*mal.ResultSet, error) {
	atomic.AddInt64(&n.activeQueries, 1)
	defer atomic.AddInt64(&n.activeQueries, -1)
	q := core.QueryID(atomic.AddInt64(&n.nextQ, 1))<<16 | core.QueryID(n.id)
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	abort := func() { cancelOnce.Do(func() { close(cancel) }) }
	dc := &queryDC{n: n, q: q, cancel: cancel}
	errCh := make(chan error, 1)
	n.mu.Lock()
	n.errs[q] = errCh
	n.mu.Unlock()
	defer func() {
		abort()
		n.mu.Lock()
		delete(n.errs, q)
		n.releaseQuery(q, dc)
		n.rt.CancelQuery(q, dc.bats)
		n.mu.Unlock()
	}()

	ctx := &mal.Context{Registry: mal.NewRegistry(), DC: dc, Workers: n.cfg.Workers, Cancel: cancel}
	done := make(chan struct{})
	var (
		res    mal.Value
		runErr error
	)
	atomic.AddInt64(&n.interpRunning, 1)
	go func() {
		defer atomic.AddInt64(&n.interpRunning, -1)
		res, runErr = mal.Run(ctx, plan)
		close(done)
	}()
	select {
	case <-done:
	case err := <-errCh:
		// The query failed at the protocol layer. Cancel the interpreter
		// and wait for it: pins observe the cancel channel, so the
		// goroutine exits promptly instead of leaking against a query
		// the runtime has already given up on.
		abort()
		<-done
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	rs, ok := res.(*mal.ResultSet)
	if !ok {
		return nil, fmt.Errorf("live: plan produced %T, want result set", res)
	}
	return rs, nil
}

// releaseQuery drops whatever protocol state an aborted interpreter
// left behind: unconsumed waiter channels (including payload refs a
// Deliver already handed them) and pins that never saw their unpin
// instruction. Called with n.mu held, after the interpreter goroutine
// has stopped.
func (n *Node) releaseQuery(q core.QueryID, dc *queryDC) {
	for key, ch := range n.waiters {
		if key.q != q {
			continue
		}
		delete(n.waiters, key)
		select {
		case dv := <-ch:
			if dv.b != nil {
				// The delivery counted refs at both layers; release both,
				// as the query's own unpin would have.
				n.rt.Unpin(q, key.b)
				n.unrefCached(key.b)
			}
		default:
		}
	}
	dc.mu.Lock()
	for b, id := range dc.pinned {
		if dc.local[b] {
			continue // node-local acquisition: no runtime refs were taken
		}
		n.rt.Unpin(q, id)
		n.unrefCached(id)
	}
	dc.pinned = nil
	dc.local = nil
	dc.mu.Unlock()
}

// Runtime exposes the node's DC runtime for inspection (stats).
func (n *Node) Runtime() *core.Runtime { return n.rt }

// Stats snapshots the node's protocol counters.
func (n *Node) Stats() core.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rt.Stats()
}

// ID reports the node's ring position.
func (n *Node) ID() core.NodeID { return n.id }

// Schema exposes the node's SQL schema (every node shares the ring's).
func (n *Node) Schema() minisql.Schema { return n.schema }

// ActiveQueries reports how many queries are executing on this node
// right now (a load signal for admission and the nomadic phase).
func (n *Node) ActiveQueries() int64 { return atomic.LoadInt64(&n.activeQueries) }

// InterpRunning reports live interpreter goroutines on this node; it
// returns to zero when the node is idle (leak detector).
func (n *Node) InterpRunning() int64 { return atomic.LoadInt64(&n.interpRunning) }

// WireCacheStats reports how many data forwards reused cached codec
// bytes versus paid a fresh bat.AppendMarshal. Buffer-pool reuse
// counters live alongside in wirebuf.Stats.
func (n *Node) WireCacheStats() (hits, misses int64) {
	return atomic.LoadInt64(&n.wireHits), atomic.LoadInt64(&n.wireMisses)
}

// CacheStats snapshots the node's hot-set cache counters plus the
// ring-wait accounting (the latter is recorded whether or not the
// cache is enabled, so disabled-vs-enabled runs compare directly).
func (n *Node) CacheStats() CacheStats {
	var s CacheStats
	if n.hot != nil {
		s = n.hot.stats()
	}
	s.RingWaits = atomic.LoadInt64(&n.ringWaits)
	s.RingWaitNanos = atomic.LoadInt64(&n.ringWaitNanos)
	return s
}

// CacheStats aggregates the hot-set cache counters over every node.
func (r *Ring) CacheStats() CacheStats {
	var total CacheStats
	for _, n := range r.nodeList() {
		s := n.CacheStats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Stale += s.Stale
		total.Inserts += s.Inserts
		total.Evictions += s.Evictions
		total.Coalesced += s.Coalesced
		total.Bytes += s.Bytes
		total.Entries += s.Entries
		total.RingWaits += s.RingWaits
		total.RingWaitNanos += s.RingWaitNanos
	}
	return total
}

// Quiesce blocks until no node is executing a query, or until timeout
// elapses; it reports whether the ring went idle. Callers that submit
// queries from several places (e.g. a drained server plus in-process
// submitters) use this before tearing the ring down.
func (r *Ring) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		idle := true
		for _, n := range r.nodeList() {
			if n.ActiveQueries() > 0 || n.InterpRunning() > 0 {
				idle = false
				break
			}
		}
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}
