package live

import (
	"fmt"
	"testing"

	"repro/internal/bat"
	"repro/internal/minisql"
)

// BenchmarkRingHop measures the end-to-end cost of one fragment hop:
// envelope encode + registered-region copy + transport + envelope
// decode + zero-copy BAT decode, via Fetch from the non-owning node of
// a two-node ring. This is the number the codec work is about — the
// per-hop serialization tax on ring bandwidth.
func BenchmarkRingHop(b *testing.B) {
	for _, rows := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = int64(i)
			}
			frag := bat.MakeInts("big.col", vals)
			cols := map[string]*bat.BAT{"big.col": frag}
			schema := minisql.MapSchema{"big": {"col"}}
			r, err := NewRing(2, cols, schema, DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			// big.col is owned by node 0; fetch from node 1 so every
			// access crosses the wire at least once.
			b.SetBytes(int64(bat.MarshalSize(frag)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := r.Node(1).Fetch("big.col")
				if err != nil {
					b.Fatal(err)
				}
				if got.Len() != rows {
					b.Fatalf("fetched %d rows, want %d", got.Len(), rows)
				}
			}
		})
	}
}
