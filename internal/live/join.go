package live

// Runtime ring growth: the join half of elastic membership (the inverse
// of member.go's failover). A new node enters a *serving* ring in two
// phases:
//
//  Phase A — admission (under failMu, the same lock that serializes
//  failover): a sponsor (any live node) hands the newcomer its current
//  versioned membership view; every live detector's view is grown
//  monotonically to the new ring size (gossip then only confirms, the
//  mirror image of failover's MarkDead broadcast); the neighbour links
//  are spliced *in* — new messengers installed before the superseded
//  ones close, so the receive loops re-check and resume exactly as they
//  do for splice-around — and the newcomer's loops start. Envelopes
//  that were queued on the two replaced link pairs died with them;
//  SuspectOrbit on every live node re-admits them within one resend
//  timeout, the same recovery contract failover relies on.
//
//  Phase B — rebalancing (NOT under failMu, so a concurrent death still
//  fails over; per-column locks serialize against UpdateColumn and
//  promote): the newcomer is streamed its fair share of fragments
//  through the wire codec, most-loaded donors first. Each migration
//  installs the joiner's store copy and a fresh replica chain at the
//  catalog version *before* flipping the ownership catalog — the
//  replica-before-catalog ordering PR 7 established — so a migrated
//  fragment is provably never stale: under the column lock no update
//  can advance the version, and a failover of either side after the
//  flip finds replicas at exactly the version the catalog reports.
//
// Fault model: killing the joiner mid-transfer strands at most the
// fragments already migrated, every one of which has a live replica
// chain for failover to promote; killing a donor mid-transfer leaves
// its unmigrated fragments to ordinary failover; dropped or delayed
// join traffic (Config.JoinFaults) skips fragments, which simply stay
// at their donors. In every case the catalog converges to one live
// owner per fragment.

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/rdma"
)

// JoinReport describes one completed admission.
type JoinReport struct {
	Node        int   `json:"node"`         // ring position assigned to the newcomer
	Sponsor     int   `json:"sponsor"`      // live node whose view seeded the handshake
	Pred        int   `json:"pred"`         // ring predecessor spliced to the newcomer
	Succ        int   `json:"succ"`         // ring successor spliced to the newcomer
	ViewVersion int64 `json:"view_version"` // newcomer's membership view version after admission
	Share       int   `json:"share"`        // fragments planned toward the newcomer
	Migrated    int   `json:"migrated"`     // fragments actually re-owned
	Skipped     int   `json:"skipped"`      // planned migrations skipped (fault, death, ownership moved)
	SpliceMs    int64 `json:"splice_ms"`    // phase A wall time
	TransferMs  int64 `json:"transfer_ms"`  // phase B wall time
	TotalMs     int64 `json:"total_ms"`
}

// Join admits one new node into the running ring: handshake, view
// growth, link splice-in, loop start (phase A), then live rebalancing
// of the newcomer's fragment share (phase B). It returns once the
// newcomer serves its share. The ring keeps answering queries
// throughout; a concurrent death fails over normally. Requires
// Config.Replicas > 0 — the membership subsystem is the join's
// substrate, and Replicas=0 keeps the fixed-size ring byte-identical.
func (r *Ring) Join() (JoinReport, error) {
	start := time.Now()
	if r.cfg.Replicas <= 0 {
		return JoinReport{}, fmt.Errorf("live: join requires Replicas > 0 (elastic membership disabled)")
	}
	newNode, rep, err := r.admit()
	if err != nil {
		return rep, err
	}
	rep.SpliceMs = time.Since(start).Milliseconds()

	transferStart := time.Now()
	err = r.rebalance(newNode, &rep)
	rep.TransferMs = time.Since(transferStart).Milliseconds()
	rep.TotalMs = time.Since(start).Milliseconds()
	return rep, err
}

// admit runs phase A under failMu: no death can be declared while the
// ring is being re-shaped, and no two admissions interleave.
func (r *Ring) admit() (*Node, JoinReport, error) {
	r.failMu.Lock()
	defer r.failMu.Unlock()

	nodes := r.nodeList()
	oldN := len(nodes)
	newID := oldN // ring positions are stable slice indices; the newcomer extends the slice
	var rep JoinReport
	rep.Node = newID

	if bs := beatMsgSize(oldN + 1); bs > r.maxMsgBytes {
		return nil, rep, fmt.Errorf("live: grown beat message (%d bytes) exceeds ring message limit %d", bs, r.maxMsgBytes)
	}

	// The sponsor is the first live node — in a real deployment the
	// newcomer dials any address it knows; here "dialing" is reading the
	// sponsor's versioned view as the handshake seed.
	sponsor := -1
	for i := 0; i < oldN; i++ {
		if !r.isDead(core.NodeID(i)) {
			sponsor = i
			break
		}
	}
	if sponsor < 0 {
		return nil, rep, fmt.Errorf("live: no live node to sponsor a join")
	}
	rep.Sponsor = sponsor

	// The newcomer sits between the highest live position and the lowest
	// (ring order is index order): its predecessor feeds it data, its
	// successor receives from it.
	pred, succ := -1, -1
	for k := oldN - 1; k >= 0; k-- {
		if !r.isDead(core.NodeID(k)) {
			pred = k
			break
		}
	}
	for k := 0; k < oldN; k++ {
		if !r.isDead(core.NodeID(k)) {
			succ = k
			break
		}
	}
	rep.Pred, rep.Succ = pred, succ
	predNode, succNode := nodes[pred], nodes[succ]

	// All fallible work first: four fresh link pairs, eight messengers.
	// Nothing ring-visible mutates until they all exist.
	type pair struct{ a, b *rdma.Messenger }
	mkData := func() (pair, error) {
		qa, qb, reason, err := newQueuePair(r.cfg.Transport, r.backend, r.maxMsgBytes)
		if err != nil {
			return pair{}, err
		}
		r.noteBackendFallback(reason)
		a, err := rdma.NewMessengerDepth(qa, r.maxMsgBytes, r.dataDepth)
		if err != nil {
			return pair{}, err
		}
		b, err := rdma.NewMessengerDepth(qb, r.maxMsgBytes, r.dataDepth)
		if err != nil {
			a.Close()
			return pair{}, err
		}
		return pair{a, b}, nil
	}
	mkReq := func() (pair, error) {
		qa, qb, _, err := newQueuePair(r.cfg.Transport, rdma.BackendTCP, 1<<12)
		if err != nil {
			return pair{}, err
		}
		a, err := rdma.NewMessenger(qa, 1<<12)
		if err != nil {
			return pair{}, err
		}
		b, err := rdma.NewMessenger(qb, 1<<12)
		if err != nil {
			a.Close()
			return pair{}, err
		}
		return pair{a, b}, nil
	}
	var built []pair
	fail := func(err error) (*Node, JoinReport, error) {
		for _, p := range built {
			p.a.Close()
			p.b.Close()
		}
		return nil, rep, err
	}
	dataIn, err := mkData() // pred -> newcomer
	if err != nil {
		return fail(err)
	}
	built = append(built, dataIn)
	dataOut, err := mkData() // newcomer -> succ
	if err != nil {
		return fail(err)
	}
	built = append(built, dataOut)
	reqIn, err := mkReq() // succ -> newcomer
	if err != nil {
		return fail(err)
	}
	built = append(built, reqIn)
	reqOut, err := mkReq() // newcomer -> pred
	if err != nil {
		return fail(err)
	}

	// Handshake: grow the sponsor's view first, then seed the newcomer
	// from it — the seed already contains the newcomer's own position,
	// so the very first beat it sends gossips the grown ring.
	sponsorNode := nodes[sponsor]
	sponsorNode.memb.Grow(oldN + 1)
	seed := sponsorNode.memb.View()

	hbCfg := r.cfg.Heartbeat.WithDefaults()
	if r.cfg.router != nil {
		hbCfg.Ring = r.id.String()
	}
	node := &Node{
		ring:       r,
		id:         core.NodeID(newID),
		cfg:        r.cfg,
		store:      map[core.BATID]*bat.BAT{},
		transit:    map[core.BATID]*bat.BAT{},
		transitVer: map[core.BATID]int{},
		cached:     map[core.BATID]*cachedBAT{},
		waiters:    map[waitKey]chan delivered{},
		errs:       map[core.QueryID]chan error{},
		wireCache:  map[core.BATID]*wireEntry{},
		versions:   map[core.BATID]int{},
		schema:     sponsorNode.schema,
		start:      time.Now(),
		closed:     make(chan struct{}),
	}
	if r.cfg.CacheBytes > 0 {
		node.hot = newHotCache(r.cfg.CacheBytes, r.cfg.CacheMode, r.cfg.CacheDecay)
	}
	if r.cfg.HopBatchBytes > 0 {
		node.hop = newHopScheduler(r.cfg.HopBatchBytes, r.cfg.HopBatchLinger)
	}
	node.replicas = map[core.BATID]*replicaFrag{}
	node.memb = membership.NewDetector(newID, oldN+1, pred, hbCfg)
	node.memb.Adopt(seed)
	node.rt = core.New(node.id, (*liveEnv)(node), r.cfg.Core)
	rep.ViewVersion = node.memb.View().Version

	// Authoritative view growth on every live node, mirroring failover's
	// MarkDead broadcast; beats carrying the wider view bring any
	// straggler along (membership.OnBeat grows on longer remotes).
	for _, s := range nodes {
		if s.memb != nil && !r.isDead(s.id) {
			s.memb.Grow(oldN + 1)
		}
	}

	// Splice in: install the newcomer's links, then close the superseded
	// pred->succ pair. Receive loops whose Recv fails re-check the
	// current link pointer and resume — identical to splice-around.
	node.dataIn = dataIn.b
	node.dataOut = dataOut.a
	node.reqIn = reqIn.b
	node.reqOut = reqOut.a
	predNode.swapDataOut(dataIn.a).Close()
	succNode.swapDataIn(dataOut.b).Close()
	succNode.swapReqOut(reqIn.a).Close()
	predNode.swapReqIn(reqOut.b).Close()
	// The successor now times out the newcomer; the newcomer was built
	// monitoring pred from the start.
	succNode.memb.SetPredecessor(newID)

	// Publish the grown node list before the loops start, so everything
	// the newcomer's goroutines read (nextAlive scans, stats fan-outs)
	// already sees the new size.
	grown := make([]*Node, oldN, oldN+1)
	copy(grown, nodes)
	grown = append(grown, node)
	r.nodes.Store(&grown)

	node.startLoops()
	atomic.AddInt64(&r.joins, 1)

	// Envelopes queued on the two closed link pairs are gone, and their
	// owners' books still say "circulating". Same recovery as failover:
	// every live node suspects its orbiting fragments, and outstanding
	// requests re-admit them within one resend timeout.
	for _, s := range grown {
		if s == node || r.isDead(s.id) {
			continue
		}
		s.mu.Lock()
		s.rt.SuspectOrbit()
		s.mu.Unlock()
	}
	return node, rep, nil
}

// rebalance runs phase B: plan the newcomer's fair share from the
// most-loaded live donors and migrate fragment by fragment, column by
// column under the column lock. Planned migrations that can no longer
// proceed (fault-dropped, donor dead, ownership moved) are skipped —
// the fragment stays where the catalog says it is. A joiner declared
// dead aborts the remainder; its already-migrated fragments have live
// replica chains for failover to promote.
func (r *Ring) rebalance(j *Node, rep *JoinReport) error {
	// Fragment census per live owner.
	r.memMu.RLock()
	loads := map[core.NodeID]int{}
	donorFrags := map[core.NodeID][]core.BATID{}
	total := 0
	live := 1 // the joiner
	for _, n := range r.nodeList() {
		if n != j && !r.deadNodes[n.id] {
			live++
		}
	}
	for id, owner := range r.fragOwner {
		if r.deadNodes[owner] || owner == j.id {
			continue
		}
		loads[owner]++
		donorFrags[owner] = append(donorFrags[owner], id)
		total++
	}
	r.memMu.RUnlock()

	target := total / live
	rep.Share = target
	if target == 0 {
		return nil
	}
	for _, ids := range donorFrags {
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	}

	// Plan: repeatedly draft one fragment from the currently most-loaded
	// donor (lowest id breaks ties — deterministic plans make fault
	// tests reproducible).
	type migration struct {
		id    core.BATID
		donor core.NodeID
	}
	taken := map[core.NodeID]int{}
	plan := make([]migration, 0, target)
	for len(plan) < target {
		best := core.NodeID(-1)
		bestLoad := 0
		for owner, load := range loads {
			remaining := load - taken[owner]
			if remaining > bestLoad || (remaining == bestLoad && best >= 0 && owner < best) {
				if remaining > 0 {
					best, bestLoad = owner, remaining
				}
			}
		}
		if best < 0 {
			break
		}
		plan = append(plan, migration{donorFrags[best][taken[best]], best})
		taken[best]++
	}

	// Group by column so each column's migrations hold its update lock
	// exactly once, serialized against UpdateColumn and promote.
	r.idsMu.RLock()
	byCol := map[string][]migration{}
	for _, m := range plan {
		byCol[r.fragCol[m.id]] = append(byCol[r.fragCol[m.id]], m)
	}
	r.idsMu.RUnlock()
	names := make([]string, 0, len(byCol))
	for name := range byCol {
		names = append(names, name)
	}
	sort.Strings(names)

	dead := false
	for _, name := range names {
		mu := r.columnLock(name)
		mu.Lock()
		for _, m := range byCol[name] {
			if r.isDead(j.id) {
				dead = true
				break
			}
			if r.migrateFrag(j, m.donor, m.id) {
				rep.Migrated++
			} else {
				rep.Skipped++
			}
		}
		mu.Unlock()
		if dead {
			break
		}
	}
	if dead || r.isDead(j.id) {
		// The joiner died mid-transfer. Failover's own promotion pass may
		// have scanned the catalog before the last migrations flipped it,
		// so sweep once more: every fragment the dead joiner holds is
		// re-owned from the replica chain the migration installed at the
		// catalog version (promoteFrag re-checks ownership per fragment —
		// re-running promotion is idempotent).
		r.promote(j.id)
		return fmt.Errorf("live: joiner %d declared dead mid-transfer after %d migrations", j.id, rep.Migrated)
	}
	return nil
}

// migrateFrag moves one fragment from donor to the joiner. Called with
// the fragment's column lock held (no UpdateColumn, no promote) and no
// node mu held. Ordering inside: the joiner's store and the fresh
// replica chain are installed at the catalog version inside the
// node-locked critical section *before* the ownership catalog flips —
// so at every instant the catalog's owner has catalog-current bytes,
// and a failover on either side of the flip promotes correct data.
func (r *Ring) migrateFrag(j *Node, donorID core.NodeID, id core.BATID) bool {
	r.memMu.RLock()
	ok := !r.deadNodes[donorID] && !r.deadNodes[j.id] && r.fragOwner[id] == donorID
	oldChain := append([]core.NodeID(nil), r.fragReplicas[id]...)
	r.memMu.RUnlock()
	if !ok {
		return false
	}
	donor := r.node(int(donorID))

	donor.mu.Lock()
	b := donor.store[id]
	ver := donor.versions[id]
	donor.mu.Unlock()
	if b == nil {
		return false
	}

	// Stream the fragment through the wire codec — the same bytes a ring
	// hop would carry — and consult the fault injector with their size:
	// a drop loses this donation (the fragment stays at the donor), a
	// delay stretches the transfer window, exactly the failure surface a
	// network join would have.
	raw := bat.AppendMarshal(nil, b)
	if f := r.cfg.JoinFaults; f != nil {
		delay, drop := f.Apply(dataHdrSize + len(raw))
		if delay > 0 {
			time.Sleep(delay)
		}
		if drop {
			return false
		}
		// The delay window is where mid-transfer kills land; re-check
		// both ends before installing anything.
		r.memMu.RLock()
		ok = !r.deadNodes[donorID] && !r.deadNodes[j.id] && r.fragOwner[id] == donorID
		r.memMu.RUnlock()
		if !ok {
			return false
		}
	}
	nb, err := bat.UnmarshalView(raw)
	if err != nil {
		return false
	}

	// Fresh replica chain: the next Replicas live ring successors of the
	// joiner (the donor may legitimately be one of them).
	size := r.Size()
	newChain := make([]core.NodeID, 0, r.cfg.Replicas)
	for k := 1; k < size && len(newChain) < r.cfg.Replicas; k++ {
		cand := core.NodeID((int(j.id) + k) % size)
		if cand == j.id || r.isDead(cand) {
			continue
		}
		newChain = append(newChain, cand)
	}

	// Ordered multi-node critical section, the UpdateColumn discipline:
	// donor, joiner, and every old or new replica holder, locked in id
	// order (no other code path holds two node locks unordered).
	lockSet := map[core.NodeID]*Node{donorID: donor, j.id: j}
	for _, nid := range newChain {
		lockSet[nid] = r.node(int(nid))
	}
	for _, nid := range oldChain {
		if !r.isDead(nid) {
			lockSet[nid] = r.node(int(nid))
		}
	}
	order := make([]*Node, 0, len(lockSet))
	for _, n := range lockSet {
		order = append(order, n)
	}
	sort.Slice(order, func(a, b int) bool { return order[a].id < order[b].id })
	for _, n := range order {
		n.mu.Lock()
	}
	if !donor.rt.Owns(id) || donor.versions[id] != ver {
		// The fragment moved or re-versioned since the unlocked read —
		// only possible through a path that held this column's lock
		// before us. Whatever owns it now is current; leave it be.
		for _, n := range order {
			n.mu.Unlock()
		}
		return false
	}
	// Interest travels with the fragment: the donor's replica holders
	// recorded the circulating LOI, and the joiner re-admits at that
	// heat instead of stone cold.
	loi := 0.0
	for _, n := range order {
		if rp := n.replicas[id]; rp != nil && rp.loi > loi {
			loi = rp.loi
		}
	}
	// Joiner's store copy first. PromoteOwned rather than AdoptOwned:
	// the joiner may already have queries blocked on this fragment (it
	// serves clients from the instant its loops start), and PromoteOwned
	// delivers those pins from the fresh store copy immediately — while
	// entering S1 cold, so circulation restarts on actual interest.
	j.store[id] = nb
	j.versions[id] = ver
	j.dropWireEntry(id)
	if j.hot != nil {
		j.hot.drop(id) // the owner serves its store, never a cached copy
	}
	j.rt.PromoteOwned(id, nb.Bytes(), loi)
	// ...then the replica chain at the same (catalog-current) version...
	for _, nid := range newChain {
		lockSet[nid].replicas[id] = &replicaFrag{b: nb, ver: ver, loi: loi}
	}
	// ...then the donor forgets the fragment. Readers that pinned the
	// old payload continue on it — fragments are immutable per version.
	donor.rt.RemoveOwned(id)
	delete(donor.store, id)
	delete(donor.versions, id)
	donor.dropWireEntry(id)
	for _, nid := range oldChain {
		if n, held := lockSet[nid]; held {
			if !contains(newChain, nid) {
				delete(n.replicas, id)
			}
		}
	}
	for _, n := range order {
		n.mu.Unlock()
	}

	// The catalog flip is last: from here on requests are absorbed by
	// the joiner, and a failover of the donor skips this fragment
	// (promoteFrag re-checks ownership under the column lock).
	r.memMu.Lock()
	r.fragOwner[id] = j.id
	r.fragReplicas[id] = newChain
	r.memMu.Unlock()
	atomic.AddInt64(&r.migrations, 1)
	return true
}

func contains(ids []core.NodeID, id core.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Joins reports how many nodes have been admitted at runtime.
func (r *Ring) Joins() int64 { return atomic.LoadInt64(&r.joins) }

// Migrations reports how many fragments have been re-owned toward
// joiners.
func (r *Ring) Migrations() int64 { return atomic.LoadInt64(&r.migrations) }
