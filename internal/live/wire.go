package live

// This file is the ring's message envelope: a flat, fixed-size binary
// header in front of each BAT payload or request, replacing the old gob
// wireMsg. The header size is exact and constant, so ring message
// limits and RDMA memory regions are sized precisely (the old
// "maxBytes += 1<<16 // gob slack" fudge is gone) — and it is 64 bytes,
// matching core.BATHeaderSize, so the simulator's wire accounting and
// the live ring now agree byte-for-byte.
//
// Data envelope (little-endian, payload 8-aligned for bat's zero-copy
// decode). Envelope version 2 carries the fragment's catalog version
// alongside the payload: the hot-set cache labels every delivery with
// the version the owner installed it under, which is what makes
// version-validated node-local reads provably never stale. Owner is a
// ring position and fits u32, which is where the four bytes came from.
//
//	[0] 'D'  [1] 'R'  [2] version  [3] kind (1=data)
//	[4:8]   u32 payload length
//	[8:12]  u32 Owner  [12:16] u32 fragment version
//	[16:24] BAT     [24:32] Size
//	[32:40] LOI (float64 bits)
//	[40:48] Copies   [48:56] Hops    [56:64] Cycles
//	[64:]   payload (bat.AppendMarshal bytes)
//
// Request envelope:
//
//	[0] 'D'  [1] 'R'  [2] version  [3] kind (2=request)
//	[4:8]   reserved
//	[8:16]  Origin   [16:24] BAT

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
)

const (
	envMagic0  = 'D'
	envMagic1  = 'R'
	envVersion = 2

	envKindData = 1
	envKindReq  = 2

	// dataHdrSize is the exact envelope overhead of a data message.
	dataHdrSize = 64
	// reqMsgSize is the exact size of a request message.
	reqMsgSize = 24
)

var errEnvelope = errors.New("live: bad ring envelope")

func putEnvHeader(dst []byte, kind byte) {
	dst[0], dst[1], dst[2], dst[3] = envMagic0, envMagic1, envVersion, kind
}

func checkEnvHeader(data []byte, kind byte, minLen int) error {
	if len(data) < minLen {
		return fmt.Errorf("%w: %d bytes, need %d", errEnvelope, len(data), minLen)
	}
	if data[0] != envMagic0 || data[1] != envMagic1 {
		return fmt.Errorf("%w: bad magic %q", errEnvelope, data[:2])
	}
	if data[2] != envVersion {
		return fmt.Errorf("%w: version %d (want %d)", errEnvelope, data[2], envVersion)
	}
	if data[3] != kind {
		return fmt.Errorf("%w: kind %d (want %d)", errEnvelope, data[3], kind)
	}
	return nil
}

// encodeDataHdr writes the envelope for m (a fragment at version ver)
// into dst[:dataHdrSize].
func encodeDataHdr(dst []byte, m core.BATMsg, ver, payloadLen int) {
	// The length field is u32; wrapping would make the neighbour drop
	// the fragment as corrupt with no error anywhere. Fail at the
	// sender instead.
	if uint64(payloadLen) > math.MaxUint32 {
		panic(fmt.Sprintf("live: %d-byte payload exceeds the 4 GiB envelope limit", payloadLen))
	}
	putEnvHeader(dst, envKindData)
	le := binary.LittleEndian
	le.PutUint32(dst[4:], uint32(payloadLen))
	le.PutUint32(dst[8:], uint32(m.Owner))
	le.PutUint32(dst[12:], uint32(ver))
	le.PutUint64(dst[16:], uint64(m.BAT))
	le.PutUint64(dst[24:], uint64(m.Size))
	le.PutUint64(dst[32:], math.Float64bits(m.LOI))
	le.PutUint64(dst[40:], uint64(m.Copies))
	le.PutUint64(dst[48:], uint64(m.Hops))
	le.PutUint64(dst[56:], uint64(m.Cycles))
}

// decodeDataMsg parses a data envelope, returning the header, the
// fragment version, and the payload as a view over data (zero-copy; the
// payload stays aliased to the receive buffer, which bat.UnmarshalView
// relies on).
func decodeDataMsg(data []byte) (core.BATMsg, int, []byte, error) {
	if err := checkEnvHeader(data, envKindData, dataHdrSize); err != nil {
		return core.BATMsg{}, 0, nil, err
	}
	le := binary.LittleEndian
	payloadLen := int(le.Uint32(data[4:]))
	if payloadLen != len(data)-dataHdrSize {
		return core.BATMsg{}, 0, nil, fmt.Errorf("%w: payload length %d, have %d bytes",
			errEnvelope, payloadLen, len(data)-dataHdrSize)
	}
	m := core.BATMsg{
		Owner:  core.NodeID(le.Uint32(data[8:])),
		BAT:    core.BATID(le.Uint64(data[16:])),
		Size:   int(le.Uint64(data[24:])),
		LOI:    math.Float64frombits(le.Uint64(data[32:])),
		Copies: int(le.Uint64(data[40:])),
		Hops:   int(le.Uint64(data[48:])),
		Cycles: int(le.Uint64(data[56:])),
	}
	return m, int(le.Uint32(data[12:])), data[dataHdrSize:], nil
}

// encodeReqMsg writes the envelope for m into dst[:reqMsgSize].
func encodeReqMsg(dst []byte, m core.RequestMsg) {
	putEnvHeader(dst, envKindReq)
	le := binary.LittleEndian
	le.PutUint32(dst[4:], 0)
	le.PutUint64(dst[8:], uint64(m.Origin))
	le.PutUint64(dst[16:], uint64(m.BAT))
}

// decodeReqMsg parses a request envelope.
func decodeReqMsg(data []byte) (core.RequestMsg, error) {
	if err := checkEnvHeader(data, envKindReq, reqMsgSize); err != nil {
		return core.RequestMsg{}, err
	}
	le := binary.LittleEndian
	return core.RequestMsg{
		Origin: core.NodeID(le.Uint64(data[8:])),
		BAT:    core.BATID(le.Uint64(data[16:])),
	}, nil
}
