package live

// This file is the ring's message envelope: a flat, fixed-size binary
// header in front of each BAT payload or request, replacing the old gob
// wireMsg. The header size is exact and constant, so ring message
// limits and RDMA memory regions are sized precisely (the old
// "maxBytes += 1<<16 // gob slack" fudge is gone) — and it is 64 bytes,
// matching core.BATHeaderSize, so the simulator's wire accounting and
// the live ring now agree byte-for-byte.
//
// Data envelope (little-endian, payload 8-aligned for bat's zero-copy
// decode). Envelope version 2 carries the fragment's catalog version
// alongside the payload: the hot-set cache labels every delivery with
// the version the owner installed it under, which is what makes
// version-validated node-local reads provably never stale. Owner is a
// ring position and fits u32, which is where the four bytes came from.
//
//	[0] 'D'  [1] 'R'  [2] version  [3] kind (1=data)
//	[4:8]   u32 payload length
//	[8:12]  u32 Owner  [12:16] u32 fragment version
//	[16:24] BAT     [24:32] Size
//	[32:40] LOI (float64 bits)
//	[40:48] Copies   [48:56] Hops    [56:64] Cycles
//	[64:]   payload (bat.AppendMarshal bytes)
//
// Request envelope:
//
//	[0] 'D'  [1] 'R'  [2] version  [3] kind (2=request)
//	[4:8]   reserved
//	[8:16]  Origin   [16:24] BAT

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/membership"
)

const (
	envMagic0  = 'D'
	envMagic1  = 'R'
	envVersion = 2

	envKindData = 1
	envKindReq  = 2

	// dataHdrSize is the exact envelope overhead of a data message.
	dataHdrSize = 64
	// reqMsgSize is the exact size of a request message.
	reqMsgSize = 24

	// Batch envelope (version 3, kind 3): several data messages gathered
	// into one hop message so a busy link pays one send per *batch*
	// rather than per fragment. Layout:
	//
	//	[0] 'D'  [1] 'R'  [2] 3 (version)  [3] 3 (kind)
	//	[4:8]   u32 entry count
	//	count × 64-byte entry headers — each a complete v2 data header
	//	count × payloads, each zero-padded to 8 bytes
	//
	// Entry headers are full v2 data envelopes (magic included) so each
	// entry validates independently and unbatching reproduces the exact
	// v2 single-message bytes. The 8-byte batch header plus 64-byte
	// entries keep every payload 8-aligned relative to the message, which
	// bat.UnmarshalView's zero-copy decode requires.
	envVersionBatch = 3
	envKindBatch    = 3
	batchHdrSize    = 8

	// maxHopBatchFrags bounds the entries in one batch envelope; the
	// receiver rejects anything larger, so a corrupt count can't drive a
	// huge entry-table walk.
	maxHopBatchFrags = 64
)

var errEnvelope = errors.New("live: bad ring envelope")

func putEnvHeader(dst []byte, kind byte) {
	dst[0], dst[1], dst[2], dst[3] = envMagic0, envMagic1, envVersion, kind
}

func checkEnvHeader(data []byte, kind byte, minLen int) error {
	if len(data) < minLen {
		return fmt.Errorf("%w: %d bytes, need %d", errEnvelope, len(data), minLen)
	}
	if data[0] != envMagic0 || data[1] != envMagic1 {
		return fmt.Errorf("%w: bad magic %q", errEnvelope, data[:2])
	}
	if data[2] != envVersion {
		return fmt.Errorf("%w: version %d (want %d)", errEnvelope, data[2], envVersion)
	}
	if data[3] != kind {
		return fmt.Errorf("%w: kind %d (want %d)", errEnvelope, data[3], kind)
	}
	return nil
}

// encodeDataHdr writes the envelope for m (a fragment at version ver)
// into dst[:dataHdrSize].
func encodeDataHdr(dst []byte, m core.BATMsg, ver, payloadLen int) {
	// The length field is u32; wrapping would make the neighbour drop
	// the fragment as corrupt with no error anywhere. Fail at the
	// sender instead.
	if uint64(payloadLen) > math.MaxUint32 {
		panic(fmt.Sprintf("live: %d-byte payload exceeds the 4 GiB envelope limit", payloadLen))
	}
	putEnvHeader(dst, envKindData)
	le := binary.LittleEndian
	le.PutUint32(dst[4:], uint32(payloadLen))
	le.PutUint32(dst[8:], uint32(m.Owner))
	le.PutUint32(dst[12:], uint32(ver))
	le.PutUint64(dst[16:], uint64(m.BAT))
	le.PutUint64(dst[24:], uint64(m.Size))
	le.PutUint64(dst[32:], math.Float64bits(m.LOI))
	le.PutUint64(dst[40:], uint64(m.Copies))
	le.PutUint64(dst[48:], uint64(m.Hops))
	le.PutUint64(dst[56:], uint64(m.Cycles))
}

// decodeDataHdr extracts the message fields of a validated 64-byte data
// header: the BAT header, the fragment version, and the payload length
// the header claims.
func decodeDataHdr(h []byte) (core.BATMsg, int, int) {
	le := binary.LittleEndian
	m := core.BATMsg{
		Owner:  core.NodeID(le.Uint32(h[8:])),
		BAT:    core.BATID(le.Uint64(h[16:])),
		Size:   int(le.Uint64(h[24:])),
		LOI:    math.Float64frombits(le.Uint64(h[32:])),
		Copies: int(le.Uint64(h[40:])),
		Hops:   int(le.Uint64(h[48:])),
		Cycles: int(le.Uint64(h[56:])),
	}
	return m, int(le.Uint32(h[12:])), int(le.Uint32(h[4:]))
}

// decodeDataMsg parses a data envelope, returning the header, the
// fragment version, and the payload as a view over data (zero-copy; the
// payload stays aliased to the receive buffer, which bat.UnmarshalView
// relies on).
func decodeDataMsg(data []byte) (core.BATMsg, int, []byte, error) {
	if err := checkEnvHeader(data, envKindData, dataHdrSize); err != nil {
		return core.BATMsg{}, 0, nil, err
	}
	m, ver, payloadLen := decodeDataHdr(data)
	if payloadLen != len(data)-dataHdrSize {
		return core.BATMsg{}, 0, nil, fmt.Errorf("%w: payload length %d, have %d bytes",
			errEnvelope, payloadLen, len(data)-dataHdrSize)
	}
	return m, ver, data[dataHdrSize:], nil
}

func pad8(n int) int { return (n + 7) &^ 7 }

// batchEntry is one fragment inside a batch envelope: exactly the
// triple a v2 data message carries.
type batchEntry struct {
	m       core.BATMsg
	ver     int
	payload []byte
}

// batchEntryWire is the wire cost of one batch entry: its header plus
// the payload padded to 8 bytes.
func batchEntryWire(payloadLen int) int { return dataHdrSize + pad8(payloadLen) }

// isBatchMsg reports whether data starts like a v3 batch envelope (the
// receive loop's dispatch test; full validation happens in
// decodeBatchMsg).
func isBatchMsg(data []byte) bool {
	return len(data) >= 4 && data[0] == envMagic0 && data[1] == envMagic1 &&
		data[2] == envVersionBatch && data[3] == envKindBatch
}

// encodeBatch appends the v3 batch envelope for entries to dst. The hop
// scheduler normally assembles the same bytes as a vectored send (the
// header block and the cached payloads go to the wire without being
// gathered first); this contiguous form is the reference encoding the
// framing tests hold that path to.
func encodeBatch(dst []byte, entries []batchEntry) []byte {
	dst = append(dst, envMagic0, envMagic1, envVersionBatch, envKindBatch)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(entries)))
	dst = append(dst, b4[:]...)
	var hdr [dataHdrSize]byte
	for _, e := range entries {
		encodeDataHdr(hdr[:], e.m, e.ver, len(e.payload))
		dst = append(dst, hdr[:]...)
	}
	var zeros [8]byte
	for _, e := range entries {
		dst = append(dst, e.payload...)
		dst = append(dst, zeros[:pad8(len(e.payload))-len(e.payload)]...)
	}
	return dst
}

// decodeBatchMsg parses a v3 batch envelope. Every entry header is
// validated as a complete v2 data header, payload bounds are checked
// entry by entry, and the message must be consumed exactly — trailing
// bytes, a truncated entry table, or an overflowing count are all
// rejected rather than partially decoded. Payloads are zero-copy views
// over data.
func decodeBatchMsg(data []byte) ([]batchEntry, error) {
	if len(data) < batchHdrSize {
		return nil, fmt.Errorf("%w: %d bytes, need %d", errEnvelope, len(data), batchHdrSize)
	}
	if data[0] != envMagic0 || data[1] != envMagic1 {
		return nil, fmt.Errorf("%w: bad magic %q", errEnvelope, data[:2])
	}
	if data[2] != envVersionBatch {
		return nil, fmt.Errorf("%w: version %d (want %d)", errEnvelope, data[2], envVersionBatch)
	}
	if data[3] != envKindBatch {
		return nil, fmt.Errorf("%w: kind %d (want %d)", errEnvelope, data[3], envKindBatch)
	}
	count := int64(binary.LittleEndian.Uint32(data[4:]))
	if count < 1 || count > maxHopBatchFrags {
		return nil, fmt.Errorf("%w: batch count %d (want 1..%d)", errEnvelope, count, maxHopBatchFrags)
	}
	// int64 math: a hostile count can't overflow the table-end offset.
	tableEnd := int64(batchHdrSize) + count*dataHdrSize
	if tableEnd > int64(len(data)) {
		return nil, fmt.Errorf("%w: truncated entry table (%d entries, %d bytes)",
			errEnvelope, count, len(data))
	}
	entries := make([]batchEntry, count)
	off := int(tableEnd)
	for i := range entries {
		h := data[batchHdrSize+i*dataHdrSize:][:dataHdrSize]
		if err := checkEnvHeader(h, envKindData, dataHdrSize); err != nil {
			return nil, fmt.Errorf("batch entry %d: %w", i, err)
		}
		m, ver, payloadLen := decodeDataHdr(h)
		if payloadLen > len(data)-off {
			return nil, fmt.Errorf("%w: batch entry %d payload of %d bytes exceeds message",
				errEnvelope, i, payloadLen)
		}
		entries[i] = batchEntry{m: m, ver: ver, payload: data[off : off+payloadLen]}
		off += pad8(payloadLen)
		if off > len(data) {
			return nil, fmt.Errorf("%w: batch entry %d padding runs past message end", errEnvelope, i)
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch entries", errEnvelope, len(data)-off)
	}
	return entries, nil
}

// encodeReqMsg writes the envelope for m into dst[:reqMsgSize].
func encodeReqMsg(dst []byte, m core.RequestMsg) {
	putEnvHeader(dst, envKindReq)
	le := binary.LittleEndian
	le.PutUint32(dst[4:], 0)
	le.PutUint64(dst[8:], uint64(m.Origin))
	le.PutUint64(dst[16:], uint64(m.BAT))
}

// decodeReqMsg parses a request envelope.
func decodeReqMsg(data []byte) (core.RequestMsg, error) {
	if err := checkEnvHeader(data, envKindReq, reqMsgSize); err != nil {
		return core.RequestMsg{}, err
	}
	le := binary.LittleEndian
	return core.RequestMsg{
		Origin: core.NodeID(le.Uint64(data[8:])),
		BAT:    core.BATID(le.Uint64(data[16:])),
	}, nil
}

// Beat envelope (version 2, kind 4): the membership heartbeat pulse,
// multiplexed onto the data link so liveness rides the same path as the
// payloads it vouches for (a link that can't carry beats can't carry
// data either). The pulse gossips the sender's whole membership view —
// one status byte per ring position plus the view version — which is
// what makes detection converge ring-wide in O(ring) hops.
//
//	[0] 'D'  [1] 'R'  [2] 2 (version)  [3] 4 (kind)
//	[4:8]   u32 status count
//	[8:16]  u64 sender ring position
//	[16:24] u64 view version
//	[24:24+count] status bytes (membership.Status)
const (
	envKindBeat = 4
	beatHdrSize = 24

	// maxBeatNodes bounds the status table a beat may carry; the
	// receiver rejects anything larger, so a corrupt count can't drive
	// a huge allocation.
	maxBeatNodes = 1 << 16
)

// beatMsgSize is the exact wire size of a beat over nodes ring members.
func beatMsgSize(nodes int) int { return beatHdrSize + nodes }

// isBeatMsg reports whether data is a beat envelope.
func isBeatMsg(data []byte) bool {
	return len(data) >= beatHdrSize && data[0] == envMagic0 && data[1] == envMagic1 &&
		data[2] == envVersion && data[3] == envKindBeat
}

// encodeBeatMsg writes a beat from ring position from carrying view.
func encodeBeatMsg(dst []byte, from int, view membership.View) int {
	putEnvHeader(dst, envKindBeat)
	le := binary.LittleEndian
	le.PutUint32(dst[4:], uint32(len(view.Status)))
	le.PutUint64(dst[8:], uint64(from))
	le.PutUint64(dst[16:], uint64(view.Version))
	for i, s := range view.Status {
		dst[beatHdrSize+i] = byte(s)
	}
	return beatMsgSize(len(view.Status))
}

// decodeBeatMsg parses a beat envelope.
func decodeBeatMsg(data []byte) (from int, view membership.View, err error) {
	if err := checkEnvHeader(data, envKindBeat, beatHdrSize); err != nil {
		return 0, membership.View{}, err
	}
	le := binary.LittleEndian
	count := int(le.Uint32(data[4:]))
	if count > maxBeatNodes {
		return 0, membership.View{}, fmt.Errorf("%w: beat over %d nodes", errEnvelope, count)
	}
	if len(data) < beatHdrSize+count {
		return 0, membership.View{}, fmt.Errorf("%w: beat truncated (%d of %d status bytes)",
			errEnvelope, len(data)-beatHdrSize, count)
	}
	view.Version = int64(le.Uint64(data[16:]))
	view.Status = make([]membership.Status, count)
	for i := range view.Status {
		view.Status[i] = membership.Status(data[beatHdrSize+i])
	}
	return int(le.Uint64(data[8:])), view, nil
}
