package live

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/netsim"
)

// tierTestConfig is a router sized for unit tests: small rings, a fast
// scanner.
func tierTestConfig() RouterConfig {
	rc := DefaultRouterConfig()
	rc.HotNodes, rc.ColdNodes = 2, 3
	rc.TierScan = 10 * time.Millisecond
	return rc
}

// tierTestColumns builds n single-fragment int columns and their
// checksums.
func tierTestColumns(n, rows int) (map[string]*bat.BAT, map[string]int64) {
	cols := make(map[string]*bat.BAT, n)
	sums := make(map[string]int64, n)
	for k := 0; k < n; k++ {
		name := fmt.Sprintf("t.c%d", k)
		vals := make([]int64, rows)
		var sum int64
		for i := range vals {
			vals[i] = int64(k*rows + i)
			sum += vals[i]
		}
		cols[name] = bat.MakeInts("c", vals)
		sums[name] = sum
	}
	return cols, sums
}

func tierFetchSum(t *testing.T, rtr *Router, name string) int64 {
	t.Helper()
	b, err := rtr.Fetch(name)
	if err != nil {
		t.Fatalf("fetch %s: %v", name, err)
	}
	var sum int64
	for i := 0; i < b.Len(); i++ {
		sum += b.Tail().Int(i)
	}
	return sum
}

// TestRouterSingleTier pins the Tiers<2 gate: the router degenerates to
// one standalone ring with no router hooks installed — the byte-for-
// byte pre-router runtime.
func TestRouterSingleTier(t *testing.T) {
	cols, sums := tierTestColumns(3, 256)
	rc := tierTestConfig()
	rc.Tiers = 1
	rtr, err := NewRouter(cols, nil, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer rtr.Close()

	if rtr.Tiers() != 1 {
		t.Fatalf("tiers: got %d", rtr.Tiers())
	}
	ring := rtr.Tier(0)
	if ring.router != nil {
		t.Fatal("single-tier ring has router hooks installed")
	}
	if ring.cfg.router != nil {
		t.Fatal("single-tier config carries a router")
	}
	for name, want := range sums {
		if got := tierFetchSum(t, rtr, name); got != want {
			t.Fatalf("%s: sum %d, want %d", name, got, want)
		}
	}
	if _, err := rtr.UpdateColumn("t.c0", func(b *bat.BAT) *bat.BAT { return b }); err != nil {
		t.Fatalf("single-tier update: %v", err)
	}
	s := rtr.TierStats()
	if s.Tiers != 1 || s.Promotions != 0 || s.Demotions != 0 {
		t.Fatalf("single-tier stats: %+v", s)
	}
}

// TestTierScanPromoteDemote drives the scanner's threshold path: a
// hammered cold column crosses PromoteHeat and moves to the hot ring;
// once the interest stops its heat decays through DemoteHeat and it
// moves back. The answer must be identical before, between, and after
// the migrations.
func TestTierScanPromoteDemote(t *testing.T) {
	cols, sums := tierTestColumns(3, 256)
	rc := tierTestConfig()
	rc.FlashCrowdHits = 1 << 30 // scan path only
	rc.PromoteHeat = 1.5
	rc.DemoteHeat = 0.3
	rtr, err := NewRouter(cols, nil, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer rtr.Close()

	const name = "t.c0"
	id, ok := rtr.Tier(ColdRing).BATID(name)
	if !ok {
		t.Fatal("no BATID for t.c0")
	}
	if rtr.HomeOf(id) != ColdRing {
		t.Fatal("column not cold-homed at start")
	}

	for i := 0; i < 20; i++ {
		if got := tierFetchSum(t, rtr, name); got != sums[name] {
			t.Fatalf("pre-promotion sum %d, want %d", got, sums[name])
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for rtr.HomeOf(id) != HotRing {
		if time.Now().After(deadline) {
			t.Fatalf("never promoted (heat %.2f)", rtr.heatLevel(id))
		}
		tierFetchSum(t, rtr, name)
		time.Sleep(time.Millisecond)
	}
	if got := tierFetchSum(t, rtr, name); got != sums[name] {
		t.Fatalf("post-promotion sum %d, want %d", got, sums[name])
	}

	// Silence: heat halves every scan until the demotion threshold.
	deadline = time.Now().Add(3 * time.Second)
	for rtr.HomeOf(id) != ColdRing {
		if time.Now().After(deadline) {
			t.Fatalf("never demoted (heat %.2f)", rtr.heatLevel(id))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := tierFetchSum(t, rtr, name); got != sums[name] {
		t.Fatalf("post-demotion sum %d, want %d", got, sums[name])
	}
	s := rtr.TierStats()
	if s.Promotions < 1 || s.Demotions < 1 {
		t.Fatalf("expected scan migrations, got %+v", s)
	}
}

// TestTierFlashPromote exercises the flash-crowd path: FlashCrowdHits
// accesses of a cold column inside one scan window promote it without
// waiting for the scanner's threshold.
func TestTierFlashPromote(t *testing.T) {
	cols, sums := tierTestColumns(3, 256)
	rc := tierTestConfig()
	rc.PromoteHeat = 1e9 // flash path only
	rtr, err := NewRouter(cols, nil, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer rtr.Close()

	const name = "t.c1"
	id, _ := rtr.Tier(ColdRing).BATID(name)
	var wg sync.WaitGroup
	for i := 0; i < rc.FlashCrowdHits; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := tierFetchSum(t, rtr, name); got != sums[name] {
				t.Errorf("burst sum %d, want %d", got, sums[name])
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for rtr.HomeOf(id) != HotRing {
		if time.Now().After(deadline) {
			t.Fatal("flash crowd never promoted")
		}
		time.Sleep(100 * time.Microsecond)
	}
	wg.Wait()
	if got := tierFetchSum(t, rtr, name); got != sums[name] {
		t.Fatalf("post-flash sum %d, want %d", got, sums[name])
	}
	// The counters land after the migration's drain completes — poll.
	var s TierStats
	for deadline = time.Now().Add(2 * time.Second); ; time.Sleep(time.Millisecond) {
		if s = rtr.TierStats(); s.FlashPromotions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no flash promotion recorded: %+v", s)
		}
	}
	if s.LastFlashPromoteMicros <= 0 {
		t.Fatalf("flash latency not recorded: %+v", s)
	}
}

// TestTierMigrationChurnConsistency is the migration property test:
// fragments forced hot↔cold in a tight loop, under concurrent
// UpdateColumn writers and concurrent readers. Every answer must be a
// whole committed version — all rows carry the same generation (no
// mixed-tier merge) and the generation is at least the last one
// committed before the read began (no stale version). Run under -race
// this also proves the install→flip→drain→release ordering publishes
// safely.
func TestTierMigrationChurnConsistency(t *testing.T) {
	const (
		columns = 4
		rows    = 256
		runFor  = 600 * time.Millisecond
	)
	// Uniform generation-0 seed: a reader that legitimately sees the
	// base version under MVCC (its fetch began before the first commit
	// landed) must still pass the all-rows-equal check.
	cols := map[string]*bat.BAT{}
	for k := 0; k < columns; k++ {
		cols[fmt.Sprintf("t.c%d", k)] = bat.MakeInts("c", make([]int64, rows))
	}
	rc := tierTestConfig()
	rc.FlashCrowdHits = 1 << 30
	rc.PromoteHeat = 1e9 // forced flips only (scan demotions may still fire)
	rtr, err := NewRouter(cols, nil, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer rtr.Close()

	names := make([]string, columns)
	ids := make([]core.BATID, columns)
	for k := range names {
		names[k] = fmt.Sprintf("t.c%d", k)
		id, ok := rtr.Tier(ColdRing).BATID(names[k])
		if !ok {
			t.Fatalf("no BATID for %s", names[k])
		}
		ids[k] = id
	}

	var (
		committed [columns]int64
		flips     int64
		failed    atomic.Value // first error string
		wg        sync.WaitGroup
	)
	fail := func(format string, args ...any) {
		failed.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	stop := time.Now().Add(runFor)

	// Writers: one per column, committing generation g as a column of
	// rows identical values.
	for k := 0; k < columns; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var g int64
			for time.Now().Before(stop) && failed.Load() == nil {
				g++
				gen := g
				_, err := rtr.UpdateColumn(names[k], func(*bat.BAT) *bat.BAT {
					vals := make([]int64, rows)
					for i := range vals {
						vals[i] = gen
					}
					return bat.MakeInts("c", vals)
				})
				if err != nil {
					fail("update %s gen %d: %v", names[k], gen, err)
					return
				}
				atomic.StoreInt64(&committed[k], gen)
				time.Sleep(500 * time.Microsecond)
			}
		}(k)
	}

	// Flippers: one per column, forcing the fragment back and forth
	// between the tiers through the real migration path.
	for k := 0; k < columns; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for time.Now().Before(stop) && failed.Load() == nil {
				from := rtr.HomeOf(ids[k])
				to := HotRing
				if from == HotRing {
					to = ColdRing
				}
				if rtr.markMigrating(ids[k]) {
					if rtr.migrateTier(ids[k], from, to) {
						atomic.AddInt64(&flips, 1)
					}
					rtr.unmarkMigrating(ids[k])
				}
				time.Sleep(time.Millisecond)
			}
		}(k)
	}

	// Readers: whole committed versions only, never older than what was
	// committed before the read began.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 1))
			for time.Now().Before(stop) && failed.Load() == nil {
				k := rng.Intn(columns)
				pre := atomic.LoadInt64(&committed[k])
				done := make(chan struct{})
				go func() {
					select {
					case <-done:
					case <-time.After(10 * time.Second):
						var sb strings.Builder
						fmt.Fprintf(&sb, "WATCHDOG fetch %s (id %d) stalled: home=%v pending=%+v\n",
							names[k], ids[k], rtr.HomeOf(ids[k]), rtr.TierStats())
						for _, rid := range []RingID{HotRing, ColdRing} {
							rg := rtr.Tier(rid)
							for _, n := range rg.nodeList() {
								n.mu.Lock()
								owns := n.rt.Owns(ids[k])
								hasReq := n.rt.HasRequest(ids[k])
								_, inStore := n.store[ids[k]]
								_, inTransit := n.transit[ids[k]]
								ver := n.versions[ids[k]]
								n.mu.Unlock()
								fmt.Fprintf(&sb, "  ring=%v node=%d owns=%v req=%v store=%v transit=%v ver=%d\n",
									rid, n.id, owns, hasReq, inStore, inTransit, ver)
							}
						}
						panic(sb.String())
					}
				}()
				b, err := rtr.Fetch(names[k])
				close(done)
				if err != nil {
					fail("fetch %s: %v", names[k], err)
					return
				}
				if b.Len() != rows {
					fail("%s: %d rows, want %d", names[k], b.Len(), rows)
					return
				}
				gen := b.Tail().Int(0)
				for i := 1; i < b.Len(); i++ {
					if b.Tail().Int(i) != gen {
						counts := map[int64]int{}
						for j := 0; j < b.Len(); j++ {
							counts[b.Tail().Int(j)]++
						}
						fail("%s: mixed generations at row %d: %v (home %v, committed %d)",
							names[k], i, counts, rtr.HomeOf(ids[k]), atomic.LoadInt64(&committed[k]))
						return
					}
				}
				if gen < pre {
					fail("%s: stale generation %d, committed %d before read",
						names[k], gen, pre)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	if msg := failed.Load(); msg != nil {
		t.Fatal(msg)
	}
	if atomic.LoadInt64(&flips) == 0 {
		t.Fatal("no forced migrations completed; the property was not exercised")
	}
}

// TestTierKillDuringMigration injects a transfer delay through the
// TierFaults hook and kills the source owner inside the window: the
// migration must abort cleanly (home unchanged), the cold ring's
// failover must recover the fragment from its replica, and a retried
// migration must then succeed with the right bytes.
func TestTierKillDuringMigration(t *testing.T) {
	cols, sums := tierTestColumns(2, 256)
	faults := netsim.NewFaults()
	rc := tierTestConfig()
	rc.FlashCrowdHits = 1 << 30
	rc.PromoteHeat = 1e9
	rc.TierFaults = faults
	rc.Cold.Replicas = 1
	rc.Cold.Heartbeat = fastHeartbeat()
	rtr, err := NewRouter(cols, nil, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer rtr.Close()

	const name = "t.c0"
	cold := rtr.Tier(ColdRing)
	id, _ := cold.BATID(name)
	victim := cold.ownerOf(id)
	if victim == nil {
		t.Fatal("no cold owner")
	}

	// Let heartbeats flow so the detectors have evidence before the
	// kill.
	time.Sleep(100 * time.Millisecond)

	faults.SetDelay(400 * time.Millisecond)
	done := make(chan bool, 1)
	go func() {
		ok := false
		if rtr.markMigrating(id) {
			ok = rtr.migrateTier(id, ColdRing, HotRing)
			rtr.unmarkMigrating(id)
		}
		done <- ok
	}()
	time.Sleep(50 * time.Millisecond) // inside the injected delay
	cold.KillNode(int(victim.id))
	if ok := <-done; ok {
		t.Fatal("migration claimed success with its source killed mid-transfer")
	}
	if rtr.HomeOf(id) != ColdRing {
		t.Fatal("aborted migration flipped the home anyway")
	}

	// Failover re-owns the fragment from its replica; the column must
	// answer again.
	deadline := time.Now().Add(5 * time.Second)
	for cold.UnownedFragments() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("failover never re-owned %d fragments", cold.UnownedFragments())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := tierFetchSum(t, rtr, name); got != sums[name] {
		t.Fatalf("post-failover sum %d, want %d", got, sums[name])
	}

	// With the fault cleared the retried migration lands.
	faults.SetDelay(0)
	promoted := false
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if rtr.markMigrating(id) {
			ok := rtr.migrateTier(id, ColdRing, HotRing)
			rtr.unmarkMigrating(id)
			if ok {
				promoted = true
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !promoted {
		t.Fatal("retried migration never succeeded after failover")
	}
	if rtr.HomeOf(id) != HotRing {
		t.Fatal("retried migration did not flip the home")
	}
	if got := tierFetchSum(t, rtr, name); got != sums[name] {
		t.Fatalf("post-retry sum %d, want %d", got, sums[name])
	}
}
