package live

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/minisql"
	"repro/internal/tpch"
)

func testColumns() (map[string]*bat.BAT, minisql.Schema) {
	cols := map[string]*bat.BAT{
		"t.id":   bat.MakeInts("t.id", []int64{1, 2, 3, 4}),
		"t.name": bat.MakeStrs("t.name", []string{"one", "two", "three", "four"}),
		"c.t_id": bat.MakeInts("c.t_id", []int64{2, 2, 3, 9}),
		"c.val":  bat.MakeInts("c.val", []int64{100, 200, 300, 400}),
	}
	schema := minisql.MapSchema{
		"t": {"id", "name"},
		"c": {"t_id", "val"},
	}
	return cols, schema
}

func newTestRing(t *testing.T, n int) *Ring {
	t.Helper()
	cols, schema := testColumns()
	r, err := NewRing(n, cols, schema, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPaperQueryOnLiveRing(t *testing.T) {
	r := newTestRing(t, 3)
	defer r.Close()
	// The paper's running example, executed on a node that owns none or
	// some of the data — fragments must flow around the ring.
	rs, err := r.Node(1).ExecSQL("select c.t_id from t, c where c.t_id = t.id")
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, row := range rs.Rows() {
		got = append(got, row[0].(int64))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if want := []int64{2, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("result = %v, want %v", got, want)
	}
}

func TestEveryNodeCanExecute(t *testing.T) {
	r := newTestRing(t, 4)
	defer r.Close()
	// A query can be executed at any node in the ring (§1): results
	// must be identical everywhere.
	var want [][]any
	for i := 0; i < r.Size(); i++ {
		rs, err := r.Node(i).ExecSQL("select name from t where id >= 2 order by name")
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if want == nil {
			want = rs.Rows()
			continue
		}
		if !reflect.DeepEqual(rs.Rows(), want) {
			t.Fatalf("node %d result differs: %v vs %v", i, rs.Rows(), want)
		}
	}
}

func TestLiveMatchesLocalExecution(t *testing.T) {
	r := newTestRing(t, 3)
	defer r.Close()
	cols, schema := testColumns()
	queries := []string{
		"select c.t_id from t, c where c.t_id = t.id",
		"select name from t where id >= 2 order by name",
		"select t.name, c.val from t, c where c.t_id = t.id and c.val > 150 order by c.val",
		"select sum(val), count(*) from c",
	}
	for _, q := range queries {
		plan, err := minisql.Compile(q, schema, "sys")
		if err != nil {
			t.Fatal(err)
		}
		local, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), Catalog: catalogOf(cols)}, plan)
		if err != nil {
			t.Fatalf("%s local: %v", q, err)
		}
		liveRes, err := r.Node(2).ExecSQL(q)
		if err != nil {
			t.Fatalf("%s live: %v", q, err)
		}
		if !sameRowMultiset(local.(*mal.ResultSet).Rows(), liveRes.Rows()) {
			t.Fatalf("%s: live result differs\nlocal: %v\nlive:  %v",
				q, local.(*mal.ResultSet).Rows(), liveRes.Rows())
		}
	}
}

type catalogOf map[string]*bat.BAT

func (c catalogOf) Bind(schema, table, column string) (mal.Value, error) {
	b, ok := c[table+"."+column]
	if !ok {
		return nil, fmt.Errorf("no column %s.%s", table, column)
	}
	return b, nil
}

// sameRowMultiset compares results ignoring row order.
func sameRowMultiset(a, b [][]any) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r []any) string { return fmt.Sprint(r) }
	count := map[string]int{}
	for _, r := range a {
		count[key(r)]++
	}
	for _, r := range b {
		count[key(r)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestConcurrentQueriesAcrossNodes(t *testing.T) {
	r := newTestRing(t, 3)
	defer r.Close()
	const perNode = 5
	var wg sync.WaitGroup
	errs := make(chan error, r.Size()*perNode)
	for i := 0; i < r.Size(); i++ {
		for k := 0; k < perNode; k++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				rs, err := r.Node(node).ExecSQL("select c.t_id from t, c where c.t_id = t.id")
				if err != nil {
					errs <- fmt.Errorf("node %d: %w", node, err)
					return
				}
				if rs.NumRows() != 3 {
					errs <- fmt.Errorf("node %d: rows = %d", node, rs.NumRows())
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestUnknownColumnFails(t *testing.T) {
	r := newTestRing(t, 2)
	defer r.Close()
	if _, err := r.Node(0).ExecSQL("select nosuch from t"); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestBATIDResolution(t *testing.T) {
	r := newTestRing(t, 2)
	defer r.Close()
	if _, ok := r.BATID("t.id"); !ok {
		t.Fatal("t.id not in catalog")
	}
	if _, ok := r.BATID("nope.nope"); ok {
		t.Fatal("phantom column resolved")
	}
}

func TestTPCHQ1OnLiveRing(t *testing.T) {
	db := tpch.GenDB(0.0005, 11)
	cols := db.ColumnMap()
	r, err := NewRing(3, cols, db.Schema(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rs, err := r.Node(1).ExecSQL(tpch.Q1SQL)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against local execution.
	plan, err := minisql.Compile(tpch.Q1SQL, db.Schema(), "sys")
	if err != nil {
		t.Fatal(err)
	}
	local, err := mal.Run(&mal.Context{Registry: mal.NewRegistry(), Catalog: db}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRowMultiset(local.(*mal.ResultSet).Rows(), rs.Rows()) {
		t.Fatal("live TPC-H Q1 differs from local execution")
	}
	// The ring actually moved data: some node forwarded BATs.
	forwarded := uint64(0)
	for i := 0; i < r.Size(); i++ {
		forwarded += r.Node(i).Stats().BATsForwarded
	}
	if forwarded == 0 {
		t.Fatal("no BATs flowed through the ring")
	}
}

func TestRingTooSmall(t *testing.T) {
	cols, schema := testColumns()
	if _, err := NewRing(1, cols, schema, DefaultConfig()); err == nil {
		t.Fatal("expected error for 1-node ring")
	}
}
