package live

import (
	"reflect"
	"sort"
	"testing"
)

func TestTCPRingExecutesSQL(t *testing.T) {
	cols, schema := testColumns()
	cfg := DefaultConfig()
	cfg.Transport = TCP
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rs, err := r.Node(1).ExecSQL("select c.t_id from t, c where c.t_id = t.id")
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, row := range rs.Rows() {
		got = append(got, row[0].(int64))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if want := []int64{2, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("result over TCP = %v, want %v", got, want)
	}
}

func TestTCPRingMatchesInProc(t *testing.T) {
	query := "select t.name, c.val from t, c where c.t_id = t.id and c.val > 150 order by c.val"
	results := map[Transport][][]any{}
	for _, tr := range []Transport{InProc, TCP} {
		cols, schema := testColumns()
		cfg := DefaultConfig()
		cfg.Transport = tr
		r, err := NewRing(2, cols, schema, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Node(0).ExecSQL(query)
		if err != nil {
			r.Close()
			t.Fatalf("transport %d: %v", tr, err)
		}
		results[tr] = rs.Rows()
		r.Close()
	}
	if !reflect.DeepEqual(results[InProc], results[TCP]) {
		t.Fatalf("transports disagree:\ninproc: %v\ntcp:    %v", results[InProc], results[TCP])
	}
}

func TestUnknownTransport(t *testing.T) {
	cols, schema := testColumns()
	cfg := DefaultConfig()
	cfg.Transport = Transport(99)
	if _, err := NewRing(2, cols, schema, cfg); err == nil {
		t.Fatal("expected error")
	}
}
