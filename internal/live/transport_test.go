package live

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdma"
)

func TestTCPRingExecutesSQL(t *testing.T) {
	cols, schema := testColumns()
	cfg := DefaultConfig()
	cfg.Transport = TCP
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rs, err := r.Node(1).ExecSQL("select c.t_id from t, c where c.t_id = t.id")
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, row := range rs.Rows() {
		got = append(got, row[0].(int64))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if want := []int64{2, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("result over TCP = %v, want %v", got, want)
	}
}

func TestTCPRingMatchesInProc(t *testing.T) {
	query := "select t.name, c.val from t, c where c.t_id = t.id and c.val > 150 order by c.val"
	results := map[Transport][][]any{}
	for _, tr := range []Transport{InProc, TCP} {
		cols, schema := testColumns()
		cfg := DefaultConfig()
		cfg.Transport = tr
		r, err := NewRing(2, cols, schema, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Node(0).ExecSQL(query)
		if err != nil {
			r.Close()
			t.Fatalf("transport %d: %v", tr, err)
		}
		results[tr] = rs.Rows()
		r.Close()
	}
	if !reflect.DeepEqual(results[InProc], results[TCP]) {
		t.Fatalf("transports disagree:\ninproc: %v\ntcp:    %v", results[InProc], results[TCP])
	}
}

func TestUnknownTransport(t *testing.T) {
	cols, schema := testColumns()
	cfg := DefaultConfig()
	cfg.Transport = Transport(99)
	if _, err := NewRing(2, cols, schema, cfg); err == nil {
		t.Fatal("expected error")
	}
}

// The uring backend must return bit-identical query results to tcp.
func TestUringRingExecutesSQL(t *testing.T) {
	if ok, reason := rdma.UringSupported(); !ok {
		t.Skipf("io_uring unavailable: %s", reason)
	}
	query := "select t.name, c.val from t, c where c.t_id = t.id and c.val > 150 order by c.val"
	results := map[string][][]any{}
	for _, backend := range []string{"tcp", "uring"} {
		cols, schema := testColumns()
		cfg := DefaultConfig()
		cfg.Transport = TCP
		cfg.Backend = backend
		r, err := NewRing(3, cols, schema, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Node(0).ExecSQL(query)
		if err != nil {
			r.Close()
			t.Fatalf("backend %s: %v", backend, err)
		}
		results[backend] = rs.Rows()
		hs := r.HopStats()
		if hs.Backend != backend {
			r.Close()
			t.Fatalf("HopStats.Backend = %q, want %q", hs.Backend, backend)
		}
		if backend == "uring" {
			if hs.BackendFallback != "" {
				r.Close()
				t.Fatalf("unexpected fallback on a supported kernel: %q", hs.BackendFallback)
			}
			if hs.WireSyscalls == 0 {
				r.Close()
				t.Fatal("uring ring reported zero wire syscalls")
			}
		}
		r.Close()
	}
	if !reflect.DeepEqual(results["tcp"], results["uring"]) {
		t.Fatalf("backends disagree:\ntcp:   %v\nuring: %v", results["tcp"], results["uring"])
	}
}

// auto on a kernel without io_uring support must come up on tcp and
// record why in the hop stats.
func TestBackendAutoFallsBackWithReason(t *testing.T) {
	restore := rdma.ForceUringUnsupported("kernel said no (test)")
	defer restore()
	cols, schema := testColumns()
	cfg := DefaultConfig()
	cfg.Transport = TCP
	cfg.Backend = "auto"
	r, err := NewRing(2, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	hs := r.HopStats()
	if hs.Backend != "tcp" {
		t.Fatalf("Backend = %q, want tcp fallback", hs.Backend)
	}
	if hs.BackendFallback != "kernel said no (test)" {
		t.Fatalf("BackendFallback = %q", hs.BackendFallback)
	}
	if _, err := r.Node(0).ExecSQL("select c.t_id from t, c where c.t_id = t.id"); err != nil {
		t.Fatal(err)
	}
}

// Explicit uring on an unsupported kernel is a construction error with
// the probe's reason attached — never a panic, never a silent downgrade.
func TestBackendExplicitUringUnsupportedErrors(t *testing.T) {
	restore := rdma.ForceUringUnsupported("kernel said no (test)")
	defer restore()
	cols, schema := testColumns()
	cfg := DefaultConfig()
	cfg.Transport = TCP
	cfg.Backend = "uring"
	_, err := NewRing(2, cols, schema, cfg)
	if err == nil {
		t.Fatal("want error for explicit uring on unsupported kernel")
	}
	if !strings.Contains(err.Error(), "kernel said no (test)") {
		t.Fatalf("error %q does not carry the probe reason", err)
	}
}

// Explicit uring without a real socket transport is a config error.
func TestBackendUringRequiresTCPTransport(t *testing.T) {
	cols, schema := testColumns()
	cfg := DefaultConfig()
	cfg.Transport = InProc
	cfg.Backend = "uring"
	if _, err := NewRing(2, cols, schema, cfg); err == nil {
		t.Fatal("want error for uring over the in-process transport")
	}
}

func TestBackendUnknownRejected(t *testing.T) {
	cols, schema := testColumns()
	cfg := DefaultConfig()
	cfg.Transport = TCP
	cfg.Backend = "verbs"
	if _, err := NewRing(2, cols, schema, cfg); err == nil {
		t.Fatal("want error for unknown backend name")
	}
}
