package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/mal"
)

// This file implements the §6 extensions on the live ring:
//
//   - result caching (§6.2): intermediate results published as
//     first-class fragments with their own LOI-governed life;
//   - updates (§6.4): multi-version columns — a new version replaces
//     the owner's copy while readers of the old version continue
//     undisturbed (BAT immutability gives MVCC for free);
//   - the nomadic phase (§6.1): Submit picks the cheapest node by
//     bidding before settling a query.
//
// Substitution note: the paper coordinates concurrent updaters by
// tagging the flowing BAT "updating"; this implementation serializes
// updates through a per-fragment lock at the owner, which provides the
// same mutual exclusion with the machinery available in-process.

// firstDynamicID separates static catalog ids from published
// intermediates.
const firstDynamicID core.BATID = 1 << 20

var nextDynamicID int64 = int64(firstDynamicID)

// Publish registers an intermediate result as a ring-wide fragment
// owned by this node (§6.2). It returns the fragment id; any node can
// subsequently Fetch it by name. The fragment's life in the ring is
// governed by its level of interest like any base fragment.
func (n *Node) Publish(name string, b *bat.BAT) (core.BATID, error) {
	// Exact admission check: the codec reports the encoded size to the
	// byte, so the only overhead to account for is the fixed envelope.
	if wire := dataHdrSize + bat.MarshalSize(b); wire > n.dataOut.MaxMessage() {
		return 0, fmt.Errorf("live: intermediate %q (%d wire bytes) exceeds ring message limit %d",
			name, wire, n.dataOut.MaxMessage())
	}
	r := n.ring
	r.idsMu.Lock()
	if _, exists := r.ids[name]; exists {
		r.idsMu.Unlock()
		return 0, fmt.Errorf("live: fragment %q already published", name)
	}
	id := core.BATID(atomic.AddInt64(&nextDynamicID, 1))
	r.ids[name] = id
	r.names = append(r.names, name)
	r.idsMu.Unlock()

	n.mu.Lock()
	n.store[id] = b
	n.rt.AddOwned(id, b.Bytes())
	n.mu.Unlock()
	return id, nil
}

// Fetch retrieves a fragment by name through the normal Data Cyclotron
// path: request, wait for it to flow past, pin, and unpin. The returned
// BAT shares the pinned payload zero-copy: fragments are immutable
// (updates install a fresh version, see UpdateColumn), so no defensive
// deep copy is needed and the GC keeps the payload alive past eviction.
func (n *Node) Fetch(name string) (*bat.BAT, error) {
	n.ring.idsMu.RLock()
	id, ok := n.ring.ids[name]
	n.ring.idsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("live: unknown fragment %q", name)
	}
	q := core.QueryID(atomic.AddInt64(&n.nextQ, 1))<<16 | core.QueryID(n.id)
	dc := &queryDC{n: n, q: q}
	defer func() {
		n.mu.Lock()
		n.rt.CancelQuery(q, []core.BATID{id})
		n.mu.Unlock()
	}()
	n.mu.Lock()
	n.rt.Request(q, id)
	n.mu.Unlock()
	v, err := dc.Pin(id)
	if err != nil {
		return nil, err
	}
	b := v.(*bat.BAT)
	if err := dc.Unpin(v); err != nil {
		return nil, err
	}
	// Full-length view rather than the stored BAT itself: the capped
	// slices keep a caller's Append from growing into the owner's copy.
	return b.Slice(0, b.Len()), nil
}

// UpdateColumn applies fn to the latest version of the named column at
// its owner, atomically installing the result as the new version
// (§6.4). Concurrent updates of the same column serialize; readers
// holding the previous version continue on it. It returns the new
// version number (base data is version 0).
func (r *Ring) UpdateColumn(name string, fn func(*bat.BAT) *bat.BAT) (int, error) {
	r.idsMu.RLock()
	id, ok := r.ids[name]
	r.idsMu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("live: unknown column %q", name)
	}
	owner := r.ownerOf(id)
	if owner == nil {
		return 0, fmt.Errorf("live: no owner for %q", name)
	}
	lock := owner.updateLock(id)
	lock.Lock()
	defer lock.Unlock()

	owner.mu.Lock()
	cur := owner.store[id]
	owner.mu.Unlock()

	next := fn(cur)
	if next == nil {
		return 0, fmt.Errorf("live: update produced nil version")
	}
	if wire := dataHdrSize + bat.MarshalSize(next); wire > owner.dataOut.MaxMessage() {
		return 0, fmt.Errorf("live: new version of %q (%d wire bytes) exceeds ring message limit %d",
			name, wire, owner.dataOut.MaxMessage())
	}

	owner.mu.Lock()
	owner.store[id] = next
	// The serialized form of the old version must not be re-sent; its
	// pooled buffer is recycled once in-flight sends drain.
	owner.dropWireEntry(id)
	if owner.versions == nil {
		owner.versions = map[core.BATID]int{}
	}
	owner.versions[id]++
	v := owner.versions[id]
	// Keep the catalog size honest for admission decisions.
	owner.rt.AdoptOwned(id, next.Bytes(), owner.rt.Loaded(id))
	owner.mu.Unlock()
	return v, nil
}

// Version reports the current version of a column at its owner.
func (r *Ring) Version(name string) (int, error) {
	r.idsMu.RLock()
	id, ok := r.ids[name]
	r.idsMu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("live: unknown column %q", name)
	}
	owner := r.ownerOf(id)
	if owner == nil {
		return 0, fmt.Errorf("live: no owner for %q", name)
	}
	owner.mu.Lock()
	defer owner.mu.Unlock()
	return owner.versions[id], nil
}

// ownerOf finds the node whose data loader owns id.
func (r *Ring) ownerOf(id core.BATID) *Node {
	for _, n := range r.nodes {
		n.mu.Lock()
		owns := n.rt.Owns(id)
		n.mu.Unlock()
		if owns {
			return n
		}
	}
	return nil
}

// updateLock returns the per-fragment update mutex, creating it lazily.
func (n *Node) updateLock(id core.BATID) *sync.Mutex {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.updateMu == nil {
		n.updateMu = map[core.BATID]*sync.Mutex{}
	}
	l := n.updateMu[id]
	if l == nil {
		l = &sync.Mutex{}
		n.updateMu[id] = l
	}
	return l
}

// Submit executes sql after a nomadic phase (§6.1): every node bids its
// current load (active queries) and the query settles on the cheapest.
func (r *Ring) Submit(sql string) (*mal.ResultSet, error) {
	best := r.nodes[0]
	bestBid := int64(1 << 62)
	for _, n := range r.nodes {
		if bid := atomic.LoadInt64(&n.activeQueries); bid < bestBid {
			bestBid = bid
			best = n
		}
	}
	return best.ExecSQL(sql)
}
