package live

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/mal"
)

// This file implements the §6 extensions on the live ring:
//
//   - result caching (§6.2): intermediate results published as
//     first-class fragments with their own LOI-governed life;
//   - updates (§6.4): multi-version columns — a new version replaces
//     the owner's copy while readers of the old version continue
//     undisturbed (BAT immutability gives MVCC for free); fragmented
//     columns re-divide the new version over the existing fragments,
//     each replaced at its own owner;
//   - the nomadic phase (§6.1): Submit picks the cheapest node by
//     bidding before settling a query.
//
// Substitution note: the paper coordinates concurrent updaters by
// tagging the flowing BAT "updating"; this implementation serializes
// updates through a per-column lock at the ring, which provides the
// same mutual exclusion with the machinery available in-process.

// firstDynamicID separates static catalog ids from published
// intermediates.
const firstDynamicID core.BATID = 1 << 20

var nextDynamicID int64 = int64(firstDynamicID)

// Publish registers an intermediate result as a ring-wide fragment
// owned by this node (§6.2). It returns the fragment id; any node can
// subsequently Fetch it by name. The fragment's life in the ring is
// governed by its level of interest like any base fragment.
// Intermediates are not split: they are already query-sized, and the
// exact admission check keeps oversized ones out of the ring.
func (n *Node) Publish(name string, b *bat.BAT) (core.BATID, error) {
	// Exact admission check: the codec reports the encoded size to the
	// byte, so the only overhead to account for is the fixed envelope.
	if wire := dataHdrSize + bat.MarshalSize(b); wire > n.ring.MaxMessage() {
		return 0, fmt.Errorf("live: intermediate %q (%d wire bytes) exceeds ring message limit %d",
			name, wire, n.ring.MaxMessage())
	}
	r := n.ring
	if rtr := r.router; rtr != nil {
		// Routed runtime: the catalog maps are shared by every tier
		// ring, so the extension happens once under all rings' catalog
		// locks, and the new fragment is homed on the publishing ring.
		id, err := rtr.publish(r, name)
		if err != nil {
			return 0, err
		}
		n.installPublished(id, b)
		return id, nil
	}
	r.idsMu.Lock()
	if _, exists := r.cols[name]; exists {
		r.idsMu.Unlock()
		return 0, fmt.Errorf("live: fragment %q already published", name)
	}
	id := core.BATID(atomic.AddInt64(&nextDynamicID, 1))
	r.cols[name] = &colFrags{ids: []core.BATID{id}}
	r.names = append(r.names, name)
	r.fragVer[id] = &atomic.Int64{}
	r.fragCol[id] = name
	r.idsMu.Unlock()
	n.installPublished(id, b)
	return id, nil
}

// installPublished stores a freshly published fragment at its owner and
// installs its replica chain — the half of Publish shared by the
// standalone and routed paths, run after the catalog already names id.
func (n *Node) installPublished(id core.BATID, b *bat.BAT) {
	r := n.ring

	n.mu.Lock()
	n.store[id] = b
	n.rt.AddOwned(id, b.Bytes())
	n.mu.Unlock()

	// Replica placement follows the same rule as base fragments: the
	// next Replicas live ring successors of the owner each get a copy,
	// so a published intermediate survives its owner's death too.
	if r.cfg.Replicas > 0 {
		nodes := r.nodeList()
		total := len(nodes)
		chain := make([]core.NodeID, 0, r.cfg.Replicas)
		for k := 1; k <= total && len(chain) < r.cfg.Replicas; k++ {
			rep := nodes[(int(n.id)+k)%total]
			if rep.id == n.id || r.isDead(rep.id) {
				continue
			}
			rep.mu.Lock()
			rep.replicas[id] = &replicaFrag{b: b}
			rep.mu.Unlock()
			chain = append(chain, rep.id)
		}
		r.memMu.Lock()
		r.fragOwner[id] = n.id
		r.fragReplicas[id] = chain
		r.memMu.Unlock()
	} else {
		r.memMu.Lock()
		r.fragOwner[id] = n.id
		r.memMu.Unlock()
	}
}

// Fetch retrieves a column by name through the normal Data Cyclotron
// path: request every fragment, wait for them to flow past (any
// order), pin, merge, and unpin. A single-fragment column shares the
// pinned payload zero-copy: fragments are immutable (updates install a
// fresh version, see UpdateColumn), so no defensive deep copy is
// needed and the GC keeps the payload alive past eviction. A
// multi-fragment column returns the bat.Concat merge.
func (n *Node) Fetch(name string) (*bat.BAT, error) {
	ids, ok := n.ring.Fragments(name)
	if !ok {
		return nil, fmt.Errorf("live: unknown fragment %q", name)
	}
	q := core.QueryID(atomic.AddInt64(&n.nextQ, 1))<<16 | core.QueryID(n.id)
	dc := &queryDC{n: n, q: q}
	defer func() {
		n.mu.Lock()
		n.rt.CancelQuery(q, ids)
		n.mu.Unlock()
	}()
	n.mu.Lock()
	for _, id := range ids {
		// Remote-homed fragments are dispatched through the router at
		// pin time; local interest would dangle (same rule as
		// queryDC.Request).
		if rtr := n.ring.router; rtr != nil && rtr.homeOf(id) != n.ring.id {
			continue
		}
		n.rt.Request(q, id)
	}
	n.mu.Unlock()
	if len(ids) > 1 {
		return dc.pinMerged(&fragHandle{name: name, ids: ids})
	}
	v, err := dc.Pin(ids[0])
	if err != nil {
		return nil, err
	}
	b := v.(*bat.BAT)
	if err := dc.Unpin(v); err != nil {
		return nil, err
	}
	// Full-length view rather than the stored BAT itself: the capped
	// slices keep a caller's Append from growing into the owner's copy.
	return b.Slice(0, b.Len()), nil
}

// UpdateColumn applies fn to the latest version of the named column,
// atomically installing the result as the new version (§6.4).
// Concurrent updates of the same column serialize; readers holding the
// previous version continue on it. For a fragmented column the current
// fragments are merged for fn, and the new version is re-divided over
// the same fragment count — fragment identity is stable, so in-flight
// requests keep their meaning — with each new fragment installed at
// its own owner. It returns the new version number (base data is
// version 0).
func (r *Ring) UpdateColumn(name string, fn func(*bat.BAT) *bat.BAT) (int, error) {
	if r.router != nil {
		// Routed runtime: a column's fragments may be homed on several
		// rings, so the update runs at the router, which owns the
		// cross-ring critical section.
		return r.router.UpdateColumn(name, fn)
	}
	ids, ok := r.Fragments(name)
	if !ok {
		return 0, fmt.Errorf("live: unknown column %q", name)
	}
	lock := r.columnLock(name)
	lock.Lock()
	defer lock.Unlock()

	frags := make([]*bat.BAT, len(ids))
	owners := make([]*Node, len(ids))
	for i, id := range ids {
		owner := r.ownerOf(id)
		if owner == nil {
			return 0, fmt.Errorf("live: no owner for fragment %d of %q", i, name)
		}
		owner.mu.Lock()
		frags[i] = owner.store[id]
		owner.mu.Unlock()
		owners[i] = owner
	}
	cur := frags[0]
	if len(frags) > 1 {
		cur = bat.Concat(frags)
	}

	next := fn(cur)
	if next == nil {
		return 0, fmt.Errorf("live: update produced nil version")
	}
	spans := splitEven(next.Len(), len(ids))
	newFrags := make([]*bat.BAT, len(ids))
	for i, sp := range spans {
		nf := next
		if len(ids) > 1 {
			nf = next.Slice(sp[0], sp[1])
		}
		if wire := dataHdrSize + bat.MarshalSize(nf); wire > r.MaxMessage() {
			return 0, fmt.Errorf("live: new version of %q fragment %d (%d wire bytes) exceeds ring message limit %d",
				name, i, wire, r.MaxMessage())
		}
		newFrags[i] = nf
	}

	// Install every new fragment with all owner locks held at once
	// (acquired in node order — every other code path takes at most one
	// node lock, so the ordered multi-lock cannot deadlock): the owners'
	// stores never expose a mix of old and new fragments. A query whose
	// pins *straddle* the update may still combine adjacent versions of
	// different fragments it picked up before and after the install —
	// versioning is per fragment, the granularity at which data lives in
	// the ring (each fragment individually is always a consistent
	// version, and readers holding old payloads continue on them).
	// Surviving replica holders join the critical section too: replicas
	// are installed at the new version *before* the catalog advances, so
	// a failover that promotes a replica (serialized against this very
	// column lock) always finds catalog-current bytes — the PR 5
	// staleness contract extended to promoted replicas.
	var repNodes map[core.BATID][]*Node
	if r.cfg.Replicas > 0 {
		repNodes = make(map[core.BATID][]*Node, len(ids))
		r.memMu.RLock()
		for _, id := range ids {
			for _, nid := range r.fragReplicas[id] {
				if !r.deadNodes[nid] {
					repNodes[id] = append(repNodes[id], r.node(int(nid)))
				}
			}
		}
		r.memMu.RUnlock()
	}

	lockOrder := make([]*Node, 0, len(owners))
	addLocked := func(node *Node) {
		for _, seen := range lockOrder {
			if seen == node {
				return
			}
		}
		lockOrder = append(lockOrder, node)
	}
	for _, owner := range owners {
		addLocked(owner)
	}
	for _, reps := range repNodes {
		for _, rep := range reps {
			addLocked(rep)
		}
	}
	sort.Slice(lockOrder, func(i, j int) bool { return lockOrder[i].id < lockOrder[j].id })
	for _, owner := range lockOrder {
		owner.mu.Lock()
	}
	version := 0
	for i, id := range ids {
		owner := owners[i]
		owner.store[id] = newFrags[i]
		// The serialized form of the old version must not be re-sent; its
		// pooled buffer is recycled once in-flight sends drain.
		owner.dropWireEntry(id)
		if owner.versions == nil {
			owner.versions = map[core.BATID]int{}
		}
		owner.versions[id]++
		newVer := owner.versions[id]
		if newVer > version {
			version = newVer
		}
		// Keep the catalog size honest for admission decisions.
		owner.rt.AdoptOwned(id, newFrags[i].Bytes(), owner.rt.Loaded(id))
		// Replicas first, then the catalog: a promotion serialized
		// behind this critical section must find its replica already at
		// the version the catalog reports.
		for _, rep := range repNodes[id] {
			loi := 0.0
			if old := rep.replicas[id]; old != nil {
				loi = old.loi
			}
			rep.replicas[id] = &replicaFrag{b: newFrags[i], ver: newVer, loi: loi}
		}
		// Advance the catalog version while the owner's store and the
		// column lock are still held: any pin that reads the catalog
		// from here on can no longer validate an entry labelled with an
		// older version (the catalog read is the pin's linearization
		// point; a pin that read just before this store completes
		// against the old version, which is ordinary MVCC). Dropping
		// the superseded entries on every node is then pure memory
		// hygiene.
		r.idsMu.RLock()
		vp := r.fragVer[id]
		r.idsMu.RUnlock()
		if vp != nil {
			vp.Store(int64(newVer))
		}
		for _, node := range r.nodeList() {
			if node.hot != nil {
				node.hot.invalidateBelow(id, newVer)
			}
		}
	}
	for _, owner := range lockOrder {
		owner.mu.Unlock()
	}
	return version, nil
}

// Version reports the current version of a column (the highest version
// among its fragments; updates bump every fragment together). It reads
// the ring's version catalog — the same source the hot-set cache
// validates against — so it never touches an owner lock.
func (r *Ring) Version(name string) (int, error) {
	ids, ok := r.Fragments(name)
	if !ok {
		return 0, fmt.Errorf("live: unknown column %q", name)
	}
	version := 0
	for _, id := range ids {
		if v := r.fragVersion(id); v > version {
			version = v
		}
	}
	return version, nil
}

// ownerOf finds the node whose data loader owns id, preferring a live
// owner. In the window between a node's death and its fragments'
// promotion the only owner on record may be the dead node; updating
// through it is still correct — the surviving replicas are written at
// the new version inside the column-locked critical section, and the
// promotion (serialized on the same lock) installs exactly the catalog
// version.
func (r *Ring) ownerOf(id core.BATID) *Node {
	var deadOwner *Node
	for _, n := range r.nodeList() {
		n.mu.Lock()
		owns := n.rt.Owns(id)
		n.mu.Unlock()
		if owns {
			if !r.isDead(n.id) {
				return n
			}
			if deadOwner == nil {
				deadOwner = n
			}
		}
	}
	return deadOwner
}

// columnLock returns the per-column update mutex, creating it lazily.
// In a routed runtime the lock lives at the router — one mutex per
// column across all tier rings, so updates, failover promotion, join
// rebalancing, and tier migration all serialize on the same lock
// whichever ring they run on.
func (r *Ring) columnLock(name string) *sync.Mutex {
	if r.router != nil {
		return r.router.columnLock(name)
	}
	r.updMuMu.Lock()
	defer r.updMuMu.Unlock()
	l := r.updMu[name]
	if l == nil {
		l = &sync.Mutex{}
		r.updMu[name] = l
	}
	return l
}

// Submit executes sql after a nomadic phase (§6.1): every node bids its
// current load (active queries) and the query settles on the cheapest.
func (r *Ring) Submit(sql string) (*mal.ResultSet, error) {
	nodes := r.nodeList()
	best := nodes[0]
	bestBid := int64(1 << 62)
	for _, n := range nodes {
		if bid := atomic.LoadInt64(&n.activeQueries); bid < bestBid {
			bestBid = bid
			best = n
		}
	}
	return best.ExecSQL(sql)
}
