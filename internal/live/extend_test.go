package live

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
)

func TestPublishAndFetchIntermediate(t *testing.T) {
	r := newTestRing(t, 3)
	defer r.Close()
	// Node 0 computes an intermediate and throws it into the ring.
	inter := bat.MakeInts("revenue-by-day", []int64{10, 20, 30})
	id, err := r.Node(0).Publish("cache.revenue", inter)
	if err != nil {
		t.Fatal(err)
	}
	if id < firstDynamicID {
		t.Fatalf("dynamic id %d below range", id)
	}
	// A different node fetches it by name through the ring.
	got, err := r.Node(2).Fetch("cache.revenue")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.Tail().Int(2) != 30 {
		t.Fatalf("fetched intermediate wrong: %s", got.Dump(5))
	}
	// Double publish under the same name is rejected.
	if _, err := r.Node(1).Publish("cache.revenue", inter); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestPublishTooLargeRejected(t *testing.T) {
	r := newTestRing(t, 2)
	defer r.Close()
	huge := bat.MakeInts("huge", make([]int64, 1<<20))
	if _, err := r.Node(0).Publish("cache.huge", huge); err == nil {
		t.Fatal("expected size-limit error")
	}
}

func TestFetchUnknown(t *testing.T) {
	r := newTestRing(t, 2)
	defer r.Close()
	if _, err := r.Node(0).Fetch("no.such"); err == nil {
		t.Fatal("expected error")
	}
}

func TestUpdateColumnVersions(t *testing.T) {
	cols, schema := testColumns()
	cfg := DefaultConfig()
	// Aggressive eviction so re-fetches reload from the owner's store.
	cfg.Core.LOITLevels = []float64{10}
	cfg.Core.AdaptiveLOIT = false
	r, err := NewRing(3, cols, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if v, _ := r.Version("c.val"); v != 0 {
		t.Fatalf("base version = %d", v)
	}
	// Reader pins the old version.
	oldRes, err := r.Node(1).ExecSQL("select sum(val) from c")
	if err != nil {
		t.Fatal(err)
	}
	oldSum := oldRes.Row(0)[0].(int64) // 100+200+300+400

	v, err := r.UpdateColumn("c.val", func(old *bat.BAT) *bat.BAT {
		vals := make([]int64, old.Len())
		for i := range vals {
			vals[i] = old.Tail().Int(i) * 2
		}
		return bat.MakeInts("c.val", vals)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version = %d, want 1", v)
	}
	// Allow the old flowing copy to cool down and be evicted.
	deadline := time.Now().Add(5 * time.Second)
	var newSum int64
	for time.Now().Before(deadline) {
		res, err := r.Node(1).ExecSQL("select sum(val) from c")
		if err != nil {
			t.Fatal(err)
		}
		newSum = res.Row(0)[0].(int64)
		if newSum == oldSum*2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if newSum != oldSum*2 {
		t.Fatalf("new version not visible: sum = %d, want %d", newSum, oldSum*2)
	}
}

func TestConcurrentUpdatesSerialize(t *testing.T) {
	r := newTestRing(t, 2)
	defer r.Close()
	const k = 8
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := r.UpdateColumn("t.id", func(old *bat.BAT) *bat.BAT {
				vals := make([]int64, old.Len())
				for j := range vals {
					vals[j] = old.Tail().Int(j) + 1
				}
				return bat.MakeInts("t.id", vals)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if v, _ := r.Version("t.id"); v != k {
		t.Fatalf("version = %d, want %d (lost update?)", v, k)
	}
	// All k increments applied: id[0] went 1 -> 1+k.
	got, err := r.Node(1).Fetch("t.id")
	if err != nil {
		t.Fatal(err)
	}
	// The fetched copy may be a stale flowing version; verify at owner.
	ringID, _ := r.BATID("t.id")
	owner := r.ownerOf(ringID)
	owner.mu.Lock()
	latest := owner.store[ringID]
	owner.mu.Unlock()
	if latest.Tail().Int(0) != 1+k {
		t.Fatalf("owner value = %d, want %d", latest.Tail().Int(0), 1+k)
	}
	_ = got
}

func TestUpdateUnknownColumn(t *testing.T) {
	r := newTestRing(t, 2)
	defer r.Close()
	if _, err := r.UpdateColumn("no.such", func(b *bat.BAT) *bat.BAT { return b }); err == nil {
		t.Fatal("expected error")
	}
}

func TestNomadicSubmit(t *testing.T) {
	r := newTestRing(t, 3)
	defer r.Close()
	rs, err := r.Submit("select c.t_id from t, c where c.t_id = t.id")
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRows() != 3 {
		t.Fatalf("rows = %d", rs.NumRows())
	}
}

func TestDynamicIDsDoNotCollideWithCatalog(t *testing.T) {
	r := newTestRing(t, 2)
	defer r.Close()
	if id, ok := r.BATID("t.id"); !ok || id >= firstDynamicID {
		t.Fatalf("catalog id = %d", id)
	}
	pid, err := r.Node(0).Publish("x.y", bat.MakeInts("x", []int64{1}))
	if err != nil {
		t.Fatal(err)
	}
	var unused core.BATID = pid
	_ = unused
	if pid <= firstDynamicID {
		t.Fatalf("published id = %d", pid)
	}
}
